package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"topkagg/internal/httpapi"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("add:4,elim:2,whatif:3,sweep:1")
	if err != nil {
		t.Fatal(err)
	}
	if m["add"] != 4 || m["elim"] != 2 || m["whatif"] != 3 || m["sweep"] != 1 {
		t.Errorf("parseMix: %v", m)
	}
	for _, bad := range []string{"", "add", "add:x", "add:-1", "frobnicate:1", "add:0,elim:0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := parseSpec("gates=10,couplings=20,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Gates != 10 || spec.Couplings != 20 || spec.Seed != 3 {
		t.Errorf("parseSpec: %+v", spec)
	}
	if spec, err = parseSpec(""); err != nil || spec.Gates != 40 {
		t.Errorf("default spec: %+v, %v", spec, err)
	}
	for _, bad := range []string{"gates", "gates=x", "bogus=1"} {
		if _, err := parseSpec(bad); err == nil {
			t.Errorf("parseSpec(%q) accepted", bad)
		}
	}
}

func TestPercentile(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if p := percentile(sorted, 0.50); p != 50 {
		t.Errorf("p50 = %d", p)
	}
	if p := percentile(sorted, 0.99); p != 90 {
		t.Errorf("p99 = %d", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %d", p)
	}
}

func TestSummarize(t *testing.T) {
	samples := []sample{
		{op: "add", ns: 100, ok: true},
		{op: "add", ns: 300, ok: false},
		{op: "sweep", ns: 200, ok: true},
	}
	rep := summarize(samples, "x:1", "m", time.Second, 2, "add:1,sweep:1")
	if rep.Total != 3 || rep.Errors != 1 || rep.QPS != 3 {
		t.Errorf("summarize: %+v", rep)
	}
	if rep.PerOp["add"].Count != 2 || rep.PerOp["add"].Errors != 1 || rep.PerOp["sweep"].Count != 1 {
		t.Errorf("perOp: %+v", rep.PerOp)
	}
}

// TestRunAgainstServer drives the whole client against an in-process
// httpapi server for a short burst and checks the report lands.
func TestRunAgainstServer(t *testing.T) {
	ts := httptest.NewServer(httpapi.NewServer(httpapi.Config{}))
	defer ts.Close()

	outFile := filepath.Join(t.TempDir(), "loadgen.json")
	var out, errb bytes.Buffer
	code := run([]string{
		"-addr", strings.TrimPrefix(ts.URL, "http://"),
		"-duration", "300ms",
		"-concurrency", "2",
		"-gen", "gates=12,couplings=16,seed=5",
		"-o", outFile,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("run: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Total == 0 || rep.QPS <= 0 {
		t.Errorf("report has no traffic: %+v", rep)
	}
	if rep.Errors == rep.Total {
		t.Errorf("every request failed: %+v", rep)
	}
}

// TestRunBadFlags pins client-side flag validation.
func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-mix", "frobnicate:1"},
		{"-gen", "bogus=1"},
		{"-concurrency", "0"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code == 0 {
			t.Errorf("run(%v) succeeded, want failure", args)
		}
	}
}
