package bruteforce

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"topkagg/internal/budget"
	"topkagg/internal/circuit"
	"topkagg/internal/faultinject"
	"topkagg/internal/noise"
)

// AdditionParallel is Addition distributed over workers goroutines.
// The noise model is read-only during evaluation, so scenario runs
// parallelize perfectly; the search space is partitioned by the first
// element of each combination. Results are deterministic regardless of
// worker count: ties between equal-delay optima resolve to the
// lexicographically smallest coupling set. workers <= 0 selects
// GOMAXPROCS.
func AdditionParallel(m *noise.Model, k int, timeout time.Duration, workers int) (*Result, error) {
	return AdditionParallelCtx(context.Background(), m, k, timeout, workers)
}

// AdditionParallelCtx is AdditionParallel honoring the context:
// cancellation and context deadlines stop the search at the next
// evaluation boundary and return the best-so-far partial result with
// Stopped set, like a search timeout does.
func AdditionParallelCtx(ctx context.Context, m *noise.Model, k int, timeout time.Duration, workers int) (*Result, error) {
	return searchParallel(ctx, m, k, timeout, workers, func(ids []circuit.CouplingID) noise.Mask {
		return noise.MaskOf(m.C, ids)
	}, func(cand, best float64) bool { return cand > best })
}

// EliminationParallel is Elimination distributed over workers
// goroutines.
func EliminationParallel(m *noise.Model, k int, timeout time.Duration, workers int) (*Result, error) {
	return EliminationParallelCtx(context.Background(), m, k, timeout, workers)
}

// EliminationParallelCtx is EliminationParallel honoring the context
// (see AdditionParallelCtx).
func EliminationParallelCtx(ctx context.Context, m *noise.Model, k int, timeout time.Duration, workers int) (*Result, error) {
	return searchParallel(ctx, m, k, timeout, workers, func(ids []circuit.CouplingID) noise.Mask {
		return noise.WithoutMask(m.C, ids)
	}, func(cand, best float64) bool { return cand < best })
}

func searchParallel(ctx context.Context, m *noise.Model, k int, timeout time.Duration, workers int,
	mask func([]circuit.CouplingID) noise.Mask,
	better func(cand, best float64) bool) (*Result, error) {

	r := m.C.NumCouplings()
	if k < 1 || k > r {
		return nil, fmt.Errorf("bruteforce: k=%d out of range 1..%d", k, r)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > r-k+1 {
		workers = r - k + 1
	}
	// Each search worker runs whole analyses; keep the per-analysis
	// fixpoint serial so the two levels of parallelism don't
	// oversubscribe the machine.
	m = m.WithWorkers(1)
	start := time.Now()
	var deadline time.Time
	if timeout > 0 {
		deadline = start.Add(timeout)
	}
	b := budget.New(ctx)

	var (
		next      atomic.Int64 // next first-element index to claim
		stopped   atomic.Bool  // any stop: deadline, cancellation, error, panic
		timedOut  atomic.Bool
		evaluated atomic.Int64
		stopErr   atomic.Pointer[budget.Error] // cancellation, sticky first
		firstErr  error
		errOnce   sync.Once
		wg        sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stopped.Store(true)
	}
	type local struct {
		ids   []circuit.CouplingID
		delay float64
		found bool
	}
	locals := make([]local, workers)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// A crashed worker must not take the process (or the other
			// workers' partial optima) down: convert the panic into the
			// search's typed error and stop the pool.
			defer func() {
				if r := recover(); r != nil {
					fail(budget.NewPanicError("bruteforce", r))
				}
			}()
			idx := make([]int, k)
			ids := make([]circuit.CouplingID, k)
			best := &locals[w]
			for {
				if stopped.Load() {
					return
				}
				first := int(next.Add(1) - 1)
				if first > r-k {
					return
				}
				// Enumerate all combinations whose smallest element is
				// `first`: choose the remaining k-1 from (first, r).
				idx[0] = first
				for i := 1; i < k; i++ {
					idx[i] = first + i
				}
				for {
					for i, x := range idx {
						ids[i] = circuit.CouplingID(x)
					}
					faultinject.Fire(faultinject.SiteBruteforceEval)
					an, err := m.Run(mask(ids))
					if err != nil {
						fail(err)
						return
					}
					evaluated.Add(1)
					d := an.CircuitDelay()
					if !best.found || better(d, best.delay) ||
						(d == best.delay && lexLess(ids, best.ids)) {
						best.delay = d
						best.ids = append(best.ids[:0], ids...)
						best.found = true
					}
					if err := b.Err(); err != nil {
						var be *budget.Error
						if errors.As(err, &be) {
							stopErr.CompareAndSwap(nil, be)
						}
						timedOut.Store(true)
						stopped.Store(true)
						return
					}
					if !deadline.IsZero() && time.Now().After(deadline) {
						timedOut.Store(true)
						stopped.Store(true)
						return
					}
					// Next combination with idx[0] pinned.
					i := k - 1
					for i >= 1 && idx[i] == r-k+i {
						i--
					}
					if i < 1 {
						break
					}
					idx[i]++
					for j := i + 1; j < k; j++ {
						idx[j] = idx[j-1] + 1
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("bruteforce: %w", firstErr)
	}

	res := &Result{Evaluated: int(evaluated.Load()), TimedOut: timedOut.Load(), Elapsed: time.Since(start)}
	if e := stopErr.Load(); e != nil {
		res.Stopped = e
	}
	for _, l := range locals {
		if !l.found {
			continue
		}
		if res.IDs == nil || better(l.delay, res.Delay) ||
			(l.delay == res.Delay && lexLess(l.ids, res.IDs)) {
			res.Delay = l.delay
			res.IDs = append([]circuit.CouplingID(nil), l.ids...)
		}
	}
	return res, nil
}

// lexLess reports whether a sorts lexicographically before b.
func lexLess(a, b []circuit.CouplingID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
