package httpapi

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"topkagg/internal/core"
	"topkagg/internal/serve"
	"topkagg/internal/snapshot"
)

// Model persistence (DESIGN.md §13).
//
// Each persisted model is one snapshot container of the store's state
// directory. The design source travels FIRST, before any warm state,
// so the recovery ladder degrades gracefully tail-first: a file whose
// warm sections are truncated or bit-flipped still yields its upload
// material, and the model is rebuilt cold from source while the
// corrupt file is quarantined. Only a file whose leading sections are
// damaged loses the model — and then the server boots without it
// rather than crashing or serving from bad state.
//
// Container layout:
//
//	meta      name, source label, creation time
//	sources   the verbatim upload material (netlist/verilog/spef/liberty)
//	analyzer* zero or more warm Analyzer containers (serve.Snapshot),
//	          one per enumeration preset, embedded as opaque blobs
//	end       explicit terminator; its absence = tail truncation

// Section kinds of the model container. Distinct from the analyzer
// container's kinds (which live inside the embedded blobs) purely for
// debuggability of hexdumps.
const (
	secModelMeta     = 0x10
	secModelSources  = 0x11
	secModelAnalyzer = 0x12
	secModelEnd      = 0xFF
)

// encodeModel writes one model's full persistent state: design source
// plus every built analyzer's warm caches.
func encodeModel(e *snapshot.Encoder, md *model) error {
	e.Begin()
	e.String(md.name)
	e.String(md.source)
	e.I64(md.created.UnixNano())
	if err := e.Flush(secModelMeta); err != nil {
		return err
	}
	e.Begin()
	e.String(md.src.Netlist)
	e.String(md.src.Verilog)
	e.String(md.src.SPEF)
	e.String(md.src.Liberty)
	if err := e.Flush(secModelSources); err != nil {
		return err
	}
	pool := md.analyzerSnapshot()
	for _, exact := range []bool{false, true} { // deterministic order
		a := pool[exact]
		if a == nil {
			continue
		}
		var buf bytes.Buffer
		if err := a.Snapshot(&buf); err != nil {
			return err
		}
		e.Begin()
		e.Bool(exact)
		e.Blob(buf.Bytes())
		if err := e.Flush(secModelAnalyzer); err != nil {
			return err
		}
	}
	e.Begin()
	return e.Flush(secModelEnd)
}

// SaveModel snapshots one model to the state directory. A no-op when
// persistence is off, the model is gone, or the model carries no
// upload material (bare Preload).
func (s *Server) SaveModel(name string) error {
	if s.store == nil {
		return nil
	}
	md, ok := s.reg.get(name)
	if !ok || md.src == nil {
		return nil
	}
	_, err := s.store.Save(name, func(e *snapshot.Encoder) error {
		return encodeModel(e, md)
	})
	return err
}

// SaveAll snapshots every persistable model (the periodic timer and
// the shutdown drain call this). Models are saved independently; the
// first failure is reported after all have been attempted.
func (s *Server) SaveAll() error {
	if s.store == nil {
		return nil
	}
	var first error
	for _, info := range s.reg.list() {
		if err := s.SaveModel(info.Name); err != nil && first == nil {
			first = fmt.Errorf("%s: %w", info.Name, err)
		}
	}
	return first
}

// ModelRestore reports one model file's fate during boot restore.
type ModelRestore struct {
	// Name is the model name.
	Name string
	// Warm means the full file decoded: design source and every warm
	// analyzer restored.
	Warm bool
	// Rebuilt means the warm state was damaged but the design source
	// was salvaged: the model was rebuilt cold and re-persisted, and
	// the damaged file quarantined.
	Rebuilt bool
	// Quarantined is the quarantine path of a damaged file ("" when the
	// file was clean).
	Quarantined string
	// Err is the decode failure that triggered quarantine, nil when
	// Warm.
	Err error
}

// OpenState attaches a state directory to the server and restores
// every model persisted in it. From now on uploads, deletes and
// SaveAll/SaveModel keep the directory in sync. Boot never fails on a
// damaged snapshot: corrupt files are quarantined with their evidence
// preserved, models whose design source survived are rebuilt cold, and
// the returned outcomes say exactly what happened to each.
func (s *Server) OpenState(dir string) ([]ModelRestore, error) {
	store, err := snapshot.Open(dir, s.cfg.Obs)
	if err != nil {
		return nil, err
	}
	s.store = store
	rebuilt := map[string]bool{}
	outcomes := store.Load(func(name string, dec *snapshot.Decoder) error {
		salvaged, err := s.restoreModel(name, dec)
		if salvaged {
			rebuilt[name] = true
		}
		return err
	})
	outs := make([]ModelRestore, 0, len(outcomes))
	for _, o := range outcomes {
		mr := ModelRestore{
			Name:        o.Name,
			Warm:        o.Restored,
			Rebuilt:     rebuilt[o.Name],
			Quarantined: o.Quarantined,
			Err:         o.Err,
		}
		if mr.Rebuilt {
			// The damaged file is quarantined; re-persist the rebuilt
			// model so its source also survives the NEXT crash.
			_ = s.SaveModel(o.Name)
		}
		outs = append(outs, mr)
	}
	return outs, nil
}

// restoreModel decodes one model file and registers what it holds.
// Any malformed input — truncation, bit flips, adversarial bytes —
// yields a typed error (the store then quarantines the file), never a
// panic, and never a model serving from partially-validated state:
// registration happens only after the sections feeding it validated in
// full. salvaged reports that the design source was good and the model
// was registered cold despite a later corrupt section.
func (s *Server) restoreModel(name string, dec *snapshot.Decoder) (salvaged bool, err error) {
	fail := func(format string, args ...any) (bool, error) {
		return false, fmt.Errorf("httpapi: restore %s: "+format, append([]any{name}, args...)...)
	}
	kind, err := dec.Next()
	if err != nil {
		return false, truncated(err)
	}
	if kind != secModelMeta {
		return fail("leading section is kind %#x, want meta", kind)
	}
	gotName := dec.String()
	source := dec.String()
	createdNS := dec.I64()
	if err := dec.Err(); err != nil {
		return false, err
	}
	if gotName != name {
		return fail("file holds model %q", gotName)
	}
	if !dec.AtEnd() {
		return fail("%d trailing bytes in meta section", dec.Remaining())
	}

	kind, err = dec.Next()
	if err != nil {
		return false, truncated(err)
	}
	if kind != secModelSources {
		return fail("section kind %#x where sources expected", kind)
	}
	up := &UploadRequest{
		Netlist: dec.String(),
		Verilog: dec.String(),
		SPEF:    dec.String(),
		Liberty: dec.String(),
	}
	if err := dec.Err(); err != nil {
		return false, err
	}
	if !dec.AtEnd() {
		return fail("%d trailing bytes in sources section", dec.Remaining())
	}
	c, rebuiltSource, aerr := buildCircuit(up)
	if aerr != nil {
		return fail("sources: %v", aerr)
	}
	if rebuiltSource != source {
		return fail("sources rebuild as %q, meta claims %q", rebuiltSource, source)
	}
	md := s.reg.build(name, source, c, up, time.Unix(0, createdNS))

	// The design source is good. From here on, damage costs only the
	// warm caches: register the model cold, report the error, let the
	// store quarantine the file.
	cold := func(err error) (bool, error) {
		s.reg.insert(md)
		return true, err
	}
	coldf := func(format string, args ...any) (bool, error) {
		return cold(fmt.Errorf("httpapi: restore %s: "+format, append([]any{name}, args...)...))
	}
	analyzers := map[bool]*serve.Analyzer{}
	for {
		kind, err := dec.Next()
		if err != nil {
			return cold(truncated(err))
		}
		if kind == secModelEnd {
			if !dec.AtEnd() {
				return coldf("end section carries %d bytes", dec.Remaining())
			}
			break
		}
		if kind != secModelAnalyzer {
			return coldf("unknown section kind %#x", kind)
		}
		exact := dec.Bool()
		blob := dec.Blob()
		if err := dec.Err(); err != nil {
			return cold(err)
		}
		if !dec.AtEnd() {
			return coldf("%d trailing bytes in analyzer section", dec.Remaining())
		}
		if _, dup := analyzers[exact]; dup {
			return coldf("duplicate analyzer preset (exact=%v)", exact)
		}
		a, err := serve.RestoreAnalyzer(bytes.NewReader(blob), md.m)
		if err != nil {
			return coldf("analyzer (exact=%v): %w", exact, err)
		}
		want := core.Options{}
		if exact {
			want = core.Exact()
		}
		if !optionsEqual(a.Options(), want) {
			return coldf("analyzer (exact=%v) restored with foreign options", exact)
		}
		analyzers[exact] = a
	}
	if _, err := dec.Next(); err != io.EOF {
		return coldf("data after end section")
	}
	for exact, a := range analyzers {
		md.installAnalyzer(exact, a)
	}
	s.reg.insert(md)
	return false, nil
}

// truncated maps a clean EOF between sections to a typed corruption
// error: a valid model file always ends with an explicit end section.
func truncated(err error) error {
	if err == io.EOF {
		return &snapshot.FormatError{Msg: "model container truncated before end section"}
	}
	return err
}

// optionsEqual compares enumeration options field by field (Options
// has a slice, so == does not apply).
func optionsEqual(a, b core.Options) bool {
	if a.MaxListWidth != b.MaxListWidth || a.MaxExtend != b.MaxExtend ||
		a.MaxHigherOrder != b.MaxHigherOrder || a.SlackFrac != b.SlackFrac ||
		a.NoDominance != b.NoDominance || a.NoPseudo != b.NoPseudo ||
		a.ExactPrune != b.ExactPrune || a.NoRescore != b.NoRescore ||
		a.VerifyTop != b.VerifyTop || len(a.Active) != len(b.Active) ||
		(a.Active == nil) != (b.Active == nil) {
		return false
	}
	for i := range a.Active {
		if a.Active[i] != b.Active[i] {
			return false
		}
	}
	return true
}
