package waveform

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplifyRemovesCollinear(t *testing.T) {
	w := MustNew(
		Point{T: 0, V: 0},
		Point{T: 1, V: 1}, // collinear with neighbours
		Point{T: 2, V: 2},
		Point{T: 3, V: 0},
	)
	s := w.Simplify(0)
	if s.NumPoints() != 3 {
		t.Fatalf("expected 3 points after simplify, got %v", s)
	}
	if !Equal(w, s, 1e-12) {
		t.Fatal("simplify with tol=0 must be exact")
	}
}

func TestSimplifyKeepsCorners(t *testing.T) {
	w := TrianglePulse(0, 1, 1, 2)
	s := w.Simplify(0)
	if s.NumPoints() != w.NumPoints() {
		t.Fatalf("triangle corners must survive: %v", s)
	}
}

func TestSimplifyShortWaveforms(t *testing.T) {
	if Zero().Simplify(0).NumPoints() != 0 {
		t.Fatal("zero unchanged")
	}
	one := MustNew(Point{T: 1, V: 2})
	if one.Simplify(0).NumPoints() != 1 {
		t.Fatal("single point unchanged")
	}
	two := MustNew(Point{T: 1, V: 2}, Point{T: 3, V: 4})
	if two.Simplify(0).NumPoints() != 2 {
		t.Fatal("two points unchanged")
	}
}

func TestQuickSimplifyStaysClose(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := randPWL(r)
		tol := 1e-6
		s := w.Simplify(tol)
		if s.NumPoints() > w.NumPoints() {
			return false
		}
		// Per-drop error is bounded by tol against the surviving
		// neighbours; allow a modest accumulation factor for runs of
		// near-collinear points.
		for _, p := range w.Points() {
			if d := p.V - s.Value(p.T); d > 8*tol || d < -8*tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(11)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSimplifyIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := randPWL(r).Simplify(0)
		return Equal(w, w.Simplify(0), 1e-12) && w.Simplify(0).NumPoints() == w.NumPoints()
	}
	if err := quick.Check(f, quickCfg(12)); err != nil {
		t.Fatal(err)
	}
}
