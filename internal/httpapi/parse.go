package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
)

// This file is the parse half of the parse/validate/act split: it
// turns request bodies into wire structs and nothing else. No model or
// circuit knowledge lives here — that is validity.go's job.

// QueryRequest is the wire form of one query.
type QueryRequest struct {
	// Op is "addition"/"add", "elimination"/"elim" or "whatif".
	Op string `json:"op"`
	// Net names the target net; "" targets the circuit outputs.
	Net string `json:"net,omitempty"`
	// K is the requested cardinality for top-k ops (the full 1..K
	// curve is returned).
	K int `json:"k,omitempty"`
	// Fix lists the coupling IDs a what-if scenario deactivates.
	Fix []int `json:"fix,omitempty"`
	// TimeoutMs / TimeoutNs cap the query's wall-clock time (TimeoutNs
	// wins when both are set; 0 takes the server default). The server
	// clamps both to its configured maximum.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	TimeoutNs int64 `json:"timeoutNs,omitempty"`
	// MaxWork caps the enumeration work in candidate evaluations
	// (0 takes the server default, clamped to the server maximum).
	MaxWork int64 `json:"maxWork,omitempty"`
	// Exact selects the exact-enumeration analyzer (core.Exact
	// options) from the model's pool instead of the default one.
	Exact bool `json:"exact,omitempty"`
}

// BatchRequest carries many queries answered over one analyzer.
type BatchRequest struct {
	Queries []QueryRequest `json:"queries"`
	// Workers sizes the batch worker pool (0 = GOMAXPROCS). Results
	// are byte-identical at any setting.
	Workers int `json:"workers,omitempty"`
	// Exact selects the exact-enumeration analyzer for the whole
	// batch; per-query Exact flags are rejected in batches.
	Exact bool `json:"exact,omitempty"`
}

// SweepRequest is a k-sweep: one top-k query per target net, streamed
// back as NDJSON in request order.
type SweepRequest struct {
	// Op is "addition"/"add" or "elimination"/"elim".
	Op string `json:"op"`
	// Nets lists the target nets by name ("" entry = circuit outputs).
	// Empty sweeps the circuit outputs plus every driven net.
	Nets []string `json:"nets,omitempty"`
	K    int      `json:"k"`
	// Workers sizes the sweep's worker pool (0 = GOMAXPROCS). Records
	// stream in request order regardless.
	Workers   int   `json:"workers,omitempty"`
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	TimeoutNs int64 `json:"timeoutNs,omitempty"`
	MaxWork   int64 `json:"maxWork,omitempty"`
	Exact     bool  `json:"exact,omitempty"`
}

// UploadRequest is a JSON model upload. Exactly one of Netlist and
// Verilog must be set; SPEF and Liberty ride along with Verilog
// (Liberty also applies to Netlist; absent, the built-in synthetic
// library is used).
type UploadRequest struct {
	Netlist string `json:"netlist,omitempty"`
	Verilog string `json:"verilog,omitempty"`
	SPEF    string `json:"spef,omitempty"`
	Liberty string `json:"liberty,omitempty"`
}

// readBody drains the request body under the server's size cap.
// An oversized body maps to 413 with the body-too-large code.
func readBody(w http.ResponseWriter, r *http.Request, maxBytes int64) ([]byte, *apiError) {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, &apiError{status: http.StatusRequestEntityTooLarge, code: codeBodyTooLarge,
				msg: "request body exceeds the server limit"}
		}
		return nil, errBadRequest(codeBadRequest, "reading request body: %v", err)
	}
	return data, nil
}

// decodeJSON strictly decodes one JSON document into v: unknown fields
// and trailing garbage are rejected, so a typoed field name fails
// loudly instead of silently running with defaults.
func decodeJSON(data []byte, v any) *apiError {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errBadRequest(codeBadJSON, "decoding request: %v", err)
	}
	if dec.More() {
		return errBadRequest(codeBadJSON, "trailing data after the JSON document")
	}
	return nil
}

func parseQuery(w http.ResponseWriter, r *http.Request, maxBytes int64) (*QueryRequest, *apiError) {
	data, aerr := readBody(w, r, maxBytes)
	if aerr != nil {
		return nil, aerr
	}
	var qr QueryRequest
	if aerr := decodeJSON(data, &qr); aerr != nil {
		return nil, aerr
	}
	return &qr, nil
}

func parseBatch(w http.ResponseWriter, r *http.Request, maxBytes int64) (*BatchRequest, *apiError) {
	data, aerr := readBody(w, r, maxBytes)
	if aerr != nil {
		return nil, aerr
	}
	var br BatchRequest
	if aerr := decodeJSON(data, &br); aerr != nil {
		return nil, aerr
	}
	return &br, nil
}

func parseSweep(w http.ResponseWriter, r *http.Request, maxBytes int64) (*SweepRequest, *apiError) {
	data, aerr := readBody(w, r, maxBytes)
	if aerr != nil {
		return nil, aerr
	}
	var sr SweepRequest
	if aerr := decodeJSON(data, &sr); aerr != nil {
		return nil, aerr
	}
	return &sr, nil
}

// parseUpload accepts either a JSON UploadRequest (Content-Type
// application/json) or a raw native-netlist body (anything else).
func parseUpload(w http.ResponseWriter, r *http.Request, maxBytes int64) (*UploadRequest, *apiError) {
	data, aerr := readBody(w, r, maxBytes)
	if aerr != nil {
		return nil, aerr
	}
	if strings.Contains(r.Header.Get("Content-Type"), "json") {
		var ur UploadRequest
		if aerr := decodeJSON(data, &ur); aerr != nil {
			return nil, aerr
		}
		return &ur, nil
	}
	return &UploadRequest{Netlist: string(data)}, nil
}
