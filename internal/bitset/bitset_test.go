package bitset

import (
	"math/rand"
	"testing"
)

func TestDenseAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		d := New(n)
		ref := map[int]bool{}
		for op := 0; op < 200; op++ {
			i := rng.Intn(n)
			d.Set(i)
			ref[i] = true
		}
		if d.Count() != len(ref) {
			t.Fatalf("trial %d: count %d, want %d", trial, d.Count(), len(ref))
		}
		for i := 0; i < n; i++ {
			if d.Get(i) != ref[i] {
				t.Fatalf("trial %d: Get(%d)=%v, want %v", trial, i, d.Get(i), ref[i])
			}
		}
		var seen []int
		d.ForEach(func(i int) { seen = append(seen, i) })
		if len(seen) != len(ref) {
			t.Fatalf("trial %d: ForEach visited %d, want %d", trial, len(seen), len(ref))
		}
		for j := 1; j < len(seen); j++ {
			if seen[j-1] >= seen[j] {
				t.Fatalf("trial %d: ForEach out of order: %v", trial, seen)
			}
		}
		d.Clear()
		if d.Count() != 0 {
			t.Fatalf("trial %d: Count after Clear = %d", trial, d.Count())
		}
	}
}

func TestResetShrinkGrow(t *testing.T) {
	d := New(130)
	d.Set(129)
	d.Reset(64)
	if d.Len() != 64 || d.Count() != 0 {
		t.Fatalf("after shrink: len=%d count=%d", d.Len(), d.Count())
	}
	d.Set(63)
	d.Reset(500)
	if d.Count() != 0 {
		t.Fatalf("after grow: stale bits survived (count=%d)", d.Count())
	}
	d.Set(499)
	if !d.Get(499) {
		t.Fatal("Set(499) lost")
	}
}

func TestPoolReturnsCleared(t *testing.T) {
	d := Get(100)
	for i := 0; i < 100; i += 3 {
		d.Set(i)
	}
	Put(d)
	e := Get(100)
	defer Put(e)
	if e.Count() != 0 {
		t.Fatalf("pooled bitset not cleared: count=%d", e.Count())
	}
}

func TestZeroUniverse(t *testing.T) {
	d := New(0)
	if d.Count() != 0 || d.Len() != 0 {
		t.Fatal("empty universe misbehaves")
	}
	d.ForEach(func(int) { t.Fatal("ForEach on empty universe") })
}
