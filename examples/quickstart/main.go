// Quickstart: parse a small coupled netlist, run noise-aware timing,
// and compute the top-3 aggressor addition set — the three coupling
// capacitors whose crosstalk hurts the circuit delay the most.
package main

import (
	"fmt"
	"log"

	"topkagg"
)

const design = `
circuit quickstart
input a b c
output y
# victim path: three gates deep
gate g1 NAND2_X1 a b -> n1
gate g2 INV_X1   n1  -> n2
gate g3 NAND2_X1 n2 c -> y
# a neighbouring bus routed alongside the victim path
gate h1 INV_X1 c -> m1
gate h2 INV_X1 m1 -> m2
gate h3 INV_X1 m2 -> m3
# extraction found these coupling capacitors (fF)
couple n1 m1 2.5
couple n2 m2 3.0
couple n2 m3 1.5
couple y  m3 2.0
`

func main() {
	c, err := topkagg.ParseNetlistString(design)
	if err != nil {
		log.Fatal(err)
	}
	m := topkagg.NewModel(c)

	// Reference noise analysis: how bad is crosstalk here at all?
	all, err := m.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %d gates, %d coupling caps\n", c.Name, c.NumGates(), c.NumCouplings())
	fmt.Printf("noiseless delay: %.4f ns\n", all.Base.CircuitDelay())
	fmt.Printf("fully noisy delay: %.4f ns (%d fixpoint iterations)\n",
		all.CircuitDelay(), all.Iterations)

	// Which couplings matter most? Small circuit: exact enumeration.
	res, err := topkagg.TopKAddition(m, 3, topkagg.ExactOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-k aggressor addition sets:")
	for i, s := range res.PerK {
		fmt.Printf("  k=%d: delay %.4f ns, couplings:", i+1, s.Delay)
		for _, id := range s.IDs {
			fmt.Printf(" %s", topkagg.CouplingString(c, id))
		}
		fmt.Println()
	}
}
