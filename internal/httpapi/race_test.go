package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"topkagg/internal/circuit"
	"topkagg/internal/netlist"
)

// settleGoroutines polls until the goroutine count drops to at most
// want, or the deadline passes; returns the final count.
func settleGoroutines(want int, deadline time.Duration) int {
	var n int
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		runtime.GC()
		if n = runtime.NumGoroutine(); n <= want {
			return n
		}
		time.Sleep(20 * time.Millisecond)
	}
	return runtime.NumGoroutine()
}

// TestConcurrentMixedTrafficNoLeaks hammers one server from many
// goroutines mixing model uploads, queries, sweeps with mid-stream
// client disconnects, and admission-pressure traffic, then checks
// that (a) every response is a clean success or a structured 429 —
// nothing hangs, nothing returns a torn body — and (b) no goroutines
// leak once the clients go away. Run under -race this doubles as the
// data-race gate for the whole httpapi package.
func TestConcurrentMixedTrafficNoLeaks(t *testing.T) {
	c := testCircuit(t, 17)
	baseline := settleGoroutines(0, time.Second) // current steady state

	ts := newTestServer(t, Config{MaxInFlight: 4, MaxQueue: 8})
	uploadNetlist(t, ts, "shared", c)

	var sweepNets []string
	for i := 0; i < c.NumNets() && len(sweepNets) < 4; i++ {
		if c.Net(circuit.NetID(i)).Driver >= 0 {
			sweepNets = append(sweepNets, c.Net(circuit.NetID(i)).Name)
		}
	}

	const (
		goroutines = 8
		iters      = 6
	)
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				switch (g + it) % 3 {
				case 0: // upload a fresh model, then delete it
					name := fmt.Sprintf("g%d-i%d", g, it)
					if err := tryUpload(ts, name, netlist.String(c)); err != nil {
						errc <- err
						continue
					}
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/"+name, nil)
					if resp, err := ts.Client().Do(req); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				case 1: // query the shared model
					if err := tryQuery(ts, "shared", QueryRequest{Op: "addition", K: 2}); err != nil {
						errc <- err
					}
				case 2: // sweep the shared model, disconnect mid-stream
					if err := trySweepDisconnect(ts, "shared", sweepNets); err != nil {
						errc <- err
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Everything client-side released: the server must settle back to
	// its baseline (plus a small slack for httptest's own machinery).
	ts.Client().CloseIdleConnections()
	if n := settleGoroutines(baseline+3, 5*time.Second); n > baseline+3 {
		t.Errorf("goroutines leaked: baseline %d, settled at %d", baseline, n)
	}
}

// tryUpload PUTs a netlist; 200 and structured 429/503 are clean.
func tryUpload(ts *httptest.Server, name, body string) error {
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/"+name, strings.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		return fmt.Errorf("upload %s: %w", name, err)
	}
	defer resp.Body.Close()
	return checkClean(resp)
}

// tryQuery posts one query; 200 and structured 429 are clean.
func tryQuery(ts *httptest.Server, model string, qr QueryRequest) error {
	data, _ := json.Marshal(qr)
	resp, err := ts.Client().Post(ts.URL+"/v1/models/"+model+"/query", "application/json", bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	defer resp.Body.Close()
	return checkClean(resp)
}

// trySweepDisconnect starts an NDJSON sweep, reads one line, then
// abandons the stream by canceling the request context — the server
// must absorb the disconnect without error.
func trySweepDisconnect(ts *httptest.Server, model string, nets []string) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	data, _ := json.Marshal(SweepRequest{Op: "elimination", Nets: nets, K: 2, Workers: 2})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/models/"+model+"/sweep", bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return checkClean(resp)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("sweep: status %d: %s", resp.StatusCode, body)
	}
	// Read the first record, then walk away mid-stream.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil && err != io.EOF {
		return fmt.Errorf("sweep first record: %w", err)
	}
	cancel()
	return nil
}

// checkClean accepts 200, and 429/503 only with a structured
// machine-readable body; anything else is a protocol violation.
func checkClean(resp *http.Response) error {
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("read body: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code == "" {
			return fmt.Errorf("status %d without structured error body: %s", resp.StatusCode, body)
		}
		return nil
	default:
		return fmt.Errorf("unexpected status %d: %s", resp.StatusCode, body)
	}
}

// TestAdmissionQueueAndDrain exercises the admission ladder without
// HTTP: fill the slots, queue to the cap, overflow to 429, release to
// un-queue, drain to 503.
func TestAdmissionQueueAndDrain(t *testing.T) {
	a := newAdmission(2, 1)
	ctx := context.Background()

	r1, aerr := a.acquire(ctx)
	if aerr != nil {
		t.Fatal(aerr)
	}
	r2, aerr := a.acquire(ctx)
	if aerr != nil {
		t.Fatal(aerr)
	}

	// Third caller queues (blocks); give it time to be counted.
	acquired := make(chan func(), 1)
	go func() {
		r, aerr := a.acquire(ctx)
		if aerr != nil {
			t.Error(aerr)
			acquired <- func() {}
			return
		}
		acquired <- r
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.queued.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.queued.Load() != 1 {
		t.Fatalf("queued = %d, want 1", a.queued.Load())
	}

	// Fourth caller overflows the queue: immediate 429.
	if _, aerr := a.acquire(ctx); aerr == nil || aerr.status != http.StatusTooManyRequests {
		t.Fatalf("queue overflow: %v, want 429", aerr)
	}

	// Releasing a slot lets the queued caller through.
	r1()
	select {
	case r3 := <-acquired:
		r3()
	case <-time.After(2 * time.Second):
		t.Fatal("queued caller never acquired after release")
	}
	r2()

	// After drain, everything is 503.
	a.drain()
	if _, aerr := a.acquire(ctx); aerr == nil || aerr.status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain acquire: %v, want 503", aerr)
	}
}

// TestAdmissionCanceledWhileQueued checks the 499 path: a caller whose
// context dies while waiting in the queue gets a typed rejection, and
// the queue count returns to zero.
func TestAdmissionCanceledWhileQueued(t *testing.T) {
	a := newAdmission(1, 4)
	release, aerr := a.acquire(context.Background())
	if aerr != nil {
		t.Fatal(aerr)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *apiError, 1)
	go func() {
		_, aerr := a.acquire(ctx)
		done <- aerr
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.queued.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case aerr := <-done:
		if aerr == nil || aerr.status != 499 {
			t.Fatalf("canceled-in-queue: %v, want 499", aerr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled caller never returned")
	}
	if q := a.queued.Load(); q != 0 {
		t.Errorf("queued = %d after cancel, want 0", q)
	}
}

// TestNilAdmissionUnlimited pins the nil = unlimited convention.
func TestNilAdmissionUnlimited(t *testing.T) {
	a := newAdmission(0, 0)
	for i := 0; i < 100; i++ {
		release, aerr := a.acquire(context.Background())
		if aerr != nil {
			t.Fatal(aerr)
		}
		release()
	}
}
