package bruteforce

import (
	"testing"
	"time"

	"topkagg/internal/circuit"
	"topkagg/internal/gen"
	"topkagg/internal/noise"
)

func TestParallelMatchesSerial(t *testing.T) {
	c, err := gen.Build(gen.Spec{Name: "p", Gates: 20, Couplings: 12, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	m := noise.NewModel(c)
	for k := 1; k <= 3; k++ {
		serial, err := Addition(m, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 0} {
			par, err := AdditionParallel(m, k, 0, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.Delay != serial.Delay {
				t.Fatalf("k=%d workers=%d: delay %g != serial %g", k, workers, par.Delay, serial.Delay)
			}
			if len(par.IDs) != len(serial.IDs) {
				t.Fatalf("k=%d: set size mismatch %v vs %v", k, par.IDs, serial.IDs)
			}
			for i := range par.IDs {
				if par.IDs[i] != serial.IDs[i] {
					t.Fatalf("k=%d workers=%d: nondeterministic set %v vs %v", k, workers, par.IDs, serial.IDs)
				}
			}
			if par.Evaluated != serial.Evaluated {
				t.Fatalf("k=%d: parallel evaluated %d, serial %d", k, par.Evaluated, serial.Evaluated)
			}
		}
	}
}

func TestParallelEliminationMatchesSerial(t *testing.T) {
	m := model(t)
	serial, err := Elimination(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := EliminationParallel(m, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if par.Delay != serial.Delay {
		t.Fatalf("delay %g != %g", par.Delay, serial.Delay)
	}
}

func TestParallelValidation(t *testing.T) {
	m := model(t)
	if _, err := AdditionParallel(m, 0, 0, 2); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := AdditionParallel(m, 99, 0, 2); err == nil {
		t.Fatal("k > r must error")
	}
}

func TestParallelDeadline(t *testing.T) {
	c, err := gen.Build(gen.Spec{Name: "p", Gates: 40, Couplings: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m := noise.NewModel(c)
	res, err := AdditionParallel(m, 3, time.Millisecond, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Skip("machine finished C(60,3) full noise runs within 1ms; nothing to assert")
	}
	if res.Evaluated <= 0 {
		t.Fatal("timed-out search must still report progress")
	}
}

func toIDs(xs []int) []circuit.CouplingID {
	out := make([]circuit.CouplingID, len(xs))
	for i, x := range xs {
		out[i] = circuit.CouplingID(x)
	}
	return out
}

func TestLexLess(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{1, 2}, []int{1, 3}, true},
		{[]int{1, 3}, []int{1, 2}, false},
		{[]int{1}, []int{1, 2}, true},
		{[]int{1, 2}, []int{1, 2}, false},
	}
	for _, tc := range cases {
		if got := lexLess(toIDs(tc.a), toIDs(tc.b)); got != tc.want {
			t.Errorf("lexLess(%v,%v) = %v", tc.a, tc.b, got)
		}
	}
}
