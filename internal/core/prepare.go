package core

import (
	"context"
	"fmt"

	"topkagg/internal/budget"
	"topkagg/internal/circuit"
	"topkagg/internal/noise"
)

// WholeCircuit selects the circuit's primary outputs as the analysis
// target (the paper's circuit-delay problems) instead of a single net.
const WholeCircuit circuit.NetID = -1

// Shared is the reusable, read-only engine state of one enumeration
// configuration: the all-aggressor fixpoint, victim selection,
// dominance intervals, primary-aggressor envelopes and (for
// elimination) the scoring totals. Building it is the expensive part
// of every TopK* call; once built, any number of TopK runs — including
// runs executing concurrently in different goroutines — can share one
// Shared instance. The serve package memoizes these per (mode, target)
// to answer sustained query traffic over one model.
type Shared struct {
	p *prepared
}

// PrepareAddition builds shared addition-problem state for the given
// target net (WholeCircuit analyzes the circuit outputs; a specific
// net analyzes that net's arrival over its full fanin cone).
func PrepareAddition(m *noise.Model, net circuit.NetID, opt Options) (*Shared, error) {
	return prepareShared(m, nil, addition, net, opt)
}

// PrepareElimination builds shared elimination-problem state for the
// given target net (WholeCircuit analyzes the circuit outputs).
func PrepareElimination(m *noise.Model, net circuit.NetID, opt Options) (*Shared, error) {
	return prepareShared(m, nil, elimination, net, opt)
}

// PrepareAdditionFrom is PrepareAddition with a precomputed
// all-aggressor fixpoint. full must be the result of m.Run(opt.Active);
// batch layers use this to amortize the fixpoint — the single most
// expensive preparation step — across many (mode, target) states.
func PrepareAdditionFrom(m *noise.Model, full *noise.Analysis, net circuit.NetID, opt Options) (*Shared, error) {
	return prepareShared(m, full, addition, net, opt)
}

// PrepareEliminationFrom is PrepareElimination with a precomputed
// all-aggressor fixpoint (see PrepareAdditionFrom).
func PrepareEliminationFrom(m *noise.Model, full *noise.Analysis, net circuit.NetID, opt Options) (*Shared, error) {
	return prepareShared(m, full, elimination, net, opt)
}

// PrepareAdditionBudget is PrepareAdditionFrom under a budget: the
// preparation (including its fixpoint run, when full is nil) polls b
// and stops early with a typed error. The serve layer builds its
// cached preparations under the triggering query's budget through
// this.
func PrepareAdditionBudget(b *budget.B, m *noise.Model, full *noise.Analysis, net circuit.NetID, opt Options) (*Shared, error) {
	return prepareSharedB(b, m, full, addition, net, opt)
}

// PrepareEliminationBudget is PrepareEliminationFrom under a budget
// (see PrepareAdditionBudget).
func PrepareEliminationBudget(b *budget.B, m *noise.Model, full *noise.Analysis, net circuit.NetID, opt Options) (*Shared, error) {
	return prepareSharedB(b, m, full, elimination, net, opt)
}

func prepareShared(m *noise.Model, full *noise.Analysis, md mode, net circuit.NetID, opt Options) (*Shared, error) {
	return prepareSharedB(nil, m, full, md, net, opt)
}

func prepareSharedB(b *budget.B, m *noise.Model, full *noise.Analysis, md mode, net circuit.NetID, opt Options) (*Shared, error) {
	if net != WholeCircuit && (int(net) < 0 || int(net) >= m.C.NumNets()) {
		return nil, fmt.Errorf("core: no net %d in circuit %s", net, m.C.Name)
	}
	p, err := newPrepared(m, opt, md, net, full, b)
	if err != nil {
		return nil, err
	}
	return &Shared{p: p}, nil
}

// TopK runs a fresh enumeration up to cardinality k over the shared
// state. Safe for concurrent use: each call takes its own engine, and
// the shared state is never written after Prepare* returns. Given
// identical k, the result is identical to a cold TopK* call with the
// same configuration.
func (s *Shared) TopK(k int) (*Result, error) {
	return s.p.newEngine(nil).run(k)
}

// TopKCtx is TopK honoring the context's cancellation and deadline:
// the enumeration polls it between candidate batches and degrades to
// a Partial result carrying the cardinalities that completed (see
// Result.Partial).
func (s *Shared) TopKCtx(ctx context.Context, k int) (*Result, error) {
	return s.TopKBudget(budget.New(ctx), k)
}

// TopKBudget is TopK under a full budget — cancellation, deadline and
// a candidate-evaluation work allowance (budget.WithWork). A nil
// budget runs unbounded.
func (s *Shared) TopKBudget(b *budget.B, k int) (*Result, error) {
	return s.p.newEngine(b).run(k)
}

// FullAnalysis returns the memoized fixpoint of the configuration's
// active mask (all aggressors unless Options.Active restricts them).
// It is read-only; callers may share it, e.g. as the base of
// incremental what-if re-analyses.
func (s *Shared) FullAnalysis() *noise.Analysis { return s.p.full }

// NumVictims returns how many victim nets the configuration enumerates.
func (s *Shared) NumVictims() int { return len(s.p.victims) }

// EnvCacheStats returns the lifetime hit/miss totals of the shared
// Rule-1 set-envelope intern table, accumulated over every run (and
// every concurrent query) executed against this prepared state. The
// serve layer surfaces these for its cached preparations.
func (s *Shared) EnvCacheStats() (hits, misses int64) { return s.p.envc.Stats() }

// Target returns the configured answer net (WholeCircuit when the
// enumeration targets the circuit outputs).
func (s *Shared) Target() circuit.NetID { return s.p.target }
