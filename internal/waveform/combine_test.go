package waveform

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// combineRef is the original (binary-search-per-point) implementation,
// kept as the reference for the optimized linear merge.
func combineRef(a, b PWL, f func(av, bv float64) float64) PWL {
	return combine(a, b, f)
}

func TestQuickLinearCombineMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randPWL(r), randPWL(r)
		add := combineRef(a, b, func(x, y float64) float64 { return x + y })
		sub := combineRef(a, b, func(x, y float64) float64 { return x - y })
		return Equal(Add(a, b), add, 1e-9) && Equal(Sub(a, b), sub, 1e-9)
	}
	if err := quick.Check(f, quickCfg(21)); err != nil {
		t.Fatal(err)
	}
}

func TestLinearCombineEdgeCases(t *testing.T) {
	a := TrianglePulse(0, 1, 1, 2)
	if !Equal(Add(a, Zero()), a, 1e-12) {
		t.Fatal("a + 0 must equal a")
	}
	if !Equal(Add(Zero(), a), a, 1e-12) {
		t.Fatal("0 + a must equal a")
	}
	if !Equal(Sub(a, a), Zero(), 1e-12) {
		t.Fatal("a - a must be zero")
	}
	if Add(Zero(), Zero()).NumPoints() != 0 {
		t.Fatal("0 + 0 must be the zero waveform")
	}
	// Coincident breakpoints collapse.
	b := TrianglePulse(0, 1, 1, 3)
	s := Add(a, b)
	for i := 1; i < s.NumPoints(); i++ {
		pts := s.Points()
		if pts[i].T <= pts[i-1].T {
			t.Fatalf("non-increasing breakpoints in %v", s)
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	ws := make([]PWL, 32)
	for i := range ws {
		ws[i] = randPulse(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := Zero()
		for _, w := range ws {
			acc = Add(acc, w)
		}
	}
}
