package core

import (
	"math"
	"testing"

	"topkagg/internal/bruteforce"
	"topkagg/internal/gen"
	"topkagg/internal/noise"
)

// TestRandomCircuitsMatchBruteForce is the randomized form of the
// paper's Table-1 validation across a batch of generated circuits with
// different topologies and coupling patterns: with exact options
// (no caps + verified selection) the enumeration must reproduce the
// brute-force optimum for k = 1 and 2 on every seed, for both the
// addition and the elimination problem.
func TestRandomCircuitsMatchBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		c, err := gen.Build(gen.Spec{Name: "rnd", Gates: 14, Couplings: 10, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		m := noise.NewModel(c)

		add, err := TopKAddition(m, 2, Exact())
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 2 && k <= len(add.PerK); k++ {
			bf, err := bruteforce.Addition(m, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(add.PerK[k-1].Delay - bf.Delay); d > 1e-9 {
				t.Errorf("seed %d addition k=%d: proposed %.9f vs brute force %.9f (sets %v vs %v)",
					seed, k, add.PerK[k-1].Delay, bf.Delay, add.PerK[k-1].IDs, bf.IDs)
			}
		}

		del, err := TopKElimination(m, 2, Exact())
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 2 && k <= len(del.PerK); k++ {
			bf, err := bruteforce.Elimination(m, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			got := del.PerK[k-1].Delay
			if d := math.Abs(got - bf.Delay); d > 1e-9 {
				t.Errorf("seed %d elimination k=%d: proposed %.9f vs brute force %.9f (sets %v vs %v)",
					seed, k, got, bf.Delay, del.PerK[k-1].IDs, bf.IDs)
			}
		}
	}
}

// TestRandomCurveInvariants checks the structural invariants of the
// per-cardinality curves on a batch of random circuits with default
// (beamed) options: bracketing by the endpoints and monotonicity.
func TestRandomCurveInvariants(t *testing.T) {
	for seed := int64(11); seed <= 16; seed++ {
		c, err := gen.Build(gen.Spec{Name: "rnd", Gates: 30, Couplings: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		m := noise.NewModel(c)
		add, err := TopKAddition(m, 6, Options{})
		if err != nil {
			t.Fatal(err)
		}
		prev := add.BaseDelay
		for i, s := range add.PerK {
			if s.Delay < prev-1e-9 {
				t.Errorf("seed %d: addition curve dips at k=%d", seed, i+1)
			}
			if s.Delay > add.AllDelay+1e-9 {
				t.Errorf("seed %d: addition exceeds all-aggressor delay at k=%d", seed, i+1)
			}
			prev = s.Delay
		}
		del, err := TopKElimination(m, 6, Options{})
		if err != nil {
			t.Fatal(err)
		}
		prev = del.AllDelay
		for i, s := range del.PerK {
			if s.Delay > prev+1e-9 {
				t.Errorf("seed %d: elimination curve rises at k=%d", seed, i+1)
			}
			if s.Delay < del.BaseDelay-1e-9 {
				t.Errorf("seed %d: elimination undercuts noiseless delay at k=%d", seed, i+1)
			}
			prev = s.Delay
		}
	}
}
