package noise

import (
	"math/rand"
	"testing"
	"testing/quick"

	"topkagg/internal/circuit"
	"topkagg/internal/gen"
	"topkagg/internal/sta"
	"topkagg/internal/waveform"
)

// smallModel builds a deterministic small generated circuit for
// property tests.
func smallModel(t *testing.T, seed int64) *Model {
	t.Helper()
	c, err := gen.Build(gen.Spec{Name: "prop", Gates: 25, Couplings: 40, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return NewModel(c)
}

func TestQuickDelayMonotoneInMask(t *testing.T) {
	m := smallModel(t, 3)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random mask and a strictly larger one.
		small := NewMask(m.C)
		for i := range small {
			small[i] = r.Intn(3) == 0
		}
		big := small.Clone()
		extra := false
		for i := range big {
			if !big[i] && r.Intn(2) == 0 {
				big[i] = true
				extra = true
			}
		}
		if !extra {
			return true
		}
		as, err := m.Run(small)
		if err != nil {
			return false
		}
		ab, err := m.Run(big)
		if err != nil {
			return false
		}
		return ab.CircuitDelay() >= as.CircuitDelay()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNetNoiseNonNegativeAndBounded(t *testing.T) {
	m := smallModel(t, 5)
	an, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, net := range m.C.Nets() {
		n := an.NetNoise[net.ID]
		if n < 0 {
			t.Fatalf("negative delay noise on %s", net.Name)
		}
		if len(m.C.CouplingsOf(net.ID)) == 0 && n != 0 {
			t.Fatalf("uncoupled net %s has own noise %g", net.Name, n)
		}
		ub := m.DelayUpperBound(net.ID, an.Timing.Windows)
		if n > ub+1e-6 {
			t.Fatalf("noise %g on %s exceeds infinite-window bound %g", n, net.Name, ub)
		}
	}
}

func TestQuickNoisyWindowsContainBase(t *testing.T) {
	m := smallModel(t, 9)
	an, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, net := range m.C.Nets() {
		b := an.Base.Window(net.ID)
		n := an.Timing.Window(net.ID)
		if n.LAT < b.LAT-1e-9 {
			t.Fatalf("noisy LAT earlier than base on %s", net.Name)
		}
		if n.EAT != b.EAT {
			t.Fatalf("noise must not move EAT on %s", net.Name)
		}
	}
}

func TestQuickEnvelopeBoundsAnyAlignment(t *testing.T) {
	// The trapezoidal envelope must bound the pulse for every aggressor
	// alignment inside the timing window — its defining property.
	m := smallModel(t, 11)
	var cp *circuit.Coupling
	for _, c := range m.C.Couplings() {
		cp = c
		break
	}
	if cp == nil {
		t.Skip("no couplings generated")
	}
	victim := cp.A
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		win := sta.Window{EAT: r.Float64(), Slew: 0.02 + r.Float64()*0.2}
		win.LAT = win.EAT + r.Float64()*2
		env := m.Envelope(victim, cp, win)
		ta := win.EAT + r.Float64()*(win.LAT-win.EAT)
		pulse := m.PulseAt(victim, cp, win.Slew, ta)
		return waveform.Encapsulates(env, pulse, win.EAT-2, win.LAT+5, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDelayNoiseSubadditivityDirection(t *testing.T) {
	// Combined envelopes produce at least as much delay noise as each
	// component alone (superposition never cancels in this model).
	m := smallModel(t, 17)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vw := sta.Window{LAT: 2 + r.Float64(), Slew: 0.05 + r.Float64()*0.2}
		e1 := waveform.Trapezoid(vw.LAT-0.5+r.Float64(), 0.1, vw.LAT+r.Float64(), 0.2, r.Float64()*0.5)
		e2 := waveform.Trapezoid(vw.LAT-0.5+r.Float64(), 0.1, vw.LAT+r.Float64(), 0.2, r.Float64()*0.5)
		both := m.DelayNoise(vw, waveform.Add(e1, e2))
		return both >= m.DelayNoise(vw, e1)-1e-9 && both >= m.DelayNoise(vw, e2)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(19))}); err != nil {
		t.Fatal(err)
	}
}

func TestRunIdempotentAcrossCalls(t *testing.T) {
	m := smallModel(t, 23)
	a1, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if a1.CircuitDelay() != a2.CircuitDelay() || a1.Iterations != a2.Iterations {
		t.Fatal("Run must be deterministic")
	}
}
