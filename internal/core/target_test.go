package core

import (
	"math"
	"testing"

	"topkagg/internal/noise"
)

// targetSrc: the sink y sees almost no noise, but internal net n1 is
// heavily attacked; per-net analysis of m-chain's z must pick the
// couplings on its own cone, not y's.
const targetSrc = `circuit tgt
output y z
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 b -> m1
gate h2 INV_X1 m1 -> z
gate f1 INV_X1 d -> p1
couple n1 p1 3.0
couple m1 p1 2.5
`

func TestTopKAdditionAt(t *testing.T) {
	m := model(t, targetSrc)
	z, _ := m.C.NetByName("z")
	res, err := TopKAdditionAt(m, z, 1, Exact())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerK) != 1 {
		t.Fatalf("want one selection, got %d", len(res.PerK))
	}
	// Coupling 1 (m1-p1) is the one attacking z's cone.
	if len(res.PerK[0].IDs) != 1 || res.PerK[0].IDs[0] != 1 {
		t.Fatalf("per-net analysis picked %v, want [1]", res.PerK[0].IDs)
	}
	// Endpoints are z's arrivals, verified against the reference runs.
	quiet, err := m.Run(noise.NewMask(m.C))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BaseDelay-quiet.Timing.Window(z).LAT) > 1e-9 {
		t.Fatalf("BaseDelay = %g, want z quiet arrival %g", res.BaseDelay, quiet.Timing.Window(z).LAT)
	}
	if res.PerK[0].Delay <= res.BaseDelay {
		t.Fatal("selected coupling must delay z")
	}
	if res.PerK[0].Delay > res.AllDelay+1e-9 {
		t.Fatal("per-net delay cannot exceed z's all-aggressor arrival")
	}
}

func TestTopKEliminationAt(t *testing.T) {
	m := model(t, targetSrc)
	z, _ := m.C.NetByName("z")
	res, err := TopKEliminationAt(m, z, 1, Exact())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerK) != 1 || res.PerK[0].IDs[0] != 1 {
		t.Fatalf("per-net elimination picked %+v, want coupling 1", res.PerK)
	}
	if res.PerK[0].Delay >= res.AllDelay {
		t.Fatal("fixing the attacking coupling must recover z's arrival")
	}
}

func TestTopKAtValidation(t *testing.T) {
	m := model(t, targetSrc)
	if _, err := TopKAdditionAt(m, -1, 1, Exact()); err == nil {
		t.Fatal("negative net must error")
	}
	if _, err := TopKEliminationAt(m, 9999, 1, Exact()); err == nil {
		t.Fatal("out-of-range net must error")
	}
}
