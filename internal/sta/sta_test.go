package sta

import (
	"math"
	"testing"

	"topkagg/internal/cell"
	"topkagg/internal/circuit"
	"topkagg/internal/netlist"
)

func parse(t *testing.T, src string) *circuit.Circuit {
	t.Helper()
	c, err := netlist.ParseString(src, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func analyze(t *testing.T, c *circuit.Circuit, opt Options) *Result {
	t.Helper()
	r, err := Analyze(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestChainDelayAccumulates(t *testing.T) {
	c := parse(t, `circuit chain
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
`)
	r := analyze(t, c, Options{})
	a, _ := c.NetByName("a")
	n1, _ := c.NetByName("n1")
	y, _ := c.NetByName("y")
	if got := r.Window(a); got.EAT != 0 || got.LAT != 0 {
		t.Fatalf("PI window = %+v", got)
	}
	w1, wy := r.Window(n1), r.Window(y)
	if w1.LAT <= 0 || wy.LAT <= w1.LAT {
		t.Fatalf("delay must accumulate: n1=%+v y=%+v", w1, wy)
	}
	if math.Abs(r.CircuitDelay()-wy.LAT) > 1e-12 {
		t.Fatal("circuit delay must be the sink LAT")
	}
	if w1.EAT != w1.LAT {
		t.Fatalf("single-path net must have a zero-width window: %+v", w1)
	}
}

func TestRecvergentPathsOpenWindow(t *testing.T) {
	// y = NAND(a, INV(INV(a))): the two inputs of g3 arrive at
	// different times, so y's window has positive width.
	c := parse(t, `circuit recon
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> n2
gate g3 NAND2_X1 a n2 -> y
`)
	r := analyze(t, c, Options{})
	y, _ := c.NetByName("y")
	w := r.Window(y)
	if w.Width() <= 0 {
		t.Fatalf("reconvergent paths must open a window: %+v", w)
	}
	if w.EAT > w.LAT {
		t.Fatalf("EAT must not exceed LAT: %+v", w)
	}
}

func TestPIArrivalOption(t *testing.T) {
	c := parse(t, `circuit t
output y
gate g1 NAND2_X1 a b -> y
`)
	b, _ := c.NetByName("b")
	r := analyze(t, c, Options{PIArrival: func(n circuit.NetID) Window {
		if n == b {
			return Window{EAT: 0.1, LAT: 0.5, Slew: 0.08}
		}
		return Window{Slew: DefaultPISlew}
	}})
	y, _ := c.NetByName("y")
	w := r.Window(y)
	if w.Width() < 0.3 {
		t.Fatalf("PI window must propagate: %+v", w)
	}
}

func TestExtraLATWidensWindows(t *testing.T) {
	c := parse(t, `circuit t
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
`)
	base := analyze(t, c, Options{})
	n1, _ := c.NetByName("n1")
	extra := make([]float64, c.NumNets())
	extra[n1] = 0.2
	noisy := analyze(t, c, Options{ExtraLAT: extra})
	y, _ := c.NetByName("y")
	if noisy.Window(n1).LAT <= base.Window(n1).LAT {
		t.Fatal("ExtraLAT must delay the net itself")
	}
	if noisy.Window(y).LAT <= base.Window(y).LAT {
		t.Fatal("ExtraLAT must propagate downstream")
	}
	if noisy.Window(n1).EAT != base.Window(n1).EAT {
		t.Fatal("ExtraLAT must not move EAT")
	}
}

func TestCouplingCapSlowsDelay(t *testing.T) {
	src := `circuit t
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
`
	c1 := parse(t, src)
	c2 := parse(t, src+"couple n1 y 8\n")
	d1 := analyze(t, c1, Options{}).CircuitDelay()
	d2 := analyze(t, c2, Options{}).CircuitDelay()
	if d2 <= d1 {
		t.Fatalf("grounded coupling cap must add load: %g vs %g", d1, d2)
	}
}

func TestSinkAndCriticalPath(t *testing.T) {
	c := parse(t, `circuit t
output y z
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> n2
gate g3 INV_X1 n2 -> y
gate g4 INV_X1 a -> z
`)
	r := analyze(t, c, Options{})
	y, _ := c.NetByName("y")
	if r.Sink() != y {
		t.Fatalf("sink must be the deeper output, got %s", c.Net(r.Sink()).Name)
	}
	path := r.CriticalPath()
	if len(path) != 4 {
		t.Fatalf("critical path length = %d, want 4 (a n1 n2 y)", len(path))
	}
	if c.Net(path[0]).Name != "a" || c.Net(path[3]).Name != "y" {
		t.Fatalf("critical path endpoints wrong: %v", path)
	}
	// Arrival must be nondecreasing along the path.
	for i := 1; i < len(path); i++ {
		if r.Window(path[i]).LAT < r.Window(path[i-1]).LAT {
			t.Fatal("LAT must not decrease along the critical path")
		}
	}
}

func TestWindowOverlaps(t *testing.T) {
	a := Window{EAT: 0, LAT: 1}
	b := Window{EAT: 2, LAT: 3}
	if a.Overlaps(b, 0) {
		t.Fatal("disjoint windows must not overlap")
	}
	if !a.Overlaps(b, 0.6) {
		t.Fatal("guard banding must create overlap")
	}
	if !a.Overlaps(Window{EAT: 0.5, LAT: 2}, 0) {
		t.Fatal("intersecting windows must overlap")
	}
}

func TestAnalyzeRejectsCycle(t *testing.T) {
	c := circuit.New("cyc", cell.Default())
	if _, err := c.AddGate("g1", "NAND2_X1", []string{"a", "n2"}, "n1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("g2", "INV_X1", []string{"n1"}, "n2"); err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(c, Options{}); err == nil {
		t.Fatal("cycle must be rejected")
	}
}

func TestStrongerCellIsFaster(t *testing.T) {
	weak := parse(t, "circuit w\noutput y\ngate g1 INV_X1 a -> n1\ngate g2 INV_X1 n1 -> y\nnet n1 cg=30\n")
	strong := parse(t, "circuit s\noutput y\ngate g1 INV_X4 a -> n1\ngate g2 INV_X1 n1 -> y\nnet n1 cg=30\n")
	dw := analyze(t, weak, Options{}).CircuitDelay()
	ds := analyze(t, strong, Options{}).CircuitDelay()
	if ds >= dw {
		t.Fatalf("upsized driver must be faster under heavy load: X1=%g X4=%g", dw, ds)
	}
}
