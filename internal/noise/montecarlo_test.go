package noise

import (
	"math/rand"
	"testing"

	"topkagg/internal/circuit"
	"topkagg/internal/waveform"
)

// TestMonteCarloEnvelopeIsWorstCase validates the framework's central
// soundness claim by simulation: for random aggressor alignments
// inside their timing windows, the delay obtained from the summed
// *pulses* never exceeds the delay obtained from the summed
// *envelopes*. This is the property that lets the paper replace the
// exponential alignment search with a single superposition.
func TestMonteCarloEnvelopeIsWorstCase(t *testing.T) {
	m := smallModel(t, 61)
	r := rand.New(rand.NewSource(17))
	an, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, net := range m.C.Nets() {
		ids := m.C.CouplingsOf(net.ID)
		if len(ids) == 0 {
			continue
		}
		vw := an.Base.Window(net.ID)
		envCombined := waveform.Zero()
		for _, id := range ids {
			cp := m.C.Coupling(id)
			envCombined = waveform.Add(envCombined, m.Envelope(net.ID, cp, an.Timing.Windows[cp.Other(net.ID)]))
		}
		worst := m.DelayNoise(vw, envCombined)
		// 40 random simultaneous alignments.
		for trial := 0; trial < 40; trial++ {
			pulses := waveform.Zero()
			for _, id := range ids {
				cp := m.C.Coupling(id)
				agg := cp.Other(net.ID)
				w := an.Timing.Windows[agg]
				ta := w.EAT + r.Float64()*(w.LAT-w.EAT)
				pulses = waveform.Add(pulses, m.PulseAt(net.ID, cp, w.Slew, ta))
			}
			got := m.DelayNoise(vw, pulses)
			if got > worst+1e-9 {
				t.Fatalf("net %s: sampled alignment produced %g > envelope worst case %g",
					net.Name, got, worst)
			}
		}
		checked++
	}
	if checked < 5 {
		t.Fatalf("too few coupled nets exercised: %d", checked)
	}
}

// TestMonteCarloSingleAggressorTightness checks the envelope bound is
// not vacuous: for a single aggressor, some alignment gets close to
// the envelope's worst case.
func TestMonteCarloSingleAggressorTightness(t *testing.T) {
	m := smallModel(t, 67)
	r := rand.New(rand.NewSource(19))
	an, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	tried := 0
	for _, cp := range m.C.Couplings() {
		for _, victim := range []circuit.NetID{cp.A, cp.B} {
			agg := cp.Other(victim)
			vw := an.Base.Window(victim)
			aw := an.Timing.Windows[agg]
			env := m.Envelope(victim, cp, aw)
			worst := m.DelayNoise(vw, env)
			if worst < 1e-4 {
				continue // no meaningful noise in this direction
			}
			best := 0.0
			for trial := 0; trial < 200; trial++ {
				ta := aw.EAT + r.Float64()*(aw.LAT-aw.EAT)
				if d := m.DelayNoise(vw, m.PulseAt(victim, cp, aw.Slew, ta)); d > best {
					best = d
				}
			}
			// The best sampled alignment should realize a substantial
			// fraction of the bound (the trapezoid adds the plateau
			// between the two extreme pulse positions, so exact
			// equality is not expected).
			if best < 0.25*worst {
				t.Fatalf("victim %s aggressor %s: bound %g but best sampled alignment only %g",
					m.C.Net(victim).Name, m.C.Net(agg).Name, worst, best)
			}
			tried++
			if tried > 25 {
				return
			}
		}
	}
	if tried == 0 {
		t.Skip("no direction with meaningful single-aggressor noise")
	}
}
