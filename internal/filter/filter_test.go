package filter

import (
	"math"
	"testing"

	"topkagg/internal/cell"
	"topkagg/internal/circuit"
	"topkagg/internal/gen"
	"topkagg/internal/netlist"
	"topkagg/internal/noise"
)

func model(t *testing.T, src string) *noise.Model {
	t.Helper()
	c, err := netlist.ParseString(src, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	return noise.NewModel(c)
}

func TestMagnitudeFilterDropsTinyCouplings(t *testing.T) {
	m := model(t, `circuit t
output y z
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 b -> m1
gate h2 INV_X1 m1 -> z
couple n1 m1 3.0
couple n1 m1 0.001
`)
	res, err := FalseAggressors(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Active[0] != true {
		t.Fatal("strong coupling must survive")
	}
	if res.Active[1] != false || res.MagnitudeFiltered != 2 {
		t.Fatalf("femto-scale coupling must be magnitude-filtered in both directions: %+v", res)
	}
}

func TestTimingFilterDropsDisjointWindows(t *testing.T) {
	// The aggressor (depth 1, strong driver) switches long before the
	// victim's earliest transition (deep chain with heavy loads): its
	// envelope decays before the victim's window — early-false. The
	// reverse direction — the deep net's envelope landing on the
	// settled aggressor net — is late-false because the aggressor's
	// large ground cap keeps the glitch sub-threshold, so its noisy
	// settle stays at its quiet arrival. Both directions false ⇒ the
	// coupling is removable.
	m := model(t, `circuit t
output y
gate v1 INV_X1 a -> v1n
gate v2 INV_X1 v1n -> v2n
gate v3 INV_X1 v2n -> v3n
gate v4 INV_X1 v3n -> v4n
gate v5 INV_X1 v4n -> v5n
gate v6 INV_X1 v5n -> y
net v1n cg=30
net v2n cg=30
net v3n cg=30
gate a1 INV_X4 b -> agg
net agg cg=20 rw=0.05
couple v5n agg 2.0
`)
	res, err := FalseAggressors(m, Options{Guard: 0.01, PeakFrac: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.EarlyFiltered != 1 {
		t.Fatalf("deep-victim direction must be early-false: %+v", res)
	}
	if res.LateFiltered != 1 {
		t.Fatalf("settled-aggressor direction must be late-false: %+v", res)
	}
	if res.Active[0] {
		t.Fatalf("coupling with both directions false must be removable: %+v", res)
	}
	// Soundness on this exact construction.
	full, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	without, err := m.Run(res.Active)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.CircuitDelay()-without.CircuitDelay()) > 1e-9 {
		t.Fatal("removing the false coupling changed the delay")
	}
}

func TestTimingFilterIsExact(t *testing.T) {
	// With the heuristic magnitude filter disabled, removing the
	// filtered couplings must not change the noisy circuit delay at
	// all.
	c, err := gen.Build(gen.Spec{Name: "f", Gates: 60, Couplings: 150, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	m := noise.NewModel(c)
	res, err := FalseAggressors(m, Options{PeakFrac: -1})
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := m.Run(res.Active)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(full.CircuitDelay() - filtered.CircuitDelay()); d > 1e-9 {
		t.Fatalf("exact filtering changed noisy delay by %g ns (false=%d)", d, len(res.False))
	}
}

func TestFullFilteringNearlySound(t *testing.T) {
	// The magnitude filter is a documented heuristic: its total impact
	// on the noisy delay must stay below half a percent.
	c, err := gen.Build(gen.Spec{Name: "f", Gates: 60, Couplings: 150, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	m := noise.NewModel(c)
	res, err := FalseAggressors(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := m.Run(res.Active)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(full.CircuitDelay() - filtered.CircuitDelay()); d > 0.005*full.CircuitDelay() {
		t.Fatalf("heuristic filtering changed noisy delay by %g ns (false=%d)", d, len(res.False))
	}
}

func TestFilterCounts(t *testing.T) {
	c, err := gen.Build(gen.Spec{Name: "f", Gates: 60, Couplings: 150, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	m := noise.NewModel(c)
	res, err := FalseAggressors(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FalseDirections) != res.EarlyFiltered+res.LateFiltered+res.UnobservableFiltered+res.MagnitudeFiltered {
		t.Fatalf("direction counts inconsistent: %+v", res)
	}
	if res.Active.Count()+len(res.False) != c.NumCouplings() {
		t.Fatal("active + false must cover all couplings")
	}
	// Every fully-false coupling must contribute exactly two false
	// directions.
	perCoupling := map[int]int{}
	for _, d := range res.FalseDirections {
		perCoupling[int(d.Coupling)]++
	}
	for _, id := range res.False {
		if perCoupling[int(id)] != 2 {
			t.Fatalf("removable coupling %d has %d false directions", id, perCoupling[int(id)])
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.peakFrac() != DefaultPeakFrac || o.guard() != DefaultGuard {
		t.Fatal("defaults not applied")
	}
	if (Options{PeakFrac: -1}).peakFrac() != 0 {
		t.Fatal("negative PeakFrac must disable the magnitude filter")
	}
	if (Options{PeakFrac: 0.1, Guard: 0.2}).peakFrac() != 0.1 {
		t.Fatal("explicit PeakFrac must pass through")
	}
}

func TestMagnitudeFilterDisabled(t *testing.T) {
	m := model(t, `circuit t
output y z
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 b -> m1
gate h2 INV_X1 m1 -> z
couple n1 m1 0.001
`)
	res, err := FalseAggressors(m, Options{PeakFrac: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MagnitudeFiltered != 0 {
		t.Fatal("disabled magnitude filter must not fire")
	}
	_ = circuit.CouplingID(0)
}
