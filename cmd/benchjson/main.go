// Command benchjson measures the performance-critical kernels with
// testing.Benchmark and writes the results as machine-readable JSON.
// The JSON is the artifact the perf acceptance criteria are checked
// against and what EXPERIMENTS.md records as before/after evidence.
//
// Three suites are available. The default, "fixpoint", times the
// noise fixpoint and the end-to-end Table-1/2 kernels (default output
// BENCH_fixpoint.json). "core" times the top-k enumeration core in
// isolation — prepared state built outside the timer, k-sweeps over
// the Table-1/2 circuits in both modes, a worker sweep, and the
// exact-prune escape hatch for the digest prefilter's effect (default
// output BENCH_core.json). "serve" times the HTTP front end over a
// real loopback listener — per-op wire round trips plus a saturation
// sweep of QPS and latency percentiles across client concurrency
// levels (default output BENCH_serve.json):
//
//	go run ./cmd/benchjson -o BENCH_fixpoint.json
//	go run ./cmd/benchjson -suite core
//	go run ./cmd/benchjson -suite serve
//	go run ./cmd/benchjson -quick
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"topkagg/internal/bruteforce"
	"topkagg/internal/core"
	"topkagg/internal/gen"
	"topkagg/internal/noise"
	"topkagg/internal/obs"
)

// result is one benchmark measurement in the output file.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
}

// report is the whole output file.
type report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"goVersion"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"numCPU"`
	Results    []result `json:"results"`
	// Metrics holds, per model, the observability snapshot of one
	// instrumented fixpoint run (sweep counts, worklist depths, memo
	// hit rates) — the enabled-path evidence the perf criteria ask for.
	// The timed benchmarks above run uninstrumented.
	Metrics map[string]*obs.Snapshot `json:"metrics,omitempty"`
	// Serve is the HTTP saturation table (serve suite only): QPS and
	// latency percentiles at each client concurrency level.
	Serve []serveLevel `json:"serve,omitempty"`
}

func main() {
	out := flag.String("o", "", "output JSON file (default BENCH_<suite>.json)")
	suite := flag.String("suite", "fixpoint", "benchmark suite: fixpoint, core or serve")
	quick := flag.Bool("quick", false, "skip the slow brute-force and enumeration kernels")
	flag.Parse()
	var err error
	switch *suite {
	case "fixpoint":
		if *out == "" {
			*out = "BENCH_fixpoint.json"
		}
		err = run(*out, *quick)
	case "core":
		if *out == "" {
			*out = "BENCH_core.json"
		}
		err = runCore(*out, *quick)
	case "serve":
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		err = runServe(*out, *quick)
	case "scale":
		if *out == "" {
			*out = "BENCH_scale.json"
		}
		err = runScale(*out, *quick)
	default:
		err = fmt.Errorf("unknown suite %q (want fixpoint, core, serve or scale)", *suite)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// write renders the report to stdout lines plus the JSON artifact.
func write(out string, rep report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", out, len(rep.Results))
	return nil
}

// measure runs one benchmark function and records/prints the result.
func measure(rep *report, name string, fn func(b *testing.B)) {
	r := testing.Benchmark(fn)
	res := result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	rep.Results = append(rep.Results, res)
	fmt.Printf("%-34s %12.0f ns/op %10d B/op %8d allocs/op\n",
		res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
}

func newReport() report {
	return report{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// runCore emits the enumeration-core suite: the same kernels as
// internal/core's BenchmarkTopKEnumeration (prepared state outside the
// timer, so each op is one warm TopK query), plus exact-prune
// variants isolating the digest prefilter's contribution, plus an
// instrumented metrics snapshot showing the digest/env-cache counters
// and the prune latency histogram on the enabled path.
func runCore(out string, quick bool) error {
	models := map[string]*noise.Model{}
	c, err := gen.Build(gen.Spec{Name: "t1", Gates: 30, Couplings: 60, Seed: 77})
	if err != nil {
		return err
	}
	models["t1"] = noise.NewModel(c)
	for _, name := range []string{"i1", "i3"} {
		pc, err := gen.BuildPaper(name)
		if err != nil {
			return err
		}
		models[name] = noise.NewModel(pc)
	}
	options := func(ckt string, exact bool) core.Options {
		opt := core.Options{NoRescore: true, ExactPrune: exact}
		if ckt == "t1" {
			opt.SlackFrac = 1
		}
		return opt
	}
	prepare := func(m *noise.Model, mode, ckt string, exact bool) (*core.Shared, error) {
		if mode == "elim" {
			return core.PrepareElimination(m, core.WholeCircuit, options(ckt, exact))
		}
		return core.PrepareAddition(m, core.WholeCircuit, options(ckt, exact))
	}
	topk := func(shared *core.Shared, k int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shared.TopK(k); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	rep := newReport()
	type cfg struct {
		mode string
		ckt  string
		ks   []int
		slow bool
	}
	cfgs := []cfg{
		{"add", "t1", []int{1, 2, 4, 8}, false},
		{"add", "i1", []int{4, 8}, true},
		{"add", "i3", []int{4}, true},
		{"elim", "t1", []int{1, 2, 4, 8}, false},
		{"elim", "i1", []int{4}, true},
	}
	for _, tc := range cfgs {
		if quick && tc.slow {
			continue
		}
		shared, err := prepare(models[tc.ckt], tc.mode, tc.ckt, false)
		if err != nil {
			return err
		}
		for _, k := range tc.ks {
			measure(&rep, fmt.Sprintf("topk_enum/%s/%s-k%d", tc.mode, tc.ckt, k), topk(shared, k))
		}
	}
	// Exact-prune comparison at the acceptance cardinalities: the gap
	// to the corresponding topk_enum rows is the digest prefilter.
	for _, mode := range []string{"add", "elim"} {
		shared, err := prepare(models["t1"], mode, "t1", true)
		if err != nil {
			return err
		}
		for _, k := range []int{4, 8} {
			measure(&rep, fmt.Sprintf("topk_enum_exactprune/%s/t1-k%d", mode, k), topk(shared, k))
		}
	}
	// Worker sweep at the deepest cardinality (results are byte-identical
	// at every setting; only the wall clock may move).
	for _, w := range []int{1, 2, 4, 8} {
		shared, err := prepare(models["t1"].WithWorkers(w), "add", "t1", false)
		if err != nil {
			return err
		}
		measure(&rep, fmt.Sprintf("topk_enum_workers/add/t1-k8-w%d", w), topk(shared, 8))
	}

	rep.Metrics = map[string]*obs.Snapshot{}
	reg := obs.New()
	shared, err := prepare(models["t1"].WithObs(reg), "add", "t1", false)
	if err != nil {
		return err
	}
	for _, warm := range []string{"cold", "warm"} {
		if _, err := shared.TopK(8); err != nil {
			return err
		}
		rep.Metrics["t1-"+warm] = reg.Snapshot()
	}
	return write(out, rep)
}

// runScale emits the scaling suite: warm noise-fixpoint runs over
// gen.Scale circuits from 1k to 100k nets (10x steps), the evidence
// that the flat-grid kernel's per-net cost stays flat as circuits grow
// two orders of magnitude past the paper's largest benchmark. Each
// measurement is one full fixpoint run on a pooled (warm) model; the
// nsPerNet column in the result name makes near-linearity readable at
// a glance, and the metrics snapshots record the evaluation counts the
// per-net cost divides over. -quick stops at 10k nets.
func runScale(out string, quick bool) error {
	sizes := []int{1000, 10000, 100000}
	if quick {
		sizes = sizes[:2]
	}
	rep := newReport()
	rep.Metrics = map[string]*obs.Snapshot{}
	for _, n := range sizes {
		c, err := gen.Scale(n)
		if err != nil {
			return err
		}
		m := noise.NewModel(c)
		// One untimed run warms the engine pool so the measurement is
		// the steady-state cost, not first-run arena growth.
		if _, err := m.Run(nil); err != nil {
			return err
		}
		measure(&rep, fmt.Sprintf("scale_fixpoint/n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		last := &rep.Results[len(rep.Results)-1]
		fmt.Printf("%-34s %12.1f ns/net\n", last.Name, last.NsPerOp/float64(n))
		reg := obs.New()
		if _, err := m.WithObs(reg).Run(nil); err != nil {
			return err
		}
		rep.Metrics[fmt.Sprintf("n%d", n)] = reg.Snapshot()
	}
	return write(out, rep)
}

func run(out string, quick bool) error {
	models := map[string]*noise.Model{}
	for _, name := range []string{"i1", "i3"} {
		c, err := gen.BuildPaper(name)
		if err != nil {
			return err
		}
		models[name] = noise.NewModel(c)
	}
	t1c, err := gen.Build(gen.Spec{Name: "t1", Gates: 30, Couplings: 60, Seed: 77})
	if err != nil {
		return err
	}
	t1 := noise.NewModel(t1c)

	type bench struct {
		name string
		slow bool
		fn   func(b *testing.B)
	}
	fixpoint := func(m *noise.Model) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	enumeration := func(m *noise.Model, elim bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			opt := core.Options{NoRescore: true}
			for i := 0; i < b.N; i++ {
				var err error
				if elim {
					_, err = core.TopKElimination(m, 10, opt)
				} else {
					_, err = core.TopKAddition(m, 10, opt)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	benches := []bench{
		{name: "noise_fixpoint/i1", fn: fixpoint(models["i1"])},
		{name: "noise_fixpoint/i3", fn: fixpoint(models["i3"])},
	}
	for _, w := range []int{1, 2, 4, 8} {
		benches = append(benches, bench{
			name: fmt.Sprintf("noise_fixpoint_workers/i3-w%d", w),
			fn:   fixpoint(models["i3"].WithWorkers(w)),
		})
	}
	benches = append(benches,
		bench{name: "table1_bruteforce/t1-k2", slow: true, fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bruteforce.Addition(t1, 2, 0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		bench{name: "table1_proposed/t1-k2", slow: true, fn: func(b *testing.B) {
			b.ReportAllocs()
			opt := core.Options{SlackFrac: 1, NoRescore: true}
			for i := 0; i < b.N; i++ {
				if _, err := core.TopKAddition(t1, 2, opt); err != nil {
					b.Fatal(err)
				}
			}
		}},
		bench{name: "table2a_addition/i1-k10", slow: true, fn: enumeration(models["i1"], false)},
		bench{name: "table2a_addition/i3-k10", slow: true, fn: enumeration(models["i3"], false)},
		bench{name: "table2b_elimination/i1-k10", slow: true, fn: enumeration(models["i1"], true)},
	)

	rep := newReport()
	for _, bm := range benches {
		if quick && bm.slow {
			continue
		}
		measure(&rep, bm.name, bm.fn)
	}

	rep.Metrics = map[string]*obs.Snapshot{}
	for _, name := range []string{"i1", "i3"} {
		reg := obs.New()
		if _, err := models[name].WithObs(reg).Run(nil); err != nil {
			return err
		}
		rep.Metrics[name] = reg.Snapshot()
	}
	return write(out, rep)
}
