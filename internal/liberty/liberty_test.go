package liberty

import (
	"strings"
	"testing"

	"topkagg/internal/cell"
)

const sample = `
/* a small library */
library (demo) {
  time_unit : "1ns";
  capacitive_load_unit (1, ff);
  nom_voltage : 1.2;
  cell (INV_X1) {
    pin (A) { direction : input; capacitance : 2.0; }
    pin (Y) {
      direction : output;
      drive_resistance : 6.0;
      timing () {
        related_pin : "A";
        intrinsic_rise : 0.018;
        rise_resistance : 0.0035;
        slope_rise : 0.030;
        transition_resistance : 0.005;
      }
    }
  }
  cell (NAND2_X2) {
    pin (A) { direction : input; capacitance : 4.8; }
    pin (B) { direction : input; capacitance : 4.8; }
    pin (Y) {
      direction : output;
      drive_resistance : 3.5;
      timing () {
        related_pin : "A";
        intrinsic_rise : 0.026;
        rise_resistance : 0.0021;
        slope_rise : 0.038;
        transition_resistance : 0.0029;
      }
    }
  }
}
`

func TestParseSample(t *testing.T) {
	lib, err := ParseString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Name != "demo" || lib.Vdd != 1.2 || lib.Len() != 2 {
		t.Fatalf("library header wrong: %s %g %d", lib.Name, lib.Vdd, lib.Len())
	}
	inv, err := lib.Cell("INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	if inv.NumInputs != 1 || inv.D0 != 0.018 || inv.KD != 0.0035 ||
		inv.S0 != 0.030 || inv.KS != 0.005 || inv.Rdrv != 6 || inv.Cin != 2 {
		t.Fatalf("INV_X1 characterization wrong: %+v", inv)
	}
	if inv.Kind != cell.Inv {
		t.Fatalf("kind = %q", inv.Kind)
	}
	nand, err := lib.Cell("NAND2_X2")
	if err != nil {
		t.Fatal(err)
	}
	if nand.NumInputs != 2 || nand.Cin != 4.8 {
		t.Fatalf("NAND2_X2 pins wrong: %+v", nand)
	}
}

func TestRoundTripDefaultLibrary(t *testing.T) {
	orig := cell.Default()
	text := String(orig)
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse of emitted library: %v\n%s", err, text[:400])
	}
	if back.Len() != orig.Len() || back.Vdd != orig.Vdd {
		t.Fatalf("library shape changed: %d/%g vs %d/%g", back.Len(), back.Vdd, orig.Len(), orig.Vdd)
	}
	for _, name := range orig.Names() {
		a, _ := orig.Cell(name)
		b, err := back.Cell(name)
		if err != nil {
			t.Fatalf("cell %s lost: %v", name, err)
		}
		if a.Name != b.Name || a.Kind != b.Kind || a.NumInputs != b.NumInputs {
			t.Fatalf("cell %s identity changed: %+v vs %+v", name, a, b)
		}
		for _, pair := range [][2]float64{
			{a.D0, b.D0}, {a.KD, b.KD}, {a.S0, b.S0},
			{a.KS, b.KS}, {a.Rdrv, b.Rdrv}, {a.Cin, b.Cin},
		} {
			if d := pair[0] - pair[1]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("cell %s values drifted: %+v vs %+v", name, a, b)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"not a library", "cell (x) { }", "want library"},
		{"no cells", "library (l) { }", "no cells"},
		{"bad time unit", `library (l) { time_unit : "1ps"; cell (INV_X1) {} }`, "unsupported time_unit"},
		{"bad cap unit", `library (l) { capacitive_load_unit (1, pf); cell (INV_X1) {} }`, "unsupported capacitive_load_unit"},
		{"bad voltage", `library (l) { nom_voltage : abc; }`, "nom_voltage"},
		{"unterminated", `library (l) {`, "unterminated"},
		{"unterminated comment", `library (l) { /* `, "unterminated comment"},
		{"unterminated string", `library (l) { time_unit : "1ns`, "unterminated string"},
		{"pin no direction", `library (l) { cell (INV_X1) { pin (A) { capacitance : 1; } } }`, "no direction"},
		{"bad attr value", `library (l) { cell (INV_X1) { pin (A) { direction : input; capacitance : zz; } } }`, "capacitance"},
		{"invalid cell", `library (l) { cell (INV_X1) { pin (A) { direction : input; capacitance : 1; } } }`, "cell INV_X1"},
	}
	for _, tc := range cases {
		_, err := ParseString(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestWriterShape(t *testing.T) {
	text := String(cell.Default())
	for _, want := range []string{
		"library (synth013) {",
		`time_unit : "1ns";`,
		"capacitive_load_unit (1, ff);",
		"nom_voltage : 1.2;",
		"cell (INV_X1) {",
		"pin (A) { direction : input;",
		"drive_resistance :",
		"transition_resistance :",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("emitted liberty missing %q", want)
		}
	}
}

func TestTokenizerQuotesAndComments(t *testing.T) {
	toks, err := tokenize(`a : "x y"; // line
/* block */ b ( 1 , 2 ) ;`)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(toks, "|")
	want := "a|:|x y|;|b|(|1|,|2|)|;"
	if joined != want {
		t.Fatalf("tokens = %q, want %q", joined, want)
	}
}
