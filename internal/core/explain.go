package core

import (
	"fmt"

	"topkagg/internal/circuit"
	"topkagg/internal/noise"
)

// Contribution quantifies one coupling's measured marginal effect
// within a selected set.
type Contribution struct {
	Coupling circuit.CouplingID
	// Marginal is the leave-one-out effect: the measured circuit-delay
	// change from toggling just this coupling while the rest of the
	// set stays applied. Members that matter only in combination still
	// show a large Marginal (removing them breaks the combination).
	Marginal float64
	// Solo is the coupling's effect acting alone against the baseline.
	// A member with Solo ≈ 0 but a large Marginal is a pure
	// combination player (the paper's Fig.-4 situation).
	Solo float64
}

// Explanation breaks a selected set down into verified per-coupling
// marginals — the designer-facing answer to "why these k?".
type Explanation struct {
	// Delay is the measured circuit delay with the whole set applied.
	Delay float64
	// Contributions are ordered largest-marginal first.
	Contributions []Contribution
	// Synergy is the set's total effect minus the sum of the members'
	// Solo effects: the part that only appears when the couplings act
	// together (the paper's Fig.-4 combination effect). Positive
	// synergy means the set is worth more than the sum of its parts.
	Synergy float64
	// Baseline is the reference delay the marginals are measured
	// against: the noiseless delay for addition sets, the all-coupling
	// noisy delay for elimination sets.
	Baseline float64
}

// ExplainAddition measures each member's marginal contribution to an
// addition set by re-running the reference engine with that member
// deactivated (leave-one-out).
func ExplainAddition(m *noise.Model, ids []circuit.CouplingID) (*Explanation, error) {
	return explain(m, ids, addition)
}

// ExplainElimination measures each member's marginal contribution to
// an elimination set by re-running the reference engine with that
// member kept in the design (leave-one-in).
func ExplainElimination(m *noise.Model, ids []circuit.CouplingID) (*Explanation, error) {
	return explain(m, ids, elimination)
}

func explain(m *noise.Model, ids []circuit.CouplingID, md mode) (*Explanation, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("core: explain: empty set")
	}
	fullMask := func() noise.Mask {
		if md == addition {
			return noise.MaskOf(m.C, ids)
		}
		return noise.WithoutMask(m.C, ids)
	}()
	withSet, err := m.Run(fullMask)
	if err != nil {
		return nil, err
	}
	baseMask := noise.NewMask(m.C)
	if md == elimination {
		baseMask = noise.AllMask(m.C)
	}
	baseline, err := m.Run(baseMask)
	if err != nil {
		return nil, err
	}
	ex := &Explanation{Delay: withSet.CircuitDelay(), Baseline: baseline.CircuitDelay()}
	soloSum := 0.0
	for _, id := range ids {
		// Leave-one-out against the full set.
		loo := fullMask.Clone()
		loo[id] = !loo[id] // addition: deactivate; elimination: reactivate
		an, _, err := m.RunIncremental(withSet, fullMask, loo)
		if err != nil {
			return nil, err
		}
		var marginal float64
		if md == addition {
			marginal = withSet.CircuitDelay() - an.CircuitDelay()
		} else {
			marginal = an.CircuitDelay() - withSet.CircuitDelay()
		}
		if marginal < 0 {
			marginal = 0 // fixpoint tolerance jitter
		}
		// Solo against the baseline.
		solo := baseMask.Clone()
		solo[id] = !solo[id]
		sa, _, err := m.RunIncremental(baseline, baseMask, solo)
		if err != nil {
			return nil, err
		}
		var soloEffect float64
		if md == addition {
			soloEffect = sa.CircuitDelay() - ex.Baseline
		} else {
			soloEffect = ex.Baseline - sa.CircuitDelay()
		}
		if soloEffect < 0 {
			soloEffect = 0
		}
		ex.Contributions = append(ex.Contributions, Contribution{Coupling: id, Marginal: marginal, Solo: soloEffect})
		soloSum += soloEffect
	}
	sortContributions(ex.Contributions)
	var total float64
	if md == addition {
		total = ex.Delay - ex.Baseline
	} else {
		total = ex.Baseline - ex.Delay
	}
	ex.Synergy = total - soloSum
	return ex, nil
}

func sortContributions(cs []Contribution) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0; j-- {
			if cs[j].Marginal > cs[j-1].Marginal ||
				(cs[j].Marginal == cs[j-1].Marginal && cs[j].Coupling < cs[j-1].Coupling) {
				cs[j], cs[j-1] = cs[j-1], cs[j]
			} else {
				break
			}
		}
	}
}
