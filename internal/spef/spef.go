// Package spef reads and writes a practical subset of SPEF (IEEE
// 1481) — the standard parasitics exchange format — sufficient to
// carry this library's per-net ground capacitance, lumped wire
// resistance and inter-net coupling capacitances. Pair it with a
// gate-level Verilog netlist (package verilog) for the classic
// synthesis-flow handoff.
//
// Supported structure:
//
//	*SPEF "IEEE 1481-1998"
//	*DESIGN "demo"
//	*T_UNIT 1 NS
//	*C_UNIT 1 FF
//	*R_UNIT 1 KOHM
//
//	*D_NET n1 5.5
//	*CAP
//	1 n1 3.2
//	2 n1 m1 1.8
//	*RES
//	1 n1 0.4
//	*END
//
// Ground CAP entries have one node, coupling CAP entries two. The
// total after *D_NET is informational (writer emits the net's ground
// capacitance). Units must be NS/FF/KOHM, matching the library's
// conventions.
package spef

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"topkagg/internal/circuit"
)

// Apply reads SPEF from r and applies it to an existing circuit:
// ground capacitance and wire resistance overwrite the named nets'
// parasitics, and coupling entries add coupling capacitors. Coupling
// entries are emitted once per pair; duplicates in the input create
// duplicate capacitors (as extractors do for multiply-coupled wires).
func Apply(r io.Reader, c *circuit.Circuit) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	fail := func(format string, args ...any) error {
		return fmt.Errorf("spef: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	section := ""
	curNet := circuit.NetID(-1)
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "*SPEF":
			sawHeader = true
		case "*DESIGN", "*T_UNIT":
			// informational
		case "*C_UNIT":
			if len(fields) != 3 || fields[2] != "FF" {
				return fail("unsupported capacitance unit (want FF): %q", line)
			}
		case "*R_UNIT":
			if len(fields) != 3 || fields[2] != "KOHM" {
				return fail("unsupported resistance unit (want KOHM): %q", line)
			}
		case "*D_NET":
			if len(fields) < 2 {
				return fail("*D_NET wants a net name")
			}
			id, ok := c.NetByName(fields[1])
			if !ok {
				return fail("unknown net %q", fields[1])
			}
			curNet = id
			section = ""
		case "*CONN":
			section = "CONN"
		case "*CAP":
			section = "CAP"
		case "*RES":
			section = "RES"
		case "*END":
			curNet = -1
			section = ""
		default:
			if curNet < 0 {
				return fail("data outside *D_NET: %q", line)
			}
			switch section {
			case "CONN":
				// pin connectivity is carried by the netlist; skip
			case "CAP":
				switch len(fields) {
				case 3: // index node value => grounded
					v, err := strconv.ParseFloat(fields[2], 64)
					if err != nil {
						return fail("bad capacitance %q", fields[2])
					}
					if nodeNet(fields[1]) != c.Net(curNet).Name {
						return fail("grounded cap node %q outside net %s", fields[1], c.Net(curNet).Name)
					}
					c.Net(curNet).Cgnd = v
				case 4: // index nodeA nodeB value => coupling
					v, err := strconv.ParseFloat(fields[3], 64)
					if err != nil {
						return fail("bad capacitance %q", fields[3])
					}
					a, b := nodeNet(fields[1]), nodeNet(fields[2])
					if a != c.Net(curNet).Name && b != c.Net(curNet).Name {
						return fail("coupling entry does not touch net %s", c.Net(curNet).Name)
					}
					if _, err := c.AddCoupling(a, b, v); err != nil {
						return fail("%v", err)
					}
				default:
					return fail("malformed CAP entry: %q", line)
				}
			case "RES":
				if len(fields) != 3 {
					return fail("malformed RES entry: %q", line)
				}
				v, err := strconv.ParseFloat(fields[2], 64)
				if err != nil {
					return fail("bad resistance %q", fields[2])
				}
				c.Net(curNet).Rwire = v
			default:
				return fail("data before a section keyword: %q", line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("spef: read: %w", err)
	}
	if !sawHeader {
		return fmt.Errorf("spef: missing *SPEF header")
	}
	// Cgnd/Rwire were overwritten through net pointers; invalidate any
	// cached columnar snapshot.
	c.InvalidateColumns()
	return nil
}

// ApplyString is Apply over in-memory SPEF text.
func ApplyString(s string, c *circuit.Circuit) error {
	return Apply(strings.NewReader(s), c)
}

// nodeNet strips an optional :pin suffix from a SPEF node name.
func nodeNet(node string) string {
	if i := strings.IndexByte(node, ':'); i >= 0 {
		return node[:i]
	}
	return node
}

// Write emits the circuit's parasitics as SPEF. Each coupling
// capacitor is emitted once, in the *D_NET block of its lower-numbered
// endpoint.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, `*SPEF "IEEE 1481-1998"`)
	fmt.Fprintf(bw, "*DESIGN \"%s\"\n", c.Name)
	fmt.Fprintln(bw, "*T_UNIT 1 NS")
	fmt.Fprintln(bw, "*C_UNIT 1 FF")
	fmt.Fprintln(bw, "*R_UNIT 1 KOHM")
	for _, n := range c.Nets() {
		fmt.Fprintf(bw, "\n*D_NET %s %g\n", n.Name, n.Cgnd)
		fmt.Fprintln(bw, "*CAP")
		idx := 1
		fmt.Fprintf(bw, "%d %s %g\n", idx, n.Name, n.Cgnd)
		idx++
		for _, cid := range c.CouplingsOf(n.ID) {
			cp := c.Coupling(cid)
			if cp.A != n.ID {
				continue // emitted in A's block
			}
			fmt.Fprintf(bw, "%d %s %s %g\n", idx, c.Net(cp.A).Name, c.Net(cp.B).Name, cp.Cc)
			idx++
		}
		fmt.Fprintln(bw, "*RES")
		fmt.Fprintf(bw, "1 %s %g\n", n.Name, n.Rwire)
		fmt.Fprintln(bw, "*END")
	}
	return bw.Flush()
}

// String renders the circuit's parasitics as SPEF text. A render
// failure (not reachable with a strings.Builder sink, but kept total so
// corrupt circuits degrade instead of crashing) renders as a comment.
func String(c *circuit.Circuit) string {
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		return fmt.Sprintf("// spef: render failed: %v\n", err)
	}
	return sb.String()
}
