package core

import (
	"sync"
	"sync/atomic"

	"topkagg/internal/circuit"
)

// envKey identifies one candidate-set derivation: the construction
// rule, the victim, the canonical key of the base set (a Rule-1
// parent, a Rule-2 upstream set plus its per-input reductions, or a
// Rule-3 widening set T), and the primary aggressor involved. The key
// deliberately describes the derivation rather than just the
// resulting ID set: the same child set reached through different
// parents combines its envelopes in a different order, and
// floating-point addition is not associative — keying the derivation
// keeps every cached envelope a pure function of its key, so a hit is
// bit-identical to a recompute no matter which query, pass or worker
// populated the entry.
//
// aux carries the remaining float input of the derivation as exact
// bits: zero for Rule-1 extensions (parent and atom say it all), the
// propagated shift for Rule 2, and T's score for Rule 3 (it sets how
// far the aggressor window widens or narrows).
type envKey struct {
	kind   uint8 // derivation rule: 1, 2 or 3
	v      circuit.NetID
	parent string
	atom   circuit.CouplingID
	aux    uint64
}

// The interned value is the complete candidate *aggSet — combined
// envelope, mode-aware score (evaluated at shift parent.shift +
// atom.shift, itself determined by the key), sorted ID slice and
// materialized canonical key. Every field is immutable after
// insertion, so a hit appends the shared pointer to the raw candidate
// list with zero allocations.

const (
	envCacheShards = 16
	// envCacheMaxEntries caps the total entry count across shards.
	// Beyond the cap puts become no-ops: correctness never depends on
	// insertion, and a bounded cache keeps long-lived prepared states
	// (the serve layer memoizes them per target) at a bounded footprint.
	envCacheMaxEntries = 1 << 17
)

// envCache is the per-prepared concurrent intern table of Rule-1 set
// envelopes. Envelopes are immutable once stored, so readers share
// them freely across engines and queries.
type envCache struct {
	shards [envCacheShards]envShard
	size   atomic.Int64
	hits   atomic.Int64
	misses atomic.Int64
}

type envShard struct {
	mu sync.RWMutex
	m  map[envKey]*aggSet
}

func newEnvCache() *envCache {
	c := &envCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[envKey]*aggSet)
	}
	return c
}

// shardOf hashes the key fields with FNV-1a; only load spreading
// depends on it, never results.
func shardOf(k envKey) uint32 {
	h := uint32(2166136261)
	h = (h ^ uint32(k.kind)) * 16777619
	h = (h ^ uint32(k.v)) * 16777619
	h = (h ^ uint32(k.atom)) * 16777619
	h = (h ^ uint32(k.aux)) * 16777619
	h = (h ^ uint32(k.aux>>32)) * 16777619
	for i := 0; i < len(k.parent); i++ {
		h = (h ^ uint32(k.parent[i])) * 16777619
	}
	return h % envCacheShards
}

func (c *envCache) get(k envKey) (*aggSet, bool) {
	s := &c.shards[shardOf(k)]
	s.mu.RLock()
	e, ok := s.m[k]
	s.mu.RUnlock()
	return e, ok
}

func (c *envCache) put(k envKey, e *aggSet) {
	if c.size.Load() >= envCacheMaxEntries {
		return
	}
	s := &c.shards[shardOf(k)]
	s.mu.Lock()
	if _, ok := s.m[k]; !ok {
		s.m[k] = e
		c.size.Add(1)
	}
	s.mu.Unlock()
}

// Stats returns the lifetime hit/miss totals of the cache (across all
// engines and queries sharing the prepared state). Tallies are
// accumulated from per-worker scratch when each run ends, not per
// lookup, so the hot path never touches these shared atomics.
func (c *envCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
