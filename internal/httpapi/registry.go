package httpapi

import (
	"sort"
	"sync"
	"time"

	"topkagg/internal/cell"
	"topkagg/internal/circuit"
	"topkagg/internal/core"
	"topkagg/internal/liberty"
	"topkagg/internal/netlist"
	"topkagg/internal/noise"
	"topkagg/internal/obs"
	"topkagg/internal/serve"
	"topkagg/internal/spef"
	"topkagg/internal/verilog"
)

// model is one registered design: the parsed circuit, its noise
// model, and a pool of Analyzers keyed by enumeration preset. The
// circuit and noise model are immutable after construction; Analyzers
// are created lazily and shared by every request that selects the same
// preset, which is what amortizes the fixpoint and preparation caches
// across the model's whole query traffic.
type model struct {
	name    string
	c       *circuit.Circuit
	m       *noise.Model
	source  string // "netlist" or "verilog"(+"+spef")
	created time.Time
	// src is the upload material the circuit was built from, retained
	// verbatim so the model can be persisted and — should its warm
	// snapshot ever be corrupt — rebuilt cold from source. nil for
	// models registered from an already-parsed circuit (Preload), which
	// are therefore not persistable.
	src *UploadRequest

	mu        sync.Mutex
	analyzers map[bool]*serve.Analyzer // keyed by the exact preset
}

// analyzer returns the model's Analyzer for the preset, creating it on
// first use. false = default enumeration options, true = core.Exact().
func (md *model) analyzer(exact bool) *serve.Analyzer {
	md.mu.Lock()
	defer md.mu.Unlock()
	a := md.analyzers[exact]
	if a == nil {
		opt := core.Options{}
		if exact {
			opt = core.Exact()
		}
		a = serve.NewAnalyzer(md.m, opt)
		md.analyzers[exact] = a
	}
	return a
}

// analyzerSnapshot copies the current analyzer pool — the snapshot
// writer iterates it without holding the model lock.
func (md *model) analyzerSnapshot() map[bool]*serve.Analyzer {
	md.mu.Lock()
	defer md.mu.Unlock()
	out := make(map[bool]*serve.Analyzer, len(md.analyzers))
	for k, a := range md.analyzers {
		out[k] = a
	}
	return out
}

// installAnalyzer publishes a restored analyzer under its preset key.
func (md *model) installAnalyzer(exact bool, a *serve.Analyzer) {
	md.mu.Lock()
	md.analyzers[exact] = a
	md.mu.Unlock()
}

// ModelInfo is the wire description of one registered model.
type ModelInfo struct {
	Name      string `json:"name"`
	Source    string `json:"source"`
	Gates     int    `json:"gates"`
	Nets      int    `json:"nets"`
	Couplings int    `json:"couplings"`
	CreatedAt string `json:"createdAt"`
}

func (md *model) info() ModelInfo {
	return ModelInfo{
		Name:      md.name,
		Source:    md.source,
		Gates:     md.c.NumGates(),
		Nets:      md.c.NumNets(),
		Couplings: md.c.NumCouplings(),
		CreatedAt: md.created.UTC().Format(time.RFC3339),
	}
}

// registry is the named-model store. Uploading to an existing name
// atomically replaces the entry; requests already holding the old
// entry finish against it (the circuit and caches are immutable), and
// later requests see the new one.
type registry struct {
	fixWorkers int
	obs        *obs.Registry

	mu     sync.RWMutex
	models map[string]*model
}

func newRegistry(fixWorkers int, reg *obs.Registry) *registry {
	return &registry{fixWorkers: fixWorkers, obs: reg, models: map[string]*model{}}
}

// add registers a circuit under name, replacing any previous model.
func (r *registry) add(name, source string, c *circuit.Circuit, src *UploadRequest) (*model, bool) {
	md := r.build(name, source, c, src, time.Now())
	return md, r.insert(md)
}

// build constructs a model entry without publishing it — snapshot
// restore decodes warm analyzers into the entry first and registers it
// only once the whole file has validated.
func (r *registry) build(name, source string, c *circuit.Circuit, src *UploadRequest, created time.Time) *model {
	m := noise.NewModel(c)
	if r.fixWorkers > 0 {
		m = m.WithWorkers(r.fixWorkers)
	}
	if r.obs != nil {
		m = m.WithObs(r.obs)
	}
	return &model{
		name:      name,
		c:         c,
		m:         m,
		source:    source,
		created:   created,
		src:       src,
		analyzers: map[bool]*serve.Analyzer{},
	}
}

// insert publishes md, reporting whether it replaced a previous model.
func (r *registry) insert(md *model) bool {
	r.mu.Lock()
	_, replaced := r.models[md.name]
	r.models[md.name] = md
	r.mu.Unlock()
	return replaced
}

func (r *registry) get(name string) (*model, bool) {
	r.mu.RLock()
	md, ok := r.models[name]
	r.mu.RUnlock()
	return md, ok
}

func (r *registry) remove(name string) bool {
	r.mu.Lock()
	_, ok := r.models[name]
	delete(r.models, name)
	r.mu.Unlock()
	return ok
}

func (r *registry) list() []ModelInfo {
	r.mu.RLock()
	infos := make([]ModelInfo, 0, len(r.models))
	for _, md := range r.models {
		infos = append(infos, md.info())
	}
	r.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// buildCircuit turns an upload into a circuit: exactly one of Netlist
// and Verilog must be set; Liberty (optional) supplies the cell
// library, SPEF (verilog only) the parasitics.
func buildCircuit(up *UploadRequest) (*circuit.Circuit, string, *apiError) {
	if (up.Netlist == "") == (up.Verilog == "") {
		return nil, "", errBadRequest(codeBadUpload, "exactly one of netlist and verilog is required")
	}
	if up.SPEF != "" && up.Verilog == "" {
		return nil, "", errBadRequest(codeBadUpload, "spef pairs with verilog, not netlist")
	}
	lib := cell.Default()
	if up.Liberty != "" {
		var err error
		lib, err = liberty.ParseString(up.Liberty)
		if err != nil {
			return nil, "", errBadRequest(codeBadUpload, "liberty: %v", err)
		}
	}
	if up.Netlist != "" {
		c, err := netlist.ParseString(up.Netlist, lib)
		if err != nil {
			return nil, "", errBadRequest(codeBadUpload, "netlist: %v", err)
		}
		return c, "netlist", nil
	}
	c, err := verilog.ParseString(up.Verilog, lib)
	if err != nil {
		return nil, "", errBadRequest(codeBadUpload, "verilog: %v", err)
	}
	source := "verilog"
	if up.SPEF != "" {
		if err := spef.ApplyString(up.SPEF, c); err != nil {
			return nil, "", errBadRequest(codeBadUpload, "spef: %v", err)
		}
		source = "verilog+spef"
	}
	return c, source, nil
}
