package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count: bucket b holds values v with
// bits.Len64(v) == b, i.e. v in [2^(b-1), 2^b), with bucket 0 taking
// v <= 0. 64 buckets cover the whole non-negative int64 range, which
// spans both byte/size metrics and nanosecond latencies (2^63 ns is
// ~292 years).
const histBuckets = 64

// Histogram is a lock-free histogram over int64 values with
// power-of-two buckets, tracking count, sum, min and max exactly and
// quantiles to within a 2x bucket bound. Recording is a handful of
// atomic adds — no locks, no allocation. A nil Histogram discards all
// observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // initialized to MaxInt64 by newHistogram
	max     atomic.Int64 // initialized to MinInt64 by newHistogram
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketUpper is the inclusive upper bound of a bucket, used for
// quantile reads.
func bucketUpper(b int) int64 {
	if b == 0 {
		return 0
	}
	if b >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<b - 1
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns how many values were observed; zero on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed values; zero on nil.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramSnapshot is one histogram's point-in-time summary. Min/Max
// are exact; the quantiles are bucket upper bounds (within 2x of the
// true value).
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// snapshot summarizes the histogram. Concurrent observations may land
// between the field reads; each field is individually consistent.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	var counts [histBuckets]int64
	total := int64(0)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s.P50 = quantile(counts[:], total, 0.50)
	s.P90 = quantile(counts[:], total, 0.90)
	s.P99 = quantile(counts[:], total, 0.99)
	// The bucket bound can exceed the exact max (and undershoot the
	// exact min); clamp so the summary is internally consistent.
	for _, p := range []*int64{&s.P50, &s.P90, &s.P99} {
		if *p > s.Max {
			*p = s.Max
		}
		if *p < s.Min {
			*p = s.Min
		}
	}
	return s
}

// quantile returns the upper bound of the bucket where the cumulative
// count first reaches q of the total.
func quantile(counts []int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for b, c := range counts {
		cum += c
		if cum >= rank {
			return bucketUpper(b)
		}
	}
	return bucketUpper(histBuckets - 1)
}
