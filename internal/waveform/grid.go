package waveform

import (
	"math"
	"sync"
)

// This file holds the flat-grid kernel primitives: Trap, the
// closed-form trapezoid a noise envelope reduces to, and Grid, a
// fixed-step sampled upper-bound accumulator over a per-victim
// analysis window. Together they replace merged-PWL envelope algebra
// on the noise fixpoint's hot path: exact values come from Trap.At
// (bit-identical to evaluating the corresponding PWL), and the grid
// columns carry conservative per-cell maxima that let the kernel skip
// whole evaluations and bracket crossing searches without ever
// deciding a published number from a sampled value alone (DESIGN.md
// §12).

// Trap is a trapezoidal envelope in closed form: zero up to Q0,
// rising linearly to Vp at Q1, flat to Q2, falling linearly to zero
// at Q3, zero after. Q1 == Q2 encodes the collapsed (triangular)
// top. It represents exactly the breakpoints AppendTrapezoid emits,
// including the minimum-width clamps.
type Trap struct {
	Q0, Q1, Q2, Q3 float64
	Vp             float64
	// InvRise and InvFall are 1/(Q1−Q0) and 1/(Q3−Q2), precomputed so
	// grid accumulation runs division-free. Exact evaluation (At) keeps
	// the division — the reciprocal product can differ by an ulp, and
	// At is pinned bit-for-bit to the PWL segment expression.
	InvRise, InvFall float64
}

// NewTrap builds the closed form of Trapezoid(t0, rise, flatEnd,
// fall, vp) with identical edge clamping and flat-top collapse.
func NewTrap(t0, rise, flatEnd, fall, vp float64) Trap {
	if rise < minWidth {
		rise = minWidth
	}
	if fall < minWidth {
		fall = minWidth
	}
	peakStart := t0 + rise
	if flatEnd < peakStart {
		flatEnd = peakStart
	}
	q1, q2 := peakStart, flatEnd
	if flatEnd <= peakStart+Eps {
		// AppendTrapezoid merges the peak pair into one breakpoint at
		// the later time.
		q1 = math.Max(peakStart, flatEnd)
		q2 = q1
	}
	q3 := flatEnd + fall
	return Trap{Q0: t0, Q1: q1, Q2: q2, Q3: q3, Vp: vp,
		InvRise: 1 / (q1 - t0), InvFall: 1 / (q3 - q2)}
}

// NewTrapPre is NewTrap with the edge reciprocals precomputed by the
// caller — typically memoized alongside a pulse solve, where the rise
// and fall widths are stable while the window endpoints drift. The
// memoized values may differ from NewTrap's 1/(Q1−Q0) and 1/(Q3−Q2)
// by the ulp-level wobble breakpoint rounding introduces — about
// ulp(t0)/rise, i.e. ~2⁻³⁸ at nanosecond time scales with the
// minimum pulse widths the solver emits; they are accepted only when
// they multiply back against the realized breakpoint differences to 1
// within 2⁻³⁷, a slop gridPadFrac's pad certifiably absorbs (the
// grid-bound error is multiplicative in the bound itself, so the
// shortfall against At never exceeds ~Vp·2⁻³⁷).
// Exact evaluation (At) still divides by the breakpoint differences,
// so published values are unchanged. Clamped edges, collapsed flat
// tops and out-of-tolerance reciprocals fall back to NewTrap.
func NewTrapPre(t0, rise, flatEnd, fall, vp, invRise, invFall float64) Trap {
	peakStart := t0 + rise
	if rise >= minWidth && fall >= minWidth && flatEnd > peakStart+Eps {
		q3 := flatEnd + fall
		dr := invRise * (peakStart - t0)
		df := invFall * (q3 - flatEnd)
		if dr > 1-0x1p-37 && dr < 1+0x1p-37 && df > 1-0x1p-37 && df < 1+0x1p-37 {
			return Trap{Q0: t0, Q1: peakStart, Q2: flatEnd, Q3: q3, Vp: vp,
				InvRise: invRise, InvFall: invFall}
		}
	}
	return NewTrap(t0, rise, flatEnd, fall, vp)
}

// At evaluates the trapezoid at time t, bit-identical to
// Trapezoid(...).Value(t): the same segment interpolation expression
// (a.V + f·(b.V−a.V)) specialized to each piece, with constant-zero
// extension outside [Q0, Q3].
func (tr Trap) At(t float64) float64 {
	switch {
	case t <= tr.Q0 || t >= tr.Q3:
		return 0
	case t < tr.Q1:
		f := (t - tr.Q0) / (tr.Q1 - tr.Q0)
		return f * tr.Vp // 0 + f*(Vp-0)
	case t <= tr.Q2:
		return tr.Vp
	default:
		f := (t - tr.Q2) / (tr.Q3 - tr.Q2)
		return tr.Vp + f*(0-tr.Vp)
	}
}

// End returns the last breakpoint time Q3.
func (tr Trap) End() float64 { return tr.Q3 }

// MaxOn returns an upper bound on At over [a, b] that is exact in
// the At arithmetic: the rising and falling pieces are monotone under
// correctly-rounded float evaluation, so the piece endpoint value
// bounds every interior sample, and any interval meeting the flat top
// is bounded by Vp. (Assumes Vp >= 0; the noise engine never grids a
// non-positive peak.)
func (tr Trap) MaxOn(a, b float64) float64 {
	switch {
	case b <= tr.Q0 || a >= tr.Q3:
		return 0
	case a <= tr.Q2 && b >= tr.Q1:
		return tr.Vp
	case b < tr.Q1:
		return tr.At(b) // wholly inside the rising edge
	default:
		return tr.At(a) // wholly inside the falling edge
	}
}

// Grid is a fixed-step sampled upper-bound accumulator: Col[c] bounds
// the summed envelope value at every time that CellOf assigns to cell
// c. The per-cell contribution of each trapezoid is its maximum over
// the cell interval padded by one full step on both sides, which
// makes the bound robust against the at-most-ulp-level disagreement
// between CellOf's rounded cell assignment and the cell's geometric
// interval — a one-step pad against a sub-femtosecond slop.
//
// Flat-top spans — usually most of a trapezoid's footprint, since the
// top runs the length of the aggressor's switching window — are
// accumulated as O(1) range additions on a difference array and
// folded into the columns by Finalize, so adding a trapezoid costs
// per-cell work only on its rising and falling edges.
//
// Columns are pooled flat []float64 storage (GetGrid/PutGrid) reused
// across victims and sweeps.
type Grid struct {
	Lo, Hi float64
	Cells  int
	Col    []float64

	step, invStep float64
	diffA         []float64 // deferred range adds, constant term (Cells+1)
	diffB         []float64 // deferred range adds, per-cell slope term
	padAcc        float64   // Σ range magnitudes, scales Finalize's pad
}

// Reset re-targets the grid at the window [lo, hi] with the given
// cell count (rounded up to a power of two) and clears the deferred
// range additions. The columns themselves are assigned by Finalize.
func (g *Grid) Reset(lo, hi float64, cells int) {
	if cells < 1 {
		cells = 1
	}
	// Power-of-two cell counts keep windows of similar width on
	// identical layouts, so pooled columns stabilize at one size.
	p := 1
	for p < cells {
		p <<= 1
	}
	cells = p
	if !(hi > lo) {
		hi = lo + minWidth
	}
	g.Lo, g.Hi, g.Cells = lo, hi, cells
	g.step = (hi - lo) / float64(cells)
	g.invStep = 1 / g.step
	if cap(g.Col) < cells {
		g.Col = make([]float64, cells)
	} else {
		g.Col = g.Col[:cells]
	}
	if cap(g.diffA) < cells+1 {
		g.diffA = make([]float64, cells+1)
		g.diffB = make([]float64, cells+1)
	} else if len(g.diffA) != cells+1 {
		// The finalize pass re-zeroes the entries it consumes, so a
		// same-size Reset (the steady state under pooling) skips the
		// clear entirely; only a size change pays for one.
		g.diffA = g.diffA[:cap(g.diffA)]
		g.diffB = g.diffB[:cap(g.diffB)]
		clear(g.diffA)
		clear(g.diffB)
		g.diffA = g.diffA[:cells+1]
		g.diffB = g.diffB[:cells+1]
	}
	g.padAcc = 0
}

// CellOf maps a time to its column index, clamped to [0, Cells-1].
// It is monotone non-decreasing in t, which AddTrapMax relies on.
func (g *Grid) CellOf(t float64) int {
	c := int((t - g.Lo) * g.invStep)
	if c < 0 {
		return 0
	}
	if c >= g.Cells {
		return g.Cells - 1
	}
	return c
}

// Edge returns the left edge time of cell c (Edge(Cells) is the
// right edge of the last cell).
func (g *Grid) Edge(c int) float64 { return g.Lo + float64(c)*g.step }

// PadLeft returns the one-step-padded left edge of cell c — the
// conservative lower end of the times CellOf may assign to c.
func (g *Grid) PadLeft(c int) float64 { return g.Lo + float64(c-1)*g.step }

// PadRight returns the one-step-padded right edge of cell c — the
// conservative upper end of the times CellOf may assign to c.
func (g *Grid) PadRight(c int) float64 { return g.Lo + float64(c+2)*g.step }

// gridPadFrac scales the additive per-trap slack folded into each
// range's constant term. It absorbs two certified error sources: the
// reciprocal-multiply evaluation of a rising or falling piece differs
// from the exact division form of Trap.At by a handful of rounding
// errors of Vp, and a memoized reciprocal (NewTrapPre) may be off the
// exact one by 2⁻³⁷ relative — which makes the affine bound off by
// the same relative amount, and since the bound dominates At wherever
// it is tight, the absolute shortfall stays under ~Vp·2⁻³⁶. A pad of
// Vp·2⁻³³ dominates both with margin while sitting ~17 bits below
// the engine's Eps tolerance, so skip decisions are unaffected. gridAccPadFrac pads Finalize's prefix sums: the accumulated
// rounding of the difference-array reassociation is bounded by a few
// ulps of the summed range magnitudes (padAcc tracks Σ(|A| +
// |B|·Cells) over every range addition), so a slack of padAcc·2⁻⁴⁴ —
// 512 ulps of the worst-case partial sum — dominates it for any
// realistic trap count.
const (
	gridPadFrac    = 0x1p-33
	gridAccPadFrac = 0x1p-44
)

// addRange records the affine per-cell bound c ↦ a + b·c over cells
// [cs, ce] as an O(1) difference-array update.
func (g *Grid) addRange(cs, ce int, a, b float64) {
	if cs > ce {
		return
	}
	g.diffA[cs] += a
	g.diffA[ce+1] -= a
	g.diffB[cs] += b
	g.diffB[ce+1] -= b
	g.padAcc += math.Abs(a) + math.Abs(b)*float64(g.Cells)
}

// AddTrapMax accumulates the trapezoid's padded per-cell maxima into
// the grid: after Finalize, Col[c] upper-bounds the envelope sum at
// every time assigned to cell c.
//
// The covered cell span [CellOf(Q0), CellOf(Q3)] splits at the flat
// top into three phases, each an affine function of the cell index
// and therefore one O(1) range addition: rising cells are bounded at
// the padded right edge ((PadRight(c)−Q0)·slope grows past Vp beyond
// Q1, so it dominates At anywhere at or before the flat top), flat
// cells by Vp, and falling cells at the padded left edge (the affine
// extension exceeds Vp before Q2, so it dominates At anywhere at or
// after the top). Because each phase's bound is sound on the others'
// territory in the direction the split can be off by, the ulp-level
// slop in the split cells only coarsens the bound, never breaks it.
// The per-trap gridPadFrac slack is folded into each constant term.
func (g *Grid) AddTrapMax(tr Trap) {
	c0 := g.CellOf(tr.Q0)
	c1 := g.CellOf(tr.Q3)
	cr := g.CellOf(tr.Q1) // rising/flat split
	if cr > c1 {
		cr = c1
	}
	ce := g.CellOf(tr.Q2) + 1 // flat/falling split, one-cell overshoot
	if ce > c1 {
		ce = c1
	}
	if ce < cr {
		ce = cr
	}
	pad := tr.Vp * gridPadFrac
	riseSlope := tr.InvRise * tr.Vp
	fallSlope := tr.InvFall * tr.Vp
	// Rising [c0, cr]: (PadRight(c)−Q0)·riseSlope = A + B·c.
	g.addRange(c0, cr, (g.Lo+2*g.step-tr.Q0)*riseSlope+pad, g.step*riseSlope)
	// Flat (cr, ce]: constant Vp.
	g.addRange(cr+1, ce, tr.Vp+pad, 0)
	// Falling (ce, c1]: Vp−(PadLeft(c)−Q2)·fallSlope = A − B·c.
	g.addRange(ce+1, c1, tr.Vp+(tr.Q2-g.Lo+g.step)*fallSlope+pad, -g.step*fallSlope)
}

// Finalize folds the deferred range additions into the columns: one
// prefix pass over the two difference arrays, plus the gridAccPadFrac
// slack that keeps every column a certified upper bound despite the
// reassociated summation. Call once after the last AddTrapMax; the
// columns are unusable before (Finalize assigns them outright).
func (g *Grid) Finalize() {
	pad := g.padAcc * gridAccPadFrac
	runA, runB := 0.0, 0.0
	for c := 0; c < g.Cells; c++ {
		runA += g.diffA[c]
		runB += g.diffB[c]
		g.diffA[c], g.diffB[c] = 0, 0
		g.Col[c] = runA + runB*float64(c) + pad
	}
	g.diffA[g.Cells], g.diffB[g.Cells] = 0, 0
}

// rampPadFrac scales the slack subtracted from FinalizeSkip's
// division-free ramp lower bound, covering the reciprocal-multiply
// rounding against the exact ramp expression.
const rampPadFrac = 0x1p-48

// FinalizeSkip is Finalize fused with the cell-skip derivation, for
// callers that never read the columns: it folds the range additions in
// registers and, per cell, compares the column bound against the
// victim ramp lower bound — cell c is skipped (bit c set) when even
// ramp(PadLeft(c)) − col exceeds need, a certified lower bound on the
// noisy waveform anywhere CellOf assigns to the cell, exact in float
// because the column dominates the envelope summands pointwise and
// float addition/subtraction are monotone. The ramp lower bound is
// zero left of the ramp foot r0, the full swing vdd past r1, and
// otherwise the reciprocal-multiply interpolation minus an ulp-scaled
// pad. cMax is the highest unskipped cell, -1 if all cells are
// skipped. The Col slice is left untouched (and stale).
func (g *Grid) FinalizeSkip(r0, r1, vdd, need float64) (skip uint64, cMax int) {
	pad := g.padAcc * gridAccPadFrac
	rampSlope := vdd / (r1 - r0)
	rampPad := vdd * rampPadFrac
	cMax = -1
	runA, runB := 0.0, 0.0
	for c := 0; c < g.Cells; c++ {
		runA += g.diffA[c]
		runB += g.diffB[c]
		g.diffA[c], g.diffB[c] = 0, 0
		col := runA + runB*float64(c) + pad
		e := g.Lo + float64(c-1)*g.step // PadLeft(c)
		var rv float64
		switch {
		case e <= r0:
			rv = 0
		case e >= r1:
			rv = vdd
		default:
			rv = (e-r0)*rampSlope - rampPad
		}
		if rv-col > need {
			skip |= 1 << uint(c)
		} else {
			cMax = c
		}
	}
	g.diffA[g.Cells], g.diffB[g.Cells] = 0, 0
	return skip, cMax
}

// gridPool recycles Grid column storage across queries.
var gridPool = sync.Pool{New: func() any { return new(Grid) }}

// GetGrid returns a pooled grid; call Reset before use.
func GetGrid() *Grid { return gridPool.Get().(*Grid) }

// PutGrid returns a grid to the pool. The caller must not use it (or
// its columns) afterwards.
func PutGrid(g *Grid) { gridPool.Put(g) }
