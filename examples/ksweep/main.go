// Ksweep: reproduce the paper's Figure-10 view for one circuit — the
// convergence of the addition and elimination delay curves as k grows.
// The crossover region suggests a "good" value of k: beyond it, adding
// more aggressors to the analysis (or fixing more couplings) buys
// little.
package main

import (
	"flag"
	"fmt"
	"log"

	"topkagg"
)

func main() {
	bench := flag.String("bench", "i1", "benchmark circuit")
	kmax := flag.Int("k", 30, "largest cardinality to sweep")
	flag.Parse()

	c, err := topkagg.GenerateBenchmark(*bench)
	if err != nil {
		log.Fatal(err)
	}
	m := topkagg.NewModel(c)

	// Both sweeps run as one batch over a shared analyzer: the noise
	// fixpoint is computed once and reused by both modes (and by any
	// further queries), instead of once per TopK* call.
	a := topkagg.NewAnalyzer(m, topkagg.Options{})
	resps := a.RunBatch([]topkagg.Query{
		{Op: topkagg.OpAddition, Net: topkagg.WholeCircuit, K: *kmax},
		{Op: topkagg.OpElimination, Net: topkagg.WholeCircuit, K: *kmax},
	}, 2)
	for _, r := range resps {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
	}
	add, del := resps[0].Result, resps[1].Result

	fmt.Printf("circuit %s: noiseless %.4f ns, all-aggressor %.4f ns\n\n",
		c.Name, add.BaseDelay, add.AllDelay)
	fmt.Println("k    addition(ns)  elimination(ns)")
	for k := 1; k <= *kmax; k++ {
		a, e := "", ""
		if k-1 < len(add.PerK) {
			a = fmt.Sprintf("%.4f", add.PerK[k-1].Delay)
		}
		if k-1 < len(del.PerK) {
			e = fmt.Sprintf("%.4f", del.PerK[k-1].Delay)
		}
		fmt.Printf("%-4d %-13s %s\n", k, a, e)
	}

	// A simple textual view of the convergence.
	fmt.Println("\ndelay span [noiseless..all-aggressor], A = addition, E = elimination:")
	span := add.AllDelay - add.BaseDelay
	for _, k := range []int{1, *kmax / 4, *kmax / 2, *kmax} {
		if k < 1 || k-1 >= len(add.PerK) || k-1 >= len(del.PerK) {
			continue
		}
		line := []byte("|----------------------------------------|")
		pos := func(d float64) int {
			p := int(40 * (d - add.BaseDelay) / span)
			if p < 0 {
				p = 0
			}
			if p > 40 {
				p = 40
			}
			return 1 + p
		}
		line[pos(add.PerK[k-1].Delay)] = 'A'
		line[pos(del.PerK[k-1].Delay)] = 'E'
		fmt.Printf("k=%-3d %s\n", k, line)
	}
}
