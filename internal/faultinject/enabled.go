//go:build !faultinject_off

package faultinject

// enabled gates every probe. The default build keeps probes live (one
// atomic load each when no plan is armed) so the chaos tests in the
// ordinary test suite can inject faults; building with
// -tags faultinject_off turns this constant false and the compiler
// removes the probe bodies entirely.
const enabled = true
