package core

import (
	"math"
	"testing"

	"topkagg/internal/bruteforce"
	"topkagg/internal/gen"
	"topkagg/internal/noise"
)

// TestDifferentialAgainstBruteForce is the differential harness of the
// observability PR: 50 seeded random small circuits, pruned top-k
// addition and elimination vs the exhaustive brute-force baseline for
// k ∈ {1,2,3}, compared at the bit level (math.Float64bits).
//
// Bit-level comparison is meaningful because both sides measure masks
// with the same reference engine (Model.Run), whose results are
// deterministic for any worker count — when both pick a set of equal
// quality, the delays agree bit for bit, not merely within tolerance.
// What each cardinality guarantees differs:
//
//   - k = 1: the enumeration scores every primary aggressor exactly,
//     so the selection must be byte-identical to brute force on every
//     seed and both modes.
//   - k = 2,3: the implicit enumeration is heuristic — a candidate set
//     the construction rules never generate cannot win — so the
//     guarantee is the optimality *bound* (never beyond the
//     brute-force optimum, bitwise comparable) plus a deterministic
//     floor on how many curve points match exactly. The floor (280 of
//     300 points; currently 291) catches any regression in candidate
//     generation or pruning without asserting more than the paper's
//     algorithm promises.
//
// Every reported delay is additionally re-measured with an independent
// reference run of the selected mask, which must reproduce the
// reported number bit for bit unless the rescoring monotone clamp
// replaced it with the previous cardinality's delay (then THAT must
// match bit for bit).
func TestDifferentialAgainstBruteForce(t *testing.T) {
	const maxK = 3
	seeds := 50
	if testing.Short() {
		seeds = 10
	}
	exact, points := 0, 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		c, err := gen.Build(gen.Spec{Name: "diff", Gates: 10, Couplings: 9, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		// Serial inner sweeps: worker-count invariance is asserted
		// separately; here the comparison itself is the point.
		m := noise.NewModel(c).WithWorkers(1)

		for _, elim := range []bool{false, true} {
			mode := "addition"
			run := TopKAddition
			bfRun := bruteforce.Addition
			if elim {
				mode = "elimination"
				run = TopKElimination
				bfRun = bruteforce.Elimination
			}
			res, err := run(m, maxK, Exact())
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, mode, err)
			}
			for k := 1; k <= maxK && k <= len(res.PerK); k++ {
				bf, err := bfRun(m, k, 0)
				if err != nil {
					t.Fatal(err)
				}
				got := res.PerK[k-1].Delay
				points++
				if math.Float64bits(got) == math.Float64bits(bf.Delay) {
					exact++
				} else if k == 1 {
					t.Errorf("seed %d %s k=1: pruned %.17g != brute force %.17g (sets %v vs %v)",
						seed, mode, got, bf.Delay, res.PerK[0].IDs, bf.IDs)
				}
				// The optimality bound holds unconditionally: brute
				// force maximizes addition delay and minimizes
				// elimination delay over all same-cardinality sets.
				if (!elim && got > bf.Delay) || (elim && got < bf.Delay) {
					t.Errorf("seed %d %s k=%d: pruned %.17g beats exhaustive optimum %.17g — measurement paths diverged",
						seed, mode, k, got, bf.Delay)
				}

				// Re-measure the selected mask independently.
				var mask noise.Mask
				if elim {
					mask = noise.WithoutMask(c, res.PerK[k-1].IDs)
				} else {
					mask = noise.MaskOf(c, res.PerK[k-1].IDs)
				}
				an, err := m.Run(mask)
				if err != nil {
					t.Fatal(err)
				}
				measured := an.CircuitDelay()
				if math.Float64bits(measured) != math.Float64bits(got) {
					clamped := k > 1 && math.Float64bits(got) == math.Float64bits(res.PerK[k-2].Delay)
					if !clamped {
						t.Errorf("seed %d %s k=%d: reported %.17g but independent re-measurement gives %.17g",
							seed, mode, k, got, measured)
					}
				}
			}
		}
	}
	t.Logf("byte-identical curve points: %d of %d", exact, points)
	// Deterministic floor (fixed seeds, pure-Go float math): currently
	// 291/300. A drop below 280 means candidate generation or pruning
	// lost real optima.
	if want := points * 280 / 300; exact < want {
		t.Errorf("only %d of %d points byte-identical (floor %d) — enumeration quality regressed", exact, points, want)
	}
}
