package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"topkagg/internal/circuit"
	"topkagg/internal/gen"
	"topkagg/internal/httpapi"
)

// serveLevel is one concurrency step of the HTTP saturation sweep:
// how many client workers were applied, what throughput came out, and
// where the latency tail sat. Reading QPS across levels shows where
// the server saturates; reading P99 shows what that costs.
type serveLevel struct {
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"durationSec"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	QPS         float64 `json:"qps"`
	P50Ns       int64   `json:"p50Ns"`
	P90Ns       int64   `json:"p90Ns"`
	P99Ns       int64   `json:"p99Ns"`
}

// runServe emits the HTTP front-end suite: per-op wire round-trip
// latencies over a real loopback listener (testing.Benchmark rows),
// then a mixed-workload saturation sweep across client concurrency
// levels (the serve table). Everything runs in-process against an
// httptest server, so the numbers measure topkd's serving stack —
// JSON codec, admission, analyzer dispatch — not container networking.
func runServe(out string, quick bool) error {
	c, err := gen.Build(gen.Spec{Name: "serve", Gates: 40, Couplings: 80, Seed: 7})
	if err != nil {
		return err
	}
	api := httpapi.NewServer(httpapi.Config{})
	if err := api.Preload("bench", "netlist", c); err != nil {
		return err
	}
	ts := httptest.NewServer(api)
	defer ts.Close()
	client := ts.Client()

	var nets []string
	for id := 0; id < c.NumNets(); id++ {
		if c.Net(circuit.NetID(id)).Driver >= 0 {
			nets = append(nets, c.Net(circuit.NetID(id)).Name)
		}
	}

	post := func(path string, body map[string]any) error {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := client.Post(ts.URL+"/v1/models/bench"+path, "application/json", bytes.NewReader(data))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	// Warm the analyzer (fixpoint + preparations) outside every timer.
	if err := post("/query", map[string]any{"op": "addition", "k": 4}); err != nil {
		return fmt.Errorf("warmup: %w", err)
	}

	rep := newReport()

	// Per-op wire latency: one warm HTTP round trip per iteration.
	roundTrip := func(path string, body map[string]any) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := post(path, body); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	measure(&rep, "serve_http/query_add-k4", roundTrip("/query", map[string]any{"op": "addition", "k": 4}))
	measure(&rep, "serve_http/query_elim-k4", roundTrip("/query", map[string]any{"op": "elimination", "k": 4}))
	measure(&rep, "serve_http/query_whatif", roundTrip("/query", map[string]any{"op": "whatif", "fix": []int{0, 1}}))
	if !quick {
		measure(&rep, "serve_http/sweep-3nets-k2", roundTrip("/sweep",
			map[string]any{"op": "addition", "k": 2, "nets": nets[:min(3, len(nets))]}))
		measure(&rep, "serve_http/batch-8q-w4", func(b *testing.B) {
			queries := make([]map[string]any, 8)
			for i := range queries {
				queries[i] = map[string]any{"op": "addition", "k": 1 + i%4}
				if i%2 == 1 && len(nets) > 0 {
					queries[i]["net"] = nets[i%len(nets)]
				}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := post("/batch", map[string]any{"queries": queries, "workers": 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Saturation sweep: mixed workload at rising client concurrency.
	levels := []int{1, 2, 4, 8, 16}
	duration := 2 * time.Second
	if quick {
		levels = []int{1, 4}
		duration = 400 * time.Millisecond
	}
	for _, workers := range levels {
		lvl, err := saturate(client, ts.URL, nets, workers, duration)
		if err != nil {
			return err
		}
		rep.Serve = append(rep.Serve, lvl)
		fmt.Printf("serve_saturation/c%-3d %10.1f qps  p50 %-12s p99 %-12s %d errors\n",
			lvl.Concurrency, lvl.QPS,
			time.Duration(lvl.P50Ns).Round(time.Microsecond),
			time.Duration(lvl.P99Ns).Round(time.Microsecond), lvl.Errors)
	}
	return write(out, rep)
}

// saturate applies one concurrency level of mixed query traffic for
// the given duration and folds the outcome into a serveLevel.
func saturate(client *http.Client, base string, nets []string, workers int, duration time.Duration) (serveLevel, error) {
	var mu sync.Mutex
	var lats []int64
	errors := 0
	var wg sync.WaitGroup
	stopAt := time.Now().Add(duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			var local []int64
			localErrs := 0
			for time.Now().Before(stopAt) {
				body := map[string]any{}
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // 40% addition
					body["op"] = "addition"
					body["k"] = 1 + rng.Intn(4)
				case 4, 5: // 20% elimination
					body["op"] = "elimination"
					body["k"] = 1 + rng.Intn(4)
				default: // 40% whatif (the cheap op keeps pressure on the codec)
					body["op"] = "whatif"
					body["fix"] = []int{rng.Intn(10)}
				}
				if len(nets) > 0 && rng.Intn(2) == 0 {
					body["net"] = nets[rng.Intn(len(nets))]
				}
				data, _ := json.Marshal(body)
				start := time.Now()
				resp, err := client.Post(base+"/v1/models/bench/query", "application/json", bytes.NewReader(data))
				if err != nil {
					localErrs++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					localErrs++
				}
				local = append(local, int64(time.Since(start)))
			}
			mu.Lock()
			lats = append(lats, local...)
			errors += localErrs
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) int64 {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(q*float64(len(lats)-1))]
	}
	return serveLevel{
		Concurrency: workers,
		DurationSec: duration.Seconds(),
		Requests:    len(lats),
		Errors:      errors,
		QPS:         float64(len(lats)) / duration.Seconds(),
		P50Ns:       pct(0.50),
		P90Ns:       pct(0.90),
		P99Ns:       pct(0.99),
	}, nil
}
