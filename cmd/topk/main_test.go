package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"topkagg"
)

func TestLoadCircuitValidation(t *testing.T) {
	if _, err := loadCircuit(topkagg.DefaultLibrary(), "", "", "", ""); err == nil {
		t.Fatal("must require a source")
	}
	if _, err := loadCircuit(topkagg.DefaultLibrary(), "x.ckt", "", "", "i1"); err == nil {
		t.Fatal("must reject multiple sources")
	}
	if _, err := loadCircuit(topkagg.DefaultLibrary(), "x.ckt", "", "x.spef", ""); err == nil {
		t.Fatal("-spef must pair with -verilog")
	}
	if _, err := loadCircuit(topkagg.DefaultLibrary(), "", "", "", "i1"); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCircuit(topkagg.DefaultLibrary(), "", "", "", "nope"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestLoadCircuitFromNetlist(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckt")
	src := "circuit c\noutput y\ngate g1 INV_X1 a -> y\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := loadCircuit(topkagg.DefaultLibrary(), path, "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "c" {
		t.Fatalf("name = %q", c.Name)
	}
}

func TestLoadCircuitFromVerilogAndSPEF(t *testing.T) {
	dir := t.TempDir()
	vpath := filepath.Join(dir, "c.v")
	spath := filepath.Join(dir, "c.spef")
	vsrc := `module c (a, b, y);
  input a, b;
  output y;
  wire n1;
  NAND2_X1 g1 (.A(a), .B(b), .Y(n1));
  INV_X1 g2 (.A(n1), .Y(y));
endmodule
`
	ssrc := `*SPEF "IEEE 1481-1998"
*C_UNIT 1 FF
*R_UNIT 1 KOHM
*D_NET n1 6
*CAP
1 n1 6
2 n1 b 1.5
*END
`
	if err := os.WriteFile(vpath, []byte(vsrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spath, []byte(ssrc), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := loadCircuit(topkagg.DefaultLibrary(), "", vpath, spath, "")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumCouplings() != 1 {
		t.Fatalf("couplings = %d", c.NumCouplings())
	}
	n1, _ := c.NetByName("n1")
	if c.Net(n1).Cgnd != 6 {
		t.Fatal("SPEF parasitics not applied")
	}
	// Verilog without SPEF also loads.
	if _, err := loadCircuit(topkagg.DefaultLibrary(), "", vpath, "", ""); err != nil {
		t.Fatal(err)
	}
	// Missing files error cleanly.
	if _, err := loadCircuit(topkagg.DefaultLibrary(), "", filepath.Join(dir, "nope.v"), "", ""); err == nil {
		t.Fatal("missing verilog must error")
	}
	if _, err := loadCircuit(topkagg.DefaultLibrary(), "", vpath, filepath.Join(dir, "nope.spef"), ""); err == nil {
		t.Fatal("missing spef must error")
	}
}

func TestEmitJSON(t *testing.T) {
	c, err := topkagg.ParseNetlistString(`circuit j
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 b -> m1
couple n1 m1 2.0
`)
	if err != nil {
		t.Fatal(err)
	}
	m := topkagg.NewModel(c)
	res, err := topkagg.TopKAddition(m, 1, topkagg.ExactOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := emitJSON(&buf, c, "add", res); err != nil {
		t.Fatal(err)
	}
	var out jsonResult
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out.Circuit != "j" || out.Mode != "add" || len(out.PerK) != 1 {
		t.Fatalf("JSON content wrong: %+v", out)
	}
	if out.PerK[0].K != 1 || len(out.PerK[0].Couplings) != 1 {
		t.Fatalf("perK wrong: %+v", out.PerK)
	}
	if out.PerK[0].Couplings[0].NetA != "n1" || out.PerK[0].Couplings[0].NetB != "m1" {
		t.Fatalf("coupling names wrong: %+v", out.PerK[0].Couplings[0])
	}
}
