package pathreport

import (
	"strings"
	"testing"

	"topkagg/internal/cell"
	"topkagg/internal/gen"
	"topkagg/internal/netlist"
	"topkagg/internal/noise"
)

func analysis(t *testing.T) *noise.Analysis {
	t.Helper()
	src := `circuit rpt
output y
gate g1 NAND2_X1 a b -> n1
gate g2 INV_X1 n1 -> n2
gate g3 INV_X1 n2 -> y
gate h1 INV_X1 c -> m1
couple n1 m1 3.0
couple n2 m1 2.0
couple n2 c 1.0
couple n2 a 0.5
`
	c, err := netlist.ParseString(src, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	an, err := noise.NewModel(c).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestCriticalReportShape(t *testing.T) {
	an := analysis(t)
	r := Critical(an, Options{})
	for _, want := range []string{
		"Critical path report — circuit rpt",
		"noiseless delay",
		"crosstalk penalty",
		"(input)",
		"arrival at sink y",
	} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
	// Every path net appears.
	for _, name := range []string{"n1", "n2", "y"} {
		if !strings.Contains(r, name) {
			t.Errorf("report missing net %s", name)
		}
	}
}

func TestCriticalAggressorCap(t *testing.T) {
	an := analysis(t)
	r := Critical(an, Options{MaxAggressors: 1})
	// n2 has 3 couplings; with the cap at 1 there must be a "+2 more".
	if !strings.Contains(r, "+2 more") {
		t.Errorf("aggressor cap not applied:\n%s", r)
	}
	// The strongest aggressor of n2 (m1, 2.0 fF) is the one listed.
	if !strings.Contains(r, "m1(2.0fF)") {
		t.Errorf("strongest aggressor not listed first:\n%s", r)
	}
}

func TestNoisyNets(t *testing.T) {
	an := analysis(t)
	r := NoisyNets(an, 2)
	if !strings.Contains(r, "Noisiest nets") {
		t.Fatalf("header missing:\n%s", r)
	}
	lines := strings.Split(strings.TrimSpace(r), "\n")
	// header + column row + separator + at most 2 rows
	if len(lines) > 5 {
		t.Fatalf("top cap not applied: %d lines", len(lines))
	}
}

func TestNoisyNetsEmpty(t *testing.T) {
	src := "circuit quiet\noutput y\ngate g1 INV_X1 a -> y\n"
	c, err := netlist.ParseString(src, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	an, err := noise.NewModel(c).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(NoisyNets(an, 5), "no delay noise") {
		t.Fatal("quiet circuit must say so")
	}
}

func TestReportOnGeneratedCircuit(t *testing.T) {
	c, err := gen.BuildPaper("i1")
	if err != nil {
		t.Fatal(err)
	}
	an, err := noise.NewModel(c).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	r := Critical(an, Options{})
	if len(strings.Split(r, "\n")) < 8 {
		t.Fatalf("implausibly short report:\n%s", r)
	}
	if strings.Contains(r, "NOT converged") {
		t.Fatal("i1 must converge")
	}
}
