package pathreport

import (
	"strings"
	"testing"

	"topkagg/internal/cell"
	"topkagg/internal/netlist"
	"topkagg/internal/noise"
)

func TestNoisePlotShape(t *testing.T) {
	src := `circuit wp
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 b -> m1
couple n1 m1 4.0
`
	c, err := netlist.ParseString(src, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	m := noise.NewModel(c)
	an, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := c.NetByName("n1")
	plot := NoisePlot(an, m, n1, PlotOptions{})
	for _, want := range []string{"net n1", ".", "#", "o", "½", "own delay noise"} {
		if !strings.Contains(plot, want) {
			t.Errorf("plot missing %q:\n%s", want, plot)
		}
	}
	lines := strings.Split(strings.TrimRight(plot, "\n"), "\n")
	if len(lines) != 2+DefaultPlotHeight {
		t.Fatalf("plot has %d lines, want %d", len(lines), 2+DefaultPlotHeight)
	}
}

func TestNoisePlotQuietNet(t *testing.T) {
	src := `circuit q
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
`
	c, err := netlist.ParseString(src, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	m := noise.NewModel(c)
	an, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := c.NetByName("n1")
	plot := NoisePlot(an, m, n1, PlotOptions{Width: 40, Height: 8})
	lines := strings.SplitN(plot, "\n", 3) // skip the two legend lines
	grid := lines[2]
	if !strings.Contains(grid, ".") {
		t.Fatal("quiet net still plots its transition")
	}
	if strings.Contains(grid, "#") || strings.Contains(grid, "o") {
		t.Fatal("quiet net must have no envelope or noisy trace")
	}
}

func TestPlotOptionsClamping(t *testing.T) {
	var o PlotOptions
	if o.width() != DefaultPlotWidth || o.height() != DefaultPlotHeight {
		t.Fatal("defaults not applied")
	}
	o = PlotOptions{Width: 5, Height: 2} // below minimums
	if o.width() != DefaultPlotWidth || o.height() != DefaultPlotHeight {
		t.Fatal("implausible sizes must fall back to defaults")
	}
}
