package spef

import (
	"os"
	"testing"

	"topkagg/internal/cell"
	"topkagg/internal/circuit"
	"topkagg/internal/netlist"
)

// FuzzApply checks the SPEF reader never panics on arbitrary input.
func FuzzApply(f *testing.F) {
	f.Add("*SPEF \"x\"\n*D_NET n1 1\n*CAP\n1 n1 2\n*END\n")
	f.Add("*SPEF \"x\"\n*D_NET n1 1\n*CAP\n1 n1 m1 2\n*END\n")
	f.Add("*C_UNIT 1 FF\n")
	f.Add("garbage\n*D_NET\n")
	f.Add("*SPEF\n*D_NET n1 0\n*RES\n1 n1 0.5\n*END\n")
	lib := cell.Default()
	f.Fuzz(func(t *testing.T, src string) {
		c, err := netlist.ParseString(baseNetlist, lib)
		if err != nil {
			t.Fatal(err)
		}
		_ = ApplyString(src, c) // must not panic; errors are fine
	})
}

// FuzzParseSPEF fuzzes the full SPEF reader against a realistic
// circuit, seeded with the repo's sample parasitics (testdata/
// sample.spef, written by Write from the c17 benchmark) plus edge-case
// fragments. The parser must return an error for every malformed
// input, never panic; whatever it accepts must leave the circuit
// analyzable (non-negative parasitics).
func FuzzParseSPEF(f *testing.F) {
	seed, err := os.ReadFile("../../testdata/sample.spef")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	f.Add("*SPEF \"IEEE 1481-1998\"\n*C_UNIT 1 PF\n*D_NET N1 0.5\n*CAP\n1 N1 N2 0.25\n*END\n")
	f.Add("*D_NET N1 1e309\n")       // overflow
	f.Add("*D_NET N1 -1\n")          // negative total
	f.Add("*CAP\n1 N1 2\n")          // section outside a net
	f.Add("*D_NET N1 1\n*CAP\n1\n")  // short cap line
	f.Add("*C_UNIT -1 FF\n*D_NET\n") // negative unit, missing fields
	lib := cell.Default()
	f.Fuzz(func(t *testing.T, src string) {
		c, err := netlist.ParseString(baseNetlist, lib)
		if err != nil {
			t.Fatal(err)
		}
		if err := ApplyString(src, c); err != nil {
			return
		}
		for _, n := range c.Nets() {
			if n.Cgnd < 0 || n.Rwire < 0 {
				t.Fatalf("accepted SPEF produced negative parasitics on %s: Cgnd=%g Rwire=%g", n.Name, n.Cgnd, n.Rwire)
			}
		}
		for i := 0; i < c.NumCouplings(); i++ {
			if cp := c.Coupling(circuit.CouplingID(i)); cp.Cc < 0 {
				t.Fatalf("accepted SPEF produced negative coupling %d: %g", i, cp.Cc)
			}
		}
	})
}
