package main

import (
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestTransient(t *testing.T) {
	if !transient(nil, errors.New("connection reset")) {
		t.Error("transport error not transient")
	}
	for _, code := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		if !transient(&http.Response{StatusCode: code}, nil) {
			t.Errorf("status %d not transient", code)
		}
	}
	for _, code := range []int{200, 400, 404, 500} {
		if transient(&http.Response{StatusCode: code}, nil) {
			t.Errorf("status %d treated as transient", code)
		}
	}
}

func TestBackoffJitterAndCap(t *testing.T) {
	pol := retryPolicy{max: 8, base: 10 * time.Millisecond, cap: 80 * time.Millisecond}
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 8; n++ {
		ceil := pol.base << uint(n-1)
		if ceil <= 0 || ceil > pol.cap {
			ceil = pol.cap
		}
		for i := 0; i < 100; i++ {
			d := pol.backoff(n, 0, rng)
			if d < 0 || d > ceil {
				t.Fatalf("backoff(n=%d) = %v outside [0, %v]", n, d, ceil)
			}
		}
	}
	// A Retry-After hint wins over jitter, clamped to the cap.
	if d := pol.backoff(1, 30*time.Millisecond, rng); d != 30*time.Millisecond {
		t.Errorf("Retry-After 30ms gave %v", d)
	}
	if d := pol.backoff(1, time.Minute, rng); d != pol.cap {
		t.Errorf("Retry-After 1m not clamped to cap: %v", d)
	}
}

func TestRetryAfterOf(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	cases := []struct {
		v    string
		want time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"0", 0},
		{"-1", 0},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0}, // HTTP-date form: ignored
	}
	for _, c := range cases {
		if got := retryAfterOf(mk(c.v)); got != c.want {
			t.Errorf("retryAfterOf(%q) = %v, want %v", c.v, got, c.want)
		}
	}
	if retryAfterOf(nil) != 0 {
		t.Error("nil response should yield 0")
	}
}

// TestDoRetryAbsorbsPushback drives doRetry against a live server that
// answers 503 twice before succeeding: the loop must absorb both
// pushbacks and land the request.
func TestDoRetryAbsorbsPushback(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	pol := retryPolicy{max: 5, base: time.Microsecond, cap: time.Millisecond}
	rng := rand.New(rand.NewSource(7))
	resp, retries, gaveUp := doRetry(func() (*http.Response, error) {
		return http.Get(ts.URL)
	}, pol, rng)
	if resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("final response: %+v", resp)
	}
	resp.Body.Close()
	if retries != 2 || gaveUp {
		t.Errorf("retries = %d, gaveUp = %v; want 2, false", retries, gaveUp)
	}
}

// TestDoRetryGivesUp pins the budget: a server that never stops
// pushing back costs exactly max retries and is reported as a give-up,
// not an error.
func TestDoRetryGivesUp(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	pol := retryPolicy{max: 3, base: time.Microsecond, cap: time.Millisecond}
	rng := rand.New(rand.NewSource(7))
	resp, retries, gaveUp := doRetry(func() (*http.Response, error) {
		return http.Get(ts.URL)
	}, pol, rng)
	if resp == nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("final response: %+v", resp)
	}
	resp.Body.Close()
	if retries != 3 || !gaveUp {
		t.Errorf("retries = %d, gaveUp = %v; want 3, true", retries, gaveUp)
	}
}
