package serve

import (
	"fmt"
	"io"
	"sort"

	"topkagg/internal/circuit"
	"topkagg/internal/core"
	"topkagg/internal/noise"
	"topkagg/internal/snapshot"
	"topkagg/internal/sta"
)

// Analyzer warm-state snapshot (DESIGN.md §13).
//
// A snapshot captures everything an Analyzer computed that is
// expensive to recompute and strictly read-only once built: the
// all-aggressor fixpoint analysis (noiseless and noisy windows,
// per-net delay noise) and every completed (mode, target)
// preparation. The restore-equivalence contract: for every query, a
// restored Analyzer's Response is byte-identical to what a cold
// Analyzer over the same model and options would return (wall-clock
// fields aside), because (a) every serialized float round-trips as
// its bit pattern, (b) everything not serialized — envelope intern
// tables, digest memos, admission counters — is cache that the
// determinism surface already excludes, and (c) preparation is itself
// deterministic, pinned by the package's determinism property tests.
// The differential suite in snapshot_test.go holds this end to end.
//
// Entries still being built and entries that failed are skipped — a
// snapshot never persists an error or a partial build, so restoring
// can only ever yield state a healthy cold server would also reach.

// Section kinds of the analyzer container.
const (
	secAnalyzer = 1    // options + circuit fingerprint
	secFull     = 2    // fixpoint analysis (windows, net noise)
	secPrep     = 3    // one (mode, target) preparation
	secEnd      = 0xFF // explicit terminator: absence = truncation
)

// Snapshot serializes the Analyzer's warm state to w as a versioned,
// checksummed container. Safe to call on a live Analyzer: the briefly
// held lock snapshots the cache maps, and the entries themselves are
// immutable once published.
func (a *Analyzer) Snapshot(w io.Writer) error {
	var full *noise.Analysis
	var shareds []*core.Shared
	a.mu.Lock()
	if e := a.full; e != nil {
		select {
		case <-e.done:
			if e.err == nil && e.an != nil {
				full = e.an
			}
		default: // still building; skip
		}
	}
	type keyed struct {
		key    prepKey
		shared *core.Shared
	}
	var ks []keyed
	for key, e := range a.preps {
		select {
		case <-e.done:
			if e.err == nil && e.shared != nil {
				ks = append(ks, keyed{key, e.shared})
			}
		default:
		}
	}
	a.mu.Unlock()
	// Deterministic section order: snapshots of identical warm state
	// are identical files.
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].key.elim != ks[j].key.elim {
			return !ks[i].key.elim
		}
		return ks[i].key.net < ks[j].key.net
	})
	for _, k := range ks {
		shareds = append(shareds, k.shared)
	}

	enc, err := snapshot.NewEncoder(w)
	if err != nil {
		return err
	}
	enc.Begin()
	core.EncodeOptions(enc, a.opt)
	enc.Int(a.m.C.NumNets())
	enc.Int(a.m.C.NumCouplings())
	if err := enc.Flush(secAnalyzer); err != nil {
		return err
	}
	if full != nil {
		enc.Begin()
		enc.Int(full.Iterations)
		enc.Bool(full.Converged)
		enc.F64s(full.NetNoise)
		encodeWindows(enc, full.Base.Windows)
		encodeWindows(enc, full.Timing.Windows)
		if err := enc.Flush(secFull); err != nil {
			return err
		}
		for _, sh := range shareds {
			enc.Begin()
			sh.EncodeShared(enc)
			if err := enc.Flush(secPrep); err != nil {
				return err
			}
		}
	}
	enc.Begin()
	return enc.Flush(secEnd)
}

func encodeWindows(e *snapshot.Encoder, ws []sta.Window) {
	e.U32(uint32(len(ws)))
	for _, w := range ws {
		e.F64(w.EAT)
		e.F64(w.LAT)
		e.F64(w.Slew)
	}
}

func decodeWindows(d *snapshot.Decoder, c *circuit.Circuit) ([]sta.Window, error) {
	n := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n > d.Remaining()/24 {
		return nil, fmt.Errorf("serve: restore: window block claims %d entries", n)
	}
	if n != c.NumNets() {
		return nil, fmt.Errorf("serve: restore: %d windows for %d nets", n, c.NumNets())
	}
	ws := make([]sta.Window, n)
	for i := range ws {
		ws[i].EAT = d.FiniteF64()
		ws[i].LAT = d.FiniteF64()
		ws[i].Slew = d.FiniteF64()
	}
	return ws, d.Err()
}

// RestoreAnalyzer rebuilds an Analyzer from a snapshot stream against
// a freshly constructed model of the same circuit. The model carries
// everything a snapshot deliberately does not (the circuit's columnar
// view, worker configuration, metric registry); the stream supplies
// the options and warm caches. Any malformed input — truncation, bit
// flips, adversarial bytes — yields a typed error and no Analyzer:
// the caches are attached only after the entire stream has decoded
// and validated, so a partially-populated Analyzer can never escape.
func RestoreAnalyzer(r io.Reader, m *noise.Model) (*Analyzer, error) {
	dec, err := snapshot.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	kind, err := dec.Next()
	if err != nil {
		return nil, restoreEOF(err)
	}
	if kind != secAnalyzer {
		return nil, fmt.Errorf("serve: restore: leading section is kind %d, want analyzer header", kind)
	}
	opt, err := core.DecodeOptions(dec, m.C)
	if err != nil {
		return nil, fmt.Errorf("serve: restore: %w", err)
	}
	nNets, nCoup := dec.Int(), dec.Int()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if nNets != m.C.NumNets() || nCoup != m.C.NumCouplings() {
		return nil, fmt.Errorf("serve: restore: snapshot of a %d-net/%d-coupling circuit cannot restore onto %d/%d (%s)",
			nNets, nCoup, m.C.NumNets(), m.C.NumCouplings(), m.C.Name)
	}
	if !dec.AtEnd() {
		return nil, fmt.Errorf("serve: restore: %d trailing bytes in analyzer header", dec.Remaining())
	}

	var full *noise.Analysis
	preps := map[prepKey]*prepEntry{}
	done := false
	for !done {
		kind, err := dec.Next()
		if err != nil {
			return nil, restoreEOF(err)
		}
		switch kind {
		case secFull:
			if full != nil {
				return nil, fmt.Errorf("serve: restore: duplicate fixpoint section")
			}
			full, err = decodeFull(dec, m)
			if err != nil {
				return nil, err
			}
		case secPrep:
			if full == nil {
				return nil, fmt.Errorf("serve: restore: preparation before fixpoint section")
			}
			sh, err := core.DecodeShared(dec, m, full, opt)
			if err != nil {
				return nil, err
			}
			key := prepKey{elim: sh.Elimination(), net: sh.Target()}
			if _, dup := preps[key]; dup {
				return nil, fmt.Errorf("serve: restore: duplicate preparation (elim=%v net=%d)", key.elim, key.net)
			}
			preps[key] = restoredPrep(sh)
		case secEnd:
			if !dec.AtEnd() {
				return nil, fmt.Errorf("serve: restore: end section carries %d bytes", dec.Remaining())
			}
			done = true
		default:
			return nil, fmt.Errorf("serve: restore: unknown section kind %d", kind)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		return nil, fmt.Errorf("serve: restore: data after end section")
	}

	a := NewAnalyzer(m, opt)
	if full != nil {
		fe := &fullEntry{done: make(chan struct{}), an: full}
		close(fe.done)
		a.full = fe
		a.preps = preps
	}
	return a, nil
}

// restoreEOF maps a clean EOF between sections to a typed truncation
// error: a valid snapshot always ends with an explicit end section, so
// running out of bytes first means the tail was lost.
func restoreEOF(err error) error {
	if err == io.EOF {
		return &snapshot.FormatError{Msg: "container truncated before end section"}
	}
	return err
}

func decodeFull(dec *snapshot.Decoder, m *noise.Model) (*noise.Analysis, error) {
	iterations := dec.Int()
	converged := dec.Bool()
	netNoise := dec.FiniteF64s()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if len(netNoise) != m.C.NumNets() {
		return nil, fmt.Errorf("serve: restore: net noise covers %d of %d nets", len(netNoise), m.C.NumNets())
	}
	if iterations < 0 {
		return nil, fmt.Errorf("serve: restore: negative iteration count %d", iterations)
	}
	baseW, err := decodeWindows(dec, m.C)
	if err != nil {
		return nil, err
	}
	timW, err := decodeWindows(dec, m.C)
	if err != nil {
		return nil, err
	}
	if !dec.AtEnd() {
		return nil, fmt.Errorf("serve: restore: %d trailing bytes in fixpoint section", dec.Remaining())
	}
	base, err := sta.RestoreResult(m.C, baseW)
	if err != nil {
		return nil, fmt.Errorf("serve: restore: %w", err)
	}
	timing, err := sta.RestoreResult(m.C, timW)
	if err != nil {
		return nil, fmt.Errorf("serve: restore: %w", err)
	}
	return &noise.Analysis{
		Base:       base,
		Timing:     timing,
		NetNoise:   netNoise,
		Iterations: iterations,
		Converged:  converged,
	}, nil
}

// restoredPrep wraps a decoded preparation in a published cache entry.
func restoredPrep(sh *core.Shared) *prepEntry {
	e := &prepEntry{done: make(chan struct{}), shared: sh}
	close(e.done)
	return e
}
