package exp

import (
	"os"
	"strings"
	"testing"
)

// The checked-in results files pin the paper reproduction: these tests
// regenerate the tables in-process with the full (non-Quick) config
// and diff every deterministic column against the golden copy, so an
// engine change that moves a reported delay is caught by `go test`.
// Runtime columns are machine-dependent and excluded; each table keeps
// its own column mask.

// goldenRows parses a rendered table (or a golden file) into rows of
// whitespace-split fields, skipping the title, header and rule lines.
func goldenRows(t *testing.T, text string) [][]string {
	t.Helper()
	var rows [][]string
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, " ")
		if i < 3 || line == "" { // title, header, dashes
			continue
		}
		rows = append(rows, strings.Fields(line))
	}
	return rows
}

// compareGolden diffs the selected field indices of every row.
func compareGolden(t *testing.T, goldenPath, got string, fields []int) {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	want := goldenRows(t, string(data))
	have := goldenRows(t, got)
	if len(have) != len(want) {
		t.Fatalf("%s: row count %d, golden has %d", goldenPath, len(have), len(want))
	}
	for r := range want {
		for _, f := range fields {
			if f >= len(want[r]) || f >= len(have[r]) {
				t.Fatalf("%s row %d: missing field %d (golden %v, got %v)", goldenPath, r, f, want[r], have[r])
			}
			if have[r][f] != want[r][f] {
				t.Errorf("%s row %d field %d: got %q, golden %q\ngolden row: %v\ngot row:    %v",
					goldenPath, r, f, have[r][f], want[r][f], want[r], have[r])
			}
		}
	}
}

// TestGoldenTable1 regenerates Table 1 (brute force vs proposed) and
// pins columns k, bf delay, bf scenarios and proposed delay. The two
// runtime columns (indices 2 and 5) vary with the machine.
func TestGoldenTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 1 regeneration (~10s+) skipped in -short")
	}
	tab, err := Table1(Config{})
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "../../results_table1.txt", tab.String(), []int{0, 1, 3, 4})
}

// TestGoldenTable2a regenerates Table 2(a) (top-k addition over the
// ten paper benchmarks) and pins the circuit shape and every delay
// column: ckt, gates, couplings, delay-all, the six k columns and the
// no-aggressor endpoint. The eight trailing runtime columns vary with
// the machine.
func TestGoldenTable2a(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 2(a) regeneration (~20s+) skipped in -short")
	}
	tab, err := Table2(Config{}, Addition)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "../../results_table2a.txt", tab.String(), []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
}
