package httpapi

import (
	"fmt"
	"net/http"
)

// apiError is the structured failure every handler path reports: an
// HTTP status, a stable machine-readable code, and a human message.
// The wire body is {"error": {"code": ..., "message": ...}}.
type apiError struct {
	status int
	code   string
	msg    string
}

func (e *apiError) Error() string { return fmt.Sprintf("%s: %s", e.code, e.msg) }

// Error codes. Stable across releases; clients switch on these, not on
// the message text.
const (
	codeBadJSON         = "bad-json"
	codeBadRequest      = "bad-request"
	codeUnknownOp       = "unknown-op"
	codeBadK            = "bad-k"
	codeUnknownNet      = "unknown-net"
	codeUnknownCoupling = "unknown-coupling"
	codeBadLimits       = "bad-limits"
	codeBadModelName    = "bad-model-name"
	codeBadUpload       = "bad-upload"
	codeUnknownModel    = "unknown-model"
	codeBodyTooLarge    = "body-too-large"
	codeOverloaded      = "overloaded"
	codeDraining        = "draining"
	codeEncode          = "encode"
)

func errBadRequest(code, format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: code, msg: fmt.Sprintf(format, args...)}
}

func errNotFound(code, format string, args ...any) *apiError {
	return &apiError{status: http.StatusNotFound, code: code, msg: fmt.Sprintf(format, args...)}
}

// errEncode is the structured substitute for a response that cannot be
// rendered as JSON (e.g. a non-finite float surfaced by ToWire).
func errEncode(err error) *apiError {
	return &apiError{status: http.StatusInternalServerError, code: codeEncode, msg: err.Error()}
}

// errorBody is the wire shape of an apiError.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeAPIError renders e as the complete response. The body is
// marshalled from plain strings, so it cannot itself fail to encode.
func writeAPIError(w http.ResponseWriter, e *apiError) {
	data, err := marshalJSON(errorBody{Error: errorDetail{Code: e.code, Message: e.msg}})
	if err != nil {
		// Unreachable (two strings always marshal); kept so a future
		// field addition cannot silently emit an empty body.
		http.Error(w, e.msg, e.status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if e.status == http.StatusTooManyRequests || e.status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(e.status)
	_, _ = w.Write(data)
}
