// Package pathreport renders sign-off-style critical-path timing
// reports with crosstalk annotations: per stage, the cell, incremental
// delay, cumulative arrival, and the delay noise injected on each net,
// plus the aggressor couplings responsible.
package pathreport

import (
	"fmt"
	"sort"
	"strings"

	"topkagg/internal/circuit"
	"topkagg/internal/noise"
)

// Options tune the report.
type Options struct {
	// MaxAggressors caps how many aggressor couplings are listed per
	// noisy net (0 = DefaultMaxAggressors).
	MaxAggressors int
}

// DefaultMaxAggressors bounds per-net aggressor listings.
const DefaultMaxAggressors = 3

func (o Options) maxAggressors() int {
	if o.MaxAggressors <= 0 {
		return DefaultMaxAggressors
	}
	return o.MaxAggressors
}

// Critical renders the noisy critical path of an analysis.
func Critical(an *noise.Analysis, opt Options) string {
	c := an.Timing.Circuit
	path := an.Timing.CriticalPath()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Critical path report — circuit %s\n", c.Name)
	fmt.Fprintf(&sb, "noiseless delay %.4f ns, noisy delay %.4f ns (crosstalk penalty %.4f ns, %d iterations%s)\n\n",
		an.Base.CircuitDelay(), an.CircuitDelay(),
		an.CircuitDelay()-an.Base.CircuitDelay(), an.Iterations,
		map[bool]string{true: "", false: ", NOT converged"}[an.Converged])
	fmt.Fprintf(&sb, "%-14s %-10s %9s %9s %9s  %s\n",
		"net", "cell", "incr", "arrival", "noise", "aggressors")
	sb.WriteString(strings.Repeat("-", 72))
	sb.WriteByte('\n')

	prev := 0.0
	for _, nid := range path {
		net := c.Net(nid)
		cellName := "(input)"
		if net.Driver != circuit.NoGate {
			cellName = c.Gate(net.Driver).Cell.Name
		}
		arr := an.Timing.Window(nid).LAT
		incr := arr - prev
		prev = arr
		ownNoise := an.NetNoise[nid]
		fmt.Fprintf(&sb, "%-14s %-10s %9.4f %9.4f %9.4f  %s\n",
			net.Name, cellName, incr, arr, ownNoise, aggressorsOf(an, nid, opt.maxAggressors()))
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "arrival at sink %s: %.4f ns\n", c.Net(path[len(path)-1]).Name, prev)
	return sb.String()
}

// aggressorsOf lists the strongest aggressor couplings of a net by
// coupling capacitance.
func aggressorsOf(an *noise.Analysis, v circuit.NetID, limit int) string {
	c := an.Timing.Circuit
	ids := c.CouplingsOf(v)
	if len(ids) == 0 {
		return "-"
	}
	sorted := make([]circuit.CouplingID, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool {
		return c.Coupling(sorted[i]).Cc > c.Coupling(sorted[j]).Cc
	})
	if len(sorted) > limit {
		sorted = sorted[:limit]
	}
	parts := make([]string, 0, len(sorted)+1)
	for _, id := range sorted {
		cp := c.Coupling(id)
		parts = append(parts, fmt.Sprintf("%s(%.1ffF)", c.Net(cp.Other(v)).Name, cp.Cc))
	}
	if more := len(ids) - len(sorted); more > 0 {
		parts = append(parts, fmt.Sprintf("+%d more", more))
	}
	return strings.Join(parts, " ")
}

// NoisyNets renders the nets with the largest delay noise, the
// "noise violations" view a designer triages.
func NoisyNets(an *noise.Analysis, top int) string {
	c := an.Timing.Circuit
	type row struct {
		id    circuit.NetID
		noise float64
	}
	var rows []row
	for _, n := range c.Nets() {
		if an.NetNoise[n.ID] > 0 {
			rows = append(rows, row{n.ID, an.NetNoise[n.ID]})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].noise != rows[j].noise {
			return rows[i].noise > rows[j].noise
		}
		return rows[i].id < rows[j].id
	})
	if len(rows) > top {
		rows = rows[:top]
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Noisiest nets — circuit %s\n", c.Name)
	fmt.Fprintf(&sb, "%-14s %9s %9s %9s\n", "net", "noise", "arrival", "couplings")
	sb.WriteString(strings.Repeat("-", 46))
	sb.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %9.4f %9.4f %9d\n",
			c.Net(r.id).Name, r.noise, an.Timing.Window(r.id).LAT, len(c.CouplingsOf(r.id)))
	}
	if len(rows) == 0 {
		sb.WriteString("(no delay noise anywhere)\n")
	}
	return sb.String()
}
