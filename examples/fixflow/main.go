// Fixflow: the complete crosstalk signoff-and-fix flow this library
// supports, end to end on one design:
//
//  1. Prefilter false aggressors (provably irrelevant couplings).
//  2. Measure the crosstalk penalty and find a "good" k — how many
//     aggressors the analysis actually needs to honor.
//  3. Spend a repair budget two ways and compare: fixing couplings
//     (the paper's top-k elimination set) versus upsizing victim
//     drivers — then apply both.
//  4. Sign off with a critical-path report.
package main

import (
	"flag"
	"fmt"
	"log"

	"topkagg"
)

func main() {
	bench := flag.String("bench", "i1", "benchmark circuit")
	budget := flag.Int("budget", 8, "repair budget (couplings to fix / gates to upsize)")
	flag.Parse()

	c, err := topkagg.GenerateBenchmark(*bench)
	if err != nil {
		log.Fatal(err)
	}
	m := topkagg.NewModel(c)

	// 1. False-aggressor prefilter.
	fr, err := topkagg.FalseAggressors(m, topkagg.FilterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[1] prefilter: %d of %d couplings provably irrelevant (%d false directions)\n",
		len(fr.False), c.NumCouplings(), len(fr.FalseDirections))

	// 2. Penalty measurement and good-k.
	an, err := m.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	base := an.Base.CircuitDelay()
	noisy := an.CircuitDelay()
	fmt.Printf("[2] delay: %.4f ns noiseless, %.4f ns with crosstalk (+%.1f%%)\n",
		base, noisy, 100*(noisy-base)/base)
	add, err := topkagg.TopKAddition(m, 30, topkagg.Options{Active: fr.Active})
	if err != nil {
		log.Fatal(err)
	}
	k, settled, err := topkagg.GoodK(add, topkagg.KneeParams{})
	if err != nil {
		log.Fatal(err)
	}
	state := "curve settled"
	if !settled {
		state = "still rising at the sweep end"
	}
	fmt.Printf("    good k ≈ %d (%s): that many simultaneous aggressors explain the delay\n", k, state)

	// 3a. Repair option A: fix the top-k elimination couplings.
	del, err := topkagg.TopKElimination(m, *budget, topkagg.Options{Active: fr.Active, VerifyTop: 4})
	if err != nil {
		log.Fatal(err)
	}
	elimDelay := del.Top().Delay
	fmt.Printf("[3] option A — shield %d couplings: %.4f ns (recovers %.4f)\n",
		len(del.Top().IDs), elimDelay, noisy-elimDelay)

	// 3b. Repair option B: upsize victim drivers (trial on a copy via
	// netlist round trip so option A's comparison stays clean).
	c2, err := topkagg.ParseNetlistString(topkagg.NetlistString(c))
	if err != nil {
		log.Fatal(err)
	}
	m2 := topkagg.NewModel(c2)
	sz, err := topkagg.OptimizeSizing(m2, *budget, topkagg.SizingOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    option B — upsize %d drivers:   %.4f ns (recovers %.4f, %d trials)\n",
		len(sz.Moves), sz.After, sz.Before-sz.After, sz.Trials)

	// Apply the better option (on the original model).
	if elimDelay <= sz.After {
		fmt.Println("    applying option A (shielding wins)")
		mask := make(topkagg.Mask, c.NumCouplings())
		for i := range mask {
			mask[i] = true
		}
		for _, id := range del.Top().IDs {
			mask[id] = false
		}
		an, err = m.Run(mask)
	} else {
		fmt.Println("    applying option B (upsizing wins)")
		if _, err := topkagg.OptimizeSizing(m, *budget, topkagg.SizingOptions{}); err != nil {
			log.Fatal(err)
		}
		an, err = m.Run(nil)
	}
	if err != nil {
		log.Fatal(err)
	}

	// 4. Signoff report.
	fmt.Printf("\n[4] signoff at %.4f ns:\n\n", an.CircuitDelay())
	fmt.Print(topkagg.CriticalReport(an))
}
