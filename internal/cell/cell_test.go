package cell

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRCUnits(t *testing.T) {
	// 1 kΩ · 1000 fF = 1 ns.
	if got := RC(1, 1000); got != 1 {
		t.Fatalf("RC(1kΩ,1000fF) = %g ns, want 1", got)
	}
}

func TestDefaultLibraryComplete(t *testing.T) {
	lib := Default()
	wantCells := len(kindSpecs) * len(Strengths)
	if lib.Len() != wantCells {
		t.Fatalf("library has %d cells, want %d", lib.Len(), wantCells)
	}
	if lib.Vdd != 1.2 {
		t.Fatalf("Vdd = %g, want 1.2", lib.Vdd)
	}
	for _, name := range lib.Names() {
		c, err := lib.Cell(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("default cell invalid: %v", err)
		}
	}
}

func TestStrengthScaling(t *testing.T) {
	lib := Default()
	x1, _ := lib.Cell("INV_X1")
	x4, _ := lib.Cell("INV_X4")
	if x4.Rdrv >= x1.Rdrv {
		t.Fatalf("X4 must have lower drive resistance: X1=%g X4=%g", x1.Rdrv, x4.Rdrv)
	}
	if x4.Cin <= x1.Cin {
		t.Fatalf("X4 must have higher input cap: X1=%g X4=%g", x1.Cin, x4.Cin)
	}
	if x4.KD >= x1.KD {
		t.Fatalf("X4 must be less load-sensitive: X1=%g X4=%g", x1.KD, x4.KD)
	}
	// Intrinsic delay is strength-independent in this model.
	if x4.D0 != x1.D0 {
		t.Fatalf("intrinsic delay should match: X1=%g X4=%g", x1.D0, x4.D0)
	}
}

func TestDelayMonotoneInLoad(t *testing.T) {
	lib := Default()
	c, _ := lib.Cell("NAND2_X2")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l1 := r.Float64() * 100
		l2 := l1 + r.Float64()*100
		sl := r.Float64() * 0.3
		return c.Delay(l2, sl) >= c.Delay(l1, sl) &&
			c.OutputSlew(l2, sl) >= c.OutputSlew(l1, sl)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDelayMonotoneInSlew(t *testing.T) {
	lib := Default()
	c, _ := lib.Cell("NOR2_X1")
	if c.Delay(10, 0.3) <= c.Delay(10, 0.05) {
		t.Fatal("slower input must not speed the gate up")
	}
}

func TestOutputSlewFloor(t *testing.T) {
	c := &Cell{Name: "t", Kind: Inv, NumInputs: 1, D0: 0.01, KD: 0, S0: 0.0005, KS: 0, Rdrv: 1, Cin: 1}
	if got := c.OutputSlew(0, 0); got < 1e-3 {
		t.Fatalf("output slew must be floored: %g", got)
	}
}

func TestValidateRejectsBadCells(t *testing.T) {
	bad := []*Cell{
		{Name: "", Kind: Inv, NumInputs: 1, D0: 1, S0: 1, Rdrv: 1, Cin: 1},
		{Name: "x", Kind: Inv, NumInputs: 0, D0: 1, S0: 1, Rdrv: 1, Cin: 1},
		{Name: "x", Kind: Inv, NumInputs: 9, D0: 1, S0: 1, Rdrv: 1, Cin: 1},
		{Name: "x", Kind: Inv, NumInputs: 1, D0: 0, S0: 1, Rdrv: 1, Cin: 1},
		{Name: "x", Kind: Inv, NumInputs: 1, D0: 1, S0: 0, Rdrv: 1, Cin: 1},
		{Name: "x", Kind: Inv, NumInputs: 1, D0: 1, S0: 1, Rdrv: 0, Cin: 1},
		{Name: "x", Kind: Inv, NumInputs: 1, D0: 1, S0: 1, Rdrv: 1, Cin: 0},
		{Name: "x", Kind: Inv, NumInputs: 1, D0: 1, KD: -1, S0: 1, Rdrv: 1, Cin: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, c)
		}
	}
}

func TestLibraryDuplicateAndMissing(t *testing.T) {
	lib := NewLibrary("t", 1.2)
	c := &Cell{Name: "INV_X1", Kind: Inv, NumInputs: 1, D0: 0.01, S0: 0.02, Rdrv: 5, Cin: 2}
	if err := lib.Add(c); err != nil {
		t.Fatal(err)
	}
	if err := lib.Add(c); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("expected duplicate error, got %v", err)
	}
	if _, err := lib.Cell("NOPE"); err == nil {
		t.Fatal("expected missing-cell error")
	}
}

func TestAddValidates(t *testing.T) {
	lib := NewLibrary("t", 1.2)
	if err := lib.Add(&Cell{Name: "bad"}); err == nil {
		t.Fatal("Add must validate")
	}
}

func TestNamesSorted(t *testing.T) {
	lib := Default()
	names := lib.Names()
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names unsorted at %d: %s < %s", i, names[i], names[i-1])
		}
	}
}
