// Package filter implements false-aggressor pruning: identifying
// coupling capacitors (and individual aggressor→victim directions)
// that can never contribute delay noise and can therefore be dropped
// before the much more expensive top-k enumeration. The paper cites
// this line of work ([10], [11]) as standard preprocessing beneath its
// own analysis.
//
// Classification works per direction — one coupling is two potential
// noise injections, aggressor A onto victim B and vice versa:
//
//   - Early-false (sound): the aggressor's envelope ends before the
//     victim's earliest possible transition; it can never shift any
//     crossing.
//   - Late-false (sound): the envelope starts after the victim's
//     all-aggressor noisy settle time. Crossings only move earlier
//     when couplings are removed, so an envelope beyond the worst-case
//     settle can never participate.
//   - Unobservable (sound): delay noise on the victim can never reach
//     a primary output, where observability is closed transitively
//     over live coupling directions (the indirect-aggressor mechanism
//     of paper Fig. 1).
//   - Magnitude (heuristic): the envelope peak is below a threshold
//     fraction of Vdd; electrically irrelevant but, summed over many
//     couplings, not strictly sound. Disable with PeakFrac < 0 for
//     exact filtering.
//
// A coupling is removable outright when both of its directions are
// false.
package filter

import (
	"topkagg/internal/bitset"
	"topkagg/internal/circuit"
	"topkagg/internal/noise"
)

// Options tune the filters.
type Options struct {
	// PeakFrac is the magnitude threshold: directions whose pulse peak
	// is below PeakFrac·Vdd are false. Zero selects DefaultPeakFrac;
	// negative disables the (heuristic) magnitude filter.
	PeakFrac float64
	// Guard pads the timing tests (ns), covering slew-model slack.
	// Zero selects DefaultGuard.
	Guard float64
}

// Defaults for the zero Options value.
const (
	DefaultPeakFrac = 0.005
	DefaultGuard    = 0.02
)

func (o Options) peakFrac() float64 {
	switch {
	case o.PeakFrac < 0:
		return 0
	case o.PeakFrac == 0:
		return DefaultPeakFrac
	default:
		return o.PeakFrac
	}
}

func (o Options) guard() float64 {
	if o.Guard == 0 {
		return DefaultGuard
	}
	return o.Guard
}

// Direction identifies one aggressor→victim noise injection.
type Direction struct {
	Coupling circuit.CouplingID
	Victim   circuit.NetID
}

// Result reports the classification.
type Result struct {
	// FalseDirections lists every direction that can never produce
	// delay noise.
	FalseDirections []Direction
	// False lists couplings with both directions false (fully
	// removable).
	False []circuit.CouplingID
	// Active is the complement mask over couplings.
	Active noise.Mask
	// Why false, per direction count.
	EarlyFiltered        int
	LateFiltered         int
	UnobservableFiltered int
	MagnitudeFiltered    int
}

// FalseAggressors classifies every coupling direction of the model's
// circuit, using the all-aggressor fixpoint windows as the sound
// worst case.
func FalseAggressors(m *noise.Model, opt Options) (*Result, error) {
	an, err := m.Run(nil)
	if err != nil {
		return nil, err
	}
	res := &Result{Active: noise.AllMask(m.C)}
	peakMin := opt.peakFrac() * m.Vdd
	guard := opt.guard()

	type dirClass struct {
		timingFalse bool
		early       bool
		magFalse    bool
	}
	// classify the timing/magnitude status of one direction.
	classify := func(victim circuit.NetID, cp *circuit.Coupling) dirClass {
		agg := cp.Other(victim)
		env := m.Envelope(victim, cp, an.Timing.Windows[agg])
		if env.IsZero() {
			return dirClass{timingFalse: true, early: true}
		}
		var dc dirClass
		base := an.Base.Window(victim)
		noisy := an.Timing.Window(victim)
		if env.End() < base.EAT-guard {
			dc.timingFalse = true
			dc.early = true
		}
		settle := noisy.LAT + noisy.Slew/2 + guard
		if env.Start() > settle {
			dc.timingFalse = true
		}
		if _, pv := env.Peak(); pv < peakMin {
			dc.magFalse = true
		}
		return dc
	}

	classes := make(map[Direction]dirClass, 2*m.C.NumCouplings())
	for _, cp := range m.C.Couplings() {
		for _, victim := range []circuit.NetID{cp.A, cp.B} {
			classes[Direction{cp.ID, victim}] = classify(victim, cp)
		}
	}

	// Observability: output fanin cones, closed over directions that
	// are still timing-live (noise on the far net matters because it
	// widens a live envelope). Pooled dense bitsets keep the repeated
	// cone unions allocation-free.
	obs := bitset.Get(m.C.NumNets())
	defer bitset.Put(obs)
	cone := bitset.Get(m.C.NumNets())
	defer bitset.Put(cone)
	var stack []circuit.NetID
	addCone := func(n circuit.NetID) bool {
		stack = m.C.FaninConeBits(n, cone, stack)
		return obs.Or(cone)
	}
	for _, po := range m.C.POs() {
		addCone(po)
	}
	for changed := true; changed; {
		changed = false
		for _, cp := range m.C.Couplings() {
			for _, victim := range []circuit.NetID{cp.A, cp.B} {
				agg := cp.Other(victim)
				if obs.Get(int(victim)) && !obs.Get(int(agg)) && !classes[Direction{cp.ID, victim}].timingFalse {
					if addCone(agg) {
						changed = true
					}
				}
			}
		}
	}

	for _, cp := range m.C.Couplings() {
		liveDirs := 0
		for _, victim := range []circuit.NetID{cp.A, cp.B} {
			d := Direction{cp.ID, victim}
			dc := classes[d]
			switch {
			case dc.timingFalse:
				if dc.early {
					res.EarlyFiltered++
				} else {
					res.LateFiltered++
				}
				res.FalseDirections = append(res.FalseDirections, d)
			case !obs.Get(int(victim)):
				res.UnobservableFiltered++
				res.FalseDirections = append(res.FalseDirections, d)
			case dc.magFalse:
				res.MagnitudeFiltered++
				res.FalseDirections = append(res.FalseDirections, d)
			default:
				liveDirs++
			}
		}
		if liveDirs == 0 {
			res.False = append(res.False, cp.ID)
			res.Active[cp.ID] = false
		}
	}
	return res, nil
}
