package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"topkagg/internal/cell"
	"topkagg/internal/circuit"
	"topkagg/internal/netlist"
	"topkagg/internal/noise"
	"topkagg/internal/sta"
	"topkagg/internal/waveform"
)

func buildEngine(t *testing.T, src string, md mode, opt Options) *engine {
	t.Helper()
	c, err := netlist.ParseString(src, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	p, err := newPrepared(noise.NewModel(c), opt, md, WholeCircuit, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p.newEngine(nil)
}

const diamond = `circuit diamond
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> n2
gate g3 NAND2_X1 n2 a -> y
gate h1 INV_X1 b -> m1
couple n1 m1 2.0
couple n2 m1 1.5
`

func TestPseudoEnvelopeShiftEquivalence(t *testing.T) {
	// Subtracting the pseudo envelope of shift dt from the victim ramp
	// must delay t50 by exactly dt (linear superposition identity of
	// paper Sec. 3.1).
	e := buildEngine(t, diamond, addition, Exact())
	y, _ := e.c.NetByName("y")
	for _, dt := range []float64{0.01, 0.05, 0.2} {
		env := e.pseudoEnvelope(y, dt)
		got := e.m.DelayNoise(e.vw(y), env)
		if math.Abs(got-dt) > 1e-9 {
			t.Fatalf("pseudo envelope of %g delays by %g", dt, got)
		}
	}
}

func TestPropagateShiftAdditionMasking(t *testing.T) {
	e := buildEngine(t, diamond, addition, Exact())
	n2, _ := e.c.NetByName("n2")
	y, _ := e.c.NetByName("y")
	a, _ := e.c.NetByName("a")
	win := e.base.Windows
	// n2 is the late input of g3 (two gates deep vs a's direct pin):
	// a shift on n2 propagates fully.
	full := e.propagateShift(n2, y, 0.05, win)
	if math.Abs(full-0.05) > 1e-9 {
		t.Fatalf("late-input shift must propagate fully: %g", full)
	}
	// a is the early input: a small shift is masked entirely.
	if got := e.propagateShift(a, y, 0.001, win); got != 0 {
		t.Fatalf("early-input shift must be masked: %g", got)
	}
	// ... but a big enough shift breaks through, reduced by the margin.
	margin := (win[n2].LAT + e.gateDelayFor(y, n2)) - (win[a].LAT + e.gateDelayFor(y, a))
	big := e.propagateShift(a, y, margin+0.02, win)
	if math.Abs(big-0.02) > 1e-9 {
		t.Fatalf("shift beyond margin must propagate the excess: got %g want 0.02", big)
	}
}

// gateDelayFor returns the pin-to-output delay from input u to net v,
// mirroring the engine's arrival computation (test helper).
func (e *engine) gateDelayFor(v, u circuit.NetID) float64 {
	g := e.c.Gate(e.c.Net(v).Driver)
	return g.Cell.Delay(e.c.LoadCap(v), e.base.Window(u).Slew)
}

func TestPropagateShiftEliminationCap(t *testing.T) {
	e := buildEngine(t, diamond, elimination, Exact())
	n2, _ := e.c.NetByName("n2")
	y, _ := e.c.NetByName("y")
	// The propagated reduction can never exceed the reduction at the
	// input itself.
	for _, dt := range []float64{0.01, 0.1, 1.0} {
		if got := e.propagateShift(n2, y, dt, e.full.Timing.Windows); got > dt+1e-12 {
			t.Fatalf("elimination shift %g exceeds input reduction %g", got, dt)
		}
	}
}

func TestWithPropReducesWithShift(t *testing.T) {
	e := buildEngine(t, diamond, elimination, Exact())
	// Pick a victim with a propagated component.
	var v circuit.NetID = -1
	for _, cand := range e.victims {
		if e.propShift[cand] > 0.001 {
			v = cand
			break
		}
	}
	if v < 0 {
		t.Skip("no net with propagated noise in this construction")
	}
	full := e.m.DelayNoise(e.vw(v), e.withProp(v, e.totalEnv[v], 0))
	half := e.m.DelayNoise(e.vw(v), e.withProp(v, e.totalEnv[v], e.propShift[v]/2))
	none := e.m.DelayNoise(e.vw(v), e.withProp(v, e.totalEnv[v], e.propShift[v]))
	if !(none <= half+1e-9 && half <= full+1e-9) {
		t.Fatalf("withProp must be monotone in shift reduction: %g %g %g", full, half, none)
	}
}

func TestPadIDs(t *testing.T) {
	e := buildEngine(t, diamond, addition, Exact())
	got := e.padIDs([]circuit.CouplingID{1}, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("padIDs = %v", got)
	}
	// Cannot exceed the coupling count.
	got = e.padIDs([]circuit.CouplingID{0, 1}, 5)
	if len(got) != 2 {
		t.Fatalf("padIDs beyond couplings = %v", got)
	}
}

// pruneWith runs one prune pass over cands with a fresh pruner.
func pruneWith(cands []*aggSet, lo, hi float64, width int, noDom, exact bool) ([]*aggSet, pruneCounts) {
	pr := &pruner{lo: lo, hi: hi, width: width, noDom: noDom, exact: exact}
	return pr.prune(cands)
}

func TestPruneShiftAware(t *testing.T) {
	env := waveform.Trapezoid(0, 0.1, 1, 0.1, 1.0)
	smaller := waveform.Trapezoid(0.2, 0.1, 0.8, 0.1, 0.5)
	big := &aggSet{ids: []circuit.CouplingID{0}, env: env, score: 0.5}
	smallNoShift := &aggSet{ids: []circuit.CouplingID{1}, env: smaller, score: 0.2}
	smallWithShift := &aggSet{ids: []circuit.CouplingID{2}, env: smaller, shift: 0.3, score: 0.4}

	for _, exact := range []bool{false, true} {
		kept, pc := pruneWith([]*aggSet{big, smallNoShift}, 0, 2, 10, false, exact)
		if len(kept) != 1 || kept[0] != big {
			t.Fatalf("exact=%v: envelope-dominated set must be pruned: %v", exact, kept)
		}
		if pc.dom != 1 || pc.beam != 0 {
			t.Fatalf("exact=%v: prune counters = dom %d beam %d, want 1 0", exact, pc.dom, pc.beam)
		}
		// A set carrying a larger inherited shift is NOT dominated even
		// if its envelope is covered.
		kept, _ = pruneWith([]*aggSet{big, smallWithShift}, 0, 2, 10, false, exact)
		if len(kept) != 2 {
			t.Fatalf("exact=%v: shift-carrying set must survive: %d kept", exact, len(kept))
		}
		// NoDominance keeps everything (up to the beam).
		kept, _ = pruneWith([]*aggSet{big, smallNoShift}, 0, 2, 10, true, exact)
		if len(kept) != 2 {
			t.Fatal("NoDominance must keep dominated sets")
		}
		// Beam caps regardless.
		kept, _, beamed := pruneBeamSplit(t, []*aggSet{big, smallWithShift}, 1, exact)
		if len(kept) != 1 {
			t.Fatal("beam must cap the list")
		}
		if beamed != 1 {
			t.Fatalf("beam counter = %d, want 1", beamed)
		}
	}
}

func pruneBeamSplit(t *testing.T, cands []*aggSet, width int, exact bool) ([]*aggSet, int, int) {
	t.Helper()
	kept, pc := pruneWith(cands, 0, 2, width, false, exact)
	return kept, pc.dom, pc.beam
}

// TestPruneBeamCountsPostDominance pins the beam counter's semantics:
// candidates falling off the end of a full beam are still classified,
// so ones a kept set dominates count as dominance drops, and the beam
// counter reports drops against the post-dominance list. (The previous
// implementation stopped at the width cap and charged the whole tail
// to the beam.)
func TestPruneBeamCountsPostDominance(t *testing.T) {
	env := waveform.Trapezoid(0, 0.1, 1, 0.1, 1.0)
	smaller := waveform.Trapezoid(0.2, 0.1, 0.8, 0.1, 0.5)
	other := waveform.Trapezoid(1.2, 0.1, 1.8, 0.1, 0.9)
	// Score order: A, B(dominated by A), C, D(dominated by A), E.
	a := &aggSet{ids: []circuit.CouplingID{0}, env: env, score: 0.9}
	bDom := &aggSet{ids: []circuit.CouplingID{1}, env: smaller, score: 0.8}
	c := &aggSet{ids: []circuit.CouplingID{2}, env: other, score: 0.7}
	dDom := &aggSet{ids: []circuit.CouplingID{3}, env: smaller, score: 0.6}
	// E's envelope is not covered by any kept set (it peaks above
	// both), so its drop is a genuine beam drop.
	tall := waveform.Trapezoid(0.5, 0.1, 0.7, 0.1, 1.5)
	e := &aggSet{ids: []circuit.CouplingID{4}, env: tall, score: 0.5}

	for _, exact := range []bool{false, true} {
		kept, pc := pruneWith([]*aggSet{a, bDom, c, dDom, e}, 0, 3, 2, false, exact)
		if len(kept) != 2 || kept[0] != a || kept[1] != c {
			t.Fatalf("exact=%v: kept = %v, want [A C]", exact, kept)
		}
		// D is dominated even though the beam was already full when it
		// was reached; only E is a genuine beam drop.
		if pc.dom != 2 || pc.beam != 1 {
			t.Fatalf("exact=%v: counters = dom %d beam %d, want dom 2 beam 1", exact, pc.dom, pc.beam)
		}
	}
}

// TestQuickTheorem1 checks the paper's Theorem 1 on random envelopes:
// if P's envelope encapsulates Q's over the dominance interval, then
// for any additional envelope A the delay noise of Q+A never exceeds
// that of P+A.
func TestQuickTheorem1(t *testing.T) {
	c, err := netlist.ParseString(diamond, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	m := noise.NewModel(c)
	vw := sta.Window{LAT: 2, Slew: 0.2}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		randEnv := func() waveform.PWL {
			t0 := r.Float64() * 3
			return waveform.Trapezoid(t0, 0.05+r.Float64()*0.3, t0+r.Float64()*1.5, 0.05+r.Float64()*0.5, r.Float64()*0.8)
		}
		q := randEnv()
		p := waveform.Add(q, randEnv()) // guarantees P encapsulates Q
		lo := vw.LAT
		hi := vw.LAT + 5
		if !waveform.Encapsulates(p, q, lo, hi, 1e-9) {
			return true // construction failed encapsulation (numerical); skip
		}
		a := randEnv()
		dnP := m.DelayNoise(vw, waveform.Add(p, a))
		dnQ := m.DelayNoise(vw, waveform.Add(q, a))
		return dnQ <= dnP+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDominanceIntervalSufficient checks the dominance-interval
// argument: envelope behaviour before the victim's noiseless t50 is
// irrelevant to delay noise.
func TestQuickDominanceIntervalSufficient(t *testing.T) {
	c, err := netlist.ParseString(diamond, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	m := noise.NewModel(c)
	vw := sta.Window{LAT: 3, Slew: 0.2}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// An envelope that ends strictly before t50 - slew/2 cannot
		// cause delay noise, no matter its magnitude.
		end := vw.LAT - vw.Slew/2 - 0.01 - r.Float64()
		start := end - 0.5 - r.Float64()
		env := waveform.Trapezoid(start, 0.05, end-0.05, 0.05, r.Float64()*3)
		return m.DelayNoise(vw, env) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Fatal(err)
	}
}

func TestVictimsInTopoOrder(t *testing.T) {
	e := buildEngine(t, diamond, addition, Exact())
	pos := map[circuit.NetID]int{}
	order, err := e.c.TopoNets()
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range order {
		pos[n] = i
	}
	for i := 1; i < len(e.victims); i++ {
		if pos[e.victims[i-1]] > pos[e.victims[i]] {
			t.Fatal("victims must be enumerated in topological order")
		}
	}
}

func TestDominanceIntervalBounds(t *testing.T) {
	e := buildEngine(t, diamond, addition, Exact())
	for _, v := range e.victims {
		if e.domHi[v] <= e.domLo[v] {
			t.Fatalf("degenerate dominance interval on %s", e.c.Net(v).Name)
		}
		if e.domLo[v] != e.vw(v).LAT {
			t.Fatalf("dominance interval must start at the noiseless t50")
		}
	}
}

func TestEliminationTwoPassesSeeLateAggressors(t *testing.T) {
	// m1 (the aggressor net) is topologically *after* n1 in this
	// construction order; the elimination higher-order rule needs the
	// second pass to see m1's card-1 list when processing n1.
	src := `circuit late
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 b -> m1
gate h2 INV_X1 m1 -> z
couple n1 m1 3.0
couple m1 z 2.0
`
	e := buildEngine(t, src, elimination, Exact())
	e.advance(1)
	n1, _ := e.c.NetByName("n1")
	if len(e.cur[n1]) == 0 {
		t.Fatal("n1 must have candidates after the double pass")
	}
}
