package sizing

import (
	"testing"

	"topkagg/internal/cell"
	"topkagg/internal/gen"
	"topkagg/internal/netlist"
	"topkagg/internal/noise"
)

func TestUpsized(t *testing.T) {
	cases := []struct {
		in   string
		max  int
		want string
		ok   bool
	}{
		{"INV_X1", 4, "INV_X2", true},
		{"INV_X2", 4, "INV_X4", true},
		{"INV_X4", 4, "", false},
		{"NAND2_X1", 2, "NAND2_X2", true},
		{"NAND2_X2", 2, "", false},
		{"WEIRD", 4, "", false},
	}
	for _, tc := range cases {
		got, ok := upsized(tc.in, tc.max)
		if ok != tc.ok || got != tc.want {
			t.Errorf("upsized(%q,%d) = (%q,%v), want (%q,%v)", tc.in, tc.max, got, ok, tc.want, tc.ok)
		}
	}
}

func TestOptimizeReducesNoisyDelay(t *testing.T) {
	// A weak victim driver with two strong aggressors: upsizing the
	// victim is clearly profitable.
	src := `circuit s
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> n2
gate g3 INV_X1 n2 -> y
gate h1 INV_X1 b -> m1
gate h2 INV_X1 c -> m2
couple n2 m1 3.0
couple n2 m2 3.0
`
	c, err := netlist.ParseString(src, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	m := noise.NewModel(c)
	res, err := Optimize(m, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moves) == 0 {
		t.Fatal("expected at least one accepted move")
	}
	if res.After >= res.Before {
		t.Fatalf("optimization must reduce delay: %g -> %g", res.Before, res.After)
	}
	// Accepted moves are persisted in the circuit.
	g := c.Gate(res.Moves[0].Gate)
	if g.Cell.Name != res.Moves[0].To {
		t.Fatalf("move not applied: gate has %s, move says %s", g.Cell.Name, res.Moves[0].To)
	}
	// The final reported delay matches a fresh analysis.
	an, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if an.CircuitDelay() != res.After {
		t.Fatalf("After (%g) does not match fresh analysis (%g)", res.After, an.CircuitDelay())
	}
}

func TestOptimizeStopsWhenNothingHelps(t *testing.T) {
	// No couplings: no noise to fix, upsizing only adds load.
	src := `circuit q
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
`
	c, err := netlist.ParseString(src, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	m := noise.NewModel(c)
	res, err := Optimize(m, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moves) != 0 {
		t.Fatalf("quiet circuit must need no moves: %+v", res.Moves)
	}
	if res.Before != res.After {
		t.Fatal("no moves must mean no delay change")
	}
}

func TestOptimizeRespectsBudget(t *testing.T) {
	c, err := gen.BuildPaper("i1")
	if err != nil {
		t.Fatal(err)
	}
	m := noise.NewModel(c)
	res, err := Optimize(m, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moves) > 2 {
		t.Fatalf("budget exceeded: %d moves", len(res.Moves))
	}
	if res.After > res.Before {
		t.Fatal("optimizer made the circuit slower")
	}
	// Monotone per-move delays.
	prev := res.Before
	for _, mv := range res.Moves {
		if mv.Delay >= prev {
			t.Fatalf("move did not improve: %g -> %g", prev, mv.Delay)
		}
		prev = mv.Delay
	}
}

func TestOptimizeValidatesBudget(t *testing.T) {
	c, err := gen.BuildPaper("i1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(noise.NewModel(c), 0, Options{}); err == nil {
		t.Fatal("budget 0 must error")
	}
}
