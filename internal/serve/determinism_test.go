package serve

import (
	"encoding/json"
	"testing"
	"time"

	"topkagg/internal/circuit"
	"topkagg/internal/core"
	"topkagg/internal/gen"
	"topkagg/internal/noise"
)

// normalize strips the wall-clock fields from a Result copy so two
// runs of the same computation can be compared byte-for-byte. Timing
// is the only nondeterministic content a Result carries.
func normalize(r *core.Result) *core.Result {
	cp := *r
	cp.Elapsed = 0
	cp.ElapsedPerK = nil
	if r.Stats != nil {
		st := *r.Stats
		st.RescoreElapsed = 0
		st.PerK = append([]core.KStats(nil), r.Stats.PerK...)
		for i := range st.PerK {
			st.PerK[i].Elapsed = 0
		}
		// Cache counters depend on query arrival order, not on the
		// computation, so they are excluded from the determinism claim.
		// The envelope-cache tallies likewise: the intern table is
		// shared across queries, so what a given run hits depends on
		// what ran before it.
		st.CacheHits, st.CacheMisses = 0, 0
		st.EnvCacheHits, st.EnvCacheMisses = 0, 0
		cp.Stats = &st
	}
	return &cp
}

// resultsEqual compares two Results byte-for-byte after normalizing
// wall-clock fields. Result has only exported fields, so the JSON
// encoding captures all of its content.
func resultsEqual(a, b *core.Result) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	ja, err := json.Marshal(normalize(a))
	if err != nil {
		panic(err)
	}
	jb, err := json.Marshal(normalize(b))
	if err != nil {
		panic(err)
	}
	return string(ja) == string(jb)
}

// TestBatchDeterminismRandomCircuits is the property test backing the
// package's central guarantee: over randomized circuits, a batch run
// with many workers returns byte-identical Results to (a) the same
// batch run serially with one worker and (b) cold per-query core
// calls. Concurrency must only change wall-clock time.
func TestBatchDeterminismRandomCircuits(t *testing.T) {
	seeds := []int64{1, 7, 19, 101}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		c, err := gen.Build(gen.Spec{Name: "det", Gates: 30, Couplings: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		m := noise.NewModel(c)
		opt := core.Options{SlackFrac: 1, VerifyTop: 4}

		// Per-net sweep over every net that can be a victim, plus the
		// whole circuit, both modes, and a repeat to exercise cache hits
		// racing fresh preparations.
		nets := []circuit.NetID{WholeCircuit}
		for id := 0; id < c.NumNets() && len(nets) < 6; id++ {
			if c.Net(circuit.NetID(id)).Driver >= 0 {
				nets = append(nets, circuit.NetID(id))
			}
		}
		var queries []Query
		queries = append(queries, KSweep(Addition, nets, 3)...)
		queries = append(queries, KSweep(Elimination, nets[:2], 2)...)
		queries = append(queries, queries[0]) // duplicate query

		serial := NewAnalyzer(m, opt).RunBatch(queries, 1)
		concurrent := NewAnalyzer(m, opt).RunBatch(queries, 8)

		for i := range queries {
			if (serial[i].Err == nil) != (concurrent[i].Err == nil) {
				t.Fatalf("seed %d query %d: error mismatch: %v vs %v",
					seed, i, serial[i].Err, concurrent[i].Err)
			}
			if serial[i].Err != nil {
				continue
			}
			if !resultsEqual(serial[i].Result, concurrent[i].Result) {
				t.Fatalf("seed %d query %d (%s net %d): workers=8 result differs from workers=1",
					seed, i, queries[i].Op, queries[i].Net)
			}
		}

		// Cross-check a sample against the cold serial path.
		for _, i := range []int{0, 1, len(nets)} {
			q := queries[i]
			var cold *core.Result
			switch {
			case q.Op == Addition && q.Net == WholeCircuit:
				cold, err = core.TopKAddition(m, q.K, opt)
			case q.Op == Addition:
				cold, err = core.TopKAdditionAt(m, q.Net, q.K, opt)
			case q.Net == WholeCircuit:
				cold, err = core.TopKElimination(m, q.K, opt)
			default:
				cold, err = core.TopKEliminationAt(m, q.Net, q.K, opt)
			}
			if err != nil {
				t.Fatalf("seed %d cold query %d: %v", seed, i, err)
			}
			if !resultsEqual(concurrent[i].Result, cold) {
				t.Fatalf("seed %d query %d: batch result differs from cold %s call",
					seed, i, q.Op)
			}
		}
	}
}

// TestNormalizeStripsOnlyTime guards the comparison helper itself: two
// results differing only in timing compare equal; differing in payload
// compare unequal.
func TestNormalizeStripsOnlyTime(t *testing.T) {
	a := &core.Result{K: 2, BaseDelay: 1.5, Elapsed: 10 * time.Millisecond,
		Stats: &core.Stats{PerK: []core.KStats{{K: 1, Candidates: 3, Elapsed: time.Second}}}}
	b := &core.Result{K: 2, BaseDelay: 1.5, Elapsed: 99 * time.Millisecond,
		Stats: &core.Stats{PerK: []core.KStats{{K: 1, Candidates: 3, Elapsed: time.Minute}}}}
	if !resultsEqual(a, b) {
		t.Fatal("results differing only in timing must compare equal")
	}
	b.Stats.PerK[0].Candidates = 4
	if resultsEqual(a, b) {
		t.Fatal("results differing in counters must compare unequal")
	}
	if a.Stats.PerK[0].Elapsed == 0 {
		t.Fatal("normalize must not mutate its input")
	}
}
