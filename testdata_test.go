package topkagg

import (
	"math"
	"testing"
)

// TestC17EndToEnd exercises the full pipeline on the ISCAS-85 c17
// benchmark shipped in testdata: load, analyze, cross-validate the
// exact top-k against brute force, and check the elimination endpoint.
func TestC17EndToEnd(t *testing.T) {
	c, err := LoadNetlist("testdata/c17.ckt")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 6 || c.NumCouplings() != 5 || len(c.PIs()) != 5 {
		t.Fatalf("c17 shape wrong: %d gates, %d couplings, %d inputs",
			c.NumGates(), c.NumCouplings(), len(c.PIs()))
	}
	m := NewModel(c)
	an, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !an.Converged {
		t.Fatal("c17 noise analysis must converge")
	}
	if an.CircuitDelay() <= an.Base.CircuitDelay() {
		t.Fatal("coupling must add delay on c17")
	}

	add, err := TopKAddition(m, 3, ExactOptions())
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		bf, err := BruteForceAddition(m, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(add.PerK[k-1].Delay-bf.Delay) > 1e-9 {
			t.Fatalf("c17 k=%d: proposed %g != brute force %g", k, add.PerK[k-1].Delay, bf.Delay)
		}
	}

	del, err := TopKElimination(m, 5, ExactOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := del.PerK[len(del.PerK)-1].Delay; math.Abs(got-del.BaseDelay) > 1e-9 {
		t.Fatalf("removing all 5 couplings must recover the noiseless delay: %g vs %g",
			got, del.BaseDelay)
	}
}
