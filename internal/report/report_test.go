package report

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "long-header", "c"}}
	tab.AddRow("1", "2")
	tab.AddRow("wide-cell", "3", "4")
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[0] != "T" {
		t.Fatalf("title missing: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a") || !strings.Contains(lines[1], "long-header") {
		t.Fatalf("header wrong: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Fatalf("separator missing: %q", lines[2])
	}
	// Short row padded: both data lines must be equally long.
	if len(lines[3]) == 0 || len(lines[4]) == 0 {
		t.Fatal("rows missing")
	}
	// Column alignment: "3" must start at the same offset as "2".
	if strings.Index(lines[4], "3") != strings.Index(lines[3], "2") {
		t.Fatalf("columns misaligned:\n%s", s)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Title: "ignored", Header: []string{"a", "b"}}
	tab.AddRow("x,y", `say "hi"`)
	csv := tab.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestSeriesTable(t *testing.T) {
	series := []Series{
		{Name: "s1", X: []float64{1, 2, 3}, Y: []float64{0.1, 0.2, 0.3}},
		{Name: "s2", X: []float64{2, 3, 4}, Y: []float64{1.2, 1.3, 1.4}},
	}
	tab := SeriesTable("fig", "k", series)
	if len(tab.Header) != 3 || tab.Header[0] != "k" {
		t.Fatalf("header = %v", tab.Header)
	}
	if len(tab.Rows) != 4 { // union of x values: 1,2,3,4
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// x=1 exists only in s1; s2's cell must be empty.
	if tab.Rows[0][0] != "1" || tab.Rows[0][1] != "0.1000" || tab.Rows[0][2] != "" {
		t.Fatalf("row 0 = %v", tab.Rows[0])
	}
	// x=4 exists only in s2.
	if tab.Rows[3][0] != "4" || tab.Rows[3][1] != "" || tab.Rows[3][2] != "1.4000" {
		t.Fatalf("row 3 = %v", tab.Rows[3])
	}
	// Rows sorted by x.
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i-1][0] > tab.Rows[i][0] {
			t.Fatal("rows unsorted")
		}
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Fatalf("F = %q", F(1.23456))
	}
	if F2(1.23456) != "1.23" {
		t.Fatalf("F2 = %q", F2(1.23456))
	}
}
