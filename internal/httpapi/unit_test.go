package httpapi

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"topkagg/internal/budget"
	"topkagg/internal/circuit"
	"topkagg/internal/core"
	"topkagg/internal/serve"
)

// TestToWireRejectsNonFinite pins the encode-safety satellite: NaN and
// ±Inf anywhere in a result must fail ToWire with a descriptive error
// — before a single byte could hit the wire — instead of producing
// invalid JSON.
func TestToWireRejectsNonFinite(t *testing.T) {
	c := testCircuit(t, 2)
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, v := range bad {
		// What-if delay.
		resp := serve.Response{Query: serve.Query{Op: serve.WhatIf, Net: serve.WholeCircuit}, Delay: v}
		if _, err := ToWire(c, resp); err == nil {
			t.Errorf("whatif delay %v: ToWire accepted a non-finite value", v)
		}
		// Top-k per-set delay.
		resp = serve.Response{
			Query: serve.Query{Op: serve.Addition, Net: serve.WholeCircuit, K: 1},
			Result: &core.Result{K: 1, BaseDelay: 1, AllDelay: 2,
				PerK: []core.Selected{{IDs: []circuit.CouplingID{0}, Estimate: v, Delay: 1}}},
		}
		if _, err := ToWire(c, resp); err == nil {
			t.Errorf("perK estimate %v: ToWire accepted a non-finite value", v)
		}
		// Base delay.
		resp.Result = &core.Result{K: 1, BaseDelay: v, AllDelay: 2}
		if _, err := ToWire(c, resp); err == nil {
			t.Errorf("base delay %v: ToWire accepted a non-finite value", v)
		}
	}
}

// TestMarshalJSONAtomic checks the buffered encoder: a value JSON
// cannot represent returns an error and zero bytes, never a torn
// prefix.
func TestMarshalJSONAtomic(t *testing.T) {
	data, err := marshalJSON(map[string]float64{"x": math.NaN()})
	if err == nil {
		t.Fatal("marshalJSON accepted NaN")
	}
	if len(data) != 0 {
		t.Fatalf("marshalJSON returned %d bytes alongside its error", len(data))
	}
	data, err = marshalJSON(map[string]int{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("marshalJSON output does not end in newline (NDJSON framing)")
	}
}

// TestResponseLadderRoundTrip checks the Partial/Degraded/Stopped
// ladder and typed stop reasons survive a JSON round trip through the
// wire type.
func TestResponseLadderRoundTrip(t *testing.T) {
	c := testCircuit(t, 2)
	stop := &budget.Error{Reason: budget.DeadlineExceeded, Op: "core.topk"}
	resp := serve.Response{
		Query: serve.Query{Op: serve.Elimination, Net: serve.WholeCircuit, K: 2},
		Result: &core.Result{K: 2, BaseDelay: 1.5, AllDelay: 2.5, Partial: true, Stopped: stop,
			PerK: []core.Selected{{IDs: []circuit.CouplingID{1}, Estimate: 2.0, Delay: 2.0, Verified: true}}},
		Partial:  true,
		Degraded: "deadline during rescoring",
	}
	wr, err := ToWire(c, resp)
	if err != nil {
		t.Fatal(err)
	}
	data, err := marshalJSON(wr)
	if err != nil {
		t.Fatal(err)
	}
	var back QueryResponse
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Partial || back.Degraded != "deadline during rescoring" || back.Stopped != "deadline" {
		t.Errorf("ladder lost in round trip: %+v", back)
	}
	if back.Result == nil || len(back.Result.PerK) != 1 || !back.Result.PerK[0].Verified {
		t.Errorf("result lost in round trip: %s", data)
	}
	// The wire bytes must not leak representation details of the stop.
	if strings.Contains(string(data), "base64") || strings.Contains(string(data), "Stack") {
		t.Errorf("stop leaked internals: %s", data)
	}
}

// TestBudgetErrorJSON pins the budget error encoders: typed reason,
// no 16 KiB stack, always valid JSON.
func TestBudgetErrorJSON(t *testing.T) {
	pe := budget.NewPanicError("serve.worker", "boom")
	data, err := json.Marshal(pe)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["reason"] != "worker-panic" || m["value"] != "boom" {
		t.Errorf("PanicError JSON: %s", data)
	}
	if len(data) > 512 {
		t.Errorf("PanicError JSON is %d bytes: stack leaked?", len(data))
	}

	be := &budget.Error{Reason: budget.WorkExhausted, Op: "core.topk"}
	data, err = json.Marshal(be)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["reason"] != "work-budget" || m["op"] != "core.topk" {
		t.Errorf("Error JSON: %s", data)
	}

	// A wrapped panic keeps its message but still no stack.
	be = &budget.Error{Reason: budget.WorkerPanic, Op: "serve", Err: pe}
	data, err = json.Marshal(be)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 512 {
		t.Errorf("wrapped panic JSON is %d bytes: stack leaked?", len(data))
	}
}

// TestStatusOf maps response error classes onto HTTP statuses.
func TestStatusOf(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 200},
		{&budget.Error{Reason: budget.DeadlineExceeded}, 504},
		{&budget.Error{Reason: budget.WorkExhausted}, 504},
		{&budget.Error{Reason: budget.Canceled}, 499},
		{&budget.Error{Reason: budget.WorkerPanic}, 500},
	}
	for _, tc := range cases {
		if got := statusOf(serve.Response{Err: tc.err}); got != tc.want {
			t.Errorf("statusOf(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestLimitPolicyResolve covers the clamp ladder.
func TestLimitPolicyResolve(t *testing.T) {
	ms := func(n int64) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		name        string
		pol         limitPolicy
		tMs, tNs, w int64
		wantT       time.Duration
		wantW       int64
		wantErr     bool
	}{
		{"zero everything", limitPolicy{}, 0, 0, 0, 0, 0, false},
		{"ms applies", limitPolicy{}, 50, 0, 0, ms(50), 0, false},
		{"ns wins over ms", limitPolicy{}, 50, 123, 0, 123, 0, false},
		{"default fills gap", limitPolicy{defaultTimeout: ms(10)}, 0, 0, 0, ms(10), 0, false},
		{"request beats default", limitPolicy{defaultTimeout: ms(10)}, 70, 0, 0, ms(70), 0, false},
		{"clamped to max", limitPolicy{maxTimeout: ms(20)}, 70, 0, 0, ms(20), 0, false},
		{"none clamps to max too", limitPolicy{maxTimeout: ms(20)}, 0, 0, 0, ms(20), 0, false},
		{"work clamped", limitPolicy{maxWork: 100}, 0, 0, 500, 0, 100, false},
		{"work default applied", limitPolicy{maxWork: 100}, 0, 0, 0, 0, 100, false},
		{"work under cap kept", limitPolicy{maxWork: 100}, 0, 0, 30, 0, 30, false},
		{"negative ms", limitPolicy{}, -1, 0, 0, 0, 0, true},
		{"negative work", limitPolicy{}, 0, 0, -1, 0, 0, true},
	}
	for _, tc := range cases {
		lim, aerr := tc.pol.resolve(tc.tMs, tc.tNs, tc.w)
		if tc.wantErr != (aerr != nil) {
			t.Errorf("%s: err = %v, wantErr %v", tc.name, aerr, tc.wantErr)
			continue
		}
		if aerr != nil {
			continue
		}
		if lim.Timeout != tc.wantT || lim.MaxWork != tc.wantW {
			t.Errorf("%s: resolved %v/%d, want %v/%d", tc.name, lim.Timeout, lim.MaxWork, tc.wantT, tc.wantW)
		}
	}
}

// TestRegistryAnalyzerPool checks the per-model analyzer pool: the
// same preset always yields the same analyzer (memoization works),
// different presets are distinct, and replacing a model swaps both.
func TestRegistryAnalyzerPool(t *testing.T) {
	c := testCircuit(t, 2)
	reg := newRegistry(0, nil)
	md, replaced := reg.add("m", "netlist", c, nil)
	if replaced {
		t.Fatal("first add reported replaced")
	}
	a1 := md.analyzer(false)
	if a1 != md.analyzer(false) {
		t.Error("default-preset analyzer not memoized")
	}
	ex := md.analyzer(true)
	if ex == a1 {
		t.Error("exact preset shares the default analyzer")
	}
	if ex != md.analyzer(true) {
		t.Error("exact-preset analyzer not memoized")
	}

	md2, replaced := reg.add("m", "netlist", c, nil)
	if !replaced {
		t.Fatal("second add did not report replaced")
	}
	if md2 == md || md2.analyzer(false) == a1 {
		t.Error("replacement kept the old model/analyzer")
	}

	if _, ok := reg.get("m"); !ok {
		t.Fatal("get after replace failed")
	}
	if !reg.remove("m") || reg.remove("m") {
		t.Error("remove semantics broken")
	}
	if got := len(reg.list()); got != 0 {
		t.Errorf("list after remove: %d entries", got)
	}
}

// TestValidateModelName covers the registry-key grammar.
func TestValidateModelName(t *testing.T) {
	for _, ok := range []string{"a", "c17", "my.model_v2-final", strings.Repeat("x", 64)} {
		if aerr := validateModelName(ok); aerr != nil {
			t.Errorf("validateModelName(%q) = %v, want ok", ok, aerr)
		}
	}
	for _, bad := range []string{"", strings.Repeat("x", 65), "sp ace", "sl/ash", "unié"} {
		if aerr := validateModelName(bad); aerr == nil {
			t.Errorf("validateModelName(%q) accepted", bad)
		}
	}
}
