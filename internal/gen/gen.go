// Package gen generates the synthetic coupled benchmark circuits used
// to reproduce the paper's evaluation. The DAC'07 flow synthesized
// unnamed benchmarks with a commercial 0.13µm library, placed and
// routed them with a commercial APR tool and extracted distributed RC
// with a commercial extractor; none of that tooling (or its outputs)
// is available, so this package substitutes a seeded generator that
// emits circuits with the same gate and coupling-capacitor counts and
// the same structural character: a layered random logic DAG, placed on
// a grid, with coupling capacitors between geometrically adjacent
// nets and distance-scaled magnitudes.
//
// The top-k algorithms consume only the coupling graph and the per-net
// electrical parameters, so matching size and coupling density
// preserves the evaluation's scaling behaviour.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"topkagg/internal/cell"
	"topkagg/internal/circuit"
	"topkagg/internal/sta"
)

// Spec describes one synthetic benchmark.
type Spec struct {
	Name      string
	Gates     int   // number of gates (= gate-driven nets)
	Couplings int   // number of coupling capacitors
	Seed      int64 // generator seed; same spec + seed => identical circuit
	// PaperNets records the net count the paper reports for the
	// benchmark this spec mirrors (informational; this generator
	// produces one driven net per gate).
	PaperNets int
}

// Paper returns specs mirroring the ten benchmark circuits of the
// paper's Table 2 (gate and coupling-capacitor counts match exactly;
// the paper's net counts are recorded in PaperNets).
func Paper() []Spec {
	return []Spec{
		{Name: "i1", Gates: 59, PaperNets: 46, Couplings: 232, Seed: 101},
		{Name: "i2", Gates: 222, PaperNets: 221, Couplings: 706, Seed: 102},
		{Name: "i3", Gates: 132, PaperNets: 126, Couplings: 551, Seed: 103},
		{Name: "i4", Gates: 236, PaperNets: 230, Couplings: 1181, Seed: 104},
		{Name: "i5", Gates: 204, PaperNets: 138, Couplings: 1835, Seed: 105},
		{Name: "i6", Gates: 735, PaperNets: 668, Couplings: 7298, Seed: 106},
		{Name: "i7", Gates: 937, PaperNets: 870, Couplings: 9605, Seed: 107},
		{Name: "i8", Gates: 1609, PaperNets: 1528, Couplings: 10235, Seed: 108},
		{Name: "i9", Gates: 1018, PaperNets: 955, Couplings: 14140, Seed: 109},
		{Name: "i10", Gates: 3379, PaperNets: 3155, Couplings: 18318, Seed: 110},
	}
}

// PaperSpec returns the spec for one of the paper's benchmarks by
// name (i1..i10).
func PaperSpec(name string) (Spec, error) {
	for _, s := range Paper() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("gen: unknown paper benchmark %q", name)
}

// cellChoices are the cells instanced by the generator, weighted
// towards the small combinational gates that dominate synthesized
// logic.
var cellChoices = []string{
	"INV_X1", "INV_X1", "INV_X2", "BUF_X1",
	"NAND2_X1", "NAND2_X1", "NAND2_X2",
	"NOR2_X1", "NOR2_X1",
	"AND2_X1", "OR2_X1", "XOR2_X1",
	"AOI21_X1",
}

// Build generates the circuit described by spec. The result is
// validated and deterministic in (Gates, Couplings, Seed).
func Build(spec Spec) (*circuit.Circuit, error) {
	if spec.Gates < 2 {
		return nil, fmt.Errorf("gen: %s: need at least 2 gates, got %d", spec.Name, spec.Gates)
	}
	if spec.Couplings < 0 {
		return nil, fmt.Errorf("gen: %s: negative coupling count", spec.Name)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	lib := cell.Default()
	c := circuit.New(spec.Name, lib)

	// Layered DAG: depth scales gently with size so circuit delay
	// lands in the paper's sub-nanosecond to few-nanosecond range.
	depth := 5 + int(1.5*math.Log2(float64(spec.Gates)/16+1))
	nPI := spec.Gates/10 + 4
	width := (spec.Gates + depth - 1) / depth

	// Level 0: primary inputs.
	levelNets := make([][]string, depth+1)
	for i := 0; i < nPI; i++ {
		name := fmt.Sprintf("pi%d", i)
		id := c.EnsureNet(name)
		n := c.Net(id)
		n.X = 0
		n.Y = float64(i) * 4
		levelNets[0] = append(levelNets[0], name)
	}

	// pickInput draws a net from a lower level, biased towards the
	// immediately preceding level to create chains (deep critical
	// paths) with occasional long-range reconvergence.
	pickInput := func(level int) string {
		l := level - 1
		if l > 0 && rng.Float64() < 0.25 {
			l = rng.Intn(level)
		}
		for l > 0 && len(levelNets[l]) == 0 {
			l--
		}
		nets := levelNets[l]
		return nets[rng.Intn(len(nets))]
	}

	gi := 0
	for level := 1; level <= depth && gi < spec.Gates; level++ {
		count := width
		if level == depth {
			count = spec.Gates - gi // remainder
		}
		for j := 0; j < count && gi < spec.Gates; j++ {
			cellName := cellChoices[rng.Intn(len(cellChoices))]
			cl, err := lib.Cell(cellName)
			if err != nil {
				return nil, err
			}
			ins := make([]string, cl.NumInputs)
			seen := map[string]bool{}
			for k := range ins {
				in := pickInput(level)
				for tries := 0; seen[in] && tries < 4; tries++ {
					in = pickInput(level)
				}
				seen[in] = true
				ins[k] = in
			}
			out := fmt.Sprintf("n%d", gi)
			if _, err := c.AddGate(fmt.Sprintf("g%d", gi), cellName, ins, out); err != nil {
				return nil, err
			}
			id := c.EnsureNet(out)
			n := c.Net(id)
			n.X = float64(level) * 12
			n.Y = float64(j)*4 + rng.Float64()*3
			n.Cgnd = 2.5 + rng.Float64()*3
			n.Rwire = 0.1 + rng.Float64()*0.3
			levelNets[level] = append(levelNets[level], out)
			gi++
		}
	}

	// Output: the deepest unloaded net becomes the (single) timing
	// sink, mirroring the paper's "sink node of the circuit"; the
	// remaining unloaded nets are left unconstrained, as unobserved
	// outputs are in timing signoff.
	timing, err := sta.Analyze(c, sta.Options{})
	if err != nil {
		return nil, fmt.Errorf("gen: %s: %w", spec.Name, err)
	}
	var sink *circuit.Net
	for _, n := range c.Nets() {
		if n.Driver == circuit.NoGate || len(n.Loads) > 0 {
			continue
		}
		if sink == nil || timing.Window(n.ID).LAT > timing.Window(sink.ID).LAT {
			sink = n
		}
	}
	if sink == nil {
		return nil, fmt.Errorf("gen: %s: no sink candidate", spec.Name)
	}
	if err := c.MarkPO(sink.Name); err != nil {
		return nil, err
	}

	if err := addCouplings(c, spec.Couplings, rng); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("gen: %s: %w", spec.Name, err)
	}
	return c, nil
}

// addCouplings places coupling capacitors between geometrically close
// driven nets, with magnitudes shrinking with distance — the synthetic
// stand-in for extraction of routed adjacent wires.
func addCouplings(c *circuit.Circuit, count int, rng *rand.Rand) error {
	type placed struct {
		id   circuit.NetID
		x, y float64
	}
	var nets []placed
	for _, n := range c.Nets() {
		if n.Driver != circuit.NoGate {
			nets = append(nets, placed{id: n.ID, x: n.X, y: n.Y})
		}
	}
	if len(nets) < 2 {
		return fmt.Errorf("gen: not enough nets to couple")
	}
	// Sort by position so index distance approximates geometric
	// distance within a column.
	sort.Slice(nets, func(i, j int) bool {
		if nets[i].x != nets[j].x {
			return nets[i].x < nets[j].x
		}
		return nets[i].y < nets[j].y
	})
	for added := 0; added < count; {
		i := rng.Intn(len(nets))
		// A neighbour a few routing tracks away.
		off := 1 + rng.Intn(6)
		j := i + off
		if j >= len(nets) {
			j = i - off
			if j < 0 {
				continue
			}
		}
		a, b := nets[i], nets[j]
		d := math.Hypot(a.x-b.x, a.y-b.y)
		cc := (0.25 + rng.Float64()*0.9) * (1 + 2/(1+d))
		if _, err := c.AddCoupling(c.Net(a.id).Name, c.Net(b.id).Name, cc); err != nil {
			return err
		}
		added++
	}
	return nil
}

// ScaleSpec describes a synthetic benchmark of roughly the requested
// net count, used to probe scaling beyond the paper's largest circuit
// (i10, ~3.4k gates). Coupling density is fixed at three capacitors
// per gate — inside the 2–10 range the paper's Table 2 circuits span —
// so runtime growth with nets isolates the engine's scaling behaviour
// rather than a density change. The seed is derived from the size, so
// every call with the same count yields the identical circuit.
func ScaleSpec(nets int) Spec {
	return Spec{
		Name:      fmt.Sprintf("scale%d", nets),
		Gates:     nets,
		Couplings: 3 * nets,
		Seed:      900000 + int64(nets),
	}
}

// Scale generates the ScaleSpec(nets) benchmark: a layered random
// logic DAG with geometrically local, distance-scaled couplings —
// the same structural character as the paper mirrors, at an arbitrary
// size.
func Scale(nets int) (*circuit.Circuit, error) {
	return Build(ScaleSpec(nets))
}

// BuildPaper generates one of the paper's benchmarks by name.
func BuildPaper(name string) (*circuit.Circuit, error) {
	spec, err := PaperSpec(name)
	if err != nil {
		return nil, err
	}
	return Build(spec)
}
