package circuit

import (
	"strings"
	"testing"

	"topkagg/internal/cell"
)

// chain builds a -> INV g1 -> n1 -> INV g2 -> y.
func chain(t *testing.T) *Circuit {
	t.Helper()
	c := New("chain", cell.Default())
	if _, err := c.AddGate("g1", "INV_X1", []string{"a"}, "n1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("g2", "INV_X1", []string{"n1"}, "y"); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkPO("y"); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEnsureNetIdempotent(t *testing.T) {
	c := New("t", cell.Default())
	a := c.EnsureNet("a")
	b := c.EnsureNet("a")
	if a != b {
		t.Fatalf("EnsureNet created duplicate: %d vs %d", a, b)
	}
	if c.NumNets() != 1 {
		t.Fatalf("expected 1 net, got %d", c.NumNets())
	}
}

func TestAddGateWiring(t *testing.T) {
	c := chain(t)
	if c.NumGates() != 2 || c.NumNets() != 3 {
		t.Fatalf("unexpected sizes: %d gates, %d nets", c.NumGates(), c.NumNets())
	}
	n1, _ := c.NetByName("n1")
	if c.Net(n1).Driver != 0 {
		t.Fatalf("n1 driver = %d, want gate 0", c.Net(n1).Driver)
	}
	if len(c.Net(n1).Loads) != 1 || c.Net(n1).Loads[0] != 1 {
		t.Fatalf("n1 loads = %v, want [1]", c.Net(n1).Loads)
	}
	a, _ := c.NetByName("a")
	if c.Net(a).Driver != NoGate {
		t.Fatal("primary input must have no driver")
	}
}

func TestAddGateErrors(t *testing.T) {
	c := New("t", cell.Default())
	if _, err := c.AddGate("g", "MISSING", []string{"a"}, "y"); err == nil {
		t.Fatal("unknown cell must error")
	}
	if _, err := c.AddGate("g", "NAND2_X1", []string{"a"}, "y"); err == nil {
		t.Fatal("wrong pin count must error")
	}
	if _, err := c.AddGate("g1", "INV_X1", []string{"a"}, "y"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("g2", "INV_X1", []string{"b"}, "y"); err == nil ||
		!strings.Contains(err.Error(), "already driven") {
		t.Fatalf("double driver must error, got %v", err)
	}
}

func TestAddCouplingErrors(t *testing.T) {
	c := New("t", cell.Default())
	if _, err := c.AddCoupling("a", "a", 1); err == nil {
		t.Fatal("self coupling must error")
	}
	if _, err := c.AddCoupling("a", "b", 0); err == nil {
		t.Fatal("zero coupling must error")
	}
	id, err := c.AddCoupling("a", "b", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	cp := c.Coupling(id)
	a, _ := c.NetByName("a")
	b, _ := c.NetByName("b")
	if cp.Other(a) != b || cp.Other(b) != a {
		t.Fatal("Other must return far endpoint")
	}
	if !cp.Touches(a) || !cp.Touches(b) {
		t.Fatal("Touches must be true on endpoints")
	}
	if len(c.CouplingsOf(a)) != 1 || len(c.CouplingsOf(b)) != 1 {
		t.Fatal("coupling index missing entries")
	}
}

func TestPIsPOs(t *testing.T) {
	c := chain(t)
	pis := c.PIs()
	if len(pis) != 1 || c.Net(pis[0]).Name != "a" {
		t.Fatalf("PIs = %v", pis)
	}
	pos := c.POs()
	if len(pos) != 1 || c.Net(pos[0]).Name != "y" {
		t.Fatalf("POs = %v", pos)
	}
}

func TestPOsFallbackToSinks(t *testing.T) {
	c := New("t", cell.Default())
	if _, err := c.AddGate("g1", "INV_X1", []string{"a"}, "y"); err != nil {
		t.Fatal(err)
	}
	pos := c.POs()
	if len(pos) != 1 || c.Net(pos[0]).Name != "y" {
		t.Fatalf("unmarked PO fallback failed: %v", pos)
	}
}

func TestLoadCapComposition(t *testing.T) {
	c := chain(t)
	n1, _ := c.NetByName("n1")
	if _, err := c.AddCoupling("n1", "a", 2.5); err != nil {
		t.Fatal(err)
	}
	inv, _ := c.Lib.Cell("INV_X1")
	want := c.Net(n1).Cgnd + inv.Cin + 2.5
	if got := c.LoadCap(n1); got != want {
		t.Fatalf("LoadCap = %g, want %g", got, want)
	}
	if got := c.PinLoad(n1); got != inv.Cin {
		t.Fatalf("PinLoad = %g, want %g", got, inv.Cin)
	}
	if got := c.CouplingCap(n1); got != 2.5 {
		t.Fatalf("CouplingCap = %g, want 2.5", got)
	}
}

func TestDriverRes(t *testing.T) {
	c := chain(t)
	a, _ := c.NetByName("a")
	n1, _ := c.NetByName("n1")
	inv, _ := c.Lib.Cell("INV_X1")
	if got := c.DriverRes(n1); got != inv.Rdrv+c.Net(n1).Rwire {
		t.Fatalf("driven net resistance = %g", got)
	}
	if got := c.DriverRes(a); got != 1.0+c.Net(a).Rwire {
		t.Fatalf("PI pad resistance = %g", got)
	}
}

func TestTopoGatesOrder(t *testing.T) {
	c := New("t", cell.Default())
	// Build out of order: g2 consumes g1's output but add g2 first.
	if _, err := c.AddGate("g2", "INV_X1", []string{"n1"}, "y"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("g1", "INV_X1", []string{"a"}, "n1"); err != nil {
		t.Fatal(err)
	}
	order, err := c.TopoGates()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[GateID]int{}
	for i, g := range order {
		pos[g] = i
	}
	g1, g2 := GateID(1), GateID(0)
	if pos[g1] > pos[g2] {
		t.Fatalf("g1 must precede g2 in topo order: %v", order)
	}
}

func TestTopoGatesDetectsCycle(t *testing.T) {
	c := New("t", cell.Default())
	if _, err := c.AddGate("g1", "NAND2_X1", []string{"a", "n2"}, "n1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("g2", "INV_X1", []string{"n1"}, "n2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TopoGates(); err == nil {
		t.Fatal("cycle must be detected")
	}
	if err := c.Validate(); err == nil {
		t.Fatal("Validate must reject cyclic netlist")
	}
}

func TestTopoNets(t *testing.T) {
	c := chain(t)
	order, err := c.TopoNets()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("want 3 nets in order, got %v", order)
	}
	if c.Net(order[0]).Name != "a" {
		t.Fatalf("PI must come first: %v", order)
	}
	if c.Net(order[2]).Name != "y" {
		t.Fatalf("sink must come last: %v", order)
	}
}

func TestFaninCone(t *testing.T) {
	c := New("t", cell.Default())
	// a,b -> NAND g1 -> n1; n1,c -> NAND g2 -> y; d -> INV g3 -> z.
	mustGate := func(name, cn string, ins []string, out string) {
		if _, err := c.AddGate(name, cn, ins, out); err != nil {
			t.Fatal(err)
		}
	}
	mustGate("g1", "NAND2_X1", []string{"a", "b"}, "n1")
	mustGate("g2", "NAND2_X1", []string{"n1", "c"}, "y")
	mustGate("g3", "INV_X1", []string{"d"}, "z")
	y, _ := c.NetByName("y")
	cone := c.FaninCone(y)
	for _, want := range []string{"a", "b", "c", "n1", "y"} {
		id, _ := c.NetByName(want)
		if !cone[id] {
			t.Errorf("cone missing %s", want)
		}
	}
	z, _ := c.NetByName("z")
	d, _ := c.NetByName("d")
	if cone[z] || cone[d] {
		t.Error("cone must not include unrelated logic")
	}
}

func TestStatsExcludesPIs(t *testing.T) {
	c := chain(t)
	if _, err := c.AddCoupling("n1", "y", 1); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Gates != 2 || s.Nets != 2 || s.Couplings != 1 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestValidateOK(t *testing.T) {
	c := chain(t)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateNegativeParasitics(t *testing.T) {
	c := chain(t)
	n1, _ := c.NetByName("n1")
	c.Net(n1).Cgnd = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative parasitics must be rejected")
	}
}

func TestSortedNetNames(t *testing.T) {
	c := chain(t)
	names := c.SortedNetNames()
	if len(names) != 3 || names[0] != "a" || names[1] != "n1" || names[2] != "y" {
		t.Fatalf("SortedNetNames = %v", names)
	}
}
