// Package waveform provides the piecewise-linear (PWL) waveform
// substrate used by the linear noise-analysis framework: saturated-ramp
// transitions, triangular noise pulses, trapezoidal noise envelopes and
// the algebra (superposition, shifting, encapsulation tests, t50
// crossings) that delay-noise computation is built on.
//
// A PWL waveform is defined by a sorted sequence of breakpoints
// (t, v). Between breakpoints the value is linearly interpolated;
// before the first breakpoint it equals the first value and after the
// last breakpoint it equals the last value. All operations return new
// waveforms; a PWL is immutable after construction.
package waveform

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Eps is the absolute tolerance used by comparisons on voltages and
// times. Waveform values in this library are volts (order 1) and
// seconds expressed in nanoseconds (order 0.01-10), so a single
// tolerance serves both axes.
const Eps = 1e-9

// Point is a single PWL breakpoint.
type Point struct {
	T float64 // time
	V float64 // value
}

// PWL is an immutable piecewise-linear waveform.
type PWL struct {
	pts []Point
}

// ErrUnordered is returned by New when breakpoints are not sorted by
// time.
var ErrUnordered = errors.New("waveform: breakpoints not sorted by time")

// Restore reconstructs a waveform from the exact breakpoints of a
// previously constructed one (waveform.PWL.Points), taking ownership
// of pts. Unlike New it performs no Eps-merging — internal algebra may
// legitimately produce breakpoints closer than Eps, and a snapshot
// round trip must reproduce the original bit-for-bit — but it still
// rejects unordered times and non-finite values, so a decoder fed
// corrupt bytes can never materialize a waveform the algebra's
// invariants don't hold for.
func Restore(pts []Point) (PWL, error) {
	for i := range pts {
		if math.IsNaN(pts[i].T) || math.IsInf(pts[i].T, 0) || math.IsNaN(pts[i].V) || math.IsInf(pts[i].V, 0) {
			return PWL{}, fmt.Errorf("waveform: restore: non-finite point %d (t=%v v=%v)", i, pts[i].T, pts[i].V)
		}
		if i > 0 && pts[i].T < pts[i-1].T {
			return PWL{}, fmt.Errorf("%w: point %d at t=%g after t=%g", ErrUnordered, i, pts[i].T, pts[i-1].T)
		}
	}
	return PWL{pts: pts}, nil
}

// New constructs a waveform from breakpoints. Points must be sorted by
// non-decreasing time; points closer than Eps in time are merged
// (keeping the later value). A waveform with no points is the constant
// zero waveform.
func New(pts ...Point) (PWL, error) {
	for i := 1; i < len(pts); i++ {
		if pts[i].T < pts[i-1].T-Eps {
			return PWL{}, fmt.Errorf("%w: point %d at t=%g after t=%g", ErrUnordered, i, pts[i].T, pts[i-1].T)
		}
	}
	out := make([]Point, 0, len(pts))
	for _, p := range pts {
		if n := len(out); n > 0 && p.T <= out[n-1].T+Eps {
			out[n-1].V = p.V
			out[n-1].T = math.Max(out[n-1].T, p.T)
			continue
		}
		out = append(out, p)
	}
	return PWL{pts: out}, nil
}

// MustNew is New made total: it never fails and never panics. It is
// intended for statically-known shapes (ramps, pulses) whose ordering
// is guaranteed by construction; should corrupt parameters (negative
// slews from bad cell data, say) produce unordered points anyway, they
// are stably sorted by time first, so the analysis degrades to a valid
// waveform instead of crashing the engine.
func MustNew(pts ...Point) PWL {
	w, err := New(pts...)
	if err != nil {
		sorted := append([]Point(nil), pts...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].T < sorted[j].T })
		w, _ = New(sorted...)
	}
	return w
}

// Zero returns the constant zero waveform.
func Zero() PWL { return PWL{} }

// Constant returns the waveform that is v everywhere.
func Constant(v float64) PWL {
	if v == 0 {
		return Zero()
	}
	return PWL{pts: []Point{{T: 0, V: v}}}
}

// IsZero reports whether the waveform is identically zero.
func (w PWL) IsZero() bool {
	for _, p := range w.pts {
		if math.Abs(p.V) > Eps {
			return false
		}
	}
	return true
}

// Points returns a copy of the breakpoints.
func (w PWL) Points() []Point {
	out := make([]Point, len(w.pts))
	copy(out, w.pts)
	return out
}

// AppendTo appends the waveform's breakpoints to buf and returns the
// extended slice — the allocation-free export used together with View
// by hot paths that cache waveforms in caller-owned storage.
func (w PWL) AppendTo(buf []Point) []Point { return append(buf, w.pts...) }

// NumPoints returns the number of breakpoints.
func (w PWL) NumPoints() int { return len(w.pts) }

// Start returns the time of the first breakpoint; for an empty
// waveform it returns 0.
func (w PWL) Start() float64 {
	if len(w.pts) == 0 {
		return 0
	}
	return w.pts[0].T
}

// End returns the time of the last breakpoint; for an empty waveform
// it returns 0.
func (w PWL) End() float64 {
	if len(w.pts) == 0 {
		return 0
	}
	return w.pts[len(w.pts)-1].T
}

// Value returns the waveform value at time t.
func (w PWL) Value(t float64) float64 {
	n := len(w.pts)
	if n == 0 {
		return 0
	}
	if t <= w.pts[0].T {
		return w.pts[0].V
	}
	if t >= w.pts[n-1].T {
		return w.pts[n-1].V
	}
	// First breakpoint strictly after t.
	i := sort.Search(n, func(i int) bool { return w.pts[i].T > t })
	a, b := w.pts[i-1], w.pts[i]
	if b.T == a.T {
		return b.V
	}
	f := (t - a.T) / (b.T - a.T)
	return a.V + f*(b.V-a.V)
}

// Shift returns the waveform delayed by dt (dt may be negative).
func (w PWL) Shift(dt float64) PWL {
	if len(w.pts) == 0 || dt == 0 {
		return w
	}
	out := make([]Point, len(w.pts))
	for i, p := range w.pts {
		out[i] = Point{T: p.T + dt, V: p.V}
	}
	return PWL{pts: out}
}

// Scale returns the waveform with all values multiplied by f.
func (w PWL) Scale(f float64) PWL {
	if len(w.pts) == 0 {
		return w
	}
	out := make([]Point, len(w.pts))
	for i, p := range w.pts {
		out[i] = Point{T: p.T, V: p.V * f}
	}
	return PWL{pts: out}
}

// Neg returns the waveform with all values negated.
func (w PWL) Neg() PWL { return w.Scale(-1) }

// mergeTimes returns the sorted union of breakpoint times of a and b.
func mergeTimes(a, b PWL) []float64 {
	ts := make([]float64, 0, len(a.pts)+len(b.pts))
	i, j := 0, 0
	for i < len(a.pts) || j < len(b.pts) {
		var t float64
		switch {
		case i >= len(a.pts):
			t = b.pts[j].T
			j++
		case j >= len(b.pts):
			t = a.pts[i].T
			i++
		case a.pts[i].T <= b.pts[j].T:
			t = a.pts[i].T
			i++
		default:
			t = b.pts[j].T
			j++
		}
		if n := len(ts); n == 0 || t > ts[n-1]+Eps {
			ts = append(ts, t)
		}
	}
	return ts
}

// combine builds a waveform by evaluating f(a(t), b(t)) at the merged
// breakpoints of a and b. The result is exact for pointwise-linear
// combinations (addition, subtraction); Max additionally inserts
// intersection breakpoints before combining.
func combine(a, b PWL, f func(av, bv float64) float64) PWL {
	ts := mergeTimes(a, b)
	if len(ts) == 0 {
		v := f(0, 0)
		if v == 0 {
			return Zero()
		}
		return Constant(v)
	}
	out := make([]Point, len(ts))
	for i, t := range ts {
		out[i] = Point{T: t, V: f(a.Value(t), b.Value(t))}
	}
	return PWL{pts: out}
}

// Add returns the pointwise sum a + b (linear superposition).
func Add(a, b PWL) PWL {
	return linearCombine(a, b, 1)
}

// linearCombine computes a + sign·b with a single linear merge over
// both breakpoint lists (no per-point binary search); it is the hot
// path of envelope superposition.
func linearCombine(a, b PWL, sign float64) PWL {
	if len(a.pts) == 0 && len(b.pts) == 0 {
		return Zero()
	}
	return PWL{pts: appendCombine(make([]Point, 0, len(a.pts)+len(b.pts)), a, b, sign)}
}

// appendCombine appends the breakpoints of a + sign·b to dst and
// returns the extended slice. dst should arrive with length 0; it is
// the scratch-buffer form of linearCombine.
func appendCombine(dst []Point, a, b PWL, sign float64) []Point {
	ap, bp := a.pts, b.pts
	// Disjoint spans reduce to scaled copies with the far side's
	// constant extension added — the common case when summing noise
	// envelopes spread across the clock period. The per-point sums
	// below are exactly the va + sign·vb the merge loop would compute.
	if len(ap) > 0 && len(bp) > 0 {
		switch {
		case ap[len(ap)-1].T < bp[0].T-Eps:
			sb := sign * bp[0].V
			for _, p := range ap {
				dst = append(dst, Point{T: p.T, V: p.V + sb})
			}
			va := ap[len(ap)-1].V
			for _, p := range bp {
				dst = append(dst, Point{T: p.T, V: va + sign*p.V})
			}
			return dst
		case bp[len(bp)-1].T < ap[0].T-Eps:
			va := ap[0].V
			for _, p := range bp {
				dst = append(dst, Point{T: p.T, V: va + sign*p.V})
			}
			sb := sign * bp[len(bp)-1].V
			for _, p := range ap {
				dst = append(dst, Point{T: p.T, V: p.V + sb})
			}
			return dst
		}
	}
	i, j := 0, 0
	for i < len(ap) || j < len(bp) {
		var t float64
		switch {
		case i >= len(ap):
			t = bp[j].T
		case j >= len(bp):
			t = ap[i].T
		case ap[i].T <= bp[j].T:
			t = ap[i].T
		default:
			t = bp[j].T
		}
		for i < len(ap) && ap[i].T <= t {
			i++
		}
		for j < len(bp) && bp[j].T <= t {
			j++
		}
		// Manually inlined segVal on both sides, same operation order.
		var va, vb float64
		switch {
		case len(ap) == 0:
			va = 0
		case i == 0:
			va = ap[0].V
		case i >= len(ap):
			va = ap[len(ap)-1].V
		default:
			p, q := ap[i-1], ap[i]
			if q.T == p.T {
				va = q.V
			} else {
				f := (t - p.T) / (q.T - p.T)
				va = p.V + f*(q.V-p.V)
			}
		}
		switch {
		case len(bp) == 0:
			vb = 0
		case j == 0:
			vb = bp[0].V
		case j >= len(bp):
			vb = bp[len(bp)-1].V
		default:
			p, q := bp[j-1], bp[j]
			if q.T == p.T {
				vb = q.V
			} else {
				f := (t - p.T) / (q.T - p.T)
				vb = p.V + f*(q.V-p.V)
			}
		}
		v := va + sign*vb
		if n := len(dst); n > 0 && t <= dst[n-1].T+Eps {
			dst[n-1] = Point{T: math.Max(dst[n-1].T, t), V: v}
			continue
		}
		dst = append(dst, Point{T: t, V: v})
	}
	return dst
}

// Sub returns the pointwise difference a - b.
func Sub(a, b PWL) PWL {
	return linearCombine(a, b, -1)
}

// SubInto computes a - b into buf (reused if capacity allows) and
// returns a PWL viewing the result plus the grown buffer. The returned
// PWL aliases the buffer: it is valid only until the buffer's next
// reuse. It is the allocation-free form of Sub for hot paths that
// consume the difference immediately (delay-noise t50 extraction).
func SubInto(a, b PWL, buf []Point) (PWL, []Point) {
	buf = appendCombine(buf[:0], a, b, -1)
	return PWL{pts: buf}, buf
}

// View wraps pts in a PWL without copying or validation. The caller
// must keep the points sorted by time and must not mutate them while
// the PWL is in use. Intended for scratch-buffer reuse on hot paths;
// everything else should use New.
func View(pts []Point) PWL { return PWL{pts: pts} }

// Max returns the pointwise maximum of a and b, inserting breakpoints
// at segment intersections so the result is exact.
func Max(a, b PWL) PWL {
	ts := mergeTimes(a, b)
	if len(ts) == 0 {
		return Zero()
	}
	// Insert intersection times where a-b changes sign within a segment.
	aug := make([]float64, 0, 2*len(ts))
	aug = append(aug, ts[0])
	for i := 1; i < len(ts); i++ {
		t0, t1 := ts[i-1], ts[i]
		d0 := a.Value(t0) - b.Value(t0)
		d1 := a.Value(t1) - b.Value(t1)
		if (d0 > Eps && d1 < -Eps) || (d0 < -Eps && d1 > Eps) {
			tx := t0 + (t1-t0)*d0/(d0-d1)
			if tx > t0+Eps && tx < t1-Eps {
				aug = append(aug, tx)
			}
		}
		aug = append(aug, t1)
	}
	out := make([]Point, len(aug))
	for i, t := range aug {
		out[i] = Point{T: t, V: math.Max(a.Value(t), b.Value(t))}
	}
	return PWL{pts: out}
}

// ClampMin returns the waveform with values below lo replaced by lo,
// inserting breakpoints at the clamp crossings.
func (w PWL) ClampMin(lo float64) PWL {
	return Max(w, Constant(lo))
}

// Peak returns the time and value of the waveform maximum. For an
// empty waveform it returns (0, 0). Ties resolve to the earliest time.
func (w PWL) Peak() (t, v float64) {
	if len(w.pts) == 0 {
		return 0, 0
	}
	t, v = w.pts[0].T, w.pts[0].V
	for _, p := range w.pts[1:] {
		if p.V > v+Eps {
			t, v = p.T, p.V
		}
	}
	return t, v
}

// Encapsulates reports whether a(t) >= b(t) - tol for all t in
// [t0, t1]. Because both waveforms are linear between the merged
// breakpoints, checking the merged breakpoints clipped to the interval
// plus the interval endpoints is exact.
//
// The merged times are walked with two cursors instead of
// materializing the union (this sits on the dominance-pruning hot
// path), and each waveform is evaluated by a forward-moving cursor
// using the same index convention and interpolation arithmetic as
// Value, so the verdict is bit-identical to the original
// mergeTimes+Value formulation.
func Encapsulates(a, b PWL, t0, t1, tol float64) bool {
	if t1 < t0 {
		return true
	}
	if a.Value(t0) < b.Value(t0)-tol || a.Value(t1) < b.Value(t1)-tol {
		return false
	}
	// Merge cursors (ia/ib) produce the union of breakpoint times with
	// mergeTimes' Eps-dedup; evaluation cursors (ea/eb) track, per
	// waveform, the first breakpoint strictly after the current time.
	ia, ib, ea, eb := 0, 0, 0, 0
	last := 0.0
	first := true
	for ia < len(a.pts) || ib < len(b.pts) {
		var t float64
		switch {
		case ia >= len(a.pts):
			t = b.pts[ib].T
			ib++
		case ib >= len(b.pts):
			t = a.pts[ia].T
			ia++
		case a.pts[ia].T <= b.pts[ib].T:
			t = a.pts[ia].T
			ia++
		default:
			t = b.pts[ib].T
			ib++
		}
		if !first && t <= last+Eps {
			continue
		}
		first = false
		last = t
		if t <= t0 || t >= t1 {
			continue
		}
		if a.valueAt(t, &ea) < b.valueAt(t, &eb)-tol {
			return false
		}
	}
	return true
}

// valueAt evaluates the waveform at t using *cursor as the running
// index of the first breakpoint strictly after t. Successive calls
// must not decrease t. The arithmetic mirrors Value exactly.
func (w PWL) valueAt(t float64, cursor *int) float64 {
	if len(w.pts) == 0 {
		return 0
	}
	if t <= w.pts[0].T {
		// Mirrors Value's leading-edge branch; matters when the first
		// two breakpoints share a time (a step at the start).
		return w.pts[0].V
	}
	i := *cursor
	for i < len(w.pts) && w.pts[i].T <= t {
		i++
	}
	*cursor = i
	switch {
	case i == 0:
		return w.pts[0].V
	case i >= len(w.pts):
		return w.pts[len(w.pts)-1].V
	default:
		a, b := w.pts[i-1], w.pts[i]
		if b.T == a.T {
			return b.V
		}
		f := (t - a.T) / (b.T - a.T)
		return a.V + f*(b.V-a.V)
	}
}

// LatestTimeAtOrBelow returns the supremum of {t : w(t) <= level}
// restricted to the waveform's breakpoint span. ok is false when the
// waveform never rises above level after its last visit to it (i.e.
// the supremum is unbounded: the waveform ends at or below level).
//
// For a noisy rising victim transition this is the noisy t50: the last
// instant the waveform still sits at or below the measurement level.
func (w PWL) LatestTimeAtOrBelow(level float64) (t float64, ok bool) {
	n := len(w.pts)
	if n == 0 {
		if 0 <= level {
			return 0, false // constant zero never exceeds level
		}
		return 0, false
	}
	if w.pts[n-1].V <= level+Eps {
		return 0, false // ends at/below level: supremum unbounded
	}
	// Walk backwards to the last upward crossing of level.
	for i := n - 1; i >= 1; i-- {
		a, b := w.pts[i-1], w.pts[i]
		if a.V <= level+Eps && b.V > level {
			if b.V == a.V {
				return b.T, true
			}
			f := (level - a.V) / (b.V - a.V)
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			return a.T + f*(b.T-a.T), true
		}
	}
	// Entire waveform above level.
	return w.pts[0].T, true
}

// EarliestTimeAtOrAbove returns the infimum of {t : w(t) >= level}.
// ok is false if the waveform never reaches level.
func (w PWL) EarliestTimeAtOrAbove(level float64) (t float64, ok bool) {
	n := len(w.pts)
	if n == 0 {
		return 0, 0 >= level
	}
	if w.pts[0].V >= level-Eps {
		return w.pts[0].T, true
	}
	for i := 1; i < n; i++ {
		a, b := w.pts[i-1], w.pts[i]
		if b.V >= level-Eps && a.V < level {
			if b.V == a.V {
				return b.T, true
			}
			f := (level - a.V) / (b.V - a.V)
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			return a.T + f*(b.T-a.T), true
		}
	}
	return 0, false
}

// Equal reports whether two waveforms agree within tol at every merged
// breakpoint (and hence, by linearity, everywhere).
func Equal(a, b PWL, tol float64) bool {
	for _, t := range mergeTimes(a, b) {
		if math.Abs(a.Value(t)-b.Value(t)) > tol {
			return false
		}
	}
	if len(a.pts) == 0 && len(b.pts) == 0 {
		return true
	}
	// Also compare the constant extensions.
	return math.Abs(a.Value(math.Inf(-1))-b.Value(math.Inf(-1))) <= tol &&
		math.Abs(a.Value(math.Inf(1))-b.Value(math.Inf(1))) <= tol
}

// Simplify returns an equivalent waveform with redundant breakpoints
// removed: any interior point whose value lies within tol of the
// straight line between its surviving neighbors is dropped. With
// tol = 0 only exactly-collinear points are removed and the waveform
// is unchanged as a function.
func (w PWL) Simplify(tol float64) PWL {
	if len(w.pts) <= 2 {
		return w
	}
	out := make([]Point, 0, len(w.pts))
	out = append(out, w.pts[0])
	for i := 1; i < len(w.pts)-1; i++ {
		a := out[len(out)-1]
		p := w.pts[i]
		b := w.pts[i+1]
		if b.T == a.T {
			out = append(out, p)
			continue
		}
		f := (p.T - a.T) / (b.T - a.T)
		lin := a.V + f*(b.V-a.V)
		if math.Abs(p.V-lin) <= tol {
			continue
		}
		out = append(out, p)
	}
	out = append(out, w.pts[len(w.pts)-1])
	return PWL{pts: out}
}

// String renders the waveform breakpoints, mainly for test failure
// messages.
func (w PWL) String() string {
	if len(w.pts) == 0 {
		return "PWL{0}"
	}
	var sb strings.Builder
	sb.WriteString("PWL{")
	for i, p := range w.pts {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "(%.4g,%.4g)", p.T, p.V)
	}
	sb.WriteString("}")
	return sb.String()
}
