package core

import (
	"context"
	"testing"

	"topkagg/internal/budget"
	"topkagg/internal/gen"
	"topkagg/internal/noise"
)

// TestScaleTopKUnderWorkBudget is the enumeration arm of the scaling
// smoke: prepare a top-k query over a 10k-net gen.Scale circuit (the
// preparation pays one full flat-kernel fixpoint run) and enumerate
// under a small work allowance. The run must degrade, not fail — a
// Partial result whose Stopped condition reports WorkExhausted —
// which bounds CI's worst case while still driving the whole
// prepare/enumerate stack at a size far past the paper benchmarks.
func TestScaleTopKUnderWorkBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-net preparation is too slow for -short")
	}
	c, err := gen.Scale(10000)
	if err != nil {
		t.Fatal(err)
	}
	s, err := PrepareAddition(noise.NewModel(c), WholeCircuit, Options{NoRescore: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.TopKBudget(budget.WithWork(context.Background(), 50), 4)
	if err != nil {
		t.Fatalf("budgeted enumeration: unexpected hard error: %v", err)
	}
	if !res.Partial {
		t.Fatal("a 50-unit allowance completed a 30k-coupling enumeration; the budget is not being charged")
	}
	if reason := budget.ReasonOf(res.Stopped); reason != budget.WorkExhausted {
		t.Fatalf("Stopped reason = %v (err %v), want WorkExhausted", reason, res.Stopped)
	}
}
