package circuit

import (
	"math/rand"
	"testing"

	"topkagg/internal/bitset"
	"topkagg/internal/cell"
)

// randomCircuit builds a small random layered netlist with couplings,
// exercising multi-input cells, fanout and shared nets.
func randomCircuit(t *testing.T, seed int64) *Circuit {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := New("cols", cell.Default())
	names := []string{"a", "b", "c", "d"}
	for gi := 0; gi < 12; gi++ {
		in1 := names[rng.Intn(len(names))]
		in2 := names[rng.Intn(len(names))]
		for in2 == in1 {
			in2 = names[rng.Intn(len(names))]
		}
		out := "n" + string(rune('0'+gi/10)) + string(rune('0'+gi%10))
		if _, err := c.AddGate("g"+out, "NAND2_X1", []string{in1, in2}, out); err != nil {
			t.Fatal(err)
		}
		names = append(names, out)
	}
	for i := 0; i < 10; i++ {
		a := names[rng.Intn(len(names))]
		b := names[rng.Intn(len(names))]
		if a == b {
			continue
		}
		if _, err := c.AddCoupling(a, b, 1+rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestColumnsMatchPointerModel cross-checks every column against the
// pointer-model accessors, including bit-identity of the derived
// electrical scalars.
func TestColumnsMatchPointerModel(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := randomCircuit(t, seed)
		k, err := c.Columns()
		if err != nil {
			t.Fatal(err)
		}
		if k.NumNets() != c.NumNets() || k.NumGates() != c.NumGates() || k.NumCouplings() != c.NumCouplings() {
			t.Fatalf("seed %d: size mismatch", seed)
		}
		for _, n := range c.Nets() {
			i := int(n.ID)
			if GateID(k.Driver[i]) != n.Driver {
				t.Fatalf("net %d: driver %d != %d", i, k.Driver[i], n.Driver)
			}
			span := k.LoadGates[k.LoadOff[i]:k.LoadOff[i+1]]
			if len(span) != len(n.Loads) {
				t.Fatalf("net %d: %d loads, want %d", i, len(span), len(n.Loads))
			}
			for j, gid := range n.Loads {
				if GateID(span[j]) != gid {
					t.Fatalf("net %d load %d: gate %d != %d", i, j, span[j], gid)
				}
				if NetID(k.Fanout[int(k.LoadOff[i])+j]) != c.Gate(gid).Output {
					t.Fatalf("net %d load %d: fanout mismatch", i, j)
				}
			}
			ids := c.CouplingsOf(n.ID)
			cspan := k.CoupIDs[k.CoupOff[i]:k.CoupOff[i+1]]
			if len(cspan) != len(ids) {
				t.Fatalf("net %d: %d couplings, want %d", i, len(cspan), len(ids))
			}
			for j, cid := range ids {
				if CouplingID(cspan[j]) != cid {
					t.Fatalf("net %d coupling %d: id mismatch", i, j)
				}
				cp := c.Coupling(cid)
				at := int(k.CoupOff[i]) + j
				if NetID(k.CoupOther[at]) != cp.Other(n.ID) {
					t.Fatalf("net %d coupling %d: other mismatch", i, j)
				}
				side := int32(0)
				if cp.B == n.ID {
					side = 1
				}
				if k.CoupDir[at] != 2*int32(cid)+side {
					t.Fatalf("net %d coupling %d: dir mismatch", i, j)
				}
			}
			if k.PinLoad[i] != c.PinLoad(n.ID) {
				t.Fatalf("net %d: PinLoad %v != %v", i, k.PinLoad[i], c.PinLoad(n.ID))
			}
			if k.LoadCap[i] != c.LoadCap(n.ID) {
				t.Fatalf("net %d: LoadCap %v != %v", i, k.LoadCap[i], c.LoadCap(n.ID))
			}
			if k.CvBase[i] != n.Cgnd+c.PinLoad(n.ID) {
				t.Fatalf("net %d: CvBase mismatch", i)
			}
			if k.DriverRes[i] != c.DriverRes(n.ID) {
				t.Fatalf("net %d: DriverRes %v != %v", i, k.DriverRes[i], c.DriverRes(n.ID))
			}
		}
		for _, g := range c.Gates() {
			i := int(g.ID)
			ins := k.GateIn[k.GateInOff[i]:k.GateInOff[i+1]]
			if len(ins) != len(g.Inputs) {
				t.Fatalf("gate %d: input count", i)
			}
			for j, in := range g.Inputs {
				if NetID(ins[j]) != in {
					t.Fatalf("gate %d input %d mismatch", i, j)
				}
			}
			if NetID(k.GateOut[i]) != g.Output {
				t.Fatalf("gate %d output mismatch", i)
			}
			if k.D0[i] != g.Cell.D0 || k.KD[i] != g.Cell.KD || k.S0[i] != g.Cell.S0 || k.KS[i] != g.Cell.KS {
				t.Fatalf("gate %d cell params mismatch", i)
			}
		}
		topo, err := c.TopoNets()
		if err != nil {
			t.Fatal(err)
		}
		if len(topo) != len(k.TopoNets) {
			t.Fatal("topo length mismatch")
		}
		for i := range topo {
			if topo[i] != k.TopoNets[i] {
				t.Fatalf("topo[%d] mismatch", i)
			}
			if int(k.TopoPos[topo[i]]) != i {
				t.Fatalf("topo pos of %d mismatch", topo[i])
			}
		}
	}
}

// TestColumnsCacheInvalidation checks the version-counter cache:
// repeated calls share one snapshot, every mutator drops it.
func TestColumnsCacheInvalidation(t *testing.T) {
	c := randomCircuit(t, 7)
	k1, err := c.Columns()
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := c.Columns()
	if k1 != k2 {
		t.Fatal("unchanged circuit rebuilt its columns")
	}
	if _, err := c.AddCoupling("a", "n05", 0.5); err != nil {
		t.Fatal(err)
	}
	k3, err := c.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Fatal("AddCoupling did not invalidate columns")
	}
	if k3.NumCouplings() != c.NumCouplings() {
		t.Fatal("rebuilt columns miss the new coupling")
	}
	c.Net(0).Cgnd *= 2
	c.InvalidateColumns()
	k4, err := c.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if k4 == k3 || k4.LoadCap[0] == k3.LoadCap[0] {
		t.Fatal("InvalidateColumns did not force a rebuild")
	}
}

func TestColumnsCycleError(t *testing.T) {
	c := New("cyc", cell.Default())
	if _, err := c.AddGate("g1", "INV_X1", []string{"a"}, "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("g2", "INV_X1", []string{"b"}, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Columns(); err == nil {
		t.Fatal("Columns on cyclic circuit did not error")
	}
}

// TestFaninConeBitsMatchesMap checks the bitset cone against the map
// form on random circuits.
func TestFaninConeBitsMatchesMap(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := randomCircuit(t, seed)
		d := bitset.New(c.NumNets())
		var scratch []NetID
		for _, n := range c.Nets() {
			ref := c.FaninCone(n.ID)
			scratch = c.FaninConeBits(n.ID, d, scratch)
			if d.Count() != len(ref) {
				t.Fatalf("seed %d net %d: cone size %d, want %d", seed, n.ID, d.Count(), len(ref))
			}
			for x := range ref {
				if !d.Get(int(x)) {
					t.Fatalf("seed %d net %d: missing cone member %d", seed, n.ID, x)
				}
			}
		}
	}
}

func TestNameLookupsCounter(t *testing.T) {
	c := randomCircuit(t, 3)
	before := c.NameLookups()
	c.NetByName("a")
	c.EnsureNet("a")
	if got := c.NameLookups() - before; got != 2 {
		t.Fatalf("NameLookups delta = %d, want 2", got)
	}
	before = c.NameLookups()
	// ID-addressed accessors must not consult the name map.
	for _, n := range c.Nets() {
		_ = c.LoadCap(n.ID)
		_ = c.DriverRes(n.ID)
		_ = c.CouplingsOf(n.ID)
	}
	if _, err := c.Columns(); err != nil {
		t.Fatal(err)
	}
	if got := c.NameLookups() - before; got != 0 {
		t.Fatalf("ID-addressed paths consulted the name map %d times", got)
	}
}
