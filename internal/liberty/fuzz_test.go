package liberty

import (
	"os"
	"strings"
	"testing"
)

// FuzzParse checks two properties of the Liberty reader on arbitrary
// input: it never panics, and any library it accepts survives a
// Write/Parse round trip (the canonical form is itself parseable).
func FuzzParse(f *testing.F) {
	// The full default library in Liberty form is the richest seed.
	if data, err := os.ReadFile("testdata/sample.lib"); err == nil {
		f.Add(string(data))
	} else {
		f.Fatal(err)
	}
	// Well-formed fragments.
	f.Add(`library (l) {
  time_unit : "1ns";
  cell (INV_X1) {
    pin (A) { direction : input; capacitance : 1.5; }
    pin (Y) {
      direction : output;
      drive_resistance : 5;
      timing () { related_pin : "A"; intrinsic_rise : 0.03; rise_resistance : 0.004; }
    }
  }
}`)
	f.Add(`library (empty) { }`)
	// Malformed fragments: unbalanced braces, truncated statements,
	// stray tokens, bad numbers.
	f.Add(`library (l) { cell (X) {`)
	f.Add(`library (l) { cell () { pin (A) { direction : sideways; } } }`)
	f.Add(`cell (X) { }`)
	f.Add(`library (l) { time_unit : ; }`)
	f.Add(`library (l) { cell (X) { pin (A) { capacitance : banana; } } }`)
	f.Add(`{ } } {`)
	f.Add("library (l) {\x00}")
	f.Add(`library (l) { /* unterminated comment`)

	f.Fuzz(func(t *testing.T, src string) {
		lib, err := ParseString(src) // must not panic; errors are fine
		if err != nil {
			return
		}
		// Round trip: the canonical rendering of an accepted library
		// must itself parse, to an equal cell set.
		var sb strings.Builder
		if err := Write(&sb, lib); err != nil {
			t.Fatalf("accepted library fails to write: %v", err)
		}
		lib2, err := ParseString(sb.String())
		if err != nil {
			t.Fatalf("canonical form fails to re-parse: %v\n%s", err, sb.String())
		}
		if lib2.Len() != lib.Len() {
			t.Fatalf("round trip changed cell count: %d -> %d", lib.Len(), lib2.Len())
		}
		for _, name := range lib.Names() {
			if _, err := lib2.Cell(name); err != nil {
				t.Fatalf("round trip lost cell %q", name)
			}
		}
	})
}
