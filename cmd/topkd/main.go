// Command topkd serves top-k aggressor analysis over HTTP/JSON: a
// named-model registry (upload a netlist or verilog+spef+liberty),
// query endpoints for addition/elimination/what-if including batches
// and NDJSON-streamed k-sweeps, per-request timeout/work budgets, and
// admission control bounding concurrent work. See README "Running the
// server" for the endpoint reference and curl examples.
//
//	topkd -addr localhost:8080
//	topkd -addr :8080 -preload c17=testdata/c17.ckt -max-inflight 64
//	topkd -addr :8080 -state-dir /var/lib/topkd -snapshot-interval 5m
//
// With -state-dir set, every model (and its warm analysis caches) is
// persisted to versioned, checksummed snapshot files: written
// atomically on upload, on a periodic timer, and on shutdown; restored
// on boot. Corrupt or truncated snapshots are quarantined, the model
// rebuilt from its persisted design source when possible, and the
// daemon boots regardless. GET /readyz answers 503 until restore
// completes and again from the moment draining starts; /healthz only
// proves the process is alive.
//
// The /debug/ tree (metrics snapshot, expvar, pprof) rides the same
// listener unless -no-debug is set. SIGINT/SIGTERM drain gracefully:
// /readyz flips to 503, -drain-wait elapses (time for load balancers
// to notice), admission starts answering 503, in-flight requests
// finish, a final snapshot is taken, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"topkagg/internal/faultinject"
	"topkagg/internal/httpapi"
	"topkagg/internal/obs"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr, nil))
}

const (
	exitOK    = 0
	exitErr   = 1
	exitUsage = 2
)

// repeated collects repeatable string flags (-preload, -fault).
type repeated []string

func (p *repeated) String() string     { return strings.Join(*p, ",") }
func (p *repeated) Set(s string) error { *p = append(*p, s); return nil }

// run is the whole daemon: parse flags, boot, serve until the parent
// context (or a signal) stops it. ready, when non-nil, receives the
// bound listen address once the server is fully ready (restore and
// preloads done) — tests use it to drive a real listener without
// racing the boot.
func run(parent context.Context, args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("topkd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8080", "listen address")
	maxInFlight := fs.Int("max-inflight", 64, "max concurrently executing requests (0 = unlimited)")
	maxQueue := fs.Int("max-queue", 128, "max requests waiting for a slot before 429")
	maxBody := fs.Int64("max-body", 8<<20, "request body size cap in bytes")
	defaultTimeout := fs.Duration("default-timeout", 0, "timeout applied to queries that name none (0 = none)")
	maxTimeout := fs.Duration("max-timeout", 0, "clamp on every per-query timeout (0 = no clamp)")
	maxWork := fs.Int64("max-work", 0, "clamp on every per-query work allowance (0 = no clamp)")
	fixWorkers := fs.Int("fixpoint-workers", 0, "worker goroutines per noise-fixpoint sweep (0 = GOMAXPROCS)")
	noDebug := fs.Bool("no-debug", false, "disable the /debug/ tree (metrics, expvar, pprof)")
	shutdownGrace := fs.Duration("shutdown-grace", 10*time.Second, "drain window before in-flight requests are cut off")
	stateDir := fs.String("state-dir", "", "persist model state here: restore on boot, snapshot on upload/timer/shutdown")
	snapInterval := fs.Duration("snapshot-interval", 5*time.Minute, "periodic snapshot cadence with -state-dir (0 = only on upload and shutdown)")
	drainWait := fs.Duration("drain-wait", 0, "hold /readyz at 503 this long before rejecting requests on shutdown")
	var pre, faults repeated
	fs.Var(&pre, "preload", "name=path: register a native netlist at boot (repeatable)")
	fs.Var(&faults, "fault", "site:k=v,...: arm a fault-injection rule, e.g. snapshot.write:delay=2s (repeatable, test builds)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *maxInFlight < 0 || *maxQueue < 0 || *maxBody <= 0 || *defaultTimeout < 0 ||
		*maxTimeout < 0 || *maxWork < 0 || *fixWorkers < 0 || *snapInterval < 0 || *drainWait < 0 {
		fmt.Fprintln(stderr, "topkd: limits must be non-negative (and -max-body positive)")
		return exitErr
	}
	if len(faults) > 0 {
		plan, err := parseFaults(faults)
		if err != nil {
			fmt.Fprintln(stderr, "topkd:", err)
			return exitErr
		}
		faultinject.Arm(plan)
		fmt.Fprintf(stdout, "topkd: armed %d fault rule(s)\n", len(faults))
	}
	// Read preload files up front so a bad path fails before the
	// listener binds; registration happens after restore so an explicit
	// -preload wins over persisted state of the same name.
	type preloadReq struct {
		name string
		up   *httpapi.UploadRequest
	}
	var preReqs []preloadReq
	for _, p := range pre {
		name, path, ok := strings.Cut(p, "=")
		if !ok {
			fmt.Fprintf(stderr, "topkd: -preload wants name=path, got %q\n", p)
			return exitErr
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "topkd:", err)
			return exitErr
		}
		preReqs = append(preReqs, preloadReq{name, &httpapi.UploadRequest{Netlist: string(data)}})
	}

	cfg := httpapi.Config{
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *maxQueue,
		MaxBodyBytes:    *maxBody,
		DefaultTimeout:  *defaultTimeout,
		MaxTimeout:      *maxTimeout,
		MaxWork:         *maxWork,
		FixpointWorkers: *fixWorkers,
	}
	if !*noDebug {
		cfg.Obs = obs.New()
		cfg.Obs.PublishExpvar("topkagg")
	}
	api := httpapi.NewServer(cfg)

	// Listener up before restore: during a long restore the daemon
	// already answers /healthz 200 and /readyz 503, so orchestrators
	// see "alive but not ready" instead of connection refused.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "topkd:", err)
		return exitErr
	}
	srv := &http.Server{Handler: api}
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "topkd listening on http://%s/\n", ln.Addr())

	if *stateDir != "" {
		outs, err := api.OpenState(*stateDir)
		if err != nil {
			fmt.Fprintln(stderr, "topkd:", err)
			srv.Close()
			return exitErr
		}
		for _, o := range outs {
			switch {
			case o.Warm:
				fmt.Fprintf(stdout, "topkd: restored model %q (warm)\n", o.Name)
			case o.Rebuilt:
				fmt.Fprintf(stdout, "topkd: rebuilt model %q from persisted source (snapshot quarantined at %s: %v)\n",
					o.Name, o.Quarantined, o.Err)
			default:
				fmt.Fprintf(stderr, "topkd: model %q lost to corruption (quarantined at %q): %v\n",
					o.Name, o.Quarantined, o.Err)
			}
		}
	}
	for _, p := range preReqs {
		if err := api.PreloadUpload(p.name, p.up); err != nil {
			fmt.Fprintf(stderr, "topkd: preload %s: %v\n", p.name, err)
			srv.Close()
			return exitErr
		}
		fmt.Fprintf(stdout, "preloaded model %q\n", p.name)
	}
	api.SetReady(true)
	fmt.Fprintln(stdout, "topkd: ready")
	if ready != nil {
		ready <- ln.Addr().String()
	}

	if *stateDir != "" && *snapInterval > 0 {
		go func() {
			t := time.NewTicker(*snapInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := api.SaveAll(); err != nil {
						fmt.Fprintln(stderr, "topkd: snapshot:", err)
					}
				}
			}
		}()
	}

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "topkd:", err)
		return exitErr
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "topkd: draining...")
	// Phase one: stop advertising readiness but keep serving, so load
	// balancers drain us before any request sees a rejection.
	api.SetReady(false)
	if *drainWait > 0 {
		time.Sleep(*drainWait)
	}
	// Phase two: reject new work, finish in-flight requests.
	api.Drain()
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "topkd: shutdown:", err)
		return exitErr
	}
	if *stateDir != "" {
		if err := api.SaveAll(); err != nil {
			fmt.Fprintln(stderr, "topkd: final snapshot:", err)
		} else {
			fmt.Fprintln(stdout, "topkd: state saved")
		}
	}
	fmt.Fprintln(stdout, "topkd: stopped")
	return exitOK
}

// parseFaults turns -fault flags into an armed plan. Each flag is
// site:key=value[,key=value...]; keys are on, every (hit triggers),
// delay (sleep), err (inject an error message at FireErr sites) and
// panic. Example: -fault snapshot.write:on=2,delay=3s holds the
// second snapshot section write for three seconds — the window a
// crash-recovery test kills the process in.
func parseFaults(specs []string) (*faultinject.Plan, error) {
	if !faultinject.Enabled() {
		return nil, fmt.Errorf("-fault: probes compiled out (faultinject_off build)")
	}
	plan := faultinject.NewPlan(1)
	for _, spec := range specs {
		site, kvs, ok := strings.Cut(spec, ":")
		if !ok || site == "" {
			return nil, fmt.Errorf("-fault wants site:k=v[,k=v...], got %q", spec)
		}
		var r faultinject.Rule
		for _, kv := range strings.Split(kvs, ",") {
			key, val, _ := strings.Cut(strings.TrimSpace(kv), "=")
			var err error
			switch key {
			case "on":
				r.On, err = strconv.ParseInt(val, 10, 64)
			case "every":
				r.Every, err = strconv.ParseInt(val, 10, 64)
			case "delay":
				r.Delay, err = time.ParseDuration(val)
			case "err":
				if val == "" {
					val = "injected fault"
				}
				r.Err = errors.New(val)
			case "panic":
				r.Panic = true
			default:
				return nil, fmt.Errorf("-fault %q: unknown key %q (want on, every, delay, err, panic)", spec, key)
			}
			if err != nil {
				return nil, fmt.Errorf("-fault %q: %s: %v", spec, key, err)
			}
		}
		plan.Add(site, r)
	}
	return plan, nil
}
