// Package exp regenerates every table and figure of the paper's
// evaluation section: Table 1 (brute force vs proposed), Tables 2(a)
// and 2(b) (delay and runtime vs k for the top-k addition and
// elimination sets over benchmarks i1..i10) and Figure 10 (delay
// convergence of both sets as k grows).
package exp

import (
	"fmt"
	"time"

	"topkagg/internal/bruteforce"
	"topkagg/internal/circuit"
	"topkagg/internal/core"
	"topkagg/internal/filter"
	"topkagg/internal/gen"
	"topkagg/internal/mc"
	"topkagg/internal/noise"
	"topkagg/internal/report"
)

// Mode selects the top-k problem an experiment runs.
type Mode int

// The two dual top-k problems.
const (
	Addition Mode = iota
	Elimination
)

func (m Mode) String() string {
	if m == Addition {
		return "addition"
	}
	return "elimination"
}

// Config parameterizes the harness. The zero value reproduces the
// paper's full layout; Quick() shrinks it to something that finishes
// in tens of seconds.
type Config struct {
	// Circuits for Table 2; nil means all ten paper benchmarks.
	Circuits []string
	// DelayKs are the cardinalities of the delay columns; nil means
	// the paper's {5, 10, 20, 30, 40, 50}.
	DelayKs []int
	// RuntimeKs are the cardinalities of the runtime columns; nil
	// means the paper's {1, 5, 10, 15, 20, 30, 40, 50}.
	RuntimeKs []int
	// BFBudget bounds each brute-force cardinality in Table 1 (the
	// paper used 1800 s); zero means DefaultBFBudget.
	BFBudget time.Duration
	// BFMaxK is Table 1's largest cardinality (paper: 4).
	BFMaxK int
	// Table1Spec generates Table 1's circuit. The zero Spec selects a
	// scaled-down benchmark on which a full brute-force pass at k <= 3
	// is feasible with this repository's (slower, Go) scenario
	// evaluator; see EXPERIMENTS.md.
	Table1Spec gen.Spec
	// Fig10Circuits are the benchmarks swept in Figure 10; nil means
	// the paper's {i1, i10}.
	Fig10Circuits []string
	// Fig10K is the sweep's largest cardinality (paper: 75).
	Fig10K int
	// Opt returns enumeration options per circuit size; nil means
	// DefaultOpt.
	Opt func(gates int) core.Options
}

// DefaultBFBudget bounds each Table 1 brute-force cardinality.
const DefaultBFBudget = 90 * time.Second

// Quick returns a configuration that exercises every experiment in
// reduced form (small circuits, small k) — the integration-test and
// smoke-run profile.
func Quick() Config {
	return Config{
		Circuits:      []string{"i1", "i3"},
		DelayKs:       []int{5, 10, 20},
		RuntimeKs:     []int{1, 5, 10, 20},
		BFBudget:      5 * time.Second,
		BFMaxK:        3,
		Table1Spec:    gen.Spec{Name: "t1-quick", Gates: 12, Couplings: 16, Seed: 99},
		Fig10Circuits: []string{"i1"},
		Fig10K:        20,
	}
}

func (c Config) circuits() []string {
	if c.Circuits != nil {
		return c.Circuits
	}
	names := make([]string, 0, 10)
	for _, s := range gen.Paper() {
		names = append(names, s.Name)
	}
	return names
}

func (c Config) delayKs() []int {
	if c.DelayKs != nil {
		return c.DelayKs
	}
	return []int{5, 10, 20, 30, 40, 50}
}

func (c Config) runtimeKs() []int {
	if c.RuntimeKs != nil {
		return c.RuntimeKs
	}
	return []int{1, 5, 10, 15, 20, 30, 40, 50}
}

func (c Config) bfBudget() time.Duration {
	if c.BFBudget > 0 {
		return c.BFBudget
	}
	return DefaultBFBudget
}

func (c Config) bfMaxK() int {
	if c.BFMaxK > 0 {
		return c.BFMaxK
	}
	return 4
}

func (c Config) table1Spec() gen.Spec {
	if c.Table1Spec.Gates > 0 {
		return c.Table1Spec
	}
	return gen.Spec{Name: "t1", Gates: 30, Couplings: 60, Seed: 77}
}

func (c Config) fig10Circuits() []string {
	if c.Fig10Circuits != nil {
		return c.Fig10Circuits
	}
	return []string{"i1", "i10"}
}

func (c Config) fig10K() int {
	if c.Fig10K > 0 {
		return c.Fig10K
	}
	return 75
}

func (c Config) opt(gates int) core.Options {
	if c.Opt != nil {
		return c.Opt(gates)
	}
	return DefaultOpt(gates)
}

// DefaultOpt scales the enumeration's pruning knobs with circuit size
// so the Table 2 sweep stays within the paper's runtime envelope.
func DefaultOpt(gates int) core.Options {
	switch {
	case gates <= 300:
		// Small circuits also verify the top candidates with the
		// incremental reference engine (closes most of the envelope
		// model's estimate gap; see Options.VerifyTop).
		return core.Options{NoRescore: true, VerifyTop: 4}
	case gates <= 1200:
		return core.Options{NoRescore: true, MaxListWidth: 16, MaxExtend: 8, SlackFrac: 0.20}
	default:
		return core.Options{NoRescore: true, MaxListWidth: 12, MaxExtend: 6, MaxHigherOrder: 2, SlackFrac: 0.12}
	}
}

// build generates a benchmark circuit: one of the paper's i1..i10 or
// an inline spec by name prefix "spec:".
func build(name string) (*circuit.Circuit, error) {
	return gen.BuildPaper(name)
}

// runTopK executes one enumeration without rescoring.
func runTopK(m *noise.Model, mode Mode, k int, opt core.Options) (*core.Result, error) {
	opt.NoRescore = true
	if mode == Addition {
		return core.TopKAddition(m, k, opt)
	}
	return core.TopKElimination(m, k, opt)
}

// rescoreCurve evaluates selected sets with the reference noise
// engine, enforcing the physically-sound monotone envelope (a larger
// set can always contain the smaller one, so the reported curve never
// regresses). evalKs limits which cardinalities are actually
// re-evaluated (nil = all up to maxK); intermediate points carry the
// best value seen so far, and cardinalities beyond what the
// enumeration produced carry its final value.
func rescoreCurve(m *noise.Model, mode Mode, res *core.Result, maxK int, evalKs []int) ([]float64, error) {
	eval := make(map[int]bool, len(evalKs))
	for _, k := range evalKs {
		eval[k] = true
	}
	curve := make([]float64, maxK)
	prev := res.BaseDelay
	if mode == Elimination {
		prev = res.AllDelay
	}
	for k := 1; k <= maxK; k++ {
		if (evalKs == nil || eval[k]) && k-1 < len(res.PerK) {
			ids := res.PerK[k-1].IDs
			var mask noise.Mask
			if mode == Addition {
				mask = noise.MaskOf(m.C, ids)
			} else {
				mask = noise.WithoutMask(m.C, ids)
			}
			an, err := m.Run(mask)
			if err != nil {
				return nil, err
			}
			d := an.CircuitDelay()
			if (mode == Addition && d > prev) || (mode == Elimination && d < prev) {
				prev = d
			}
		}
		curve[k-1] = prev
	}
	return curve, nil
}

// Table1 reproduces the paper's Table 1: the proposed algorithm
// validated against brute-force enumeration for small k, with the
// brute force timing out beyond k = 3.
func Table1(cfg Config) (*report.Table, error) {
	c, err := gen.Build(cfg.table1Spec())
	if err != nil {
		return nil, err
	}
	m := noise.NewModel(c)
	maxK := cfg.bfMaxK()
	prop, err := runTopK(m, Addition, maxK, core.Options{SlackFrac: 1})
	if err != nil {
		return nil, err
	}
	propCurve, err := rescoreCurve(m, Addition, prop, maxK, nil)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title: fmt.Sprintf("Table 1: brute force vs proposed (addition set, circuit %s: %d gates, %d couplings, budget %s/k)",
			c.Name, c.NumGates(), c.NumCouplings(), cfg.bfBudget()),
		Header: []string{"k", "bf ckt delay (ns)", "bf runtime (s)", "bf scenarios", "prop ckt delay (ns)", "prop runtime (s)"},
	}
	for k := 1; k <= maxK; k++ {
		bfDelay, bfRun, bfEval := "-", "-", "-"
		bf, err := bruteforce.Addition(m, k, cfg.bfBudget())
		if err != nil {
			return nil, err
		}
		bfEval = fmt.Sprintf("%d", bf.Evaluated)
		bfRun = report.F2(bf.Elapsed.Seconds())
		if bf.TimedOut {
			bfDelay = "timeout"
		} else {
			bfDelay = report.F(bf.Delay)
		}
		propDelay, propRun := "-", "-"
		if k-1 < len(prop.PerK) {
			propDelay = report.F(propCurve[k-1])
			propRun = report.F2(prop.ElapsedPerK[k-1].Seconds())
		}
		t.AddRow(fmt.Sprintf("%d", k), bfDelay, bfRun, bfEval, propDelay, propRun)
	}
	return t, nil
}

// Table2 reproduces the paper's Table 2(a) (addition) or 2(b)
// (elimination): per benchmark, circuit delay at selected k plus the
// all-aggressor and no-aggressor endpoints, and enumeration runtime at
// selected k.
func Table2(cfg Config, mode Mode) (*report.Table, error) {
	delayKs, runtimeKs := cfg.delayKs(), cfg.runtimeKs()
	maxK := 0
	for _, k := range append(append([]int{}, delayKs...), runtimeKs...) {
		if k > maxK {
			maxK = k
		}
	}
	t := &report.Table{Title: fmt.Sprintf("Table 2(%s): top-k %s set", map[Mode]string{Addition: "a", Elimination: "b"}[mode], mode)}
	t.Header = []string{"ckt", "gates", "couplings"}
	if mode == Addition {
		t.Header = append(t.Header, "delay all (ns)")
	} else {
		t.Header = append(t.Header, "delay k=0 (ns)")
	}
	for _, k := range delayKs {
		t.Header = append(t.Header, fmt.Sprintf("k=%d", k))
	}
	if mode == Addition {
		t.Header = append(t.Header, "no agg")
	} else {
		t.Header = append(t.Header, "all removed")
	}
	for _, k := range runtimeKs {
		t.Header = append(t.Header, fmt.Sprintf("t(k=%d) s", k))
	}
	for _, name := range cfg.circuits() {
		c, err := build(name)
		if err != nil {
			return nil, err
		}
		m := noise.NewModel(c)
		res, err := runTopK(m, mode, maxK, cfg.opt(c.NumGates()))
		if err != nil {
			return nil, err
		}
		curve, err := rescoreCurve(m, mode, res, maxK, delayKs)
		if err != nil {
			return nil, err
		}
		row := []string{name, fmt.Sprintf("%d", c.NumGates()), fmt.Sprintf("%d", c.NumCouplings())}
		row = append(row, report.F(res.AllDelay))
		for _, k := range delayKs {
			row = append(row, report.F(curve[k-1]))
		}
		row = append(row, report.F(res.BaseDelay))
		for _, k := range runtimeKs {
			idx := k - 1
			if idx >= len(res.ElapsedPerK) {
				idx = len(res.ElapsedPerK) - 1
			}
			if idx < 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, report.F2(res.ElapsedPerK[idx].Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// FilterStats is a companion (non-paper) table: false-aggressor
// filter effectiveness across the benchmarks.
func FilterStats(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title: "False-aggressor filter statistics (companion table, not in the paper)",
		Header: []string{"ckt", "couplings", "removable", "early dirs", "late dirs",
			"unobservable", "sub-threshold", "time (s)"},
	}
	for _, name := range cfg.circuits() {
		c, err := build(name)
		if err != nil {
			return nil, err
		}
		m := noise.NewModel(c)
		start := time.Now()
		fr, err := filter.FalseAggressors(m, filter.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow(name,
			fmt.Sprintf("%d", c.NumCouplings()),
			fmt.Sprintf("%d", len(fr.False)),
			fmt.Sprintf("%d", fr.EarlyFiltered),
			fmt.Sprintf("%d", fr.LateFiltered),
			fmt.Sprintf("%d", fr.UnobservableFiltered),
			fmt.Sprintf("%d", fr.MagnitudeFiltered),
			report.F2(time.Since(start).Seconds()))
	}
	return t, nil
}

// Coverage is a companion (non-paper) experiment quantifying the
// paper's probabilistic motivation: it samples realistic switching
// scenarios (Monte-Carlo with an activity factor) and reports the
// smallest k whose top-k addition delay covers the 50th/95th/99th
// percentile of the sampled distribution.
func Coverage(cfg Config, activity float64, samples int) (*report.Table, error) {
	if activity <= 0 {
		activity = mc.DefaultActivity
	}
	if samples <= 0 {
		samples = 100
	}
	t := &report.Table{
		Title: fmt.Sprintf("Top-k coverage of realistic switching (companion experiment; activity %.2f, %d samples)", activity, samples),
		Header: []string{"ckt", "couplings", "mean active", "q50 (ns)", "q95 (ns)", "q99 (ns)",
			"k@q50", "k@q95", "k@q99", "all (ns)"},
	}
	for _, name := range cfg.circuits() {
		c, err := build(name)
		if err != nil {
			return nil, err
		}
		m := noise.NewModel(c)
		dist, err := mc.Run(m, mc.Config{Activity: activity, Samples: samples, Seed: 1})
		if err != nil {
			return nil, err
		}
		maxK := 40
		res, err := runTopK(m, Addition, maxK, cfg.opt(c.NumGates()))
		if err != nil {
			return nil, err
		}
		curve, err := rescoreCurve(m, Addition, res, maxK, nil)
		if err != nil {
			return nil, err
		}
		row := []string{name, fmt.Sprintf("%d", c.NumCouplings()), fmt.Sprintf("%.1f", dist.MeanActive)}
		for _, q := range []float64{0.50, 0.95, 0.99} {
			row = append(row, report.F(dist.Quantile(q)))
		}
		for _, q := range []float64{0.50, 0.95, 0.99} {
			k, ok := dist.CoverageK(curve, q)
			cell := fmt.Sprintf("%d", k)
			if !ok {
				cell = fmt.Sprintf(">%d", k)
			}
			row = append(row, cell)
		}
		row = append(row, report.F(dist.All))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// SeedRobustness is a companion (non-paper) experiment: it regenerates
// one benchmark spec under several generator seeds and reports the
// quantities the evaluation's claims rest on. Absolute delays move
// with the seed; the claim-bearing shapes (delay bracketing, top-k
// capture fraction, runtime envelope) must not.
func SeedRobustness(spec gen.Spec, seeds []int64, k int) (*report.Table, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 4, 5}
	}
	if k <= 0 {
		k = 10
	}
	t := &report.Table{
		Title: fmt.Sprintf("Generator-seed robustness (%d gates, %d couplings, k=%d)", spec.Gates, spec.Couplings, k),
		Header: []string{"seed", "base (ns)", "all (ns)", "penalty %",
			fmt.Sprintf("add@k=%d", k), fmt.Sprintf("elim@k=%d", k), "capture %", "t(add) s"},
	}
	for _, seed := range seeds {
		sp := spec
		sp.Seed = seed
		c, err := gen.Build(sp)
		if err != nil {
			return nil, err
		}
		m := noise.NewModel(c)
		add, err := runTopK(m, Addition, k, DefaultOpt(c.NumGates()))
		if err != nil {
			return nil, err
		}
		addCurve, err := rescoreCurve(m, Addition, add, k, []int{k})
		if err != nil {
			return nil, err
		}
		del, err := runTopK(m, Elimination, k, DefaultOpt(c.NumGates()))
		if err != nil {
			return nil, err
		}
		delCurve, err := rescoreCurve(m, Elimination, del, k, []int{k})
		if err != nil {
			return nil, err
		}
		span := add.AllDelay - add.BaseDelay
		capture := 0.0
		if span > 0 {
			capture = 100 * (addCurve[k-1] - add.BaseDelay) / span
		}
		t.AddRow(fmt.Sprintf("%d", seed),
			report.F(add.BaseDelay), report.F(add.AllDelay),
			fmt.Sprintf("%.1f", 100*span/add.BaseDelay),
			report.F(addCurve[k-1]), report.F(delCurve[k-1]),
			fmt.Sprintf("%.0f", capture),
			report.F2(add.Elapsed.Seconds()))
	}
	return t, nil
}

// Fig10 reproduces the paper's Figure 10: the circuit-delay
// convergence of the addition and elimination sets as k grows, for the
// configured benchmarks. It returns one series per (circuit, mode).
func Fig10(cfg Config) ([]report.Series, error) {
	var out []report.Series
	for _, name := range cfg.fig10Circuits() {
		c, err := build(name)
		if err != nil {
			return nil, err
		}
		m := noise.NewModel(c)
		for _, mode := range []Mode{Addition, Elimination} {
			res, err := runTopK(m, mode, cfg.fig10K(), cfg.opt(c.NumGates()))
			if err != nil {
				return nil, err
			}
			curve, err := rescoreCurve(m, mode, res, cfg.fig10K(), nil)
			if err != nil {
				return nil, err
			}
			s := report.Series{Name: fmt.Sprintf("%s %s", name, mode)}
			for k := 1; k <= cfg.fig10K(); k++ {
				s.X = append(s.X, float64(k))
				s.Y = append(s.Y, curve[k-1])
			}
			out = append(out, s)
		}
	}
	return out, nil
}
