#!/usr/bin/env bash
# Server smoke test: boot a real topkd with the c17 model preloaded,
# run one query per op over the wire, and byte-diff each response
# against the committed goldens in testdata/golden/ — the wire format
# carries no timing or cache counters, so the bytes are fully
# deterministic. Finishes with a short loadgen run against the live
# server and a graceful SIGTERM drain, asserting the /readyz ladder:
# 200 while serving, 503 from the moment draining starts.
#
# Usage: scripts/server_smoke.sh [-update]   (-update rewrites goldens)
set -euo pipefail
cd "$(dirname "$0")/.."

UPDATE=${1:-}
WORK=$(mktemp -d)
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/topkd" ./cmd/topkd
"$WORK/topkd" -addr 127.0.0.1:0 -preload c17=testdata/c17.ckt \
  -drain-wait 1s >"$WORK/topkd.log" 2>&1 &
PID=$!

ADDR=
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's|.*listening on http://\([^/]*\)/.*|\1|p' "$WORK/topkd.log")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
if [ -z "$ADDR" ]; then
  echo "server_smoke: topkd never became ready" >&2
  cat "$WORK/topkd.log" >&2
  exit 1
fi

curl -fsS "http://$ADDR/healthz" >/dev/null
curl -fsS "http://$ADDR/debug/metrics" >/dev/null

# Readiness ladder, serving side: /readyz answers 200 once boot-time
# preloads are done (the listener is up earlier, answering 503).
for _ in $(seq 1 100); do
  READY=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/readyz")
  [ "$READY" = 200 ] && break
  sleep 0.1
done
[ "$READY" = 200 ] || { echo "server_smoke: /readyz $READY after boot, want 200" >&2; exit 1; }

check() { # name path body
  local name=$1 path=$2 body=$3
  curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "$body" "http://$ADDR$path" >"$WORK/$name.json"
  if [ "$UPDATE" = "-update" ]; then
    cp "$WORK/$name.json" "testdata/golden/smoke_$name.json"
  else
    diff -u "testdata/golden/smoke_$name.json" "$WORK/$name.json" || {
      echo "server_smoke: $name response drifted from golden" >&2
      exit 1
    }
  fi
}
mkdir -p testdata/golden
check addition    /v1/models/c17/query '{"op":"addition","k":2}'
check elimination /v1/models/c17/query '{"op":"elimination","k":2}'
check whatif      /v1/models/c17/query '{"op":"whatif","fix":[0]}'
check sweep       /v1/models/c17/sweep '{"op":"addition","k":1,"workers":2}'

# Malformed input still answers structured 4xx on the live wire.
code=$(curl -s -o "$WORK/bad.json" -w '%{http_code}' -X POST \
  -H 'Content-Type: application/json' -d '{"op":"bogus"}' \
  "http://$ADDR/v1/models/c17/query")
[ "$code" = 400 ] || { echo "server_smoke: bad op returned $code, want 400" >&2; exit 1; }
grep -q '"unknown-op"' "$WORK/bad.json" || {
  echo "server_smoke: bad-op body lacks typed code:" >&2
  cat "$WORK/bad.json" >&2
  exit 1
}

# Short load run against the live server (uploads its own model).
go run ./cmd/loadgen -addr "$ADDR" -duration 2s -concurrency 2 \
  -o "$WORK/loadgen.json"
grep -q '"qps"' "$WORK/loadgen.json"

# Readiness ladder, drain side: the -drain-wait window holds /readyz
# at 503 while requests still complete, so load balancers stop routing
# before anything is rejected.
kill -TERM "$PID"
DRAINED=
for _ in $(seq 1 20); do
  code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/readyz" || true)
  [ "$code" = 503 ] && { DRAINED=1; break; }
  sleep 0.05
done
[ -n "$DRAINED" ] || { echo "server_smoke: /readyz never went 503 during drain" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -H 'Content-Type: application/json' -d '{"op":"addition","k":1}' \
  "http://$ADDR/v1/models/c17/query" || true)
[ "$code" = 200 ] || {
  echo "server_smoke: drain-window query got $code, want 200 during -drain-wait" >&2
  exit 1
}
wait "$PID"
grep -q 'stopped' "$WORK/topkd.log" || {
  echo "server_smoke: no graceful-stop marker in log" >&2
  cat "$WORK/topkd.log" >&2
  exit 1
}
echo "server_smoke: OK"
