// Package budget provides the cooperative stop machinery the analysis
// stack shares: a nil-safe budget handle (B) that threads a
// context.Context plus an optional work allowance through the engine
// layers, a typed error (Error) that classifies why work stopped early
// (cancellation, deadline, exhausted work budget, crashed worker), and
// a typed capture of recovered worker panics (PanicError).
//
// The design constraint is the hot path: every engine loop polls the
// budget at bounded granularity, so the disabled path must cost one
// predictable branch. A nil *B is the disabled budget — Err and Charge
// on it return nil immediately — mirroring the nil *obs.Registry
// pattern, so callers never branch on "is there a budget".
package budget

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
)

// Reason classifies why an operation stopped before completing.
type Reason int

const (
	// None means the operation was not stopped (zero value).
	None Reason = iota
	// Canceled means the context was canceled by the caller.
	Canceled
	// DeadlineExceeded means the context's deadline expired.
	DeadlineExceeded
	// WorkExhausted means the operation consumed its work allowance.
	WorkExhausted
	// WorkerPanic means a worker goroutine panicked and was recovered.
	WorkerPanic
)

func (r Reason) String() string {
	switch r {
	case None:
		return "none"
	case Canceled:
		return "canceled"
	case DeadlineExceeded:
		return "deadline"
	case WorkExhausted:
		return "work-budget"
	case WorkerPanic:
		return "worker-panic"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// Transient reports whether the reason describes a per-attempt
// condition rather than a property of the inputs: a retry of the same
// work with a fresh budget could succeed. Caches use this to decide
// whether a failed build may be memoized (permanent errors) or must be
// evicted so a later query retries (transient ones).
func (r Reason) Transient() bool { return r != None }

// Error is the typed early-stop error the engine layers return. It
// unwraps to the matching context error so errors.Is(err,
// context.Canceled) and errors.Is(err, context.DeadlineExceeded) work
// across the whole stack.
type Error struct {
	// Reason classifies the stop.
	Reason Reason
	// Op names the layer that observed it (e.g. "noise.fixpoint").
	Op string
	// Err is the underlying cause: the context error for
	// Canceled/DeadlineExceeded, the *PanicError for WorkerPanic, nil
	// for WorkExhausted.
	Err error
}

func (e *Error) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("%s: stopped (%s): %v", e.Op, e.Reason, e.Err)
	}
	return fmt.Sprintf("%s: stopped (%s)", e.Op, e.Reason)
}

func (e *Error) Unwrap() error { return e.Err }

// MarshalJSON encodes the stop as a small structured object — the
// typed reason, the observing layer, and the cause's message. Without
// it, encoding/json's default struct walk would serialize whatever the
// cause chain holds (for a worker panic, a 16 KiB base64 stack trace)
// and leak representation details into every JSON surface that carries
// a Result with a Stopped condition.
func (e *Error) MarshalJSON() ([]byte, error) {
	var cause string
	if e.Err != nil {
		cause = e.Err.Error()
	}
	return json.Marshal(struct {
		Reason string `json:"reason"`
		Op     string `json:"op,omitempty"`
		Cause  string `json:"cause,omitempty"`
	}{e.Reason.String(), e.Op, cause})
}

// ReasonOf extracts the stop reason from an error chain, or None when
// the chain carries no *Error. Bare context errors are classified too,
// so callers can pass whatever an engine returned.
func ReasonOf(err error) Reason {
	var e *Error
	if errors.As(err, &e) {
		return e.Reason
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return WorkerPanic
	}
	switch {
	case errors.Is(err, context.Canceled):
		return Canceled
	case errors.Is(err, context.DeadlineExceeded):
		return DeadlineExceeded
	}
	return None
}

// IsStop reports whether the error is an early-stop condition (any
// budget reason). Permanent errors — bad inputs, validation failures —
// return false.
func IsStop(err error) bool { return ReasonOf(err) != None }

// PanicError captures one recovered worker panic: where, what, and the
// goroutine stack at the recover point.
type PanicError struct {
	// Op names the worker pool that recovered the panic.
	Op string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// NewPanicError captures the current goroutine's stack; call it inside
// the deferred recover handler.
func NewPanicError(op string, value any) *PanicError {
	buf := make([]byte, 16<<10)
	return &PanicError{Op: op, Value: value, Stack: buf[:runtime.Stack(buf, false)]}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: worker panic: %v", e.Op, e.Value)
}

// MarshalJSON encodes the panic as its reason, site and rendered value.
// The stack is deliberately excluded: it belongs in logs, not in wire
// payloads (and its bytes would otherwise appear as opaque base64).
func (e *PanicError) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Reason string `json:"reason"`
		Op     string `json:"op,omitempty"`
		Value  string `json:"value"`
	}{WorkerPanic.String(), e.Op, fmt.Sprint(e.Value)})
}

// B threads a context and an optional work allowance through the
// engine layers. The zero of the type is never used directly: a nil *B
// is the unlimited budget (Err and Charge return nil at the cost of
// one branch), and non-nil budgets come from New or WithWork.
//
// A budget is sticky: the first stop condition observed is recorded
// and every later Err returns the same *Error, so all workers of a
// pool agree on why they stopped. B is safe for concurrent use.
type B struct {
	ctx  context.Context
	done <-chan struct{} // ctx.Done(), resolved once; nil for background
	op   string          // label stamped on the Errors this budget mints

	limit int64        // work allowance; 0 = unlimited
	used  atomic.Int64 // work charged so far

	stop atomic.Pointer[Error] // first stop condition, sticky
}

// New returns a budget carrying only the context's cancellation and
// deadline. A background (never-canceled) context still yields a
// non-nil budget; pass nil *B for the truly unlimited case.
func New(ctx context.Context) *B { return WithWork(ctx, 0) }

// WithWork returns a budget carrying the context plus a work allowance
// of limit units (0 = unlimited). What one unit means is defined by
// the charging layer; core charges one unit per candidate aggressor
// set scored and per reference re-measurement.
func WithWork(ctx context.Context, limit int64) *B {
	if ctx == nil {
		ctx = context.Background()
	}
	return &B{ctx: ctx, done: ctx.Done(), op: "budget", limit: limit}
}

// Context returns the budget's context (context.Background for nil).
func (b *B) Context() context.Context {
	if b == nil || b.ctx == nil {
		return context.Background()
	}
	return b.ctx
}

// Err polls the budget: nil while work may continue, the sticky typed
// *Error once any stop condition holds. The fast path (nil budget, or
// live budget with no stop) is a few predictable branches and one
// channel poll — cheap enough for per-64-evaluations granularity.
func (b *B) Err() error {
	if b == nil {
		return nil
	}
	if e := b.stop.Load(); e != nil {
		return e
	}
	if b.done != nil {
		select {
		case <-b.done:
			return b.fail(reasonOfCtx(b.ctx), b.ctx.Err())
		default:
		}
	}
	return nil
}

// Charge consumes n units of the work allowance and then polls the
// budget. Exceeding the allowance trips the sticky WorkExhausted stop;
// the charge itself is atomic, so concurrent workers race benignly —
// at most a bounded overshoot of one batch per worker.
func (b *B) Charge(n int64) error {
	if b == nil {
		return nil
	}
	if b.limit > 0 && b.used.Add(n) > b.limit {
		return b.fail(WorkExhausted, nil)
	}
	return b.Err()
}

// Fail records an external stop condition (typically a recovered
// worker panic) so every other poller of this budget stops too. The
// first recorded condition wins; Fail returns the winner.
func (b *B) Fail(reason Reason, cause error) error {
	if b == nil {
		if cause != nil {
			return &Error{Reason: reason, Op: "budget", Err: cause}
		}
		return &Error{Reason: reason, Op: "budget"}
	}
	return b.fail(reason, cause)
}

func (b *B) fail(reason Reason, cause error) *Error {
	e := &Error{Reason: reason, Op: b.op, Err: cause}
	if b.stop.CompareAndSwap(nil, e) {
		return e
	}
	return b.stop.Load()
}

// Used returns the work charged so far (0 for nil).
func (b *B) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Remaining returns the unconsumed work allowance, or -1 when the
// budget is unlimited (nil B or zero limit).
func (b *B) Remaining() int64 {
	if b == nil || b.limit == 0 {
		return -1
	}
	if r := b.limit - b.used.Load(); r > 0 {
		return r
	}
	return 0
}

// reasonOfCtx maps a done context to Canceled or DeadlineExceeded.
func reasonOfCtx(ctx context.Context) Reason {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return DeadlineExceeded
	}
	return Canceled
}
