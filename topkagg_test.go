package topkagg

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const demoNetlist = `circuit demo
output y z
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 b -> m1
gate h2 INV_X1 m1 -> z
couple n1 m1 3.0
couple n1 b 1.0
`

func TestEndToEndAdditionAndElimination(t *testing.T) {
	c, err := ParseNetlistString(demoNetlist)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c)
	add, err := TopKAddition(m, 2, ExactOptions())
	if err != nil {
		t.Fatal(err)
	}
	del, err := TopKElimination(m, 2, ExactOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(add.PerK) == 0 || len(del.PerK) == 0 {
		t.Fatal("no selections produced")
	}
	if add.Top().Delay > add.AllDelay+1e-9 {
		t.Fatal("addition cannot exceed all-aggressor delay")
	}
	if del.Top().Delay < del.BaseDelay-1e-9 {
		t.Fatal("elimination cannot undercut noiseless delay")
	}
	// Duality endpoints: adding everything == removing nothing.
	if add.AllDelay != del.AllDelay || add.BaseDelay != del.BaseDelay {
		t.Fatal("addition and elimination must agree on endpoints")
	}
}

func TestBruteForceFacade(t *testing.T) {
	c, err := ParseNetlistString(demoNetlist)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c)
	bf, err := BruteForceAddition(m, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Evaluated != 2 {
		t.Fatalf("evaluated %d, want 2", bf.Evaluated)
	}
	if _, err := BruteForceElimination(m, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestLoadWriteNetlistFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "demo.ckt")
	if err := os.WriteFile(path, []byte(demoNetlist), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadNetlist(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "demo" {
		t.Fatalf("name = %q", c.Name)
	}
	if !strings.Contains(NetlistString(c), "couple n1 m1 3") {
		t.Fatal("canonical form missing coupling")
	}
	if _, err := LoadNetlist(filepath.Join(dir, "missing.ckt")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestGenerateBenchmarkFacade(t *testing.T) {
	if len(Benchmarks()) != 10 {
		t.Fatal("want ten paper benchmarks")
	}
	c, err := GenerateBenchmark("i1")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 59 {
		t.Fatalf("i1 gates = %d", c.NumGates())
	}
	if _, err := Generate(Spec{Name: "x", Gates: 10, Couplings: 5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestCouplingString(t *testing.T) {
	c, err := ParseNetlistString(demoNetlist)
	if err != nil {
		t.Fatal(err)
	}
	s := CouplingString(c, 0)
	if !strings.Contains(s, "n1") || !strings.Contains(s, "m1") || !strings.Contains(s, "3.00 fF") {
		t.Fatalf("CouplingString = %q", s)
	}
}

func TestDefaultLibraryFacade(t *testing.T) {
	if DefaultLibrary().Len() == 0 {
		t.Fatal("default library empty")
	}
}

func TestGoodKFacade(t *testing.T) {
	c, err := GenerateBenchmark("i1")
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c)
	res, err := TopKAddition(m, 12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k, _, err := GoodK(res, KneeParams{Frac: 0.05, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	if k < 1 || k > 12 {
		t.Fatalf("GoodK out of range: %d", k)
	}
}

func TestVerilogSPEFFacade(t *testing.T) {
	c, err := ParseNetlistString(demoNetlist)
	if err != nil {
		t.Fatal(err)
	}
	var v, p strings.Builder
	if err := WriteVerilog(&v, c); err != nil {
		t.Fatal(err)
	}
	if err := WriteSPEF(&p, c); err != nil {
		t.Fatal(err)
	}
	back, err := ParseVerilog(strings.NewReader(v.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplySPEF(strings.NewReader(p.String()), back); err != nil {
		t.Fatal(err)
	}
	if back.NumCouplings() != c.NumCouplings() {
		t.Fatal("verilog+spef round trip lost couplings")
	}
}

func TestFalseAggressorsFacade(t *testing.T) {
	c, err := GenerateBenchmark("i1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := FalseAggressors(NewModel(c), FilterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Active.Count()+len(res.False) != c.NumCouplings() {
		t.Fatal("classification must cover every coupling")
	}
}

func TestReportsFacade(t *testing.T) {
	c, err := ParseNetlistString(demoNetlist)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c)
	an, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(CriticalReport(an), "Critical path report") {
		t.Fatal("critical report missing header")
	}
	if !strings.Contains(NoisyNetsReport(an, 3), "Noisiest nets") {
		t.Fatal("noisy nets report missing header")
	}
}

func TestFixToTarget(t *testing.T) {
	c, err := GenerateBenchmark("i1")
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c)
	all, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	// A target just below the fully noisy delay is reachable quickly.
	target := all.CircuitDelay() - 0.01
	sel, k, ok, err := FixToTarget(m, target, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("10 fixes should shave 10 ps: best %.4f at k=%d", sel.Delay, k)
	}
	if sel.Delay > target+1e-9 || k < 1 {
		t.Fatalf("selection inconsistent: %.4f at k=%d", sel.Delay, k)
	}
	// An unreachable target reports !ok but still returns the best.
	_, _, ok, err = FixToTarget(m, all.Base.CircuitDelay()-1, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("impossible target must report !ok")
	}
}

func TestLibertyFacade(t *testing.T) {
	var lb strings.Builder
	if err := WriteLiberty(&lb, DefaultLibrary()); err != nil {
		t.Fatal(err)
	}
	lib, err := ParseLiberty(strings.NewReader(lb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if lib.Len() != DefaultLibrary().Len() {
		t.Fatal("liberty round trip lost cells")
	}
	// A circuit parsed against the round-tripped library analyzes to
	// (nearly) the same delays.
	c1, err := ParseNetlistString(demoNetlist)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ParseNetlistWith(strings.NewReader(demoNetlist), lib)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := NewModel(c1).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewModel(c2).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := a1.CircuitDelay() - a2.CircuitDelay(); d > 1e-9 || d < -1e-9 {
		t.Fatalf("library round trip changed analysis by %g", d)
	}
	// Verilog against a custom library.
	var vb strings.Builder
	if err := WriteVerilog(&vb, c1); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseVerilogWith(strings.NewReader(vb.String()), lib); err != nil {
		t.Fatal(err)
	}
}

func TestExplainFacade(t *testing.T) {
	c, err := ParseNetlistString(demoNetlist)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c)
	res, err := TopKAddition(m, 2, ExactOptions())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := ExplainAddition(m, res.Top().IDs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Contributions) != len(res.Top().IDs) {
		t.Fatal("explanation incomplete")
	}
	if _, err := ExplainElimination(m, res.Top().IDs); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeSizingFacade(t *testing.T) {
	c, err := GenerateBenchmark("i1")
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c)
	res, err := OptimizeSizing(m, 1, SizingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.After > res.Before {
		t.Fatal("sizing made things worse")
	}
}

func TestNonlinearDriverFacade(t *testing.T) {
	c, err := ParseNetlistString(demoNetlist)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c)
	m.Driver = SaturatingCSM{Alpha: 1.0}
	an, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !an.Converged {
		t.Fatal("nonlinear model must converge through the facade")
	}
	var _ DriverModel = LinearThevenin{}
}

func TestContextFacadeAndStopReason(t *testing.T) {
	c, err := ParseNetlistString(demoNetlist)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c)
	res, err := TopKAdditionCtx(context.Background(), m, 2, ExactOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerK) == 0 {
		t.Fatal("no selections produced")
	}
	if _, err := TopKEliminationCtx(context.Background(), m, 2, ExactOptions()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TopKAdditionCtx(ctx, NewModel(c), 2, ExactOptions()); err == nil {
		t.Fatal("pre-canceled context succeeded")
	} else if got := StopReason(err); got != "canceled" {
		t.Fatalf("StopReason = %q, want %q", got, "canceled")
	}
	if got := StopReason(nil); got != "" {
		t.Fatalf("StopReason(nil) = %q, want empty", got)
	}
	if got := StopReason(os.ErrNotExist); got != "" {
		t.Fatalf("StopReason(plain error) = %q, want empty", got)
	}
}

func TestQueryLimitsDegradeFacade(t *testing.T) {
	c, err := ParseNetlistString(demoNetlist)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(NewModel(c), ExactOptions())
	q := Query{Op: OpAddition, Net: WholeCircuit, K: 2,
		Limits: QueryLimits{MaxWork: 1}}
	r := a.DoCtx(context.Background(), q)
	if r.Err != nil {
		t.Fatalf("budgeted query hard-failed: %v", r.Err)
	}
	if !r.Partial || r.Degraded != "work-budget" {
		t.Fatalf("partial=%v degraded=%q, want a work-budget partial", r.Partial, r.Degraded)
	}
	// Unlimited retry on the same analyzer completes off the warm cache.
	r2 := a.Do(Query{Op: OpAddition, Net: WholeCircuit, K: 2})
	if r2.Err != nil || r2.Partial {
		t.Fatalf("unlimited retry: err=%v partial=%v", r2.Err, r2.Partial)
	}
	if len(r2.Result.PerK) == 0 {
		t.Fatal("no selections produced")
	}
}
