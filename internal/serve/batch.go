package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"topkagg/internal/budget"
	"topkagg/internal/circuit"
)

// RunBatch answers all queries over the shared model state with a pool
// of workers goroutines (workers <= 0 selects GOMAXPROCS, matching the
// bruteforce package's convention). Responses align with queries by
// index, and every Response is identical to what a serial run would
// produce: the worker count only changes wall-clock time, never
// results. Per-query failures land in their Response's Err; the batch
// itself never fails.
func (a *Analyzer) RunBatch(queries []Query, workers int) []Response {
	return a.RunBatchCtx(context.Background(), queries, workers)
}

// RunBatchCtx is RunBatch under a batch-wide context. Cancelling it
// mid-flight degrades gracefully instead of crashing or blocking:
// queries already answered keep their complete responses (byte-
// identical to an uncancelled run's), in-flight queries stop at their
// next poll point with a Partial result or a typed error, and queries
// not yet started return the typed cancellation error without running.
// Per-query Limits still apply on top of the batch context. A worker
// panic is confined to its query's Response; the pool and the shared
// cache survive.
func (a *Analyzer) RunBatchCtx(ctx context.Context, queries []Query, workers int) []Response {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	out := make([]Response, len(queries))
	if len(queries) == 0 {
		return out
	}
	var batchStart time.Time
	if a.obs != nil {
		batchStart = time.Now()
		a.obs.batches.Inc()
		a.obs.batchSize.Observe(int64(len(queries)))
	}
	bctx := budget.New(ctx) // one poll handle for the skip-unstarted check
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var workerStart time.Time
			if a.obs != nil {
				workerStart = time.Now()
			}
			for {
				i := int(next.Add(1) - 1)
				if i >= len(queries) {
					// Busy time counts from first pickup to queue drain;
					// worker_busy_ns · workers vs batch_ns shows pool
					// utilization.
					if a.obs != nil {
						a.obs.workerBusyNs.Observe(int64(time.Since(workerStart)))
					}
					return
				}
				if err := bctx.Err(); err != nil {
					out[i] = Response{Query: queries[i], Err: fmt.Errorf("serve: %w", err)}
					continue
				}
				out[i] = a.DoCtx(ctx, queries[i])
			}
		}()
	}
	wg.Wait()
	if a.obs != nil {
		a.obs.batchNs.Observe(int64(time.Since(batchStart)))
	}
	return out
}

// KSweep builds the queries of a cardinality sweep: one top-k query
// per target net at the given k (each query returns the full 1..k
// curve). It is the workload RunBatch amortizes best — every net after
// the first reuses the cached fixpoint, and repeated queries per net
// reuse the whole preparation.
func KSweep(op Op, nets []circuit.NetID, k int) []Query {
	qs := make([]Query, 0, len(nets))
	for _, n := range nets {
		qs = append(qs, Query{Op: op, Net: n, K: k})
	}
	return qs
}
