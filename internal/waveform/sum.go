package waveform

// Sum returns the pointwise sum of all waveforms. Repeated pairwise
// Add over k envelopes of p points each costs O(k²p) point visits and
// k-1 intermediate allocations; the balanced reduction here costs
// O(kp·log k) visits and allocates only the result.
func Sum(ws ...PWL) PWL {
	var acc Accumulator
	for _, w := range ws {
		acc.Add(w)
	}
	return acc.Sum().clone()
}

// Accumulator sums many waveforms by balanced pairwise reduction,
// using the same two-cursor merge Add uses (appendCombine). Every
// pairwise merge writes into its own reusable buffer from an internal
// pool — appendCombine requires a fresh destination, and distinct
// buffers mean no merge can read storage another is writing — so a
// hot loop that repeatedly combines envelope sets performs no
// steady-state allocation. The zero value is ready to use. An
// Accumulator is not safe for concurrent use; give each worker its
// own.
type Accumulator struct {
	ws   []PWL
	cur  []PWL
	pool [][]Point
}

// Reset clears the accumulated waveforms, keeping the buffers.
func (a *Accumulator) Reset() { a.ws = a.ws[:0] }

// Add appends one waveform to the set being summed. Zero (empty)
// waveforms are skipped — they cannot contribute breakpoints.
func (a *Accumulator) Add(w PWL) {
	if len(w.pts) > 0 {
		a.ws = append(a.ws, w)
	}
}

// Len returns the number of accumulated (non-zero) waveforms.
func (a *Accumulator) Len() int { return len(a.ws) }

// Sum reduces the accumulated waveforms and returns a PWL viewing the
// final merge buffer. The result aliases the accumulator's scratch:
// it is valid only until the next Sum call. Callers that need to
// retain the waveform must use SumCopy. Two waveforms take the exact
// code path of Add, so the pair sum is bit-identical; for three or
// more the tree association may differ from a left-to-right cascade
// by ulp-level rounding.
func (a *Accumulator) Sum() PWL {
	switch len(a.ws) {
	case 0:
		return Zero()
	case 1:
		// A single waveform sums to itself, bit for bit.
		return a.ws[0]
	}
	src := append(a.cur[:0], a.ws...)
	a.cur = src[:0]
	nbuf := 0
	for len(src) > 1 {
		w := 0
		for i := 0; i+1 < len(src); i += 2 {
			if nbuf == len(a.pool) {
				a.pool = append(a.pool, nil)
			}
			out := appendCombine(a.pool[nbuf][:0], src[i], src[i+1], +1)
			a.pool[nbuf] = out
			nbuf++
			src[w] = PWL{pts: out}
			w++
		}
		if len(src)%2 == 1 {
			// The unpaired waveform rides into the next round; its
			// backing (a caller waveform or an earlier round's buffer)
			// is not written again this call.
			src[w] = src[len(src)-1]
			w++
		}
		src = src[:w]
	}
	return src[0]
}

// SumCopy is Sum with the result copied out of the scratch buffer, so
// it remains valid indefinitely.
func (a *Accumulator) SumCopy() PWL { return a.Sum().clone() }

// clone returns a PWL backed by its own freshly allocated points.
func (w PWL) clone() PWL {
	if len(w.pts) == 0 {
		return Zero()
	}
	return PWL{pts: append([]Point(nil), w.pts...)}
}
