package httpapi

import (
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"topkagg/internal/circuit"
	"topkagg/internal/obs"
	"topkagg/internal/serve"
	"topkagg/internal/snapshot"
)

// Config shapes a Server. The zero value serves with no admission
// control, an 8 MiB body cap, and no default or maximum limits.
type Config struct {
	// MaxInFlight bounds concurrently executing requests (uploads,
	// queries, batches, sweeps). 0 = unlimited.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; beyond
	// it requests are rejected with 429. Meaningful only with
	// MaxInFlight > 0.
	MaxQueue int
	// MaxBodyBytes caps request bodies (0 selects 8 MiB). Oversized
	// uploads and queries get 413.
	MaxBodyBytes int64
	// DefaultTimeout applies to queries that name no timeout; 0 means
	// such queries run unbounded (subject to MaxTimeout).
	DefaultTimeout time.Duration
	// MaxTimeout clamps every per-request timeout, including "none":
	// with MaxTimeout set, a query cannot opt out of a deadline.
	MaxTimeout time.Duration
	// MaxWork clamps every per-request work allowance the same way.
	MaxWork int64
	// FixpointWorkers sizes each model's noise-fixpoint worker pool
	// (0 = GOMAXPROCS inside the engine).
	FixpointWorkers int
	// Obs publishes server and engine metrics to this registry and
	// mounts its debug endpoint (/debug/metrics, /debug/vars,
	// /debug/pprof) on the server mux. nil disables both.
	Obs *obs.Registry
}

// Server is the HTTP front end. Create with NewServer, mount as an
// http.Handler. All methods are safe for concurrent use.
type Server struct {
	cfg Config
	reg *registry
	adm *admission
	mux *http.ServeMux
	obs *httpObs

	// store persists model state when OpenState was called; nil = no
	// persistence (the default).
	store *snapshot.Store
	// ready gates /readyz: false from construction until the caller
	// declares boot complete (SetReady), and false again once draining
	// starts. Load balancers watch /readyz; /healthz only proves the
	// process is alive.
	ready atomic.Bool

	streams atomic.Int64 // live NDJSON sweeps, for draining visibility
}

// NewServer builds the server and its routes.
func NewServer(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	s := &Server{
		cfg: cfg,
		reg: newRegistry(cfg.FixpointWorkers, cfg.Obs),
		adm: newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		mux: http.NewServeMux(),
		obs: newHTTPObs(cfg.Obs),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /v1/models", s.handleList)
	s.mux.HandleFunc("POST /v1/models/{name}", s.handleUpload)
	s.mux.HandleFunc("PUT /v1/models/{name}", s.handleUpload)
	s.mux.HandleFunc("GET /v1/models/{name}", s.handleInfo)
	s.mux.HandleFunc("DELETE /v1/models/{name}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/models/{name}/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/models/{name}/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/models/{name}/sweep", s.handleSweep)
	if cfg.Obs != nil {
		s.mux.Handle("/debug/", cfg.Obs.DebugHandler())
		s.mux.Handle("GET /debug", cfg.Obs.DebugHandler())
	}
	return s
}

// ServeHTTP routes the request through the metrics wrapper.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	s.obs.requests.Inc()
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w}
	s.mux.ServeHTTP(rec, r)
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	s.obs.done(rec.status, start)
}

// Drain flips the server into shutdown mode: /readyz answers 503
// immediately (so load balancers stop routing here) and
// admission-controlled endpoints answer 503 from now on while
// in-flight requests finish. Call it before http.Server.Shutdown for
// a clean two-phase stop.
func (s *Server) Drain() {
	s.ready.Store(false)
	s.adm.drain()
}

// SetReady declares boot complete (or revokes it): /readyz flips
// between 503 and 200. The daemon calls SetReady(true) once restore
// and preloads have finished.
func (s *Server) SetReady(v bool) { s.ready.Store(v) }

// Ready reports the current /readyz state.
func (s *Server) Ready() bool { return s.ready.Load() }

// Preload registers an already-parsed circuit directly, bypassing
// HTTP — for in-process harnesses. Models registered this way carry no
// upload material and are therefore skipped by snapshot persistence;
// use PreloadUpload when the model should survive restarts.
func (s *Server) Preload(name, source string, c *circuit.Circuit) error {
	if aerr := validateModelName(name); aerr != nil {
		return aerr
	}
	s.reg.add(name, source, c, nil)
	return nil
}

// PreloadUpload registers a model from raw upload material exactly as
// a POST /v1/models/{name} would, bypassing HTTP — for boot-time
// -preload flags. The material is retained, so the model persists
// like any uploaded one.
func (s *Server) PreloadUpload(name string, up *UploadRequest) error {
	if aerr := validateModelName(name); aerr != nil {
		return aerr
	}
	c, source, aerr := buildCircuit(up)
	if aerr != nil {
		return aerr
	}
	s.reg.add(name, source, c, up)
	return s.SaveModel(name)
}

// policy is the limit policy every query resolves against.
func (s *Server) policy() limitPolicy {
	return limitPolicy{
		defaultTimeout: s.cfg.DefaultTimeout,
		maxTimeout:     s.cfg.MaxTimeout,
		maxWork:        s.cfg.MaxWork,
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the load-balancer readiness gate: 503 until boot-time
// restore/rebuild completes and again from the moment draining starts,
// 200 in between. Distinct from /healthz, which answers 200 whenever
// the process can serve at all.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "unready"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]ModelInfo{"models": s.reg.list()})
}

// uploadResult is the wire reply to a model upload.
type uploadResult struct {
	Model    ModelInfo `json:"model"`
	Replaced bool      `json:"replaced,omitempty"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if aerr := validateModelName(name); aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	up, aerr := parseUpload(w, r, s.cfg.MaxBodyBytes)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	c, source, aerr := buildCircuit(up)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	release, aerr := s.adm.acquire(r.Context())
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	defer release()
	md, replaced := s.reg.add(name, source, c, up)
	if s.obs != nil {
		s.obs.uploads.Inc()
	}
	// Persist before replying: once the client sees 200, the model
	// survives a crash. A failed save (disk full, injected fault) is
	// counted by the store and does not fail the upload — the model is
	// live in memory either way.
	_ = s.SaveModel(name)
	writeJSON(w, http.StatusOK, uploadResult{Model: md.info(), Replaced: replaced})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	md, ok := s.reg.get(r.PathValue("name"))
	if !ok {
		writeAPIError(w, errNotFound(codeUnknownModel, "no model %q", r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, md.info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.remove(name) {
		writeAPIError(w, errNotFound(codeUnknownModel, "no model %q", name))
		return
	}
	if s.store != nil {
		// A deleted model must not resurrect on the next boot.
		_ = s.store.Remove(name)
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	md, ok := s.reg.get(r.PathValue("name"))
	if !ok {
		writeAPIError(w, errNotFound(codeUnknownModel, "no model %q", r.PathValue("name")))
		return
	}
	qr, aerr := parseQuery(w, r, s.cfg.MaxBodyBytes)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	q, aerr := validateQuery(md.c, qr, s.policy(), true)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	release, aerr := s.adm.acquire(r.Context())
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	defer release()
	start := time.Now()
	resp := md.analyzer(qr.Exact).DoCtx(r.Context(), q)
	wireResp, err := ToWire(md.c, resp)
	if err != nil {
		writeAPIError(w, errEncode(err))
		return
	}
	w.Header().Set("X-Topkd-Elapsed-Ns", strconv.FormatInt(int64(time.Since(start)), 10))
	writeJSON(w, statusOf(resp), wireResp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	md, ok := s.reg.get(r.PathValue("name"))
	if !ok {
		writeAPIError(w, errNotFound(codeUnknownModel, "no model %q", r.PathValue("name")))
		return
	}
	br, aerr := parseBatch(w, r, s.cfg.MaxBodyBytes)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	queries, aerr := validateBatch(md.c, br, s.policy())
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	release, aerr := s.adm.acquire(r.Context())
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	defer release()
	start := time.Now()
	resps := md.analyzer(br.Exact).RunBatchCtx(r.Context(), queries, br.Workers)
	out := BatchResponse{Responses: make([]*QueryResponse, len(resps))}
	for i, resp := range resps {
		wireResp, err := ToWire(md.c, resp)
		if err != nil {
			// One unencodable response degrades to its structured error
			// record; the rest of the batch is unaffected.
			wireResp = &QueryResponse{Op: resp.Query.Op.String(), Error: err.Error(), ErrorReason: codeEncode}
		}
		out.Responses[i] = wireResp
	}
	w.Header().Set("X-Topkd-Elapsed-Ns", strconv.FormatInt(int64(time.Since(start)), 10))
	writeJSON(w, http.StatusOK, out)
}

// handleSweep streams a k-sweep as NDJSON: records are computed by a
// worker pool but written strictly in request order, one line per
// target net, flushed as they complete. A failed or panicked query
// yields one error record while the rest of the stream continues; a
// client disconnect cancels the remaining queries via the request
// context.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	md, ok := s.reg.get(r.PathValue("name"))
	if !ok {
		writeAPIError(w, errNotFound(codeUnknownModel, "no model %q", r.PathValue("name")))
		return
	}
	sr, aerr := parseSweep(w, r, s.cfg.MaxBodyBytes)
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	queries, aerr := validateSweep(md.c, sr, s.policy())
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	release, aerr := s.adm.acquire(r.Context())
	if aerr != nil {
		writeAPIError(w, aerr)
		return
	}
	defer release()
	s.streams.Add(1)
	defer s.streams.Add(-1)

	workers := sr.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	ctx := r.Context()
	a := md.analyzer(sr.Exact)
	results := make([]serve.Response, len(queries))
	done := make([]chan struct{}, len(queries))
	for i := range done {
		done[i] = make(chan struct{})
	}
	var next atomic.Int64
	for i := 0; i < workers; i++ {
		go func() {
			for {
				idx := int(next.Add(1) - 1)
				if idx >= len(queries) {
					return
				}
				// DoCtx confines worker panics to the Response and
				// returns promptly once ctx is canceled, so these
				// goroutines always run to pool exhaustion.
				results[idx] = a.DoCtx(ctx, queries[idx])
				close(done[idx])
			}
		}()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	for i := range queries {
		select {
		case <-done[i]:
		case <-ctx.Done():
			// Client gone: the workers drain the remaining queries
			// against the dead context (each returns at its next poll
			// point) and exit on their own.
			return
		}
		rec := SweepRecord{Index: i}
		wireResp, err := ToWire(md.c, results[i])
		if err != nil {
			wireResp = &QueryResponse{Op: results[i].Query.Op.String(), Error: err.Error(), ErrorReason: codeEncode}
		}
		rec.QueryResponse = wireResp
		line, err := marshalJSON(rec)
		if err != nil {
			// marshalJSON buffered everything, so the stream is still
			// well-formed; emit a structured error line instead.
			line, _ = marshalJSON(SweepRecord{Index: i, QueryResponse: &QueryResponse{
				Op: results[i].Query.Op.String(), Error: err.Error(), ErrorReason: codeEncode}})
		}
		if _, err := w.Write(line); err != nil {
			return
		}
		if s.obs != nil {
			s.obs.streamRecords.Inc()
		}
		_ = rc.Flush()
	}
}
