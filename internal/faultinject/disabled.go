//go:build faultinject_off

package faultinject

// enabled is false under the faultinject_off tag: Fire compiles to an
// empty function and every probe disappears from the binary.
const enabled = false
