package httpapi

import (
	"context"
	"net/http"
	"sync/atomic"
)

// admission bounds the work the server accepts: at most maxInFlight
// requests execute concurrently, at most maxQueue more wait for a
// slot, and everything beyond that is rejected immediately with a
// clean 429 — the server never builds an unbounded backlog, and a
// rejected client learns to back off instead of hanging. A draining
// server (graceful shutdown) answers 503 so load balancers fail over.
//
// A nil *admission admits everything (the unlimited configuration),
// mirroring the repo's nil-registry/nil-budget convention.
type admission struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64
	draining atomic.Bool
}

// newAdmission builds the controller; maxInFlight <= 0 returns nil
// (no admission control).
func newAdmission(maxInFlight, maxQueue int) *admission {
	if maxInFlight <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{slots: make(chan struct{}, maxInFlight), maxQueue: int64(maxQueue)}
}

// acquire claims an execution slot, waiting in the bounded queue if
// necessary. It returns a release closure on success, or the
// structured rejection (429 overloaded, 503 draining) — never an
// unbounded wait. A caller whose context dies while queued gets a 499
// marker; the response is moot (the client is gone) but the handler
// still unwinds cleanly.
func (a *admission) acquire(ctx context.Context) (release func(), aerr *apiError) {
	if a == nil {
		return func() {}, nil
	}
	if a.draining.Load() {
		return nil, &apiError{status: http.StatusServiceUnavailable, code: codeDraining,
			msg: "server is draining"}
	}
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return nil, &apiError{status: http.StatusTooManyRequests, code: codeOverloaded,
			msg: "server is at capacity (in-flight and queue both full); retry with backoff"}
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	case <-ctx.Done():
		return nil, &apiError{status: 499, code: codeBadRequest, msg: "client went away while queued"}
	}
}

func (a *admission) release() { <-a.slots }

// drain flips the controller into shutdown mode: every later acquire
// answers 503. In-flight and already-queued requests finish normally.
func (a *admission) drain() {
	if a != nil {
		a.draining.Store(true)
	}
}
