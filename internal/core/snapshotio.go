package core

import (
	"fmt"

	"topkagg/internal/circuit"
	"topkagg/internal/noise"
	"topkagg/internal/snapshot"
	"topkagg/internal/waveform"
)

// Snapshot codec for the prepared enumeration state (DESIGN.md §13).
//
// What is serialized is exactly the read-only output of newPrepared:
// victim selection, topological victim levels, dominance intervals,
// primary-aggressor envelopes with their scores, and the elimination
// scoring totals. Every float travels as its IEEE-754 bit pattern and
// every envelope breakpoint is restored verbatim (waveform.Restore, no
// Eps re-merging), so the restored prepared state is bit-identical to
// the encoded one. What is NOT serialized is pure cache: the Rule-1
// set-envelope intern table and the per-aggSet digests are rebuilt
// lazily and are excluded from the determinism surface (PR 5), so
// their absence cannot change a single response byte.
//
// The caller (internal/serve) owns section framing: EncodeShared
// appends to the encoder's current section, DecodeShared consumes the
// decoder's current section. The fixpoint analysis and Options are
// shared across every preparation of one Analyzer and are serialized
// once at that layer, then passed back in here.

// EncodeOptions appends the enumeration options to the current
// section. Options shape the prepared state (victim selection, active
// mask), so a restored Analyzer must run under bit-identical options.
func EncodeOptions(e *snapshot.Encoder, opt Options) {
	e.Int(opt.MaxListWidth)
	e.Int(opt.MaxExtend)
	e.Int(opt.MaxHigherOrder)
	e.F64(opt.SlackFrac)
	e.Bool(opt.NoDominance)
	e.Bool(opt.NoPseudo)
	e.Bool(opt.ExactPrune)
	e.Bool(opt.NoRescore)
	e.Int(opt.VerifyTop)
	e.Bool(opt.Active != nil)
	if opt.Active != nil {
		e.Bools(opt.Active)
	}
}

// DecodeOptions reads back what EncodeOptions wrote.
func DecodeOptions(d *snapshot.Decoder, c *circuit.Circuit) (Options, error) {
	var opt Options
	opt.MaxListWidth = d.Int()
	opt.MaxExtend = d.Int()
	opt.MaxHigherOrder = d.Int()
	opt.SlackFrac = d.FiniteF64()
	opt.NoDominance = d.Bool()
	opt.NoPseudo = d.Bool()
	opt.ExactPrune = d.Bool()
	opt.NoRescore = d.Bool()
	opt.VerifyTop = d.Int()
	if d.Bool() {
		opt.Active = d.Bools()
		if d.Err() == nil && len(opt.Active) != c.NumCouplings() {
			return Options{}, fmt.Errorf("core: restore: active mask covers %d of %d couplings", len(opt.Active), c.NumCouplings())
		}
	}
	return opt, d.Err()
}

func encodePWL(e *snapshot.Encoder, w waveform.PWL) {
	pts := w.Points()
	e.U32(uint32(len(pts)))
	for _, p := range pts {
		e.F64(p.T)
		e.F64(p.V)
	}
}

func decodePWL(d *snapshot.Decoder) (waveform.PWL, error) {
	n := int(d.U32())
	if d.Err() != nil {
		return waveform.PWL{}, d.Err()
	}
	if n > d.Remaining()/16 {
		return waveform.PWL{}, fmt.Errorf("core: restore: envelope claims %d points", n)
	}
	if n == 0 {
		return waveform.PWL{}, nil
	}
	pts := make([]waveform.Point, n)
	for i := range pts {
		pts[i].T = d.F64()
		pts[i].V = d.F64()
	}
	if err := d.Err(); err != nil {
		return waveform.PWL{}, err
	}
	return waveform.Restore(pts)
}

// Elimination reports whether the shared state was prepared for the
// elimination problem (false = addition). Snapshot restore uses it to
// re-key the preparation cache.
func (s *Shared) Elimination() bool { return s.p.mode == elimination }

// EncodeShared appends one preparation's full warm state to the
// current section.
func (s *Shared) EncodeShared(e *snapshot.Encoder) {
	p := s.p
	e.U8(uint8(p.mode))
	e.I64(int64(p.target))
	e.Int(p.c.NumNets())
	e.Int(p.c.NumCouplings())
	e.U32(uint32(len(p.victims)))
	for _, v := range p.victims {
		e.I64(int64(v))
	}
	e.U32(uint32(len(p.levels)))
	for _, lv := range p.levels {
		e.U32(uint32(len(lv)))
		for _, v := range lv {
			e.I64(int64(v))
		}
	}
	e.F64s(p.domLo)
	e.F64s(p.domHi)
	// Primary envelopes, framed in victim order (map iteration order
	// is randomized; snapshots of identical state must be stable).
	nPrim := 0
	for _, v := range p.victims {
		if len(p.prim[v]) > 0 {
			nPrim++
		}
	}
	e.U32(uint32(nPrim))
	for _, v := range p.victims {
		list := p.prim[v]
		if len(list) == 0 {
			continue
		}
		e.I64(int64(v))
		e.U32(uint32(len(list)))
		for _, pa := range list {
			e.I64(int64(pa.id))
			e.F64(pa.score)
			encodePWL(e, pa.env)
		}
	}
	if p.mode == elimination {
		nTot := 0
		for _, v := range p.victims {
			if !p.totalEnv[v].IsZero() {
				nTot++
			}
		}
		e.U32(uint32(nTot))
		for _, v := range p.victims {
			if p.totalEnv[v].IsZero() {
				continue
			}
			e.I64(int64(v))
			encodePWL(e, p.totalEnv[v])
		}
		e.F64s(p.propShift)
		e.F64s(p.totalDN)
	}
}

// DecodeShared reads one preparation back against a freshly built
// model and its restored fixpoint analysis. Every index is
// bounds-checked and every float validated, so arbitrary bytes yield
// a typed error, never a panic or a half-populated Shared — the value
// is constructed only after the whole section decoded cleanly.
func DecodeShared(d *snapshot.Decoder, m *noise.Model, full *noise.Analysis, opt Options) (*Shared, error) {
	c := m.C
	nNets, nCoup := c.NumNets(), c.NumCouplings()
	fail := func(format string, args ...any) (*Shared, error) {
		return nil, fmt.Errorf("core: restore: "+format, args...)
	}

	md := mode(d.U8())
	if d.Err() == nil && md != addition && md != elimination {
		return fail("unknown mode %d", md)
	}
	target := circuit.NetID(d.I64())
	if d.Err() == nil && target != WholeCircuit && (int(target) < 0 || int(target) >= nNets) {
		return fail("target %d out of range", target)
	}
	if gotNets, gotCoup := d.Int(), d.Int(); d.Err() == nil && (gotNets != nNets || gotCoup != nCoup) {
		return fail("prepared for %d nets / %d couplings, circuit has %d / %d", gotNets, gotCoup, nNets, nCoup)
	}

	nv := int(d.U32())
	if nv > d.Remaining()/8 || (d.Err() == nil && nv > nNets) {
		return fail("victim count %d out of range", nv)
	}
	victims := make([]circuit.NetID, 0, nv)
	isVictim := make([]bool, nNets)
	for i := 0; i < nv; i++ {
		v := circuit.NetID(d.I64())
		if d.Err() != nil {
			break
		}
		if int(v) < 0 || int(v) >= nNets || isVictim[v] {
			return fail("victim %d invalid or duplicated", v)
		}
		isVictim[v] = true
		victims = append(victims, v)
	}

	nl := int(d.U32())
	if d.Err() == nil && nl > nNets+1 {
		return fail("level count %d out of range", nl)
	}
	levels := make([][]circuit.NetID, 0, nl)
	leveled := 0
	for i := 0; i < nl && d.Err() == nil; i++ {
		n := int(d.U32())
		if n > d.Remaining()/8 {
			return fail("level %d claims %d victims", i, n)
		}
		lv := make([]circuit.NetID, 0, n)
		for j := 0; j < n; j++ {
			v := circuit.NetID(d.I64())
			if d.Err() != nil {
				break
			}
			if int(v) < 0 || int(v) >= nNets || !isVictim[v] {
				return fail("level %d lists non-victim %d", i, v)
			}
			lv = append(lv, v)
		}
		leveled += len(lv)
		levels = append(levels, lv)
	}
	if d.Err() == nil && leveled != len(victims) {
		return fail("levels partition %d of %d victims", leveled, len(victims))
	}

	domLo := d.FiniteF64s()
	domHi := d.FiniteF64s()
	if d.Err() == nil && (len(domLo) != nNets || len(domHi) != nNets) {
		return fail("dominance intervals cover %d/%d of %d nets", len(domLo), len(domHi), nNets)
	}

	np := int(d.U32())
	if d.Err() == nil && np > len(victims) {
		return fail("primary table lists %d of %d victims", np, len(victims))
	}
	prim := make(map[circuit.NetID][]primAgg, np)
	primIdx := make(map[circuit.NetID]map[circuit.CouplingID]int, np)
	for i := 0; i < np && d.Err() == nil; i++ {
		v := circuit.NetID(d.I64())
		if d.Err() != nil {
			break
		}
		if int(v) < 0 || int(v) >= nNets || !isVictim[v] {
			return fail("primaries for non-victim %d", v)
		}
		if _, dup := prim[v]; dup {
			return fail("primaries for victim %d repeated", v)
		}
		n := int(d.U32())
		if n > d.Remaining()/20 || (d.Err() == nil && n > nCoup) {
			return fail("victim %d claims %d primaries", v, n)
		}
		list := make([]primAgg, 0, n)
		idx := make(map[circuit.CouplingID]int, n)
		for j := 0; j < n; j++ {
			id := circuit.CouplingID(d.I64())
			score := d.FiniteF64()
			env, err := decodePWL(d)
			if err != nil {
				return nil, fmt.Errorf("core: restore: victim %d primary %d: %w", v, j, err)
			}
			if int(id) < 0 || int(id) >= nCoup {
				return fail("victim %d primary coupling %d out of range", v, id)
			}
			if _, dup := idx[id]; dup {
				return fail("victim %d primary coupling %d repeated", v, id)
			}
			idx[id] = len(list)
			list = append(list, primAgg{id: id, env: env, score: score})
		}
		prim[v] = list
		primIdx[v] = idx
	}

	var totalEnv []waveform.PWL
	var propShift, totalDN []float64
	if d.Err() == nil && md == elimination {
		totalEnv = make([]waveform.PWL, nNets)
		nt := int(d.U32())
		if d.Err() == nil && nt > len(victims) {
			return fail("totals list %d of %d victims", nt, len(victims))
		}
		seen := make(map[circuit.NetID]bool, nt)
		for i := 0; i < nt && d.Err() == nil; i++ {
			v := circuit.NetID(d.I64())
			if d.Err() != nil {
				break
			}
			if int(v) < 0 || int(v) >= nNets || !isVictim[v] || seen[v] {
				return fail("total envelope for invalid victim %d", v)
			}
			seen[v] = true
			env, err := decodePWL(d)
			if err != nil {
				return nil, fmt.Errorf("core: restore: victim %d total envelope: %w", v, err)
			}
			totalEnv[v] = env
		}
		propShift = d.FiniteF64s()
		totalDN = d.FiniteF64s()
		if d.Err() == nil && (len(propShift) != nNets || len(totalDN) != nNets) {
			return fail("elimination totals cover %d/%d of %d nets", len(propShift), len(totalDN), nNets)
		}
	}

	if err := d.Err(); err != nil {
		return nil, err
	}
	if !d.AtEnd() {
		return fail("%d trailing bytes in preparation section", d.Remaining())
	}

	p := &prepared{
		m:        m,
		c:        c,
		opt:      opt,
		mode:     md,
		base:     full.Base,
		full:     full,
		target:   target,
		victims:  victims,
		levels:   levels,
		isVictim: isVictim,
		domLo:    domLo,
		domHi:    domHi,
		prim:     prim,
		primIdx:  primIdx,
		envc:     newEnvCache(),
	}
	if md == addition {
		p.aggWin = p.base.Windows
	} else {
		p.aggWin = full.Timing.Windows
		p.totalEnv = totalEnv
		p.propShift = propShift
		p.totalDN = totalDN
	}
	return &Shared{p: p}, nil
}
