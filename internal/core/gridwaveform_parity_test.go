package core

import (
	"math"
	"testing"

	"topkagg/internal/gen"
	"topkagg/internal/noise"
)

// TestGridWaveformPerKParity extends the flat-grid kernel's parity
// guarantee (internal/noise) through the enumeration stack: the top-k
// curves — selections and per-cardinality delays — must be
// byte-identical whether the noise fixpoint runs with the grid screen
// or on the exact walk (Model.ExactWaveforms), in both modes. Every
// delay the enumeration publishes funnels through fixpoint runs, so
// this is the end-to-end form of the "the grid only discards work"
// claim of DESIGN.md §12.
func TestGridWaveformPerKParity(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		c, err := gen.Build(gen.Spec{Name: "gridperk", Gates: 14, Couplings: 16, Seed: 600 + seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, elim := range []bool{false, true} {
			run := TopKAddition
			mode := "addition"
			if elim {
				run = TopKElimination
				mode = "elimination"
			}
			m := noise.NewModel(c)
			grid, err := run(m, 4, Options{SlackFrac: 1, NoRescore: true})
			if err != nil {
				t.Fatalf("seed %d %s grid: %v", seed, mode, err)
			}
			exact, err := run(m.WithExactWaveforms(true), 4, Options{SlackFrac: 1, NoRescore: true})
			if err != nil {
				t.Fatalf("seed %d %s exact: %v", seed, mode, err)
			}
			if math.Float64bits(grid.BaseDelay) != math.Float64bits(exact.BaseDelay) ||
				math.Float64bits(grid.AllDelay) != math.Float64bits(exact.AllDelay) {
				t.Fatalf("seed %d %s: base/all delay diverge: %v/%v vs %v/%v",
					seed, mode, grid.BaseDelay, grid.AllDelay, exact.BaseDelay, exact.AllDelay)
			}
			if len(grid.PerK) != len(exact.PerK) {
				t.Fatalf("seed %d %s: curve lengths %d vs %d", seed, mode, len(grid.PerK), len(exact.PerK))
			}
			for i := range grid.PerK {
				g, e := grid.PerK[i], exact.PerK[i]
				if math.Float64bits(g.Delay) != math.Float64bits(e.Delay) {
					t.Fatalf("seed %d %s k=%d: delay %v vs %v", seed, mode, i+1, g.Delay, e.Delay)
				}
				if len(g.IDs) != len(e.IDs) {
					t.Fatalf("seed %d %s k=%d: set sizes %d vs %d", seed, mode, i+1, len(g.IDs), len(e.IDs))
				}
				for j := range g.IDs {
					if g.IDs[j] != e.IDs[j] {
						t.Fatalf("seed %d %s k=%d: sets %v vs %v", seed, mode, i+1, g.IDs, e.IDs)
					}
				}
			}
		}
	}
}
