package noise

import (
	"testing"
)

func TestDevganBoundsPulseModel(t *testing.T) {
	// The Devgan metric must upper-bound the detailed pulse peak for
	// every coupling direction on a real circuit.
	m := smallModel(t, 71)
	an, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, cp := range m.C.Couplings() {
		for _, victim := range []int{int(cp.A), int(cp.B)} {
			v := m.C.Net(m.C.Nets()[victim].ID).ID
			agg := cp.Other(v)
			slew := an.Timing.Windows[agg].Slew
			devgan := m.DevganPeak(v, cp, slew)
			pulse := m.PulseParams(v, cp, slew)
			if pulse.Vp > devgan+1e-9 {
				t.Fatalf("coupling %d victim %s: pulse peak %g exceeds Devgan bound %g",
					cp.ID, m.C.Net(v).Name, pulse.Vp, devgan)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("too few directions checked: %d", checked)
	}
}

func TestDevganCappedAtVdd(t *testing.T) {
	c := parse(t, coupledPair)
	m := NewModel(c)
	n1, _ := c.NetByName("n1")
	// An absurdly fast edge would push R·C·Vdd/slew beyond Vdd.
	if got := m.DevganPeak(n1, c.Coupling(0), 1e-9); got > m.Vdd {
		t.Fatalf("Devgan bound must cap at Vdd: %g", got)
	}
}

func TestDevganScreen(t *testing.T) {
	c := parse(t, `circuit d
output y z
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 b -> m1
gate h2 INV_X1 m1 -> z
couple n1 m1 3.0
couple n1 m1 0.01
`)
	m := NewModel(c)
	slews := make([]float64, c.NumNets())
	an, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range slews {
		slews[i] = an.Timing.Windows[i].Slew
	}
	screened := m.DevganScreen(slews, 0.02)
	if len(screened) != 1 || screened[0] != 1 {
		t.Fatalf("only the 0.01 fF coupling should screen out: %v", screened)
	}
	// Screening soundness: dropping screened couplings barely moves
	// the noisy delay.
	mask := AllMask(c)
	for _, id := range screened {
		mask[id] = false
	}
	full, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	without, err := m.Run(mask)
	if err != nil {
		t.Fatal(err)
	}
	if d := full.CircuitDelay() - without.CircuitDelay(); d > 0.001*full.CircuitDelay() {
		t.Fatalf("screened couplings changed delay by %g", d)
	}
}
