// Package kselect implements the paper's future-work item of "finding
// a 'good' value of k for reasonably fixing noise violations in a
// design": given the per-cardinality delay curve of a top-k run, it
// locates the knee beyond which growing the aggressor set buys
// negligible further delay change.
package kselect

import (
	"fmt"
	"math"

	"topkagg/internal/obs"
)

// Params tune the knee detection.
type Params struct {
	// Frac is the marginal-improvement threshold as a fraction of the
	// total noiseless-to-all-aggressor delay span. Zero selects
	// DefaultFrac.
	Frac float64
	// Window is how many consecutive cardinalities must stay below the
	// threshold for the curve to count as settled. Zero selects
	// DefaultWindow.
	Window int
	// Obs, when non-nil, records knee-detection metrics:
	// "kselect.calls", "kselect.settled" and the histograms
	// "kselect.good_k" / "kselect.curve_len".
	Obs *obs.Registry
}

// Defaults for the zero Params value.
const (
	DefaultFrac   = 0.01
	DefaultWindow = 3
)

func (p Params) frac() float64 {
	if p.Frac <= 0 {
		return DefaultFrac
	}
	return p.Frac
}

func (p Params) window() int {
	if p.Window <= 0 {
		return DefaultWindow
	}
	return p.Window
}

// GoodK returns the smallest cardinality k (1-based) such that every
// marginal delay change over the next Window cardinalities stays below
// Frac of the total delay span |all - base|. It returns an error when
// the curve is empty or the span is degenerate; if the curve never
// settles (still improving at its end), it returns len(curve) and
// settled = false.
func GoodK(curve []float64, base, all float64, p Params) (k int, settled bool, err error) {
	if len(curve) == 0 {
		return 0, false, fmt.Errorf("kselect: empty delay curve")
	}
	for i, d := range curve {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return 0, false, fmt.Errorf("kselect: non-finite delay %v at cardinality %d", d, i+1)
		}
	}
	if math.IsNaN(base) || math.IsInf(base, 0) || math.IsNaN(all) || math.IsInf(all, 0) {
		return 0, false, fmt.Errorf("kselect: non-finite delay span (base=%v, all=%v)", base, all)
	}
	defer func() { p.record(len(curve), k, settled, err) }()
	span := math.Abs(all - base)
	if span <= 0 {
		// No crosstalk at all: k = 1 trivially suffices.
		return 1, true, nil
	}
	thresh := p.frac() * span
	w := p.window()
	// marginal[i] is the improvement from cardinality i to i+1.
	for k := 1; k <= len(curve); k++ {
		ok := true
		checked := 0
		for j := k; j < len(curve) && checked < w; j++ {
			if math.Abs(curve[j]-curve[j-1]) >= thresh {
				ok = false
				break
			}
			checked++
		}
		if ok && checked == w {
			return k, true, nil
		}
	}
	return len(curve), false, nil
}

// record publishes one knee detection to the registry, if any.
func (p Params) record(curveLen, k int, settled bool, err error) {
	if p.Obs == nil || err != nil {
		return
	}
	p.Obs.Counter("kselect.calls").Inc()
	if settled {
		p.Obs.Counter("kselect.settled").Inc()
	}
	p.Obs.Histogram("kselect.good_k").Observe(int64(k))
	p.Obs.Histogram("kselect.curve_len").Observe(int64(curveLen))
}

// Knee is a convenience over GoodK that extracts the delay curve from
// per-cardinality delays and reports the delay at the chosen k.
func Knee(delays []float64, base, all float64, p Params) (k int, atK float64, settled bool, err error) {
	k, settled, err = GoodK(delays, base, all, p)
	if err != nil {
		return 0, 0, false, err
	}
	return k, delays[k-1], settled, nil
}
