// Package core implements the paper's contribution: computation of
// top-k aggressor addition and elimination sets by implicit
// enumeration with pseudo input aggressors and dominance-based pruning
// of irredundant lists (DAC'07, Sections 3.1-3.4).
package core

import (
	"time"

	"topkagg/internal/circuit"
	"topkagg/internal/noise"
)

// Options tune the enumeration. The zero value selects the defaults
// used throughout the benchmarks; tests that cross-validate against
// brute force use Exact().
type Options struct {
	// MaxListWidth caps each irredundant list after dominance pruning
	// (a beam). 0 selects DefaultListWidth; negative means unlimited
	// (the paper's exact lists).
	MaxListWidth int

	// MaxExtend caps, per victim, how many of the strongest primary
	// aggressors are used to extend lower-cardinality sets. 0 selects
	// DefaultExtend; negative means all primaries.
	MaxExtend int

	// MaxHigherOrder caps how many widening sets are considered per
	// primary aggressor when forming higher-order aggressors. 0
	// selects DefaultHigherOrder; negative means all available.
	MaxHigherOrder int

	// SlackFrac selects the victim nets: nets whose timing slack is at
	// most SlackFrac times the circuit delay are analyzed ("the
	// critical path and near-critical paths"). 0 selects
	// DefaultSlackFrac; values >= 1 analyze every net.
	SlackFrac float64

	// NoDominance disables dominance pruning (irredundant lists become
	// plain score-sorted beams). Used by the ablation benchmarks.
	NoDominance bool

	// NoPseudo disables pseudo-input-aggressor propagation. Used by
	// the ablation benchmarks.
	NoPseudo bool

	// ExactPrune disables the envelope-digest prefilter in dominance
	// pruning, running the exact PWL encapsulation check on every
	// candidate pair. The digest prefilter is conservative — results
	// are byte-identical either way (the digest-parity property test
	// pins this) — so this is purely an escape hatch for debugging and
	// for benchmarking the prefilter's effect.
	ExactPrune bool

	// NoRescore skips re-evaluating each selected set with the
	// reference noise engine; Result delays then carry the
	// enumeration's own estimates.
	NoRescore bool

	// Active restricts the enumeration to a subset of couplings (nil =
	// all). Feed it the Active mask of a false-aggressor filter pass
	// (package filter) to skip provably irrelevant couplings.
	Active noise.Mask

	// VerifyTop, when positive, re-evaluates the top VerifyTop
	// candidate sets at each cardinality with the (incremental)
	// reference noise engine and selects by measured delay instead of
	// by envelope estimate. This closes most of the gap between the
	// envelope model's estimates and ground truth — particularly for
	// the elimination problem, where joint removals interact through
	// gate masking — at the cost of VerifyTop incremental analyses per
	// cardinality.
	VerifyTop int
}

// Defaults for the zero Options value.
const (
	DefaultListWidth   = 24
	DefaultExtend      = 12
	DefaultHigherOrder = 4
	DefaultSlackFrac   = 0.30
)

// Exact returns options that disable every cap, analyze every net and
// verify the top candidates with the reference engine, matching the
// paper's exact enumeration. Intended for small circuits (brute-force
// cross-validation).
func Exact() Options {
	return Options{MaxListWidth: -1, MaxExtend: -1, MaxHigherOrder: -1, SlackFrac: 1, VerifyTop: 8}
}

func (o Options) listWidth() int {
	switch {
	case o.MaxListWidth < 0:
		return int(^uint(0) >> 1)
	case o.MaxListWidth == 0:
		return DefaultListWidth
	default:
		return o.MaxListWidth
	}
}

func (o Options) extend() int {
	switch {
	case o.MaxExtend < 0:
		return int(^uint(0) >> 1)
	case o.MaxExtend == 0:
		return DefaultExtend
	default:
		return o.MaxExtend
	}
}

func (o Options) higherOrder() int {
	switch {
	case o.MaxHigherOrder < 0:
		return int(^uint(0) >> 1)
	case o.MaxHigherOrder == 0:
		return DefaultHigherOrder
	default:
		return o.MaxHigherOrder
	}
}

func (o Options) slackFrac() float64 {
	if o.SlackFrac == 0 {
		return DefaultSlackFrac
	}
	return o.SlackFrac
}

// Selected is the winning aggressor set at one cardinality.
type Selected struct {
	// IDs are the coupling capacitors in the set, sorted.
	IDs []circuit.CouplingID
	// Estimate is the enumeration's own figure of merit: the estimated
	// circuit delay after adding (addition) or removing (elimination)
	// the set.
	Estimate float64
	// Delay is the circuit delay of the set re-evaluated with the
	// reference iterative noise engine (equal to Estimate when
	// rescoring is disabled).
	Delay float64
	// Verified distinguishes proven from heuristic figures: true when
	// Delay was measured by the reference noise engine (rescoring or
	// per-cardinality verification), false when it is the enumeration's
	// own envelope estimate. Partial results stopped mid-rescore carry
	// a mixed curve — the measured prefix true, the estimated tail
	// false.
	Verified bool
}

// Result is the outcome of a top-k run.
type Result struct {
	// K is the requested maximum cardinality.
	K int
	// PerK holds the best set per cardinality: PerK[i] is the top-(i+1)
	// aggressor set. Cardinalities for which no candidate exists (more
	// sets requested than couplings) are truncated.
	PerK []Selected
	// Victims is the number of victim nets enumerated.
	Victims int
	// BaseDelay is the noiseless circuit delay.
	BaseDelay float64
	// AllDelay is the circuit delay with every coupling active.
	AllDelay float64
	// Elapsed is the wall-clock enumeration time (excludes rescoring).
	Elapsed time.Duration
	// ElapsedPerK[i] is the cumulative enumeration time through
	// cardinality i+1 — the runtime a top-(i+1) run would have taken,
	// which is what the paper's Table 2 runtime columns report.
	ElapsedPerK []time.Duration
	// Stats instruments the enumeration: per-cardinality candidate and
	// pruning counts, list widths and wall times, plus the shared-state
	// cache counters when the run went through the serve layer.
	Stats *Stats
	// Partial reports that the enumeration stopped before reaching K
	// (deadline, cancellation or work budget): PerK holds exactly the
	// cardinalities that completed, each identical to what an unbounded
	// run computes for it. Worker panics never yield a partial result —
	// they surface as errors.
	Partial bool
	// Stopped is the typed early-stop condition when Partial is true
	// (unwraps to context.Canceled / context.DeadlineExceeded where
	// applicable; see internal/budget), nil otherwise.
	Stopped error
}

// Top returns the highest-cardinality selection (the top-k set).
func (r *Result) Top() Selected {
	if len(r.PerK) == 0 {
		return Selected{}
	}
	return r.PerK[len(r.PerK)-1]
}
