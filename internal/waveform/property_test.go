package waveform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randPWL builds a random, well-formed waveform with up to 8
// breakpoints in t ∈ [0, 10), v ∈ [-2, 2).
func randPWL(r *rand.Rand) PWL {
	n := 1 + r.Intn(8)
	pts := make([]Point, n)
	t := r.Float64()
	for i := range pts {
		pts[i] = Point{T: t, V: r.Float64()*4 - 2}
		t += 0.1 + r.Float64()
	}
	return MustNew(pts...)
}

// randPulse builds a random nonnegative pulse (the shape dominance
// operates on).
func randPulse(r *rand.Rand) PWL {
	t0 := r.Float64() * 5
	rise := 0.1 + r.Float64()
	fall := 0.1 + r.Float64()*2
	flat := r.Float64() * 2
	vp := 0.05 + r.Float64()
	return Trapezoid(t0, rise, t0+rise+flat, fall, vp)
}

func quickCfg(seed int64) *quick.Config {
	r := rand.New(rand.NewSource(seed))
	return &quick.Config{MaxCount: 200, Rand: r}
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randPWL(r), randPWL(r)
		return Equal(Add(a, b), Add(b, a), 1e-9)
	}
	if err := quick.Check(f, quickCfg(1)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAddAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randPWL(r), randPWL(r), randPWL(r)
		return Equal(Add(Add(a, b), c), Add(a, Add(b, c)), 1e-9)
	}
	if err := quick.Check(f, quickCfg(2)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAddZeroIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randPWL(r)
		return Equal(Add(a, Zero()), a, 1e-12)
	}
	if err := quick.Check(f, quickCfg(3)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickShiftPreservesValues(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randPWL(r)
		dt := r.Float64()*10 - 5
		s := a.Shift(dt)
		for _, p := range a.Points() {
			if math.Abs(s.Value(p.T+dt)-p.V) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(4)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickShiftDistributesOverAdd(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randPWL(r), randPWL(r)
		dt := r.Float64() * 3
		return Equal(Add(a, b).Shift(dt), Add(a.Shift(dt), b.Shift(dt)), 1e-9)
	}
	if err := quick.Check(f, quickCfg(5)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMaxUpperBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randPWL(r), randPWL(r)
		m := Max(a, b)
		for _, p := range append(a.Points(), b.Points()...) {
			v := m.Value(p.T)
			if v < a.Value(p.T)-1e-9 || v < b.Value(p.T)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(6)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEncapsulationReflexiveAndMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randPulse(r)
		if !Encapsulates(a, a, a.Start(), a.End(), 1e-9) {
			return false
		}
		// Adding a nonnegative pulse can only grow the waveform.
		b := randPulse(r)
		grown := Add(a, b)
		return Encapsulates(grown, a, a.Start()-1, a.End()+5, 1e-9)
	}
	if err := quick.Check(f, quickCfg(7)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEncapsulationTransitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randPulse(r)
		b := Add(c, randPulse(r))
		a := Add(b, randPulse(r))
		t0, t1 := 0.0, 20.0
		if !Encapsulates(a, b, t0, t1, 1e-9) || !Encapsulates(b, c, t0, t1, 1e-9) {
			return false // construction guarantees these
		}
		return Encapsulates(a, c, t0, t1, 1e-9)
	}
	if err := quick.Check(f, quickCfg(8)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickT50MonotoneInNoise(t *testing.T) {
	// Growing the subtracted noise envelope can never make the rising
	// victim's t50 earlier — the waveform-level form of Theorem 1.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vdd := 1.0
		ramp := RisingRamp(5, 1+r.Float64()*2, vdd)
		small := randPulse(r).Shift(3)
		big := Add(small, randPulse(r).Shift(3))
		tSmall, okS := Sub(ramp, small).LatestTimeAtOrBelow(vdd / 2)
		tBig, okB := Sub(ramp, big).LatestTimeAtOrBelow(vdd / 2)
		if !okS && !okB {
			return true // both fail to settle: nothing to compare
		}
		if okS && !okB {
			return true // bigger noise can push settling out entirely
		}
		if !okS && okB {
			return false // smaller noise cannot be the unsettled one
		}
		return tBig >= tSmall-1e-9
	}
	if err := quick.Check(f, quickCfg(9)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickValueWithinBreakpointHull(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randPWL(r)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range a.Points() {
			lo = math.Min(lo, p.V)
			hi = math.Max(hi, p.V)
		}
		for i := 0; i < 20; i++ {
			t := a.Start() + r.Float64()*(a.Width()+2) - 1
			v := a.Value(t)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(10)); err != nil {
		t.Fatal(err)
	}
}
