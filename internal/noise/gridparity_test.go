package noise

import (
	"fmt"
	"math"
	"testing"

	"topkagg/internal/gen"
)

// assertGridExactParity runs the model's fixpoint with the flat-grid
// screen enabled and disabled, at one and at eight sweep workers, and
// requires every published number to match bit for bit: the grid is a
// work-discarding device, never a value source, so any ulp of
// divergence is a soundness bug in the screen, not noise.
func assertGridExactParity(t *testing.T, m *Model) {
	t.Helper()
	type run struct {
		name string
		an   *Analysis
	}
	var runs []run
	for _, w := range []int{1, 8} {
		g, err := m.WithWorkers(w).Run(nil)
		if err != nil {
			t.Fatalf("grid run (workers=%d): %v", w, err)
		}
		e, err := m.WithWorkers(w).WithExactWaveforms(true).Run(nil)
		if err != nil {
			t.Fatalf("exact run (workers=%d): %v", w, err)
		}
		runs = append(runs,
			run{fmt.Sprintf("grid-w%d", w), g},
			run{fmt.Sprintf("exact-w%d", w), e})
	}
	ref := runs[0]
	for _, r := range runs[1:] {
		if r.an.Iterations != ref.an.Iterations || r.an.Converged != ref.an.Converged {
			t.Fatalf("%s vs %s: iterations/converged %d/%v vs %d/%v",
				r.name, ref.name, r.an.Iterations, r.an.Converged, ref.an.Iterations, ref.an.Converged)
		}
		for n := range ref.an.NetNoise {
			if math.Float64bits(r.an.NetNoise[n]) != math.Float64bits(ref.an.NetNoise[n]) {
				t.Fatalf("%s vs %s: NetNoise[%d] = %v vs %v",
					r.name, ref.name, n, r.an.NetNoise[n], ref.an.NetNoise[n])
			}
		}
		for _, n := range m.C.Nets() {
			rw, ww := r.an.Timing.Window(n.ID), ref.an.Timing.Window(n.ID)
			if math.Float64bits(rw.EAT) != math.Float64bits(ww.EAT) ||
				math.Float64bits(rw.LAT) != math.Float64bits(ww.LAT) ||
				math.Float64bits(rw.Slew) != math.Float64bits(ww.Slew) {
				t.Fatalf("%s vs %s: window[%s] = %+v vs %+v", r.name, ref.name, n.Name, rw, ww)
			}
		}
	}
}

// TestGridExactParitySeededCircuits sweeps 50 seeded random circuits
// of varied size and coupling density through the parity check. Run
// under -race this doubles as the worker-invariance certificate for
// the grid kernel.
func TestGridExactParitySeededCircuits(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 12
	}
	for seed := 0; seed < seeds; seed++ {
		spec := gen.Spec{
			Name:      fmt.Sprintf("parity%d", seed),
			Gates:     20 + (seed*7)%60,
			Couplings: 30 + (seed*13)%150,
			Seed:      int64(2000 + seed),
		}
		c, err := gen.Build(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertGridExactParity(t, NewModel(c))
	}
}

// TestGridExactParityScale runs the parity check on the scaling
// generator's circuits, whose nanosecond-scale windows and deeper
// aggressor fan-in exercise the memoized-reciprocal fallback and the
// 64-bit skip word harder than the paper mirrors do.
func TestGridExactParityScale(t *testing.T) {
	sizes := []int{1000, 10000}
	if testing.Short() {
		sizes = sizes[:1]
	}
	for _, n := range sizes {
		c, err := gen.Scale(n)
		if err != nil {
			t.Fatalf("scale %d: %v", n, err)
		}
		assertGridExactParity(t, NewModel(c))
	}
}
