package noise

import (
	"runtime"
	"sync"
	"sync/atomic"

	"topkagg/internal/budget"
	"topkagg/internal/circuit"
	"topkagg/internal/faultinject"
	"topkagg/internal/sta"
	"topkagg/internal/waveform"
)

// budgetStride is how many victim evaluations a sweep worker performs
// between budget polls: coarse enough that the disabled path (nil
// budget, one branch per poll) is invisible next to the envelope math,
// fine enough that cancellation latency stays at a handful of
// evaluations.
const budgetStride = 64

// envEntry memoizes the trapezoidal envelope one coupling induces on
// one of its two endpoint nets, keyed on the aggressor window it was
// built from. Late fixpoint iterations move only a handful of windows,
// so almost every envelope is reused bit-for-bit. The pulse parameters
// are memoized separately on the aggressor slew alone: window EAT/LAT
// drift every iteration (noise accumulates), but the slew usually does
// not, and the pulse solve is the only transcendental-math step of the
// envelope build. Rebuilds write into the entry's own point buffer, so
// after the first sweep envelope construction allocates nothing.
type envEntry struct {
	win    sta.Window
	pulse  Pulse
	env    waveform.PWL
	pts    []waveform.Point
	valid  bool
	pvalid bool
}

// evalScratch is one worker's allocation-free workspace: the k-way
// envelope accumulator, the ramp-minus-envelope subtraction buffer,
// the two-point victim ramp and the worker-local observability counts.
// Each sweep worker owns exactly one.
type evalScratch struct {
	acc    waveform.Accumulator
	sub    []waveform.Point
	ramp   [2]waveform.Point
	counts evalCounts
}

// fixpoint is the worklist-driven engine behind Run and
// RunIncremental. It keeps the circuit timing in an sta.Incremental
// (so injecting one net's noise re-times only its fanout cone) and
// between sweeps tracks exactly the victims whose inputs moved:
//
//   - a victim whose own window changed (its reference ramp moved),
//   - a victim coupled to a net whose window changed (its aggressor
//     envelope moved),
//   - a victim whose own injected noise changed last sweep (the
//     "minus own noise" reference correction moved).
//
// Every other victim would recompute, by the purely functional per-net
// evaluation, exactly the value it already has — so skipping it leaves
// the trajectory of the fixpoint ascent bit-identical to the full
// per-iteration sweep the engine replaces.
//
// Within one sweep the dirty victims are evaluated in parallel: an
// atomic cursor hands out queue slots, each worker writes only its
// slot's result, and the merge that commits results runs serially in
// queue order. No evaluation reads anything a concurrent evaluation
// writes (results are per-slot, envelope cache entries are owned by
// exactly one victim, windows and noise are frozen during the sweep),
// so results are byte-identical for any worker count.
type fixpoint struct {
	m   *Model
	inc *sta.Incremental

	victims []circuit.NetID        // nets with ≥1 active coupling, in ID order
	vIndex  []int32                // NetID -> index into victims, -1 otherwise
	vIDs    [][]circuit.CouplingID // active couplings per victim

	dirty   []bool    // per victim index: re-evaluate next sweep
	queue   []int     // victim indices evaluated this sweep, ascending
	results []float64 // per queue slot

	// notified is the per-net window as of the last time dependents
	// were told it moved. A net's window must drift more than markTol
	// from this record before its dependents re-evaluate; envelopes
	// are built from this view, so sub-threshold creep (ulp-level
	// float wobble late in the ascent) stops re-dirtying the whole
	// victim set. Movements accumulate against the record, so total
	// staleness per input is bounded by markTol.
	notified []sta.Window
	markTol  float64

	envs []envEntry // memo cache, indexed 2*CouplingID + victim side

	// Per-victim memo of the combined (summed) envelope and of the raw
	// delay-noise evaluation. Both are owned by the victim's evaluator,
	// so parallel sweeps touch disjoint entries. sumPts holds a copy of
	// the last merged envelope, valid while every per-coupling entry
	// was a cache hit; raw* hold the last delayNoise inputs/output,
	// valid while the summed envelope is unchanged.
	sumPts  [][]waveform.Point
	sumOK   []bool
	rawLAT  []float64
	rawSlew []float64
	rawVal  []float64
	rawOK   []bool

	scratch []evalScratch
	workers int

	bud *budget.B // cooperative stop; nil runs unbounded
	obs *fixObs   // resolved metric handles; nil when uninstrumented
}

// newFixpoint builds the sweep state for one analysis: the victim set
// under the given mask, its per-victim active-coupling lists, the
// envelope memo cache and the per-worker scratch. inc carries the
// starting timing and noise vector; bud (nil = unlimited) lets the
// caller cancel the ascent between evaluation batches.
func newFixpoint(m *Model, active Mask, inc *sta.Incremental, bud *budget.B) *fixpoint {
	c := m.C
	f := &fixpoint{m: m, inc: inc, bud: bud}
	f.vIndex = make([]int32, c.NumNets())
	for i := range f.vIndex {
		f.vIndex[i] = -1
	}
	for _, net := range c.Nets() {
		ids := m.activeCouplingsOf(net.ID, active, nil)
		if len(ids) == 0 {
			continue
		}
		f.vIndex[net.ID] = int32(len(f.victims))
		f.victims = append(f.victims, net.ID)
		f.vIDs = append(f.vIDs, ids)
	}
	f.dirty = make([]bool, len(f.victims))
	f.envs = make([]envEntry, 2*c.NumCouplings())
	f.notified = append([]sta.Window(nil), inc.Result().Windows...)
	f.markTol = m.Tol
	f.sumPts = make([][]waveform.Point, len(f.victims))
	f.sumOK = make([]bool, len(f.victims))
	f.rawLAT = make([]float64, len(f.victims))
	f.rawSlew = make([]float64, len(f.victims))
	f.rawVal = make([]float64, len(f.victims))
	f.rawOK = make([]bool, len(f.victims))
	f.workers = m.Workers
	if f.workers <= 0 {
		f.workers = runtime.GOMAXPROCS(0)
	}
	if f.workers > len(f.victims) {
		f.workers = len(f.victims)
	}
	if f.workers < 1 {
		f.workers = 1
	}
	f.scratch = make([]evalScratch, f.workers)
	f.obs = newFixObs(m.Obs)
	return f
}

// seedAll marks every victim for evaluation — the cold start of Run's
// first sweep.
func (f *fixpoint) seedAll() {
	for vi := range f.dirty {
		f.dirty[vi] = true
	}
}

// markChanged marks the victims whose evaluation depends on any of the
// given window-changed nets: the net itself (if a victim) and the far
// endpoints of its active couplings. A net only notifies its
// dependents when its window has drifted more than markTol since its
// last notification; that is the worklist gate of the ISSUE — nets
// whose inputs moved within tolerance are not re-evaluated.
func (f *fixpoint) markChanged(changed []circuit.NetID) {
	wins := f.inc.Result().Windows
	for _, n := range changed {
		vi := f.vIndex[n]
		if vi < 0 {
			// A net with no active coupling feeds no envelope; its
			// window move is invisible to every victim evaluation.
			continue
		}
		if !windowMoved(wins[n], f.notified[n], f.markTol) {
			continue
		}
		f.notified[n] = wins[n]
		f.dirty[vi] = true
		for _, id := range f.vIDs[vi] {
			u := f.m.C.Coupling(id).Other(n)
			if ui := f.vIndex[u]; ui >= 0 {
				f.dirty[ui] = true
			}
		}
	}
}

// windowMoved reports whether any field of the window drifted beyond
// tol.
func windowMoved(a, b sta.Window, tol float64) bool {
	return a.EAT-b.EAT > tol || b.EAT-a.EAT > tol ||
		a.LAT-b.LAT > tol || b.LAT-a.LAT > tol ||
		a.Slew-b.Slew > tol || b.Slew-a.Slew > tol
}

// iterate runs sweeps over the dirty victims until the largest noise
// movement of a sweep is within Tol or the iteration budget runs out.
// Callers seed the dirty set first (seedAll for a cold run, the change
// cone for an incremental one).
//
// A non-nil error means the ascent was stopped before settling — the
// caller's budget tripped (cancellation, deadline, work allowance) or
// a sweep worker panicked — and the in-flight timing state must be
// discarded: a sweep that stops mid-queue commits nothing, so no
// partially-evaluated iteration ever reaches the returned Analysis.
func (f *fixpoint) iterate() (iters int, converged bool, err error) {
	for iter := 1; iter <= f.m.MaxIterations; iter++ {
		if err = f.bud.Err(); err != nil {
			break
		}
		iters = iter
		f.buildQueue()
		if o := f.obs; o != nil {
			o.sweeps.Inc()
			o.worklistDepth.Observe(int64(len(f.queue)))
		}
		maxDelta, serr := f.sweep()
		if serr != nil {
			err = serr
			break
		}
		f.markChanged(f.inc.Update())
		if maxDelta <= f.m.Tol {
			converged = true
			break
		}
	}
	f.obs.flush(f.scratch, iters, converged)
	f.obs.stopObserved(err)
	return iters, converged, err
}

// buildQueue drains the dirty set into the evaluation queue in victim
// (net-ID) order.
func (f *fixpoint) buildQueue() {
	f.queue = f.queue[:0]
	for vi, d := range f.dirty {
		if d {
			f.dirty[vi] = false
			f.queue = append(f.queue, vi)
		}
	}
}

// sweep evaluates every queued victim against the frozen current
// timing, then serially commits the new noise values in victim order.
// It returns the largest single-net noise increase of the sweep and
// re-marks the victims whose noise moved (their reference correction
// changes next sweep).
//
// A sweep is all-or-nothing: when the budget trips or a worker
// panics, the commit loop never runs, so the incremental timing keeps
// exactly the previous iteration's state. Worker panics are recovered
// at the goroutine boundary (a panic in a bare goroutine would kill
// the process, not just the query) and surfaced as a typed
// *budget.PanicError.
func (f *fixpoint) sweep() (float64, error) {
	n := len(f.queue)
	if cap(f.results) < n {
		f.results = make([]float64, n)
	}
	res := f.results[:n]
	workers := f.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if err := f.sweepSerial(res); err != nil {
			return 0, err
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		var panicked atomic.Pointer[budget.PanicError]
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(s *evalScratch) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panicked.CompareAndSwap(nil, budget.NewPanicError("noise.fixpoint", r))
					}
				}()
				for {
					qi := int(next.Add(1) - 1)
					if qi >= n {
						return
					}
					if qi&(budgetStride-1) == 0 {
						if panicked.Load() != nil || f.bud.Err() != nil {
							return
						}
					}
					res[qi] = f.evaluate(f.queue[qi], s)
				}
			}(&f.scratch[w])
		}
		wg.Wait()
		if pe := panicked.Load(); pe != nil {
			return 0, pe
		}
		if err := f.bud.Err(); err != nil {
			return 0, err
		}
	}
	maxDelta := 0.0
	extra := f.inc.ExtraLAT()
	for qi, vi := range f.queue {
		v := f.victims[vi]
		nv := res[qi]
		if d := nv - extra[v]; d > maxDelta {
			maxDelta = d
		}
		// Commit exactly; re-marking of this victim and its neighbours
		// flows through the window change the commit causes (via
		// Update and the markTol gate in markChanged).
		f.inc.SetExtraLAT(v, nv)
	}
	return maxDelta, nil
}

// sweepSerial is the single-worker evaluation loop, with the same
// budget polling and panic capture as the parallel pool so callers
// see identical stop semantics at any worker count.
func (f *fixpoint) sweepSerial(res []float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = budget.NewPanicError("noise.fixpoint", r)
		}
	}()
	s := &f.scratch[0]
	for qi, vi := range f.queue {
		if qi&(budgetStride-1) == 0 {
			if e := f.bud.Err(); e != nil {
				return e
			}
		}
		res[qi] = f.evaluate(vi, s)
	}
	return nil
}

// evaluate recomputes one victim's worst-case delay noise from its
// aggressors' current windows, applying the monotone clamp of the
// fixpoint ascent. It reads only sweep-frozen state (windows, noise,
// its own cache entries) and writes only the worker's scratch, so
// concurrent evaluations of distinct victims never interfere.
func (f *fixpoint) evaluate(vi int, s *evalScratch) float64 {
	faultinject.Fire(faultinject.SiteNoiseEval)
	m := f.m
	v := f.victims[vi]
	// Envelopes and the reference ramp are built from the notified
	// window view: stale by at most markTol, stable between
	// notifications, identical for every worker count.
	wins := f.notified
	s.acc.Reset()
	s.counts.evals++
	allHit := true
	for _, id := range f.vIDs[vi] {
		cp := m.C.Coupling(id)
		agg := cp.Other(v)
		side := 0
		if cp.B == v {
			side = 1
		}
		e := &f.envs[2*int(id)+side]
		if !e.valid || e.win != wins[agg] {
			s.counts.envMisses++
			if !e.pvalid || e.win.Slew != wins[agg].Slew {
				s.counts.pulseMiss++
				e.pulse = m.PulseParams(v, cp, wins[agg].Slew)
				e.pvalid = true
			} else {
				s.counts.pulseHits++
			}
			e.win = wins[agg]
			// Inline Envelope with the memoized pulse, building into the
			// entry's reusable buffer.
			if e.pulse.Vp <= 0 {
				e.env = waveform.Zero()
			} else {
				e.pts = waveform.AppendTrapezoid(e.pts[:0],
					e.win.EAT-e.pulse.Rise, e.pulse.Rise, e.win.LAT, e.pulse.Fall, e.pulse.Vp)
				e.env = waveform.View(e.pts)
			}
			e.valid = true
			allHit = false
		} else {
			s.counts.envHits++
		}
		s.acc.Add(e.env)
	}
	var env waveform.PWL
	if allHit && f.sumOK[vi] {
		// No aggressor window moved since the last evaluation, so the
		// combined envelope is the cached one, bit for bit.
		s.counts.sumHits++
		env = waveform.View(f.sumPts[vi])
	} else {
		s.counts.sumMisses++
		f.sumPts[vi] = s.acc.Sum().AppendTo(f.sumPts[vi][:0])
		env = waveform.View(f.sumPts[vi])
		f.sumOK[vi] = true
		f.rawOK[vi] = false
	}
	// The reference victim transition includes noise propagated from
	// the fanin but not the victim's own injected noise (which is
	// exactly what is being recomputed here).
	vw := wins[v]
	prev := f.inc.ExtraLAT()[v]
	vw.LAT -= prev
	var n float64
	if f.rawOK[vi] && vw.LAT == f.rawLAT[vi] && vw.Slew == f.rawSlew[vi] {
		// Identical envelope, reference arrival and slew: the pure
		// delay-noise function returns the memoized value.
		s.counts.rawHits++
		n = f.rawVal[vi]
	} else {
		s.counts.rawMisses++
		n = m.delayNoiseInto(vw, env, s)
		f.rawLAT[vi], f.rawSlew[vi], f.rawVal[vi] = vw.LAT, vw.Slew, n
		f.rawOK[vi] = true
	}
	// Keep per-net noise monotone across iterations: arrival shifts
	// can move a victim past an aggressor envelope and make the raw
	// recomputation oscillate, but delay noise once observed is never
	// un-observed (the fixpoint lattice of Zhou [4] is ascended from
	// below).
	if n < prev {
		n = prev
	}
	return n
}
