package core

import (
	"sort"
	"strconv"
	"strings"

	"topkagg/internal/circuit"
	"topkagg/internal/waveform"
)

// aggSet is one candidate aggressor set at a specific victim net: the
// coupling IDs it contains, its combined noise envelope expressed at
// that victim, and its score there (delay noise for the addition
// problem, delay-noise reduction for elimination).
type aggSet struct {
	ids []circuit.CouplingID // sorted, unique
	env waveform.PWL         // combined local envelope at the current victim
	// shift is the arrival-time reduction inherited from the fanin
	// (elimination only): propagated shifts do not superpose linearly
	// as envelopes, so they are carried explicitly and applied to the
	// victim's propagated-noise pseudo envelope during scoring.
	shift float64
	score float64
}

// key returns a canonical identity string for deduplication.
func (s *aggSet) key() string {
	var sb strings.Builder
	for i, id := range s.ids {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(int(id)))
	}
	return sb.String()
}

// contains reports whether the set already holds coupling id.
func (s *aggSet) contains(id circuit.CouplingID) bool {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	return i < len(s.ids) && s.ids[i] == id
}

// withID returns a new sorted ID slice extending s by id. The caller
// must ensure id is not already present.
func (s *aggSet) withID(id circuit.CouplingID) []circuit.CouplingID {
	out := make([]circuit.CouplingID, 0, len(s.ids)+1)
	ins := false
	for _, x := range s.ids {
		if !ins && id < x {
			out = append(out, id)
			ins = true
		}
		out = append(out, x)
	}
	if !ins {
		out = append(out, id)
	}
	return out
}

// copyIDs returns a defensive copy of an ID slice.
func copyIDs(ids []circuit.CouplingID) []circuit.CouplingID {
	out := make([]circuit.CouplingID, len(ids))
	copy(out, ids)
	return out
}

// dedupe collapses candidates with identical ID sets, keeping the
// higher score (identical sets can be generated through different
// construction rules with different envelope models; the higher score
// is the sharper estimate).
func dedupe(cands []*aggSet) []*aggSet {
	byKey := make(map[string]*aggSet, len(cands))
	order := make([]string, 0, len(cands))
	for _, c := range cands {
		k := c.key()
		if prev, ok := byKey[k]; ok {
			if c.score > prev.score {
				byKey[k] = c
			}
			continue
		}
		byKey[k] = c
		order = append(order, k)
	}
	out := make([]*aggSet, 0, len(byKey))
	for _, k := range order {
		out = append(out, byKey[k])
	}
	return out
}

// sortByScore orders candidates by descending score, breaking ties by
// canonical key so the enumeration is deterministic.
func sortByScore(cands []*aggSet) {
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].key() < cands[j].key()
	})
}

// prune reduces a candidate list to an irredundant list: dominated
// sets — whose envelope is encapsulated by a kept set's envelope over
// the dominance interval [lo, hi] and whose inherited shift does not
// exceed the kept set's — are removed, and the result is beam-capped
// at width. Candidates must already be score-sorted descending;
// because domination implies a score at least as high, checking each
// candidate only against already-kept sets is sufficient. The two
// counters report how many candidates each mechanism discarded.
func prune(cands []*aggSet, lo, hi float64, width int, noDominance bool) (kept []*aggSet, prunedDom, prunedBeam int) {
	kept = make([]*aggSet, 0, min(len(cands), width))
	for n, c := range cands {
		if len(kept) >= width {
			prunedBeam = len(cands) - n
			break
		}
		if !noDominance {
			dominated := false
			_, cPeak := c.env.Peak()
			for _, p := range kept {
				if p.shift < c.shift-waveform.Eps {
					continue // smaller inherited shift cannot dominate
				}
				if _, pPeak := p.env.Peak(); pPeak < cPeak-waveform.Eps {
					continue // quick reject: cannot encapsulate a higher peak
				}
				if waveform.Encapsulates(p.env, c.env, lo, hi, waveform.Eps) {
					dominated = true
					break
				}
			}
			if dominated {
				prunedDom++
				continue
			}
		}
		kept = append(kept, c)
	}
	return kept, prunedDom, prunedBeam
}
