// Package sta implements the static-timing substrate: propagation of
// early/late arrival windows (EAT/LAT) and slews through the gate
// graph in topological order, circuit delay, and critical-path
// extraction. Timing windows produced here feed the noise envelopes of
// the linear noise-analysis framework.
package sta

import (
	"fmt"
	"math"
	"sort"

	"topkagg/internal/cell"
	"topkagg/internal/circuit"
)

// Window is the switching window of one net: the earliest and latest
// 50%-crossing times of any transition on it, plus the transition time
// (slew) of the latest-arriving transition.
type Window struct {
	EAT  float64 // earliest arrival time, ns
	LAT  float64 // latest arrival time, ns
	Slew float64 // slew of the latest transition, ns
}

// Width returns LAT - EAT.
func (w Window) Width() float64 { return w.LAT - w.EAT }

// Overlaps reports whether two windows, each widened by guard, share
// any instant.
func (w Window) Overlaps(o Window, guard float64) bool {
	return w.EAT-guard <= o.LAT+guard && o.EAT-guard <= w.LAT+guard
}

// Options configure an analysis run.
type Options struct {
	// PIArrival returns the window of a primary input. Nil means all
	// inputs switch exactly at t=0 with DefaultPISlew.
	PIArrival func(circuit.NetID) Window
	// ExtraLAT, if non-nil, is added to the latest arrival of each net
	// as it propagates (indexed by NetID). This is how delay noise is
	// injected into timing windows by the noise engine.
	ExtraLAT []float64
}

// DefaultPISlew is the input transition time assumed at primary
// inputs, ns.
const DefaultPISlew = 0.05

// Result holds the timing of one analysis run.
type Result struct {
	Circuit *circuit.Circuit
	Windows []Window // indexed by NetID
	order   []circuit.NetID
}

// NonFiniteError reports a NaN or infinite arrival produced during
// window propagation — corrupt cell data (NaN delay tables, infinite
// loads) would otherwise silently poison every downstream noise figure.
type NonFiniteError struct {
	// Net is the first net (in topological order) whose window went
	// non-finite.
	Net circuit.NetID
	// Window is the offending window.
	Window Window
}

func (e *NonFiniteError) Error() string {
	return fmt.Sprintf("sta: non-finite window on net %d (EAT=%v LAT=%v slew=%v)",
		e.Net, e.Window.EAT, e.Window.LAT, e.Window.Slew)
}

// finite reports whether every figure of the window is a finite float.
func (w Window) finite() bool {
	return !math.IsNaN(w.EAT) && !math.IsInf(w.EAT, 0) &&
		!math.IsNaN(w.LAT) && !math.IsInf(w.LAT, 0) &&
		!math.IsNaN(w.Slew) && !math.IsInf(w.Slew, 0)
}

// Analyze runs static timing analysis and returns per-net windows.
//
// The propagation walks the circuit's columnar snapshot
// (circuit.Columns): topological order, gate-input CSR spans and the
// precomputed per-net load capacitance, with the cell model flattened
// into per-gate coefficient columns. The per-step arithmetic is the
// cell model's, operation for operation, so the windows are
// bit-identical to a pointer-model propagation.
func Analyze(c *circuit.Circuit, opt Options) (*Result, error) {
	cols, err := c.Columns()
	if err != nil {
		return nil, fmt.Errorf("sta: %w", err)
	}
	order := cols.TopoNets
	res := &Result{Circuit: c, Windows: make([]Window, c.NumNets()), order: order}
	for _, nid := range order {
		w := computeWindow(cols, opt, res.Windows, nid)
		if !w.finite() {
			return nil, &NonFiniteError{Net: nid, Window: w}
		}
		res.Windows[nid] = w
	}
	return res, nil
}

// RestoreResult reconstructs an analysis Result from previously
// computed windows (a snapshot round trip): the evaluation order is
// re-derived from the circuit's columnar view — it is a pure function
// of the topology, so the restored Result is indistinguishable from
// the one the windows were taken from. Every window must be finite
// (corrupt snapshots are refused, exactly as Analyze refuses corrupt
// cell data) and the slice must cover the circuit's nets.
func RestoreResult(c *circuit.Circuit, windows []Window) (*Result, error) {
	if len(windows) != c.NumNets() {
		return nil, fmt.Errorf("sta: restore: %d windows for %d nets", len(windows), c.NumNets())
	}
	for i := range windows {
		if !windows[i].finite() {
			return nil, &NonFiniteError{Net: circuit.NetID(i), Window: windows[i]}
		}
	}
	cols, err := c.Columns()
	if err != nil {
		return nil, fmt.Errorf("sta: restore: %w", err)
	}
	return &Result{Circuit: c, Windows: windows, order: cols.TopoNets}, nil
}

// computeWindow evaluates one net's window from its fanin windows —
// the single propagation step shared by the full and incremental
// analyses, so both produce bit-identical results. The arithmetic is
// exactly cell.Delay/cell.OutputSlew over the precomputed LoadCap:
// the invariant (D0 + KD·load) part is hoisted out of the input loop,
// which preserves the original association order.
func computeWindow(k *circuit.Columns, opt Options, windows []Window, nid circuit.NetID) Window {
	drv := k.Driver[nid]
	if drv < 0 {
		w := Window{EAT: 0, LAT: 0, Slew: DefaultPISlew}
		if opt.PIArrival != nil {
			w = opt.PIArrival(nid)
		}
		if opt.ExtraLAT != nil {
			w.LAT += opt.ExtraLAT[nid]
		}
		return w
	}
	load := k.LoadCap[nid]
	dBase := k.D0[drv] + k.KD[drv]*load
	sBase := k.S0[drv] + k.KS[drv]*load
	eat := math.Inf(1)
	lat := math.Inf(-1)
	slew := DefaultPISlew
	for ii := k.GateInOff[drv]; ii < k.GateInOff[drv+1]; ii++ {
		iw := windows[k.GateIn[ii]]
		d := dBase + cell.DelaySlewFrac*iw.Slew
		if t := iw.EAT + d; t < eat {
			eat = t
		}
		if t := iw.LAT + d; t > lat {
			lat = t
			s := sBase + cell.SlewSlewFrac*iw.Slew
			if s < cell.MinSlew {
				s = cell.MinSlew
			}
			slew = s
		}
	}
	w := Window{EAT: eat, LAT: lat, Slew: slew}
	if opt.ExtraLAT != nil {
		w.LAT += opt.ExtraLAT[nid]
	}
	return w
}

// Window returns the timing window of a net.
func (r *Result) Window(n circuit.NetID) Window { return r.Windows[n] }

// CircuitDelay returns the maximum latest arrival over the primary
// outputs — the circuit delay the paper's tables report.
func (r *Result) CircuitDelay() float64 {
	var d float64
	for _, po := range r.Circuit.POs() {
		if l := r.Windows[po].LAT; l > d {
			d = l
		}
	}
	return d
}

// Sink returns the primary output with the largest latest arrival —
// the "sink node" at which the paper reads the final I-list.
func (r *Result) Sink() circuit.NetID {
	pos := r.Circuit.POs()
	if len(pos) == 0 {
		return circuit.NetID(-1)
	}
	best := pos[0]
	for _, po := range pos[1:] {
		if r.Windows[po].LAT > r.Windows[best].LAT {
			best = po
		}
	}
	return best
}

// CriticalPath returns net IDs from a primary input to the sink along
// the latest-arrival path.
func (r *Result) CriticalPath() []circuit.NetID {
	cur := r.Sink()
	if cur < 0 {
		return nil
	}
	path := []circuit.NetID{cur}
	c := r.Circuit
	for {
		net := c.Net(cur)
		if net.Driver == circuit.NoGate {
			break
		}
		g := c.Gate(net.Driver)
		load := c.LoadCap(cur)
		// Pick the input whose late path determined this net's LAT.
		best := g.Inputs[0]
		bestT := math.Inf(-1)
		for _, in := range g.Inputs {
			iw := r.Windows[in]
			if t := iw.LAT + g.Cell.Delay(load, iw.Slew); t > bestT {
				bestT = t
				best = in
			}
		}
		cur = best
		path = append(path, cur)
	}
	// Reverse to PI-to-sink order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// TopoOrder returns the net evaluation order used by the analysis.
func (r *Result) TopoOrder() []circuit.NetID { return r.order }

// RequiredTimes computes per-net required arrival times against a
// timing constraint at the primary outputs: every PO must arrive by
// clock (a clock period or output-required time). Passing clock <= 0
// constrains the POs to the observed circuit delay, which makes the
// critical path zero-slack. Nets that reach no PO have +Inf required
// time.
func (r *Result) RequiredTimes(clock float64) []float64 {
	c := r.Circuit
	if clock <= 0 {
		clock = r.CircuitDelay()
	}
	req := make([]float64, c.NumNets())
	for i := range req {
		req[i] = math.Inf(1)
	}
	for _, po := range c.POs() {
		req[po] = clock
	}
	for i := len(r.order) - 1; i >= 0; i-- {
		v := r.order[i]
		for _, gid := range c.Net(v).Loads {
			g := c.Gate(gid)
			out := g.Output
			d := g.Cell.Delay(c.LoadCap(out), r.Windows[v].Slew)
			if t := req[out] - d; t < req[v] {
				req[v] = t
			}
		}
	}
	return req
}

// Slacks returns per-net slack (required minus latest arrival) against
// the given constraint; see RequiredTimes for the clock convention.
func (r *Result) Slacks(clock float64) []float64 {
	req := r.RequiredTimes(clock)
	out := make([]float64, len(req))
	for i, q := range req {
		out[i] = q - r.Windows[i].LAT
	}
	return out
}

// Violations returns the nets with negative slack against the clock
// constraint, worst first.
func (r *Result) Violations(clock float64) []circuit.NetID {
	slacks := r.Slacks(clock)
	var out []circuit.NetID
	for i, s := range slacks {
		if s < 0 {
			out = append(out, circuit.NetID(i))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if slacks[out[i]] != slacks[out[j]] {
			return slacks[out[i]] < slacks[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
