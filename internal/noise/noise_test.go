package noise

import (
	"math"
	"testing"

	"topkagg/internal/cell"
	"topkagg/internal/circuit"
	"topkagg/internal/netlist"
	"topkagg/internal/sta"
	"topkagg/internal/waveform"
)

func parse(t *testing.T, src string) *circuit.Circuit {
	t.Helper()
	c, err := netlist.ParseString(src, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// coupledPair: two independent inverter chains with one coupling cap
// between their internal nets.
const coupledPair = `circuit pair
output y z
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 b -> m1
gate h2 INV_X1 m1 -> z
couple n1 m1 3.0
`

func TestMaskHelpers(t *testing.T) {
	c := parse(t, coupledPair)
	if got := NewMask(c).Count(); got != 0 {
		t.Fatalf("NewMask count = %d", got)
	}
	if got := AllMask(c).Count(); got != 1 {
		t.Fatalf("AllMask count = %d", got)
	}
	m := MaskOf(c, []circuit.CouplingID{0})
	if !m.Active(0) || m.Count() != 1 {
		t.Fatal("MaskOf broken")
	}
	w := WithoutMask(c, []circuit.CouplingID{0})
	if w.Active(0) || w.Count() != 0 {
		t.Fatal("WithoutMask broken")
	}
	var nilMask Mask
	if !nilMask.Active(0) {
		t.Fatal("nil mask must mean all-active")
	}
	cl := m.Clone()
	cl[0] = false
	if !m.Active(0) {
		t.Fatal("Clone must not alias")
	}
}

func TestPulsePeakPhysics(t *testing.T) {
	c := parse(t, coupledPair)
	m := NewModel(c)
	n1, _ := c.NetByName("n1")
	cp := c.Coupling(0)

	p := m.PulseParams(n1, cp, 0.05)
	if p.Vp <= 0 || p.Vp >= m.Vdd {
		t.Fatalf("pulse peak out of range: %g", p.Vp)
	}
	// Fast aggressor edges saturate at the charge-sharing limit.
	pFast := m.PulseParams(n1, cp, 1e-4)
	cv := c.Net(n1).Cgnd + c.PinLoad(n1)
	limit := m.Vdd * cp.Cc / (cp.Cc + cv)
	if pFast.Vp > limit+1e-9 {
		t.Fatalf("peak %g exceeds charge-sharing limit %g", pFast.Vp, limit)
	}
	if math.Abs(pFast.Vp-limit)/limit > 0.05 {
		t.Fatalf("fast edge should approach limit: %g vs %g", pFast.Vp, limit)
	}
	// Slow aggressor edges couple less noise.
	pSlow := m.PulseParams(n1, cp, 1.0)
	if pSlow.Vp >= p.Vp {
		t.Fatalf("slower edge must couple less: %g vs %g", pSlow.Vp, p.Vp)
	}
}

func TestPulsePeakGrowsWithCoupling(t *testing.T) {
	c := parse(t, coupledPair)
	m := NewModel(c)
	n1, _ := c.NetByName("n1")
	small := &circuit.Coupling{A: c.Coupling(0).A, B: c.Coupling(0).B, Cc: 1}
	big := &circuit.Coupling{A: c.Coupling(0).A, B: c.Coupling(0).B, Cc: 5}
	if m.PulseParams(n1, big, 0.05).Vp <= m.PulseParams(n1, small, 0.05).Vp {
		t.Fatal("bigger Cc must couple more noise")
	}
}

func TestEnvelopeTracksWindow(t *testing.T) {
	c := parse(t, coupledPair)
	m := NewModel(c)
	n1, _ := c.NetByName("n1")
	cp := c.Coupling(0)
	narrow := m.Envelope(n1, cp, sta.Window{EAT: 1, LAT: 1, Slew: 0.05})
	wide := m.Envelope(n1, cp, sta.Window{EAT: 1, LAT: 2, Slew: 0.05})
	if wide.Width() <= narrow.Width() {
		t.Fatal("wider aggressor window must widen the envelope")
	}
	// Peaks are equal: window width changes duration, not magnitude.
	_, pvN := narrow.Peak()
	_, pvW := wide.Peak()
	if math.Abs(pvN-pvW) > 1e-9 {
		t.Fatalf("envelope peaks differ: %g vs %g", pvN, pvW)
	}
	// The envelope must encapsulate the pulse placed anywhere in the
	// window (that is its definition).
	for _, ta := range []float64{1, 1.3, 1.7, 2} {
		pulse := m.PulseAt(n1, cp, 0.05, ta)
		if !waveform.Encapsulates(wide, pulse, 0, 10, 1e-9) {
			t.Fatalf("envelope does not bound pulse at ta=%g", ta)
		}
	}
}

func TestDelayNoiseAnalytic(t *testing.T) {
	c := parse(t, coupledPair)
	m := NewModel(c) // Vdd = 1.2
	vw := sta.Window{EAT: 5, LAT: 5, Slew: 0.2}
	env := waveform.Trapezoid(4, 0.1, 6, 0.1, 0.3)
	got := m.DelayNoise(vw, env)
	want := vw.Slew * 0.3 / m.Vdd // flat noise level shifts t50 linearly
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("analytic delay noise: got %g want %g", got, want)
	}
}

func TestDelayNoiseZeroCases(t *testing.T) {
	c := parse(t, coupledPair)
	m := NewModel(c)
	vw := sta.Window{LAT: 5, Slew: 0.1}
	if m.DelayNoise(vw, waveform.Zero()) != 0 {
		t.Fatal("zero envelope must give zero noise")
	}
	// Envelope entirely before the victim transition (the Fig. 4
	// "restricted to the left" situation) produces no delay noise.
	early := waveform.TrianglePulse(1, 0.2, 0.2, 0.6)
	if m.DelayNoise(vw, early) != 0 {
		t.Fatal("early envelope must give zero noise")
	}
}

func TestDelayNoiseMonotoneInEnvelope(t *testing.T) {
	c := parse(t, coupledPair)
	m := NewModel(c)
	vw := sta.Window{LAT: 5, Slew: 0.2}
	small := waveform.TrianglePulse(4.8, 0.2, 0.3, 0.2)
	big := waveform.Add(small, waveform.TrianglePulse(4.9, 0.2, 0.3, 0.2))
	if m.DelayNoise(vw, big) < m.DelayNoise(vw, small) {
		t.Fatal("larger envelope must not reduce delay noise")
	}
}

func TestDelayNoiseHugeEnvelopeCapped(t *testing.T) {
	c := parse(t, coupledPair)
	m := NewModel(c)
	vw := sta.Window{LAT: 5, Slew: 0.1}
	huge := waveform.Trapezoid(4, 0.1, 8, 0.1, 2.0) // above Vdd
	got := m.DelayNoise(vw, huge)
	if got <= 0 || got > 8.2-5+1e-9 {
		t.Fatalf("huge envelope noise out of bounds: %g", got)
	}
}

func TestRunNoCouplingsMatchesBase(t *testing.T) {
	c := parse(t, coupledPair)
	m := NewModel(c)
	an, err := m.Run(NewMask(c))
	if err != nil {
		t.Fatal(err)
	}
	if !an.Converged || an.Iterations != 1 {
		t.Fatalf("empty mask must converge immediately: %+v", an)
	}
	if an.CircuitDelay() != an.Base.CircuitDelay() {
		t.Fatal("no active couplings must not change delay")
	}
}

func TestRunAddsDelay(t *testing.T) {
	c := parse(t, coupledPair)
	m := NewModel(c)
	noisy, err := m.Run(nil) // all active
	if err != nil {
		t.Fatal(err)
	}
	if !noisy.Converged {
		t.Fatal("fixpoint must converge")
	}
	if noisy.CircuitDelay() <= noisy.Base.CircuitDelay() {
		t.Fatalf("crosstalk must slow the circuit: %g vs %g",
			noisy.CircuitDelay(), noisy.Base.CircuitDelay())
	}
	n1, _ := c.NetByName("n1")
	if noisy.NetNoise[n1] <= 0 {
		t.Fatal("coupled net must see delay noise")
	}
}

func TestRunMonotoneInMask(t *testing.T) {
	src := `circuit tri
output y z w
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 b -> m1
gate h2 INV_X1 m1 -> z
gate f1 INV_X1 d -> p1
gate f2 INV_X1 p1 -> w
couple n1 m1 3.0
couple m1 p1 2.0
couple n1 p1 1.5
`
	c := parse(t, src)
	m := NewModel(c)
	prev := 0.0
	for n := 0; n <= c.NumCouplings(); n++ {
		ids := make([]circuit.CouplingID, n)
		for i := range ids {
			ids[i] = circuit.CouplingID(i)
		}
		an, err := m.Run(MaskOf(c, ids))
		if err != nil {
			t.Fatal(err)
		}
		if an.CircuitDelay() < prev-1e-9 {
			t.Fatalf("activating coupling %d reduced delay: %g < %g", n, an.CircuitDelay(), prev)
		}
		prev = an.CircuitDelay()
	}
}

// TestIndirectAggressorIterations reproduces the Fig.-1 situation:
// a chain of couplings a3→a2→a1→v needs multiple fixpoint iterations
// because each link's noise widens the next link's window.
func TestIndirectAggressorIterations(t *testing.T) {
	src := `circuit fig1
output y
gate v1 INV_X1 a -> v1n
gate v2 INV_X1 v1n -> v2n
gate v3 INV_X1 v2n -> v3n
gate v4 INV_X1 v3n -> y
gate a1g INV_X1 b -> a1n
gate a1h INV_X1 a1n -> a1m
gate a1i INV_X1 a1m -> a1o
gate a2g INV_X1 d -> a2n
gate a2h INV_X1 a2n -> a2m
gate a3g INV_X1 e -> a3n
couple a3n a2m 4.0
couple a2m a1o 4.0
couple a1o v3n 4.0
`
	c := parse(t, src)
	m := NewModel(c)
	an, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !an.Converged {
		t.Fatal("must converge")
	}
	if an.Iterations < 3 {
		t.Fatalf("indirect-aggressor chain should need >= 3 iterations, got %d", an.Iterations)
	}
	if an.CircuitDelay() <= an.Base.CircuitDelay() {
		t.Fatal("chain coupling must add delay")
	}
}

func TestPropagatedShift(t *testing.T) {
	c := parse(t, `circuit prop
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 b -> m1
couple n1 m1 4.0
`)
	m := NewModel(c)
	an, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	y, _ := c.NetByName("y")
	n1, _ := c.NetByName("n1")
	if an.NetNoise[n1] <= 0 {
		t.Fatal("n1 must see direct noise")
	}
	// y has no incident coupling: all of its shift is propagated.
	if got, want := an.PropagatedShift(y), an.Timing.Window(y).LAT-an.Base.Window(y).LAT; math.Abs(got-want) > 1e-9 {
		t.Fatalf("propagated shift at y = %g, want %g", got, want)
	}
	if an.PropagatedShift(y) <= 0 {
		t.Fatal("upstream noise must propagate to y")
	}
}

func TestDelayUpperBoundDominatesActual(t *testing.T) {
	c := parse(t, coupledPair)
	m := NewModel(c)
	an, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := c.NetByName("n1")
	ub := m.DelayUpperBound(n1, an.Timing.Windows)
	if ub+1e-9 < an.NetNoise[n1] {
		t.Fatalf("infinite-window bound %g below actual noise %g", ub, an.NetNoise[n1])
	}
}

func TestInfiniteEnvelopeCoversFiniteOne(t *testing.T) {
	c := parse(t, coupledPair)
	m := NewModel(c)
	n1, _ := c.NetByName("n1")
	m1, _ := c.NetByName("m1")
	cp := c.Coupling(0)
	r, err := sta.Analyze(c, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fin := m.Envelope(n1, cp, r.Window(m1))
	inf := m.InfiniteEnvelope(n1, cp, r.Window(n1), r.Window(m1).Slew)
	vw := r.Window(n1)
	if !waveform.Encapsulates(inf, fin, vw.LAT-vw.Slew, vw.LAT+2, 1e-9) {
		t.Fatal("infinite-window envelope must cover the finite one near the victim transition")
	}
}

func TestDelayUpperBoundRespectsSubsets(t *testing.T) {
	// The infinite-window bound must also cover every coupling-subset
	// scenario, not just the all-active one.
	c := parse(t, `circuit ub
output y z
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 b -> m1
gate h2 INV_X1 m1 -> z
couple n1 m1 3.0
couple n1 b 1.0
`)
	m := NewModel(c)
	full, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := c.NetByName("n1")
	ub := m.DelayUpperBound(n1, full.Timing.Windows)
	for mask := 0; mask < 4; mask++ {
		mk := NewMask(c)
		mk[0] = mask&1 != 0
		mk[1] = mask&2 != 0
		an, err := m.Run(mk)
		if err != nil {
			t.Fatal(err)
		}
		if an.NetNoise[n1] > ub+1e-9 {
			t.Fatalf("mask %b: noise %g exceeds infinite-window bound %g", mask, an.NetNoise[n1], ub)
		}
	}
}

func TestRunIterationsBounded(t *testing.T) {
	c := parse(t, coupledPair)
	m := NewModel(c)
	m.MaxIterations = 2
	an, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if an.Iterations > 2 {
		t.Fatalf("iteration cap violated: %d", an.Iterations)
	}
}

func TestCombinedEnvelopeEmpty(t *testing.T) {
	c := parse(t, coupledPair)
	m := NewModel(c)
	n1, _ := c.NetByName("n1")
	r, err := m.Run(NewMask(c))
	if err != nil {
		t.Fatal(err)
	}
	if !m.CombinedEnvelope(n1, nil, r.Timing.Windows).IsZero() {
		t.Fatal("no couplings means a zero envelope")
	}
}
