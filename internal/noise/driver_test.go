package noise

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"topkagg/internal/cell"
	"topkagg/internal/netlist"
)

func TestLinearTheveninResIndependentOfAmplitude(t *testing.T) {
	d := LinearThevenin{}
	if d.EffectiveRes(5, 0, 1.2) != 5 || d.EffectiveRes(5, 0.9, 1.2) != 5 {
		t.Fatal("linear model must ignore amplitude")
	}
	if d.Name() != "linear-thevenin" {
		t.Fatalf("name = %q", d.Name())
	}
}

func TestSaturatingCSMRises(t *testing.T) {
	d := SaturatingCSM{Alpha: 1.0}
	r0 := d.EffectiveRes(5, 0, 1.2)
	r1 := d.EffectiveRes(5, 0.6, 1.2)
	if r0 != 5 {
		t.Fatalf("zero-amplitude resistance = %g", r0)
	}
	if r1 <= r0 {
		t.Fatal("saturating driver must weaken with amplitude")
	}
	// Negative amplitudes clamp to the small-signal value.
	if d.EffectiveRes(5, -1, 1.2) != 5 {
		t.Fatal("negative amplitude must clamp")
	}
	if d.Name() != "saturating-csm" {
		t.Fatalf("name = %q", d.Name())
	}
}

func TestNonlinearAlphaZeroMatchesLinear(t *testing.T) {
	c := parse(t, coupledPair)
	lin := NewModel(c)
	csm := NewModel(c)
	csm.Driver = SaturatingCSM{Alpha: 0}
	n1, _ := c.NetByName("n1")
	cp := c.Coupling(0)
	pl := lin.PulseParams(n1, cp, 0.05)
	pc := csm.PulseParams(n1, cp, 0.05)
	if math.Abs(pl.Vp-pc.Vp) > 1e-9 || math.Abs(pl.Fall-pc.Fall) > 1e-9 {
		t.Fatalf("alpha=0 must equal linear: %+v vs %+v", pl, pc)
	}
}

func TestNonlinearPeakGrowsWithAlpha(t *testing.T) {
	c := parse(t, coupledPair)
	n1, _ := c.NetByName("n1")
	cp := c.Coupling(0)
	prev := -1.0
	for _, alpha := range []float64{0, 0.5, 1.0, 2.0} {
		m := NewModel(c)
		m.Driver = SaturatingCSM{Alpha: alpha}
		p := m.PulseParams(n1, cp, 0.05)
		if p.Vp <= prev {
			t.Fatalf("peak must grow with saturation: alpha=%g vp=%g prev=%g", alpha, p.Vp, prev)
		}
		if p.Vp > m.Vdd {
			t.Fatalf("peak clamped at Vdd: %g", p.Vp)
		}
		prev = p.Vp
	}
}

func TestQuickNonlinearPeakSelfConsistent(t *testing.T) {
	c := parse(t, coupledPair)
	n1, _ := c.NetByName("n1")
	cp := c.Coupling(0)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		alpha := r.Float64() * 1.5
		m := NewModel(c)
		m.Driver = SaturatingCSM{Alpha: alpha}
		tr := 0.01 + r.Float64()*0.3
		p := m.PulseParams(n1, cp, tr)
		// Verify the fixed point: recomputing the linear peak at the
		// converged effective resistance reproduces Vp.
		rv := c.DriverRes(n1)
		cv := c.Net(n1).Cgnd + c.PinLoad(n1)
		rEff := m.Driver.EffectiveRes(rv, p.Vp, m.Vdd)
		tau := rEff * (cp.Cc + cv) * 1e-3
		want := m.Vdd * (rEff * cp.Cc * 1e-3 / tr) * (1 - math.Exp(-tr/tau))
		if want > m.Vdd {
			want = m.Vdd
		}
		return math.Abs(want-p.Vp) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestNonlinearEndToEnd(t *testing.T) {
	// The whole pipeline (fixpoint + delay) must run under the
	// nonlinear driver and yield at least as much crosstalk delay as
	// the linear model (saturation only amplifies noise).
	src := coupledPair
	c1, err := netlist.ParseString(src, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	lin := NewModel(c1)
	linAn, err := lin.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	csm := NewModel(c1)
	csm.Driver = SaturatingCSM{Alpha: 1.0}
	csmAn, err := csm.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !csmAn.Converged {
		t.Fatal("nonlinear fixpoint must converge")
	}
	if csmAn.CircuitDelay() < linAn.CircuitDelay()-1e-9 {
		t.Fatalf("saturating driver must not reduce noisy delay: %g vs %g",
			csmAn.CircuitDelay(), linAn.CircuitDelay())
	}
	if csmAn.Base.CircuitDelay() != linAn.Base.CircuitDelay() {
		t.Fatal("driver model must not affect noiseless timing")
	}
}
