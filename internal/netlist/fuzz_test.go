package netlist

import (
	"math"
	"testing"

	"topkagg/internal/cell"
	"topkagg/internal/sta"
)

// FuzzParse checks that arbitrary input never panics the parser, that
// anything it accepts survives a canonical-form round trip, and that an
// accepted circuit survives timing analysis — no panic deep in the
// engine, and any windows produced are finite (sta rejects the rest
// with a typed NonFiniteError).
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("circuit x\n")
	f.Add("gate g INV_X1 a -> y\n")
	f.Add("net n cg=1 rw=2 x=3 y=4\n")
	f.Add("couple a b 1.5\n")
	f.Add("# comment only\n")
	f.Add("circuit \x00\nnet \xff\n")
	f.Add("gate g NAND2_X1 a a -> a\n")
	lib := cell.Default()
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src, lib)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		text := String(c)
		c2, err := ParseString(text, lib)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, text)
		}
		if String(c2) != text {
			t.Fatalf("canonical form unstable:\n%s\nvs\n%s", text, String(c2))
		}
		// Accepted circuits must be analyzable without panicking: a
		// parser that lets NaN capacitances or cyclic structures through
		// must still fail closed, with an error, further down the stack.
		res, err := sta.Analyze(c, sta.Options{})
		if err != nil {
			return
		}
		for id, w := range res.Windows {
			if math.IsNaN(w.EAT) || math.IsNaN(w.LAT) || math.IsNaN(w.Slew) ||
				math.IsInf(w.EAT, 0) || math.IsInf(w.LAT, 0) || math.IsInf(w.Slew, 0) {
				t.Fatalf("non-finite window escaped analysis on net %d: %+v", id, w)
			}
		}
	})
}
