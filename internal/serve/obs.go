package serve

import (
	"time"

	"topkagg/internal/budget"
	"topkagg/internal/obs"
)

// serveObs bundles the Analyzer's resolved metric handles, built once
// in NewAnalyzer from the model's registry. A nil *serveObs (no
// registry on the model) disables serve instrumentation entirely — in
// particular, no time.Now calls are made on the query path.
//
// Metric names (see DESIGN.md §8):
//
//	serve.queries             queries answered (failed ones included)
//	serve.errors              queries whose Response carries an error
//	serve.prep_hits           shared-state cache hits
//	serve.prep_misses         shared-state cache misses (preparations built)
//	serve.fixpoint_runs       full fixpoints executed (at most 1 per Analyzer)
//	serve.batches             RunBatch invocations
//	serve.query_ns/<op>       histogram: per-query latency by op
//	serve.batch_size          histogram: queries per batch
//	serve.batch_ns            histogram: batch wall time
//	serve.worker_busy_ns      histogram: per-worker busy time within a batch
//	                          (sum/batch_ns·workers = pool utilization)
//	serve.partials            best-effort (Partial) responses returned
//	serve.degraded            responses with any Degraded reason
//	serve.stops/canceled      queries stopped by caller cancellation
//	serve.stops/deadline      queries stopped by a deadline or timeout
//	serve.stops/work_budget   queries stopped by an exhausted work allowance
//	serve.stops/worker_panic  queries that recovered a worker panic
type serveObs struct {
	queries, errors    *obs.Counter
	prepHits, prepMiss *obs.Counter
	fixpoints          *obs.Counter
	batches            *obs.Counter
	queryNs            [3]*obs.Histogram // indexed by Op
	batchSize          *obs.Histogram
	batchNs            *obs.Histogram
	workerBusyNs       *obs.Histogram

	partials, degraded                     *obs.Counter
	canceled, deadline, workEx, workerPanc *obs.Counter
}

// newServeObs resolves the handles, or returns nil for a nil registry.
func newServeObs(r *obs.Registry) *serveObs {
	if r == nil {
		return nil
	}
	return &serveObs{
		queries:   r.Counter("serve.queries"),
		errors:    r.Counter("serve.errors"),
		prepHits:  r.Counter("serve.prep_hits"),
		prepMiss:  r.Counter("serve.prep_misses"),
		fixpoints: r.Counter("serve.fixpoint_runs"),
		batches:   r.Counter("serve.batches"),
		queryNs: [3]*obs.Histogram{
			Addition:    r.Histogram("serve.query_ns/addition"),
			Elimination: r.Histogram("serve.query_ns/elimination"),
			WhatIf:      r.Histogram("serve.query_ns/whatif"),
		},
		batchSize:    r.Histogram("serve.batch_size"),
		batchNs:      r.Histogram("serve.batch_ns"),
		workerBusyNs: r.Histogram("serve.worker_busy_ns"),
		partials:     r.Counter("serve.partials"),
		degraded:     r.Counter("serve.degraded"),
		canceled:     r.Counter("serve.stops/canceled"),
		deadline:     r.Counter("serve.stops/deadline"),
		workEx:       r.Counter("serve.stops/work_budget"),
		workerPanc:   r.Counter("serve.stops/worker_panic"),
	}
}

// queryDone records one answered query. No-op when disabled.
func (o *serveObs) queryDone(op Op, start time.Time, failed bool) {
	if o == nil {
		return
	}
	o.queries.Inc()
	if failed {
		o.errors.Inc()
	}
	if op >= 0 && int(op) < len(o.queryNs) {
		o.queryNs[op].Observe(int64(time.Since(start)))
	}
}

// outcome records the degradation shape of one finished response —
// partial/degraded counts plus a per-reason stop breakdown, whether
// the stop surfaced as a Partial result or a typed error. No-op when
// disabled.
func (o *serveObs) outcome(resp *Response) {
	if o == nil {
		return
	}
	if resp.Partial {
		o.partials.Inc()
	}
	if resp.Degraded != "" {
		o.degraded.Inc()
	}
	reason := budget.ReasonOf(resp.Err)
	if reason == budget.None && resp.Result != nil {
		reason = budget.ReasonOf(resp.Result.Stopped)
	}
	switch reason {
	case budget.Canceled:
		o.canceled.Inc()
	case budget.DeadlineExceeded:
		o.deadline.Inc()
	case budget.WorkExhausted:
		o.workEx.Inc()
	case budget.WorkerPanic:
		o.workerPanc.Inc()
	}
}
