package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"topkagg/internal/circuit"
	"topkagg/internal/core"
	"topkagg/internal/faultinject"
	"topkagg/internal/noise"
	"topkagg/internal/serve"
)

// needProbes skips a test that depends on fault injection when the
// probes are compiled out (-tags faultinject_off).
func needProbes(t *testing.T) {
	t.Helper()
	if !faultinject.Enabled() {
		t.Skip("faultinject probes compiled out")
	}
}

// TestChaosSweepPanicOneRecord injects a worker panic into exactly one
// query of a streamed k-sweep and checks the blast radius over the
// wire: that record carries a typed worker-panic error, every other
// record is byte-identical to the clean run, and the stream stays
// well-formed NDJSON end to end.
func TestChaosSweepPanicOneRecord(t *testing.T) {
	needProbes(t)
	c := testCircuit(t, 21)
	ts := newTestServer(t, Config{})
	uploadNetlist(t, ts, "m", c)

	var nets []string
	for id := 0; id < c.NumNets() && len(nets) < 5; id++ {
		if c.Net(circuit.NetID(id)).Driver >= 0 {
			nets = append(nets, c.Net(circuit.NetID(id)).Name)
		}
	}
	if len(nets) < 4 {
		t.Fatalf("circuit too small: %d driven nets", len(nets))
	}
	sreq := SweepRequest{Op: "addition", Nets: nets, K: 2, Workers: 1}

	// Reference records from a clean in-process run, computed before
	// the plan is armed so the probe cannot touch them.
	ref := serve.NewAnalyzer(noise.NewModel(c), core.Options{})
	queries, aerr := validateSweep(c, &sreq, limitPolicy{})
	if aerr != nil {
		t.Fatal(aerr)
	}
	want := make([][]byte, len(queries))
	for i, q := range queries {
		wr, err := ToWire(c, ref.Do(q))
		if err != nil {
			t.Fatal(err)
		}
		want[i], err = marshalJSON(SweepRecord{Index: i, QueryResponse: wr})
		if err != nil {
			t.Fatal(err)
		}
	}

	// SiteServeQuery fires once per DoCtx; with Workers=1 the sweep
	// executes queries in request order, so On:3 deterministically
	// kills record index 2 and nothing else.
	const victim = 2
	faultinject.Arm(faultinject.NewPlan(1).Add(faultinject.SiteServeQuery,
		faultinject.Rule{On: victim + 1, Panic: true}))
	defer faultinject.Disarm()

	status, body := post(t, ts, "/v1/models/m/sweep", sreq)
	if status != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", status, body)
	}
	lines := splitNDJSON(t, body)
	if len(lines) != len(queries) {
		t.Fatalf("sweep: %d records for %d queries", len(lines), len(queries))
	}
	for i, line := range lines {
		if i == victim {
			var rec SweepRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				t.Fatalf("victim record is not valid JSON: %v (%s)", err, line)
			}
			if rec.Index != victim || rec.QueryResponse == nil {
				t.Fatalf("victim record malformed: %s", line)
			}
			if rec.ErrorReason != "worker-panic" {
				t.Errorf("victim errorReason = %q, want worker-panic (%s)", rec.ErrorReason, line)
			}
			if !strings.Contains(rec.Error, "injected panic") {
				t.Errorf("victim error = %q, want injected panic mention", rec.Error)
			}
			continue
		}
		if !bytes.Equal(append(line, '\n'), want[i]) {
			t.Errorf("record %d disturbed by injected panic\n got: %s\nwant: %s", i, line, want[i])
		}
	}
}

// TestChaosDeadlineDegradesAlone sends one query with a 1 ns deadline:
// its response must degrade with a typed deadline stop reason in the
// body, and an identical follow-up query without limits must be
// byte-identical to a clean in-process run — degradation does not
// stick to the model's analyzer.
func TestChaosDeadlineDegradesAlone(t *testing.T) {
	c := testCircuit(t, 33)
	ts := newTestServer(t, Config{})
	uploadNetlist(t, ts, "m", c)

	doomed := QueryRequest{Op: "addition", K: 3, TimeoutNs: 1}
	status, body := post(t, ts, "/v1/models/m/query", doomed)
	var wr QueryResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatalf("degraded body not valid JSON: %v (%s)", err, body)
	}
	// The deadline either kills the query outright (504 + typed error
	// reason) or lets it return a degraded partial result (200 + typed
	// stop); both carry "deadline" somewhere typed.
	switch status {
	case http.StatusGatewayTimeout:
		if wr.ErrorReason != "deadline" {
			t.Errorf("504 errorReason = %q, want deadline (%s)", wr.ErrorReason, body)
		}
	case http.StatusOK:
		if wr.Degraded == "" && !wr.Partial {
			t.Errorf("200 under 1ns deadline but neither degraded nor partial: %s", body)
		}
		if wr.Stopped != "deadline" && wr.ErrorReason != "deadline" {
			t.Errorf("typed deadline reason missing: %s", body)
		}
	default:
		t.Fatalf("1ns-deadline query: status %d: %s", status, body)
	}

	// Same query, no limits: must match the clean reference exactly.
	clean := QueryRequest{Op: "addition", K: 3}
	ref := serve.NewAnalyzer(noise.NewModel(c), core.Options{})
	wantBytes := wireBytes(t, c, ref.Do(toServeQuery(t, c, clean)))
	status, body = post(t, ts, "/v1/models/m/query", clean)
	if status != http.StatusOK {
		t.Fatalf("clean query after degraded one: status %d: %s", status, body)
	}
	if !bytes.Equal(body, wantBytes) {
		t.Errorf("clean query disturbed by earlier degraded one\n got: %s\nwant: %s", body, wantBytes)
	}
}

// TestChaosWorkBudgetTyped drives a query into work exhaustion and
// checks the typed reason crosses the wire.
func TestChaosWorkBudgetTyped(t *testing.T) {
	c := testCircuit(t, 13)
	ts := newTestServer(t, Config{})
	uploadNetlist(t, ts, "m", c)

	status, body := post(t, ts, "/v1/models/m/query", QueryRequest{Op: "addition", K: 3, MaxWork: 1})
	var wr QueryResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatalf("work-exhausted body not valid JSON: %v (%s)", err, body)
	}
	switch status {
	case http.StatusGatewayTimeout:
		if wr.ErrorReason != "work-budget" {
			t.Errorf("504 errorReason = %q, want work-budget (%s)", wr.ErrorReason, body)
		}
	case http.StatusOK:
		if !wr.Partial && wr.Degraded == "" {
			t.Errorf("200 under 1-unit work budget but not partial/degraded: %s", body)
		}
		if wr.Stopped != "work-budget" && wr.ErrorReason != "work-budget" {
			t.Errorf("typed work-budget reason missing: %s", body)
		}
	default:
		t.Fatalf("work-budget query: status %d: %s", status, body)
	}
}
