// Package bitset provides a dense bitset over small-integer IDs plus
// a free pool, replacing the map[ID]bool cone sets of the incremental
// engines. A cone membership test is one shift and mask instead of a
// hash probe, Clear is a memclr of the live words, and pooled reuse
// makes the per-query cost of cone bookkeeping allocation-free.
package bitset

import (
	"math/bits"
	"sync"
)

// Dense is a fixed-universe bitset over [0, Len()).
type Dense struct {
	words []uint64
	n     int
}

// New returns a cleared bitset over the universe [0, n).
func New(n int) *Dense {
	d := &Dense{}
	d.Reset(n)
	return d
}

// Reset re-sizes the bitset to the universe [0, n) and clears it,
// reusing the word storage when capacity allows.
func (d *Dense) Reset(n int) {
	w := (n + 63) / 64
	if cap(d.words) < w {
		d.words = make([]uint64, w)
	} else {
		d.words = d.words[:w]
		clear(d.words)
	}
	d.n = n
}

// Len returns the universe size.
func (d *Dense) Len() int { return d.n }

// Set marks i as a member.
func (d *Dense) Set(i int) { d.words[i>>6] |= 1 << (uint(i) & 63) }

// Get reports whether i is a member.
func (d *Dense) Get(i int) bool { return d.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Clear removes every member, keeping the universe size.
func (d *Dense) Clear() { clear(d.words) }

// Or unions o into d (universes must match) and reports whether any
// new member was added.
func (d *Dense) Or(o *Dense) bool {
	grew := false
	for i, w := range o.words {
		if n := d.words[i] | w; n != d.words[i] {
			d.words[i] = n
			grew = true
		}
	}
	return grew
}

// Count returns the number of members.
func (d *Dense) Count() int {
	c := 0
	for _, w := range d.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls fn for every member in ascending order.
func (d *Dense) ForEach(fn func(i int)) {
	for wi, w := range d.words {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// pool recycles bitsets across queries; Get resizes (and clears) the
// recycled set to the requested universe.
var pool = sync.Pool{New: func() any { return &Dense{} }}

// Get returns a cleared bitset over [0, n) from the pool.
func Get(n int) *Dense {
	d := pool.Get().(*Dense)
	d.Reset(n)
	return d
}

// Put returns a bitset to the pool. The caller must not use it
// afterwards.
func Put(d *Dense) { pool.Put(d) }
