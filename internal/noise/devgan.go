package noise

import (
	"sort"

	"topkagg/internal/circuit"
)

// DevganPeak returns the classic Devgan upper bound on the coupled
// noise peak (Devgan, ICCAD'97): for a monotone aggressor transition,
// the victim glitch can never exceed
//
//	Vmax = Rv · Cc · (dV/dt)_aggressor ≈ Rv · Cc · Vdd / slew.
//
// It requires no alignment information at all, which makes it the
// standard first-pass screen: couplings whose Devgan bound is already
// negligible need no envelope analysis. The bound is loose for fast
// victims (it ignores the victim RC's self-limiting), so it upper-
// bounds this package's pulse model peak for every coupling.
func (m *Model) DevganPeak(victim circuit.NetID, cp *circuit.Coupling, aggSlew float64) float64 {
	rv := m.C.DriverRes(victim)
	if aggSlew < 1e-3 {
		aggSlew = 1e-3
	}
	v := rv * cp.Cc * 1e-3 * m.Vdd / aggSlew // kΩ·fF → ns
	if v > m.Vdd {
		v = m.Vdd // a passive network cannot exceed the supply
	}
	return v
}

// DevganScreen ranks every coupling by its worst-direction Devgan
// bound and returns the couplings whose bound is below frac·Vdd —
// candidates for dropping before any detailed analysis. win supplies
// aggressor slews (use a timing result's Windows).
func (m *Model) DevganScreen(win []float64, frac float64) []circuit.CouplingID {
	var out []circuit.CouplingID
	thresh := frac * m.Vdd
	for _, cp := range m.C.Couplings() {
		worst := 0.0
		for _, victim := range []circuit.NetID{cp.A, cp.B} {
			agg := cp.Other(victim)
			if v := m.DevganPeak(victim, cp, win[agg]); v > worst {
				worst = v
			}
		}
		if worst < thresh {
			out = append(out, cp.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
