package snapshot

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"
)

// WriteFileAtomic publishes the bytes produced by encode at path with
// all-or-nothing visibility: the payload goes to a temp file in the
// same directory, is fsynced, closed, renamed over path, and the
// directory is fsynced so the rename itself is durable. A crash — or
// an injected write error — at any point leaves either the previous
// file or the new one, never a torn mix; the temp file is removed on
// failure (a temp file orphaned by kill -9 is swept by Store.Load).
func WriteFileAtomic(path string, encode func(*Encoder) error) (written int64, err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, tmpPrefix+filepath.Base(path)+".*")
	if err != nil {
		return 0, fmt.Errorf("snapshot: temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<20)
	enc, err := NewEncoder(bw)
	if err != nil {
		return 0, err
	}
	if err = encode(enc); err != nil {
		return 0, err
	}
	if err = bw.Flush(); err != nil {
		return 0, fmt.Errorf("snapshot: flush: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return 0, fmt.Errorf("snapshot: fsync: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return 0, fmt.Errorf("snapshot: close: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("snapshot: rename: %w", err)
	}
	if err = syncDir(dir); err != nil {
		return 0, err
	}
	return enc.Bytes(), nil
}

// tmpPrefix marks in-flight temp files so Load can sweep orphans left
// by a crash mid-write.
const tmpPrefix = ".tmp."

// syncDir fsyncs a directory so a completed rename survives power
// loss. Filesystems that refuse directory fsync (some network mounts)
// degrade to rename-only durability rather than failing the snapshot.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("snapshot: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		// EINVAL and friends: the filesystem cannot fsync directories.
		// The rename is still atomic; accept the weaker guarantee.
		return nil
	}
	return nil
}

// quarantineSeq disambiguates quarantine names minted within one
// nanosecond tick (or on filesystems with coarse clocks).
var quarantineSeq atomic.Int64

// Quarantine moves a corrupt file into the quarantine/ subdirectory of
// its parent, named with a timestamp so repeated corruption of the
// same model never overwrites earlier evidence. It returns the
// quarantine path for logging.
func Quarantine(path string) (string, error) {
	dir := filepath.Join(filepath.Dir(path), "quarantine")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("snapshot: quarantine dir: %w", err)
	}
	name := filepath.Base(path) + "." + strconv.FormatInt(time.Now().UnixNano(), 10) +
		"-" + strconv.FormatInt(quarantineSeq.Add(1), 10) + ".corrupt"
	dst := filepath.Join(dir, name)
	if err := os.Rename(path, dst); err != nil {
		return "", fmt.Errorf("snapshot: quarantine: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return dst, err
	}
	return dst, nil
}
