package spef

import (
	"testing"

	"topkagg/internal/cell"
	"topkagg/internal/netlist"
)

// FuzzApply checks the SPEF reader never panics on arbitrary input.
func FuzzApply(f *testing.F) {
	f.Add("*SPEF \"x\"\n*D_NET n1 1\n*CAP\n1 n1 2\n*END\n")
	f.Add("*SPEF \"x\"\n*D_NET n1 1\n*CAP\n1 n1 m1 2\n*END\n")
	f.Add("*C_UNIT 1 FF\n")
	f.Add("garbage\n*D_NET\n")
	f.Add("*SPEF\n*D_NET n1 0\n*RES\n1 n1 0.5\n*END\n")
	lib := cell.Default()
	f.Fuzz(func(t *testing.T, src string) {
		c, err := netlist.ParseString(baseNetlist, lib)
		if err != nil {
			t.Fatal(err)
		}
		_ = ApplyString(src, c) // must not panic; errors are fine
	})
}
