package httpapi

import (
	"net/http"
	"time"

	"topkagg/internal/obs"
)

// httpObs bundles the server's resolved metric handles, following the
// serveObs pattern: resolved once at construction, nil disables HTTP
// instrumentation entirely.
//
// Metric names:
//
//	httpapi.requests        requests routed (all endpoints)
//	httpapi.uploads         model uploads accepted
//	httpapi.stream_records  NDJSON records written across all sweeps
//	httpapi.rejected_429    admission rejections (queue full)
//	httpapi.rejected_503    admission rejections (draining)
//	httpapi.errors_4xx      responses with a 4xx status
//	httpapi.errors_5xx      responses with a 5xx status
//	httpapi.request_ns      histogram: request wall time
type httpObs struct {
	requests      *obs.Counter
	uploads       *obs.Counter
	streamRecords *obs.Counter
	rejected429   *obs.Counter
	rejected503   *obs.Counter
	errors4xx     *obs.Counter
	errors5xx     *obs.Counter
	requestNs     *obs.Histogram
}

func newHTTPObs(r *obs.Registry) *httpObs {
	if r == nil {
		return nil
	}
	return &httpObs{
		requests:      r.Counter("httpapi.requests"),
		uploads:       r.Counter("httpapi.uploads"),
		streamRecords: r.Counter("httpapi.stream_records"),
		rejected429:   r.Counter("httpapi.rejected_429"),
		rejected503:   r.Counter("httpapi.rejected_503"),
		errors4xx:     r.Counter("httpapi.errors_4xx"),
		errors5xx:     r.Counter("httpapi.errors_5xx"),
		requestNs:     r.Histogram("httpapi.request_ns"),
	}
}

// done records one finished request's status and latency.
func (o *httpObs) done(status int, start time.Time) {
	if o == nil {
		return
	}
	o.requestNs.Observe(int64(time.Since(start)))
	switch {
	case status == http.StatusTooManyRequests:
		o.rejected429.Inc()
		o.errors4xx.Inc()
	case status == http.StatusServiceUnavailable:
		o.rejected503.Inc()
		o.errors5xx.Inc()
	case status >= 500:
		o.errors5xx.Inc()
	case status >= 400:
		o.errors4xx.Inc()
	}
}

// statusRecorder captures the response status for metrics while
// forwarding Flush so NDJSON streaming keeps working through the
// wrapper (http.ResponseController finds the inner writer via Unwrap).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(status int) {
	sr.status = status
	sr.ResponseWriter.WriteHeader(status)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(p)
}

func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }
