package waveform

// SampleInto evaluates the waveform at n = len(out) times spanning
// [lo, hi] (both endpoints included; times are evenly spaced) and
// writes the values into out, walking the breakpoints once instead of
// binary-searching per sample. Each value is computed with exactly the
// interpolation Value uses — same formula, same operation order — so
// out[g] is bit-identical to Value(t_g). It is the digest sampler of
// the dominance prefilter: conservative comparisons on these samples
// must agree with exact pointwise comparisons wherever they claim a
// strict difference.
//
// n must be at least 2 when hi > lo; with hi <= lo every sample is
// taken at lo.
func (w PWL) SampleInto(lo, hi float64, out []float64) {
	n := len(out)
	if n == 0 {
		return
	}
	pts := w.pts
	if len(pts) == 0 {
		for g := range out {
			out[g] = 0
		}
		return
	}
	step := 0.0
	if n > 1 && hi > lo {
		step = (hi - lo) / float64(n-1)
	}
	i := 0 // first breakpoint strictly after t, as in Value
	for g := range out {
		t := lo + float64(g)*step
		if g == n-1 && step != 0 {
			// Pin the last sample to hi exactly: accumulated rounding in
			// lo + (n-1)*step may land an ulp past the interval, and a
			// sample outside [lo, hi] would let the prefilter reject on
			// a point the exact check never examines.
			t = hi
		}
		if t <= pts[0].T {
			// Mirrors Value's leading-edge branch; matters when the
			// first two breakpoints share a time (a step at the start).
			out[g] = pts[0].V
			continue
		}
		for i < len(pts) && pts[i].T <= t {
			i++
		}
		switch {
		case i == 0:
			out[g] = pts[0].V
		case i >= len(pts):
			out[g] = pts[len(pts)-1].V
		default:
			a, b := pts[i-1], pts[i]
			if b.T == a.T {
				out[g] = b.V
			} else {
				f := (t - a.T) / (b.T - a.T)
				out[g] = a.V + f*(b.V-a.V)
			}
		}
	}
}

// AddInto computes a + b into buf (reused if capacity allows) and
// returns a PWL viewing the result plus the grown buffer. The returned
// PWL aliases the buffer: it is valid only until the buffer's next
// reuse. It is the allocation-free form of Add for hot paths that
// immediately simplify or copy the sum (set-envelope construction).
func AddInto(a, b PWL, buf []Point) (PWL, []Point) {
	buf = appendCombine(buf[:0], a, b, +1)
	return PWL{pts: buf}, buf
}

// Clone returns a copy of the waveform backed by its own freshly
// allocated breakpoints, safe to retain after any scratch buffer the
// original viewed is reused.
func (w PWL) Clone() PWL { return w.clone() }
