package sta_test

import (
	"math"
	"math/rand"
	"testing"

	"topkagg/internal/circuit"
	"topkagg/internal/gen"
	"topkagg/internal/sta"
)

// refAnalyze is the original pointer-model window propagation, kept
// as the oracle the columnar production path must reproduce bit for
// bit.
func refAnalyze(c *circuit.Circuit, opt sta.Options) ([]sta.Window, error) {
	order, err := c.TopoNets()
	if err != nil {
		return nil, err
	}
	windows := make([]sta.Window, c.NumNets())
	for _, nid := range order {
		net := c.Net(nid)
		if net.Driver == circuit.NoGate {
			w := sta.Window{EAT: 0, LAT: 0, Slew: sta.DefaultPISlew}
			if opt.PIArrival != nil {
				w = opt.PIArrival(nid)
			}
			if opt.ExtraLAT != nil {
				w.LAT += opt.ExtraLAT[nid]
			}
			windows[nid] = w
			continue
		}
		g := c.Gate(net.Driver)
		load := c.LoadCap(nid)
		eat := math.Inf(1)
		lat := math.Inf(-1)
		slew := sta.DefaultPISlew
		for _, in := range g.Inputs {
			iw := windows[in]
			d := g.Cell.Delay(load, iw.Slew)
			if t := iw.EAT + d; t < eat {
				eat = t
			}
			if t := iw.LAT + d; t > lat {
				lat = t
				slew = g.Cell.OutputSlew(load, iw.Slew)
			}
		}
		w := sta.Window{EAT: eat, LAT: lat, Slew: slew}
		if opt.ExtraLAT != nil {
			w.LAT += opt.ExtraLAT[nid]
		}
		windows[nid] = w
	}
	return windows, nil
}

// TestColumnarAnalyzeBitIdentical pins the columnar propagation to
// the pointer-model oracle on random circuits, with and without an
// ExtraLAT injection vector.
func TestColumnarAnalyzeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for seed := int64(0); seed < 20; seed++ {
		c, err := gen.Build(gen.Spec{
			Name:      "colpar",
			Gates:     20 + int(seed)*7,
			Couplings: 30 + int(seed)*9,
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		var opt sta.Options
		if seed%2 == 1 {
			extra := make([]float64, c.NumNets())
			for i := range extra {
				if rng.Float64() < 0.3 {
					extra[i] = rng.Float64() * 0.2
				}
			}
			opt.ExtraLAT = extra
		}
		got, err := sta.Analyze(c, opt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := refAnalyze(c, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got.Windows[i] != want[i] {
				t.Fatalf("seed %d net %d: columnar window %+v != reference %+v",
					seed, i, got.Windows[i], want[i])
			}
		}
	}
}
