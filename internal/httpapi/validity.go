package httpapi

import (
	"fmt"
	"time"

	"topkagg/internal/circuit"
	"topkagg/internal/serve"
)

// This file is the validate half of the parse/validate/act split:
// every wire struct is checked against the target model and converted
// into serve values here, so handlers act only on known-good queries.
// Every 4xx a query endpoint can return originates in this file or in
// parse.go.

// limitPolicy clamps per-request execution limits to the server's
// bounds: a request naming no limit gets the default, a request asking
// past the maximum is clamped to it. Zero fields mean no bound.
type limitPolicy struct {
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	maxWork        int64
}

// resolve maps wire limit fields onto serve.Limits under the policy.
func (p limitPolicy) resolve(timeoutMs, timeoutNs, maxWork int64) (serve.Limits, *apiError) {
	if timeoutMs < 0 || timeoutNs < 0 || maxWork < 0 {
		return serve.Limits{}, errBadRequest(codeBadLimits,
			"timeoutMs, timeoutNs and maxWork must be >= 0 (got %d, %d, %d)", timeoutMs, timeoutNs, maxWork)
	}
	timeout := time.Duration(timeoutNs)
	if timeout == 0 {
		timeout = time.Duration(timeoutMs) * time.Millisecond
	}
	if timeout == 0 {
		timeout = p.defaultTimeout
	}
	if p.maxTimeout > 0 && (timeout == 0 || timeout > p.maxTimeout) {
		timeout = p.maxTimeout
	}
	work := maxWork
	if work == 0 || (p.maxWork > 0 && work > p.maxWork) {
		if p.maxWork > 0 {
			work = p.maxWork
		}
	}
	return serve.Limits{Timeout: timeout, MaxWork: work}, nil
}

// validateQuery checks one wire query against the model's circuit and
// converts it. allowExact is false inside batches, where the exact
// flag lives on the batch instead.
func validateQuery(c *circuit.Circuit, qr *QueryRequest, pol limitPolicy, allowExact bool) (serve.Query, *apiError) {
	op, ok := serve.ParseOp(qr.Op)
	if !ok {
		return serve.Query{}, errBadRequest(codeUnknownOp,
			"unknown op %q (want addition, elimination or whatif)", qr.Op)
	}
	if !allowExact && qr.Exact {
		return serve.Query{}, errBadRequest(codeBadRequest,
			"per-query exact flags are not allowed in a batch; set exact on the batch")
	}
	q := serve.Query{Op: op, Net: serve.WholeCircuit}
	if qr.Net != "" {
		id, ok := c.NetByName(qr.Net)
		if !ok {
			return serve.Query{}, errBadRequest(codeUnknownNet, "no net %q in the model", qr.Net)
		}
		q.Net = id
	}
	switch op {
	case serve.Addition, serve.Elimination:
		if qr.K < 1 {
			return serve.Query{}, errBadRequest(codeBadK, "%s query needs k >= 1, got %d", op, qr.K)
		}
		if len(qr.Fix) > 0 {
			return serve.Query{}, errBadRequest(codeBadRequest, "fix applies only to whatif queries")
		}
		q.K = qr.K
	case serve.WhatIf:
		if qr.K != 0 {
			return serve.Query{}, errBadRequest(codeBadK, "k applies only to top-k queries")
		}
		for _, id := range qr.Fix {
			if id < 0 || id >= c.NumCouplings() {
				return serve.Query{}, errBadRequest(codeUnknownCoupling,
					"no coupling %d in the model (%d couplings)", id, c.NumCouplings())
			}
			q.Fix = append(q.Fix, circuit.CouplingID(id))
		}
	}
	limits, aerr := pol.resolve(qr.TimeoutMs, qr.TimeoutNs, qr.MaxWork)
	if aerr != nil {
		return serve.Query{}, aerr
	}
	q.Limits = limits
	return q, nil
}

// validateBatch converts a whole batch, reporting the first invalid
// query by index.
func validateBatch(c *circuit.Circuit, br *BatchRequest, pol limitPolicy) ([]serve.Query, *apiError) {
	if len(br.Queries) == 0 {
		return nil, errBadRequest(codeBadRequest, "batch contains no queries")
	}
	if br.Workers < 0 {
		return nil, errBadRequest(codeBadRequest, "workers must be >= 0, got %d", br.Workers)
	}
	queries := make([]serve.Query, len(br.Queries))
	for i := range br.Queries {
		q, aerr := validateQuery(c, &br.Queries[i], pol, false)
		if aerr != nil {
			aerr.msg = fmt.Sprintf("query %d: %s", i, aerr.msg)
			return nil, aerr
		}
		queries[i] = q
	}
	return queries, nil
}

// validateSweep converts a k-sweep into its per-net query list. An
// empty net list sweeps the circuit outputs plus every driven net, in
// net-ID order.
func validateSweep(c *circuit.Circuit, sr *SweepRequest, pol limitPolicy) ([]serve.Query, *apiError) {
	op, ok := serve.ParseOp(sr.Op)
	if !ok || op == serve.WhatIf {
		return nil, errBadRequest(codeUnknownOp, "sweep op must be addition or elimination, got %q", sr.Op)
	}
	if sr.K < 1 {
		return nil, errBadRequest(codeBadK, "sweep needs k >= 1, got %d", sr.K)
	}
	if sr.Workers < 0 {
		return nil, errBadRequest(codeBadRequest, "workers must be >= 0, got %d", sr.Workers)
	}
	limits, aerr := pol.resolve(sr.TimeoutMs, sr.TimeoutNs, sr.MaxWork)
	if aerr != nil {
		return nil, aerr
	}
	var nets []circuit.NetID
	if len(sr.Nets) == 0 {
		nets = append(nets, serve.WholeCircuit)
		for id := 0; id < c.NumNets(); id++ {
			if c.Net(circuit.NetID(id)).Driver >= 0 {
				nets = append(nets, circuit.NetID(id))
			}
		}
	} else {
		for _, name := range sr.Nets {
			if name == "" {
				nets = append(nets, serve.WholeCircuit)
				continue
			}
			id, ok := c.NetByName(name)
			if !ok {
				return nil, errBadRequest(codeUnknownNet, "no net %q in the model", name)
			}
			nets = append(nets, id)
		}
	}
	queries := serve.KSweep(op, nets, sr.K)
	for i := range queries {
		queries[i].Limits = limits
	}
	return queries, nil
}

// validateModelName bounds registry keys: 1..64 characters from
// [A-Za-z0-9._-], so names embed safely in URLs, logs and filenames.
func validateModelName(name string) *apiError {
	if name == "" || len(name) > 64 {
		return errBadRequest(codeBadModelName, "model name must be 1..64 characters, got %d", len(name))
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
		default:
			return errBadRequest(codeBadModelName, "model name may use only letters, digits, '.', '_' and '-'")
		}
	}
	return nil
}
