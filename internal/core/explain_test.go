package core

import (
	"math"
	"testing"

	"topkagg/internal/circuit"
	"topkagg/internal/noise"
)

func TestExplainAddition(t *testing.T) {
	m := model(t, threeCouplings)
	res, err := TopKAddition(m, 2, Exact())
	if err != nil {
		t.Fatal(err)
	}
	top := res.Top()
	ex, err := ExplainAddition(m, top.IDs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ex.Delay-top.Delay) > 1e-9 {
		t.Fatalf("explanation delay %g != selection delay %g", ex.Delay, top.Delay)
	}
	if len(ex.Contributions) != len(top.IDs) {
		t.Fatalf("want %d contributions, got %d", len(top.IDs), len(ex.Contributions))
	}
	// Sorted descending.
	for i := 1; i < len(ex.Contributions); i++ {
		if ex.Contributions[i].Marginal > ex.Contributions[i-1].Marginal+1e-12 {
			t.Fatal("contributions must be sorted largest first")
		}
	}
	// Solo effects + synergy exactly decompose the total effect.
	total := ex.Delay - ex.Baseline
	sum := ex.Synergy
	for _, c := range ex.Contributions {
		sum += c.Solo
	}
	if math.Abs(sum-total) > 1e-6 {
		t.Fatalf("decomposition broken: %g vs %g", sum, total)
	}
}

func TestExplainElimination(t *testing.T) {
	m := model(t, threeCouplings)
	res, err := TopKElimination(m, 2, Exact())
	if err != nil {
		t.Fatal(err)
	}
	top := res.Top()
	ex, err := ExplainElimination(m, top.IDs)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Baseline < ex.Delay-1e-9 {
		t.Fatalf("elimination baseline (all couplings) must be the slower state: %g vs %g",
			ex.Baseline, ex.Delay)
	}
	for _, c := range ex.Contributions {
		if c.Marginal < 0 {
			t.Fatalf("negative marginal: %+v", c)
		}
	}
}

func TestExplainFig4Synergy(t *testing.T) {
	// On the Fig.-4 construction, the winning pair works only in
	// combination: individual marginals are ~zero and the synergy term
	// carries (almost) the whole effect.
	src := `circuit fig4
output y
gate v1 INV_X1 a -> vn
gate v2 INV_X1 vn -> y
gate r1 INV_X1 d -> r1n
gate r2 INV_X1 r1n -> r2n
gate r3 INV_X1 r2n -> r3n
gate r4 INV_X1 r3n -> a2q
gate s1 INV_X1 e -> s1n
gate s2 INV_X1 s1n -> s2n
gate s3 INV_X1 s2n -> s3n
gate s4 INV_X1 s3n -> a3q
couple vn a2q 5.0
couple vn a3q 5.0
`
	m := model(t, src)
	ex, err := ExplainAddition(m, []circuit.CouplingID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	total := ex.Delay - ex.Baseline
	if total <= 0 {
		t.Fatal("the pair must produce delay noise")
	}
	if ex.Synergy < 0.9*total {
		t.Fatalf("Fig.-4 pair must be nearly pure synergy: synergy=%g total=%g", ex.Synergy, total)
	}
}

func TestExplainEmptySet(t *testing.T) {
	m := model(t, threeCouplings)
	if _, err := ExplainAddition(m, nil); err == nil {
		t.Fatal("empty set must error")
	}
	_ = noise.Mask(nil)
}
