#!/usr/bin/env bash
# Crash-recovery smoke test: the durability ladder end to end against a
# real topkd process.
#
#   1. Boot with -state-dir, upload c17, byte-diff one query per op
#      against the committed goldens, SIGTERM (final snapshot).
#   2. Restart: the model restores warm from disk; responses must be
#      byte-identical to the goldens again. Then arm a faultinject
#      delay on the snapshot encoder, trigger a snapshot via re-upload,
#      and kill -9 the process mid-write.
#   3. Restart over the torn state dir: the atomic-rename protocol
#      means the previous complete snapshot is intact; the orphaned
#      temp file is swept; responses byte-diff clean.
#   4. Flip a byte in the snapshot's warm tail and restart: the file is
#      quarantined, the model rebuilt from its persisted design source,
#      and responses STILL byte-diff clean — zero failed requests.
#
# Usage: scripts/crash_recovery_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
STATE="$WORK/state"
PID=
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/topkd" ./cmd/topkd

boot() { # boot "$@" extra topkd flags; sets PID and ADDR
  : >"$WORK/topkd.log"
  "$WORK/topkd" -addr 127.0.0.1:0 -state-dir "$STATE" "$@" \
    >"$WORK/topkd.log" 2>&1 &
  PID=$!
  ADDR=
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's|.*listening on http://\([^/]*\)/.*|\1|p' "$WORK/topkd.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  [ -n "$ADDR" ] || { echo "crash_recovery: no listen address" >&2; cat "$WORK/topkd.log" >&2; exit 1; }
  for _ in $(seq 1 100); do
    [ "$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/readyz")" = 200 ] && return
    sleep 0.1
  done
  echo "crash_recovery: /readyz never went 200" >&2
  cat "$WORK/topkd.log" >&2
  exit 1
}

check_goldens() { # check_goldens label
  local label=$1
  local name path body
  while read -r name path body; do
    curl -fsS -X POST -H 'Content-Type: application/json' \
      -d "$body" "http://$ADDR$path" >"$WORK/$name.json"
    diff -u "testdata/golden/smoke_$name.json" "$WORK/$name.json" || {
      echo "crash_recovery: $label: $name drifted from golden" >&2
      exit 1
    }
  done <<'EOF'
addition /v1/models/c17/query {"op":"addition","k":2}
elimination /v1/models/c17/query {"op":"elimination","k":2}
whatif /v1/models/c17/query {"op":"whatif","fix":[0]}
sweep /v1/models/c17/sweep {"op":"addition","k":1,"workers":2}
EOF
}

# --- Phase 1: cold boot, upload, golden check, graceful stop. -------
boot
curl -fsS -X PUT --data-binary @testdata/c17.ckt "http://$ADDR/v1/models/c17" >/dev/null
check_goldens "cold server"
kill -TERM "$PID"; wait "$PID" || true
grep -q 'state saved' "$WORK/topkd.log" || {
  echo "crash_recovery: no final snapshot on SIGTERM" >&2
  cat "$WORK/topkd.log" >&2
  exit 1
}
[ -f "$STATE/c17.snap" ] || { echo "crash_recovery: c17.snap missing" >&2; exit 1; }

# --- Phase 2: warm restore, then kill -9 mid-snapshot. --------------
boot -fault 'snapshot.write:on=2,delay=10s'
grep -q 'restored model "c17" (warm)' "$WORK/topkd.log" || {
  echo "crash_recovery: restart did not restore warm" >&2
  cat "$WORK/topkd.log" >&2
  exit 1
}
check_goldens "restored server"
# Re-upload to trigger a snapshot; the encoder stalls on its second
# section, and kill -9 lands mid-write — a torn temp file, never a
# torn published snapshot.
curl -s -X PUT --data-binary @testdata/c17.ckt "http://$ADDR/v1/models/c17" >/dev/null &
CURL=$!
sleep 1
kill -9 "$PID"; wait "$PID" 2>/dev/null || true
wait "$CURL" 2>/dev/null || true

# --- Phase 3: reboot over the torn directory. -----------------------
boot
grep -q 'restored model "c17" (warm)' "$WORK/topkd.log" || {
  echo "crash_recovery: post-kill-9 restart did not restore warm" >&2
  cat "$WORK/topkd.log" >&2
  exit 1
}
if ls "$STATE"/.tmp.* >/dev/null 2>&1; then
  echo "crash_recovery: orphaned temp file survived the boot sweep" >&2
  exit 1
fi
check_goldens "post-crash server"
kill -TERM "$PID"; wait "$PID" || true

# --- Phase 4: bit-flip the warm tail, rebuild from source. ----------
python3 - "$STATE/c17.snap" <<'EOF'
import sys
p = sys.argv[1]
data = bytearray(open(p, 'rb').read())
data[-12] ^= 0x40
open(p, 'wb').write(bytes(data))
EOF
boot
grep -q 'rebuilt model "c17" from persisted source' "$WORK/topkd.log" || {
  echo "crash_recovery: corrupt snapshot was not rebuilt from source" >&2
  cat "$WORK/topkd.log" >&2
  exit 1
}
ls "$STATE/quarantine/"c17.snap.*.corrupt >/dev/null 2>&1 || {
  echo "crash_recovery: corrupt file not quarantined" >&2
  exit 1
}
check_goldens "rebuilt server"
kill -TERM "$PID"; wait "$PID" || true

echo "crash_recovery: OK"
