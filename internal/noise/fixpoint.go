package noise

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"topkagg/internal/budget"
	"topkagg/internal/cell"
	"topkagg/internal/circuit"
	"topkagg/internal/faultinject"
	"topkagg/internal/sta"
	"topkagg/internal/waveform"
)

// budgetStride is how many victim evaluations a sweep worker performs
// between budget polls: coarse enough that the disabled path (nil
// budget, one branch per poll) is invisible next to the envelope math,
// fine enough that cancellation latency stays at a handful of
// evaluations.
const budgetStride = 64

// Flat-grid kernel tuning (DESIGN.md §12). gridCells is the fixed
// column count of the per-victim sampling grid (a power of two, and at
// most 64 so the cell-skip set fits one machine word). gridMinAgg is
// the active-aggressor count below which the grid is not worth
// building: accumulation is O(1) per trapezoid (affine range adds)
// plus one O(cells) finalize/skip pass, while each walk evaluation it
// avoids costs ~aggressors trap evaluations — so the grid pays once a
// handful of aggressors is in play, the pprof-measured break-even on
// the paper circuits.
const (
	gridCells  = 16
	gridMinAgg = 4
)

// envEntry memoizes the envelope one coupling induces on one of its
// two endpoint nets. An entry is invalidated eagerly the moment its
// aggressor's notified window moves (markChanged), so validity is a
// single flag load on the hot path; the trapezoid itself lives in the
// victim CSR (vTraps), contiguous per victim. Late fixpoint
// iterations move only a handful of windows, so almost every envelope
// is reused bit-for-bit. The pulse parameters are memoized separately
// on the aggressor slew alone: window EAT/LAT drift every iteration
// (noise accumulates), but the slew usually does not, and the pulse
// solve is the only transcendental-math step of the envelope build —
// its edge reciprocals (invRise, invFall) ride along for the
// division-free trap rebuilds (waveform.NewTrapPre). Validity is
// cleared at the start of every run — carrying entries across runs
// through the engine pool would make the memo hit/miss counters
// depend on nondeterministic pool composition, breaking the
// worker-invariance guarantee of the published stats.
type envEntry struct {
	win              sta.Window
	pulse            Pulse
	invRise, invFall float64 // memoized 1/Rise, 1/Fall of the pulse
	valid            bool
	pvalid           bool
}

// evalScratch is one worker's allocation-free workspace: the union
// breakpoint times of the current victim, the pooled sampling grid,
// and the worker-local observability counts. sub and ramp serve the
// public DelayNoise path (delayNoiseInto). Each sweep worker owns
// exactly one.
type evalScratch struct {
	times  []float64       // union of breakpoint times
	traps  []waveform.Trap // active traps, densely packed in adjacency order
	grid   *waveform.Grid
	sub    []waveform.Point
	ramp   [2]waveform.Point
	counts evalCounts
}

// fixpoint is the worklist-driven engine behind Run and
// RunIncremental. It keeps the circuit timing in an sta.Incremental
// (so injecting one net's noise re-times only its fanout cone) and
// between sweeps tracks exactly the victims whose inputs moved:
//
//   - a victim whose own window changed (its reference ramp moved),
//   - a victim coupled to a net whose window changed (its aggressor
//     envelope moved),
//   - a victim whose own injected noise changed last sweep (the
//     "minus own noise" reference correction moved).
//
// Every other victim would recompute, by the purely functional per-net
// evaluation, exactly the value it already has — so skipping it leaves
// the trajectory of the fixpoint ascent bit-identical to the full
// per-iteration sweep the engine replaces.
//
// The per-victim evaluation runs on the flat-grid waveform kernel:
// envelopes are closed-form trapezoids (waveform.Trap), the noisy
// victim waveform g(t) = ramp(t) − Σ traps(t) is evaluated exactly
// only at union breakpoint times during a descending crossing walk,
// and a fixed-cell upper-bound grid over the victim's analysis window
// screens whole evaluations (the bound proves the result is the
// already-committed noise) and skips breakpoints that provably cannot
// host the crossing. Published numbers never come from a grid sample —
// the grid only discards work — so results are byte-identical with
// the screen disabled (Model.ExactWaveforms).
//
// Within one sweep the dirty victims are evaluated in parallel: an
// atomic cursor hands out queue slots, each worker writes only its
// slot's result, and the merge that commits results runs serially in
// queue order. No evaluation reads anything a concurrent evaluation
// writes (results are per-slot, envelope cache entries are owned by
// exactly one victim, windows and noise are frozen during the sweep),
// so results are byte-identical for any worker count.
//
// A fixpoint is pooled on its Model (getFixpoint/putFixpoint): the
// victim CSR, memo arrays and worker scratch are rebuilt in place per
// run, and the envelope memo persists across runs while the circuit
// snapshot is unchanged.
type fixpoint struct {
	m    *Model
	cols *circuit.Columns
	inc  *sta.Incremental

	// Victim CSR under the run's mask: victims lists the nets with at
	// least one active coupling in ascending NetID order; for victim
	// index vi, entries vOff[vi]..vOff[vi+1] of the parallel arrays
	// hold its active couplings (vCoup), their far endpoints (vAgg)
	// and their directed envelope-memo indices (vEnv, the snapshot's
	// CoupDir keys).
	victims []int32
	vIndex  []int32 // NetID -> victim index, -1 otherwise
	vOff    []int32
	vCoup   []int32
	vAgg    []int32
	vEnv    []int32

	// Per-CSR-slot envelope trapezoids, contiguous per victim so the
	// kernel streams them: vTraps[j] is the closed form of slot j's
	// envelope, vAct[j] whether it contributes (pulse peak > 0). Both
	// are (re)written only when slot j's memo entry rebuilds, and every
	// entry starts a run invalid, so no stale value survives a mask
	// change. Summation stays in adjacency order over active slots —
	// bit-identical to the envelope-list order it replaces.
	vTraps []waveform.Trap
	vAct   []bool

	dirty   []bool    // per victim index: re-evaluate next sweep
	queue   []int32   // victim indices evaluated this sweep, ascending
	results []float64 // per queue slot

	// notified is the per-net window as of the last time dependents
	// were told it moved. A net's window must drift more than markTol
	// from this record before its dependents re-evaluate; envelopes
	// are built from this view, so sub-threshold creep (ulp-level
	// float wobble late in the ascent) stops re-dirtying the whole
	// victim set. Movements accumulate against the record, so total
	// staleness per input is bounded by markTol.
	notified []sta.Window
	markTol  float64

	envs []envEntry // memo cache indexed by CoupDir (2*CouplingID + side)

	// Per-victim memo of the raw delay-noise evaluation, keyed on the
	// reference arrival and slew and invalidated whenever any incident
	// envelope rebuilt. Owned by the victim's evaluator, so parallel
	// sweeps touch disjoint entries. Cleared every run: the stored
	// value depends on the run's active-coupling set.
	rawLAT  []float64
	rawSlew []float64
	rawVal  []float64
	rawOK   []bool

	scratch []evalScratch
	workers int
	exact   bool // Model.ExactWaveforms: disable the grid fast path

	bud *budget.B // cooperative stop; nil runs unbounded
	obs *fixObs   // resolved metric handles; nil when uninstrumented
}

// getFixpoint checks an engine out of the model's pool (or allocates
// one for pool-less zero-value models); newFixpoint rebuilds every
// piece of state in place, so only the storage is recycled.
func (m *Model) getFixpoint() *fixpoint {
	if m.fixPool != nil {
		return m.fixPool.Get().(*fixpoint)
	}
	return new(fixpoint)
}

// putFixpoint returns an engine to the model's pool, dropping the
// run-scoped references.
func (m *Model) putFixpoint(f *fixpoint) {
	f.m, f.inc, f.bud, f.obs = nil, nil, nil, nil
	if m.fixPool != nil {
		m.fixPool.Put(f)
	}
}

// grow returns s resized to n elements, reusing capacity when it can.
// Contents are unspecified; callers initialize what they read.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// newFixpoint builds the sweep state for one analysis: the victim CSR
// under the given mask, the envelope memo cache and the per-worker
// scratch. inc carries the starting timing and noise vector; bud (nil
// = unlimited) lets the caller cancel the ascent between evaluation
// batches. The returned engine must be released with putFixpoint.
func newFixpoint(m *Model, active Mask, inc *sta.Incremental, bud *budget.B) *fixpoint {
	cols := inc.Columns()
	f := m.getFixpoint()
	f.m, f.cols, f.inc, f.bud = m, cols, inc, bud
	f.exact = m.ExactWaveforms

	nn := cols.NumNets()
	f.vIndex = grow(f.vIndex, nn)
	for i := range f.vIndex {
		f.vIndex[i] = -1
	}
	f.victims, f.vOff = f.victims[:0], f.vOff[:0]
	f.vCoup, f.vAgg, f.vEnv = f.vCoup[:0], f.vAgg[:0], f.vEnv[:0]
	for n := 0; n < nn; n++ {
		start := int32(len(f.vCoup))
		for j := cols.CoupOff[n]; j < cols.CoupOff[n+1]; j++ {
			if active.Active(circuit.CouplingID(cols.CoupIDs[j])) {
				f.vCoup = append(f.vCoup, cols.CoupIDs[j])
				f.vAgg = append(f.vAgg, cols.CoupOther[j])
				f.vEnv = append(f.vEnv, cols.CoupDir[j])
			}
		}
		if int32(len(f.vCoup)) == start {
			continue
		}
		f.vIndex[n] = int32(len(f.victims))
		f.victims = append(f.victims, int32(n))
		f.vOff = append(f.vOff, start)
	}
	f.vOff = append(f.vOff, int32(len(f.vCoup)))

	nc := len(f.vCoup)
	f.vTraps = grow(f.vTraps, nc)
	f.vAct = grow(f.vAct, nc)

	nv := len(f.victims)
	f.dirty = grow(f.dirty, nv)
	clear(f.dirty)
	f.rawLAT = grow(f.rawLAT, nv)
	f.rawSlew = grow(f.rawSlew, nv)
	f.rawVal = grow(f.rawVal, nv)
	f.rawOK = grow(f.rawOK, nv)
	clear(f.rawOK)
	f.notified = append(f.notified[:0], inc.Result().Windows...)
	f.markTol = m.Tol

	// The envelope memo recycles its storage through the pool but
	// starts every run invalid (see envEntry).
	ne := 2 * cols.NumCouplings()
	if cap(f.envs) < ne {
		f.envs = make([]envEntry, ne)
	} else {
		f.envs = f.envs[:ne]
		for i := range f.envs {
			f.envs[i].valid, f.envs[i].pvalid = false, false
		}
	}

	f.workers = m.Workers
	if f.workers <= 0 {
		f.workers = runtime.GOMAXPROCS(0)
	}
	if f.workers > nv {
		f.workers = nv
	}
	if f.workers < 1 {
		f.workers = 1
	}
	if cap(f.scratch) >= f.workers {
		f.scratch = f.scratch[:f.workers]
	} else {
		old := f.scratch
		f.scratch = make([]evalScratch, f.workers)
		copy(f.scratch, old)
	}
	f.obs = newFixObs(m.Obs)
	return f
}

// seedAll marks every victim for evaluation — the cold start of Run's
// first sweep.
func (f *fixpoint) seedAll() {
	for vi := range f.dirty {
		f.dirty[vi] = true
	}
}

// markChanged marks the victims whose evaluation depends on any of the
// given window-changed nets: the net itself (if a victim) and the far
// endpoints of its active couplings. A net only notifies its
// dependents when its window has drifted more than markTol since its
// last notification; that is the worklist gate of the ISSUE — nets
// whose inputs moved within tolerance are not re-evaluated.
func (f *fixpoint) markChanged(changed []circuit.NetID) {
	wins := f.inc.Result().Windows
	for _, n := range changed {
		vi := f.vIndex[n]
		if vi < 0 {
			// A net with no active coupling feeds no envelope; its
			// window move is invisible to every victim evaluation.
			continue
		}
		if !windowMoved(wins[n], f.notified[n], f.markTol) {
			continue
		}
		f.notified[n] = wins[n]
		f.dirty[vi] = true
		for j := f.vOff[vi]; j < f.vOff[vi+1]; j++ {
			if ui := f.vIndex[f.vAgg[j]]; ui >= 0 {
				f.dirty[ui] = true
			}
			// Envelopes built from this net's window are now stale.
			// Notification is the only way a notified-view window moves,
			// so invalidating here makes the memo check a single flag
			// load: an entry is stale exactly when its key window moved.
			f.envs[f.vEnv[j]^1].valid = false
		}
	}
}

// windowMoved reports whether any field of the window drifted beyond
// tol.
func windowMoved(a, b sta.Window, tol float64) bool {
	return a.EAT-b.EAT > tol || b.EAT-a.EAT > tol ||
		a.LAT-b.LAT > tol || b.LAT-a.LAT > tol ||
		a.Slew-b.Slew > tol || b.Slew-a.Slew > tol
}

// iterate runs sweeps over the dirty victims until the largest noise
// movement of a sweep is within Tol or the iteration budget runs out.
// Callers seed the dirty set first (seedAll for a cold run, the change
// cone for an incremental one).
//
// A non-nil error means the ascent was stopped before settling — the
// caller's budget tripped (cancellation, deadline, work allowance) or
// a sweep worker panicked — and the in-flight timing state must be
// discarded: a sweep that stops mid-queue commits nothing, so no
// partially-evaluated iteration ever reaches the returned Analysis.
func (f *fixpoint) iterate() (iters int, converged bool, err error) {
	for iter := 1; iter <= f.m.MaxIterations; iter++ {
		if err = f.bud.Err(); err != nil {
			break
		}
		iters = iter
		f.buildQueue()
		if o := f.obs; o != nil {
			o.sweeps.Inc()
			o.worklistDepth.Observe(int64(len(f.queue)))
		}
		maxDelta, serr := f.sweep()
		if serr != nil {
			err = serr
			break
		}
		f.markChanged(f.inc.Update())
		if maxDelta <= f.m.Tol {
			converged = true
			break
		}
	}
	f.obs.flush(f.scratch, iters, converged)
	f.obs.stopObserved(err)
	return iters, converged, err
}

// buildQueue drains the dirty set into the evaluation queue in victim
// (net-ID) order.
func (f *fixpoint) buildQueue() {
	f.queue = f.queue[:0]
	for vi, d := range f.dirty {
		if d {
			f.dirty[vi] = false
			f.queue = append(f.queue, int32(vi))
		}
	}
}

// sweep evaluates every queued victim against the frozen current
// timing, then serially commits the new noise values in victim order.
// It returns the largest single-net noise increase of the sweep and
// re-marks the victims whose noise moved (their reference correction
// changes next sweep).
//
// A sweep is all-or-nothing: when the budget trips or a worker
// panics, the commit loop never runs, so the incremental timing keeps
// exactly the previous iteration's state. Worker panics are recovered
// at the goroutine boundary (a panic in a bare goroutine would kill
// the process, not just the query) and surfaced as a typed
// *budget.PanicError.
func (f *fixpoint) sweep() (float64, error) {
	n := len(f.queue)
	if cap(f.results) < n {
		f.results = make([]float64, n)
	}
	res := f.results[:n]
	workers := f.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if err := f.sweepSerial(res); err != nil {
			return 0, err
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		var panicked atomic.Pointer[budget.PanicError]
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(s *evalScratch) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panicked.CompareAndSwap(nil, budget.NewPanicError("noise.fixpoint", r))
					}
				}()
				for {
					qi := int(next.Add(1) - 1)
					if qi >= n {
						return
					}
					if qi&(budgetStride-1) == 0 {
						if panicked.Load() != nil || f.bud.Err() != nil {
							return
						}
					}
					res[qi] = f.evaluate(int(f.queue[qi]), s)
				}
			}(&f.scratch[w])
		}
		wg.Wait()
		if pe := panicked.Load(); pe != nil {
			return 0, pe
		}
		if err := f.bud.Err(); err != nil {
			return 0, err
		}
	}
	maxDelta := 0.0
	extra := f.inc.ExtraLAT()
	for qi, vi := range f.queue {
		v := circuit.NetID(f.victims[vi])
		nv := res[qi]
		if d := nv - extra[v]; d > maxDelta {
			maxDelta = d
		}
		// Commit exactly; re-marking of this victim and its neighbours
		// flows through the window change the commit causes (via
		// Update and the markTol gate in markChanged).
		f.inc.SetExtraLAT(v, nv)
	}
	return maxDelta, nil
}

// sweepSerial is the single-worker evaluation loop, with the same
// budget polling and panic capture as the parallel pool so callers
// see identical stop semantics at any worker count.
func (f *fixpoint) sweepSerial(res []float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = budget.NewPanicError("noise.fixpoint", r)
		}
	}()
	s := &f.scratch[0]
	for qi, vi := range f.queue {
		if qi&(budgetStride-1) == 0 {
			if e := f.bud.Err(); e != nil {
				return e
			}
		}
		res[qi] = f.evaluate(int(vi), s)
	}
	return nil
}

// pulseFromCols is PulseParams fed from the columnar snapshot: the
// victim's driver resistance and lumped ground capacitance and the
// coupling's Cc come from precomputed columns whose values are
// bit-identical to the pointer-model accessors, so the pulse is too.
func (f *fixpoint) pulseFromCols(v, cid int32, aggSlew float64) Pulse {
	rv := f.cols.DriverRes[v]
	cv := f.cols.CvBase[v]
	cc := f.cols.CoupCc[cid]
	tr := math.Max(aggSlew, 1e-3)
	vp, rEff := f.m.solvePeak(rv, cc, cv, tr)
	tau := cell.RC(rEff, cc+cv)
	return Pulse{Vp: vp, Rise: tr / 2, Fall: math.Max(2*tau, 1e-3)}
}

// evaluate recomputes one victim's worst-case delay noise from its
// aggressors' current windows, applying the monotone clamp of the
// fixpoint ascent. It reads only sweep-frozen state (windows, noise,
// its own cache entries) and writes only the worker's scratch and its
// own memo entries, so concurrent evaluations of distinct victims
// never interfere.
func (f *fixpoint) evaluate(vi int, s *evalScratch) float64 {
	faultinject.Fire(faultinject.SiteNoiseEval)
	v := f.victims[vi]
	// Envelopes and the reference ramp are built from the notified
	// window view: stale by at most markTol, stable between
	// notifications, identical for every worker count.
	wins := f.notified
	s.counts.evals++
	lo, hi := f.vOff[vi], f.vOff[vi+1]
	nact := 0
	allHit := true
	for j := lo; j < hi; j++ {
		e := &f.envs[f.vEnv[j]]
		if !e.valid {
			s.counts.envMisses++
			win := wins[f.vAgg[j]]
			if !e.pvalid || e.win.Slew != win.Slew {
				s.counts.pulseMiss++
				e.pulse = f.pulseFromCols(v, f.vCoup[j], win.Slew)
				e.invRise = 1 / e.pulse.Rise
				e.invFall = 1 / e.pulse.Fall
				e.pvalid = true
			} else {
				s.counts.pulseHits++
			}
			e.win = win
			act := e.pulse.Vp > 0
			f.vAct[j] = act
			if act {
				f.vTraps[j] = waveform.NewTrapPre(win.EAT-e.pulse.Rise, e.pulse.Rise,
					win.LAT, e.pulse.Fall, e.pulse.Vp, e.invRise, e.invFall)
			}
			e.valid = true
			allHit = false
		} else {
			s.counts.envHits++
		}
		if f.vAct[j] {
			nact++
		}
	}
	if !allHit {
		f.rawOK[vi] = false
	}
	// The reference victim transition includes noise propagated from
	// the fanin but not the victim's own injected noise (which is
	// exactly what is being recomputed here).
	vw := wins[v]
	prev := f.inc.ExtraLAT()[v]
	vw.LAT -= prev
	var n float64
	if f.rawOK[vi] && vw.LAT == f.rawLAT[vi] && vw.Slew == f.rawSlew[vi] {
		// Identical envelopes, reference arrival and slew: the memoized
		// value stands. (A grid-screened memo entry stores the prev it
		// proved unbeatable; prev is monotone per victim within a run,
		// so the clamp below reconciles it exactly as a re-screen
		// would.)
		s.counts.rawHits++
		n = f.rawVal[vi]
	} else {
		s.counts.rawMisses++
		n = f.delayNoiseFlat(vw, prev, f.vTraps[lo:hi], f.vAct[lo:hi], nact, s)
		f.rawLAT[vi], f.rawSlew[vi], f.rawVal[vi] = vw.LAT, vw.Slew, n
		f.rawOK[vi] = true
	}
	// Keep per-net noise monotone across iterations: arrival shifts
	// can move a victim past an aggressor envelope and make the raw
	// recomputation oscillate, but delay noise once observed is never
	// un-observed (the fixpoint lattice of Zhou [4] is ascended from
	// below).
	if n < prev {
		n = prev
	}
	return n
}

// gAt evaluates the noisy victim waveform g(t) = ramp(t) − Σ trap_i(t)
// exactly: the ramp interpolation is the PWL segment expression on the
// two-point ramp {(r0,0),(r1,Vdd)}, and the traps — densely packed in
// the victim's adjacency order, inactive slots dropped (they would add
// exactly +0.0, and At is non-negative so no −0.0 hazard exists) — are
// summed in that order, making the value a deterministic pure function
// of the frozen sweep state.
func (f *fixpoint) gAt(t, r0, r1 float64, traps []waveform.Trap) float64 {
	var rv float64
	switch {
	case t <= r0:
		rv = 0
	case t >= r1:
		rv = f.m.Vdd
	default:
		fr := (t - r0) / (r1 - r0)
		rv = fr * f.m.Vdd
	}
	sum := 0.0
	for i := range traps {
		sum += traps[i].At(t)
	}
	return rv - sum
}

// delayNoiseFlat computes the victim's raw worst-case delay noise on
// the flat kernel: the latest time the noisy waveform g(t) = ramp(t)
// − Σ envelopes(t) still sits at or below Vdd/2, minus the reference
// arrival. g is piecewise linear with breakpoints only at the union
// of the ramp's and the trapezoids' breakpoints, so the crossing walk
// evaluates g exactly at those times, descending, and interpolates
// within the bracketing segment — the same latest-upward-crossing
// semantics as PWL.LatestTimeAtOrBelow, without ever building the
// merged waveform.
//
// With enough aggressors (gridMinAgg) and the grid enabled, a
// gridCells-cell upper-bound accumulation over the window first
// derives a cell-skip word: cell c is skipped when even ramp(PadLeft(c)) − Col[c] — a
// certified lower bound on g anywhere in the cell, exact in float
// because per-trap column contributions dominate the summands of gAt
// pointwise and float addition/subtraction are monotone — exceeds
// level+Eps, so no time in the cell can be a crossing candidate. The
// same word yields an upper bound on the crossing time; when that
// bound cannot beat prev (the victim's committed noise, which the
// caller's monotone clamp would restore anyway), the walk is skipped
// entirely and prev is returned. Both shortcuts discard provably
// irrelevant work only, so the result is byte-identical to the exact
// walk (Model.ExactWaveforms).
func (f *fixpoint) delayNoiseFlat(vw sta.Window, prev float64, traps []waveform.Trap, act []bool, nact int, s *evalScratch) float64 {
	if nact == 0 {
		return 0
	}
	vdd := f.m.Vdd
	level := vdd / 2
	slew := math.Max(vw.Slew, 1e-3)
	r0, r1 := vw.LAT-slew/2, vw.LAT+slew/2

	// Gather the union breakpoint times, pruning as they stream past.
	// Any breakpoint at or below the ramp's midpoint is a certified
	// crossing candidate: the exact ramp expression is monotone in t and
	// checked once at tMid, and the envelope only subtracts. The
	// descending walk always returns at the first candidate it meets —
	// every time above a candidate evaluated non-candidate, so the
	// bracket is valid the moment one appears. Times below the latest
	// certified candidate (tstop) can therefore never be visited, in
	// either mode: the gather keeps only breakpoints above tMid plus
	// tstop itself, and the grid starts there instead of at the earliest
	// envelope onset, doubling its resolution over the decidable region.
	tMid := r0 + (r1-r0)/2
	if fr := (tMid - r0) / (r1 - r0); !(fr*vdd <= level) {
		tMid = r0 // pathological rounding: keep everything past the ramp foot
	}
	tstop := r0 // ramp(r0) is exactly zero: always a candidate
	ts := append(s.times[:0], r1)
	envEnd := math.Inf(-1)
	// Compact the active traps densely while streaming their
	// breakpoints: the walk's exact evaluations and the grid
	// accumulation then loop branch-free, and the adjacency order the
	// summation depends on is preserved.
	dense := s.traps[:0]
	for i := range traps {
		if !act[i] {
			continue
		}
		dense = append(dense, traps[i])
		tr := &dense[len(dense)-1]
		if tr.Q3 > envEnd {
			envEnd = tr.Q3
		}
		if tr.Q0 > tMid {
			ts = append(ts, tr.Q0)
		} else if tr.Q0 > tstop {
			tstop = tr.Q0
		}
		if tr.Q1 > tMid {
			ts = append(ts, tr.Q1)
		} else if tr.Q1 > tstop {
			tstop = tr.Q1
		}
		if tr.Q2 != tr.Q1 {
			if tr.Q2 > tMid {
				ts = append(ts, tr.Q2)
			} else if tr.Q2 > tstop {
				tstop = tr.Q2
			}
		}
		if tr.Q3 > tMid {
			ts = append(ts, tr.Q3)
		} else if tr.Q3 > tstop {
			tstop = tr.Q3
		}
	}
	ts = append(ts, tstop)
	s.times, s.traps = ts, dense
	hi := r1
	if envEnd > hi {
		hi = envEnd
	}
	n := len(ts)

	var g *waveform.Grid
	var skip uint64
	if !f.exact && nact >= gridMinAgg {
		g = s.grid
		if g == nil {
			g = waveform.GetGrid()
			s.grid = g
		}
		g.Reset(tstop, hi, gridCells)
		for i := range dense {
			g.AddTrapMax(dense[i])
		}
		// Fold the range additions and derive the cell-skip word and the
		// highest surviving cell in one register-only pass: cell c is
		// skipped when even ramp(PadLeft(c)) minus the column bound — a
		// certified lower bound on g anywhere in the cell — clears
		// level+Eps.
		var cMax int
		skip, cMax = g.FinalizeSkip(r0, r1, vdd, level+waveform.Eps)
		// Victim screen, before any sorting: a crossing time satisfies
		// g(t*) = level, so its cell is unskipped, and the tail outcome
		// envEnd is at most the global latest breakpoint, whose cell
		// must be unskipped for the tail to fire at all. Either way the
		// result time is bounded by the padded right edge of the
		// highest unskipped cell (the walk-exhausted outcome, tstop, is
		// below vw.LAT and can never beat a committed prev).
		if skip != 0 {
			ub := tstop
			if cMax >= 0 {
				ub = g.PadRight(cMax)
			}
			if ub-vw.LAT <= prev {
				s.counts.gridScreens++
				return prev
			}
		}
	}

	// Sort the pruned times ascending. Insertion sort: the array is a
	// couple dozen entries of short ascending runs, and the sorted
	// result is a pure function of the time multiset, so both modes
	// walk identical breakpoint sequences.
	for i := 1; i < n; i++ {
		v := ts[i]
		j := i - 1
		for ; j >= 0 && ts[j] > v; j-- {
			ts[j+1] = ts[j]
		}
		ts[j+1] = v
	}

	// Tail anchor: at the global latest time hi every trapezoid has
	// decayed to exactly zero and the ramp is saturated, so g(hi) is
	// exactly Vdd — the gAt call would reproduce it bit-for-bit. The
	// settle branch (envelope holding the victim below threshold past
	// its own span) fires only for degenerate sub-Eps supplies.
	tPrev := ts[n-1]
	gPrev := vdd
	if gPrev <= level+waveform.Eps {
		d := envEnd - vw.LAT
		if d < 0 {
			return 0
		}
		return d
	}
	// Descending crossing walk over distinct breakpoint times. A
	// skipped time cannot satisfy the candidate test (its g provably
	// exceeds level+Eps), so it participates only as the upper end of
	// a bracket, evaluated exactly on demand.
	prevValid := true
	for i := n - 2; i >= 0; i-- {
		t := ts[i]
		if t == ts[i+1] {
			continue
		}
		if skip != 0 && skip&(1<<uint(g.CellOf(t))) != 0 {
			s.counts.gridSkips++
			tPrev, prevValid = t, false
			continue
		}
		gt := f.gAt(t, r0, r1, dense)
		if gt <= level+waveform.Eps {
			gb := gPrev
			if !prevValid {
				gb = f.gAt(tPrev, r0, r1, dense)
			}
			if gb > level {
				var tc float64
				if gb == gt {
					tc = tPrev
				} else {
					fr := (level - gt) / (gb - gt)
					if fr < 0 {
						fr = 0
					}
					if fr > 1 {
						fr = 1
					}
					tc = t + fr*(tPrev-t)
				}
				d := tc - vw.LAT
				if d < 0 {
					return 0
				}
				return d
			}
		}
		tPrev, gPrev, prevValid = t, gt, true
	}
	// Entire waveform above level.
	d := ts[0] - vw.LAT
	if d < 0 {
		return 0
	}
	return d
}
