package serve

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"topkagg/internal/circuit"
	"topkagg/internal/core"
	"topkagg/internal/gen"
	"topkagg/internal/noise"
	"topkagg/internal/snapshot"
)

// snapQueries builds the query set the restore-equivalence suite runs:
// addition and elimination sweeps over a handful of nets plus the
// whole circuit, and a what-if — every op the wire surface exposes.
func snapQueries(c *circuit.Circuit) []Query {
	nets := []circuit.NetID{WholeCircuit}
	for id := 0; id < c.NumNets() && len(nets) < 5; id++ {
		if c.Net(circuit.NetID(id)).Driver >= 0 {
			nets = append(nets, circuit.NetID(id))
		}
	}
	var queries []Query
	queries = append(queries, KSweep(Addition, nets, 3)...)
	queries = append(queries, KSweep(Elimination, nets[:2], 2)...)
	if c.NumCouplings() > 1 {
		queries = append(queries, Query{Op: WhatIf, Net: WholeCircuit, Fix: []circuit.CouplingID{0, 1}})
	}
	return queries
}

// warmAnalyzer builds an analyzer and runs the query set through it so
// its fixpoint and preparation caches are populated.
func warmAnalyzer(t *testing.T, m *noise.Model, opt core.Options, queries []Query, workers int) *Analyzer {
	t.Helper()
	a := NewAnalyzer(m, opt)
	for _, r := range a.RunBatch(queries, workers) {
		if r.Err != nil {
			t.Fatalf("warmup query failed: %v", r.Err)
		}
	}
	return a
}

func snapshotBytes(t *testing.T, a *Analyzer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRestoreEquivalenceRandomCircuits is the hard contract behind
// crash-safe persistence: over many seeded circuits, an Analyzer
// restored from a snapshot answers every query byte-identically to the
// warm Analyzer it was taken from AND to a cold Analyzer over the same
// model — at one worker and at eight. Persistence must be invisible in
// the responses.
func TestRestoreEquivalenceRandomCircuits(t *testing.T) {
	n := 50
	if testing.Short() {
		n = 8
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		c, err := gen.Build(gen.Spec{Name: "snap", Gates: 25, Couplings: 20, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		opt := core.Options{SlackFrac: 1, VerifyTop: 4}
		queries := snapQueries(c)
		warm := warmAnalyzer(t, noise.NewModel(c), opt, queries, 4)
		want := warm.RunBatch(queries, 1)

		data := snapshotBytes(t, warm)
		restored, err := RestoreAnalyzer(bytes.NewReader(data), noise.NewModel(c))
		if err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		cold := NewAnalyzer(noise.NewModel(c), opt)
		for _, workers := range []int{1, 8} {
			got := restored.RunBatch(queries, workers)
			for i := range queries {
				if (want[i].Err == nil) != (got[i].Err == nil) {
					t.Fatalf("seed %d workers %d query %d: error mismatch: %v vs %v",
						seed, workers, i, want[i].Err, got[i].Err)
				}
				if want[i].Err == nil && !resultsEqual(want[i].Result, got[i].Result) {
					t.Fatalf("seed %d workers %d query %d (%s net %d): restored result differs from warm",
						seed, workers, i, queries[i].Op, queries[i].Net)
				}
			}
		}
		coldResp := cold.RunBatch(queries, 8)
		for i := range queries {
			if want[i].Err == nil && !resultsEqual(coldResp[i].Result, want[i].Result) {
				t.Fatalf("seed %d query %d: warm result differs from cold", seed, i)
			}
		}
	}
}

// TestSnapshotStability pins byte-stable snapshots: snapshotting the
// same warm state twice — and snapshotting the restored analyzer —
// yields identical files. Map iteration order must not leak in.
func TestSnapshotStability(t *testing.T) {
	c, err := gen.Build(gen.Spec{Name: "snap", Gates: 25, Couplings: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{SlackFrac: 1, VerifyTop: 4}
	queries := snapQueries(c)
	warm := warmAnalyzer(t, noise.NewModel(c), opt, queries, 4)
	first := snapshotBytes(t, warm)
	if !bytes.Equal(first, snapshotBytes(t, warm)) {
		t.Fatal("two snapshots of the same warm state differ")
	}
	restored, err := RestoreAnalyzer(bytes.NewReader(first), noise.NewModel(c))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, snapshotBytes(t, restored)) {
		t.Fatal("snapshot of the restored analyzer differs from its source")
	}
}

// TestColdSnapshotRoundTrip covers the no-warm-state path: a fresh
// Analyzer snapshots to just a header and restores to a working
// Analyzer that computes from scratch.
func TestColdSnapshotRoundTrip(t *testing.T) {
	c, err := gen.Build(gen.Spec{Name: "snap", Gates: 25, Couplings: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{SlackFrac: 1, VerifyTop: 4}
	a := NewAnalyzer(noise.NewModel(c), opt)
	data := snapshotBytes(t, a)
	restored, err := RestoreAnalyzer(bytes.NewReader(data), noise.NewModel(c))
	if err != nil {
		t.Fatal(err)
	}
	resp := restored.Do(Query{Op: Addition, Net: WholeCircuit, K: 2})
	if resp.Err != nil {
		t.Fatalf("query on cold-restored analyzer: %v", resp.Err)
	}
}

// TestRestoreRejectsWrongCircuit: a snapshot must only restore onto a
// model of the circuit it was taken from.
func TestRestoreRejectsWrongCircuit(t *testing.T) {
	c1, _ := gen.Build(gen.Spec{Name: "snap", Gates: 25, Couplings: 20, Seed: 5})
	c2, _ := gen.Build(gen.Spec{Name: "snap", Gates: 30, Couplings: 25, Seed: 6})
	opt := core.Options{SlackFrac: 1, VerifyTop: 4}
	warm := warmAnalyzer(t, noise.NewModel(c1), opt, snapQueries(c1), 2)
	data := snapshotBytes(t, warm)
	if _, err := RestoreAnalyzer(bytes.NewReader(data), noise.NewModel(c2)); err == nil {
		t.Fatal("snapshot restored onto a different circuit")
	}
}

// TestRestoreRejectsDamage: every truncation and a sweep of bit flips
// must yield a typed error and no Analyzer — never a panic, never a
// silently short restore.
func TestRestoreRejectsDamage(t *testing.T) {
	c, err := gen.Build(gen.Spec{Name: "snap", Gates: 25, Couplings: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{SlackFrac: 1, VerifyTop: 4}
	warm := warmAnalyzer(t, noise.NewModel(c), opt, snapQueries(c), 2)
	data := snapshotBytes(t, warm)
	m := noise.NewModel(c)

	for n := 0; n < len(data); n += 7 {
		if a, err := RestoreAnalyzer(bytes.NewReader(data[:n]), m); err == nil || a != nil {
			t.Fatalf("truncation to %d bytes: err=%v analyzer=%v", n, err, a != nil)
		}
	}
	for i := 0; i < len(data); i += 11 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x10
		if a, err := RestoreAnalyzer(bytes.NewReader(mut), m); err == nil || a != nil {
			t.Fatalf("bit flip at byte %d: err=%v analyzer=%v", i, err, a != nil)
		}
	}
	// Sanity: the undamaged bytes still restore.
	if _, err := RestoreAnalyzer(bytes.NewReader(data), m); err != nil {
		t.Fatalf("pristine snapshot failed to restore: %v", err)
	}
}

// FuzzRestore feeds arbitrary bytes to RestoreAnalyzer: any input must
// yield either a working Analyzer (valid container) or a typed error —
// never a panic, never a partially-populated Analyzer.
func FuzzRestore(f *testing.F) {
	c, err := gen.Build(gen.Spec{Name: "snap", Gates: 20, Couplings: 15, Seed: 11})
	if err != nil {
		f.Fatal(err)
	}
	opt := core.Options{SlackFrac: 1, VerifyTop: 2}
	m := noise.NewModel(c)
	a := NewAnalyzer(m, opt)
	queries := snapQueries(c)
	for _, r := range a.RunBatch(queries, 2) {
		if r.Err != nil {
			f.Fatal(r.Err)
		}
	}
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		f.Fatal(err)
	}
	seed := buf.Bytes()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:9])
	f.Add([]byte{})
	f.Add([]byte(snapshot.Magic))
	mut := append([]byte(nil), seed...)
	mut[len(mut)/3] ^= 0x80
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := RestoreAnalyzer(bytes.NewReader(data), noise.NewModel(c))
		if err != nil {
			if restored != nil {
				t.Fatal("error AND analyzer returned")
			}
			return
		}
		// A restore that claims success must serve queries that match
		// the live analyzer byte for byte.
		resp := restored.Do(queries[0])
		want := a.Do(queries[0])
		if (resp.Err == nil) != (want.Err == nil) {
			t.Fatalf("restored analyzer error mismatch: %v vs %v", resp.Err, want.Err)
		}
		if resp.Err == nil && !resultsEqual(resp.Result, want.Result) {
			t.Fatal("restored analyzer diverges from source")
		}
	})
}

// TestWarmRestartSpeedup is the point of deep serialization: restoring
// a snapshot must be at least 10x faster than rebuilding the same warm
// state cold (noise fixpoint + preparation). The per-query enumeration
// cost is paid identically by both sides and is subtracted out by
// comparing first-query times over identical caches. The measurement
// retries under a best-of-N discipline: scheduler contention (the rest
// of the suite running in sibling packages) can only inflate a
// wall-clock reading, so one clean attempt proves the contract.
// Recorded in EXPERIMENTS.md.
func TestWarmRestartSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	c, err := gen.Scale(2000)
	if err != nil {
		t.Fatal(err)
	}
	var net circuit.NetID = -1
	for id := 0; id < c.NumNets(); id++ {
		if c.Net(circuit.NetID(id)).Driver >= 0 {
			net = circuit.NetID(id)
			break
		}
	}
	opt := core.Options{}
	q := Query{Op: Addition, Net: net, K: 1}

	const attempts = 4
	var lastFail string
	for attempt := 1; attempt <= attempts; attempt++ {
		coldStart := time.Now()
		a := NewAnalyzer(noise.NewModel(c), opt)
		coldResp := a.Do(q)
		coldD := time.Since(coldStart)
		if coldResp.Err != nil {
			t.Fatal(coldResp.Err)
		}

		var buf bytes.Buffer
		if err := a.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		m2 := noise.NewModel(c) // model construction is shared by both paths

		restoreStart := time.Now()
		restored, err := RestoreAnalyzer(bytes.NewReader(buf.Bytes()), m2)
		restoreD := time.Since(restoreStart)
		if err != nil {
			t.Fatal(err)
		}
		warmStart := time.Now()
		resp := restored.Do(q)
		warmD := time.Since(warmStart)
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		if !resultsEqual(coldResp.Result, resp.Result) {
			t.Fatal("warm-restart result differs from cold")
		}

		// Both first queries ran the same enumeration over equally cold
		// envelope caches; the difference is the fixpoint + preparation
		// the restore recovered from disk.
		coldBuild := coldD - warmD
		t.Logf("attempt %d: gen.Scale(2000): cold first query %v, restore of %d-byte snapshot %v + first query %v; cold cache build %v (%.0fx restore)",
			attempt, coldD, buf.Len(), restoreD, warmD, coldBuild, float64(coldBuild)/float64(restoreD))
		if coldBuild > 0 && restoreD*10 <= coldBuild {
			return
		}
		lastFail = fmt.Sprintf("restore %v not >= 10x faster than cold rebuild %v", restoreD, coldBuild)
	}
	t.Fatalf("no attempt met the 10x contract in %d tries: %s", attempts, lastFail)
}

// restoreEOFTyped pins that boundary truncation (clean EOF where the
// end section should be) is reported as corruption, not as success.
func TestRestoreEOFTyped(t *testing.T) {
	c, _ := gen.Build(gen.Spec{Name: "snap", Gates: 20, Couplings: 15, Seed: 13})
	opt := core.Options{SlackFrac: 1}
	a := warmAnalyzer(t, noise.NewModel(c), opt, snapQueries(c), 2)
	data := snapshotBytes(t, a)
	// Chop the trailing end-section frame (9-byte header, empty payload).
	chopped := data[:len(data)-9]
	_, err := RestoreAnalyzer(bytes.NewReader(chopped), noise.NewModel(c))
	if err == nil || !snapshot.IsCorrupt(err) {
		t.Fatalf("boundary truncation yielded %v, want typed corruption", err)
	}
	if err == io.EOF {
		t.Fatal("raw io.EOF leaked to the caller")
	}
}
