package budget

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *B
	if err := b.Err(); err != nil {
		t.Fatalf("nil budget Err = %v, want nil", err)
	}
	if err := b.Charge(1 << 40); err != nil {
		t.Fatalf("nil budget Charge = %v, want nil", err)
	}
	if got := b.Used(); got != 0 {
		t.Fatalf("nil budget Used = %d, want 0", got)
	}
	if got := b.Remaining(); got != -1 {
		t.Fatalf("nil budget Remaining = %d, want -1", got)
	}
	if ctx := b.Context(); ctx != context.Background() {
		t.Fatalf("nil budget Context = %v, want Background", ctx)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx)
	if err := b.Err(); err != nil {
		t.Fatalf("live budget Err = %v, want nil", err)
	}
	cancel()
	err := b.Err()
	if err == nil {
		t.Fatal("Err after cancel = nil, want error")
	}
	if got := ReasonOf(err); got != Canceled {
		t.Fatalf("ReasonOf = %v, want Canceled", got)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not unwrap to context.Canceled", err)
	}
	// Sticky: the same condition is returned forever after.
	if err2 := b.Err(); err2 != err {
		t.Fatalf("Err not sticky: %v then %v", err, err2)
	}
}

func TestDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := New(ctx).Err()
	if got := ReasonOf(err); got != DeadlineExceeded {
		t.Fatalf("ReasonOf = %v, want DeadlineExceeded (err=%v)", got, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v does not unwrap to context.DeadlineExceeded", err)
	}
}

func TestWorkExhaustion(t *testing.T) {
	b := WithWork(context.Background(), 10)
	for i := 0; i < 10; i++ {
		if err := b.Charge(1); err != nil {
			t.Fatalf("Charge %d = %v, want nil", i, err)
		}
	}
	err := b.Charge(1)
	if got := ReasonOf(err); got != WorkExhausted {
		t.Fatalf("ReasonOf = %v, want WorkExhausted (err=%v)", got, err)
	}
	if got := b.Used(); got != 11 {
		t.Fatalf("Used = %d, want 11", got)
	}
	if got := b.Remaining(); got != 0 {
		t.Fatalf("Remaining = %d, want 0", got)
	}
	// Err (not just Charge) must also report the sticky stop.
	if got := ReasonOf(b.Err()); got != WorkExhausted {
		t.Fatalf("Err after exhaustion: reason %v, want WorkExhausted", got)
	}
}

func TestChargeConcurrent(t *testing.T) {
	b := WithWork(context.Background(), 1000)
	var wg sync.WaitGroup
	succeeded := make([]int64, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Charge until the allowance trips.
			for b.Charge(1) == nil {
				succeeded[w]++
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, n := range succeeded {
		total += n
	}
	// Exactly the allowance succeeds, regardless of interleaving, and
	// the overshoot is bounded by one failing charge per worker.
	if total != 1000 {
		t.Errorf("successful charges = %d, want exactly 1000", total)
	}
	if got := b.Used(); got != 1000+8 {
		t.Errorf("Used = %d, want 1008 (allowance + one failing charge per worker)", got)
	}
}

func TestFailRecordsPanic(t *testing.T) {
	b := New(context.Background())
	pe := NewPanicError("pool", "boom")
	err := b.Fail(WorkerPanic, pe)
	if got := ReasonOf(err); got != WorkerPanic {
		t.Fatalf("ReasonOf = %v, want WorkerPanic", got)
	}
	var got *PanicError
	if !errors.As(err, &got) || got != pe {
		t.Fatalf("err %v does not unwrap to the panic capture", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError captured no stack")
	}
	// First condition wins over later ones.
	if err2 := b.Fail(Canceled, nil); ReasonOf(err2) != WorkerPanic {
		t.Fatalf("second Fail returned %v, want the first condition", err2)
	}
	// Fail on a nil budget still mints a usable error.
	if err := (*B)(nil).Fail(WorkExhausted, nil); ReasonOf(err) != WorkExhausted {
		t.Fatalf("nil-budget Fail reason = %v", ReasonOf(err))
	}
}

func TestReasonOfClassifiesBareAndWrapped(t *testing.T) {
	cases := []struct {
		err  error
		want Reason
	}{
		{nil, None},
		{errors.New("plain"), None},
		{context.Canceled, Canceled},
		{context.DeadlineExceeded, DeadlineExceeded},
		{&Error{Reason: WorkExhausted, Op: "x"}, WorkExhausted},
		{NewPanicError("x", 1), WorkerPanic},
	}
	for _, c := range cases {
		if got := ReasonOf(c.err); got != c.want {
			t.Errorf("ReasonOf(%v) = %v, want %v", c.err, got, c.want)
		}
		// Wrapping must not change the classification.
		if c.err != nil {
			wrapped := errorsJoinish(c.err)
			if got := ReasonOf(wrapped); got != c.want {
				t.Errorf("ReasonOf(wrapped %v) = %v, want %v", c.err, got, c.want)
			}
		}
	}
	if IsStop(nil) || IsStop(errors.New("plain")) {
		t.Error("IsStop true for a non-stop error")
	}
	if !IsStop(context.Canceled) {
		t.Error("IsStop false for context.Canceled")
	}
}

// errorsJoinish wraps like the engine layers do (fmt.Errorf %w).
func errorsJoinish(err error) error {
	return &wrapped{err}
}

type wrapped struct{ err error }

func (w *wrapped) Error() string { return "layer: " + w.err.Error() }
func (w *wrapped) Unwrap() error { return w.err }

func TestReasonStrings(t *testing.T) {
	for r, want := range map[Reason]string{
		None: "none", Canceled: "canceled", DeadlineExceeded: "deadline",
		WorkExhausted: "work-budget", WorkerPanic: "worker-panic",
	} {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(r), got, want)
		}
		if r.Transient() != (r != None) {
			t.Errorf("%v.Transient() = %v", r, r.Transient())
		}
	}
}
