// Command experiments regenerates the paper's evaluation: Table 1
// (brute force vs proposed), Tables 2(a)/2(b) (delay and runtime vs k
// over benchmarks i1..i10) and Figure 10 (delay convergence curves).
//
// Usage:
//
//	experiments -exp all -quick          # reduced sizes, finishes fast
//	experiments -exp table2a            # the full paper layout
//	experiments -exp fig10 -csv > f.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"topkagg/internal/exp"
	"topkagg/internal/gen"
	"topkagg/internal/report"
)

func main() {
	var (
		which = flag.String("exp", "all", "experiment: table1, table2a, table2b, fig10, filterstats, coverage, seeds or all")
		quick = flag.Bool("quick", false, "reduced circuits and k values (seconds instead of many minutes)")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned text")
		bfsec = flag.Int("bf-budget", 0, "brute-force budget per cardinality in seconds (0 = default)")
	)
	flag.Parse()

	cfg := exp.Config{}
	if *quick {
		cfg = exp.Quick()
	}
	if *bfsec > 0 {
		cfg.BFBudget = time.Duration(*bfsec) * time.Second
	}

	emit := func(t *report.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}

	run := func(name string) error {
		switch name {
		case "table1":
			t, err := exp.Table1(cfg)
			if err != nil {
				return err
			}
			emit(t)
		case "table2a":
			t, err := exp.Table2(cfg, exp.Addition)
			if err != nil {
				return err
			}
			emit(t)
		case "table2b":
			t, err := exp.Table2(cfg, exp.Elimination)
			if err != nil {
				return err
			}
			emit(t)
		case "seeds":
			// i1-shaped circuits under five generator seeds.
			t, err := exp.SeedRobustness(gen.Spec{Name: "i1-seed", Gates: 59, Couplings: 232}, nil, 10)
			if err != nil {
				return err
			}
			emit(t)
		case "coverage":
			t, err := exp.Coverage(cfg, 0.2, 100)
			if err != nil {
				return err
			}
			emit(t)
		case "filterstats":
			t, err := exp.FilterStats(cfg)
			if err != nil {
				return err
			}
			emit(t)
		case "fig10":
			series, err := exp.Fig10(cfg)
			if err != nil {
				return err
			}
			emit(report.SeriesTable("Figure 10: circuit delay vs k", "k", series))
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*which}
	if *which == "all" {
		names = []string{"table1", "table2a", "table2b", "fig10"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}
