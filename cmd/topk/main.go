// Command topk runs top-k aggressor analysis on a circuit: either the
// addition set (which k couplings would add the most delay to
// noiseless timing) or the elimination set (which k couplings to fix
// for the largest delay recovery).
//
// Circuits load from the native netlist format, from gate-level
// Verilog plus SPEF parasitics, or from the built-in benchmark
// generator:
//
//	topk -netlist design.ckt -k 10 -mode elim
//	topk -verilog design.v -spef design.spef -k 10 -mode elim
//	topk -bench i2 -k 20 -mode add -curve -report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"topkagg"
)

func main() {
	var (
		path    = flag.String("netlist", "", "circuit netlist file (native format)")
		vpath   = flag.String("verilog", "", "gate-level Verilog netlist file")
		spath   = flag.String("spef", "", "SPEF parasitics file (with -verilog)")
		bench   = flag.String("bench", "", "paper benchmark name instead of a file")
		libPath = flag.String("lib", "", "Liberty (.lib) cell library (default: built-in synthetic library)")
		k       = flag.Int("k", 10, "set cardinality")
		mode    = flag.String("mode", "add", "add (addition set) or elim (elimination set)")
		exact   = flag.Bool("exact", false, "disable all pruning caps (small circuits only)")
		curve   = flag.Bool("curve", false, "print the full per-cardinality delay curve")
		report  = flag.Bool("report", false, "print the noisy critical-path report")
		prefilt = flag.Bool("filter", false, "report false-aggressor classification before the analysis")
		plot    = flag.String("plot", "", "net name: plot its transition, noise envelope and noisy waveform")
		netName = flag.String("net", "", "net name: analyze this net's arrival instead of the circuit outputs")
		asJSON  = flag.Bool("json", false, "emit the result as JSON (for scripting)")
	)
	flag.Parse()

	lib, err := loadLibrary(*libPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topk:", err)
		os.Exit(1)
	}
	c, err := loadCircuit(lib, *path, *vpath, *spath, *bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topk:", err)
		os.Exit(1)
	}
	m := topkagg.NewModel(c)
	opt := topkagg.Options{}
	if *exact {
		opt = topkagg.ExactOptions()
	}

	if *prefilt {
		fr, err := topkagg.FalseAggressors(m, topkagg.FilterOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "topk:", err)
			os.Exit(1)
		}
		fmt.Printf("false-aggressor filter: %d of %d couplings removable; false directions: %d early, %d late, %d unobservable, %d sub-threshold\n\n",
			len(fr.False), c.NumCouplings(),
			fr.EarlyFiltered, fr.LateFiltered, fr.UnobservableFiltered, fr.MagnitudeFiltered)
	}

	var target topkagg.NetID = -1
	if *netName != "" {
		id, ok := c.NetByName(*netName)
		if !ok {
			fmt.Fprintf(os.Stderr, "topk: no net %q\n", *netName)
			os.Exit(1)
		}
		target = id
	}
	var res *topkagg.Result
	switch {
	case *mode == "add" && target >= 0:
		res, err = topkagg.TopKAdditionAt(m, target, *k, opt)
	case *mode == "add":
		res, err = topkagg.TopKAddition(m, *k, opt)
	case *mode == "elim" && target >= 0:
		res, err = topkagg.TopKEliminationAt(m, target, *k, opt)
	case *mode == "elim":
		res, err = topkagg.TopKElimination(m, *k, opt)
	default:
		err = fmt.Errorf("unknown -mode %q (want add or elim)", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "topk:", err)
		os.Exit(1)
	}

	if *asJSON {
		if err := emitJSON(os.Stdout, c, *mode, res); err != nil {
			fmt.Fprintln(os.Stderr, "topk:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("circuit %s: %d gates, %d couplings, %d victim nets analyzed\n",
		c.Name, c.NumGates(), c.NumCouplings(), res.Victims)
	scope := "circuit"
	if *netName != "" {
		scope = "net " + *netName
	}
	fmt.Printf("%s: noiseless arrival %.4f ns, all-aggressor arrival %.4f ns\n", scope, res.BaseDelay, res.AllDelay)
	fmt.Printf("enumeration time %s\n", res.Elapsed)
	if len(res.PerK) == 0 {
		fmt.Println("no aggressor sets found (no couplings affect the analyzed paths)")
		return
	}
	if *curve {
		fmt.Println("\nk  delay(ns)  set")
		for i, s := range res.PerK {
			fmt.Printf("%-2d %.4f", i+1, s.Delay)
			fmt.Printf("  %v\n", s.IDs)
		}
	}
	top := res.Top()
	fmt.Printf("\ntop-%d %s set (delay %.4f ns):\n", len(top.IDs), *mode, top.Delay)
	for _, id := range top.IDs {
		fmt.Printf("  %s\n", topkagg.CouplingString(c, id))
	}

	if *report || *plot != "" {
		an, err := m.Run(nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topk:", err)
			os.Exit(1)
		}
		if *report {
			fmt.Println()
			fmt.Print(topkagg.CriticalReport(an))
		}
		if *plot != "" {
			id, ok := c.NetByName(*plot)
			if !ok {
				fmt.Fprintf(os.Stderr, "topk: no net %q\n", *plot)
				os.Exit(1)
			}
			fmt.Println()
			fmt.Print(topkagg.NoisePlot(an, m, id))
		}
	}
}

// jsonResult is the machine-readable output shape of -json.
type jsonResult struct {
	Circuit   string     `json:"circuit"`
	Mode      string     `json:"mode"`
	Gates     int        `json:"gates"`
	Couplings int        `json:"couplings"`
	BaseDelay float64    `json:"baseDelayNs"`
	AllDelay  float64    `json:"allDelayNs"`
	ElapsedNs int64      `json:"enumerationNs"`
	PerK      []jsonPerK `json:"perK"`
}

type jsonPerK struct {
	K         int          `json:"k"`
	DelayNs   float64      `json:"delayNs"`
	Couplings []jsonCouple `json:"couplings"`
}

type jsonCouple struct {
	ID   int     `json:"id"`
	NetA string  `json:"netA"`
	NetB string  `json:"netB"`
	CcFF float64 `json:"ccFF"`
}

func emitJSON(w io.Writer, c *topkagg.Circuit, mode string, res *topkagg.Result) error {
	out := jsonResult{
		Circuit:   c.Name,
		Mode:      mode,
		Gates:     c.NumGates(),
		Couplings: c.NumCouplings(),
		BaseDelay: res.BaseDelay,
		AllDelay:  res.AllDelay,
		ElapsedNs: res.Elapsed.Nanoseconds(),
	}
	for i, s := range res.PerK {
		pk := jsonPerK{K: i + 1, DelayNs: s.Delay}
		for _, id := range s.IDs {
			cp := c.Coupling(id)
			pk.Couplings = append(pk.Couplings, jsonCouple{
				ID:   int(id),
				NetA: c.Net(cp.A).Name,
				NetB: c.Net(cp.B).Name,
				CcFF: cp.Cc,
			})
		}
		out.PerK = append(out.PerK, pk)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func loadLibrary(path string) (*topkagg.Library, error) {
	if path == "" {
		return topkagg.DefaultLibrary(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return topkagg.ParseLiberty(f)
}

func loadCircuit(lib *topkagg.Library, path, vpath, spath, bench string) (*topkagg.Circuit, error) {
	sources := 0
	for _, s := range []string{path, vpath, bench} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of -netlist, -verilog or -bench is required")
	}
	switch {
	case path != "":
		if spath != "" {
			return nil, fmt.Errorf("-spef pairs with -verilog, not -netlist")
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topkagg.ParseNetlistWith(f, lib)
	case vpath != "":
		f, err := os.Open(vpath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		c, err := topkagg.ParseVerilogWith(f, lib)
		if err != nil {
			return nil, err
		}
		if spath != "" {
			sf, err := os.Open(spath)
			if err != nil {
				return nil, err
			}
			defer sf.Close()
			if err := topkagg.ApplySPEF(sf, c); err != nil {
				return nil, err
			}
		}
		return c, nil
	default:
		return topkagg.GenerateBenchmark(bench)
	}
}
