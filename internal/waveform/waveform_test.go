package waveform

import (
	"math"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestNewRejectsUnsorted(t *testing.T) {
	_, err := New(Point{T: 1, V: 0}, Point{T: 0, V: 1})
	if err == nil {
		t.Fatal("expected error for unsorted breakpoints")
	}
}

func TestNewMergesCoincidentPoints(t *testing.T) {
	w := MustNew(Point{T: 1, V: 0}, Point{T: 1, V: 2}, Point{T: 3, V: 0})
	if w.NumPoints() != 2 {
		t.Fatalf("expected coincident points merged, got %v", w)
	}
	approx(t, w.Value(1), 2, Eps, "merged point keeps later value")
}

func TestValueInterpolation(t *testing.T) {
	w := MustNew(Point{T: 0, V: 0}, Point{T: 2, V: 4})
	approx(t, w.Value(-1), 0, Eps, "before first point")
	approx(t, w.Value(0), 0, Eps, "at first point")
	approx(t, w.Value(1), 2, Eps, "midpoint")
	approx(t, w.Value(2), 4, Eps, "at last point")
	approx(t, w.Value(5), 4, Eps, "after last point")
}

func TestZeroAndConstant(t *testing.T) {
	if !Zero().IsZero() {
		t.Fatal("Zero must be zero")
	}
	c := Constant(3)
	approx(t, c.Value(-100), 3, Eps, "constant early")
	approx(t, c.Value(100), 3, Eps, "constant late")
	if Constant(0).NumPoints() != 0 {
		t.Fatal("Constant(0) should be the zero waveform")
	}
}

func TestShift(t *testing.T) {
	w := TrianglePulse(0, 1, 1, 2)
	s := w.Shift(5)
	approx(t, s.Value(6), 2, Eps, "peak moved to t=6")
	approx(t, w.Value(1), 2, Eps, "original unchanged")
}

func TestScaleNeg(t *testing.T) {
	w := TrianglePulse(0, 1, 1, 2)
	approx(t, w.Scale(0.5).Value(1), 1, Eps, "scaled peak")
	approx(t, w.Neg().Value(1), -2, Eps, "negated peak")
}

func TestAddSuperposition(t *testing.T) {
	a := TrianglePulse(0, 1, 1, 1)
	b := TrianglePulse(1, 1, 1, 1)
	s := Add(a, b)
	approx(t, s.Value(1), 1+0, Eps, "a peak + b start")
	approx(t, s.Value(1.5), 0.5+0.5, Eps, "overlap midpoint")
	approx(t, s.Value(2), 0+1, Eps, "b peak")
}

func TestSubInverseOfAdd(t *testing.T) {
	a := TrianglePulse(0, 1, 2, 3)
	b := Trapezoid(0.5, 0.5, 2, 1, 1)
	diff := Sub(Add(a, b), b)
	if !Equal(diff, a, 1e-9) {
		t.Fatalf("(a+b)-b != a: %v vs %v", diff, a)
	}
}

func TestMaxInsertsIntersections(t *testing.T) {
	// a falls 2->0 over [0,2]; b rises 0->2 over [0,2]; cross at t=1,v=1.
	a := MustNew(Point{T: 0, V: 2}, Point{T: 2, V: 0})
	b := MustNew(Point{T: 0, V: 0}, Point{T: 2, V: 2})
	m := Max(a, b)
	approx(t, m.Value(0.5), 1.5, 1e-9, "max follows a before crossing")
	approx(t, m.Value(1), 1, 1e-9, "crossing value")
	approx(t, m.Value(1.5), 1.5, 1e-9, "max follows b after crossing")
}

func TestClampMin(t *testing.T) {
	w := MustNew(Point{T: 0, V: -1}, Point{T: 2, V: 1})
	c := w.ClampMin(0)
	approx(t, c.Value(0), 0, 1e-9, "clamped start")
	approx(t, c.Value(2), 1, 1e-9, "unclamped end")
	approx(t, c.Value(1), 0, 1e-9, "clamp boundary")
}

func TestPeak(t *testing.T) {
	w := TrianglePulse(2, 1, 3, 5)
	pt, pv := w.Peak()
	approx(t, pt, 3, Eps, "peak time")
	approx(t, pv, 5, Eps, "peak value")
}

func TestEncapsulates(t *testing.T) {
	big := Trapezoid(0, 1, 3, 1, 2)
	small := TrianglePulse(1, 0.5, 0.5, 1)
	if !Encapsulates(big, small, 0, 4, Eps) {
		t.Fatal("big trapezoid must encapsulate small pulse")
	}
	if Encapsulates(small, big, 0, 4, Eps) {
		t.Fatal("small pulse must not encapsulate big trapezoid")
	}
	// With a big enough tolerance even the small pulse "covers" the
	// trapezoid over a narrow interval (gap there is at most 1.2).
	if !Encapsulates(small, big, 1.4, 1.45, 1.25) {
		t.Fatal("tolerant interval check failed")
	}
}

func TestEncapsulatesRestrictedInterval(t *testing.T) {
	// a beats b only for t >= 1.
	a := MustNew(Point{T: 0, V: 0}, Point{T: 2, V: 2})
	b := Constant(1)
	if Encapsulates(a, b, 0, 2, Eps) {
		t.Fatal("a does not dominate b over [0,2]")
	}
	if !Encapsulates(a, b, 1, 2, Eps) {
		t.Fatal("a dominates b over [1,2]")
	}
}

func TestLatestTimeAtOrBelow(t *testing.T) {
	ramp := RisingRamp(5, 2, 1.0)
	tt, ok := ramp.LatestTimeAtOrBelow(0.5)
	if !ok {
		t.Fatal("rising ramp must cross 0.5")
	}
	approx(t, tt, 5, 1e-9, "t50 of clean ramp")

	// A noisy transition that dips back below the level: the last
	// upward crossing is what matters.
	noisy := MustNew(
		Point{T: 0, V: 0},
		Point{T: 2, V: 0.8},
		Point{T: 3, V: 0.3}, // noise pulls it back down
		Point{T: 5, V: 1.0},
	)
	tt, ok = noisy.LatestTimeAtOrBelow(0.5)
	if !ok {
		t.Fatal("noisy ramp settles above 0.5")
	}
	if tt <= 3 || tt >= 5 {
		t.Fatalf("expected last crossing in (3,5), got %g", tt)
	}

	// A waveform that ends below the level never settles.
	if _, ok := FallingRamp(5, 2, 1.0).LatestTimeAtOrBelow(0.5); ok {
		t.Fatal("falling ramp ends below 0.5: must report !ok")
	}
}

func TestEarliestTimeAtOrAbove(t *testing.T) {
	ramp := RisingRamp(5, 2, 1.0)
	tt, ok := ramp.EarliestTimeAtOrAbove(0.5)
	if !ok {
		t.Fatal("ramp reaches 0.5")
	}
	approx(t, tt, 5, 1e-9, "first crossing")
	if _, ok := ramp.EarliestTimeAtOrAbove(2.0); ok {
		t.Fatal("ramp never reaches 2.0")
	}
}

func TestT50RisingFalling(t *testing.T) {
	r := RisingRamp(3, 1, 1.2)
	got, err := T50(r, 1.2, +1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, got, 3, 1e-9, "rising t50")

	f := FallingRamp(4, 1, 1.2)
	got, err = T50(f, 1.2, -1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, got, 4, 1e-9, "falling t50")

	if _, err := T50(r, 1.2, 0); err == nil {
		t.Fatal("direction 0 must be rejected")
	}
	if _, err := T50(f, 1.2, +1); err == nil {
		t.Fatal("falling ramp is not a rising transition")
	}
}

func TestT50ShiftedByNoise(t *testing.T) {
	// Subtracting a noise pulse near t50 from a rising ramp delays t50.
	vdd := 1.0
	ramp := RisingRamp(5, 2, vdd)
	noise := TrianglePulse(4.5, 0.5, 1.5, 0.4)
	noisy := Sub(ramp, noise)
	clean, err := T50(ramp, vdd, +1)
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := T50(noisy, vdd, +1)
	if err != nil {
		t.Fatal(err)
	}
	if shifted <= clean {
		t.Fatalf("noise must delay t50: clean=%g noisy=%g", clean, shifted)
	}
}

func TestTrapezoidCollapsesToTriangle(t *testing.T) {
	tr := Trapezoid(0, 1, 0.5, 1, 2) // flatEnd before peakStart
	pt, pv := tr.Peak()
	approx(t, pv, 2, Eps, "peak value kept")
	approx(t, pt, 1, Eps, "peak at end of rise")
}

func TestAreaWidth(t *testing.T) {
	tr := TrianglePulse(0, 1, 1, 2)
	approx(t, tr.Area(), 2, 1e-9, "triangle area")
	approx(t, tr.Width(), 2, 1e-9, "triangle width")
	tz := Trapezoid(0, 1, 3, 1, 2)
	approx(t, tz.Area(), 2+4, 1e-9, "trapezoid area (two ramps + flat)")
}

func TestMaxAbs(t *testing.T) {
	w := MustNew(Point{T: 0, V: -3}, Point{T: 1, V: 2})
	approx(t, w.MaxAbs(), 3, Eps, "max abs")
}

func TestEqual(t *testing.T) {
	a := TrianglePulse(0, 1, 1, 2)
	b := TrianglePulse(0, 1, 1, 2)
	if !Equal(a, b, 1e-12) {
		t.Fatal("identical shapes must be Equal")
	}
	if Equal(a, a.Shift(0.5), 1e-12) {
		t.Fatal("shifted pulse must differ")
	}
	if !Equal(Zero(), Constant(0), 1e-12) {
		t.Fatal("zero forms must be Equal")
	}
}

func TestStringRendering(t *testing.T) {
	if got := Zero().String(); got != "PWL{0}" {
		t.Fatalf("zero string: %q", got)
	}
	w := MustNew(Point{T: 1, V: 2})
	if got := w.String(); got == "" {
		t.Fatal("non-empty waveform must render")
	}
}
