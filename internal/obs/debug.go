package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// DebugHandler returns the registry's debug mux:
//
//	/debug/metrics   JSON Snapshot of every registered metric
//	/debug/vars      expvar (includes this registry once published)
//	/debug/pprof/*   the standard pprof profiles
//	/                plain-text index of the above
//
// The handler reads live metrics on every request; it is safe to keep
// serving while analyses run.
func (r *Registry) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		// The index also answers /debug and /debug/, so the handler
		// works both standalone (ServeDebug's root) and mounted under
		// /debug/ on a larger mux (cmd/topkd).
		switch req.URL.Path {
		case "/", "/debug", "/debug/":
		default:
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "topkagg debug endpoint\n\n"+
			"/debug/metrics  metrics snapshot (JSON)\n"+
			"/debug/vars     expvar\n"+
			"/debug/pprof/   profiles\n")
	})
	return mux
}

// expvarOnce guards expvar publication: expvar panics on duplicate
// names, and tests may build several registries per process.
var expvarOnce sync.Once

// PublishExpvar exposes the registry under the given expvar name (at
// most once per process; later calls, and calls with the name already
// taken, are no-ops). No-op on a nil registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarOnce.Do(func() {
		if expvar.Get(name) != nil {
			return
		}
		expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	})
}

// DebugServer is a running debug HTTP endpoint.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the endpoint down.
func (d *DebugServer) Close() error { return d.srv.Close() }

// ServeDebug starts the debug endpoint on addr (e.g. "localhost:6060"
// or "127.0.0.1:0") in a background goroutine and returns the running
// server. The registry is also published to expvar as "topkagg".
func (r *Registry) ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug endpoint: %w", err)
	}
	r.PublishExpvar("topkagg")
	srv := &http.Server{Handler: r.DebugHandler()}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{srv: srv, ln: ln}, nil
}
