// Command circgen generates synthetic coupled benchmark circuits in
// the text netlist format: either one of the paper's ten benchmarks
// (i1..i10) or a custom size.
//
// Usage:
//
//	circgen -bench i3 -o i3.ckt
//	circgen -gates 500 -couplings 2000 -seed 7 -o big.ckt
//	circgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"topkagg"
)

func main() {
	var (
		bench     = flag.String("bench", "", "paper benchmark name (i1..i10)")
		gates     = flag.Int("gates", 100, "gate count for a custom circuit")
		couplings = flag.Int("couplings", 300, "coupling-capacitor count for a custom circuit")
		seed      = flag.Int64("seed", 1, "generator seed for a custom circuit")
		name      = flag.String("name", "custom", "circuit name for a custom circuit")
		out       = flag.String("o", "", "output file (default stdout)")
		list      = flag.Bool("list", false, "list the paper benchmarks and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("name  gates  couplings  (paper nets)")
		for _, s := range topkagg.Benchmarks() {
			fmt.Printf("%-5s %5d  %9d  %d\n", s.Name, s.Gates, s.Couplings, s.PaperNets)
		}
		return
	}

	var (
		c   *topkagg.Circuit
		err error
	)
	if *bench != "" {
		c, err = topkagg.GenerateBenchmark(*bench)
	} else {
		c, err = topkagg.Generate(topkagg.Spec{
			Name: *name, Gates: *gates, Couplings: *couplings, Seed: *seed,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "circgen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "circgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := topkagg.WriteNetlist(w, c); err != nil {
		fmt.Fprintln(os.Stderr, "circgen:", err)
		os.Exit(1)
	}
}
