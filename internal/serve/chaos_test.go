package serve

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"topkagg/internal/budget"
	"topkagg/internal/circuit"
	"topkagg/internal/core"
	"topkagg/internal/faultinject"
	"topkagg/internal/gen"
	"topkagg/internal/noise"
)

// needProbes skips a test that depends on fault injection when the
// probes are compiled out (faultinject_off build tag).
func needProbes(t *testing.T) {
	t.Helper()
	if !faultinject.Enabled() {
		t.Skip("fault-injection probes compiled out (faultinject_off)")
	}
}

// chaosSetup builds the shared chaos-test fixture: a small generated
// circuit, a valid mixed workload (top-k addition and elimination at
// circuit and per-net targets, plus what-ifs), and the cold serial
// reference responses each chaos run is compared against. The
// reference is computed before any plan is armed so it never consumes
// injection hits.
func chaosSetup(t *testing.T, opt core.Options) (*circuit.Circuit, []Query, []Response) {
	t.Helper()
	c, err := gen.Build(gen.Spec{Name: "chaos", Gates: 30, Couplings: 25, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	nets := []circuit.NetID{WholeCircuit}
	for id := 0; id < c.NumNets() && len(nets) < 4; id++ {
		if c.Net(circuit.NetID(id)).Driver >= 0 {
			nets = append(nets, circuit.NetID(id))
		}
	}
	var queries []Query
	for _, n := range nets {
		queries = append(queries,
			Query{Op: Addition, Net: n, K: 3},
			Query{Op: Elimination, Net: n, K: 2},
			Query{Op: WhatIf, Net: n, Fix: []circuit.CouplingID{0, 1}},
		)
	}
	queries = append(queries, queries[0], queries[1], queries[2]) // duplicates race cache hits
	expected := make([]Response, len(queries))
	for i, q := range queries {
		expected[i] = NewAnalyzer(noise.NewModel(c), opt).Do(q)
		if expected[i].Err != nil {
			t.Fatalf("reference query %d failed: %v", i, expected[i].Err)
		}
	}
	return c, queries, expected
}

// matchClean asserts one response is byte-identical to its cold serial
// reference (wall-clock fields aside).
func matchClean(t *testing.T, i int, got, want Response) {
	t.Helper()
	if got.Err != nil {
		t.Errorf("query %d (%s net %d): unexpected error: %v", i, got.Query.Op, got.Query.Net, got.Err)
		return
	}
	if got.Partial || got.Degraded != "" {
		t.Errorf("query %d: unexpected degradation (partial=%v degraded=%q)", i, got.Partial, got.Degraded)
	}
	if math.Float64bits(got.Delay) != math.Float64bits(want.Delay) {
		t.Errorf("query %d: delay %.17g != reference %.17g", i, got.Delay, want.Delay)
	}
	if !resultsEqual(got.Result, want.Result) {
		t.Errorf("query %d (%s net %d): result differs from cold serial run", i, got.Query.Op, got.Query.Net)
	}
}

// wantInjectedPanic asserts an error is the typed capture of a
// deliberately injected worker panic.
func wantInjectedPanic(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("expected an injected-panic error, got nil")
	}
	if r := budget.ReasonOf(err); r != budget.WorkerPanic {
		t.Fatalf("error reason = %v, want WorkerPanic: %v", r, err)
	}
	var pe *budget.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error chain carries no *budget.PanicError: %v", err)
	}
	if _, ok := pe.Value.(*faultinject.Injected); !ok {
		t.Fatalf("recovered panic value is %T, not the injected fault: %v", pe.Value, err)
	}
}

// TestChaosQueryPanicConfinedUnderStress is the headline robustness
// property: one injected worker panic inside a 12-goroutine batch
// crashes exactly one query — a typed *budget.PanicError in that
// Response — while every other response stays byte-identical to a
// cold serial run, the process survives, and the shared cache is left
// usable (a disarmed rerun on the same Analyzer is fully clean).
func TestChaosQueryPanicConfinedUnderStress(t *testing.T) {
	needProbes(t)
	_, queries, expected := chaosSetup(t, core.Options{SlackFrac: 1, VerifyTop: 4})
	c, _ := gen.Build(gen.Spec{Name: "chaos", Gates: 30, Couplings: 25, Seed: 42})
	a := NewAnalyzer(noise.NewModel(c), core.Options{SlackFrac: 1, VerifyTop: 4})

	plan := faultinject.NewPlan(1).Add(faultinject.SiteServeQuery, faultinject.Rule{On: 5, Panic: true})
	faultinject.Arm(plan)
	t.Cleanup(faultinject.Disarm)

	out := a.RunBatchCtx(context.Background(), queries, 12)
	if len(out) != len(queries) {
		t.Fatalf("got %d responses for %d queries", len(out), len(queries))
	}
	panicked := 0
	for i, r := range out {
		if r.Err != nil {
			wantInjectedPanic(t, r.Err)
			if r.Result != nil || r.Partial || r.Degraded != "" {
				t.Errorf("query %d: panicked response still carries result state", i)
			}
			panicked++
			continue
		}
		matchClean(t, i, r, expected[i])
	}
	if panicked != 1 {
		t.Fatalf("injected panic hit %d queries, want exactly 1", panicked)
	}
	if got := plan.Hits(faultinject.SiteServeQuery); got != int64(len(queries)) {
		t.Errorf("probe fired %d times, want once per query (%d)", got, len(queries))
	}

	// The cache must not be poisoned: a disarmed rerun on the same
	// Analyzer answers everything, identically, off the warm cache.
	faultinject.Disarm()
	for i, r := range a.RunBatch(queries, 4) {
		matchClean(t, i, r, expected[i])
	}
	if st := a.Stats(); st.FixpointRuns != 1 {
		t.Errorf("FixpointRuns = %d, want 1 (panic fired before any build)", st.FixpointRuns)
	}
}

// TestChaosCorePanicIsolated injects a panic into a core enumeration
// worker: the query must fail hard (typed error, never Partial — a
// panic is a bug, not a budget), the memoized preparation must
// survive, and an immediate retry must succeed and match the clean
// reference.
func TestChaosCorePanicIsolated(t *testing.T) {
	needProbes(t)
	_, queries, expected := chaosSetup(t, core.Options{SlackFrac: 1})
	c, _ := gen.Build(gen.Spec{Name: "chaos", Gates: 30, Couplings: 25, Seed: 42})
	a := NewAnalyzer(noise.NewModel(c), core.Options{SlackFrac: 1})
	q := queries[0] // addition, whole circuit

	faultinject.Arm(faultinject.NewPlan(1).Add(faultinject.SiteCoreVictim, faultinject.Rule{On: 1, Panic: true}))
	t.Cleanup(faultinject.Disarm)

	r1 := a.Do(q)
	wantInjectedPanic(t, r1.Err)
	if r1.Partial {
		t.Error("panicked query reported Partial; panics must surface as errors")
	}
	if r1.Result != nil {
		t.Error("panicked query still carries a Result")
	}

	// The rule was On:1, so the retry runs clean — and must reuse the
	// preparation the panicked enumeration ran against (enumeration
	// failures never evict the read-only shared state).
	r2 := a.Do(q)
	matchClean(t, 0, r2, expected[0])
	st := a.Stats()
	if st.PrepMisses != 1 || st.PrepHits != 1 {
		t.Errorf("prep hits/misses = %d/%d, want 1/1 (prep survives an enumeration panic)",
			st.PrepHits, st.PrepMisses)
	}
	if st.FixpointRuns != 1 {
		t.Errorf("FixpointRuns = %d, want 1", st.FixpointRuns)
	}
}

// TestChaosPrepPanicEvicted injects a panic into the shared-state
// build itself: the triggering query fails with the typed panic, the
// poisoned cache entry is evicted, and the next identical query
// rebuilds from scratch and succeeds — observable as a second prep
// miss.
func TestChaosPrepPanicEvicted(t *testing.T) {
	needProbes(t)
	_, queries, expected := chaosSetup(t, core.Options{SlackFrac: 1})
	c, _ := gen.Build(gen.Spec{Name: "chaos", Gates: 30, Couplings: 25, Seed: 42})
	a := NewAnalyzer(noise.NewModel(c), core.Options{SlackFrac: 1})
	q := queries[0]

	faultinject.Arm(faultinject.NewPlan(1).Add(faultinject.SiteServePrep, faultinject.Rule{On: 1, Panic: true}))
	t.Cleanup(faultinject.Disarm)

	r1 := a.Do(q)
	wantInjectedPanic(t, r1.Err)
	if st := a.Stats(); st.PrepMisses != 1 {
		t.Fatalf("PrepMisses = %d after poisoned build, want 1", st.PrepMisses)
	}

	r2 := a.Do(q)
	matchClean(t, 0, r2, expected[0])
	r3 := a.Do(q)
	matchClean(t, 0, r3, expected[0])
	st := a.Stats()
	if st.PrepMisses != 2 {
		t.Errorf("PrepMisses = %d, want 2 (the poisoned entry must be evicted and rebuilt)", st.PrepMisses)
	}
	if st.PrepHits != 1 {
		t.Errorf("PrepHits = %d, want 1 (third query reuses the rebuilt entry)", st.PrepHits)
	}
}

// TestChaosDeadlineOneQueryStress runs a 12-goroutine batch in which
// exactly one query carries an already-expired deadline: that query —
// and only that query — degrades to a Partial response or a typed
// deadline error, every other response matches the cold serial
// reference, and the shared cache stays consistent for a rerun. This
// also exercises the waiter-retry path: if the doomed query happens to
// be the one building shared state, its co-waiters must rebuild under
// their own (unlimited) budgets rather than inherit the deadline.
func TestChaosDeadlineOneQueryStress(t *testing.T) {
	_, queries, expected := chaosSetup(t, core.Options{SlackFrac: 1, VerifyTop: 4})
	c, _ := gen.Build(gen.Spec{Name: "chaos", Gates: 30, Couplings: 25, Seed: 42})
	a := NewAnalyzer(noise.NewModel(c), core.Options{SlackFrac: 1, VerifyTop: 4})

	const doomed = 0 // first query: most likely to be a cache builder
	limited := make([]Query, len(queries))
	copy(limited, queries)
	limited[doomed].Limits = Limits{Timeout: time.Nanosecond}

	out := a.RunBatch(limited, 12)
	for i, r := range out {
		if i == doomed {
			switch {
			case r.Err != nil:
				if reason := budget.ReasonOf(r.Err); reason != budget.DeadlineExceeded {
					t.Errorf("doomed query error reason = %v, want DeadlineExceeded: %v", reason, r.Err)
				}
			case r.Partial:
				if r.Degraded != DegradedDeadline {
					t.Errorf("doomed query Degraded = %q, want %q", r.Degraded, DegradedDeadline)
				}
				if len(r.Result.PerK) >= len(expected[i].Result.PerK) {
					t.Errorf("doomed 1ns query completed %d cardinalities, reference has %d",
						len(r.Result.PerK), len(expected[i].Result.PerK))
				}
			default:
				t.Errorf("doomed 1ns query returned a complete response")
			}
			continue
		}
		got := r
		got.Query.Limits = Limits{} // the echo differs only by limits
		matchClean(t, i, got, expected[i])
	}

	// Cache consistency: an unlimited rerun on the same Analyzer is
	// fully clean, including the previously doomed query.
	for i, r := range a.RunBatch(queries, 4) {
		matchClean(t, i, r, expected[i])
	}
	if st := a.Stats(); st.FixpointRuns < 1 || st.FixpointRuns > 2 {
		t.Errorf("FixpointRuns = %d, want 1 or 2 (one doomed build may be evicted and redone)", st.FixpointRuns)
	}
}

// TestBatchCancellationDeterminism cancels a batch mid-flight at a
// deterministic logical point (the 400th core victim evaluation) and
// checks the cancellation contract: every response is either complete
// and byte-identical to an uncancelled cold run, a Partial prefix of
// it (same selections, same scores, cardinality by cardinality), or a
// typed cancellation error — and the shared cache survives, so a
// fresh uncancelled batch on the same Analyzer matches the reference
// exactly.
func TestBatchCancellationDeterminism(t *testing.T) {
	needProbes(t)
	// NoRescore keeps Delay == Estimate on both sides so a partial
	// prefix is comparable entry-for-entry against the reference.
	opt := core.Options{SlackFrac: 1, NoRescore: true}
	_, queries, expected := chaosSetup(t, opt)
	c, _ := gen.Build(gen.Spec{Name: "chaos", Gates: 30, Couplings: 25, Seed: 42})
	a := NewAnalyzer(noise.NewModel(c), opt)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Arm(faultinject.NewPlan(3).Add(faultinject.SiteCoreVictim, faultinject.Rule{
		On:   400,
		Call: func(string, int64) { cancel() },
	}))
	t.Cleanup(faultinject.Disarm)

	out := a.RunBatchCtx(ctx, queries, 4)
	var complete, partial, failed int
	for i, r := range out {
		switch {
		case r.Err != nil:
			failed++
			if reason := budget.ReasonOf(r.Err); reason != budget.Canceled {
				t.Errorf("query %d error reason = %v, want Canceled: %v", i, reason, r.Err)
			}
		case r.Partial:
			partial++
			if r.Degraded != DegradedCanceled {
				t.Errorf("query %d Degraded = %q, want %q", i, r.Degraded, DegradedCanceled)
			}
			ref := expected[i].Result
			if len(r.Result.PerK) >= len(ref.PerK) {
				t.Errorf("query %d: partial result has %d cardinalities, reference %d",
					i, len(r.Result.PerK), len(ref.PerK))
				continue
			}
			for k, sel := range r.Result.PerK {
				want := ref.PerK[k]
				if len(sel.IDs) != len(want.IDs) {
					t.Errorf("query %d k=%d: selection size %d != reference %d", i, k+1, len(sel.IDs), len(want.IDs))
					continue
				}
				for j := range sel.IDs {
					if sel.IDs[j] != want.IDs[j] {
						t.Errorf("query %d k=%d: selection differs from uncancelled run", i, k+1)
						break
					}
				}
				if math.Float64bits(sel.Estimate) != math.Float64bits(want.Estimate) ||
					math.Float64bits(sel.Delay) != math.Float64bits(want.Delay) {
					t.Errorf("query %d k=%d: completed cardinality score differs from uncancelled run", i, k+1)
				}
			}
		default:
			complete++
			matchClean(t, i, r, expected[i])
		}
	}
	if failed+partial == 0 {
		t.Fatal("cancellation never landed: every query completed (injection point too late)")
	}
	t.Logf("cancelled batch: %d complete, %d partial, %d typed-cancel", complete, partial, failed)

	// The cache must be reusable after cancellation: a fresh
	// uncancelled batch on the same Analyzer is fully clean.
	faultinject.Disarm()
	for i, r := range a.RunBatchCtx(context.Background(), queries, 4) {
		matchClean(t, i, r, expected[i])
	}
}
