package waveform

import (
	"math"
	"testing"
)

func TestSum(t *testing.T) {
	a := TrianglePulse(0, 1, 1, 1)
	b := TrianglePulse(1, 1, 1, 2)
	c := TrianglePulse(2, 1, 1, 3)
	s := Sum(a, b, c)
	want := Add(Add(a, b), c)
	if !Equal(s, want, 1e-12) {
		t.Fatal("Sum must equal folded Add")
	}
	if Sum().NumPoints() != 0 {
		t.Fatal("empty Sum must be zero")
	}
}

func TestDegenerateSlews(t *testing.T) {
	// Non-positive slews clamp to a near-step.
	r := RisingRamp(1, 0, 1.2)
	if r.Width() <= 0 {
		t.Fatal("clamped ramp must keep a positive width")
	}
	f := FallingRamp(1, -5, 1.2)
	if f.Width() <= 0 {
		t.Fatal("clamped falling ramp must keep a positive width")
	}
	p := TrianglePulse(0, 0, 0, 1)
	if p.Width() <= 0 {
		t.Fatal("clamped pulse must keep a positive width")
	}
}

func TestIsZeroWithTinyValues(t *testing.T) {
	w := MustNew(Point{T: 0, V: Eps / 2}, Point{T: 1, V: -Eps / 2})
	if !w.IsZero() {
		t.Fatal("sub-epsilon waveform counts as zero")
	}
	w2 := MustNew(Point{T: 0, V: 0}, Point{T: 1, V: 1})
	if w2.IsZero() {
		t.Fatal("non-zero waveform must not count as zero")
	}
}

func TestStartEndEmpty(t *testing.T) {
	if Zero().Start() != 0 || Zero().End() != 0 {
		t.Fatal("empty waveform spans [0,0]")
	}
	w := MustNew(Point{T: 2, V: 1}, Point{T: 5, V: 0})
	if w.Start() != 2 || w.End() != 5 {
		t.Fatal("span wrong")
	}
}

func TestLatestTimeAtOrBelowEdges(t *testing.T) {
	// Entirely above the level: supremum collapses to the start.
	high := MustNew(Point{T: 1, V: 2}, Point{T: 3, V: 3})
	tt, ok := high.LatestTimeAtOrBelow(1)
	if !ok || tt != 1 {
		t.Fatalf("always-above waveform: (%g,%v)", tt, ok)
	}
	// Empty waveform (constant zero): never settles above any level >= 0.
	if _, ok := Zero().LatestTimeAtOrBelow(0.5); ok {
		t.Fatal("constant zero never rises above 0.5")
	}
	// Flat segment exactly at the level then a jump.
	w := MustNew(Point{T: 0, V: 0.5}, Point{T: 1, V: 0.5}, Point{T: 2, V: 1})
	tt, ok = w.LatestTimeAtOrBelow(0.5)
	if !ok {
		t.Fatal("must settle")
	}
	if math.Abs(tt-1) > 1e-9 {
		t.Fatalf("crossing at %g, want 1", tt)
	}
}

func TestEarliestTimeAtOrAboveEdges(t *testing.T) {
	// Starts at/above the level.
	w := MustNew(Point{T: 3, V: 1}, Point{T: 4, V: 2})
	tt, ok := w.EarliestTimeAtOrAbove(1)
	if !ok || tt != 3 {
		t.Fatalf("starting-at-level: (%g,%v)", tt, ok)
	}
	// Zero waveform vs level 0: reached immediately.
	if _, ok := Zero().EarliestTimeAtOrAbove(0); !ok {
		t.Fatal("zero reaches level 0")
	}
	// Never reaches.
	if _, ok := w.EarliestTimeAtOrAbove(5); ok {
		t.Fatal("must not reach 5")
	}
}

func TestMaxWithEmpty(t *testing.T) {
	a := TrianglePulse(0, 1, 1, -2) // negative pulse
	m := Max(a, Zero())
	for _, p := range m.Points() {
		if p.V < -1e-12 {
			t.Fatalf("max with zero must be nonnegative: %v", m)
		}
	}
	if Max(Zero(), Zero()).NumPoints() != 0 {
		t.Fatal("max of zeros is zero")
	}
}
