package noise

import (
	"context"
	"testing"
	"time"

	"topkagg/internal/budget"
	"topkagg/internal/gen"
)

// TestScaleFixpointUnderBudget is the 100k-net smoke: the scaling
// generator must build a six-figure circuit and the fixpoint must
// stop cleanly under a time budget — a typed DeadlineExceeded error,
// no partially-committed sweep — then run the same pooled model to
// convergence. CI thereby exercises the full flat-kernel path at two
// orders of magnitude past the paper's largest benchmark with a
// bounded worst-case duration. (Work-unit budgets are charged by the
// enumeration layer, not per fixpoint evaluation — see
// internal/core's scale smoke for that arm.)
func TestScaleFixpointUnderBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-net build is too slow for -short")
	}
	c, err := gen.Scale(100000)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNets() < 100000 {
		t.Fatalf("scale circuit has %d nets, want >= 100000", c.NumNets())
	}
	m := NewModel(c)

	// A deadline far below the cold-run cost: the run must stop on the
	// budget, not converge.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := m.RunCtx(ctx, nil); budget.ReasonOf(err) != budget.DeadlineExceeded {
		t.Fatalf("budgeted run: reason %v (err %v), want deadline stop", budget.ReasonOf(err), err)
	}

	// The same model runs to convergence unbudgeted — the smoke's
	// positive half, and proof the budget stop left no poisoned pooled
	// state behind.
	an, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !an.Converged {
		t.Fatalf("100k-net fixpoint did not converge (%d iterations)", an.Iterations)
	}
}
