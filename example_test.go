package topkagg_test

import (
	"fmt"

	"topkagg"
)

// The quickstart flow: parse, analyze, enumerate.
func Example() {
	c, err := topkagg.ParseNetlistString(`
circuit example
output y
gate g1 NAND2_X1 a b -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 c -> m1
couple n1 m1 2.5
couple y m1 1.0
`)
	if err != nil {
		panic(err)
	}
	m := topkagg.NewModel(c)
	res, err := topkagg.TopKAddition(m, 2, topkagg.ExactOptions())
	if err != nil {
		panic(err)
	}
	for i, s := range res.PerK {
		fmt.Printf("top-%d: %d coupling(s)\n", i+1, len(s.IDs))
	}
	// Output:
	// top-1: 1 coupling(s)
	// top-2: 2 coupling(s)
}

func ExampleCouplingString() {
	c, _ := topkagg.ParseNetlistString(`
circuit s
output y
gate g1 INV_X1 a -> y
gate h1 INV_X1 b -> z
couple y z 1.75
`)
	fmt.Println(topkagg.CouplingString(c, 0))
	// Output:
	// y<->z (1.75 fF)
}

func ExampleModel_Run() {
	c, _ := topkagg.ParseNetlistString(`
circuit s
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 b -> m1
couple n1 m1 3.0
`)
	m := topkagg.NewModel(c)
	quiet, _ := m.Run(make(topkagg.Mask, c.NumCouplings())) // nothing switching
	noisy, _ := m.Run(nil)                                  // all aggressors
	fmt.Println(noisy.CircuitDelay() > quiet.CircuitDelay())
	// Output:
	// true
}

// A k-sweep over several target nets runs as one batch: the analyzer
// computes the noise fixpoint once and memoizes per-net engine state,
// so the sweep costs a fraction of independent TopKAdditionAt calls.
// Results are identical to the cold calls regardless of worker count.
func ExampleAnalyzer() {
	c, _ := topkagg.ParseNetlistString(`
circuit s
output y
gate g1 NAND2_X1 a b -> n1
gate g2 INV_X1 n1 -> n2
gate g3 INV_X1 n2 -> y
gate h1 INV_X1 p -> m1
couple n1 m1 2.5
couple n2 m1 1.5
couple y m1 1.0
`)
	m := topkagg.NewModel(c)
	a := topkagg.NewAnalyzer(m, topkagg.Options{})

	n2, _ := c.NetByName("n2")
	y, _ := c.NetByName("y")
	queries := topkagg.KSweepQueries(topkagg.OpAddition, []topkagg.NetID{n2, y}, 2)
	for _, r := range a.RunBatch(queries, 4) {
		if r.Err != nil {
			panic(r.Err)
		}
		top := r.Result.Top()
		fmt.Printf("net %s: top-%d set has %d coupling(s)\n",
			c.Net(r.Query.Net).Name, r.Query.K, len(top.IDs))
	}
	st := a.Stats()
	fmt.Printf("fixpoint runs: %d for %d queries\n", st.FixpointRuns, st.Queries)
	// Output:
	// net n2: top-2 set has 2 coupling(s)
	// net y: top-2 set has 2 coupling(s)
	// fixpoint runs: 1 for 2 queries
}

func ExampleGoodK() {
	c, _ := topkagg.GenerateBenchmark("i1")
	m := topkagg.NewModel(c)
	res, _ := topkagg.TopKAddition(m, 15, topkagg.Options{})
	k, settled, _ := topkagg.GoodK(res, topkagg.KneeParams{Frac: 0.08, Window: 3})
	fmt.Println(k >= 1 && k <= 15, settled || k == 15)
	// Output:
	// true true
}
