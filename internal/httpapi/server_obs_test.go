package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"topkagg/internal/obs"
)

// TestServerWithObs runs the instrumented configuration end to end:
// the metrics wrapper must count requests and status classes, the
// debug tree must ride the server mux, and Drain must flip
// admission-controlled endpoints to 503 while health stays up.
func TestServerWithObs(t *testing.T) {
	c := testCircuit(t, 7)
	reg := obs.New()
	api := NewServer(Config{MaxInFlight: 2, MaxQueue: 2, Obs: reg})
	if err := api.Preload("pre", "netlist", c); err != nil {
		t.Fatal(err)
	}
	if err := api.Preload("bad name", "netlist", c); err == nil {
		t.Error("Preload accepted an invalid name")
	}
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)

	// Health through the metrics wrapper.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	// One good query, one 4xx — both must be counted.
	status, body := post(t, ts, "/v1/models/pre/query", QueryRequest{Op: "addition", K: 2})
	if status != http.StatusOK {
		t.Fatalf("query: status %d: %s", status, body)
	}
	status, _ = post(t, ts, "/v1/models/pre/query", QueryRequest{Op: "bogus"})
	if status != http.StatusBadRequest {
		t.Fatalf("bad query: status %d", status)
	}

	// A streamed sweep through the wrapper: per-line Flush reaches the
	// underlying writer via statusRecorder.Unwrap.
	status, body = post(t, ts, "/v1/models/pre/sweep", SweepRequest{Op: "addition", K: 1})
	if status != http.StatusOK || len(splitNDJSON(t, body)) == 0 {
		t.Fatalf("sweep: status %d: %s", status, body)
	}

	// The debug tree rides the same mux.
	dresp, err := ts.Client().Get(ts.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]json.RawMessage
	if err := json.NewDecoder(dresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	snapStr := func() string {
		data, err := json.Marshal(reg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}()
	for _, metric := range []string{"httpapi.requests", "httpapi.errors_4xx", "httpapi.request_ns"} {
		if !strings.Contains(snapStr, metric) {
			t.Errorf("snapshot missing %s: %s", metric, snapStr)
		}
	}

	// Drain: query endpoints answer 503 with the typed code; the
	// health endpoint (no admission) still answers.
	api.Drain()
	status, body = post(t, ts, "/v1/models/pre/query", QueryRequest{Op: "addition", K: 2})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain query: status %d: %s", status, body)
	}
	if code := errCode(t, body); code != codeDraining {
		t.Errorf("post-drain code %q, want %q", code, codeDraining)
	}
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("post-drain healthz: status %d", hresp.StatusCode)
	}
}

// TestAPIErrorShape pins apiError's two renderings: the Go error
// string (for Preload callers) and the wire body with Retry-After on
// backpressure statuses.
func TestAPIErrorShape(t *testing.T) {
	aerr := errBadRequest(codeBadK, "k must be >= 1, got %d", 0)
	if !strings.Contains(aerr.Error(), "bad-k") || !strings.Contains(aerr.Error(), "got 0") {
		t.Errorf("apiError.Error() = %q", aerr.Error())
	}
	if enc := errEncode(errStub("nope")); enc.status != http.StatusInternalServerError || enc.code != codeEncode {
		t.Errorf("errEncode: %+v", enc)
	}

	rec := httptest.NewRecorder()
	writeAPIError(rec, &apiError{status: http.StatusTooManyRequests, code: codeOverloaded, msg: "full"})
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After: %d %v", rec.Code, rec.Header())
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error.Code != codeOverloaded {
		t.Errorf("429 body: %s (%v)", rec.Body.Bytes(), err)
	}
}

// errStub is a trivial error for constructor tests.
type errStub string

func (e errStub) Error() string { return string(e) }
