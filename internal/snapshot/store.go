package snapshot

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"topkagg/internal/obs"
)

// snapExt is the per-model snapshot file extension. Model names are
// restricted to [A-Za-z0-9._-] by the registry, so name+ext is a safe
// filename and cannot collide with the manifest.
const snapExt = ".snap"

// manifestName is the store's index file, written atomically after
// every change. It is advisory: Load unions it with a directory scan,
// so a lost or stale manifest degrades to a rescan, never to data loss.
const manifestName = "MANIFEST.json"

// Manifest is the JSON index of a state directory.
type Manifest struct {
	// FormatVersion is the container version the files were written
	// with.
	FormatVersion int `json:"formatVersion"`
	// Models lists the persisted models.
	Models []ManifestEntry `json:"models"`
}

// ManifestEntry describes one persisted model.
type ManifestEntry struct {
	Name    string `json:"name"`
	File    string `json:"file"`
	SavedAt string `json:"savedAt"`
	Bytes   int64  `json:"bytes"`
}

// Store manages one state directory: per-model snapshot files, the
// manifest, quarantine of corrupt files, and the snapshot.* metrics.
// All methods are safe for concurrent use; per-model writes are
// serialized by the store lock, restores happen once at boot.
type Store struct {
	dir string

	mu       sync.Mutex
	manifest map[string]ManifestEntry

	saves, saveErrors, restores, corruptions, quarantines *obs.Counter
	saveBytes                                             *obs.Counter
	encodeNS, decodeNS                                    *obs.Histogram
}

// Open creates (if needed) and opens a state directory. reg, when
// non-nil, receives the snapshot.* metrics.
func Open(dir string, reg *obs.Registry) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: state dir: %w", err)
	}
	s := &Store{dir: dir, manifest: map[string]ManifestEntry{}}
	if reg != nil {
		s.saves = reg.Counter("snapshot.saves")
		s.saveErrors = reg.Counter("snapshot.save_errors")
		s.saveBytes = reg.Counter("snapshot.save_bytes")
		s.restores = reg.Counter("snapshot.restores")
		s.corruptions = reg.Counter("snapshot.corruptions_detected")
		s.quarantines = reg.Counter("snapshot.quarantines")
		s.encodeNS = reg.Histogram("snapshot.encode_ns")
		s.decodeNS = reg.Histogram("snapshot.decode_ns")
	}
	if data, err := os.ReadFile(filepath.Join(dir, manifestName)); err == nil {
		var m Manifest
		if json.Unmarshal(data, &m) == nil {
			for _, e := range m.Models {
				if e.Name != "" && e.File == e.Name+snapExt {
					s.manifest[e.Name] = e
				}
			}
		}
		// An unreadable manifest is not fatal: Load rescans the
		// directory and the next Save rewrites it.
	}
	return s, nil
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(name string) string { return filepath.Join(s.dir, name+snapExt) }

// Save atomically writes one model's snapshot file and updates the
// manifest. encode receives a fresh Encoder positioned after the
// container header; it frames whatever sections the caller's layer
// defines.
func (s *Store) Save(name string, encode func(*Encoder) error) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	n, err := WriteFileAtomic(s.path(name), encode)
	if err != nil {
		if s.saveErrors != nil {
			s.saveErrors.Inc()
		}
		return 0, err
	}
	if s.saves != nil {
		s.saves.Inc()
		s.saveBytes.Add(n)
		s.encodeNS.Observe(int64(time.Since(start)))
	}
	s.manifest[name] = ManifestEntry{
		Name:    name,
		File:    name + snapExt,
		SavedAt: start.UTC().Format(time.RFC3339),
		Bytes:   n,
	}
	return n, s.writeManifestLocked()
}

// Remove deletes a model's snapshot file and manifest entry (model
// deletion must not resurrect on the next boot). Missing files are
// fine — the model may never have been saved.
func (s *Store) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.manifest, name)
	if err := os.Remove(s.path(name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("snapshot: remove: %w", err)
	}
	return s.writeManifestLocked()
}

func (s *Store) writeManifestLocked() error {
	m := Manifest{FormatVersion: Version}
	for _, e := range s.manifest {
		m.Models = append(m.Models, e)
	}
	sort.Slice(m.Models, func(i, j int) bool { return m.Models[i].Name < m.Models[j].Name })
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("snapshot: manifest: %w", err)
	}
	data = append(data, '\n')
	path := filepath.Join(s.dir, manifestName)
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+manifestName+".*")
	if err != nil {
		return fmt.Errorf("snapshot: manifest: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: manifest: %w", err)
	}
	return syncDir(s.dir)
}

// LoadOutcome classifies one model file's fate during Load.
type LoadOutcome struct {
	// Name is the model name (derived from the file name).
	Name string
	// Restored reports a fully successful restore.
	Restored bool
	// Quarantined holds the quarantine path of a corrupt file ("" when
	// the file decoded cleanly).
	Quarantined string
	// Err is the decode/restore failure, nil on success.
	Err error
}

// Load drives boot-time restore: it sweeps temp files orphaned by a
// crash mid-write, then decodes every *.snap file (union of manifest
// and directory scan, sorted by name for deterministic boot order)
// through the restore callback. A file whose decode or restore fails
// is quarantined — moved aside with its evidence preserved — and boot
// continues; the server never crashes on, and never serves from, bad
// state. The callback may have salvaged a prefix (e.g. rebuilt the
// model from the design-source section before a later warm section
// went bad); that salvage lives in the callback's own state and is
// not undone by the quarantine.
func (s *Store) Load(restore func(name string, dec *Decoder) error) []LoadOutcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := map[string]bool{}
	entries, err := os.ReadDir(s.dir)
	if err == nil {
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			if strings.HasPrefix(e.Name(), tmpPrefix) {
				// Orphan of a crash mid-write: the rename never happened,
				// so it holds no published state.
				os.Remove(filepath.Join(s.dir, e.Name()))
				continue
			}
			if n, ok := strings.CutSuffix(e.Name(), snapExt); ok && n != "" {
				names[n] = true
			}
		}
	}
	for n := range s.manifest {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	var outs []LoadOutcome
	dirty := false
	for _, name := range ordered {
		out := LoadOutcome{Name: name}
		out.Restored, out.Quarantined, out.Err = s.loadOne(name, restore)
		if !out.Restored {
			if _, ok := s.manifest[name]; ok {
				delete(s.manifest, name)
				dirty = true
			}
		}
		outs = append(outs, out)
	}
	if dirty {
		// Manifest entries for quarantined/missing files are dropped;
		// best effort — a failed write here only means a stale manifest,
		// which the next Save or Load absorbs.
		_ = s.writeManifestLocked()
	}
	return outs
}

func (s *Store) loadOne(name string, restore func(string, *Decoder) error) (restored bool, quarantined string, err error) {
	start := time.Now()
	path := s.path(name)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, "", fmt.Errorf("snapshot: %s: file named by manifest is missing", name)
		}
		return false, "", err
	}
	defer f.Close()
	dec, err := NewDecoder(f)
	if err == nil {
		err = restore(name, dec)
	}
	if err != nil {
		if s.corruptions != nil && IsCorrupt(err) {
			s.corruptions.Inc()
		}
		f.Close()
		q, qerr := Quarantine(path)
		if qerr == nil {
			if s.quarantines != nil {
				s.quarantines.Inc()
			}
			return false, q, err
		}
		// Could not even move it aside; leave it, report the original
		// failure. The model is still not served from bad state.
		return false, "", fmt.Errorf("%w (quarantine also failed: %v)", err, qerr)
	}
	if s.restores != nil {
		s.restores.Inc()
		s.decodeNS.Observe(int64(time.Since(start)))
	}
	return true, "", nil
}
