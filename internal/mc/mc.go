// Package mc estimates the statistical distribution of crosstalk
// delay by Monte-Carlo sampling of switching scenarios. The paper's
// central motivation for top-k analysis is probabilistic: "delay noise
// that involves hundreds of precisely timed noise events is considered
// unlikely", so designers bound the analysis to k simultaneous
// aggressors. This package quantifies that argument on a concrete
// design: sample "which aggressors actually switch this cycle" with an
// activity factor, run the reference analysis per sample, and report
// the resulting delay distribution. Comparing a high quantile of that
// distribution with the top-k addition delay shows what k buys:
// the top-k curve bounds realistic (probabilistic) noise long before
// k reaches the total coupling count.
package mc

import (
	"fmt"
	"math/rand"
	"sort"

	"topkagg/internal/noise"
)

// Config controls a Monte-Carlo run.
type Config struct {
	// Activity is the per-coupling switching probability per cycle
	// (the classic activity factor). Zero selects DefaultActivity.
	Activity float64
	// Samples is the number of sampled scenarios (0 =
	// DefaultSamples).
	Samples int
	// Seed makes the run reproducible.
	Seed int64
}

// Defaults for the zero Config value.
const (
	DefaultActivity = 0.2
	DefaultSamples  = 200
)

func (c Config) activity() float64 {
	if c.Activity <= 0 {
		return DefaultActivity
	}
	if c.Activity > 1 {
		return 1
	}
	return c.Activity
}

func (c Config) samples() int {
	if c.Samples <= 0 {
		return DefaultSamples
	}
	return c.Samples
}

// Result summarizes the sampled delay distribution.
type Result struct {
	// Delays holds every sampled circuit delay, sorted ascending.
	Delays []float64
	// MeanActive is the average number of active couplings per sample.
	MeanActive float64
	// Base and All bracket the distribution: the noiseless delay and
	// the every-coupling-switching delay.
	Base, All float64
}

// Quantile returns the q-quantile (0..1) of the sampled delays.
func (r *Result) Quantile(q float64) float64 {
	if len(r.Delays) == 0 {
		return 0
	}
	if q <= 0 {
		return r.Delays[0]
	}
	if q >= 1 {
		return r.Delays[len(r.Delays)-1]
	}
	idx := int(q * float64(len(r.Delays)-1))
	return r.Delays[idx]
}

// Mean returns the sample mean delay.
func (r *Result) Mean() float64 {
	if len(r.Delays) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range r.Delays {
		sum += d
	}
	return sum / float64(len(r.Delays))
}

// Run samples switching scenarios and evaluates each with the
// reference iterative noise engine.
func Run(m *noise.Model, cfg Config) (*Result, error) {
	r := m.C.NumCouplings()
	if r == 0 {
		return nil, fmt.Errorf("mc: circuit has no couplings")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := cfg.activity()
	n := cfg.samples()
	res := &Result{Delays: make([]float64, 0, n)}

	baseAn, err := m.Run(noise.NewMask(m.C))
	if err != nil {
		return nil, err
	}
	res.Base = baseAn.CircuitDelay()
	allAn, err := m.Run(nil)
	if err != nil {
		return nil, err
	}
	res.All = allAn.CircuitDelay()

	totalActive := 0
	for s := 0; s < n; s++ {
		mask := noise.NewMask(m.C)
		active := 0
		for i := range mask {
			if rng.Float64() < p {
				mask[i] = true
				active++
			}
		}
		totalActive += active
		an, err := m.Run(mask)
		if err != nil {
			return nil, err
		}
		res.Delays = append(res.Delays, an.CircuitDelay())
	}
	sort.Float64s(res.Delays)
	res.MeanActive = float64(totalActive) / float64(n)
	return res, nil
}

// CoverageK returns the smallest cardinality k whose top-k addition
// delay (from the given per-cardinality curve) covers the q-quantile
// of the sampled distribution, and whether any cardinality does. This
// is the quantitative form of the paper's "restrict the analysis to k
// simultaneous aggressors" argument: the k at which worst-case top-k
// analysis already bounds realistic switching activity.
func (r *Result) CoverageK(curve []float64, q float64) (int, bool) {
	target := r.Quantile(q)
	for i, d := range curve {
		if d >= target-1e-12 {
			return i + 1, true
		}
	}
	return len(curve), false
}
