// Package serve is the batch-query layer over one noise model: an
// Analyzer, built once per noise.Model, memoizes the expensive
// per-configuration engine state (the all-aggressor fixpoint, victim
// selection, primary envelopes, dominance intervals, elimination
// totals) behind a concurrency-safe cache and answers many top-k and
// what-if queries against the shared state — serially via Do, or with
// a worker pool via RunBatch.
//
// The point is amortization: a cold core.TopK* call repays the whole
// engine setup on every query, so a k-sweep or a per-net scan over a
// design performs the same preparation r×k times. An Analyzer performs
// the fixpoint once per model and each (mode, target) preparation once,
// after which queries only pay for their own enumeration.
//
// Sharing is safe because everything cached is strictly read-only
// after construction: core.Shared never mutates its prepared state,
// and noise.Model, noise.Analysis and circuit.Circuit are never
// written during analysis (see their package docs). Determinism is
// preserved — a query's Response is byte-for-byte the same whether the
// batch ran with 1 worker or 64, and identical to a cold core call
// with the same configuration (wall-clock fields aside).
package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"topkagg/internal/budget"
	"topkagg/internal/circuit"
	"topkagg/internal/core"
	"topkagg/internal/faultinject"
	"topkagg/internal/noise"
)

// WholeCircuit selects the circuit outputs as a query's target.
const WholeCircuit = core.WholeCircuit

// Op selects what a Query computes.
type Op int

const (
	// Addition asks for the top-k aggressors addition sets (which k
	// couplings add the most delay to noiseless timing).
	Addition Op = iota
	// Elimination asks for the top-k aggressors elimination sets
	// (which k couplings to fix for the largest delay recovery).
	Elimination
	// WhatIf evaluates one explicit scenario: the circuit (or target
	// net) delay after deactivating Query.Fix on top of the active
	// mask, via incremental re-analysis of the cached fixpoint.
	WhatIf
)

func (op Op) String() string {
	switch op {
	case Addition:
		return "addition"
	case Elimination:
		return "elimination"
	case WhatIf:
		return "whatif"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// ParseOp maps an Op's wire names to its value: "addition"/"add",
// "elimination"/"elim", "whatif". The accepted long forms round-trip
// through Op.String.
func ParseOp(s string) (Op, bool) {
	switch s {
	case "addition", "add":
		return Addition, true
	case "elimination", "elim":
		return Elimination, true
	case "whatif":
		return WhatIf, true
	}
	return 0, false
}

// Limits bound one query's execution. The zero value is unlimited.
type Limits struct {
	// Timeout caps the query's wall-clock time; past it the engines
	// stop at the next poll point and the Response degrades to a
	// Partial result or a typed error. 0 means no timeout.
	Timeout time.Duration
	// MaxWork caps the enumeration work in candidate-evaluation units
	// (each candidate aggressor set scored and each reference
	// re-measurement costs one unit). 0 means unlimited.
	MaxWork int64
}

// Query is one unit of work for an Analyzer.
type Query struct {
	// Op selects the computation.
	Op Op
	// Net restricts the analysis to one net's arrival; WholeCircuit
	// (-1) analyzes the circuit outputs.
	Net circuit.NetID
	// K is the requested cardinality for top-k ops (the full
	// per-cardinality curve 1..K is returned, so a k-sweep is one
	// query). Ignored by WhatIf.
	K int
	// Fix lists the couplings a WhatIf scenario deactivates.
	Fix []circuit.CouplingID
	// Limits bound this query's execution (zero = unlimited). They
	// compose with a caller context: DoCtx stops at whichever of the
	// context and the limits trips first.
	Limits Limits
}

// Degradation reasons reported in Response.Degraded. The budget-driven
// ones are the budget.Reason strings.
const (
	DegradedCanceled     = "canceled"
	DegradedDeadline     = "deadline"
	DegradedWork         = "work-budget"
	DegradedNotConverged = "not-converged"
)

// Response is the outcome of one Query, aligned with it by index in
// RunBatch's result.
type Response struct {
	// Query echoes the request.
	Query Query
	// Result holds the top-k outcome (nil for WhatIf or on error). Its
	// Stats carry the per-cardinality engine counters plus the cache
	// hit/miss of this query's shared-state lookup.
	Result *core.Result
	// Delay is a WhatIf scenario's resulting delay, ns.
	Delay float64
	// Err reports a failed query; other queries in the batch are
	// unaffected. Worker panics surface here as wrapped
	// *budget.PanicError values, never as process crashes.
	Err error
	// Partial reports a best-effort result: the query's budget (timeout,
	// work allowance or cancellation) stopped the enumeration early and
	// Result carries exactly the cardinalities that completed, each
	// identical to an unbounded run's. Err is nil when Partial is set.
	Partial bool
	// Degraded names why a successful response is less than the full
	// answer: one of the Degraded* constants. Empty for complete,
	// fully-converged responses and for hard errors (inspect Err then).
	Degraded string
}

// Stats aggregates what an Analyzer's caches did across all queries.
type Stats struct {
	// Queries is the number of queries answered (including failed ones).
	Queries int64
	// PrepHits / PrepMisses count shared-state cache lookups: a hit
	// reused a memoized (mode, target) preparation, a miss built one.
	PrepHits   int64
	PrepMisses int64
	// FixpointRuns is the number of full noise fixpoints executed (at
	// most one per Analyzer; cold core calls pay one per query).
	FixpointRuns int64
}

// Analyzer answers top-k and what-if queries over one noise model,
// memoizing shared engine state across queries. All methods are safe
// for concurrent use.
type Analyzer struct {
	m   *noise.Model
	opt core.Options

	mu    sync.Mutex
	full  *fullEntry
	preps map[prepKey]*prepEntry

	queries, hits, misses, fixpoints atomic.Int64

	obs *serveObs // resolved from the model's registry; nil disables
}

type prepKey struct {
	elim bool
	net  circuit.NetID
}

// fullEntry single-flights the one fixpoint run: the first query
// builds (under its own budget), concurrent queries wait on done.
// Entries that fail transiently — the builder's budget tripped or a
// worker panicked — are evicted from the Analyzer before done closes,
// so a later query retries instead of inheriting a stale stop; only
// permanent model errors stay cached.
type fullEntry struct {
	done chan struct{}
	an   *noise.Analysis
	err  error
}

// prepEntry single-flights one (mode, target) preparation with the
// same transient-eviction discipline as fullEntry.
type prepEntry struct {
	done   chan struct{}
	shared *core.Shared
	err    error
}

// NewAnalyzer creates an Analyzer over the model with the given
// enumeration options. The options are fixed for the Analyzer's
// lifetime — they shape the cached state (victim selection, active
// mask), so varying them requires a separate Analyzer. When the model
// carries a metric registry (noise.Model.Obs), the Analyzer publishes
// per-query latency and cache metrics to it.
func NewAnalyzer(m *noise.Model, opt core.Options) *Analyzer {
	return &Analyzer{m: m, opt: opt, preps: map[prepKey]*prepEntry{}, obs: newServeObs(m.Obs)}
}

// Options returns the Analyzer's enumeration options. Snapshot restore
// uses it to check that a restored Analyzer matches the preset its
// container claimed.
func (a *Analyzer) Options() core.Options { return a.opt }

// retryableStop reports whether a failed cache build may be retried by
// a waiter whose own budget is still alive: the build died of the
// BUILDER's budget (cancel, deadline, work), which says nothing about
// the inputs or about the waiter. Worker panics are not retried — they
// indicate a bug and must surface — but the entry is still evicted, so
// the next query gets a fresh attempt.
func retryableStop(err error) bool {
	switch budget.ReasonOf(err) {
	case budget.Canceled, budget.DeadlineExceeded, budget.WorkExhausted:
		return true
	}
	return false
}

// fullAnalysis memoizes the one fixpoint run every preparation and
// what-if hangs off. The first caller builds under its own budget;
// concurrent callers wait on the entry (bounded by their own budgets).
// A waiter that inherits the BUILDER's budget failure retries — the
// failed entry was evicted — so a query only ever fails on its own
// budget, a panic, or a permanent model error.
func (a *Analyzer) fullAnalysis(b *budget.B) (*noise.Analysis, error) {
	for {
		a.mu.Lock()
		e := a.full
		if e == nil {
			e = &fullEntry{done: make(chan struct{})}
			a.full = e
			a.mu.Unlock()
			// Builder: a budget failure here is necessarily our own
			// budget's, so return it without retrying.
			a.buildFull(b, e)
			return e.an, e.err
		}
		a.mu.Unlock()
		select {
		case <-e.done:
		case <-b.Context().Done():
			return nil, fmt.Errorf("serve: %w", b.Err())
		}
		if e.err == nil || !retryableStop(e.err) {
			return e.an, e.err
		}
		if err := b.Err(); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
}

// buildFull runs the fixpoint into e and publishes it. A transient
// failure — the builder's budget tripped, or the run panicked —
// evicts the entry before done closes, so the in-flight waiters see
// the error but later queries rebuild fresh.
func (a *Analyzer) buildFull(b *budget.B, e *fullEntry) {
	defer func() {
		if r := recover(); r != nil {
			e.an, e.err = nil, fmt.Errorf("serve: full analysis: %w", budget.NewPanicError("serve.full", r))
		}
		if e.err != nil && budget.IsStop(e.err) {
			a.mu.Lock()
			if a.full == e {
				a.full = nil
			}
			a.mu.Unlock()
		}
		close(e.done)
	}()
	a.fixpoints.Add(1)
	if a.obs != nil {
		a.obs.fixpoints.Inc()
	}
	e.an, e.err = a.m.RunBudget(b, a.opt.Active)
}

// sharedFor returns the memoized shared state for one (mode, target)
// configuration, building it on first use under the querying budget.
// hit reports whether the entry already existed at lookup. Entries
// whose build stopped transiently are evicted (see fullEntry) so the
// cache never pins a cancellation or panic, and a waiter that inherits
// the builder's budget failure retries the lookup under its own.
func (a *Analyzer) sharedFor(b *budget.B, elim bool, net circuit.NetID) (shared *core.Shared, hit bool, err error) {
	key := prepKey{elim: elim, net: net}
	for {
		a.mu.Lock()
		e, ok := a.preps[key]
		if !ok {
			e = &prepEntry{done: make(chan struct{})}
			a.preps[key] = e
		}
		a.mu.Unlock()
		if !ok {
			a.misses.Add(1)
			if a.obs != nil {
				a.obs.prepMiss.Inc()
			}
			// Builder: a budget failure here is necessarily our own
			// budget's (fullAnalysis already absorbed everyone else's),
			// so return it without retrying.
			a.buildPrep(b, e, key, elim, net)
			return e.shared, false, e.err
		}
		a.hits.Add(1)
		if a.obs != nil {
			a.obs.prepHits.Inc()
		}
		select {
		case <-e.done:
		case <-b.Context().Done():
			return nil, true, fmt.Errorf("serve: %w", b.Err())
		}
		if e.err == nil || !retryableStop(e.err) {
			return e.shared, true, e.err
		}
		if err := b.Err(); err != nil {
			return nil, true, fmt.Errorf("serve: %w", err)
		}
		// The builder's budget stopped the build and the entry was
		// evicted; ours is still alive, so retry the lookup.
	}
}

// buildPrep builds one preparation into e with the same
// transient-eviction discipline as buildFull.
func (a *Analyzer) buildPrep(b *budget.B, e *prepEntry, key prepKey, elim bool, net circuit.NetID) {
	defer func() {
		if r := recover(); r != nil {
			e.shared, e.err = nil, fmt.Errorf("serve: prepare: %w", budget.NewPanicError("serve.prep", r))
		}
		if e.err != nil && budget.IsStop(e.err) {
			a.mu.Lock()
			if a.preps[key] == e {
				delete(a.preps, key)
			}
			a.mu.Unlock()
		}
		close(e.done)
	}()
	faultinject.Fire(faultinject.SiteServePrep)
	full, ferr := a.fullAnalysis(b)
	if ferr != nil {
		e.err = ferr
		return
	}
	if elim {
		e.shared, e.err = core.PrepareEliminationBudget(b, a.m, full, net, a.opt)
	} else {
		e.shared, e.err = core.PrepareAdditionBudget(b, a.m, full, net, a.opt)
	}
}

// Do answers one query without limits beyond Query.Limits. Errors are
// reported in the Response, never panicked, so a batch survives
// malformed entries.
func (a *Analyzer) Do(q Query) Response {
	return a.DoCtx(context.Background(), q)
}

// DoCtx answers one query under the context's cancellation and
// deadline composed with Query.Limits — whichever trips first stops
// the enumeration at its next poll point. A stopped top-k query
// returns its best-effort prefix as a Partial response; a stopped
// preparation or what-if returns a typed error. Worker panics are
// recovered into Response.Err and never poison the shared cache.
func (a *Analyzer) DoCtx(ctx context.Context, q Query) Response {
	if q.Limits.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, q.Limits.Timeout)
		defer cancel()
	}
	return a.doB(budget.WithWork(ctx, q.Limits.MaxWork), q)
}

// doB is the query engine: everything above it only shapes the budget.
func (a *Analyzer) doB(b *budget.B, q Query) (resp Response) {
	a.queries.Add(1)
	var start time.Time
	if a.obs != nil {
		start = time.Now()
	}
	resp = Response{Query: q}
	defer func() {
		if r := recover(); r != nil {
			resp.Result = nil
			resp.Partial = false
			resp.Degraded = ""
			resp.Err = fmt.Errorf("serve: query: %w", budget.NewPanicError("serve.query", r))
		}
		a.obs.queryDone(q.Op, start, resp.Err != nil)
		a.obs.outcome(&resp)
	}()
	faultinject.Fire(faultinject.SiteServeQuery)
	if q.Net != WholeCircuit && (int(q.Net) < 0 || int(q.Net) >= a.m.C.NumNets()) {
		resp.Err = fmt.Errorf("serve: no net %d in circuit %s", q.Net, a.m.C.Name)
		return resp
	}
	switch q.Op {
	case Addition, Elimination:
		if q.K < 1 {
			resp.Err = fmt.Errorf("serve: %s query needs k >= 1, got %d", q.Op, q.K)
			return resp
		}
		shared, hit, err := a.sharedFor(b, q.Op == Elimination, q.Net)
		if err != nil {
			resp.Err = err
			return resp
		}
		res, err := shared.TopKBudget(b, q.K)
		if err != nil {
			resp.Err = err
			return resp
		}
		if hit {
			res.Stats.CacheHits = 1
		} else {
			res.Stats.CacheMisses = 1
		}
		resp.Result = res
		switch {
		case res.Partial:
			resp.Partial = true
			resp.Degraded = budget.ReasonOf(res.Stopped).String()
		case shared.FullAnalysis().ConvergenceErr() != nil:
			resp.Degraded = DegradedNotConverged
		}
	case WhatIf:
		resp.Delay, resp.Degraded, resp.Err = a.whatIf(b, q)
	default:
		resp.Err = fmt.Errorf("serve: unknown query op %d", int(q.Op))
	}
	return resp
}

// whatIf evaluates the delay after deactivating q.Fix, incrementally
// against the cached fixpoint.
func (a *Analyzer) whatIf(b *budget.B, q Query) (float64, string, error) {
	full, err := a.fullAnalysis(b)
	if err != nil {
		return 0, "", err
	}
	prevMask := a.opt.Active
	var mask noise.Mask
	if prevMask == nil {
		mask = noise.AllMask(a.m.C)
	} else {
		mask = prevMask.Clone()
	}
	for _, id := range q.Fix {
		if int(id) < 0 || int(id) >= a.m.C.NumCouplings() {
			return 0, "", fmt.Errorf("serve: no coupling %d in circuit %s", id, a.m.C.Name)
		}
		mask[id] = false
	}
	an, _, err := a.m.RunIncrementalBudget(b, full, prevMask, mask)
	if err != nil {
		return 0, "", err
	}
	degraded := ""
	if an.ConvergenceErr() != nil {
		degraded = DegradedNotConverged
	}
	if q.Net != WholeCircuit {
		return an.Timing.Window(q.Net).LAT, degraded, nil
	}
	return an.CircuitDelay(), degraded, nil
}

// Stats snapshots the Analyzer's cache counters.
func (a *Analyzer) Stats() Stats {
	return Stats{
		Queries:      a.queries.Load(),
		PrepHits:     a.hits.Load(),
		PrepMisses:   a.misses.Load(),
		FixpointRuns: a.fixpoints.Load(),
	}
}
