package serve

import (
	"strings"
	"sync"
	"testing"

	"topkagg/internal/cell"
	"topkagg/internal/circuit"
	"topkagg/internal/core"
	"topkagg/internal/netlist"
	"topkagg/internal/noise"
)

const small = `circuit small
output y
gate g1 NAND2_X1 a b -> n1
gate g2 INV_X1 n1 -> n2
gate g3 INV_X1 n2 -> y
gate h1 INV_X1 c -> m1
gate h2 INV_X1 d -> m2
couple n1 m1 2.5
couple n2 m2 1.8
couple y m1 1.2
`

func smallModel(t *testing.T) *noise.Model {
	t.Helper()
	c, err := netlist.ParseString(small, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	return noise.NewModel(c)
}

// TestBatchMatchesColdCalls pins the contract that an Analyzer answer
// is the same answer a cold core call produces.
func TestBatchMatchesColdCalls(t *testing.T) {
	m := smallModel(t)
	opt := core.Options{SlackFrac: 1}
	a := NewAnalyzer(m, opt)
	y, _ := m.C.NetByName("y")

	queries := []Query{
		{Op: Addition, Net: WholeCircuit, K: 2},
		{Op: Elimination, Net: WholeCircuit, K: 2},
		{Op: Addition, Net: y, K: 2},
		{Op: Addition, Net: WholeCircuit, K: 2}, // repeat: must hit the cache
	}
	resps := a.RunBatch(queries, 2)
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
	}

	cold, err := core.TopKAddition(m, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(resps[0].Result, cold) {
		t.Fatalf("batch addition differs from cold call:\n%+v\nvs\n%+v", resps[0].Result.PerK, cold.PerK)
	}
	coldAt, err := core.TopKAdditionAt(m, y, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(resps[2].Result, coldAt) {
		t.Fatal("batch per-net addition differs from cold call")
	}
	coldElim, err := core.TopKElimination(m, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(resps[1].Result, coldElim) {
		t.Fatal("batch elimination differs from cold call")
	}

	if resps[0].Result.Stats.CacheMisses != 1 || resps[0].Result.Stats.CacheHits != 0 {
		t.Fatalf("first query must be a cache miss: %+v", resps[0].Result.Stats)
	}
	if resps[3].Result.Stats.CacheHits != 1 {
		t.Fatalf("repeated query must be a cache hit: %+v", resps[3].Result.Stats)
	}

	st := a.Stats()
	if st.Queries != 4 || st.FixpointRuns != 1 {
		t.Fatalf("stats = %+v, want 4 queries over 1 fixpoint", st)
	}
	if st.PrepMisses != 3 || st.PrepHits != 1 {
		t.Fatalf("stats = %+v, want 3 prep misses + 1 hit", st)
	}
}

// TestWhatIf checks scenario queries against direct reference runs.
func TestWhatIf(t *testing.T) {
	m := smallModel(t)
	a := NewAnalyzer(m, core.Options{})

	// Fixing nothing = the all-aggressor delay.
	r := a.Do(Query{Op: WhatIf, Net: WholeCircuit})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	full, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Delay != full.CircuitDelay() {
		t.Fatalf("empty what-if delay %g, want %g", r.Delay, full.CircuitDelay())
	}

	// Fixing everything = within fixpoint tolerance of noiseless.
	all := []circuit.CouplingID{0, 1, 2}
	r = a.Do(Query{Op: WhatIf, Net: WholeCircuit, Fix: all})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	quiet, err := m.Run(noise.WithoutMask(m.C, all))
	if err != nil {
		t.Fatal(err)
	}
	if d := r.Delay - quiet.CircuitDelay(); d > 1e-6 || d < -1e-6 {
		t.Fatalf("full fix delay %g, reference %g", r.Delay, quiet.CircuitDelay())
	}
	if r.Delay >= full.CircuitDelay() {
		t.Fatal("fixing all couplings must reduce the delay")
	}
}

// TestQueryValidation checks that malformed queries fail in their own
// Response without poisoning the batch.
func TestQueryValidation(t *testing.T) {
	m := smallModel(t)
	a := NewAnalyzer(m, core.Options{})
	resps := a.RunBatch([]Query{
		{Op: Addition, Net: WholeCircuit, K: 0},       // bad k
		{Op: Addition, Net: circuit.NetID(999), K: 1}, // bad net
		{Op: Op(42), K: 1},                            // bad op; Net zero value is net 0
		{Op: WhatIf, Fix: []circuit.CouplingID{99}},   // bad coupling
		{Op: Addition, Net: WholeCircuit, K: 1},       // fine
	}, 3)
	for i, want := range []string{"k >= 1", "no net", "unknown query op", "no coupling", ""} {
		if want == "" {
			if resps[i].Err != nil {
				t.Fatalf("query %d must succeed: %v", i, resps[i].Err)
			}
			continue
		}
		if resps[i].Err == nil || !strings.Contains(resps[i].Err.Error(), want) {
			t.Fatalf("query %d error = %v, want substring %q", i, resps[i].Err, want)
		}
	}
}

// TestEmptyBatch: a zero-length batch returns a zero-length response
// slice with any worker count.
func TestEmptyBatch(t *testing.T) {
	a := NewAnalyzer(smallModel(t), core.Options{})
	if got := a.RunBatch(nil, 8); len(got) != 0 {
		t.Fatalf("empty batch produced %d responses", len(got))
	}
	if st := a.Stats(); st.Queries != 0 {
		t.Fatalf("empty batch counted queries: %+v", st)
	}
}

// TestConcurrentSameKey hammers one cache key from many goroutines:
// the preparation must run exactly once and every caller must get the
// same answer (exercised under -race in CI).
func TestConcurrentSameKey(t *testing.T) {
	m := smallModel(t)
	a := NewAnalyzer(m, core.Options{SlackFrac: 1})
	const n = 16
	resps := make([]Response, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i] = a.Do(Query{Op: Elimination, Net: WholeCircuit, K: 2})
		}(i)
	}
	wg.Wait()
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("goroutine %d: %v", i, r.Err)
		}
		if !resultsEqual(r.Result, resps[0].Result) {
			t.Fatalf("goroutine %d result differs", i)
		}
	}
	if st := a.Stats(); st.FixpointRuns != 1 || st.PrepMisses != 1 {
		t.Fatalf("stats = %+v, want exactly one fixpoint and one preparation", st)
	}
}

// TestKSweep checks the sweep helper's query construction.
func TestKSweep(t *testing.T) {
	qs := KSweep(Addition, []circuit.NetID{3, WholeCircuit}, 5)
	if len(qs) != 2 || qs[0].Net != 3 || qs[1].Net != WholeCircuit || qs[0].K != 5 || qs[0].Op != Addition {
		t.Fatalf("KSweep = %+v", qs)
	}
}
