package waveform

import (
	"math"
	"math/rand"
	"testing"
)

// randTrapParams draws trapezoid parameters covering the degenerate
// regions: sub-minWidth edges, collapsed flat tops, tiny and large
// peaks.
func randTrapParams(rng *rand.Rand) (t0, rise, flatEnd, fall, vp float64) {
	t0 = rng.Float64()*20 - 5
	rise = math.Pow(10, rng.Float64()*8-7) // 1e-7 .. 1e1
	fall = math.Pow(10, rng.Float64()*8-7)
	switch rng.Intn(3) {
	case 0:
		flatEnd = t0 + rise + rng.Float64()*5 // proper flat top
	case 1:
		flatEnd = t0 + rise - rng.Float64() // collapses
	default:
		flatEnd = t0 + rise + rng.Float64()*2e-9 // near the Eps merge
	}
	vp = rng.Float64() * 2
	return
}

// TestTrapMatchesPWLBitwise pins Trap.At to the PWL evaluation of the
// same trapezoid, bit for bit, including at and around breakpoints.
func TestTrapMatchesPWLBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		t0, rise, flatEnd, fall, vp := randTrapParams(rng)
		tr := NewTrap(t0, rise, flatEnd, fall, vp)
		w := Trapezoid(t0, rise, flatEnd, fall, vp)
		times := []float64{
			tr.Q0, tr.Q1, tr.Q2, tr.Q3,
			tr.Q0 - 1, tr.Q3 + 1,
			math.Nextafter(tr.Q0, math.Inf(1)),
			math.Nextafter(tr.Q1, math.Inf(-1)),
			math.Nextafter(tr.Q3, math.Inf(-1)),
		}
		for i := 0; i < 40; i++ {
			lo, hi := tr.Q0-0.5, tr.Q3+0.5
			times = append(times, lo+rng.Float64()*(hi-lo))
		}
		for _, tt := range times {
			got, want := tr.At(tt), w.Value(tt)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("trial %d: At(%v)=%v, PWL Value=%v (params t0=%v rise=%v flatEnd=%v fall=%v vp=%v)",
					trial, tt, got, want, t0, rise, flatEnd, fall, vp)
			}
		}
		// The closed form must carry exactly the PWL's breakpoints.
		pts := w.Points()
		if tr.Q0 != pts[0].T || tr.Q3 != pts[len(pts)-1].T {
			t.Fatalf("trial %d: endpoint mismatch", trial)
		}
	}
}

// TestTrapMaxOnConservative checks MaxOn dominates dense sampling of
// At over the interval.
func TestTrapMaxOnConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 500; trial++ {
		t0, rise, flatEnd, fall, vp := randTrapParams(rng)
		if vp < 0 {
			vp = -vp
		}
		tr := NewTrap(t0, rise, flatEnd, fall, vp)
		span := tr.Q3 - tr.Q0 + 2
		a := tr.Q0 - 1 + rng.Float64()*span
		b := a + rng.Float64()*span/4
		bound := tr.MaxOn(a, b)
		for i := 0; i <= 200; i++ {
			tt := a + (b-a)*float64(i)/200
			if tt > b {
				tt = b // accumulated rounding may step past the interval
			}
			if v := tr.At(tt); v > bound {
				t.Fatalf("trial %d: At(%v)=%v exceeds MaxOn(%v,%v)=%v", trial, tt, v, a, b, bound)
			}
		}
	}
}

// TestGridColumnsConservative checks that after accumulating several
// trapezoids, every column bounds the exact envelope sum at every
// time the grid assigns to that cell.
func TestGridColumnsConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := GetGrid()
	defer PutGrid(g)
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(8)
		traps := make([]Trap, k)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range traps {
			t0, rise, flatEnd, fall, vp := randTrapParams(rng)
			traps[i] = NewTrap(t0, rise, flatEnd, fall, vp)
			lo = math.Min(lo, traps[i].Q0)
			hi = math.Max(hi, traps[i].Q3)
		}
		g.Reset(lo, hi, 64)
		if g.Cells != 64 {
			t.Fatalf("cells = %d, want 64", g.Cells)
		}
		for _, tr := range traps {
			g.AddTrapMax(tr)
		}
		g.Finalize()
		for i := 0; i < 500; i++ {
			tt := lo + rng.Float64()*(hi-lo)
			sum := 0.0
			for _, tr := range traps {
				sum += tr.At(tt)
			}
			c := g.CellOf(tt)
			// Allow only summation-order rounding between the exact sum
			// and the column bound.
			if sum > g.Col[c]+1e-12 {
				t.Fatalf("trial %d: sum %v at t=%v exceeds column %v (cell %d)", trial, sum, tt, g.Col[c], c)
			}
		}
	}
}

func TestGridResetPowerOfTwoAndReuse(t *testing.T) {
	g := GetGrid()
	defer PutGrid(g)
	g.Reset(0, 10, 48)
	if g.Cells != 64 {
		t.Fatalf("48 cells rounded to %d, want 64", g.Cells)
	}
	g.Col[0] = 5
	g.Reset(0, 10, 64)
	g.Finalize()
	if g.Col[0] != 0 {
		t.Fatal("Finalize after empty Reset did not clear columns")
	}
	// Degenerate window must not divide by zero.
	g.Reset(3, 3, 16)
	if c := g.CellOf(3); c < 0 || c >= g.Cells {
		t.Fatalf("degenerate window CellOf out of range: %d", c)
	}
}

func TestCellOfMonotoneClamped(t *testing.T) {
	g := GetGrid()
	defer PutGrid(g)
	g.Reset(-2, 7, 32)
	prevC := 0
	for i := 0; i <= 3000; i++ {
		tt := -4 + float64(i)*15/3000 // sorted sweep past both ends
		c := g.CellOf(tt)
		if c < 0 || c >= g.Cells {
			t.Fatalf("CellOf(%v) = %d out of range", tt, c)
		}
		if c < prevC {
			t.Fatalf("CellOf not monotone at t=%v: %d after %d", tt, c, prevC)
		}
		prevC = c
	}
}
