package noise

import (
	"math"
	"math/rand"
	"testing"

	"topkagg/internal/gen"
)

// TestFixpointWorkerCountInvariant pins the determinism contract of
// the parallel sweep: for any circuit and any mask, the analysis is
// byte-identical regardless of the worker count. Runs under -race in
// CI, so it also exercises the sweep for data races.
func TestFixpointWorkerCountInvariant(t *testing.T) {
	for _, seed := range []int64{3, 7, 19, 57, 101} {
		c, err := gen.Build(gen.Spec{Name: "wprop", Gates: 40, Couplings: 70, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		m := NewModel(c)
		r := rand.New(rand.NewSource(seed))
		mask := NewMask(c)
		for i := range mask {
			mask[i] = r.Intn(4) != 0
		}
		ref, err := m.WithWorkers(1).Run(mask)
		if err != nil {
			t.Fatalf("seed %d: serial run: %v", seed, err)
		}
		for _, workers := range []int{2, 8} {
			an, err := m.WithWorkers(workers).Run(mask)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if an.Iterations != ref.Iterations || an.Converged != ref.Converged {
				t.Errorf("seed %d workers %d: iterations %d/%v, serial %d/%v",
					seed, workers, an.Iterations, an.Converged, ref.Iterations, ref.Converged)
			}
			for n, v := range an.NetNoise {
				if v != ref.NetNoise[n] {
					t.Errorf("seed %d workers %d: net %d noise %v != serial %v",
						seed, workers, n, v, ref.NetNoise[n])
				}
			}
			for n, w := range an.Timing.Windows {
				if w != ref.Timing.Windows[n] {
					t.Errorf("seed %d workers %d: net %d window %+v != serial %+v",
						seed, workers, n, w, ref.Timing.Windows[n])
				}
			}
		}
	}
}

// TestRunIncrementalMatchesColdRun checks that the incremental path —
// adopted previous timing, cone-restarted noise, worklist-seeded
// fixpoint — lands on the same fixpoint a cold Run computes for the
// new mask. The ascent is mildly iteration-order dependent, so the
// comparison allows a sub-picosecond tolerance (see RunIncremental's
// doc comment); any algorithmic divergence would exceed it by orders
// of magnitude.
func TestRunIncrementalMatchesColdRun(t *testing.T) {
	const tol = 1e-4
	for _, seed := range []int64{5, 13, 29} {
		c, err := gen.Build(gen.Spec{Name: "iprop", Gates: 40, Couplings: 70, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		m := NewModel(c)
		prevMask := AllMask(c)
		prev, err := m.Run(prevMask)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed))
		mask := prevMask.Clone()
		for i := 0; i < 5; i++ {
			mask[r.Intn(len(mask))] = false
		}
		incAn, _, err := m.RunIncremental(prev, prevMask, mask)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := m.Run(mask)
		if err != nil {
			t.Fatal(err)
		}
		if incAn.Converged != cold.Converged {
			t.Errorf("seed %d: converged %v, cold %v", seed, incAn.Converged, cold.Converged)
		}
		for n := range cold.NetNoise {
			if d := math.Abs(incAn.NetNoise[n] - cold.NetNoise[n]); d > tol {
				t.Errorf("seed %d: net %d noise %v, cold %v (diff %g)",
					seed, n, incAn.NetNoise[n], cold.NetNoise[n], d)
			}
		}
		if d := math.Abs(incAn.CircuitDelay() - cold.CircuitDelay()); d > tol {
			t.Errorf("seed %d: circuit delay %v, cold %v (diff %g)",
				seed, incAn.CircuitDelay(), cold.CircuitDelay(), d)
		}
	}
}
