// Package noise implements the linear noise-analysis framework of the
// DAC'07 paper (its Section 2): triangular noise pulses from a
// Thevenin/charge-sharing model, trapezoidal noise envelopes spanning
// aggressor timing windows, worst-case delay noise by superimposing
// envelopes on the latest victim transition, and the iterative
// timing-window/delay-noise fixpoint of Sapatnekar-style noise-aware
// STA.
package noise

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"topkagg/internal/budget"
	"topkagg/internal/cell"
	"topkagg/internal/circuit"
	"topkagg/internal/obs"
	"topkagg/internal/sta"
	"topkagg/internal/waveform"
)

// Mask selects the subset of coupling capacitors considered active in
// a noise scenario, indexed by CouplingID.
type Mask []bool

// NewMask returns an all-inactive mask sized for circuit c.
func NewMask(c *circuit.Circuit) Mask { return make(Mask, c.NumCouplings()) }

// AllMask returns a mask with every coupling active.
func AllMask(c *circuit.Circuit) Mask {
	m := NewMask(c)
	for i := range m {
		m[i] = true
	}
	return m
}

// MaskOf returns a mask with exactly the given couplings active.
func MaskOf(c *circuit.Circuit, ids []circuit.CouplingID) Mask {
	m := NewMask(c)
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// WithoutMask returns a mask with every coupling active except the
// given ones.
func WithoutMask(c *circuit.Circuit, ids []circuit.CouplingID) Mask {
	m := AllMask(c)
	for _, id := range ids {
		m[id] = false
	}
	return m
}

// Active reports whether coupling id is active. A nil Mask means all
// couplings are active.
func (m Mask) Active(id circuit.CouplingID) bool {
	if m == nil {
		return true
	}
	return m[id]
}

// Count returns the number of active couplings.
func (m Mask) Count() int {
	n := 0
	for _, b := range m {
		if b {
			n++
		}
	}
	return n
}

// Clone returns a copy of the mask.
func (m Mask) Clone() Mask {
	out := make(Mask, len(m))
	copy(out, m)
	return out
}

// Model binds the noise framework to a circuit.
//
// A Model is read-only during analysis: Run and RunIncremental never
// write to the Model, the Circuit or any Analysis they are given, so
// one Model may serve any number of concurrent analyses (the serve
// package's batch layer relies on this). The configuration fields
// below must not be mutated while analyses are in flight.
type Model struct {
	C   *circuit.Circuit
	Vdd float64

	// MaxIterations bounds the timing-window/delay-noise fixpoint
	// iteration. Industrial designs converge in 3-4 iterations; the
	// default (32) is a generous safety bound.
	MaxIterations int
	// Tol is the convergence tolerance on per-net delay noise, ns.
	Tol float64
	// PIArrival optionally overrides primary-input windows.
	PIArrival func(circuit.NetID) sta.Window
	// Driver selects the victim holding-driver model for pulse peaks.
	// Nil means the paper's linear Thevenin model; SaturatingCSM
	// provides the paper's future-work nonlinear extension.
	Driver DriverModel
	// Workers caps the goroutines evaluating independent victims
	// within one fixpoint sweep. 0 means GOMAXPROCS, 1 forces serial
	// sweeps. Results are byte-identical for any setting; callers that
	// already parallelise whole analyses (e.g. the brute-force
	// searcher) set 1 to avoid oversubscription.
	Workers int
	// Obs, when non-nil, receives fixpoint and incremental-STA metrics
	// (see internal/obs and DESIGN.md §8). Nil disables instrumentation
	// at near-zero cost; analysis results are identical either way.
	Obs *obs.Registry
	// ExactWaveforms disables the flat-grid screen of the fixpoint
	// kernel: every victim evaluation runs the exact crossing walk over
	// all envelope breakpoints. Results are byte-identical either way —
	// the grid only skips work it proves cannot change the outcome
	// (DESIGN.md §12) — so the flag exists for differential testing
	// (cmd/topk -exact-waveforms) and debugging, at a throughput cost.
	ExactWaveforms bool

	// fixPool recycles fixpoint engine state (victim CSR, envelope
	// memo, per-worker scratch) across runs on the same model. Shallow
	// model copies (WithObs, WithWorkers, ...) share the pool; a
	// zero-value Model has none and allocates per run.
	fixPool *sync.Pool
}

// WithObs returns a shallow copy of the model publishing metrics to r
// (nil r disables instrumentation on the copy). The copy shares the
// circuit and all other configuration.
func (m *Model) WithObs(r *obs.Registry) *Model {
	cp := *m
	cp.Obs = r
	return &cp
}

// WithWorkers returns a shallow copy of the model with the sweep
// worker count set. The copy shares the circuit and all other
// configuration.
func (m *Model) WithWorkers(n int) *Model {
	cp := *m
	cp.Workers = n
	return &cp
}

// WithExactWaveforms returns a shallow copy of the model with the
// grid fast path enabled or disabled; see the ExactWaveforms field.
func (m *Model) WithExactWaveforms(exact bool) *Model {
	cp := *m
	cp.ExactWaveforms = exact
	return &cp
}

// NewModel creates a model with default iteration controls, taking
// Vdd from the circuit's library.
func NewModel(c *circuit.Circuit) *Model {
	return &Model{
		C: c, Vdd: c.Lib.Vdd, MaxIterations: 32, Tol: 1e-6,
		fixPool: &sync.Pool{New: func() any { return new(fixpoint) }},
	}
}

// Pulse describes the triangular noise pulse one coupling injects on a
// victim when the aggressor switches once.
type Pulse struct {
	Vp   float64 // peak voltage, V
	Rise float64 // time from pulse start to peak, ns
	Fall float64 // decay time from peak back to zero, ns
}

// PulseParams computes the noise pulse that coupling cp injects on
// victim when the aggressor side transitions with the given slew.
//
// The peak follows the standard linear (Thevenin driver + lumped RC)
// model: Vp = Vdd · (Rv·Cc/tr) · (1 − exp(−tr/τ)) with τ = Rv·(Cc+Cv),
// which saturates at the charge-sharing limit Vdd·Cc/(Cc+Cv) for fast
// aggressors. The pulse tracks the aggressor edge on the way up and
// decays with the victim RC constant.
func (m *Model) PulseParams(victim circuit.NetID, cp *circuit.Coupling, aggSlew float64) Pulse {
	rv := m.C.DriverRes(victim)
	cv := m.C.Net(victim).Cgnd + m.C.PinLoad(victim)
	tr := math.Max(aggSlew, 1e-3)
	vp, rEff := m.solvePeak(rv, cp.Cc, cv, tr)
	tau := cell.RC(rEff, cp.Cc+cv)
	return Pulse{
		Vp:   vp,
		Rise: tr / 2,
		Fall: math.Max(2*tau, 1e-3),
	}
}

// PulseAt returns the pulse waveform for an aggressor switching with
// its 50% crossing at time ta.
func (m *Model) PulseAt(victim circuit.NetID, cp *circuit.Coupling, aggSlew, ta float64) waveform.PWL {
	p := m.PulseParams(victim, cp, aggSlew)
	return waveform.TrianglePulse(ta-p.Rise, p.Rise, p.Fall, p.Vp)
}

// Envelope returns the trapezoidal noise envelope coupling cp induces
// on victim, given the aggressor's timing window: the pulse placed at
// the window's EAT and LAT with the peaks connected (paper Fig. 2).
func (m *Model) Envelope(victim circuit.NetID, cp *circuit.Coupling, aggWin sta.Window) waveform.PWL {
	p := m.PulseParams(victim, cp, aggWin.Slew)
	if p.Vp <= 0 {
		return waveform.Zero()
	}
	return waveform.Trapezoid(aggWin.EAT-p.Rise, p.Rise, aggWin.LAT, p.Fall, p.Vp)
}

// InfiniteEnvelope returns the envelope of coupling cp with an
// unbounded aggressor timing window, relative to the victim's own
// window: the flat top spans the victim's whole transition region.
// This is the construction the paper uses to upper-bound delay noise
// when computing the dominance interval.
func (m *Model) InfiniteEnvelope(victim circuit.NetID, cp *circuit.Coupling, victimWin sta.Window, aggSlew float64) waveform.PWL {
	p := m.PulseParams(victim, cp, aggSlew)
	if p.Vp <= 0 {
		return waveform.Zero()
	}
	span := 4*victimWin.Slew + p.Fall + 1.0
	start := victimWin.LAT - victimWin.Slew - span
	end := victimWin.LAT + span
	return waveform.Trapezoid(start-p.Rise, p.Rise, end, p.Fall, p.Vp)
}

// VictimRamp returns the noiseless latest victim transition: a rising
// saturated ramp with its 50% crossing at the window's LAT.
func (m *Model) VictimRamp(w sta.Window) waveform.PWL {
	return waveform.RisingRamp(w.LAT, math.Max(w.Slew, 1e-3), m.Vdd)
}

// DelayNoise returns the worst-case increase of the victim's t50 when
// the combined noise envelope env is superimposed on (subtracted from,
// for a rising victim) the latest victim transition.
func (m *Model) DelayNoise(victimWin sta.Window, env waveform.PWL) float64 {
	var s evalScratch
	return m.delayNoiseInto(victimWin, env, &s)
}

// delayNoiseInto is DelayNoise evaluated through a caller-owned
// scratch: the victim ramp is built in place and the ramp-minus-
// envelope subtraction reuses the scratch buffer, so the fixpoint hot
// path performs no steady-state allocation. The ramp points are
// exactly VictimRamp's (slew clamp included), and SubInto is
// point-identical to Sub, so the result matches the public DelayNoise
// bit for bit.
func (m *Model) delayNoiseInto(victimWin sta.Window, env waveform.PWL, s *evalScratch) float64 {
	if env.IsZero() {
		return 0
	}
	slew := math.Max(victimWin.Slew, 1e-3)
	s.ramp[0] = waveform.Point{T: victimWin.LAT - slew/2, V: 0}
	s.ramp[1] = waveform.Point{T: victimWin.LAT + slew/2, V: m.Vdd}
	var noisy waveform.PWL
	noisy, s.sub = waveform.SubInto(waveform.View(s.ramp[:]), env, s.sub)
	t, ok := noisy.LatestTimeAtOrBelow(m.Vdd / 2)
	if !ok {
		// Envelope holds the victim below threshold past its span;
		// the transition completes once the envelope decays.
		t = env.End()
	}
	d := t - victimWin.LAT
	if d < 0 {
		return 0
	}
	return d
}

// CombinedEnvelope sums the envelopes of the given couplings on the
// victim, using each aggressor's window from win.
func (m *Model) CombinedEnvelope(victim circuit.NetID, ids []circuit.CouplingID, win []sta.Window) waveform.PWL {
	var acc waveform.Accumulator
	for _, id := range ids {
		cp := m.C.Coupling(id)
		agg := cp.Other(victim)
		acc.Add(m.Envelope(victim, cp, win[agg]))
	}
	return acc.SumCopy()
}

// Analysis is the result of one noise-aware timing run.
type Analysis struct {
	// Base is the noiseless timing.
	Base *sta.Result
	// Timing is the converged noisy timing (windows include delay
	// noise in their LAT).
	Timing *sta.Result
	// NetNoise is each net's own worst-case delay noise at the
	// fixpoint (the ExtraLAT injected into Timing), indexed by NetID.
	NetNoise []float64
	// Iterations is the number of fixpoint iterations performed.
	Iterations int
	// Converged reports whether the fixpoint settled within tolerance.
	Converged bool
}

// ErrNotConverged is the sentinel every *NotConvergedError matches
// via errors.Is, so callers can test for non-convergence without
// caring about the iteration count it carries.
var ErrNotConverged = errors.New("noise: fixpoint did not converge")

// NotConvergedError is the typed non-convergence condition: the
// fixpoint exhausted its iteration cap before every net's noise
// settled within Tol. The analysis it annotates is still a sound
// lower bound (the ascent is monotone from below), just not proven
// stationary — callers decide whether that is degraded-but-usable or
// fatal.
type NotConvergedError struct {
	// Iterations is the number of sweeps performed (the cap).
	Iterations int
}

func (e *NotConvergedError) Error() string {
	return fmt.Sprintf("noise: fixpoint did not converge within %d iterations", e.Iterations)
}

// Is makes errors.Is(err, ErrNotConverged) true for this type.
func (e *NotConvergedError) Is(target error) bool { return target == ErrNotConverged }

// CircuitDelay returns the noisy circuit delay.
func (a *Analysis) CircuitDelay() float64 { return a.Timing.CircuitDelay() }

// ConvergenceErr returns nil for a converged analysis and a typed
// *NotConvergedError otherwise — the query-visible form of the
// Converged flag.
func (a *Analysis) ConvergenceErr() error {
	if a.Converged {
		return nil
	}
	return &NotConvergedError{Iterations: a.Iterations}
}

// PropagatedShift returns the part of net n's latest-arrival shift
// that was inherited from its fanin rather than injected on n itself.
func (a *Analysis) PropagatedShift(n circuit.NetID) float64 {
	s := a.Timing.Window(n).LAT - a.Base.Window(n).LAT - a.NetNoise[n]
	if s < 0 {
		return 0
	}
	return s
}

// Run performs the iterative delay-noise/timing-window analysis with
// the given set of active couplings (nil mask = all active).
//
// The iteration starts from noiseless windows (the optimistic
// fixpoint start of [3],[5]); each pass recomputes the worst-case
// delay noise of every victim whose inputs moved, injects it into the
// victim's latest arrival through an incremental re-timing of the
// fanout cone, and repeats until no net's noise moves by more than
// Tol. Envelope widths grow monotonically with window widths, so the
// iteration is monotone and converges. After the first full sweep the
// engine evaluates only the dirty-victim worklist (see fixpoint),
// which is value-preserving: every skipped victim would recompute
// exactly the noise it already carries.
//
// Run does not mutate the model or the circuit and is safe to call
// concurrently; the returned Analysis is immutable shared data for
// every consumer that treats it as read-only (all packages here do).
func (m *Model) Run(active Mask) (*Analysis, error) { return m.RunBudget(nil, active) }

// RunCtx is Run honoring the context's cancellation and deadline: the
// fixpoint polls it at bounded granularity (per iteration and every
// budgetStride evaluations inside a sweep) and returns a typed
// early-stop error — no partially-committed sweep ever reaches an
// Analysis. The error unwraps to context.Canceled or
// context.DeadlineExceeded as appropriate.
func (m *Model) RunCtx(ctx context.Context, active Mask) (*Analysis, error) {
	return m.RunBudget(budget.New(ctx), active)
}

// RunBudget is the budget-carrying engine entry point RunCtx and the
// upper layers (core, serve) share; a nil budget runs unbounded. See
// Run for the analysis semantics.
func (m *Model) RunBudget(b *budget.B, active Mask) (*Analysis, error) {
	defer m.Obs.Span("noise.run").End()
	opt := sta.Options{PIArrival: m.PIArrival}
	base, err := sta.Analyze(m.C, opt)
	if err != nil {
		return nil, fmt.Errorf("noise: %w", err)
	}
	// Adopt the noiseless timing instead of re-analyzing: a zero
	// ExtraLAT vector is bit-transparent to window propagation.
	inc, err := sta.NewIncrementalFrom(base, opt)
	if err != nil {
		return nil, fmt.Errorf("noise: %w", err)
	}
	inc.Instrument(m.Obs)
	f := newFixpoint(m, active, inc, b)
	defer m.putFixpoint(f)
	f.seedAll()
	iters, converged, err := f.iterate()
	if err != nil {
		return nil, fmt.Errorf("noise: %w", err)
	}
	an := &Analysis{
		Base:       base,
		Timing:     inc.Snapshot(),
		NetNoise:   append([]float64(nil), inc.ExtraLAT()...),
		Iterations: iters,
		Converged:  converged,
	}
	return an, nil
}

// activeCouplingsOf returns the active couplings incident on net v.
// With a nil (all-active) mask this is the circuit's own adjacency
// slice — shared, read-only, no allocation. Otherwise the filter
// appends into scratch (grown as needed) and returns it; callers that
// pass a reused scratch must consume the result before the next call.
func (m *Model) activeCouplingsOf(v circuit.NetID, active Mask, scratch []circuit.CouplingID) []circuit.CouplingID {
	all := m.C.CouplingsOf(v)
	if active == nil {
		return all
	}
	out := scratch[:0]
	for _, id := range all {
		if active.Active(id) {
			out = append(out, id)
		}
	}
	return out
}

// DelayUpperBound returns an upper bound on the delay noise of net v
// assuming every incident coupling has an infinite timing window; this
// bounds the dominance interval of the top-k algorithm.
func (m *Model) DelayUpperBound(v circuit.NetID, win []sta.Window) float64 {
	var acc waveform.Accumulator
	vw := win[v]
	for _, id := range m.C.CouplingsOf(v) {
		cp := m.C.Coupling(id)
		agg := cp.Other(v)
		acc.Add(m.InfiniteEnvelope(v, cp, vw, win[agg].Slew))
	}
	return m.DelayNoise(vw, acc.Sum())
}
