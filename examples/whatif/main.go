// Whatif: an interactive-style noise-fixing loop of the kind the paper
// motivates ("employed in the inner loop of design optimization").
// Starting from the fully noisy design, it repeatedly asks the top-k
// engine for a candidate fix, verifies the candidate with the
// incremental noise engine (recomputing only the change cone rather
// than the whole design), applies it, and repeats until a timing
// target is met or the fix budget runs out.
package main

import (
	"flag"
	"fmt"
	"log"

	"topkagg"
)

func main() {
	bench := flag.String("bench", "", "paper benchmark circuit (default: a sparser generated design that shows off incremental cones)")
	margin := flag.Float64("margin", 0.5, "fraction of the crosstalk penalty to recover")
	budget := flag.Int("budget", 25, "maximum number of fixes")
	flag.Parse()

	var (
		c   *topkagg.Circuit
		err error
	)
	if *bench != "" {
		c, err = topkagg.GenerateBenchmark(*bench)
	} else {
		c, err = topkagg.Generate(topkagg.Spec{Name: "sparse", Gates: 220, Couplings: 120, Seed: 9})
	}
	if err != nil {
		log.Fatal(err)
	}
	m := topkagg.NewModel(c)
	mask := make(topkagg.Mask, c.NumCouplings())
	for i := range mask {
		mask[i] = true
	}
	cur, err := m.Run(mask)
	if err != nil {
		log.Fatal(err)
	}
	base := cur.Base.CircuitDelay()
	penalty := cur.CircuitDelay() - base
	target := cur.CircuitDelay() - *margin*penalty
	fmt.Printf("design %s: noisy %.4f ns, noiseless %.4f ns, target %.4f ns\n\n",
		c.Name, cur.CircuitDelay(), base, target)

	// Ask once for a ranked fix plan, then apply it fix by fix with
	// incremental verification.
	plan, err := topkagg.TopKElimination(m, *budget, topkagg.Options{NoRescore: true})
	if err != nil {
		log.Fatal(err)
	}
	applied := map[topkagg.CouplingID]bool{}
	tried := map[topkagg.CouplingID]bool{}
	fixes := 0
	for _, sel := range plan.PerK {
		if cur.CircuitDelay() <= target || fixes >= *budget {
			break
		}
		for _, id := range sel.IDs {
			if applied[id] || tried[id] {
				continue
			}
			tried[id] = true
			next := mask.Clone()
			next[id] = false
			an, stats, err := m.RunIncremental(cur, mask, next)
			if err != nil {
				log.Fatal(err)
			}
			gain := cur.CircuitDelay() - an.CircuitDelay()
			scope := fmt.Sprintf("%d nets re-analyzed", stats.Affected)
			if stats.Full {
				scope = "full re-analysis"
			}
			if gain <= 0 {
				fmt.Printf("  skip  %-24s (no gain; %s)\n", topkagg.CouplingString(c, id), scope)
				continue
			}
			mask, cur = next, an
			applied[id] = true
			fixes++
			fmt.Printf("  fix %2d %-24s -> %.4f ns (gain %.4f, %s)\n",
				fixes, topkagg.CouplingString(c, id), cur.CircuitDelay(), gain, scope)
			if cur.CircuitDelay() <= target || fixes >= *budget {
				break
			}
		}
	}

	fmt.Printf("\nfinal delay %.4f ns after %d fixes", cur.CircuitDelay(), fixes)
	if cur.CircuitDelay() <= target {
		fmt.Println(" — target met")
	} else {
		fmt.Println(" — budget exhausted before target")
	}
}
