package core

import (
	"reflect"
	"testing"

	"topkagg/internal/gen"
	"topkagg/internal/noise"
)

// TestEnvCacheWarmReuse pins the hash-consing contract: repeated
// queries on one prepared state intern their set envelopes, so a warm
// re-run of the same query reuses every derivation (all hits, no new
// misses) and returns byte-identical selections.
func TestEnvCacheWarmReuse(t *testing.T) {
	c, err := gen.Build(gen.Spec{Name: "warm", Gates: 20, Couplings: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m := noise.NewModel(c)
	for _, elim := range []bool{false, true} {
		prep := PrepareAddition
		mode := "addition"
		if elim {
			prep = PrepareElimination
			mode = "elimination"
		}
		shared, err := prep(m, WholeCircuit, Options{SlackFrac: 1, NoRescore: true})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		cold, err := shared.TopK(4)
		if err != nil {
			t.Fatalf("%s cold: %v", mode, err)
		}
		if cold.Stats.EnvCacheMisses == 0 {
			t.Fatalf("%s cold: expected cache misses while populating, got none", mode)
		}
		warm, err := shared.TopK(4)
		if err != nil {
			t.Fatalf("%s warm: %v", mode, err)
		}
		if warm.Stats.EnvCacheMisses != 0 {
			t.Errorf("%s warm: %d cache misses on a fully populated cache", mode, warm.Stats.EnvCacheMisses)
		}
		if warm.Stats.EnvCacheHits == 0 {
			t.Errorf("%s warm: no cache hits on re-run", mode)
		}
		if !reflect.DeepEqual(cold.PerK, warm.PerK) {
			t.Errorf("%s: warm selections differ from cold:\n  cold: %+v\n  warm: %+v", mode, cold.PerK, warm.PerK)
		}
		hits, misses := shared.EnvCacheStats()
		if want := int64(cold.Stats.EnvCacheHits + warm.Stats.EnvCacheHits); hits != want {
			t.Errorf("%s: EnvCacheStats hits = %d, want %d", mode, hits, want)
		}
		if want := int64(cold.Stats.EnvCacheMisses); misses != want {
			t.Errorf("%s: EnvCacheStats misses = %d, want %d", mode, misses, want)
		}
	}
}
