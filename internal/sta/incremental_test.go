package sta

import (
	"math/rand"
	"testing"

	"topkagg/internal/cell"
	"topkagg/internal/circuit"
	"topkagg/internal/netlist"
)

// chainCircuit builds a small reconvergent circuit for incremental
// tests.
func chainCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := netlist.ParseString(`circuit inc
output y z
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> n2
gate g3 NAND2_X1 n2 b -> n3
gate g4 INV_X1 n3 -> y
gate h1 INV_X1 b -> m1
gate h2 NAND2_X1 m1 n1 -> z
`, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestIncrementalBitIdenticalToAnalyze drives random ExtraLAT updates
// through the incremental analyzer and checks every window is
// bit-identical to a fresh full Analyze with the same vector.
func TestIncrementalBitIdenticalToAnalyze(t *testing.T) {
	c := chainCircuit(t)
	inc, err := NewIncremental(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(71))
	extra := make([]float64, c.NumNets())
	for step := 0; step < 100; step++ {
		// Mutate 1-3 nets; occasionally set back to zero.
		for k := 0; k < 1+r.Intn(3); k++ {
			n := circuit.NetID(r.Intn(c.NumNets()))
			v := r.Float64() * 0.3
			if r.Intn(4) == 0 {
				v = 0
			}
			extra[n] = v
			inc.SetExtraLAT(n, v)
		}
		inc.Update()
		want, err := Analyze(c, Options{ExtraLAT: extra})
		if err != nil {
			t.Fatal(err)
		}
		for nid := range want.Windows {
			if got := inc.Result().Windows[nid]; got != want.Windows[nid] {
				t.Fatalf("step %d net %d: incremental %+v != full %+v",
					step, nid, got, want.Windows[nid])
			}
		}
	}
}

// TestIncrementalChangedSetIsCone checks Update reports exactly the
// nets that moved, and that untouched updates report nothing.
func TestIncrementalChangedSetIsCone(t *testing.T) {
	c := chainCircuit(t)
	inc, err := NewIncremental(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := inc.Update(); len(got) != 0 {
		t.Fatalf("no-op update changed %d nets", len(got))
	}
	n1, _ := c.NetByName("n1")
	before := inc.Snapshot()
	inc.SetExtraLAT(n1, 0.25)
	moved := map[circuit.NetID]bool{}
	for _, n := range inc.Update() {
		moved[n] = true
	}
	if !moved[n1] {
		t.Fatal("the updated net itself must be reported")
	}
	for nid, w := range inc.Result().Windows {
		was := before.Windows[nid]
		if (w != was) != moved[circuit.NetID(nid)] {
			t.Fatalf("net %d: moved=%v but window delta=%v", nid, moved[circuit.NetID(nid)], w != was)
		}
	}
	// A net outside n1's fanout cone must not be in the changed set.
	m1, _ := c.NetByName("m1")
	if moved[m1] {
		t.Fatal("m1 is not in n1's fanout cone")
	}
	// Setting the same value again is a no-op.
	inc.SetExtraLAT(n1, 0.25)
	if got := inc.Update(); len(got) != 0 {
		t.Fatalf("idempotent set changed %d nets", len(got))
	}
}

// TestIncrementalFromAdoptsResult checks the adoption constructor
// reproduces the source analysis without re-running it and diverges
// correctly afterwards.
func TestIncrementalFromAdoptsResult(t *testing.T) {
	c := chainCircuit(t)
	extra := make([]float64, c.NumNets())
	extra[2] = 0.1
	res, err := Analyze(c, Options{ExtraLAT: extra})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncrementalFrom(res, Options{ExtraLAT: extra})
	if err != nil {
		t.Fatal(err)
	}
	for nid := range res.Windows {
		if inc.Result().Windows[nid] != res.Windows[nid] {
			t.Fatalf("adopted window %d differs", nid)
		}
	}
	srcCopy := append([]Window(nil), res.Windows...)
	inc.SetExtraLAT(circuit.NetID(2), 0.3)
	inc.Update()
	if inc.Result().Windows[2] == res.Windows[2] {
		t.Fatal("update must move the adopted copy")
	}
	for nid := range res.Windows {
		if res.Windows[nid] != srcCopy[nid] {
			t.Fatal("source result mutated by adopted incremental")
		}
	}
	extra2 := make([]float64, c.NumNets())
	copy(extra2, extra)
	extra2[2] = 0.3
	want, err := Analyze(c, Options{ExtraLAT: extra2})
	if err != nil {
		t.Fatal(err)
	}
	for nid := range want.Windows {
		if inc.Result().Windows[nid] != want.Windows[nid] {
			t.Fatalf("post-adoption update: net %d differs", nid)
		}
	}
}
