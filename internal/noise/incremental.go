package noise

import (
	"context"
	"fmt"

	"topkagg/internal/bitset"
	"topkagg/internal/budget"
	"topkagg/internal/circuit"
	"topkagg/internal/sta"
)

// IncrementalStats reports what an incremental run actually did.
type IncrementalStats struct {
	// Affected is the number of nets whose noise was recomputed.
	Affected int
	// Full reports whether the change cone was so large that the
	// engine fell back to a complete run.
	Full bool
}

// RunIncremental re-evaluates the noise fixpoint after the active
// coupling mask changed from prevMask (the mask prev was computed
// with) to mask, recomputing delay noise only inside the change cone:
// the smallest net set closed under gate fanout and coupling
// adjacency that contains every endpoint of a changed coupling. Nets
// outside the cone keep their previous noise — their windows and
// aggressor envelopes are provably unchanged.
//
// This is the engine for what-if loops (shield this, re-check that):
// fixing one coupling on a large design touches a small cone instead
// of the whole netlist. When the cone covers most of the circuit the
// engine falls back to a full Run.
//
// The fixpoint ascent is mildly iteration-order dependent (per-net
// noise is clamped monotone across iterations, and raw re-evaluations
// are alignment-sensitive), so incremental results can differ from a
// cold Run by sub-femtosecond-to-sub-picosecond amounts; they agree
// well inside any physical tolerance.
//
// Like Run, RunIncremental never writes to the model, the circuit,
// prev or the masks; many incremental analyses may share one prev
// concurrently.
func (m *Model) RunIncremental(prev *Analysis, prevMask, mask Mask) (*Analysis, IncrementalStats, error) {
	return m.RunIncrementalBudget(nil, prev, prevMask, mask)
}

// RunIncrementalCtx is RunIncremental honoring the context's
// cancellation and deadline with the same bounded-granularity polling
// and all-or-nothing sweep commit as RunCtx.
func (m *Model) RunIncrementalCtx(ctx context.Context, prev *Analysis, prevMask, mask Mask) (*Analysis, IncrementalStats, error) {
	return m.RunIncrementalBudget(budget.New(ctx), prev, prevMask, mask)
}

// RunIncrementalBudget is the budget-carrying form of RunIncremental;
// a nil budget runs unbounded.
func (m *Model) RunIncrementalBudget(b *budget.B, prev *Analysis, prevMask, mask Mask) (*Analysis, IncrementalStats, error) {
	defer m.Obs.Span("noise.run_incremental").End()
	if m.Obs != nil {
		m.Obs.Counter("noise.incremental.runs").Inc()
	}
	if prev == nil {
		an, err := m.RunBudget(b, mask)
		m.incrementalDone(m.C.NumNets(), true)
		return an, IncrementalStats{Affected: m.C.NumNets(), Full: true}, err
	}
	changed := changedCouplings(m.C, prevMask, mask)
	if len(changed) == 0 {
		m.incrementalDone(0, false)
		return prev, IncrementalStats{}, nil
	}
	affected := m.changeCone(changed)
	defer bitset.Put(affected)
	nAffected := affected.Count()
	if nAffected >= m.C.NumNets()*3/5 {
		an, err := m.RunBudget(b, mask)
		m.incrementalDone(m.C.NumNets(), true)
		return an, IncrementalStats{Affected: m.C.NumNets(), Full: true}, err
	}

	// Adopt the previous converged timing — prev.Timing is exactly
	// what a full analysis with prev.NetNoise produces, so the
	// incremental analyzer starts bit-aligned with prev and the only
	// re-timing work is the cone restart below.
	inc, err := sta.NewIncrementalFrom(prev.Timing, sta.Options{PIArrival: m.PIArrival, ExtraLAT: prev.NetNoise})
	if err != nil {
		return nil, IncrementalStats{}, fmt.Errorf("noise: incremental: %w", err)
	}
	affected.ForEach(func(v int) {
		inc.SetExtraLAT(circuit.NetID(v), 0) // the cone restarts; couplings may have been removed
	})
	f := newFixpoint(m, mask, inc, b)
	defer m.putFixpoint(f)
	f.markChanged(inc.Update())
	affected.ForEach(func(v int) {
		if vi := f.vIndex[v]; vi >= 0 {
			f.dirty[vi] = true
		}
	})
	iters, converged, err := f.iterate()
	if err != nil {
		return nil, IncrementalStats{}, fmt.Errorf("noise: incremental: %w", err)
	}
	an := &Analysis{
		Base:       prev.Base,
		Timing:     inc.Snapshot(),
		NetNoise:   append([]float64(nil), inc.ExtraLAT()...),
		Iterations: iters,
		Converged:  converged,
	}
	m.incrementalDone(nAffected, false)
	return an, IncrementalStats{Affected: nAffected}, nil
}

// incrementalDone records one RunIncremental outcome: the size of the
// recomputed cone and whether it degenerated to a full run. No-op
// without a registry.
func (m *Model) incrementalDone(affected int, full bool) {
	if m.Obs == nil {
		return
	}
	m.Obs.Histogram("noise.incremental.affected").Observe(int64(affected))
	if full {
		m.Obs.Counter("noise.incremental.full_fallbacks").Inc()
	}
}

// changedCouplings returns the IDs whose activation differs between
// the two masks.
func changedCouplings(c *circuit.Circuit, a, b Mask) []circuit.CouplingID {
	var out []circuit.CouplingID
	for i := 0; i < c.NumCouplings(); i++ {
		id := circuit.CouplingID(i)
		if a.Active(id) != b.Active(id) {
			out = append(out, id)
		}
	}
	return out
}

// changeCone returns the nets whose noise or windows can change when
// the given couplings toggle: the endpoints, closed under gate fanout
// (windows shift downstream) and coupling adjacency (envelopes depend
// on neighbour windows). The set is a pooled dense bitset; the caller
// releases it with bitset.Put.
func (m *Model) changeCone(changed []circuit.CouplingID) *bitset.Dense {
	cone := bitset.Get(m.C.NumNets())
	var stack []circuit.NetID
	push := func(n circuit.NetID) {
		if !cone.Get(int(n)) {
			cone.Set(int(n))
			stack = append(stack, n)
		}
	}
	for _, id := range changed {
		cp := m.C.Coupling(id)
		push(cp.A)
		push(cp.B)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, gid := range m.C.Net(n).Loads {
			push(m.C.Gate(gid).Output)
		}
		for _, cid := range m.C.CouplingsOf(n) {
			push(m.C.Coupling(cid).Other(n))
		}
	}
	return cone
}

// DelayDelta is a convenience for what-if loops: the circuit-delay
// change from prev after toggling the given couplings off (fix) or on
// (unfix), evaluated incrementally.
func (m *Model) DelayDelta(prev *Analysis, prevMask Mask, fix []circuit.CouplingID) (float64, *Analysis, error) {
	var mask Mask
	if prevMask == nil {
		mask = AllMask(m.C)
	} else {
		mask = prevMask.Clone()
	}
	for _, id := range fix {
		mask[id] = !mask[id]
	}
	an, _, err := m.RunIncremental(prev, prevMask, mask)
	if err != nil {
		return 0, nil, err
	}
	return an.CircuitDelay() - prev.CircuitDelay(), an, nil
}
