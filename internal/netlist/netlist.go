// Package netlist reads and writes the plain-text circuit format used
// by the command-line tools and examples.
//
// The format is line-oriented; '#' starts a comment. Keywords:
//
//	circuit NAME
//	input  NET...
//	output NET...
//	net    NAME [cg=F] [rw=F] [x=F] [y=F]
//	gate   NAME CELL IN... -> OUT
//	couple NETA NETB CC
//
// Nets referenced by gate or couple lines are created implicitly with
// default parasitics; a net line (before or after first use) overrides
// attributes. All values use the repository units: ns, fF, kΩ, µm.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"topkagg/internal/cell"
	"topkagg/internal/circuit"
)

// Parse reads a circuit in the text format, resolving cells against
// lib. The returned circuit is validated.
func Parse(r io.Reader, lib *cell.Library) (*circuit.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	c := circuit.New("unnamed", lib)
	var outputs []string
	lineNo := 0
	fail := func(format string, args ...any) error {
		return fmt.Errorf("netlist: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch kw := fields[0]; kw {
		case "circuit":
			if len(fields) != 2 {
				return nil, fail("circuit wants one name")
			}
			c.Name = fields[1]
		case "input":
			for _, n := range fields[1:] {
				c.EnsureNet(n)
			}
		case "output":
			outputs = append(outputs, fields[1:]...)
		case "net":
			if len(fields) < 2 {
				return nil, fail("net wants a name")
			}
			id := c.EnsureNet(fields[1])
			net := c.Net(id)
			for _, attr := range fields[2:] {
				k, vs, ok := strings.Cut(attr, "=")
				if !ok {
					return nil, fail("net attribute %q is not key=value", attr)
				}
				v, err := strconv.ParseFloat(vs, 64)
				if err != nil {
					return nil, fail("net attribute %q: %v", attr, err)
				}
				switch k {
				case "cg":
					net.Cgnd = v
				case "rw":
					net.Rwire = v
				case "x":
					net.X = v
				case "y":
					net.Y = v
				default:
					return nil, fail("unknown net attribute %q", k)
				}
			}
		case "gate":
			// gate NAME CELL IN... -> OUT
			if len(fields) < 5 {
				return nil, fail("gate wants NAME CELL IN... -> OUT")
			}
			arrow := -1
			for i, f := range fields {
				if f == "->" {
					arrow = i
				}
			}
			if arrow != len(fields)-2 || arrow < 3 {
				return nil, fail("gate wants exactly one -> before the output")
			}
			name, cellName := fields[1], fields[2]
			ins := fields[3:arrow]
			out := fields[len(fields)-1]
			if _, err := c.AddGate(name, cellName, ins, out); err != nil {
				return nil, fail("%v", err)
			}
		case "couple":
			if len(fields) != 4 {
				return nil, fail("couple wants NETA NETB CC")
			}
			cc, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fail("couple capacitance %q: %v", fields[3], err)
			}
			if _, err := c.AddCoupling(fields[1], fields[2], cc); err != nil {
				return nil, fail("%v", err)
			}
		default:
			return nil, fail("unknown keyword %q", kw)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: read: %w", err)
	}
	for _, o := range outputs {
		if err := c.MarkPO(o); err != nil {
			return nil, fmt.Errorf("netlist: %w", err)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	// Parasitics were written through net pointers; drop any columnar
	// snapshot built against intermediate state.
	c.InvalidateColumns()
	return c, nil
}

// ParseString is Parse over an in-memory netlist.
func ParseString(s string, lib *cell.Library) (*circuit.Circuit, error) {
	return Parse(strings.NewReader(s), lib)
}

// Write emits the circuit in canonical text form: header, primary
// inputs, outputs, every net with its parasitics, gates in ID order,
// couplings in ID order. Parse(Write(c)) reproduces c.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "circuit %s\n", c.Name)
	if pis := c.PIs(); len(pis) > 0 {
		fmt.Fprint(bw, "input")
		for _, id := range pis {
			fmt.Fprintf(bw, " %s", c.Net(id).Name)
		}
		fmt.Fprintln(bw)
	}
	var pos []circuit.NetID
	for _, n := range c.Nets() {
		if n.IsPO {
			pos = append(pos, n.ID)
		}
	}
	if len(pos) > 0 {
		fmt.Fprint(bw, "output")
		for _, id := range pos {
			fmt.Fprintf(bw, " %s", c.Net(id).Name)
		}
		fmt.Fprintln(bw)
	}
	// Emit net declarations in the order a re-parse creates nets —
	// primary inputs first (the input line above), then the rest — so
	// the canonical form is a fixpoint of Parse∘Write.
	for _, n := range c.Nets() {
		if n.Driver == circuit.NoGate {
			fmt.Fprintf(bw, "net %s cg=%g rw=%g x=%g y=%g\n", n.Name, n.Cgnd, n.Rwire, n.X, n.Y)
		}
	}
	for _, n := range c.Nets() {
		if n.Driver != circuit.NoGate {
			fmt.Fprintf(bw, "net %s cg=%g rw=%g x=%g y=%g\n", n.Name, n.Cgnd, n.Rwire, n.X, n.Y)
		}
	}
	for _, g := range c.Gates() {
		fmt.Fprintf(bw, "gate %s %s", g.Name, g.Cell.Name)
		for _, in := range g.Inputs {
			fmt.Fprintf(bw, " %s", c.Net(in).Name)
		}
		fmt.Fprintf(bw, " -> %s\n", c.Net(g.Output).Name)
	}
	for _, cp := range c.Couplings() {
		fmt.Fprintf(bw, "couple %s %s %g\n", c.Net(cp.A).Name, c.Net(cp.B).Name, cp.Cc)
	}
	return bw.Flush()
}

// String renders the circuit in canonical text form. A render failure
// (not reachable with a strings.Builder sink, but kept total so corrupt
// circuits degrade instead of crashing) renders as a comment line.
func String(c *circuit.Circuit) string {
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		return fmt.Sprintf("# netlist: render failed: %v\n", err)
	}
	return sb.String()
}
