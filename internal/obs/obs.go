// Package obs is the engine's observability substrate: named atomic
// counters, lock-free latency/size histograms and hierarchical span
// tracing with a pluggable sink, collected in a Registry that can be
// snapshotted to JSON, rendered as a human summary table, or served
// over an opt-in HTTP debug endpoint (expvar + pprof + metrics).
//
// The package is designed for hot paths that must stay allocation-free
// and for call sites that must compile to near-zero cost when
// instrumentation is off:
//
//   - Every read/record method is nil-safe: a nil *Registry hands out
//     nil *Counter/*Histogram/*Span values, and recording on a nil
//     metric is a single pointer check. Disabled instrumentation is
//     therefore one predictable branch, no allocation, no time.Now.
//   - Counters and histogram buckets are plain atomics; recording
//     never takes a lock and never allocates. Registration (the
//     by-name lookup) uses an RWMutex and is meant to be done once per
//     engine construction, not per event.
//   - Spans allocate one small struct per span and are meant for
//     run/query granularity (a fixpoint run, a batch query), not for
//     per-victim inner loops — those use counters flushed from
//     worker-local scratch.
//
// Metric naming convention: dot-separated subsystem prefixes
// ("noise.fixpoint.sweeps", "serve.query_ns/addition"); names ending
// in "_ns" hold nanosecond durations and render as durations in the
// human table. Span durations are recorded under "span.<path>".
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically-adjusted atomic counter. The zero value
// is ready to use; a nil Counter discards all updates.
type Counter struct {
	v atomic.Int64
}

// Add adds n to the counter. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one to the counter. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry is a named collection of metrics. The zero value is not
// usable; construct with New. A nil *Registry is the disabled state:
// it hands out nil metrics and empty snapshots, so instrumented code
// never needs its own enabled/disabled flag.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	sink     atomic.Value // holds spanSinkBox
}

// spanSinkBox wraps a SpanSink so atomic.Value accepts differing
// concrete sink types.
type spanSinkBox struct{ s SpanSink }

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil counter (whose methods are no-ops), so
// callers may resolve and use metrics unconditionally.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
// Nil-safe like Counter.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// counterNames returns the registered counter names, sorted.
func (r *Registry) counterNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// histNames returns the registered histogram names, sorted.
func (r *Registry) histNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
