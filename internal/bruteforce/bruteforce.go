// Package bruteforce implements the baseline the paper compares
// against: exhaustive enumeration of all C(r, k) coupling subsets,
// each evaluated with a full iterative noise-analysis run. Its cost is
// what makes the top-k problem non-trivial — the paper reports it
// failing to finish k >= 4 within 1800 s even on the smallest
// benchmark.
package bruteforce

import (
	"fmt"
	"time"

	"topkagg/internal/circuit"
	"topkagg/internal/noise"
)

// Result is the outcome of one brute-force search.
type Result struct {
	// IDs is the optimal coupling set found (nil when timed out before
	// the first full cardinality pass completed).
	IDs []circuit.CouplingID
	// Delay is the circuit delay of the optimum: the maximum over
	// addition sets, the minimum over elimination sets.
	Delay float64
	// Evaluated counts the noise-analysis runs performed.
	Evaluated int
	// TimedOut reports whether the search stopped before exhausting the
	// space: the search deadline expired, or (parallel Ctx variants) the
	// context was canceled.
	TimedOut bool
	// Stopped is the typed stop condition when the context (rather than
	// the search's own deadline) ended a *ParallelCtx search early; nil
	// otherwise. See internal/budget.
	Stopped error
	// Elapsed is the wall-clock search time.
	Elapsed time.Duration
}

// Addition exhaustively finds the cardinality-k coupling set whose
// activation maximizes circuit delay. A zero budget means no deadline.
func Addition(m *noise.Model, k int, budget time.Duration) (*Result, error) {
	return search(m, k, budget, func(ids []circuit.CouplingID) noise.Mask {
		return noise.MaskOf(m.C, ids)
	}, func(cand, best float64) bool { return cand > best })
}

// Elimination exhaustively finds the cardinality-k coupling set whose
// removal minimizes circuit delay. A zero budget means no deadline.
func Elimination(m *noise.Model, k int, budget time.Duration) (*Result, error) {
	return search(m, k, budget, func(ids []circuit.CouplingID) noise.Mask {
		return noise.WithoutMask(m.C, ids)
	}, func(cand, best float64) bool { return cand < best })
}

func search(m *noise.Model, k int, budget time.Duration,
	mask func([]circuit.CouplingID) noise.Mask,
	better func(cand, best float64) bool) (*Result, error) {

	r := m.C.NumCouplings()
	if k < 1 || k > r {
		return nil, fmt.Errorf("bruteforce: k=%d out of range 1..%d", k, r)
	}
	start := time.Now()
	var deadline time.Time
	if budget > 0 {
		deadline = start.Add(budget)
	}
	res := &Result{}
	first := true

	// Iterate all k-combinations of {0..r-1} in lexicographic order.
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	ids := make([]circuit.CouplingID, k)
	for {
		for i, x := range idx {
			ids[i] = circuit.CouplingID(x)
		}
		an, err := m.Run(mask(ids))
		if err != nil {
			return nil, fmt.Errorf("bruteforce: %w", err)
		}
		res.Evaluated++
		if d := an.CircuitDelay(); first || better(d, res.Delay) {
			res.Delay = d
			res.IDs = append(res.IDs[:0], ids...)
			first = false
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.TimedOut = true
			break
		}
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == r-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Combinations returns C(n, k) as a float64 (it overflows int64
// quickly); used for reporting the search-space size.
func Combinations(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 1; i <= k; i++ {
		out = out * float64(n-k+i) / float64(i)
	}
	return out
}
