// Package verilog reads and writes gate-level structural Verilog — the
// standard interchange for synthesized netlists — restricted to the
// subset this library needs: one module, scalar ports and wires, and
// standard-cell instances with named pin connections.
//
//	module demo (a, b, y);
//	  input a, b;
//	  output y;
//	  wire n1;
//	  NAND2_X1 g1 (.A(a), .B(b), .Y(n1));
//	  INV_X1 g2 (.A(n1), .Y(y));
//	endmodule
//
// Cell input pins are named A, B, C (in order); the output pin is Y.
// Parasitics are not part of Verilog; pair a Verilog netlist with a
// SPEF file (package spef) to get coupling capacitances.
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strings"

	"topkagg/internal/cell"
	"topkagg/internal/circuit"
)

// InputPinNames is the naming convention for cell input pins.
var InputPinNames = []string{"A", "B", "C"}

// OutputPinName is the naming convention for the cell output pin.
const OutputPinName = "Y"

// Parse reads a single-module gate-level Verilog netlist, resolving
// cells against lib. The returned circuit is validated; declared
// outputs are marked as primary outputs.
func Parse(r io.Reader, lib *cell.Library) (*circuit.Circuit, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("verilog: read: %w", err)
	}
	text := stripComments(string(src))

	// Statements are ;-terminated.
	var c *circuit.Circuit
	var outputs []string
	seenEnd := false
	for _, raw := range strings.Split(text, ";") {
		stmt := strings.TrimSpace(raw)
		if stmt == "" {
			continue
		}
		if i := strings.Index(stmt, "endmodule"); i >= 0 {
			rest := strings.TrimSpace(strings.TrimPrefix(stmt[i:], "endmodule"))
			if rest != "" {
				return nil, fmt.Errorf("verilog: content after endmodule: %q", rest)
			}
			stmt = strings.TrimSpace(stmt[:i])
			seenEnd = true
			if stmt == "" {
				continue
			}
		}
		switch {
		case strings.HasPrefix(stmt, "module"):
			if c != nil {
				return nil, fmt.Errorf("verilog: multiple modules are not supported")
			}
			name, err := parseModuleHeader(stmt)
			if err != nil {
				return nil, err
			}
			c = circuit.New(name, lib)
		case c == nil:
			return nil, fmt.Errorf("verilog: statement before module header: %q", stmt)
		case strings.HasPrefix(stmt, "input"):
			for _, n := range splitIdentList(strings.TrimPrefix(stmt, "input")) {
				c.EnsureNet(n)
			}
		case strings.HasPrefix(stmt, "output"):
			outputs = append(outputs, splitIdentList(strings.TrimPrefix(stmt, "output"))...)
		case strings.HasPrefix(stmt, "wire"):
			for _, n := range splitIdentList(strings.TrimPrefix(stmt, "wire")) {
				c.EnsureNet(n)
			}
		default:
			if err := parseInstance(c, lib, stmt); err != nil {
				return nil, err
			}
		}
	}
	if c == nil {
		return nil, fmt.Errorf("verilog: no module found")
	}
	if !seenEnd {
		return nil, fmt.Errorf("verilog: missing endmodule")
	}
	for _, o := range outputs {
		if err := c.MarkPO(o); err != nil {
			return nil, fmt.Errorf("verilog: %w", err)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("verilog: %w", err)
	}
	return c, nil
}

// ParseString is Parse over in-memory source.
func ParseString(s string, lib *cell.Library) (*circuit.Circuit, error) {
	return Parse(strings.NewReader(s), lib)
}

var identRe = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_$]*$`)

func parseModuleHeader(stmt string) (string, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(stmt, "module"))
	name := rest
	if i := strings.IndexByte(rest, '('); i >= 0 {
		name = strings.TrimSpace(rest[:i])
		if !strings.HasSuffix(strings.TrimSpace(rest), ")") {
			return "", fmt.Errorf("verilog: malformed module port list: %q", stmt)
		}
	}
	if !identRe.MatchString(name) {
		return "", fmt.Errorf("verilog: bad module name %q", name)
	}
	return name, nil
}

func splitIdentList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

var connRe = regexp.MustCompile(`\.\s*([A-Za-z_][A-Za-z0-9_$]*)\s*\(\s*([A-Za-z_][A-Za-z0-9_$]*)\s*\)`)

// parseInstance handles `CELL name (.A(x), .Y(y))`.
func parseInstance(c *circuit.Circuit, lib *cell.Library, stmt string) error {
	open := strings.IndexByte(stmt, '(')
	if open < 0 || !strings.HasSuffix(strings.TrimSpace(stmt), ")") {
		return fmt.Errorf("verilog: malformed statement: %q", stmt)
	}
	head := strings.Fields(stmt[:open])
	if len(head) != 2 {
		return fmt.Errorf("verilog: instance wants CELL NAME (...): %q", stmt)
	}
	cellName, instName := head[0], head[1]
	cl, err := lib.Cell(cellName)
	if err != nil {
		return fmt.Errorf("verilog: instance %s: %w", instName, err)
	}
	body := stmt[open:]
	conns := connRe.FindAllStringSubmatch(body, -1)
	if len(conns) == 0 {
		return fmt.Errorf("verilog: instance %s: only named pin connections (.A(x)) are supported", instName)
	}
	byPin := map[string]string{}
	for _, m := range conns {
		if _, dup := byPin[m[1]]; dup {
			return fmt.Errorf("verilog: instance %s: pin %s connected twice", instName, m[1])
		}
		byPin[m[1]] = m[2]
	}
	ins := make([]string, cl.NumInputs)
	for i := 0; i < cl.NumInputs; i++ {
		pin := InputPinNames[i]
		net, ok := byPin[pin]
		if !ok {
			return fmt.Errorf("verilog: instance %s: missing input pin %s", instName, pin)
		}
		ins[i] = net
		delete(byPin, pin)
	}
	out, ok := byPin[OutputPinName]
	if !ok {
		return fmt.Errorf("verilog: instance %s: missing output pin %s", instName, OutputPinName)
	}
	delete(byPin, OutputPinName)
	if len(byPin) > 0 {
		for pin := range byPin {
			return fmt.Errorf("verilog: instance %s: unknown pin %s for cell %s", instName, pin, cellName)
		}
	}
	if _, err := c.AddGate(instName, cellName, ins, out); err != nil {
		return fmt.Errorf("verilog: %w", err)
	}
	return nil
}

// stripComments removes // line comments and /* */ block comments.
func stripComments(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); {
		switch {
		case strings.HasPrefix(s[i:], "//"):
			if j := strings.IndexByte(s[i:], '\n'); j >= 0 {
				i += j
			} else {
				i = len(s)
			}
		case strings.HasPrefix(s[i:], "/*"):
			if j := strings.Index(s[i+2:], "*/"); j >= 0 {
				i += j + 4
			} else {
				i = len(s)
			}
			sb.WriteByte(' ')
		default:
			sb.WriteByte(s[i])
			i++
		}
	}
	return sb.String()
}

// Write emits the circuit as gate-level Verilog. Coupling capacitors
// and parasitics are not representable in Verilog; write a SPEF file
// alongside (package spef) to preserve them.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	var ports []string
	pis := c.PIs()
	var pos []circuit.NetID
	for _, n := range c.Nets() {
		if n.IsPO {
			pos = append(pos, n.ID)
		}
	}
	for _, id := range pis {
		ports = append(ports, c.Net(id).Name)
	}
	for _, id := range pos {
		ports = append(ports, c.Net(id).Name)
	}
	fmt.Fprintf(bw, "module %s (%s);\n", c.Name, strings.Join(ports, ", "))
	if len(pis) > 0 {
		fmt.Fprintf(bw, "  input %s;\n", joinNets(c, pis))
	}
	if len(pos) > 0 {
		fmt.Fprintf(bw, "  output %s;\n", joinNets(c, pos))
	}
	var wires []circuit.NetID
	for _, n := range c.Nets() {
		if n.Driver != circuit.NoGate && !n.IsPO {
			wires = append(wires, n.ID)
		}
	}
	if len(wires) > 0 {
		fmt.Fprintf(bw, "  wire %s;\n", joinNets(c, wires))
	}
	for _, g := range c.Gates() {
		fmt.Fprintf(bw, "  %s %s (", g.Cell.Name, g.Name)
		for i, in := range g.Inputs {
			fmt.Fprintf(bw, ".%s(%s), ", InputPinNames[i], c.Net(in).Name)
		}
		fmt.Fprintf(bw, ".%s(%s));\n", OutputPinName, c.Net(g.Output).Name)
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// String renders the circuit as Verilog source. A render failure (not
// reachable with a strings.Builder sink, but kept total so corrupt
// circuits degrade instead of crashing) renders as a comment line.
func String(c *circuit.Circuit) string {
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		return fmt.Sprintf("// verilog: render failed: %v\n", err)
	}
	return sb.String()
}

func joinNets(c *circuit.Circuit, ids []circuit.NetID) string {
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = c.Net(id).Name
	}
	return strings.Join(names, ", ")
}
