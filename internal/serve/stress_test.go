package serve

import (
	"math"
	"sync"
	"testing"

	"topkagg/internal/circuit"
	"topkagg/internal/core"
	"topkagg/internal/gen"
	"topkagg/internal/noise"
	"topkagg/internal/obs"
)

// TestAnalyzerConcurrentStress hammers one obs-instrumented Analyzer
// from many goroutines with a mixed workload — top-k addition and
// elimination at circuit and per-net targets, what-if fixes, malformed
// queries, and whole KSweep batches racing the individual calls — and
// requires every response to be byte-identical to the one a cold
// serial Analyzer produced for the same query. Run it under -race: the
// test's value is as much the interleavings it provokes (concurrent
// first-touch of the fixpoint, racing preparations for the same key,
// metric publication from every worker) as the equality it asserts.
func TestAnalyzerConcurrentStress(t *testing.T) {
	c, err := gen.Build(gen.Spec{Name: "stress", Gates: 30, Couplings: 25, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{SlackFrac: 1, VerifyTop: 4}

	// Mixed workload: every op, several targets, an error case, and a
	// duplicate so cache hits race fresh preparations.
	nets := []circuit.NetID{WholeCircuit}
	for id := 0; id < c.NumNets() && len(nets) < 4; id++ {
		if c.Net(circuit.NetID(id)).Driver >= 0 {
			nets = append(nets, circuit.NetID(id))
		}
	}
	var queries []Query
	for _, n := range nets {
		queries = append(queries,
			Query{Op: Addition, Net: n, K: 3},
			Query{Op: Elimination, Net: n, K: 2},
			Query{Op: WhatIf, Net: n, Fix: []circuit.CouplingID{0, 1}},
		)
	}
	queries = append(queries,
		Query{Op: WhatIf, Net: WholeCircuit},                           // empty fix: base delay
		Query{Op: Addition, Net: circuit.NetID(c.NumNets() + 5), K: 2}, // bad net
		Query{Op: Addition, Net: WholeCircuit, K: 0},                   // bad k
		queries[0], // duplicate
	)

	// Expected responses come from a cold Analyzer driven serially,
	// one fresh analyzer per query so nothing is shared on this side.
	expected := make([]Response, len(queries))
	for i, q := range queries {
		expected[i] = NewAnalyzer(noise.NewModel(c), opt).Do(q)
	}

	// The analyzer under stress carries a live metric registry so the
	// observability hot path is exercised by every racing goroutine.
	reg := obs.New()
	a := NewAnalyzer(noise.NewModel(c).WithObs(reg), opt)

	goroutines, rounds := 12, 4
	if testing.Short() {
		goroutines, rounds = 6, 2
	}
	check := func(t *testing.T, i int, got Response) {
		t.Helper()
		want := expected[i]
		if (got.Err == nil) != (want.Err == nil) {
			t.Errorf("query %d (%s net %d): error mismatch: got %v, want %v",
				i, got.Query.Op, got.Query.Net, got.Err, want.Err)
			return
		}
		if want.Err != nil {
			return
		}
		if math.Float64bits(got.Delay) != math.Float64bits(want.Delay) {
			t.Errorf("query %d (%s net %d): delay %.17g != serial %.17g",
				i, got.Query.Op, got.Query.Net, got.Delay, want.Delay)
		}
		if !resultsEqual(got.Result, want.Result) {
			t.Errorf("query %d (%s net %d): concurrent result differs from cold serial run",
				i, got.Query.Op, got.Query.Net)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Each goroutine walks the workload in a different
				// rotation so distinct preparations race each other.
				for off := 0; off < len(queries); off++ {
					i := (off + g) % len(queries)
					check(t, i, a.Do(queries[i]))
				}
			}
		}(g)
	}
	// Two extra goroutines drive whole batches through the worker pool
	// while the individual calls are in flight.
	sweep := KSweep(Addition, nets, 3)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, resp := range a.RunBatch(sweep, 4) {
				if resp.Err != nil {
					t.Errorf("batch %s net %d: %v", resp.Query.Op, resp.Query.Net, resp.Err)
					continue
				}
				// Batch responses are addition queries at k=3; their
				// serial counterparts sit at stride 3 in the workload.
				var want *core.Result
				for i, q := range queries {
					if q.Op == Addition && q.Net == resp.Query.Net && q.K == 3 {
						want = expected[i].Result
						break
					}
				}
				if want == nil {
					t.Errorf("batch query for net %d has no serial counterpart", resp.Query.Net)
					continue
				}
				if !resultsEqual(resp.Result, want) {
					t.Errorf("batch %s net %d: result differs from cold serial run",
						resp.Query.Op, resp.Query.Net)
				}
			}
		}()
	}
	wg.Wait()

	// Cache accounting must add up exactly despite the races: one
	// fixpoint ever, every query counted, every top-k query either a
	// prep hit or a prep miss, at most one miss per (mode, target).
	// Invalid top-k queries fail argument validation before the cache
	// lookup, so only the valid ones count toward prep accounting.
	topk := 0
	for i, q := range queries {
		if (q.Op == Addition || q.Op == Elimination) && expected[i].Err == nil {
			topk++
		}
	}
	wantQueries := int64(goroutines*rounds*len(queries) + 2*len(sweep))
	st := a.Stats()
	if st.FixpointRuns != 1 {
		t.Errorf("FixpointRuns = %d, want exactly 1", st.FixpointRuns)
	}
	if st.Queries != wantQueries {
		t.Errorf("Queries = %d, want %d", st.Queries, wantQueries)
	}
	wantLookups := int64(goroutines*rounds*topk + 2*len(sweep))
	if st.PrepHits+st.PrepMisses != wantLookups {
		t.Errorf("PrepHits+PrepMisses = %d+%d, want %d", st.PrepHits, st.PrepMisses, wantLookups)
	}
	// At most one miss per distinct (mode, target): the duplicate
	// collapses onto its original and the invalid queries error before
	// reaching the cache, so the cap is 2*len(nets).
	if want := int64(2 * len(nets)); st.PrepMisses > want {
		t.Errorf("PrepMisses = %d, want <= %d distinct preparations", st.PrepMisses, want)
	}

	// The metric registry must agree with the Analyzer's own counters.
	snap := reg.Snapshot()
	if got := snap.Counters["serve.queries"]; got != wantQueries {
		t.Errorf("serve.queries = %d, want %d", got, wantQueries)
	}
	if got := snap.Counters["serve.fixpoint_runs"]; got != 1 {
		t.Errorf("serve.fixpoint_runs = %d, want 1", got)
	}
	if got := snap.Counters["serve.prep_hits"] + snap.Counters["serve.prep_misses"]; got != wantLookups {
		t.Errorf("serve.prep_hits+serve.prep_misses = %d, want %d", got, wantLookups)
	}
	if got := snap.Counters["serve.errors"]; got == 0 {
		t.Error("serve.errors = 0, want > 0 (workload includes invalid queries)")
	}
	if got := snap.Counters["serve.batches"]; got != 2 {
		t.Errorf("serve.batches = %d, want 2", got)
	}
	latency := int64(0)
	for _, name := range []string{"serve.query_ns/addition", "serve.query_ns/elimination", "serve.query_ns/whatif"} {
		latency += snap.Histograms[name].Count
	}
	if latency != wantQueries {
		t.Errorf("query_ns histogram counts sum to %d, want %d", latency, wantQueries)
	}
}
