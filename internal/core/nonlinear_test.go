package core

import (
	"math"
	"testing"

	"topkagg/internal/bruteforce"
	"topkagg/internal/noise"
)

// TestNonlinearDriverTopKMatchesBruteForce checks that the top-k
// machinery is model-agnostic: under the saturating-CSM driver
// (the paper's future-work extension) the proposed algorithm still
// agrees with brute force, since both consume the same pulse model.
func TestNonlinearDriverTopKMatchesBruteForce(t *testing.T) {
	m := model(t, threeCouplings)
	m.Driver = noise.SaturatingCSM{Alpha: 1.0}
	res, err := TopKAddition(m, 2, Exact())
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 2; k++ {
		bf, err := bruteforce.Addition(m, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.PerK[k-1].Delay-bf.Delay) > 1e-9 {
			t.Fatalf("k=%d: nonlinear proposed %g != brute force %g", k, res.PerK[k-1].Delay, bf.Delay)
		}
	}
}

// TestNonlinearDriverStrictlyWorse confirms the models actually
// differ on this circuit (the extension is not a no-op).
func TestNonlinearDriverStrictlyWorse(t *testing.T) {
	lin := model(t, threeCouplings)
	csm := model(t, threeCouplings)
	csm.Driver = noise.SaturatingCSM{Alpha: 1.5}
	rl, err := TopKAddition(lin, 1, Exact())
	if err != nil {
		t.Fatal(err)
	}
	rc, err := TopKAddition(csm, 1, Exact())
	if err != nil {
		t.Fatal(err)
	}
	if rc.Top().Delay <= rl.Top().Delay {
		t.Fatalf("saturating driver should worsen the top-1 delay: %g vs %g",
			rc.Top().Delay, rl.Top().Delay)
	}
}
