// Package circuit models a gate-level netlist with coupled parasitics:
// nets, library gates, ground capacitance, wire resistance, synthetic
// placement coordinates, and crosstalk coupling capacitors. It is the
// common substrate beneath the timing (sta), noise and top-k (core)
// engines.
package circuit

import (
	"fmt"
	"sort"
	"sync/atomic"

	"topkagg/internal/cell"
)

// NetID identifies a net within one Circuit.
type NetID int

// GateID identifies a gate within one Circuit.
type GateID int

// CouplingID identifies one coupling capacitor within one Circuit.
type CouplingID int

// NoGate marks a net without a driving gate (a primary input).
const NoGate GateID = -1

// Net is a single electrical node.
type Net struct {
	ID     NetID
	Name   string
	Driver GateID   // NoGate for primary inputs
	Loads  []GateID // gates with an input pin on this net
	Cgnd   float64  // grounded wire capacitance, fF
	Rwire  float64  // lumped wire resistance, kΩ
	X, Y   float64  // synthetic placement, µm
	IsPO   bool     // marked primary output
}

// Gate is an instance of a library cell.
type Gate struct {
	ID     GateID
	Name   string
	Cell   *cell.Cell
	Inputs []NetID
	Output NetID
}

// Coupling is one crosstalk coupling capacitor between two nets. Each
// Coupling is the unit of the top-k problem: an "aggressor-victim
// coupling" that can be considered (addition set) or fixed
// (elimination set).
type Coupling struct {
	ID   CouplingID
	A, B NetID
	Cc   float64 // coupling capacitance, fF
}

// Other returns the net on the far side of the coupling from n.
func (c *Coupling) Other(n NetID) NetID {
	if c.A == n {
		return c.B
	}
	return c.A
}

// Touches reports whether the coupling is incident on net n.
func (c *Coupling) Touches(n NetID) bool { return c.A == n || c.B == n }

// Circuit is a mutable gate-level netlist.
type Circuit struct {
	Name string
	Lib  *cell.Library

	nets      []*Net
	gates     []*Gate
	couplings []*Coupling
	netByName map[string]NetID
	coupleIdx map[NetID][]CouplingID

	// version counts structural mutations; cols caches the columnar
	// snapshot built at that version (see Columns).
	version atomic.Uint64
	cols    atomic.Pointer[Columns]

	// nameLookups counts netByName consultations. Net names are
	// interned to NetIDs at parse time; analyses must never consult
	// the name map, and the noise benchmarks assert the counter stays
	// flat across a fixpoint run.
	nameLookups atomic.Int64
}

// New creates an empty circuit bound to a cell library.
func New(name string, lib *cell.Library) *Circuit {
	return &Circuit{
		Name:      name,
		Lib:       lib,
		netByName: make(map[string]NetID),
		coupleIdx: make(map[NetID][]CouplingID),
	}
}

// EnsureNet returns the net with the given name, creating it (with
// default parasitics) if needed.
func (c *Circuit) EnsureNet(name string) NetID {
	c.nameLookups.Add(1)
	if id, ok := c.netByName[name]; ok {
		return id
	}
	id := NetID(len(c.nets))
	c.nets = append(c.nets, &Net{ID: id, Name: name, Driver: NoGate, Cgnd: 4.0, Rwire: 0.2})
	c.netByName[name] = id
	c.version.Add(1)
	return id
}

// NetByName looks up a net by name. This is a parse/wire-boundary
// operation: analyses address nets by NetID only (see NameLookups).
func (c *Circuit) NetByName(name string) (NetID, bool) {
	c.nameLookups.Add(1)
	id, ok := c.netByName[name]
	return id, ok
}

// NameLookups returns how many times the net name map has been
// consulted (EnsureNet, NetByName, MarkPO). Hot analysis loops are
// required to leave this counter unchanged; the fixpoint benchmarks
// enforce it.
func (c *Circuit) NameLookups() int64 { return c.nameLookups.Load() }

// Net returns the net with the given ID.
func (c *Circuit) Net(id NetID) *Net { return c.nets[id] }

// Gate returns the gate with the given ID.
func (c *Circuit) Gate(id GateID) *Gate { return c.gates[id] }

// Coupling returns the coupling with the given ID.
func (c *Circuit) Coupling(id CouplingID) *Coupling { return c.couplings[id] }

// NumNets returns the net count.
func (c *Circuit) NumNets() int { return len(c.nets) }

// NumGates returns the gate count.
func (c *Circuit) NumGates() int { return len(c.gates) }

// NumCouplings returns the coupling-capacitor count.
func (c *Circuit) NumCouplings() int { return len(c.couplings) }

// Nets returns all nets in ID order. The slice is shared; do not
// mutate its length.
func (c *Circuit) Nets() []*Net { return c.nets }

// Gates returns all gates in ID order.
func (c *Circuit) Gates() []*Gate { return c.gates }

// Couplings returns all couplings in ID order.
func (c *Circuit) Couplings() []*Coupling { return c.couplings }

// AddGate instantiates a library cell driving output from inputs.
// The output net must not already have a driver.
func (c *Circuit) AddGate(name, cellName string, inputs []string, output string) (*Gate, error) {
	cl, err := c.Lib.Cell(cellName)
	if err != nil {
		return nil, fmt.Errorf("circuit %s: gate %s: %w", c.Name, name, err)
	}
	if len(inputs) != cl.NumInputs {
		return nil, fmt.Errorf("circuit %s: gate %s: cell %s wants %d inputs, got %d",
			c.Name, name, cellName, cl.NumInputs, len(inputs))
	}
	out := c.EnsureNet(output)
	if c.nets[out].Driver != NoGate {
		return nil, fmt.Errorf("circuit %s: net %s already driven by %s",
			c.Name, output, c.gates[c.nets[out].Driver].Name)
	}
	g := &Gate{ID: GateID(len(c.gates)), Name: name, Cell: cl, Output: out}
	for _, in := range inputs {
		nid := c.EnsureNet(in)
		g.Inputs = append(g.Inputs, nid)
		c.nets[nid].Loads = append(c.nets[nid].Loads, g.ID)
	}
	c.gates = append(c.gates, g)
	c.nets[out].Driver = g.ID
	c.version.Add(1)
	return g, nil
}

// AddCoupling adds a coupling capacitor of cc fF between nets a and b.
func (c *Circuit) AddCoupling(a, b string, cc float64) (CouplingID, error) {
	if a == b {
		return 0, fmt.Errorf("circuit %s: self-coupling on net %s", c.Name, a)
	}
	if cc <= 0 {
		return 0, fmt.Errorf("circuit %s: non-positive coupling %g between %s and %s", c.Name, cc, a, b)
	}
	na, nb := c.EnsureNet(a), c.EnsureNet(b)
	id := CouplingID(len(c.couplings))
	c.couplings = append(c.couplings, &Coupling{ID: id, A: na, B: nb, Cc: cc})
	c.coupleIdx[na] = append(c.coupleIdx[na], id)
	c.coupleIdx[nb] = append(c.coupleIdx[nb], id)
	c.version.Add(1)
	return id, nil
}

// CouplingsOf returns the IDs of all couplings incident on net n.
func (c *Circuit) CouplingsOf(n NetID) []CouplingID { return c.coupleIdx[n] }

// MarkPO marks a net as a primary output.
func (c *Circuit) MarkPO(name string) error {
	c.nameLookups.Add(1)
	id, ok := c.netByName[name]
	if !ok {
		return fmt.Errorf("circuit %s: unknown output net %s", c.Name, name)
	}
	c.nets[id].IsPO = true
	c.version.Add(1)
	return nil
}

// PIs returns the primary inputs: nets without a driving gate, in ID
// order.
func (c *Circuit) PIs() []NetID {
	var out []NetID
	for _, n := range c.nets {
		if n.Driver == NoGate {
			out = append(out, n.ID)
		}
	}
	return out
}

// POs returns the primary outputs: nets marked IsPO, or — if none are
// marked — all nets with no gate loads.
func (c *Circuit) POs() []NetID {
	var out []NetID
	for _, n := range c.nets {
		if n.IsPO {
			out = append(out, n.ID)
		}
	}
	if len(out) > 0 {
		return out
	}
	for _, n := range c.nets {
		if len(n.Loads) == 0 && n.Driver != NoGate {
			out = append(out, n.ID)
		}
	}
	return out
}

// PinLoad returns the total gate input-pin capacitance on net n, fF.
func (c *Circuit) PinLoad(n NetID) float64 {
	var sum float64
	for _, gid := range c.nets[n].Loads {
		sum += c.gates[gid].Cell.Cin
	}
	return sum
}

// CouplingCap returns the total coupling capacitance incident on net
// n, fF.
func (c *Circuit) CouplingCap(n NetID) float64 {
	var sum float64
	for _, cid := range c.coupleIdx[n] {
		sum += c.couplings[cid].Cc
	}
	return sum
}

// LoadCap returns the total capacitive load seen by the driver of net
// n for baseline (noiseless) delay: ground cap + input pins + coupling
// caps treated as grounded.
func (c *Circuit) LoadCap(n NetID) float64 {
	return c.nets[n].Cgnd + c.PinLoad(n) + c.CouplingCap(n)
}

// DriverRes returns the Thevenin resistance driving net n: the driver
// cell's Rdrv plus the net's wire resistance. Primary inputs use a
// default pad resistance.
func (c *Circuit) DriverRes(n NetID) float64 {
	const padRes = 1.0 // kΩ, synthetic input pad driver
	net := c.nets[n]
	r := padRes
	if net.Driver != NoGate {
		r = c.gates[net.Driver].Cell.Rdrv
	}
	return r + net.Rwire
}

// TopoGates returns gate IDs in topological order (every gate after
// the drivers of all its inputs). It returns an error if the netlist
// has a combinational cycle.
func (c *Circuit) TopoGates() ([]GateID, error) {
	indeg := make([]int, len(c.gates))
	for _, g := range c.gates {
		for _, in := range g.Inputs {
			if c.nets[in].Driver != NoGate {
				indeg[g.ID]++
			}
		}
	}
	queue := make([]GateID, 0, len(c.gates))
	for _, g := range c.gates {
		if indeg[g.ID] == 0 {
			queue = append(queue, g.ID)
		}
	}
	order := make([]GateID, 0, len(c.gates))
	for len(queue) > 0 {
		gid := queue[0]
		queue = queue[1:]
		order = append(order, gid)
		for _, lid := range c.nets[c.gates[gid].Output].Loads {
			indeg[lid]--
			if indeg[lid] == 0 {
				queue = append(queue, lid)
			}
		}
	}
	if len(order) != len(c.gates) {
		return nil, fmt.Errorf("circuit %s: combinational cycle (%d of %d gates ordered)",
			c.Name, len(order), len(c.gates))
	}
	return order, nil
}

// TopoNets returns net IDs in topological order: primary inputs first,
// then gate outputs in gate topological order.
func (c *Circuit) TopoNets() ([]NetID, error) {
	order := make([]NetID, 0, len(c.nets))
	order = append(order, c.PIs()...)
	gates, err := c.TopoGates()
	if err != nil {
		return nil, err
	}
	for _, gid := range gates {
		order = append(order, c.gates[gid].Output)
	}
	return order, nil
}

// FaninCone returns the set of nets in the transitive fanin of net n,
// including n itself.
func (c *Circuit) FaninCone(n NetID) map[NetID]bool {
	seen := map[NetID]bool{n: true}
	stack := []NetID{n}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		d := c.nets[cur].Driver
		if d == NoGate {
			continue
		}
		for _, in := range c.gates[d].Inputs {
			if !seen[in] {
				seen[in] = true
				stack = append(stack, in)
			}
		}
	}
	return seen
}

// Stats summarizes circuit size the way the paper's Table 2 does.
type Stats struct {
	Gates     int
	Nets      int
	Couplings int
}

// Stats returns the circuit's size statistics. Following the paper's
// convention, Nets counts gate-driven nets (internal + output nets),
// not primary inputs.
func (c *Circuit) Stats() Stats {
	return Stats{
		Gates:     len(c.gates),
		Nets:      len(c.nets) - len(c.PIs()),
		Couplings: len(c.couplings),
	}
}

// Validate checks structural invariants: cells resolve, pin counts
// match, coupling endpoints exist, and the gate graph is acyclic.
func (c *Circuit) Validate() error {
	for _, g := range c.gates {
		if g.Cell == nil {
			return fmt.Errorf("circuit %s: gate %s has no cell", c.Name, g.Name)
		}
		if len(g.Inputs) != g.Cell.NumInputs {
			return fmt.Errorf("circuit %s: gate %s: %d inputs for cell %s (wants %d)",
				c.Name, g.Name, len(g.Inputs), g.Cell.Name, g.Cell.NumInputs)
		}
		for _, in := range g.Inputs {
			if int(in) < 0 || int(in) >= len(c.nets) {
				return fmt.Errorf("circuit %s: gate %s references missing net %d", c.Name, g.Name, in)
			}
		}
	}
	for _, n := range c.nets {
		if n.Cgnd < 0 || n.Rwire < 0 {
			return fmt.Errorf("circuit %s: net %s has negative parasitics", c.Name, n.Name)
		}
	}
	for _, cp := range c.couplings {
		if cp.A == cp.B {
			return fmt.Errorf("circuit %s: coupling %d is a self-loop", c.Name, cp.ID)
		}
	}
	if _, err := c.TopoGates(); err != nil {
		return err
	}
	return nil
}

// SortedNetNames returns all net names sorted; useful for
// deterministic output.
func (c *Circuit) SortedNetNames() []string {
	out := make([]string, 0, len(c.netByName))
	for n := range c.netByName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
