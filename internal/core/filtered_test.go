package core

import (
	"math"
	"testing"

	"topkagg/internal/filter"
	"topkagg/internal/gen"
	"topkagg/internal/noise"
)

// TestActiveMaskRestrictsEnumeration checks the filter→enumerate flow:
// running top-k over only the filter-surviving couplings matches the
// unfiltered run's delays (exact timing filter only).
func TestActiveMaskRestrictsEnumeration(t *testing.T) {
	c, err := gen.BuildPaper("i1")
	if err != nil {
		t.Fatal(err)
	}
	m := noise.NewModel(c)
	fr, err := filter.FalseAggressors(m, filter.Options{PeakFrac: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.False) == 0 {
		t.Skip("no removable couplings on this benchmark")
	}
	plain, err := TopKAddition(m, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := TopKAddition(m, 5, Options{Active: fr.Active})
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered.PerK) != len(plain.PerK) {
		t.Fatalf("filtered run truncated: %d vs %d", len(filtered.PerK), len(plain.PerK))
	}
	for i := range plain.PerK {
		if d := math.Abs(plain.PerK[i].Delay - filtered.PerK[i].Delay); d > 1e-6 {
			t.Fatalf("k=%d: filtered delay differs by %g", i+1, d)
		}
	}
	// The filtered enumeration must not select a false coupling.
	for _, s := range filtered.PerK {
		for _, id := range s.IDs {
			if !fr.Active.Active(id) {
				t.Fatalf("filtered run selected false coupling %d", id)
			}
		}
	}
}

func TestActiveMaskEmptySelectsNothing(t *testing.T) {
	c, err := gen.BuildPaper("i1")
	if err != nil {
		t.Fatal(err)
	}
	m := noise.NewModel(c)
	res, err := TopKAddition(m, 3, Options{Active: noise.NewMask(c)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerK) != 0 {
		t.Fatalf("empty active mask must yield no sets: %+v", res.PerK)
	}
	if math.Abs(res.AllDelay-res.BaseDelay) > 1e-9 {
		t.Fatal("with nothing active, noisy == noiseless")
	}
}
