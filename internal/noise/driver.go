package noise

import "math"

// DriverModel abstracts the victim holding-driver model used when
// computing coupled noise-pulse peaks. The paper's framework (and this
// library's default) is the linear Thevenin model; the paper names
// "extension to non-linear driver models" as future work, which
// SaturatingCSM provides in first-order form.
type DriverModel interface {
	// EffectiveRes returns the holding resistance presented by the
	// victim driver when the noise glitch has amplitude v (volts) on a
	// supply of vdd, given the cell's small-signal resistance rdrv.
	EffectiveRes(rdrv, v, vdd float64) float64
	// Name identifies the model in reports.
	Name() string
}

// LinearThevenin is the classic linear-resistor holding driver: the
// effective resistance is amplitude-independent.
type LinearThevenin struct{}

// EffectiveRes returns rdrv regardless of noise amplitude.
func (LinearThevenin) EffectiveRes(rdrv, v, vdd float64) float64 { return rdrv }

// Name implements DriverModel.
func (LinearThevenin) Name() string { return "linear-thevenin" }

// SaturatingCSM is a first-order current-source (CSM-style) holding
// driver: for small glitches the transistor behaves as a linear
// resistor, but its restoring current saturates as the glitch grows,
// so the effective resistance rises with amplitude:
//
//	R_eff(v) = rdrv · (1 + Alpha · v / vdd)
//
// Alpha = 0 degenerates to the linear model; realistic holding
// transistors land around Alpha ≈ 0.5-1.5. Larger Alpha means the
// linear framework underestimates large-amplitude noise, which is
// exactly the regime where sign-off tools switch to current-source
// models (paper Section 2, [9]).
type SaturatingCSM struct {
	Alpha float64
}

// EffectiveRes implements DriverModel.
func (m SaturatingCSM) EffectiveRes(rdrv, v, vdd float64) float64 {
	if v < 0 {
		v = 0
	}
	return rdrv * (1 + m.Alpha*v/vdd)
}

// Name implements DriverModel.
func (m SaturatingCSM) Name() string { return "saturating-csm" }

// driver returns the model's configured driver model, defaulting to
// the linear Thevenin driver of the paper's framework.
func (m *Model) driver() DriverModel {
	if m.Driver == nil {
		return LinearThevenin{}
	}
	return m.Driver
}

// solvePeak computes the self-consistent pulse peak for a holding
// driver whose resistance depends on the peak itself: the linear-RC
// peak expression is iterated to a fixed point. For the linear model
// this converges in one step; for moderate saturation it converges
// geometrically (the map is a contraction for Alpha·v/vdd < 1).
func (m *Model) solvePeak(rdrv, cc, cv, tr float64) (vp, rEff float64) {
	dm := m.driver()
	vp = 0.0
	for i := 0; i < 32; i++ {
		rEff = dm.EffectiveRes(rdrv, vp, m.Vdd)
		tau := rEff * (cc + cv) * 1e-3 // kΩ·fF → ns
		next := m.Vdd * (rEff * cc * 1e-3 / tr) * (1 - math.Exp(-tr/tau))
		if math.Abs(next-vp) < 1e-9 {
			vp = next
			break
		}
		vp = next
	}
	if vp > m.Vdd {
		vp = m.Vdd
	}
	return vp, rEff
}
