package exp

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"topkagg/internal/gen"
)

func TestTable1Quick(t *testing.T) {
	cfg := Quick()
	cfg.BFMaxK = 2
	cfg.BFBudget = 30 * time.Second
	tab, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(tab.Rows))
	}
	// On this tiny circuit brute force must finish and agree with the
	// proposed algorithm at k=1 and k=2.
	for _, row := range tab.Rows {
		bf, prop := row[1], row[4]
		if bf == "timeout" {
			t.Fatalf("quick Table 1 brute force timed out: %v", row)
		}
		if bf != prop {
			t.Fatalf("brute force %s != proposed %s in row %v", bf, prop, row)
		}
	}
	text := tab.String()
	if !strings.Contains(text, "Table 1") || !strings.Contains(text, "bf runtime") {
		t.Fatalf("rendering missing pieces:\n%s", text)
	}
}

func TestTable2AdditionQuick(t *testing.T) {
	cfg := Quick()
	cfg.Circuits = []string{"i1"}
	cfg.DelayKs = []int{2, 5}
	cfg.RuntimeKs = []int{1, 5}
	tab, err := Table2(cfg, Addition)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(tab.Rows))
	}
	row := tab.Rows[0]
	// Layout: ckt gates couplings all k=2 k=5 noagg t1 t5
	if row[0] != "i1" || row[1] != "59" || row[2] != "232" {
		t.Fatalf("row identity wrong: %v", row)
	}
	all, k2, k5, no := atof(t, row[3]), atof(t, row[4]), atof(t, row[5]), atof(t, row[6])
	if !(no <= k2+1e-9 && k2 <= k5+1e-9 && k5 <= all+1e-9) {
		t.Fatalf("addition delays out of order: no=%g k2=%g k5=%g all=%g", no, k2, k5, all)
	}
}

func TestTable2EliminationQuick(t *testing.T) {
	cfg := Quick()
	cfg.Circuits = []string{"i1"}
	cfg.DelayKs = []int{2, 5}
	cfg.RuntimeKs = []int{1}
	tab, err := Table2(cfg, Elimination)
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0]
	all, k2, k5, base := atof(t, row[3]), atof(t, row[4]), atof(t, row[5]), atof(t, row[6])
	if !(base <= k5+1e-9 && k5 <= k2+1e-9 && k2 <= all+1e-9) {
		t.Fatalf("elimination delays out of order: base=%g k5=%g k2=%g all=%g", base, k5, k2, all)
	}
}

func TestFig10Quick(t *testing.T) {
	cfg := Quick()
	cfg.Fig10Circuits = []string{"i1"}
	cfg.Fig10K = 6
	series, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("want 2 series (addition+elimination), got %d", len(series))
	}
	for _, s := range series {
		if len(s.X) != 6 {
			t.Fatalf("series %s has %d points", s.Name, len(s.X))
		}
	}
	add, del := series[0], series[1]
	// The curves converge toward each other: addition rises,
	// elimination falls, elimination stays above addition start etc.
	if add.Y[len(add.Y)-1] < add.Y[0]-1e-9 {
		t.Fatalf("addition curve must not fall: %v", add.Y)
	}
	if del.Y[len(del.Y)-1] > del.Y[0]+1e-9 {
		t.Fatalf("elimination curve must not rise: %v", del.Y)
	}
	for i := range add.Y {
		if add.Y[i] > del.Y[i]+1e-6 {
			t.Fatalf("addition(k) must stay below elimination(k): k=%d %g vs %g", i+1, add.Y[i], del.Y[i])
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	if len(cfg.circuits()) != 10 {
		t.Fatal("default circuits must be the ten paper benchmarks")
	}
	if got := cfg.delayKs(); len(got) != 6 || got[0] != 5 || got[5] != 50 {
		t.Fatalf("default delay ks = %v", got)
	}
	if got := cfg.runtimeKs(); len(got) != 8 {
		t.Fatalf("default runtime ks = %v", got)
	}
	if cfg.bfMaxK() != 4 || cfg.bfBudget() != DefaultBFBudget {
		t.Fatal("default brute-force controls wrong")
	}
	if cfg.fig10K() != 75 || len(cfg.fig10Circuits()) != 2 {
		t.Fatal("default fig10 controls wrong")
	}
	if cfg.table1Spec().Gates != 30 {
		t.Fatalf("default table1 spec = %+v", cfg.table1Spec())
	}
}

func TestDefaultOptScaling(t *testing.T) {
	small := DefaultOpt(100)
	big := DefaultOpt(3000)
	if small.MaxListWidth != 0 {
		t.Fatal("small circuits use default width")
	}
	if big.MaxListWidth >= 16 || big.SlackFrac >= 0.2 {
		t.Fatalf("big circuits must tighten pruning: %+v", big)
	}
	if !small.NoRescore || !big.NoRescore {
		t.Fatal("harness options must skip core rescoring (exp rescsores itself)")
	}
}

func TestModeString(t *testing.T) {
	if Addition.String() != "addition" || Elimination.String() != "elimination" {
		t.Fatal("mode strings wrong")
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := build("zzz"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if _, err := gen.BuildPaper("i2"); err != nil {
		t.Fatal(err)
	}
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFilterStatsQuick(t *testing.T) {
	cfg := Quick()
	cfg.Circuits = []string{"i1"}
	tab, err := FilterStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || tab.Rows[0][0] != "i1" {
		t.Fatalf("rows = %v", tab.Rows)
	}
	if tab.Rows[0][1] != "232" {
		t.Fatalf("coupling count wrong: %v", tab.Rows[0])
	}
}

func TestCoverageQuick(t *testing.T) {
	cfg := Quick()
	cfg.Circuits = []string{"i1"}
	tab, err := Coverage(cfg, 0.2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// q50 <= q95 <= q99 <= all.
	q50, q95 := atof(t, tab.Rows[0][3]), atof(t, tab.Rows[0][4])
	q99, all := atof(t, tab.Rows[0][5]), atof(t, tab.Rows[0][9])
	if !(q50 <= q95 && q95 <= q99 && q99 <= all) {
		t.Fatalf("quantiles out of order: %v", tab.Rows[0])
	}
}

func TestSeedRobustness(t *testing.T) {
	tab, err := SeedRobustness(gen.Spec{Name: "s", Gates: 25, Couplings: 40}, []int64{1, 2, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		base, all := atof(t, row[1]), atof(t, row[2])
		add, del := atof(t, row[4]), atof(t, row[5])
		if !(base <= add && add <= all) {
			t.Fatalf("addition out of bracket: %v", row)
		}
		if !(base <= del && del <= all) {
			t.Fatalf("elimination out of bracket: %v", row)
		}
	}
}

func TestTable2RuntimesNondecreasing(t *testing.T) {
	cfg := Quick()
	cfg.Circuits = []string{"i1"}
	cfg.DelayKs = []int{2}
	cfg.RuntimeKs = []int{1, 2, 5, 10}
	tab, err := Table2(cfg, Addition)
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0]
	// Runtime columns are the last four cells.
	start := len(row) - 4
	prev := -1.0
	for _, cell := range row[start:] {
		v := atof(t, cell)
		if v < prev {
			t.Fatalf("runtime columns must be nondecreasing in k: %v", row[start:])
		}
		prev = v
	}
}

func TestExperimentsRejectUnknownCircuit(t *testing.T) {
	cfg := Quick()
	cfg.Circuits = []string{"bogus"}
	if _, err := Table2(cfg, Addition); err == nil {
		t.Fatal("unknown circuit must error")
	}
	if _, err := FilterStats(cfg); err == nil {
		t.Fatal("unknown circuit must error in filterstats")
	}
	if _, err := Coverage(cfg, 0.2, 5); err == nil {
		t.Fatal("unknown circuit must error in coverage")
	}
	cfg.Fig10Circuits = []string{"bogus"}
	if _, err := Fig10(cfg); err == nil {
		t.Fatal("unknown circuit must error in fig10")
	}
}
