// Package liberty reads and writes a practical subset of the Liberty
// (.lib) standard-cell library format, mapped onto this repository's
// linear characterization.
//
// The subset uses Liberty's classic generic-CMOS linear delay model:
//
//	library (synth013) {
//	  time_unit : "1ns";
//	  capacitive_load_unit (1, ff);
//	  nom_voltage : 1.2;
//	  cell (INV_X1) {
//	    pin (A) { direction : input; capacitance : 2.0; }
//	    pin (Y) {
//	      direction : output;
//	      drive_resistance : 6.0;
//	      timing () {
//	        related_pin : "A";
//	        intrinsic_rise : 0.018;
//	        rise_resistance : 0.0035;
//	        slope_rise : 0.030;
//	        transition_resistance : 0.005;
//	      }
//	    }
//	  }
//	}
//
// Attribute mapping (see cell.Cell): intrinsic_rise → D0,
// rise_resistance → KD, slope_rise → S0, and the two extensions this
// library needs for noise analysis — transition_resistance → KS
// (output slew per load) and drive_resistance → Rdrv (the holding
// resistance of the output stage). Input pin capacitance → Cin.
// Units must be ns / fF (/ implied kΩ), matching the repository's
// conventions.
package liberty

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"topkagg/internal/cell"
)

// Parse reads a Liberty-subset library.
func Parse(r io.Reader) (*cell.Library, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("liberty: read: %w", err)
	}
	toks, err := tokenize(string(src))
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	g, err := p.group()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("liberty: trailing content after library group")
	}
	if g.name != "library" {
		return nil, fmt.Errorf("liberty: top-level group is %q, want library", g.name)
	}
	return buildLibrary(g)
}

// ParseString is Parse over in-memory source.
func ParseString(s string) (*cell.Library, error) {
	return Parse(strings.NewReader(s))
}

// group is one parsed Liberty group: name(args) { attrs... groups... }.
type group struct {
	name   string
	args   []string
	attrs  map[string]string
	groups []*group
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(t string) error {
	if got := p.next(); got != t {
		return fmt.Errorf("liberty: expected %q, got %q", t, got)
	}
	return nil
}

// group parses NAME ( args ) { body }.
func (p *parser) group() (*group, error) {
	g := &group{attrs: map[string]string{}}
	g.name = p.next()
	if g.name == "" {
		return nil, fmt.Errorf("liberty: unexpected end of input")
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for p.peek() != ")" && p.peek() != "" {
		t := p.next()
		if t != "," {
			g.args = append(g.args, t)
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case "":
			return nil, fmt.Errorf("liberty: unterminated group %s", g.name)
		case "}":
			p.next()
			return g, nil
		}
		name := p.next()
		switch p.peek() {
		case ":": // simple attribute
			p.next()
			var vals []string
			for p.peek() != ";" && p.peek() != "" {
				vals = append(vals, p.next())
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			g.attrs[name] = strings.Join(vals, " ")
		case "(": // complex attribute or nested group
			// Look ahead past the closing paren: '{' means group.
			save := p.pos
			depth := 0
			for p.pos < len(p.toks) {
				switch p.toks[p.pos] {
				case "(":
					depth++
				case ")":
					depth--
				}
				p.pos++
				if depth == 0 {
					break
				}
			}
			isGroup := p.peek() == "{"
			p.pos = save
			if isGroup {
				p.pos-- // back to the group name
				sub, err := p.group()
				if err != nil {
					return nil, err
				}
				g.groups = append(g.groups, sub)
			} else {
				// complex attribute: name(args);
				p.next() // "("
				var vals []string
				for p.peek() != ")" && p.peek() != "" {
					t := p.next()
					if t != "," {
						vals = append(vals, t)
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				if p.peek() == ";" {
					p.next()
				}
				g.attrs[name] = strings.Join(vals, " ")
			}
		default:
			return nil, fmt.Errorf("liberty: unexpected token %q after %q", p.peek(), name)
		}
	}
}

// tokenize splits source into identifiers/numbers/strings and the
// punctuation ( ) { } : ; ,  — comments removed, quotes stripped.
func tokenize(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\\':
			i++
		case strings.HasPrefix(s[i:], "/*"):
			j := strings.Index(s[i+2:], "*/")
			if j < 0 {
				return nil, fmt.Errorf("liberty: unterminated comment")
			}
			i += j + 4
		case strings.HasPrefix(s[i:], "//"):
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case c == '"':
			j := strings.IndexByte(s[i+1:], '"')
			if j < 0 {
				return nil, fmt.Errorf("liberty: unterminated string")
			}
			toks = append(toks, s[i+1:i+1+j])
			i += j + 2
		case strings.ContainsRune("(){}:;,", rune(c)):
			toks = append(toks, string(c))
			i++
		default:
			j := i
			for j < len(s) && !strings.ContainsRune("(){}:;, \t\n\r\"\\", rune(s[j])) &&
				!strings.HasPrefix(s[j:], "/*") && !strings.HasPrefix(s[j:], "//") {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks, nil
}

// buildLibrary converts the parsed library group to a cell.Library.
func buildLibrary(lib *group) (*cell.Library, error) {
	if len(lib.args) != 1 {
		return nil, fmt.Errorf("liberty: library wants one name, got %v", lib.args)
	}
	vdd := 1.2
	if v, ok := lib.attrs["nom_voltage"]; ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("liberty: nom_voltage %q: %v", v, err)
		}
		vdd = f
	}
	if tu, ok := lib.attrs["time_unit"]; ok && tu != "1ns" {
		return nil, fmt.Errorf("liberty: unsupported time_unit %q (want 1ns)", tu)
	}
	if cu, ok := lib.attrs["capacitive_load_unit"]; ok && !strings.EqualFold(cu, "1 ff") {
		return nil, fmt.Errorf("liberty: unsupported capacitive_load_unit %q (want 1 ff)", cu)
	}
	out := cell.NewLibrary(lib.args[0], vdd)
	for _, g := range lib.groups {
		if g.name != "cell" {
			continue
		}
		c, err := buildCell(g)
		if err != nil {
			return nil, err
		}
		if err := out.Add(c); err != nil {
			return nil, fmt.Errorf("liberty: %w", err)
		}
	}
	if out.Len() == 0 {
		return nil, fmt.Errorf("liberty: library %s has no cells", lib.args[0])
	}
	return out, nil
}

func buildCell(g *group) (*cell.Cell, error) {
	if len(g.args) != 1 {
		return nil, fmt.Errorf("liberty: cell wants one name, got %v", g.args)
	}
	c := &cell.Cell{Name: g.args[0]}
	c.Kind = cell.Kind(strings.SplitN(c.Name, "_", 2)[0])
	attr := func(m map[string]string, key string, dst *float64) error {
		v, ok := m[key]
		if !ok {
			return nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("liberty: cell %s: %s = %q: %v", c.Name, key, v, err)
		}
		*dst = f
		return nil
	}
	var cins []float64
	for _, pg := range g.groups {
		if pg.name != "pin" {
			continue
		}
		switch pg.attrs["direction"] {
		case "input":
			var cin float64
			if err := attr(pg.attrs, "capacitance", &cin); err != nil {
				return nil, err
			}
			cins = append(cins, cin)
		case "output":
			if err := attr(pg.attrs, "drive_resistance", &c.Rdrv); err != nil {
				return nil, err
			}
			for _, tg := range pg.groups {
				if tg.name != "timing" {
					continue
				}
				if err := attr(tg.attrs, "intrinsic_rise", &c.D0); err != nil {
					return nil, err
				}
				if err := attr(tg.attrs, "rise_resistance", &c.KD); err != nil {
					return nil, err
				}
				if err := attr(tg.attrs, "slope_rise", &c.S0); err != nil {
					return nil, err
				}
				if err := attr(tg.attrs, "transition_resistance", &c.KS); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("liberty: cell %s: pin %v has no direction", c.Name, pg.args)
		}
	}
	c.NumInputs = len(cins)
	if len(cins) > 0 {
		// The repository's model uses one input capacitance per cell;
		// Liberty allows per-pin values — average them.
		sum := 0.0
		for _, x := range cins {
			sum += x
		}
		c.Cin = sum / float64(len(cins))
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("liberty: %w", err)
	}
	return c, nil
}

// Write emits a cell.Library as Liberty-subset text.
func Write(w io.Writer, lib *cell.Library) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "library (%s) {\n", lib.Name)
	sb.WriteString("  time_unit : \"1ns\";\n")
	sb.WriteString("  capacitive_load_unit (1, ff);\n")
	fmt.Fprintf(&sb, "  nom_voltage : %g;\n", lib.Vdd)
	names := lib.Names()
	sort.Strings(names)
	for _, name := range names {
		c, err := lib.Cell(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(&sb, "  cell (%s) {\n", c.Name)
		for i := 0; i < c.NumInputs; i++ {
			pin := string(rune('A' + i))
			fmt.Fprintf(&sb, "    pin (%s) { direction : input; capacitance : %g; }\n", pin, c.Cin)
		}
		fmt.Fprintf(&sb, "    pin (Y) {\n")
		sb.WriteString("      direction : output;\n")
		fmt.Fprintf(&sb, "      drive_resistance : %g;\n", c.Rdrv)
		sb.WriteString("      timing () {\n")
		sb.WriteString("        related_pin : \"A\";\n")
		fmt.Fprintf(&sb, "        intrinsic_rise : %g;\n", c.D0)
		fmt.Fprintf(&sb, "        rise_resistance : %g;\n", c.KD)
		fmt.Fprintf(&sb, "        slope_rise : %g;\n", c.S0)
		fmt.Fprintf(&sb, "        transition_resistance : %g;\n", c.KS)
		sb.WriteString("      }\n")
		sb.WriteString("    }\n")
		sb.WriteString("  }\n")
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the library as Liberty text. A render failure (not
// reachable with a strings.Builder sink, but kept total so corrupt
// libraries degrade instead of crashing) renders as a Liberty comment.
func String(lib *cell.Library) string {
	var sb strings.Builder
	if err := Write(&sb, lib); err != nil {
		return fmt.Sprintf("/* liberty: render failed: %v */\n", err)
	}
	return sb.String()
}
