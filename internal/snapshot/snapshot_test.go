package snapshot

import (
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"topkagg/internal/faultinject"
	"topkagg/internal/obs"
)

// encodeSample writes a small two-section container exercising every
// primitive.
func encodeSample(e *Encoder) error {
	e.Begin()
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xDEADBEEF)
	e.U64(1 << 40)
	e.I64(-12345)
	e.Int(42)
	e.F64(math.Pi)
	e.String("hello, snapshot")
	e.Blob([]byte{1, 2, 3})
	e.F64s([]float64{1.5, -2.5, 0})
	e.Ints([]int{-1, 0, 7})
	e.Bools([]bool{true, false, true})
	if err := e.Flush(1); err != nil {
		return err
	}
	e.Begin()
	e.String("second section")
	if err := e.Flush(2); err != nil {
		return err
	}
	e.Begin()
	return e.Flush(0xFF)
}

func sampleBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	e, err := NewEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := encodeSample(e); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	d, err := NewDecoder(bytes.NewReader(sampleBytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	kind, err := d.Next()
	if err != nil || kind != 1 {
		t.Fatalf("Next = %d, %v; want 1, nil", kind, err)
	}
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip broken")
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<40 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -12345 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Int(); got != 42 {
		t.Errorf("Int = %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := d.String(); got != "hello, snapshot" {
		t.Errorf("String = %q", got)
	}
	if got := d.Blob(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Blob = %v", got)
	}
	if got := d.F64s(); len(got) != 3 || got[0] != 1.5 || got[1] != -2.5 || got[2] != 0 {
		t.Errorf("F64s = %v", got)
	}
	if got := d.Ints(); len(got) != 3 || got[0] != -1 || got[2] != 7 {
		t.Errorf("Ints = %v", got)
	}
	if got := d.Bools(); len(got) != 3 || !got[0] || got[1] || !got[2] {
		t.Errorf("Bools = %v", got)
	}
	if !d.AtEnd() || d.Err() != nil {
		t.Fatalf("after section 1: AtEnd=%v Err=%v", d.AtEnd(), d.Err())
	}
	kind, err = d.Next()
	if err != nil || kind != 2 {
		t.Fatalf("Next = %d, %v; want 2, nil", kind, err)
	}
	if got := d.String(); got != "second section" {
		t.Errorf("String = %q", got)
	}
	kind, err = d.Next()
	if err != nil || kind != 0xFF {
		t.Fatalf("Next = %d, %v; want end section", kind, err)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("Next after end = %v, want io.EOF", err)
	}
}

// TestFiniteF64Rejected pins the NaN/Inf validation decoders rely on.
func TestFiniteF64Rejected(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		var buf bytes.Buffer
		e, _ := NewEncoder(&buf)
		e.Begin()
		e.F64(v)
		if err := e.Flush(1); err != nil {
			t.Fatal(err)
		}
		d, _ := NewDecoder(bytes.NewReader(buf.Bytes()))
		if _, err := d.Next(); err != nil {
			t.Fatal(err)
		}
		d.FiniteF64()
		if d.Err() == nil {
			t.Errorf("FiniteF64 accepted %v", v)
		}
	}
}

// TestBitFlipsDetected flips every byte of a valid container in turn;
// the CRC (or the header/frame validation) must reject every mutant —
// and none may panic.
func TestBitFlipsDetected(t *testing.T) {
	orig := sampleBytes(t)
	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0x40
		if err := drain(mut); err == nil {
			t.Fatalf("flip at byte %d of %d went undetected", i, len(orig))
		}
	}
}

// TestTruncationDetected cuts the container at every length; decoding
// must end in an error or in a stream whose explicit end section never
// arrived (io.EOF early) — never a clean full read, never a panic.
func TestTruncationDetected(t *testing.T) {
	orig := sampleBytes(t)
	for n := 0; n < len(orig); n++ {
		if err := drain(orig[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", n, len(orig))
		}
	}
}

// drain decodes a container to completion the way restore layers do:
// sections until the 0xFF terminator, each read in full. It returns
// nil only for a well-formed container.
func drain(data []byte) error {
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		return err
	}
	for {
		kind, err := d.Next()
		if err == io.EOF {
			return &FormatError{Msg: "no end section"}
		}
		if err != nil {
			return err
		}
		if kind == 0xFF {
			if !d.AtEnd() {
				return &FormatError{Msg: "payload in end section"}
			}
			return nil
		}
		// Consume the payload as strings-or-bytes; primitive mix doesn't
		// matter for frame integrity, only that Remaining drains.
		for !d.AtEnd() && d.Err() == nil {
			d.U8()
		}
		if err := d.Err(); err != nil {
			return err
		}
	}
}

func TestFormatErrorIsCorrupt(t *testing.T) {
	err := error(&FormatError{Offset: 9, Msg: "boom"})
	if !IsCorrupt(err) {
		t.Fatal("FormatError must satisfy IsCorrupt")
	}
	if IsCorrupt(errors.New("plain")) {
		t.Fatal("plain errors are not corruption")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.snap")
	n, err := WriteFileAtomic(path, encodeSample)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != n {
		t.Fatalf("reported %d bytes, file has %d", n, len(data))
	}
	if err := drain(data); err != nil {
		t.Fatalf("written container does not decode: %v", err)
	}
	// Failed writes must leave the previous file byte-identical and no
	// temp litter.
	if _, err := WriteFileAtomic(path, func(e *Encoder) error {
		e.Begin()
		e.String("partial state that must never be published")
		if err := e.Flush(1); err != nil {
			return err
		}
		return errors.New("injected encode failure")
	}); err == nil {
		t.Fatal("encode failure must fail the write")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, after) {
		t.Fatal("failed write disturbed the published file")
	}
	assertNoTemps(t, dir)
}

// TestWriteFileAtomicInjectedFault drives the snapshot.write probe: an
// injected error at the second section must abort the encode, keep the
// previous snapshot intact, and remove the temp file.
func TestWriteFileAtomicInjectedFault(t *testing.T) {
	if !faultinject.Enabled() {
		t.Skip("probes compiled out")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "m.snap")
	if _, err := WriteFileAtomic(path, encodeSample); err != nil {
		t.Fatal(err)
	}
	before, _ := os.ReadFile(path)

	boom := errors.New("torn write")
	faultinject.Arm(faultinject.NewPlan(1).Add(faultinject.SiteSnapshotWrite,
		faultinject.Rule{On: 2, Err: boom}))
	defer faultinject.Disarm()
	_, err := WriteFileAtomic(path, encodeSample)
	if !errors.Is(err, boom) {
		t.Fatalf("want injected error, got %v", err)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(before, after) {
		t.Fatal("torn write disturbed the published file")
	}
	assertNoTemps(t, dir)
}

func assertNoTemps(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	q1, err := Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("original file still present after quarantine")
	}
	data, err := os.ReadFile(q1)
	if err != nil || string(data) != "garbage" {
		t.Fatalf("evidence not preserved: %q, %v", data, err)
	}
	// Repeated corruption of the same name must not overwrite evidence.
	if err := os.WriteFile(path, []byte("garbage2"), 0o644); err != nil {
		t.Fatal(err)
	}
	q2, err := Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if q1 == q2 {
		t.Fatal("second quarantine overwrote the first")
	}
}

func TestStoreSaveLoadRemove(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"beta", "alpha"} {
		if _, err := st.Save(name, encodeSample); err != nil {
			t.Fatal(err)
		}
	}
	// Leave an orphan temp (simulated kill -9 mid-write) for the sweep.
	orphan := filepath.Join(dir, tmpPrefix+"alpha.snap.123")
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	outs := st2.Load(func(name string, dec *Decoder) error {
		got = append(got, name)
		for {
			kind, err := dec.Next()
			if err != nil {
				return err
			}
			if kind == 0xFF {
				return nil
			}
			for !dec.AtEnd() && dec.Err() == nil {
				dec.U8()
			}
			if err := dec.Err(); err != nil {
				return err
			}
		}
	})
	if len(outs) != 2 || !outs[0].Restored || !outs[1].Restored {
		t.Fatalf("outcomes = %+v", outs)
	}
	// Boot order is sorted by name, independent of save order.
	if len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("restore order = %v, want [alpha beta]", got)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan temp survived the sweep")
	}

	if err := st2.Remove("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "alpha.snap")); !os.IsNotExist(err) {
		t.Fatal("Remove left the snapshot file")
	}
	// Removing a never-saved model is fine.
	if err := st2.Remove("ghost"); err != nil {
		t.Fatal(err)
	}
}

// TestStoreLoadQuarantinesCorrupt corrupts one stored file; Load must
// quarantine it, restore the healthy one, and drop the corrupt entry
// from the manifest so the next boot is clean.
func TestStoreLoadQuarantinesCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"good", "bad"} {
		if _, err := st.Save(name, encodeSample); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "bad.snap")
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	outs := st2.Load(func(name string, dec *Decoder) error { return drainDecoder(dec) })
	byName := map[string]LoadOutcome{}
	for _, o := range outs {
		byName[o.Name] = o
	}
	if !byName["good"].Restored {
		t.Fatalf("good model not restored: %+v", byName["good"])
	}
	bad := byName["bad"]
	if bad.Restored || bad.Quarantined == "" || bad.Err == nil {
		t.Fatalf("bad model outcome = %+v", bad)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt file still in place")
	}
	if _, err := os.Stat(bad.Quarantined); err != nil {
		t.Fatalf("quarantine evidence missing: %v", err)
	}

	// Third boot: only the good model remains, no error outcomes.
	st3, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	outs = st3.Load(func(name string, dec *Decoder) error { return drainDecoder(dec) })
	if len(outs) != 1 || outs[0].Name != "good" || !outs[0].Restored {
		t.Fatalf("post-quarantine boot outcomes = %+v", outs)
	}
}

func drainDecoder(d *Decoder) error {
	for {
		kind, err := d.Next()
		if err == io.EOF {
			return &FormatError{Msg: "no end section"}
		}
		if err != nil {
			return err
		}
		if kind == 0xFF {
			return nil
		}
		for !d.AtEnd() && d.Err() == nil {
			d.U8()
		}
		if err := d.Err(); err != nil {
			return err
		}
	}
}

// TestDecoderPrimitiveRejections pins the decoder's per-primitive
// validation: out-of-range bools, non-finite float slices, and
// over-claimed lengths all turn into sticky typed errors.
func TestDecoderPrimitiveRejections(t *testing.T) {
	frame := func(fill func(e *Encoder)) *Decoder {
		t.Helper()
		var buf bytes.Buffer
		e, err := NewEncoder(&buf)
		if err != nil {
			t.Fatal(err)
		}
		e.Begin()
		fill(e)
		if err := e.Flush(1); err != nil {
			t.Fatal(err)
		}
		d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Next(); err != nil {
			t.Fatal(err)
		}
		return d
	}

	// FiniteF64s round-trips finite values…
	d := frame(func(e *Encoder) { e.F64s([]float64{1.5, -0.25, 0}) })
	vs := d.FiniteF64s()
	if d.Err() != nil || len(vs) != 3 || vs[0] != 1.5 || vs[1] != -0.25 || vs[2] != 0 {
		t.Fatalf("FiniteF64s = %v, err %v", vs, d.Err())
	}
	if !d.AtEnd() {
		t.Fatal("decoder not at section end")
	}

	// …and rejects NaN in the middle of a slice.
	d = frame(func(e *Encoder) { e.F64s([]float64{1, math.NaN(), 3}) })
	d.FiniteF64s()
	if !IsCorrupt(d.Err()) {
		t.Errorf("NaN in FiniteF64s: err = %v, want corrupt", d.Err())
	}

	// A bool byte outside {0,1} is corruption, not data.
	d = frame(func(e *Encoder) { e.U8(2) })
	d.Bool()
	if !IsCorrupt(d.Err()) {
		t.Errorf("bool byte 2: err = %v, want corrupt", d.Err())
	}

	// A length claiming more elements than the section holds fails
	// before any allocation.
	d = frame(func(e *Encoder) { e.U32(1 << 30) })
	d.FiniteF64s()
	if !IsCorrupt(d.Err()) {
		t.Errorf("over-claimed length: err = %v, want corrupt", d.Err())
	}
}

// TestFormatErrorStrings pins the two message shapes (with and
// without a byte offset).
func TestFormatErrorStrings(t *testing.T) {
	withOff := &FormatError{Offset: 17, Msg: "bad section"}
	if got := withOff.Error(); got != "snapshot: invalid format at byte 17: bad section" {
		t.Errorf("with offset: %q", got)
	}
	noOff := &FormatError{Msg: "bad magic"}
	if got := noOff.Error(); got != "snapshot: invalid format: bad magic" {
		t.Errorf("without offset: %q", got)
	}
}

// TestStoreDir pins the accessor daemons log quarantine paths against.
func TestStoreDir(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dir() != dir {
		t.Errorf("Dir() = %q, want %q", s.Dir(), dir)
	}
}
