package core

import (
	"fmt"
	"sync"
	"testing"

	"topkagg/internal/gen"
	"topkagg/internal/noise"
)

var (
	enumOnce   sync.Once
	enumModels map[string]*noise.Model
)

// enumModel returns a cached model for the enumeration benchmarks: the
// Table-1 synthetic circuit (t1) and the two paper benchmarks the
// Table-2 rows are measured on.
func enumModel(b *testing.B, name string) *noise.Model {
	b.Helper()
	enumOnce.Do(func() {
		enumModels = map[string]*noise.Model{}
		c, err := gen.Build(gen.Spec{Name: "t1", Gates: 30, Couplings: 60, Seed: 77})
		if err != nil {
			panic(err)
		}
		enumModels["t1"] = noise.NewModel(c)
		for _, n := range []string{"i1", "i3"} {
			pc, err := gen.BuildPaper(n)
			if err != nil {
				panic(err)
			}
			enumModels[n] = noise.NewModel(pc)
		}
	})
	m, ok := enumModels[name]
	if !ok {
		b.Fatalf("no enumeration bench circuit %q", name)
	}
	return m
}

// enumOptions returns the options each benchmark circuit is measured
// with: the Table-1 circuit analyzes every net (as the table does), the
// paper benchmarks use the default near-critical selection.
func enumOptions(ckt string) Options {
	if ckt == "t1" {
		return Options{SlackFrac: 1, NoRescore: true}
	}
	return Options{NoRescore: true}
}

// BenchmarkTopKEnumeration measures the top-k enumeration core in
// isolation: the prepared state (fixpoint, victim selection, primary
// envelopes) is built once outside the timer, so the loop times exactly
// the per-query work — candidate generation, dominance pruning and
// selection — that the serve layer pays per query on a warm analyzer.
//
// Sub-benchmarks sweep the mode (addition, elimination), the circuit
// (Table-1 t1, Table-2 i1/i3), the cardinality k, and — at the largest
// k — the enumeration worker count. The k-sweep is the acceptance
// kernel of the digest/hash-consing work: candidate counts grow with k,
// so the dominance prefilter and the set-envelope cache dominate the
// profile there.
func BenchmarkTopKEnumeration(b *testing.B) {
	type cfg struct {
		mode string
		ckt  string
		ks   []int
	}
	cfgs := []cfg{
		{"add", "t1", []int{1, 2, 4, 8}},
		{"add", "i1", []int{4, 8}},
		{"add", "i3", []int{4}},
		{"elim", "t1", []int{1, 2, 4, 8}},
		{"elim", "i1", []int{4}},
	}
	for _, tc := range cfgs {
		m := enumModel(b, tc.ckt)
		opt := enumOptions(tc.ckt)
		var shared *Shared
		var err error
		if tc.mode == "elim" {
			shared, err = PrepareElimination(m, WholeCircuit, opt)
		} else {
			shared, err = PrepareAddition(m, WholeCircuit, opt)
		}
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range tc.ks {
			b.Run(fmt.Sprintf("%s/%s/k%d", tc.mode, tc.ckt, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := shared.TopK(k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	// Worker sweep at the deepest cardinality: the level pool splits
	// candidate generation and the digest prefilter; results are
	// byte-identical at every setting (see the worker-invariance and
	// digest-parity tests), only the wall clock moves.
	for _, w := range []int{1, 2, 4, 8} {
		m := enumModel(b, "t1").WithWorkers(w)
		shared, err := PrepareAddition(m, WholeCircuit, enumOptions("t1"))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("add/t1/k8/w%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shared.TopK(8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
