// Package httpapi is the HTTP/JSON front end over the serve layer: a
// named-model registry (upload a netlist or verilog+spef+liberty, get
// a standing Analyzer pool), query endpoints for every serve.Op
// including batches and NDJSON-streamed k-sweeps, per-request
// timeout/work-budget limits mapped onto internal/budget, and
// admission control bounding concurrent work. cmd/topkd is the thin
// binary around it; everything here is unit-testable without sockets.
//
// Handlers follow a strict parse / validate / act split: parse.go
// decodes wire types and nothing else, validity.go turns wire requests
// into serve.Query values against one model (every 4xx originates
// there or in parse), and server.go only sequences the two and calls
// the Analyzer.
//
// The wire-vs-in-process equivalence contract: a query's response body
// is exactly marshalJSON(ToWire(c, analyzer.Do(q))) — ToWire is a pure
// function of the serve.Response, it carries no wall-clock or
// cache-counter fields, and the server adds nothing to the body. Tests
// hold the served bytes byte-identical to a direct in-process call
// converted the same way.
package httpapi

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"

	"topkagg/internal/budget"
	"topkagg/internal/circuit"
	"topkagg/internal/serve"
)

// QueryResponse is the wire form of one serve.Response. It is fully
// deterministic: wall-clock fields (Result.Elapsed and friends) and
// order-dependent cache counters are deliberately not carried, so the
// same query against the same model always yields the same bytes.
// Per-request timing travels in the X-Topkd-Elapsed-Ns header instead.
type QueryResponse struct {
	// Op, Net, K and Fix echo the request (Net by name, "" = circuit).
	Op  string `json:"op"`
	Net string `json:"net,omitempty"`
	K   int    `json:"k,omitempty"`
	Fix []int  `json:"fix,omitempty"`
	// DelayNs is a what-if scenario's resulting delay, ns.
	DelayNs *float64 `json:"delayNs,omitempty"`
	// Result holds a top-k outcome (absent for what-if and on error).
	Result *WireResult `json:"result,omitempty"`
	// Partial / Degraded / Stopped mirror the serve.Response ladder:
	// Partial marks a best-effort prefix, Degraded names why a
	// successful response is less than the full answer, Stopped is the
	// typed stop reason of a partial enumeration ("deadline",
	// "work-budget", "canceled").
	Partial  bool   `json:"partial,omitempty"`
	Degraded string `json:"degraded,omitempty"`
	Stopped  string `json:"stopped,omitempty"`
	// Error reports a failed query; ErrorReason is its typed budget
	// classification when it has one.
	Error       string `json:"error,omitempty"`
	ErrorReason string `json:"errorReason,omitempty"`
}

// WireResult is the wire form of core.Result (minus timing and stats).
type WireResult struct {
	K           int       `json:"k"`
	Victims     int       `json:"victims"`
	BaseDelayNs float64   `json:"baseDelayNs"`
	AllDelayNs  float64   `json:"allDelayNs"`
	PerK        []WireSet `json:"perK"`
}

// WireSet is one selected aggressor set (core.Selected).
type WireSet struct {
	K          int     `json:"k"`
	IDs        []int   `json:"ids"`
	EstimateNs float64 `json:"estimateNs"`
	DelayNs    float64 `json:"delayNs"`
	Verified   bool    `json:"verified"`
}

// SweepRecord is one NDJSON line of a streamed k-sweep: the record's
// position in the request's net list plus the embedded response.
type SweepRecord struct {
	Index int `json:"index"`
	*QueryResponse
}

// BatchResponse wraps a batch's per-query responses, aligned with the
// request's queries by index.
type BatchResponse struct {
	Responses []*QueryResponse `json:"responses"`
}

// finiteErr reports the first non-finite float in a response, so the
// encoder can reject it deterministically instead of letting
// encoding/json fail mid-stream (NaN and ±Inf are not valid JSON).
func finiteErr(field string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("httpapi: non-finite %s (%v) cannot be encoded as JSON", field, v)
	}
	return nil
}

// ToWire converts one serve.Response to its wire form. It fails —
// before any byte is written — when the response carries a non-finite
// float, which JSON cannot represent; handlers turn that into a
// structured encode error rather than an invalid or truncated body.
func ToWire(c *circuit.Circuit, resp serve.Response) (*QueryResponse, error) {
	q := resp.Query
	out := &QueryResponse{Op: q.Op.String()}
	if q.Net != serve.WholeCircuit {
		out.Net = c.Net(q.Net).Name
	}
	if q.Op != serve.WhatIf {
		out.K = q.K
	}
	for _, id := range q.Fix {
		out.Fix = append(out.Fix, int(id))
	}
	if resp.Err != nil {
		out.Error = resp.Err.Error()
		if r := budget.ReasonOf(resp.Err); r != budget.None {
			out.ErrorReason = r.String()
		}
		return out, nil
	}
	out.Partial = resp.Partial
	out.Degraded = resp.Degraded
	if q.Op == serve.WhatIf {
		if err := finiteErr("whatif delay", resp.Delay); err != nil {
			return nil, err
		}
		d := resp.Delay
		out.DelayNs = &d
		return out, nil
	}
	r := resp.Result
	if r == nil {
		return out, nil
	}
	if err := finiteErr("base delay", r.BaseDelay); err != nil {
		return nil, err
	}
	if err := finiteErr("all-aggressor delay", r.AllDelay); err != nil {
		return nil, err
	}
	wr := &WireResult{
		K:           r.K,
		Victims:     r.Victims,
		BaseDelayNs: r.BaseDelay,
		AllDelayNs:  r.AllDelay,
		PerK:        []WireSet{},
	}
	if r.Stopped != nil {
		out.Stopped = budget.ReasonOf(r.Stopped).String()
	}
	for i, s := range r.PerK {
		if err := finiteErr(fmt.Sprintf("perK[%d] estimate", i), s.Estimate); err != nil {
			return nil, err
		}
		if err := finiteErr(fmt.Sprintf("perK[%d] delay", i), s.Delay); err != nil {
			return nil, err
		}
		ids := make([]int, len(s.IDs))
		for j, id := range s.IDs {
			ids[j] = int(id)
		}
		wr.PerK = append(wr.PerK, WireSet{K: i + 1, IDs: ids, EstimateNs: s.Estimate, DelayNs: s.Delay, Verified: s.Verified})
	}
	out.Result = wr
	return out, nil
}

// marshalJSON renders v as one JSON document terminated by a newline.
// Marshalling happens fully in memory: nothing is written anywhere on
// failure, which is what lets handlers substitute a structured error
// for an unencodable record instead of emitting truncated JSON.
func marshalJSON(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// writeJSON writes v as the complete response body with the given
// status. On marshal failure the client gets a structured 500 instead
// of a half-written body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := marshalJSON(v)
	if err != nil {
		writeAPIError(w, errEncode(err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(data)
}

// statusOf maps an executed query's outcome to its HTTP status: 200
// for every answered query (partial included), 504 when the query's
// own budget expired before any usable result, 499 (client closed
// request) for caller cancellation, 500 for hard errors.
func statusOf(resp serve.Response) int {
	if resp.Err == nil {
		return http.StatusOK
	}
	switch budget.ReasonOf(resp.Err) {
	case budget.DeadlineExceeded, budget.WorkExhausted:
		return http.StatusGatewayTimeout
	case budget.Canceled:
		return 499
	default:
		return http.StatusInternalServerError
	}
}
