package mc

import (
	"testing"

	"topkagg/internal/cell"
	"topkagg/internal/core"
	"topkagg/internal/gen"
	"topkagg/internal/netlist"
	"topkagg/internal/noise"
)

func model(t *testing.T) *noise.Model {
	t.Helper()
	c, err := gen.Build(gen.Spec{Name: "mc", Gates: 40, Couplings: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return noise.NewModel(c)
}

func TestRunDistributionBracketed(t *testing.T) {
	m := model(t)
	res, err := Run(m, Config{Activity: 0.3, Samples: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delays) != 40 {
		t.Fatalf("samples = %d", len(res.Delays))
	}
	for _, d := range res.Delays {
		if d < res.Base-1e-9 || d > res.All+1e-9 {
			t.Fatalf("sample %g outside [base %g, all %g]", d, res.Base, res.All)
		}
	}
	// Sorted.
	for i := 1; i < len(res.Delays); i++ {
		if res.Delays[i] < res.Delays[i-1] {
			t.Fatal("delays must be sorted")
		}
	}
	// Quantiles are monotone and bracket the mean.
	q10, q50, q95 := res.Quantile(0.10), res.Quantile(0.50), res.Quantile(0.95)
	if !(q10 <= q50 && q50 <= q95) {
		t.Fatalf("quantiles out of order: %g %g %g", q10, q50, q95)
	}
	mean := res.Mean()
	if mean < res.Delays[0] || mean > res.Delays[len(res.Delays)-1] {
		t.Fatal("mean outside sample range")
	}
	// Mean active couplings ≈ activity × total.
	expect := 0.3 * float64(m.C.NumCouplings())
	if res.MeanActive < 0.5*expect || res.MeanActive > 1.5*expect {
		t.Fatalf("mean active %g far from expectation %g", res.MeanActive, expect)
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	m := model(t)
	a, err := Run(m, Config{Samples: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m, Config{Samples: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Delays {
		if a.Delays[i] != b.Delays[i] {
			t.Fatal("same seed must reproduce the distribution")
		}
	}
	c, err := Run(m, Config{Samples: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Delays {
		if a.Delays[i] != c.Delays[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestActivityScalesNoise(t *testing.T) {
	m := model(t)
	lo, err := Run(m, Config{Activity: 0.05, Samples: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Run(m, Config{Activity: 0.8, Samples: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if hi.Mean() <= lo.Mean() {
		t.Fatalf("more switching must mean more delay: %g vs %g", hi.Mean(), lo.Mean())
	}
}

// TestTopKCoversRealisticActivity is the paper's probabilistic
// argument made concrete: a modest top-k addition analysis already
// bounds the 95th percentile of realistic switching scenarios with k
// far below the coupling count.
func TestTopKCoversRealisticActivity(t *testing.T) {
	m := model(t)
	res, err := Run(m, Config{Activity: 0.2, Samples: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	top, err := core.TopKAddition(m, 20, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	curve := make([]float64, len(top.PerK))
	for i, s := range top.PerK {
		curve[i] = s.Delay
	}
	k, ok := res.CoverageK(curve, 0.95)
	if !ok {
		t.Fatalf("top-20 analysis failed to cover the 95th percentile (%g vs curve end %g)",
			res.Quantile(0.95), curve[len(curve)-1])
	}
	if k >= m.C.NumCouplings()/2 {
		t.Fatalf("coverage k=%d suspiciously close to the full coupling count %d", k, m.C.NumCouplings())
	}
	t.Logf("95%%-quantile %.4f covered by top-%d (of %d couplings)", res.Quantile(0.95), k, m.C.NumCouplings())
}

func TestRunValidation(t *testing.T) {
	src := "circuit q\noutput y\ngate g1 INV_X1 a -> y\n"
	c, err := netlist.ParseString(src, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(noise.NewModel(c), Config{}); err == nil {
		t.Fatal("coupling-free circuit must error")
	}
}

func TestQuantileEdges(t *testing.T) {
	r := &Result{Delays: []float64{1, 2, 3, 4}}
	if r.Quantile(0) != 1 || r.Quantile(1) != 4 {
		t.Fatal("quantile extremes wrong")
	}
	empty := &Result{}
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty result must be zero-valued")
	}
}
