package faultinject

import (
	"errors"
	"testing"
	"time"
)

// needProbes skips harness-behavior tests when probes are compiled
// out (faultinject_off): Fire is a no-op there by design.
func needProbes(t *testing.T) {
	t.Helper()
	if !Enabled() {
		t.Skip("probes compiled out (faultinject_off)")
	}
}

func TestDisarmedFireIsNoop(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("Armed() true with no plan")
	}
	Fire(SiteNoiseEval) // must not panic
}

func TestPanicOnNthHit(t *testing.T) {
	needProbes(t)
	Arm(NewPlan(1).Add("site", Rule{On: 3, Panic: true}))
	defer Disarm()
	fire := func() (panicked bool, val any) {
		defer func() {
			if r := recover(); r != nil {
				panicked, val = true, r
			}
		}()
		Fire("site")
		return
	}
	for i := 1; i <= 2; i++ {
		if p, _ := fire(); p {
			t.Fatalf("hit %d panicked early", i)
		}
	}
	p, val := fire()
	if !p {
		t.Fatal("third hit did not panic")
	}
	inj, ok := val.(*Injected)
	if !ok || inj.Site != "site" || inj.Hit != 3 {
		t.Fatalf("panic value = %#v, want *Injected{site, 3}", val)
	}
	var asErr *Injected
	if !errors.As(error(inj), &asErr) {
		t.Fatal("*Injected does not satisfy errors.As")
	}
	// Later hits are quiet again.
	if p, _ := fire(); p {
		t.Fatal("fourth hit panicked")
	}
}

func TestEveryAndCall(t *testing.T) {
	needProbes(t)
	var calls []int64
	Arm(NewPlan(1).Add("s", Rule{Every: 2, Call: func(site string, hit int64) {
		if site != "s" {
			t.Errorf("callback site = %q", site)
		}
		calls = append(calls, hit)
	}}))
	defer Disarm()
	for i := 0; i < 6; i++ {
		Fire("s")
	}
	if len(calls) != 3 || calls[0] != 2 || calls[1] != 4 || calls[2] != 6 {
		t.Fatalf("calls = %v, want [2 4 6]", calls)
	}
}

func TestProbIsSeededDeterministic(t *testing.T) {
	needProbes(t)
	run := func(seed int64) []int64 {
		var hits []int64
		Arm(NewPlan(seed).Add("s", Rule{Prob: 0.5, Call: func(_ string, h int64) {
			hits = append(hits, h)
		}}))
		defer Disarm()
		for i := 0; i < 64; i++ {
			Fire("s")
		}
		return hits
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("prob rule fired %d/64 times; want strictly between", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different trigger counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different trigger sequence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDelay(t *testing.T) {
	needProbes(t)
	Arm(NewPlan(1).Add("s", Rule{On: 1, Delay: 20 * time.Millisecond}))
	defer Disarm()
	start := time.Now()
	Fire("s")
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay rule slept only %v", d)
	}
}

func TestHitsCountsOnlyRuledSites(t *testing.T) {
	needProbes(t)
	p := NewPlan(1).Add("a", Rule{})
	Arm(p)
	defer Disarm()
	recovered := func() (ok bool) {
		defer func() { ok = recover() == nil }()
		Fire("a")
		Fire("b") // no rule: no counter either
		return
	}
	if !recovered() {
		t.Fatal("unexpected panic")
	}
	if got := p.Hits("a"); got != 1 {
		t.Fatalf("Hits(a) = %d, want 1", got)
	}
	if got := p.Hits("b"); got != 0 {
		t.Fatalf("Hits(b) = %d, want 0", got)
	}
}

func TestFireErrInjectsError(t *testing.T) {
	needProbes(t)
	sentinel := errors.New("disk on fire")
	Arm(NewPlan(1).Add("io", Rule{On: 2, Err: sentinel}))
	defer Disarm()
	if err := FireErr("io"); err != nil {
		t.Fatalf("hit 1 errored: %v", err)
	}
	err := FireErr("io")
	if !errors.Is(err, sentinel) {
		t.Fatalf("hit 2: got %v, want wrapped sentinel", err)
	}
	if err := FireErr("io"); err != nil {
		t.Fatalf("hit 3 errored: %v", err)
	}
	// Unruled sites and disarmed plans stay silent.
	if err := FireErr("other"); err != nil {
		t.Fatalf("unruled site errored: %v", err)
	}
	Disarm()
	if err := FireErr("io"); err != nil {
		t.Fatalf("disarmed FireErr errored: %v", err)
	}
}

func TestInjectedErrorString(t *testing.T) {
	e := &Injected{Site: "snapshot.write", Hit: 4}
	want := "faultinject: injected panic at snapshot.write (hit 4)"
	if got := e.Error(); got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
}
