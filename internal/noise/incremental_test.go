package noise

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"topkagg/internal/circuit"
	"topkagg/internal/gen"
)

func TestIncrementalNoChangeReturnsPrev(t *testing.T) {
	m := smallModel(t, 31)
	mask := AllMask(m.C)
	prev, err := m.Run(mask)
	if err != nil {
		t.Fatal(err)
	}
	an, st, err := m.RunIncremental(prev, mask, mask.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if an != prev || st.Affected != 0 || st.Full {
		t.Fatalf("no-change must short-circuit: %+v", st)
	}
}

func TestIncrementalNilPrevFallsBack(t *testing.T) {
	m := smallModel(t, 31)
	mask := AllMask(m.C)
	an, st, err := m.RunIncremental(nil, nil, mask)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full || an == nil {
		t.Fatal("nil prev must run fully")
	}
}

func TestIncrementalMatchesFullOnSingleFix(t *testing.T) {
	m := smallModel(t, 33)
	all := AllMask(m.C)
	prev, err := m.Run(all)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < m.C.NumCouplings(); id += 7 {
		mask := all.Clone()
		mask[id] = false
		want, err := m.Run(mask)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := m.RunIncremental(prev, all, mask)
		if err != nil {
			t.Fatal(err)
		}
		// Sub-picosecond tolerance: the ascent is mildly
		// iteration-order dependent (see RunIncremental docs).
		if d := math.Abs(got.CircuitDelay() - want.CircuitDelay()); d > 1e-4 {
			t.Fatalf("fix %d: incremental delay off by %g", id, d)
		}
		for _, n := range m.C.Nets() {
			if d := math.Abs(got.NetNoise[n.ID] - want.NetNoise[n.ID]); d > 1e-4 {
				t.Fatalf("fix %d: net %s noise off by %g", id, n.Name, d)
			}
		}
	}
}

func TestQuickIncrementalMatchesFull(t *testing.T) {
	// Sparse circuit so change cones stay small and the incremental
	// path (not the fallback) is exercised.
	c, err := gen.Build(gen.Spec{Name: "inc", Gates: 50, Couplings: 25, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c)
	all := AllMask(c)
	prev, err := m.Run(all)
	if err != nil {
		t.Fatal(err)
	}
	sawIncremental := false
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mask := all.Clone()
		// Toggle 1-2 couplings.
		for i := 0; i < 1+r.Intn(2); i++ {
			mask[r.Intn(len(mask))] = r.Intn(2) == 0
		}
		want, err := m.Run(mask)
		if err != nil {
			return false
		}
		got, st, err := m.RunIncremental(prev, all, mask)
		if err != nil {
			return false
		}
		if !st.Full && st.Affected > 0 {
			sawIncremental = true
		}
		return math.Abs(got.CircuitDelay()-want.CircuitDelay()) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
	if !sawIncremental {
		t.Fatal("test never exercised the incremental path; shrink the circuit's coupling density")
	}
}

func TestIncrementalConeSmallerThanCircuit(t *testing.T) {
	c, err := gen.Build(gen.Spec{Name: "inc", Gates: 80, Couplings: 30, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(c)
	all := AllMask(c)
	prev, err := m.Run(all)
	if err != nil {
		t.Fatal(err)
	}
	mask := all.Clone()
	mask[0] = false
	_, st, err := m.RunIncremental(prev, all, mask)
	if err != nil {
		t.Fatal(err)
	}
	if st.Full {
		t.Skip("cone covered the circuit on this seed")
	}
	if st.Affected <= 0 || st.Affected >= c.NumNets() {
		t.Fatalf("affected = %d of %d nets", st.Affected, c.NumNets())
	}
}

func TestDelayDelta(t *testing.T) {
	m := smallModel(t, 47)
	all := AllMask(m.C)
	prev, err := m.Run(all)
	if err != nil {
		t.Fatal(err)
	}
	// Fixing (removing) any coupling cannot increase delay.
	delta, an, err := m.DelayDelta(prev, all, []circuit.CouplingID{0})
	if err != nil {
		t.Fatal(err)
	}
	if delta > 1e-9 {
		t.Fatalf("fixing a coupling increased delay by %g", delta)
	}
	if an == nil {
		t.Fatal("analysis missing")
	}
	// DelayDelta with a nil prevMask treats it as all-active.
	if _, _, err := m.DelayDelta(prev, nil, []circuit.CouplingID{1}); err != nil {
		t.Fatal(err)
	}
}
