package verilog

import (
	"strings"
	"testing"

	"topkagg/internal/cell"
)

const sample = `
// synthesized by nothing in particular
module demo (a, b, c, y);
  input a, b, c;
  output y;
  wire n1, n2;
  NAND2_X1 g1 (.A(a), .B(b), .Y(n1));
  /* a block
     comment */
  INV_X2 g2 (.A(n1), .Y(n2));
  NAND2_X1 g3 (.A(n2), .B(c), .Y(y));
endmodule
`

func TestParseSample(t *testing.T) {
	c, err := ParseString(sample, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "demo" {
		t.Fatalf("module name = %q", c.Name)
	}
	if c.NumGates() != 3 {
		t.Fatalf("gates = %d", c.NumGates())
	}
	pos := c.POs()
	if len(pos) != 1 || c.Net(pos[0]).Name != "y" {
		t.Fatalf("POs = %v", pos)
	}
	if len(c.PIs()) != 3 {
		t.Fatalf("PIs = %d", len(c.PIs()))
	}
	n1, ok := c.NetByName("n1")
	if !ok || c.Net(n1).Driver != 0 {
		t.Fatal("n1 must be driven by g1")
	}
}

func TestParsePinOrderIndependent(t *testing.T) {
	src := `module t (a, b, y);
input a, b; output y;
NAND2_X1 g1 (.Y(y), .B(b), .A(a));
endmodule`
	c, err := ParseString(src, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	g := c.Gate(0)
	a, _ := c.NetByName("a")
	b, _ := c.NetByName("b")
	if g.Inputs[0] != a || g.Inputs[1] != b {
		t.Fatal("named connections must map by pin, not position")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no module", "input a;\nendmodule", "before module header"},
		{"missing endmodule", "module t (a);\ninput a;", "missing endmodule"},
		{"two modules", "module a (); endmodule; module b (); endmodule", "multiple modules"},
		{"bad cell", "module t (y); output y; NOPE g1 (.A(a), .Y(y)); endmodule", "no cell"},
		{"positional", "module t (y); output y; INV_X1 g1 (a, y); endmodule", "named pin"},
		{"missing input pin", "module t (y); output y; NAND2_X1 g1 (.A(a), .Y(y)); endmodule", "missing input pin B"},
		{"missing output pin", "module t (y); output y; INV_X1 g1 (.A(a)); endmodule", "missing output pin"},
		{"unknown pin", "module t (y); output y; INV_X1 g1 (.A(a), .Q(q), .Y(y)); endmodule", "unknown pin"},
		{"dup pin", "module t (y); output y; INV_X1 g1 (.A(a), .A(b), .Y(y)); endmodule", "connected twice"},
		{"trailing junk", "module t (y); output y; INV_X1 g1 (.A(a), .Y(y)); endmodule garbage", "after endmodule"},
		{"bad module name", "module 1bad (y); endmodule", "bad module name"},
		{"unknown output", "module t (); output q2z; endmodule", "unknown output"},
	}
	for _, tc := range cases {
		_, err := ParseString(tc.src, cell.Default())
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	lib := cell.Default()
	c1, err := ParseString(sample, lib)
	if err != nil {
		t.Fatal(err)
	}
	src := String(c1)
	c2, err := ParseString(src, lib)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, src)
	}
	if String(c2) != src {
		t.Fatal("canonical Verilog not a fixpoint")
	}
	if c2.NumGates() != c1.NumGates() || len(c2.PIs()) != len(c1.PIs()) {
		t.Fatal("round trip changed the circuit")
	}
}

func TestWriteShape(t *testing.T) {
	c, err := ParseString(sample, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	src := String(c)
	for _, want := range []string{
		"module demo (a, b, c, y);",
		"input a, b, c;",
		"output y;",
		"wire n1, n2;",
		"NAND2_X1 g1 (.A(a), .B(b), .Y(n1));",
		"endmodule",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
}

func TestParseThreeInputCell(t *testing.T) {
	src := `module t (y); output y;
AOI21_X1 g1 (.A(a), .B(b), .C(c), .Y(y));
endmodule`
	c, err := ParseString(src, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Gate(0).Inputs); got != 3 {
		t.Fatalf("inputs = %d", got)
	}
}
