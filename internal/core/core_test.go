package core

import (
	"math"
	"testing"

	"topkagg/internal/bruteforce"
	"topkagg/internal/cell"
	"topkagg/internal/circuit"
	"topkagg/internal/netlist"
	"topkagg/internal/noise"
)

func model(t *testing.T, src string) *noise.Model {
	t.Helper()
	c, err := netlist.ParseString(src, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	return noise.NewModel(c)
}

// threeCouplings: three independent two-inverter chains with three
// couplings among the internal nets.
const threeCouplings = `circuit t3
output y z w
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 b -> m1
gate h2 INV_X1 m1 -> z
gate f1 INV_X1 d -> p1
gate f2 INV_X1 p1 -> w
couple n1 m1 3.0
couple m1 p1 2.0
couple n1 p1 1.0
`

func TestAdditionMatchesBruteForce(t *testing.T) {
	m := model(t, threeCouplings)
	res, err := TopKAddition(m, 3, Exact())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerK) != 3 {
		t.Fatalf("expected 3 cardinalities, got %d", len(res.PerK))
	}
	for k := 1; k <= 3; k++ {
		bf, err := bruteforce.Addition(m, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := res.PerK[k-1].Delay
		if math.Abs(got-bf.Delay) > 1e-9 {
			t.Errorf("k=%d: proposed delay %.9f != brute force %.9f (sets %v vs %v)",
				k, got, bf.Delay, res.PerK[k-1].IDs, bf.IDs)
		}
	}
}

func TestEliminationMatchesBruteForce(t *testing.T) {
	m := model(t, threeCouplings)
	res, err := TopKElimination(m, 3, Exact())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerK) != 3 {
		t.Fatalf("expected 3 cardinalities, got %d", len(res.PerK))
	}
	for k := 1; k <= 3; k++ {
		bf, err := bruteforce.Elimination(m, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := res.PerK[k-1].Delay
		if math.Abs(got-bf.Delay) > 1e-9 {
			t.Errorf("k=%d: proposed delay %.9f != brute force %.9f (sets %v vs %v)",
				k, got, bf.Delay, res.PerK[k-1].IDs, bf.IDs)
		}
	}
}

func TestAdditionCurveMonotone(t *testing.T) {
	m := model(t, threeCouplings)
	res, err := TopKAddition(m, 3, Exact())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.PerK); i++ {
		if res.PerK[i].Delay < res.PerK[i-1].Delay-1e-9 {
			t.Fatalf("addition delays must be nondecreasing: %v", res.PerK)
		}
	}
	if res.Top().Delay > res.AllDelay+1e-9 {
		t.Fatal("top-k addition delay cannot exceed the all-aggressor delay")
	}
	if res.PerK[0].Delay < res.BaseDelay-1e-9 {
		t.Fatal("addition delay cannot undercut the noiseless delay")
	}
}

func TestEliminationCurveMonotone(t *testing.T) {
	m := model(t, threeCouplings)
	res, err := TopKElimination(m, 3, Exact())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.PerK); i++ {
		if res.PerK[i].Delay > res.PerK[i-1].Delay+1e-9 {
			t.Fatalf("elimination delays must be nonincreasing: %v", res.PerK)
		}
	}
	// Removing all three couplings must land exactly on the noiseless
	// delay (duality endpoint).
	if math.Abs(res.PerK[2].Delay-res.BaseDelay) > 1e-9 {
		t.Fatalf("full elimination must recover base delay: %g vs %g",
			res.PerK[2].Delay, res.BaseDelay)
	}
}

// TestNonMonotonicTopK reproduces the paper's Fig. 4: aggressors whose
// noise pulses land after the victim's transition produce no delay
// noise individually (each peak stays below Vdd/2) but a large delay
// when switching together, so the top-2 set shares no member with the
// top-1 set.
func TestNonMonotonicTopK(t *testing.T) {
	// Victim chain depth 2 (its t50 is early); aggressors a2/a3 are
	// depth 4 (their windows sit after the victim's t50) with coupling
	// caps big enough that the pair — but not either alone — pulls the
	// settled victim below Vdd/2. Aggressor a1 overlaps the victim
	// window with a small cap: small but nonzero noise alone.
	src := `circuit fig4
output y
gate v1 INV_X1 a -> vn
gate v2 INV_X1 vn -> y
gate q1 INV_X1 b -> a1n
gate q2 INV_X1 a1n -> a1q
gate r1 INV_X1 d -> r1n
gate r2 INV_X1 r1n -> r2n
gate r3 INV_X1 r2n -> r3n
gate r4 INV_X1 r3n -> a2q
gate s1 INV_X1 e -> s1n
gate s2 INV_X1 s1n -> s2n
gate s3 INV_X1 s2n -> s3n
gate s4 INV_X1 s3n -> a3q
couple vn a1n 0.8
couple vn a2q 5.0
couple vn a3q 5.0
`
	m := model(t, src)
	res, err := TopKAddition(m, 2, Exact())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerK) != 2 {
		t.Fatalf("want 2 cardinalities, got %d", len(res.PerK))
	}
	top1 := res.PerK[0].IDs
	top2 := res.PerK[1].IDs
	if len(top1) != 1 || top1[0] != 0 {
		t.Fatalf("top-1 should be the overlapping aggressor a1 (coupling 0), got %v (delays %v)", top1, res.PerK)
	}
	for _, id := range top2 {
		if id == 0 {
			t.Fatalf("top-2 should drop a1 in favor of the a2+a3 pair, got %v", top2)
		}
	}
	// Cross-check both cardinalities against brute force.
	for k := 1; k <= 2; k++ {
		bf, err := bruteforce.Addition(m, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.PerK[k-1].Delay-bf.Delay) > 1e-9 {
			t.Fatalf("k=%d disagrees with brute force: %g vs %g", k, res.PerK[k-1].Delay, bf.Delay)
		}
	}
}

// TestPseudoAggressorPropagation checks that a coupling on an upstream
// net is found at the sink through pseudo-aggressor propagation.
func TestPseudoAggressorPropagation(t *testing.T) {
	src := `circuit up
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> n2
gate g3 INV_X1 n2 -> y
gate h1 INV_X1 b -> m1
couple n1 m1 4.0
`
	m := model(t, src)
	res, err := TopKAddition(m, 1, Exact())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerK) != 1 || len(res.PerK[0].IDs) != 1 || res.PerK[0].IDs[0] != 0 {
		t.Fatalf("upstream coupling must be selected via pseudo aggressors: %+v", res.PerK)
	}
	bf, err := bruteforce.Addition(m, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PerK[0].Delay-bf.Delay) > 1e-9 {
		t.Fatalf("pseudo-propagated delay mismatch: %g vs %g", res.PerK[0].Delay, bf.Delay)
	}
	// Ablation: without pseudo aggressors the sink never sees the
	// upstream coupling and no set is produced.
	opt := Exact()
	opt.NoPseudo = true
	res2, err := TopKAddition(m, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.PerK) != 0 {
		t.Fatalf("NoPseudo should find nothing at the sink here, got %+v", res2.PerK)
	}
}

func TestHigherOrderAggressors(t *testing.T) {
	// a1o couples the victim; a2m couples a1o (an indirect aggressor
	// that widens a1o's window). The exact top-2 must match brute
	// force, which naturally accounts for the widening.
	src := `circuit ho
output y
gate v1 INV_X1 a -> v1n
gate v2 INV_X1 v1n -> v2n
gate v3 INV_X1 v2n -> y
gate a1g INV_X1 b -> a1n
gate a1h INV_X1 a1n -> a1o
gate a2g INV_X1 d -> a2m
couple a1o v2n 3.5
couple a2m a1o 3.5
`
	m := model(t, src)
	res, err := TopKAddition(m, 2, Exact())
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= min2(2, len(res.PerK)); k++ {
		bf, err := bruteforce.Addition(m, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.PerK[k-1].Delay < bf.Delay-1e-9 {
			t.Fatalf("k=%d: proposed %g below brute force %g", k, res.PerK[k-1].Delay, bf.Delay)
		}
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestKValidation(t *testing.T) {
	m := model(t, threeCouplings)
	if _, err := TopKAddition(m, 0, Options{}); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := TopKElimination(m, -1, Options{}); err == nil {
		t.Fatal("negative k must error")
	}
}

func TestKBeyondCouplingsTruncates(t *testing.T) {
	m := model(t, threeCouplings)
	res, err := TopKAddition(m, 10, Exact())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerK) > 3 {
		t.Fatalf("cannot produce sets beyond 3 couplings: %d", len(res.PerK))
	}
	if res.K != 10 {
		t.Fatalf("requested K must be recorded: %d", res.K)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.listWidth() != DefaultListWidth || o.extend() != DefaultExtend ||
		o.higherOrder() != DefaultHigherOrder || o.slackFrac() != DefaultSlackFrac {
		t.Fatal("zero Options must select defaults")
	}
	ex := Exact()
	if ex.listWidth() < 1<<30 || ex.extend() < 1<<30 || ex.higherOrder() < 1<<30 {
		t.Fatal("Exact must lift the caps")
	}
	if ex.slackFrac() < 1 {
		t.Fatal("Exact must include every net")
	}
	o = Options{MaxListWidth: 7, MaxExtend: 5, MaxHigherOrder: 2, SlackFrac: 0.5}
	if o.listWidth() != 7 || o.extend() != 5 || o.higherOrder() != 2 || o.slackFrac() != 0.5 {
		t.Fatal("explicit options must pass through")
	}
}

func TestNoRescoreKeepsEstimates(t *testing.T) {
	m := model(t, threeCouplings)
	opt := Exact()
	opt.NoRescore = true
	res, err := TopKAddition(m, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.PerK {
		if s.Delay != s.Estimate {
			t.Fatalf("NoRescore must keep estimates: %+v", s)
		}
	}
}

func TestBeamStillFindsTopSetOnSmallCircuit(t *testing.T) {
	m := model(t, threeCouplings)
	exact, err := TopKAddition(m, 2, Exact())
	if err != nil {
		t.Fatal(err)
	}
	tight := Options{MaxListWidth: 2, MaxExtend: 2, MaxHigherOrder: 1, SlackFrac: 1}
	beam, err := TopKAddition(m, 2, tight)
	if err != nil {
		t.Fatal(err)
	}
	if len(beam.PerK) != len(exact.PerK) {
		t.Fatalf("beam run truncated: %d vs %d", len(beam.PerK), len(exact.PerK))
	}
	// On this tiny circuit even a narrow beam must keep the optimum.
	if math.Abs(beam.Top().Delay-exact.Top().Delay) > 1e-9 {
		t.Fatalf("beam lost the optimum: %g vs %g", beam.Top().Delay, exact.Top().Delay)
	}
}

func TestVictimSelection(t *testing.T) {
	src := `circuit vs
output y z
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> n2
gate g3 INV_X1 n2 -> n3
gate g4 INV_X1 n3 -> y
gate h1 INV_X1 b -> z
couple n2 n3 1.0
`
	m := model(t, src)
	e, err := newPrepared(m, Options{SlackFrac: 0.1}, addition, WholeCircuit, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	z, _ := m.C.NetByName("z")
	n2, _ := m.C.NetByName("n2")
	if e.isVictim[z] {
		t.Fatal("high-slack output must be excluded at tight SlackFrac")
	}
	if !e.isVictim[n2] {
		t.Fatal("critical-path net must be a victim")
	}
	eAll, err := newPrepared(m, Exact(), addition, WholeCircuit, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(eAll.victims) != m.C.NumNets() {
		t.Fatalf("Exact must include all nets: %d vs %d", len(eAll.victims), m.C.NumNets())
	}
}

func TestResultTopEmpty(t *testing.T) {
	var r Result
	if got := r.Top(); got.Delay != 0 || got.IDs != nil {
		t.Fatalf("empty result Top = %+v", got)
	}
}

func TestSetHelpers(t *testing.T) {
	s := &aggSet{ids: []circuit.CouplingID{1, 3, 5}}
	if !s.contains(3) || s.contains(2) {
		t.Fatal("contains broken")
	}
	got := s.withID(4)
	want := []circuit.CouplingID{1, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("withID = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("withID = %v, want %v", got, want)
		}
	}
	if s.key() != "1,3,5" {
		t.Fatalf("key = %q", s.key())
	}
	appended := s.withID(9)
	if appended[len(appended)-1] != 9 {
		t.Fatalf("withID append case = %v", appended)
	}
}

func TestDedupeKeepsBestScore(t *testing.T) {
	a := &aggSet{ids: []circuit.CouplingID{1, 2}, score: 0.5}
	b := &aggSet{ids: []circuit.CouplingID{1, 2}, score: 0.7}
	c := &aggSet{ids: []circuit.CouplingID{3}, score: 0.1}
	out := dedupe([]*aggSet{a, b, c})
	if len(out) != 2 {
		t.Fatalf("dedupe kept %d", len(out))
	}
	for _, s := range out {
		if s.key() == "1,2" && s.score != 0.7 {
			t.Fatal("dedupe must keep the higher score")
		}
	}
}

func TestElapsedPerKMonotone(t *testing.T) {
	m := model(t, threeCouplings)
	res, err := TopKAddition(m, 3, Exact())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ElapsedPerK) != len(res.PerK) {
		t.Fatalf("ElapsedPerK length %d != PerK %d", len(res.ElapsedPerK), len(res.PerK))
	}
	for i := 1; i < len(res.ElapsedPerK); i++ {
		if res.ElapsedPerK[i] < res.ElapsedPerK[i-1] {
			t.Fatal("cumulative per-cardinality runtimes must be nondecreasing")
		}
	}
	if res.Elapsed < res.ElapsedPerK[len(res.ElapsedPerK)-1] {
		t.Fatal("total elapsed must cover the last cardinality")
	}
}

func TestResultKRecorded(t *testing.T) {
	m := model(t, threeCouplings)
	res, err := TopKElimination(m, 2, Exact())
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 || res.Victims <= 0 {
		t.Fatalf("metadata missing: %+v", res)
	}
}
