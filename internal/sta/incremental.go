package sta

import (
	"fmt"

	"topkagg/internal/circuit"
	"topkagg/internal/obs"
)

// Incremental maintains the timing of one circuit under a mutable
// ExtraLAT vector and recomputes, on each Update, only the fanout cone
// of the nets whose ExtraLAT actually changed. Because the per-net
// propagation step is the same code the full Analyze runs
// (computeWindow), the maintained windows are bit-identical to a fresh
// Analyze with the same ExtraLAT — Update just skips the nets whose
// inputs provably did not move.
//
// This is the substrate of the noise engine's worklist fixpoint: late
// fixpoint iterations change a handful of arrival times, so re-timing
// cost tracks the changed cone instead of circuit size.
//
// An Incremental is single-owner mutable state; it is not safe for
// concurrent use.
type Incremental struct {
	c    *circuit.Circuit
	cols *circuit.Columns
	opt  Options // ExtraLAT aliases extra and is always non-nil

	res   *Result
	extra []float64

	inHeap  []bool
	heap    []int32 // min-heap of topological positions pending recompute
	changed []circuit.NetID

	// Observability handles (nil when not instrumented; see Instrument).
	updates  *obs.Counter
	coneSize *obs.Histogram
}

// NewIncremental builds an Incremental by running one full analysis
// with the given options. opt.ExtraLAT (nil means all zeros) seeds the
// mutable vector; the slice is copied, never aliased.
func NewIncremental(c *circuit.Circuit, opt Options) (*Incremental, error) {
	extra := make([]float64, c.NumNets())
	if opt.ExtraLAT != nil {
		copy(extra, opt.ExtraLAT)
	}
	opt.ExtraLAT = extra
	res, err := Analyze(c, opt)
	if err != nil {
		return nil, err
	}
	return newIncremental(c, opt, res, extra), nil
}

// NewIncrementalFrom adopts an existing analysis instead of rerunning
// it: res must have been produced by Analyze(c, opt) with exactly the
// given opt.ExtraLAT (nil means all zeros). The windows are copied, so
// res itself stays untouched by later Updates.
func NewIncrementalFrom(res *Result, opt Options) (*Incremental, error) {
	c := res.Circuit
	if len(res.Windows) != c.NumNets() || len(res.order) != c.NumNets() {
		return nil, fmt.Errorf("sta: incremental: result shape does not match circuit %s", c.Name)
	}
	extra := make([]float64, c.NumNets())
	if opt.ExtraLAT != nil {
		copy(extra, opt.ExtraLAT)
	}
	opt.ExtraLAT = extra
	cp := &Result{
		Circuit: c,
		Windows: append([]Window(nil), res.Windows...),
		order:   res.order,
	}
	return newIncremental(c, opt, cp, extra), nil
}

func newIncremental(c *circuit.Circuit, opt Options, res *Result, extra []float64) *Incremental {
	// The columnar snapshot already exists (the full analysis that
	// produced res built it); the topological positions it carries
	// replace the per-Incremental position index.
	cols, err := c.Columns()
	if err != nil {
		// Unreachable after a successful Analyze; keep the failure loud.
		panic(fmt.Sprintf("sta: incremental: %v", err))
	}
	return &Incremental{
		c:      c,
		cols:   cols,
		opt:    opt,
		res:    res,
		extra:  extra,
		inHeap: make([]bool, c.NumNets()),
	}
}

// Instrument attaches observability: every Update thereafter counts
// itself under "sta.incremental.updates" and records how many nets it
// recomputed (the re-timing cone size) in the histogram
// "sta.incremental.cone_size". A nil registry leaves the Incremental
// uninstrumented at zero cost.
func (inc *Incremental) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	inc.updates = r.Counter("sta.incremental.updates")
	inc.coneSize = r.Histogram("sta.incremental.cone_size")
}

// Result returns the live timing view. Its windows are mutated in
// place by Update; callers needing a stable copy use Snapshot.
func (inc *Incremental) Result() *Result { return inc.res }

// Columns returns the columnar circuit snapshot this Incremental was
// built against — the same revision every window it maintains was
// computed from.
func (inc *Incremental) Columns() *circuit.Columns { return inc.cols }

// Snapshot returns an immutable copy of the current timing, safe to
// publish after further Updates.
func (inc *Incremental) Snapshot() *Result {
	return &Result{
		Circuit: inc.c,
		Windows: append([]Window(nil), inc.res.Windows...),
		order:   inc.res.order,
	}
}

// ExtraLAT returns the current extra-arrival vector (read-only view).
func (inc *Incremental) ExtraLAT() []float64 { return inc.extra }

// SetExtraLAT updates one net's extra latest arrival, scheduling its
// recomputation on the next Update. Setting the current value is a
// no-op.
func (inc *Incremental) SetExtraLAT(n circuit.NetID, v float64) {
	if inc.extra[n] == v {
		return
	}
	inc.extra[n] = v
	inc.push(n)
}

// Update propagates all pending ExtraLAT changes through the fanout
// cone in topological order and returns the nets whose windows
// actually changed. The returned slice is reused by the next Update;
// callers must consume it before then.
func (inc *Incremental) Update() []circuit.NetID {
	inc.changed = inc.changed[:0]
	recomputed := 0
	cols := inc.cols
	for len(inc.heap) > 0 {
		nid := inc.pop()
		recomputed++
		old := inc.res.Windows[nid]
		w := computeWindow(cols, inc.opt, inc.res.Windows, nid)
		if w == old {
			continue
		}
		inc.res.Windows[nid] = w
		inc.changed = append(inc.changed, nid)
		// Push the fanout successors straight from the precomputed
		// column (each load gate's output net).
		for i := cols.LoadOff[nid]; i < cols.LoadOff[nid+1]; i++ {
			inc.push(circuit.NetID(cols.Fanout[i]))
		}
	}
	if inc.updates != nil {
		inc.updates.Inc()
		inc.coneSize.Observe(int64(recomputed))
	}
	return inc.changed
}

// push schedules a net for recomputation, once.
func (inc *Incremental) push(n circuit.NetID) {
	if inc.inHeap[n] {
		return
	}
	inc.inHeap[n] = true
	h := append(inc.heap, inc.cols.TopoPos[n])
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	inc.heap = h
}

// pop removes the topologically-earliest scheduled net.
func (inc *Incremental) pop() circuit.NetID {
	h := inc.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	inc.heap = h[:n]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h[l] < h[s] {
			s = l
		}
		if r < n && h[r] < h[s] {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	nid := inc.res.order[top]
	inc.inHeap[nid] = false
	return nid
}
