package waveform

import (
	"math/rand"
	"testing"
)

// TestSampleIntoMatchesValue pins the bit-identity contract of the
// digest sampler: every grid sample equals Value at the same time —
// same formula, same operation order — over random waveforms and
// random intervals, including intervals that start before, inside, and
// after the waveform's support.
func TestSampleIntoMatchesValue(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		r := rand.New(rand.NewSource(seed))
		w := randPWL(r)
		lo := r.Float64()*4 - 2
		hi := lo + r.Float64()*4
		var out [24]float64
		w.SampleInto(lo, hi, out[:])
		n := len(out)
		step := (hi - lo) / float64(n-1)
		for g := range out {
			tg := lo + float64(g)*step
			if g == n-1 {
				tg = hi
			}
			if want := w.Value(tg); out[g] != want {
				t.Fatalf("seed %d sample %d (t=%g): SampleInto %g != Value %g",
					seed, g, tg, out[g], want)
			}
		}
	}
}

// TestSampleIntoEdges covers the degenerate inputs the random sweep
// cannot hit deliberately: empty waveforms, empty output, collapsed
// intervals, and a leading step (two breakpoints at the same time).
func TestSampleIntoEdges(t *testing.T) {
	var out4 [4]float64
	Zero().SampleInto(0, 1, out4[:])
	for g, v := range out4 {
		if v != 0 {
			t.Fatalf("zero waveform sample %d = %g, want 0", g, v)
		}
	}

	w := Trapezoid(1, 0.5, 3, 0.5, 2)
	w.SampleInto(0, 0, out4[:]) // collapsed interval: every sample at lo
	for g, v := range out4 {
		if want := w.Value(0); v != want {
			t.Fatalf("collapsed interval sample %d = %g, want %g", g, v, want)
		}
	}
	w.SampleInto(5, 2, out4[:]) // inverted interval treated like collapsed
	for g, v := range out4 {
		if want := w.Value(5); v != want {
			t.Fatalf("inverted interval sample %d = %g, want %g", g, v, want)
		}
	}
	w.SampleInto(0, 1, nil) // must not panic

	// A step at the start: Value takes its leading-edge branch for
	// t <= first breakpoint, and the sampler must match it exactly.
	step := View([]Point{{T: 1, V: 0.5}, {T: 1, V: 2}, {T: 3, V: 0}})
	var out5 [5]float64
	step.SampleInto(0, 2, out5[:])
	for g, tg := range []float64{0, 0.5, 1, 1.5, 2} {
		if want := step.Value(tg); out5[g] != want {
			t.Fatalf("leading step: sample %d (t=%g) = %g, want Value %g", g, tg, out5[g], want)
		}
	}
}

// TestAddIntoMatchesAdd checks the allocation-free sum against Add on
// random pairs, including buffer reuse across calls, and that the
// result read through the returned PWL survives until the buffer's
// next reuse (but a Clone survives past it).
func TestAddIntoMatchesAdd(t *testing.T) {
	var buf []Point
	for seed := int64(0); seed < 200; seed++ {
		r := rand.New(rand.NewSource(seed))
		a, b := randPWL(r), randPWL(r)
		want := Add(a, b)
		var got PWL
		got, buf = AddInto(a, b, buf)
		if !Equal(got, want, 0) {
			t.Fatalf("seed %d: AddInto differs from Add", seed)
		}
		kept := got.Clone()
		_, buf = AddInto(b, a, buf) // clobber the buffer
		if !Equal(kept, want, 0) {
			t.Fatalf("seed %d: Clone does not survive buffer reuse", seed)
		}
	}
}
