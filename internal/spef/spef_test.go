package spef

import (
	"math"
	"strings"
	"testing"

	"topkagg/internal/cell"
	"topkagg/internal/gen"
	"topkagg/internal/netlist"
	"topkagg/internal/noise"
	"topkagg/internal/verilog"
)

const baseNetlist = `circuit demo
output y z
gate g1 NAND2_X1 a b -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 c -> m1
gate h2 INV_X1 m1 -> z
`

func TestApplySetsParasitics(t *testing.T) {
	c, err := netlist.ParseString(baseNetlist, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	src := `*SPEF "IEEE 1481-1998"
*DESIGN "demo"
*T_UNIT 1 NS
*C_UNIT 1 FF
*R_UNIT 1 KOHM

*D_NET n1 5.5
*CONN
*I g1:Y O
*CAP
1 n1:1 5.5
2 n1 m1 1.8
*RES
1 n1 0.4
*END
`
	if err := ApplyString(src, c); err != nil {
		t.Fatal(err)
	}
	n1, _ := c.NetByName("n1")
	if c.Net(n1).Cgnd != 5.5 || c.Net(n1).Rwire != 0.4 {
		t.Fatalf("parasitics not applied: %+v", c.Net(n1))
	}
	if c.NumCouplings() != 1 || c.Coupling(0).Cc != 1.8 {
		t.Fatalf("coupling not applied: %d", c.NumCouplings())
	}
}

func TestApplyErrors(t *testing.T) {
	mk := func() string { return baseNetlist }
	cases := []struct{ name, src, want string }{
		{"no header", "*D_NET n1 1\n*END\n", "missing *SPEF header"},
		{"bad c unit", "*SPEF \"x\"\n*C_UNIT 1 PF\n", "unsupported capacitance unit"},
		{"bad r unit", "*SPEF \"x\"\n*R_UNIT 1 OHM\n", "unsupported resistance unit"},
		{"unknown net", "*SPEF \"x\"\n*D_NET nope 1\n", "unknown net"},
		{"data outside dnet", "*SPEF \"x\"\n1 n1 2\n", "outside *D_NET"},
		{"data before section", "*SPEF \"x\"\n*D_NET n1 1\n1 n1 2\n", "before a section"},
		{"bad cap value", "*SPEF \"x\"\n*D_NET n1 1\n*CAP\n1 n1 xx\n", "bad capacitance"},
		{"cap wrong net", "*SPEF \"x\"\n*D_NET n1 1\n*CAP\n1 m1 2\n", "outside net"},
		{"coupling wrong net", "*SPEF \"x\"\n*D_NET n1 1\n*CAP\n1 m1 y 2\n", "does not touch"},
		{"malformed cap", "*SPEF \"x\"\n*D_NET n1 1\n*CAP\n1\n", "malformed CAP"},
		{"malformed res", "*SPEF \"x\"\n*D_NET n1 1\n*RES\n1 n1\n", "malformed RES"},
		{"bad res value", "*SPEF \"x\"\n*D_NET n1 1\n*RES\n1 n1 zz\n", "bad resistance"},
		{"dnet no name", "*SPEF \"x\"\n*D_NET\n", "wants a net name"},
	}
	for _, tc := range cases {
		c, err := netlist.ParseString(mk(), cell.Default())
		if err != nil {
			t.Fatal(err)
		}
		err = ApplyString(tc.src, c)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestRoundTripThroughVerilogAndSPEF(t *testing.T) {
	// Generate a coupled benchmark, export it as Verilog + SPEF,
	// re-import both, and verify the noisy analysis agrees exactly.
	lib := cell.Default()
	orig, err := gen.Build(gen.Spec{Name: "rt", Gates: 40, Couplings: 60, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	vsrc := verilog.String(orig)
	psrc := String(orig)

	back, err := verilog.ParseString(vsrc, lib)
	if err != nil {
		t.Fatalf("verilog re-parse: %v", err)
	}
	if err := ApplyString(psrc, back); err != nil {
		t.Fatalf("spef re-apply: %v", err)
	}
	if back.NumCouplings() != orig.NumCouplings() {
		t.Fatalf("couplings: %d vs %d", back.NumCouplings(), orig.NumCouplings())
	}
	a1, err := noise.NewModel(orig).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := noise.NewModel(back).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(a1.CircuitDelay() - a2.CircuitDelay()); d > 1e-9 {
		t.Fatalf("round trip changed noisy delay by %g", d)
	}
	if d := math.Abs(a1.Base.CircuitDelay() - a2.Base.CircuitDelay()); d > 1e-9 {
		t.Fatalf("round trip changed base delay by %g", d)
	}
}

func TestWriteShape(t *testing.T) {
	c, err := netlist.ParseString(baseNetlist+"couple n1 m1 1.5\n", cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	out := String(c)
	for _, want := range []string{`*SPEF "IEEE 1481-1998"`, `*DESIGN "demo"`,
		"*C_UNIT 1 FF", "*D_NET n1", "n1 m1 1.5", "*RES", "*END"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in SPEF output", want)
		}
	}
	// The coupling must be emitted exactly once.
	if strings.Count(out, "n1 m1 1.5") != 1 {
		t.Error("coupling emitted more than once")
	}
}
