package core

import (
	"reflect"
	"testing"

	"topkagg/internal/gen"
	"topkagg/internal/noise"
)

// TestDigestParity is the property test behind the digest prefilter's
// central claim (DESIGN.md §10): the envelope-digest prefilter is
// conservative, so enumeration with it enabled returns byte-identical
// results to the exact-prune escape hatch — same selections, same
// scores, same pruning counters — over the seeded differential
// circuits, in both modes, at one and at eight workers. The only
// permitted difference is the digest counters themselves, which are
// zero by definition under ExactPrune.
func TestDigestParity(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		c, err := gen.Build(gen.Spec{Name: "diff", Gates: 10, Couplings: 9, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, elim := range []bool{false, true} {
			run := TopKAddition
			mode := "addition"
			if elim {
				run = TopKElimination
				mode = "elimination"
			}
			for _, w := range []int{1, 8} {
				m := noise.NewModel(c).WithWorkers(w)
				digest, err := run(m, 4, Options{SlackFrac: 1, NoRescore: true})
				if err != nil {
					t.Fatalf("seed %d %s workers=%d: %v", seed, mode, w, err)
				}
				exact, err := run(m, 4, Options{SlackFrac: 1, NoRescore: true, ExactPrune: true})
				if err != nil {
					t.Fatalf("seed %d %s workers=%d exact: %v", seed, mode, w, err)
				}

				if !reflect.DeepEqual(digest.PerK, exact.PerK) {
					t.Errorf("seed %d %s workers=%d: selections differ:\n  digest: %+v\n  exact:  %+v",
						seed, mode, w, digest.PerK, exact.PerK)
				}

				ds, es := stripTime(digest.Stats), stripTime(exact.Stats)
				for i := range es.PerK {
					if es.PerK[i].DigestHits != 0 || es.PerK[i].DigestFallbacks != 0 {
						t.Errorf("seed %d %s workers=%d k=%d: exact-prune run reports digest activity (%d hits, %d fallbacks)",
							seed, mode, w, es.PerK[i].K, es.PerK[i].DigestHits, es.PerK[i].DigestFallbacks)
					}
				}
				for i := range ds.PerK {
					ds.PerK[i].DigestHits, ds.PerK[i].DigestFallbacks = 0, 0
				}
				if !reflect.DeepEqual(ds, es) {
					t.Errorf("seed %d %s workers=%d: stats differ beyond digest counters:\n  digest: %+v\n  exact:  %+v",
						seed, mode, w, ds, es)
				}
			}
		}
	}
}
