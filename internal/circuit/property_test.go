package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"topkagg/internal/cell"
)

// randCircuit builds a random valid layered circuit directly through
// the circuit API (independent of the gen package).
func randCircuit(r *rand.Rand) *Circuit {
	lib := cell.Default()
	c := New("prop", lib)
	names := []string{"i0", "i1", "i2"}
	for _, n := range names {
		c.EnsureNet(n)
	}
	cells := []string{"INV_X1", "BUF_X1", "NAND2_X1", "NOR2_X2"}
	nGates := 3 + r.Intn(12)
	for g := 0; g < nGates; g++ {
		cellName := cells[r.Intn(len(cells))]
		cl, _ := lib.Cell(cellName)
		ins := make([]string, cl.NumInputs)
		for i := range ins {
			ins[i] = names[r.Intn(len(names))]
		}
		out := "g" + string(rune('a'+g))
		if _, err := c.AddGate(out, cellName, ins, out+"n"); err != nil {
			continue
		}
		names = append(names, out+"n")
	}
	return c
}

func TestQuickTopoOrderRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randCircuit(r)
		order, err := c.TopoNets()
		if err != nil {
			return false
		}
		pos := map[NetID]int{}
		for i, n := range order {
			pos[n] = i
		}
		for _, g := range c.Gates() {
			for _, in := range g.Inputs {
				if pos[in] >= pos[g.Output] {
					return false
				}
			}
		}
		return len(order) == c.NumNets()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFaninConeClosed(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randCircuit(r)
		for _, n := range c.Nets() {
			cone := c.FaninCone(n.ID)
			// Closure: every driver input of a cone member is in the cone.
			for m := range cone {
				d := c.Net(m).Driver
				if d == NoGate {
					continue
				}
				for _, in := range c.Gate(d).Inputs {
					if !cone[in] {
						return false
					}
				}
			}
			if !cone[n.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStatsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randCircuit(r)
		s := c.Stats()
		return s.Gates == c.NumGates() &&
			s.Nets == c.NumNets()-len(c.PIs()) &&
			s.Couplings == c.NumCouplings()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}
