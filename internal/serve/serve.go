// Package serve is the batch-query layer over one noise model: an
// Analyzer, built once per noise.Model, memoizes the expensive
// per-configuration engine state (the all-aggressor fixpoint, victim
// selection, primary envelopes, dominance intervals, elimination
// totals) behind a concurrency-safe cache and answers many top-k and
// what-if queries against the shared state — serially via Do, or with
// a worker pool via RunBatch.
//
// The point is amortization: a cold core.TopK* call repays the whole
// engine setup on every query, so a k-sweep or a per-net scan over a
// design performs the same preparation r×k times. An Analyzer performs
// the fixpoint once per model and each (mode, target) preparation once,
// after which queries only pay for their own enumeration.
//
// Sharing is safe because everything cached is strictly read-only
// after construction: core.Shared never mutates its prepared state,
// and noise.Model, noise.Analysis and circuit.Circuit are never
// written during analysis (see their package docs). Determinism is
// preserved — a query's Response is byte-for-byte the same whether the
// batch ran with 1 worker or 64, and identical to a cold core call
// with the same configuration (wall-clock fields aside).
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"topkagg/internal/circuit"
	"topkagg/internal/core"
	"topkagg/internal/noise"
)

// WholeCircuit selects the circuit outputs as a query's target.
const WholeCircuit = core.WholeCircuit

// Op selects what a Query computes.
type Op int

const (
	// Addition asks for the top-k aggressors addition sets (which k
	// couplings add the most delay to noiseless timing).
	Addition Op = iota
	// Elimination asks for the top-k aggressors elimination sets
	// (which k couplings to fix for the largest delay recovery).
	Elimination
	// WhatIf evaluates one explicit scenario: the circuit (or target
	// net) delay after deactivating Query.Fix on top of the active
	// mask, via incremental re-analysis of the cached fixpoint.
	WhatIf
)

func (op Op) String() string {
	switch op {
	case Addition:
		return "addition"
	case Elimination:
		return "elimination"
	case WhatIf:
		return "whatif"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// Query is one unit of work for an Analyzer.
type Query struct {
	// Op selects the computation.
	Op Op
	// Net restricts the analysis to one net's arrival; WholeCircuit
	// (-1) analyzes the circuit outputs.
	Net circuit.NetID
	// K is the requested cardinality for top-k ops (the full
	// per-cardinality curve 1..K is returned, so a k-sweep is one
	// query). Ignored by WhatIf.
	K int
	// Fix lists the couplings a WhatIf scenario deactivates.
	Fix []circuit.CouplingID
}

// Response is the outcome of one Query, aligned with it by index in
// RunBatch's result.
type Response struct {
	// Query echoes the request.
	Query Query
	// Result holds the top-k outcome (nil for WhatIf or on error). Its
	// Stats carry the per-cardinality engine counters plus the cache
	// hit/miss of this query's shared-state lookup.
	Result *core.Result
	// Delay is a WhatIf scenario's resulting delay, ns.
	Delay float64
	// Err reports a failed query; other queries in the batch are
	// unaffected.
	Err error
}

// Stats aggregates what an Analyzer's caches did across all queries.
type Stats struct {
	// Queries is the number of queries answered (including failed ones).
	Queries int64
	// PrepHits / PrepMisses count shared-state cache lookups: a hit
	// reused a memoized (mode, target) preparation, a miss built one.
	PrepHits   int64
	PrepMisses int64
	// FixpointRuns is the number of full noise fixpoints executed (at
	// most one per Analyzer; cold core calls pay one per query).
	FixpointRuns int64
}

// Analyzer answers top-k and what-if queries over one noise model,
// memoizing shared engine state across queries. All methods are safe
// for concurrent use.
type Analyzer struct {
	m   *noise.Model
	opt core.Options

	fullOnce sync.Once
	full     *noise.Analysis
	fullErr  error

	mu    sync.Mutex
	preps map[prepKey]*prepEntry

	queries, hits, misses, fixpoints atomic.Int64

	obs *serveObs // resolved from the model's registry; nil disables
}

type prepKey struct {
	elim bool
	net  circuit.NetID
}

// prepEntry builds its Shared exactly once; concurrent first queries
// for the same key block on the sync.Once instead of preparing twice.
type prepEntry struct {
	once   sync.Once
	shared *core.Shared
	err    error
}

// NewAnalyzer creates an Analyzer over the model with the given
// enumeration options. The options are fixed for the Analyzer's
// lifetime — they shape the cached state (victim selection, active
// mask), so varying them requires a separate Analyzer. When the model
// carries a metric registry (noise.Model.Obs), the Analyzer publishes
// per-query latency and cache metrics to it.
func NewAnalyzer(m *noise.Model, opt core.Options) *Analyzer {
	return &Analyzer{m: m, opt: opt, preps: map[prepKey]*prepEntry{}, obs: newServeObs(m.Obs)}
}

// fullAnalysis memoizes the one fixpoint run every preparation and
// what-if hangs off.
func (a *Analyzer) fullAnalysis() (*noise.Analysis, error) {
	a.fullOnce.Do(func() {
		a.fixpoints.Add(1)
		if a.obs != nil {
			a.obs.fixpoints.Inc()
		}
		a.full, a.fullErr = a.m.Run(a.opt.Active)
	})
	return a.full, a.fullErr
}

// sharedFor returns the memoized shared state for one (mode, target)
// configuration, building it on first use. hit reports whether the
// entry already existed.
func (a *Analyzer) sharedFor(elim bool, net circuit.NetID) (shared *core.Shared, hit bool, err error) {
	key := prepKey{elim: elim, net: net}
	a.mu.Lock()
	e, ok := a.preps[key]
	if !ok {
		e = &prepEntry{}
		a.preps[key] = e
	}
	a.mu.Unlock()
	if ok {
		a.hits.Add(1)
		if a.obs != nil {
			a.obs.prepHits.Inc()
		}
	} else {
		a.misses.Add(1)
		if a.obs != nil {
			a.obs.prepMiss.Inc()
		}
	}
	e.once.Do(func() {
		full, ferr := a.fullAnalysis()
		if ferr != nil {
			e.err = ferr
			return
		}
		if elim {
			e.shared, e.err = core.PrepareEliminationFrom(a.m, full, net, a.opt)
		} else {
			e.shared, e.err = core.PrepareAdditionFrom(a.m, full, net, a.opt)
		}
	})
	return e.shared, ok, e.err
}

// Do answers one query. Errors are reported in the Response, never
// panicked, so a batch survives malformed entries.
func (a *Analyzer) Do(q Query) Response {
	a.queries.Add(1)
	var start time.Time
	if a.obs != nil {
		start = time.Now()
	}
	resp := Response{Query: q}
	defer func() { a.obs.queryDone(q.Op, start, resp.Err != nil) }()
	if q.Net != WholeCircuit && (int(q.Net) < 0 || int(q.Net) >= a.m.C.NumNets()) {
		resp.Err = fmt.Errorf("serve: no net %d in circuit %s", q.Net, a.m.C.Name)
		return resp
	}
	switch q.Op {
	case Addition, Elimination:
		if q.K < 1 {
			resp.Err = fmt.Errorf("serve: %s query needs k >= 1, got %d", q.Op, q.K)
			return resp
		}
		shared, hit, err := a.sharedFor(q.Op == Elimination, q.Net)
		if err != nil {
			resp.Err = err
			return resp
		}
		res, err := shared.TopK(q.K)
		if err != nil {
			resp.Err = err
			return resp
		}
		if hit {
			res.Stats.CacheHits = 1
		} else {
			res.Stats.CacheMisses = 1
		}
		resp.Result = res
	case WhatIf:
		resp.Delay, resp.Err = a.whatIf(q)
	default:
		resp.Err = fmt.Errorf("serve: unknown query op %d", int(q.Op))
	}
	return resp
}

// whatIf evaluates the delay after deactivating q.Fix, incrementally
// against the cached fixpoint.
func (a *Analyzer) whatIf(q Query) (float64, error) {
	full, err := a.fullAnalysis()
	if err != nil {
		return 0, err
	}
	prevMask := a.opt.Active
	var mask noise.Mask
	if prevMask == nil {
		mask = noise.AllMask(a.m.C)
	} else {
		mask = prevMask.Clone()
	}
	for _, id := range q.Fix {
		if int(id) < 0 || int(id) >= a.m.C.NumCouplings() {
			return 0, fmt.Errorf("serve: no coupling %d in circuit %s", id, a.m.C.Name)
		}
		mask[id] = false
	}
	an, _, err := a.m.RunIncremental(full, prevMask, mask)
	if err != nil {
		return 0, err
	}
	if q.Net != WholeCircuit {
		return an.Timing.Window(q.Net).LAT, nil
	}
	return an.CircuitDelay(), nil
}

// Stats snapshots the Analyzer's cache counters.
func (a *Analyzer) Stats() Stats {
	return Stats{
		Queries:      a.queries.Load(),
		PrepHits:     a.hits.Load(),
		PrepMisses:   a.misses.Load(),
		FixpointRuns: a.fixpoints.Load(),
	}
}
