package core

import (
	"context"
	"math"
	"testing"

	"topkagg/internal/budget"
	"topkagg/internal/gen"
	"topkagg/internal/noise"
)

// TestTopKCtxPreCanceled pins the hard-stop contract at the engine
// entry point: a context canceled before the call never produces a
// result — the preparation itself is refused with a typed
// cancellation error.
func TestTopKCtxPreCanceled(t *testing.T) {
	c, err := gen.Build(gen.Spec{Name: "budget", Gates: 20, Couplings: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := TopKAdditionCtx(ctx, noise.NewModel(c), 3, Options{})
	if err == nil {
		t.Fatalf("pre-canceled context returned a result: %+v", res)
	}
	if reason := budget.ReasonOf(err); reason != budget.Canceled {
		t.Fatalf("error reason = %v, want Canceled: %v", reason, err)
	}
}

// TestWorkBudgetPartialPrefix sweeps the work allowance from starvation
// to completion and pins the Partial contract: a budgeted run never
// errors on work exhaustion, reports WorkExhausted in Stopped, and its
// PerK is a strict prefix of the unbounded run's curve — identical
// selections and scores cardinality by cardinality. The sweep must
// observe at least one non-empty partial prefix on its way up, so the
// prefix property is exercised, not vacuously true.
func TestWorkBudgetPartialPrefix(t *testing.T) {
	c, err := gen.Build(gen.Spec{Name: "budget", Gates: 20, Couplings: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// NoRescore keeps Delay == Estimate on both sides so prefix entries
	// compare exactly.
	opt := Options{NoRescore: true}
	s, err := PrepareAddition(noise.NewModel(c), WholeCircuit, opt)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.TopK(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.PerK) < 2 {
		t.Fatalf("reference curve too short to exercise prefixes: %d cardinalities", len(ref.PerK))
	}

	sawPrefix := false
	for w := int64(1); ; w *= 2 {
		if w > 1<<40 {
			t.Fatal("enumeration never completed within any work budget")
		}
		res, err := s.TopKBudget(budget.WithWork(context.Background(), w), 4)
		if err != nil {
			t.Fatalf("work budget %d: unexpected hard error: %v", w, err)
		}
		if !res.Partial {
			// Completion: the budgeted run must equal the unbounded one.
			if len(res.PerK) != len(ref.PerK) {
				t.Fatalf("complete budgeted run has %d cardinalities, reference %d", len(res.PerK), len(ref.PerK))
			}
			comparePrefix(t, w, res, ref)
			break
		}
		if res.Stopped == nil {
			t.Fatalf("work budget %d: Partial result carries no Stopped condition", w)
		}
		if reason := budget.ReasonOf(res.Stopped); reason != budget.WorkExhausted {
			t.Errorf("work budget %d: Stopped reason = %v, want WorkExhausted", w, reason)
		}
		if len(res.PerK) >= len(ref.PerK) {
			t.Errorf("work budget %d: partial result claims %d cardinalities, reference has %d",
				w, len(res.PerK), len(ref.PerK))
		}
		comparePrefix(t, w, res, ref)
		if len(res.PerK) > 0 {
			sawPrefix = true
		}
	}
	if !sawPrefix {
		t.Error("sweep never observed a non-empty partial prefix; budgets jumped from empty to complete")
	}
}

// comparePrefix asserts every completed cardinality of a (possibly
// partial) result is bit-identical to the unbounded reference.
func comparePrefix(t *testing.T, w int64, got, ref *Result) {
	t.Helper()
	for i, sel := range got.PerK {
		want := ref.PerK[i]
		if len(sel.IDs) != len(want.IDs) {
			t.Errorf("work budget %d, k=%d: %d aggressors selected, reference %d", w, i+1, len(sel.IDs), len(want.IDs))
			continue
		}
		for j := range sel.IDs {
			if sel.IDs[j] != want.IDs[j] {
				t.Errorf("work budget %d, k=%d: selection differs from unbounded run", w, i+1)
				break
			}
		}
		if math.Float64bits(sel.Estimate) != math.Float64bits(want.Estimate) ||
			math.Float64bits(sel.Delay) != math.Float64bits(want.Delay) {
			t.Errorf("work budget %d, k=%d: completed cardinality score differs from unbounded run", w, i+1)
		}
	}
}

// TestFixpointPreCanceled pins the same refusal one layer down: the
// noise fixpoint under an already-canceled context returns a typed
// cancellation error, not a half-swept analysis.
func TestFixpointPreCanceled(t *testing.T) {
	c, err := gen.Build(gen.Spec{Name: "budget", Gates: 20, Couplings: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	an, err := noise.NewModel(c).RunCtx(ctx, nil)
	if err == nil {
		t.Fatalf("pre-canceled fixpoint returned an analysis: %v", an)
	}
	if reason := budget.ReasonOf(err); reason != budget.Canceled {
		t.Fatalf("error reason = %v, want Canceled: %v", reason, err)
	}
}
