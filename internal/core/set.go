package core

import (
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"topkagg/internal/circuit"
	"topkagg/internal/waveform"
)

// aggSet is one candidate aggressor set at a specific victim net: the
// coupling IDs it contains, its combined noise envelope expressed at
// that victim, and its score there (delay noise for the addition
// problem, delay-noise reduction for elimination).
type aggSet struct {
	ids []circuit.CouplingID // sorted, unique
	env waveform.PWL         // combined local envelope at the current victim
	// shift is the arrival-time reduction inherited from the fanin
	// (elimination only): propagated shifts do not superpose linearly
	// as envelopes, so they are carried explicitly and applied to the
	// victim's propagated-noise pseudo envelope during scoring.
	shift float64
	score float64
	// ckey memoizes key(). Not goroutine-safe to materialize lazily
	// from several goroutines, but every set crosses a level barrier
	// through dedupe — which calls key() on the owning worker — before
	// any other victim's generation can reach it, so concurrent readers
	// only ever see a settled value.
	ckey string
	// dig memoizes the set's envelope digest. A set belongs to exactly
	// one victim (intern keys carry the victim; run-local sets never
	// leave their victim's lists), so the dominance interval the digest
	// covers is a constant of the set and the digest is a pure function
	// of immutable fields — racing fills store identical content, and
	// the atomic pointer orders the fill before any reader's use.
	dig atomic.Pointer[envDigest]
}

// key returns a canonical identity string for deduplication, memoized
// on first use (candidate identity is consulted by dedupe, sorting,
// Rule-2 gathering and the envelope cache — building the string once
// keeps it off the enumeration's allocation profile).
func (s *aggSet) key() string {
	if s.ckey == "" {
		var sb strings.Builder
		for i, id := range s.ids {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(int(id)))
		}
		s.ckey = sb.String()
	}
	return s.ckey
}

// contains reports whether the set already holds coupling id.
func (s *aggSet) contains(id circuit.CouplingID) bool {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	return i < len(s.ids) && s.ids[i] == id
}

// withID returns a new sorted ID slice extending s by id. The caller
// must ensure id is not already present.
func (s *aggSet) withID(id circuit.CouplingID) []circuit.CouplingID {
	out := make([]circuit.CouplingID, 0, len(s.ids)+1)
	ins := false
	for _, x := range s.ids {
		if !ins && id < x {
			out = append(out, id)
			ins = true
		}
		out = append(out, x)
	}
	if !ins {
		out = append(out, id)
	}
	return out
}

// copyIDs returns a defensive copy of an ID slice.
func copyIDs(ids []circuit.CouplingID) []circuit.CouplingID {
	out := make([]circuit.CouplingID, len(ids))
	copy(out, ids)
	return out
}

// dedupe collapses candidates with identical ID sets, keeping the
// higher score (identical sets can be generated through different
// construction rules with different envelope models; the higher score
// is the sharper estimate).
func dedupe(cands []*aggSet) []*aggSet {
	byKey := make(map[string]int, len(cands))
	out := make([]*aggSet, 0, len(cands))
	for _, c := range cands {
		k := c.key()
		if i, ok := byKey[k]; ok {
			if c.score > out[i].score {
				out[i] = c
			}
			continue
		}
		byKey[k] = len(out)
		out = append(out, c)
	}
	return out
}

// sortByScore orders candidates by descending score, breaking ties by
// canonical key so the enumeration is deterministic.
func sortByScore(cands []*aggSet) {
	// Duplicates are gone by the time this runs, so equal scores always
	// separate on the canonical key and the comparator is a strict
	// total order: the sorted order is unique, independent of the sort
	// algorithm. SortStableFunc avoids SliceStable's reflection-based
	// swapper on this hot path.
	slices.SortStableFunc(cands, func(a, b *aggSet) int {
		if a.score != b.score {
			if a.score > b.score {
				return -1
			}
			return 1
		}
		return strings.Compare(a.key(), b.key())
	})
}

// Pruning of candidate lists into irredundant lists lives in
// digest.go (type pruner): the Theorem-1 dominance check is fronted by
// a conservative grid-sample prefilter there.
