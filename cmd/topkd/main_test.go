package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestRunBadFlags pins the exit-code contract for unusable invocations.
func TestRunBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, exitUsage},
		{"negative inflight", []string{"-max-inflight=-1"}, exitErr},
		{"zero body cap", []string{"-max-body=0"}, exitErr},
		{"malformed preload", []string{"-preload", "nameonly"}, exitErr},
		{"missing preload file", []string{"-preload", "m=/does/not/exist.ckt"}, exitErr},
	}
	for _, tc := range cases {
		var out, errb bytes.Buffer
		if got := run(context.Background(), tc.args, &out, &errb, nil); got != tc.want {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, got, tc.want, errb.String())
		}
	}
}

// TestRunServeAndShutdown boots the real daemon on an ephemeral port
// with a preloaded model, serves a health check and a query over real
// TCP, then cancels the parent context and expects a graceful exit.
func TestRunServeAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var out, errb bytes.Buffer
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-preload", "c17=../../testdata/c17.ckt",
			"-shutdown-grace", "5s",
		}, &out, &errb, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case code := <-done:
		t.Fatalf("daemon exited early with %d: %s", code, errb.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	base := "http://" + addr
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	qresp, err := http.Post(base+"/v1/models/c17/query", "application/json",
		strings.NewReader(`{"op":"addition","k":2}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(qresp.Body)
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", qresp.StatusCode, body)
	}
	var wr struct {
		Op     string `json:"op"`
		Result *struct {
			K int `json:"k"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatalf("query body: %v (%s)", err, body)
	}
	if wr.Op != "addition" || wr.Result == nil || wr.Result.K != 2 {
		t.Errorf("query result: %s", body)
	}

	// Debug tree rides the same listener by default.
	dresp, err := http.Get(base + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("debug metrics: status %d", dresp.StatusCode)
	}

	cancel()
	select {
	case code := <-done:
		if code != exitOK {
			t.Fatalf("graceful shutdown: exit %d (stderr: %s)", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never exited after cancel")
	}
	for _, want := range []string{"preloaded model", "draining", "stopped"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q: %s", want, out.String())
		}
	}
}

// TestPreloadsFlag covers the repeatable flag.Value.
func TestPreloadsFlag(t *testing.T) {
	var p repeated
	for i := 0; i < 3; i++ {
		if err := p.Set(fmt.Sprintf("m%d=f%d", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.String(); got != "m0=f0,m1=f1,m2=f2" {
		t.Errorf("preloads.String() = %q", got)
	}
}

// TestParseFaults pins the -fault grammar.
func TestParseFaults(t *testing.T) {
	plan, err := parseFaults([]string{
		"snapshot.write:on=2,delay=10ms,err=disk on fire",
		"serve.query:every=3,panic",
		"snapshot.restore:err=",
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("nil plan")
	}
	for _, bad := range []string{
		"nosite",         // missing colon
		":on=1",          // empty site
		"s:frobnicate=1", // unknown key
		"s:on=x",         // bad int
		"s:delay=fast",   // bad duration
	} {
		if _, err := parseFaults([]string{bad}); err == nil {
			t.Errorf("parseFaults(%q) accepted", bad)
		}
	}
}

// TestStateDirWarmRestart drives the daemon's persistence path end to
// end: boot with a state dir and a preload, shut down (final
// snapshot), boot again with no preload, and expect the model to come
// back warm and answer queries.
func TestStateDirWarmRestart(t *testing.T) {
	dir := t.TempDir()
	boot := func(args []string) (addr string, cancel context.CancelFunc, done chan int, out *bytes.Buffer) {
		t.Helper()
		ctx, cf := context.WithCancel(context.Background())
		ready := make(chan string, 1)
		done = make(chan int, 1)
		out = &bytes.Buffer{}
		var errb bytes.Buffer
		go func() { done <- run(ctx, args, out, &errb, ready) }()
		select {
		case addr = <-ready:
		case code := <-done:
			t.Fatalf("daemon exited early with %d: %s", code, errb.String())
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never became ready")
		}
		return addr, cf, done, out
	}
	stopOK := func(cancel context.CancelFunc, done chan int) {
		t.Helper()
		cancel()
		select {
		case code := <-done:
			if code != exitOK {
				t.Fatalf("shutdown exit %d", code)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon never exited")
		}
	}
	query := func(addr string) []byte {
		t.Helper()
		resp, err := http.Post("http://"+addr+"/v1/models/c17/query", "application/json",
			strings.NewReader(`{"op":"addition","k":2}`))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query: status %d: %s", resp.StatusCode, body)
		}
		return body
	}

	addr, cancel, done, out := boot([]string{
		"-addr", "127.0.0.1:0",
		"-preload", "c17=../../testdata/c17.ckt",
		"-state-dir", dir,
		"-snapshot-interval", "0",
	})
	cold := query(addr)
	stopOK(cancel, done)
	if !strings.Contains(out.String(), "state saved") {
		t.Fatalf("first run never saved state: %s", out.String())
	}

	addr, cancel, done, out = boot([]string{
		"-addr", "127.0.0.1:0",
		"-state-dir", dir,
		"-snapshot-interval", "0",
	})
	defer cancel()
	if !strings.Contains(out.String(), `restored model "c17" (warm)`) {
		t.Fatalf("second run not warm: %s", out.String())
	}
	if warm := query(addr); !bytes.Equal(cold, warm) {
		t.Errorf("restored response differs from pre-restart response:\ncold: %s\nwarm: %s", cold, warm)
	}
	stopOK(cancel, done)
}
