package bruteforce

import (
	"math"
	"testing"
	"time"

	"topkagg/internal/cell"
	"topkagg/internal/circuit"
	"topkagg/internal/netlist"
	"topkagg/internal/noise"
)

const threeCouplings = `circuit t
output y z w
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 b -> m1
gate h2 INV_X1 m1 -> z
gate f1 INV_X1 d -> p1
gate f2 INV_X1 p1 -> w
couple n1 m1 3.0
couple m1 p1 2.0
couple n1 p1 1.0
`

func model(t *testing.T) *noise.Model {
	t.Helper()
	c, err := netlist.ParseString(threeCouplings, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	return noise.NewModel(c)
}

func TestCombinations(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {52, 5, 2598960}, {3, 4, 0}, {3, -1, 0},
	}
	for _, tc := range cases {
		if got := Combinations(tc.n, tc.k); math.Abs(got-tc.want) > 1e-6 {
			t.Errorf("C(%d,%d) = %g, want %g", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestAdditionFindsWorstSingle(t *testing.T) {
	m := model(t)
	res, err := Addition(m, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 3 {
		t.Fatalf("evaluated %d scenarios, want 3", res.Evaluated)
	}
	// Verify optimality against direct evaluation.
	for id := 0; id < 3; id++ {
		an, err := m.Run(noise.MaskOf(m.C, []circuit.CouplingID{circuit.CouplingID(id)}))
		if err != nil {
			t.Fatal(err)
		}
		if an.CircuitDelay() > res.Delay+1e-12 {
			t.Fatalf("coupling %d beats reported optimum", id)
		}
	}
	if len(res.IDs) != 1 {
		t.Fatalf("IDs = %v", res.IDs)
	}
}

func TestAdditionExhaustsPairs(t *testing.T) {
	m := model(t)
	res, err := Addition(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 3 { // C(3,2)
		t.Fatalf("evaluated %d, want 3", res.Evaluated)
	}
	one, err := Addition(m, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay < one.Delay-1e-12 {
		t.Fatal("larger addition sets cannot reduce the worst-case delay")
	}
}

func TestEliminationFullSetRecoversBase(t *testing.T) {
	m := model(t)
	res, err := Elimination(m, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.Run(noise.NewMask(m.C))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Delay-base.CircuitDelay()) > 1e-9 {
		t.Fatalf("removing every coupling must recover the noiseless delay: %g vs %g",
			res.Delay, base.CircuitDelay())
	}
}

func TestAdditionEliminationBracket(t *testing.T) {
	m := model(t)
	all, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	add1, err := Addition(m, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	del1, err := Elimination(m, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := all.Base.CircuitDelay()
	if !(base <= add1.Delay+1e-12 && add1.Delay <= all.CircuitDelay()+1e-12) {
		t.Fatalf("addition delay out of bracket: base=%g add=%g all=%g", base, add1.Delay, all.CircuitDelay())
	}
	if !(base-1e-12 <= del1.Delay && del1.Delay <= all.CircuitDelay()+1e-12) {
		t.Fatalf("elimination delay out of bracket: base=%g del=%g all=%g", base, del1.Delay, all.CircuitDelay())
	}
}

func TestKRangeValidation(t *testing.T) {
	m := model(t)
	if _, err := Addition(m, 0, 0); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := Addition(m, 4, 0); err == nil {
		t.Fatal("k > r must error")
	}
}

func TestDeadline(t *testing.T) {
	m := model(t)
	res, err := Addition(m, 2, time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut && res.Evaluated >= 3 {
		// All 3 pairs evaluated before the (tiny) deadline was ever
		// checked; acceptable but the flag must then be false.
		return
	}
	if !res.TimedOut {
		t.Fatalf("expected timeout flag, got %+v", res)
	}
}
