package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of every registered metric,
// JSON-serializable for machine consumers (cmd/benchjson, the debug
// endpoint) and renderable as a human table (WriteTable).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every metric. A nil registry
// yields an empty (but usable) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	for _, name := range r.counterNames() {
		s.Counters[name] = r.Counter(name).Value()
	}
	for _, name := range r.histNames() {
		s.Histograms[name] = r.Histogram(name).snapshot()
	}
	return s
}

// isDuration reports whether a metric name denotes nanosecond
// durations by convention: a "_ns" suffix (optionally before a
// "/label" qualifier) or a "span." prefix.
func isDuration(name string) bool {
	if strings.HasPrefix(name, "span.") {
		return true
	}
	base := name
	if i := strings.IndexByte(base, '/'); i >= 0 {
		base = base[:i]
	}
	return strings.HasSuffix(base, "_ns")
}

// fmtVal renders one histogram value, as a duration for *_ns/span
// metrics and as a plain integer otherwise.
func fmtVal(name string, v int64) string {
	if isDuration(name) {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%d", v)
}

// WriteTable renders the snapshot as a two-section human summary:
// counters first, then histograms with count/mean/p50/p99/max, both
// sorted by name. Duration-valued histograms render as durations.
func (s *Snapshot) WriteTable(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sortStrings(names)
	if len(names) > 0 {
		if _, err := fmt.Fprintf(w, "%-44s %12s\n", "counter", "value"); err != nil {
			return err
		}
		for _, n := range names {
			if _, err := fmt.Fprintf(w, "%-44s %12d\n", n, s.Counters[n]); err != nil {
				return err
			}
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sortStrings(names)
	if len(names) > 0 {
		if _, err := fmt.Fprintf(w, "%-44s %10s %12s %12s %12s %12s\n",
			"histogram", "count", "mean", "p50", "p99", "max"); err != nil {
			return err
		}
		for _, n := range names {
			h := s.Histograms[n]
			mean := fmtVal(n, int64(h.Mean))
			if _, err := fmt.Fprintf(w, "%-44s %10d %12s %12s %12s %12s\n",
				n, h.Count, mean, fmtVal(n, h.P50), fmtVal(n, h.P99), fmtVal(n, h.Max)); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortStrings(s []string) { sort.Strings(s) }
