// Command topkd serves top-k aggressor analysis over HTTP/JSON: a
// named-model registry (upload a netlist or verilog+spef+liberty),
// query endpoints for addition/elimination/what-if including batches
// and NDJSON-streamed k-sweeps, per-request timeout/work budgets, and
// admission control bounding concurrent work. See README "Running the
// server" for the endpoint reference and curl examples.
//
//	topkd -addr localhost:8080
//	topkd -addr :8080 -preload c17=testdata/c17.ckt -max-inflight 64
//
// The /debug/ tree (metrics snapshot, expvar, pprof) rides the same
// listener unless -no-debug is set. SIGINT/SIGTERM drain gracefully:
// admission starts answering 503, in-flight requests finish, then the
// listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"topkagg/internal/httpapi"
	"topkagg/internal/netlist"
	"topkagg/internal/obs"

	"topkagg/internal/cell"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr, nil))
}

const (
	exitOK    = 0
	exitErr   = 1
	exitUsage = 2
)

// preloads collects repeated -preload name=path flags.
type preloads []string

func (p *preloads) String() string     { return strings.Join(*p, ",") }
func (p *preloads) Set(s string) error { *p = append(*p, s); return nil }

// run is the whole daemon: parse flags, boot, serve until the parent
// context (or a signal) stops it. ready, when non-nil, receives the
// bound listen address once the server is accepting — tests use it to
// drive a real listener without racing the boot.
func run(parent context.Context, args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("topkd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8080", "listen address")
	maxInFlight := fs.Int("max-inflight", 64, "max concurrently executing requests (0 = unlimited)")
	maxQueue := fs.Int("max-queue", 128, "max requests waiting for a slot before 429")
	maxBody := fs.Int64("max-body", 8<<20, "request body size cap in bytes")
	defaultTimeout := fs.Duration("default-timeout", 0, "timeout applied to queries that name none (0 = none)")
	maxTimeout := fs.Duration("max-timeout", 0, "clamp on every per-query timeout (0 = no clamp)")
	maxWork := fs.Int64("max-work", 0, "clamp on every per-query work allowance (0 = no clamp)")
	fixWorkers := fs.Int("fixpoint-workers", 0, "worker goroutines per noise-fixpoint sweep (0 = GOMAXPROCS)")
	noDebug := fs.Bool("no-debug", false, "disable the /debug/ tree (metrics, expvar, pprof)")
	shutdownGrace := fs.Duration("shutdown-grace", 10*time.Second, "drain window before in-flight requests are cut off")
	var pre preloads
	fs.Var(&pre, "preload", "name=path: register a native netlist at boot (repeatable)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *maxInFlight < 0 || *maxQueue < 0 || *maxBody <= 0 || *defaultTimeout < 0 ||
		*maxTimeout < 0 || *maxWork < 0 || *fixWorkers < 0 {
		fmt.Fprintln(stderr, "topkd: limits must be non-negative (and -max-body positive)")
		return exitErr
	}

	cfg := httpapi.Config{
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *maxQueue,
		MaxBodyBytes:    *maxBody,
		DefaultTimeout:  *defaultTimeout,
		MaxTimeout:      *maxTimeout,
		MaxWork:         *maxWork,
		FixpointWorkers: *fixWorkers,
	}
	if !*noDebug {
		cfg.Obs = obs.New()
		cfg.Obs.PublishExpvar("topkagg")
	}
	api := httpapi.NewServer(cfg)
	for _, p := range pre {
		name, path, ok := strings.Cut(p, "=")
		if !ok {
			fmt.Fprintf(stderr, "topkd: -preload wants name=path, got %q\n", p)
			return exitErr
		}
		if err := preload(api, name, path); err != nil {
			fmt.Fprintln(stderr, "topkd:", err)
			return exitErr
		}
		fmt.Fprintf(stdout, "preloaded model %q from %s\n", name, path)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "topkd:", err)
		return exitErr
	}
	srv := &http.Server{Handler: api}
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "topkd listening on http://%s/\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "topkd:", err)
		return exitErr
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "topkd: draining...")
	api.Drain()
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "topkd: shutdown:", err)
		return exitErr
	}
	fmt.Fprintln(stdout, "topkd: stopped")
	return exitOK
}

// preload registers one native-netlist file under name.
func preload(api *httpapi.Server, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	c, err := netlist.Parse(f, cell.Default())
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return api.Preload(name, "netlist", c)
}
