package topkagg_test

import (
	"fmt"

	"topkagg"
)

// The quickstart flow: parse, analyze, enumerate.
func Example() {
	c, err := topkagg.ParseNetlistString(`
circuit example
output y
gate g1 NAND2_X1 a b -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 c -> m1
couple n1 m1 2.5
couple y m1 1.0
`)
	if err != nil {
		panic(err)
	}
	m := topkagg.NewModel(c)
	res, err := topkagg.TopKAddition(m, 2, topkagg.ExactOptions())
	if err != nil {
		panic(err)
	}
	for i, s := range res.PerK {
		fmt.Printf("top-%d: %d coupling(s)\n", i+1, len(s.IDs))
	}
	// Output:
	// top-1: 1 coupling(s)
	// top-2: 2 coupling(s)
}

func ExampleCouplingString() {
	c, _ := topkagg.ParseNetlistString(`
circuit s
output y
gate g1 INV_X1 a -> y
gate h1 INV_X1 b -> z
couple y z 1.75
`)
	fmt.Println(topkagg.CouplingString(c, 0))
	// Output:
	// y<->z (1.75 fF)
}

func ExampleModel_Run() {
	c, _ := topkagg.ParseNetlistString(`
circuit s
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 b -> m1
couple n1 m1 3.0
`)
	m := topkagg.NewModel(c)
	quiet, _ := m.Run(make(topkagg.Mask, c.NumCouplings())) // nothing switching
	noisy, _ := m.Run(nil)                                  // all aggressors
	fmt.Println(noisy.CircuitDelay() > quiet.CircuitDelay())
	// Output:
	// true
}

func ExampleGoodK() {
	c, _ := topkagg.GenerateBenchmark("i1")
	m := topkagg.NewModel(c)
	res, _ := topkagg.TopKAddition(m, 15, topkagg.Options{})
	k, settled, _ := topkagg.GoodK(res, topkagg.KneeParams{Frac: 0.08, Window: 3})
	fmt.Println(k >= 1 && k <= 15, settled || k == 15)
	// Output:
	// true true
}
