package verilog

import (
	"testing"

	"topkagg/internal/cell"
)

// FuzzParse checks the Verilog-subset parser never panics and accepts
// only inputs whose canonical rewrite it accepts again.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("module t (y); output y; INV_X1 g (.A(a), .Y(y)); endmodule")
	f.Add("module t (); endmodule")
	f.Add("/* unterminated")
	f.Add("// just a comment")
	f.Add("module t (y;\n")
	f.Add("module m (a); input a; wire w; endmodule junk")
	lib := cell.Default()
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src, lib)
		if err != nil {
			return
		}
		out := String(c)
		if _, err := ParseString(out, lib); err != nil {
			t.Fatalf("canonical Verilog rejected: %v\n%s", err, out)
		}
	})
}
