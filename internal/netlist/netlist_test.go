package netlist

import (
	"strings"
	"testing"

	"topkagg/internal/cell"
)

const sample = `
# small coupled chain
circuit demo
input a b
output y
net n1 cg=5.5 rw=0.4 x=10 y=20
gate g1 NAND2_X1 a b -> n1
gate g2 INV_X2 n1 -> y
couple n1 b 1.8
couple n1 y 0.9
`

func TestParseSample(t *testing.T) {
	c, err := ParseString(sample, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "demo" {
		t.Fatalf("name = %q", c.Name)
	}
	if c.NumGates() != 2 || c.NumCouplings() != 2 {
		t.Fatalf("sizes: %d gates, %d couplings", c.NumGates(), c.NumCouplings())
	}
	n1, ok := c.NetByName("n1")
	if !ok {
		t.Fatal("n1 missing")
	}
	net := c.Net(n1)
	if net.Cgnd != 5.5 || net.Rwire != 0.4 || net.X != 10 || net.Y != 20 {
		t.Fatalf("net attributes not applied: %+v", net)
	}
	pos := c.POs()
	if len(pos) != 1 || c.Net(pos[0]).Name != "y" {
		t.Fatalf("POs = %v", pos)
	}
}

func TestParseNetAttrAfterUse(t *testing.T) {
	src := `circuit t
gate g1 INV_X1 a -> y
net y cg=9
`
	c, err := ParseString(src, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	y, _ := c.NetByName("y")
	if c.Net(y).Cgnd != 9 {
		t.Fatal("late net line must override attributes")
	}
}

func TestParseComments(t *testing.T) {
	src := "circuit t # trailing\n# full line\ngate g1 INV_X1 a -> y # another\n"
	if _, err := ParseString(src, cell.Default()); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"unknown keyword", "bogus x\n", "unknown keyword"},
		{"circuit arity", "circuit a b\n", "one name"},
		{"net no name", "net\n", "wants a name"},
		{"bad attr form", "net n cg\n", "not key=value"},
		{"bad attr value", "net n cg=abc\n", "invalid syntax"},
		{"unknown attr", "net n zz=1\n", "unknown net attribute"},
		{"gate short", "gate g INV_X1 a\n", "gate wants"},
		{"gate no arrow", "gate g INV_X1 a b y\n", "->"},
		{"gate bad cell", "gate g NOPE a -> y\n", "no cell"},
		{"gate pin count", "gate g NAND2_X1 a -> y\n", "wants 2 inputs"},
		{"couple arity", "couple a b\n", "couple wants"},
		{"couple bad cc", "couple a b x\n", "invalid syntax"},
		{"couple self", "couple a a 1\n", "self-coupling"},
		{"unknown output", "output q\n", "unknown output net"},
	}
	for _, tc := range cases {
		_, err := ParseString(tc.src, cell.Default())
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestParseReportsLineNumbers(t *testing.T) {
	src := "circuit t\n\nbogus\n"
	_, err := ParseString(src, cell.Default())
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line 3 in error, got %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	lib := cell.Default()
	c1, err := ParseString(sample, lib)
	if err != nil {
		t.Fatal(err)
	}
	text := String(c1)
	c2, err := ParseString(text, lib)
	if err != nil {
		t.Fatalf("re-parse of canonical form failed: %v\n%s", err, text)
	}
	if String(c2) != text {
		t.Fatalf("canonical form not a fixpoint:\n--- first\n%s\n--- second\n%s", text, String(c2))
	}
	if c2.NumGates() != c1.NumGates() || c2.NumCouplings() != c1.NumCouplings() ||
		c2.NumNets() != c1.NumNets() {
		t.Fatal("round trip changed circuit size")
	}
}

func TestWriteContainsEverything(t *testing.T) {
	c, err := ParseString(sample, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	text := String(c)
	for _, want := range []string{"circuit demo", "input a b", "output y",
		"gate g1 NAND2_X1 a b -> n1", "couple n1 b 1.8", "net n1 cg=5.5 rw=0.4"} {
		if !strings.Contains(text, want) {
			t.Errorf("canonical form missing %q:\n%s", want, text)
		}
	}
}

func TestParseValidatesCycles(t *testing.T) {
	src := `circuit t
gate g1 NAND2_X1 a n2 -> n1
gate g2 INV_X1 n1 -> n2
`
	if _, err := ParseString(src, cell.Default()); err == nil {
		t.Fatal("cyclic netlist must fail validation")
	}
}
