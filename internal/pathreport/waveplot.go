package pathreport

import (
	"fmt"
	"math"
	"strings"

	"topkagg/internal/circuit"
	"topkagg/internal/noise"
	"topkagg/internal/waveform"
)

// PlotOptions size the ASCII waveform plot.
type PlotOptions struct {
	Width  int // columns (0 = DefaultPlotWidth)
	Height int // rows (0 = DefaultPlotHeight)
}

// Default plot dimensions.
const (
	DefaultPlotWidth  = 72
	DefaultPlotHeight = 16
)

func (o PlotOptions) width() int {
	if o.Width < 16 {
		return DefaultPlotWidth
	}
	return o.Width
}

func (o PlotOptions) height() int {
	if o.Height < 6 {
		return DefaultPlotHeight
	}
	return o.Height
}

// NoisePlot renders, for one victim net, the noiseless latest
// transition (·), the combined aggressor noise envelope (#) and the
// noisy transition (o = transition minus envelope) as an ASCII chart —
// the picture the paper's Figures 2-5 draw, computed from the actual
// analysis.
func NoisePlot(an *noise.Analysis, m *noise.Model, v circuit.NetID, opt PlotOptions) string {
	c := an.Timing.Circuit
	vw := an.Base.Window(v)
	vw.LAT = an.Timing.Window(v).LAT - an.NetNoise[v] // include propagated shift
	env := m.CombinedEnvelope(v, c.CouplingsOf(v), an.Timing.Windows)
	ramp := m.VictimRamp(vw)
	noisy := waveform.Sub(ramp, env)

	// Time span: cover the transition and the envelope, padded.
	t0 := math.Min(ramp.Start(), env.Start())
	t1 := math.Max(ramp.End(), env.End())
	if env.IsZero() {
		t0, t1 = ramp.Start(), ramp.End()
	}
	pad := 0.1 * (t1 - t0)
	if pad <= 0 {
		pad = 0.1
	}
	t0 -= pad
	t1 += pad

	w, h := opt.width(), opt.height()
	vmax := m.Vdd * 1.1
	vmin := math.Min(0, minValue(noisy, t0, t1, w)) - 0.05
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	plot := func(wf waveform.PWL, ch byte) {
		for x := 0; x < w; x++ {
			t := t0 + (t1-t0)*float64(x)/float64(w-1)
			val := wf.Value(t)
			y := int(math.Round((vmax - val) / (vmax - vmin) * float64(h-1)))
			if y < 0 {
				y = 0
			}
			if y >= h {
				y = h - 1
			}
			grid[y][x] = ch
		}
	}
	plot(ramp, '.')
	if !env.IsZero() {
		plot(env, '#')
		plot(noisy, 'o')
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "net %s: victim transition (.), noise envelope (#), noisy transition (o)\n", c.Net(v).Name)
	fmt.Fprintf(&sb, "t in [%.3f, %.3f] ns, v in [%.2f, %.2f] V; own delay noise %.4f ns\n",
		t0, t1, vmin, vmax, an.NetNoise[v])
	// Mark the Vdd/2 threshold row.
	thr := int(math.Round((vmax - m.Vdd/2) / (vmax - vmin) * float64(h-1)))
	for r := range grid {
		mark := "  "
		if r == thr {
			mark = "½ "
		}
		sb.WriteString(mark)
		sb.Write(grid[r])
		sb.WriteByte('\n')
	}
	return sb.String()
}

func minValue(wf waveform.PWL, t0, t1 float64, samples int) float64 {
	m := math.Inf(1)
	for x := 0; x < samples; x++ {
		t := t0 + (t1-t0)*float64(x)/float64(samples-1)
		if v := wf.Value(t); v < m {
			m = v
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}
