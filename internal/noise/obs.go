package noise

import (
	"topkagg/internal/budget"
	"topkagg/internal/obs"
)

// fixObs bundles the resolved metric handles of one fixpoint run.
// Handles are resolved once per engine construction (newFixpoint), so
// the sweep loop never touches the registry's name maps; the hot path
// (evaluate) only bumps plain per-worker scratch counters, which the
// serial post-iteration flush publishes here. A nil *fixObs is the
// disabled state.
//
// Metric names:
//
//	noise.fixpoint.runs             fixpoint iterations started (Run/RunIncremental)
//	noise.fixpoint.converged        runs that settled within Tol
//	noise.fixpoint.sweeps           dirty-victim sweeps executed
//	noise.fixpoint.iterations       total iterations across runs
//	noise.fixpoint.evals            victim evaluations performed
//	noise.fixpoint.worklist_depth   histogram: queue length per sweep
//	noise.fixpoint.env_memo_hits    per-coupling envelope memo hits
//	noise.fixpoint.env_memo_misses  ... and rebuilds
//	noise.fixpoint.pulse_memo_hits  transcendental pulse-solve memo hits
//	noise.fixpoint.pulse_memo_misses
//	noise.fixpoint.raw_memo_hits    raw delay-noise memo hits
//	noise.fixpoint.raw_memo_misses
//	noise.fixpoint.grid_screen_hits whole evaluations skipped by the grid bound
//	noise.fixpoint.grid_eval_skips  breakpoint evaluations skipped in crossing walks
//	noise.fixpoint.stops            runs stopped early by budget/cancellation
//	noise.fixpoint.panics           runs stopped by a recovered worker panic
type fixObs struct {
	runs, converged        *obs.Counter
	sweeps, iterations     *obs.Counter
	evals                  *obs.Counter
	envHits, envMisses     *obs.Counter
	pulseHits, pulseMiss   *obs.Counter
	rawHits, rawMisses     *obs.Counter
	gridScreens, gridSkips *obs.Counter
	stops, panics          *obs.Counter
	worklistDepth          *obs.Histogram
}

// newFixObs resolves the fixpoint metric handles, or returns nil for
// a nil registry (instrumentation off).
func newFixObs(r *obs.Registry) *fixObs {
	if r == nil {
		return nil
	}
	return &fixObs{
		runs:          r.Counter("noise.fixpoint.runs"),
		converged:     r.Counter("noise.fixpoint.converged"),
		sweeps:        r.Counter("noise.fixpoint.sweeps"),
		iterations:    r.Counter("noise.fixpoint.iterations"),
		evals:         r.Counter("noise.fixpoint.evals"),
		envHits:       r.Counter("noise.fixpoint.env_memo_hits"),
		envMisses:     r.Counter("noise.fixpoint.env_memo_misses"),
		pulseHits:     r.Counter("noise.fixpoint.pulse_memo_hits"),
		pulseMiss:     r.Counter("noise.fixpoint.pulse_memo_misses"),
		rawHits:       r.Counter("noise.fixpoint.raw_memo_hits"),
		rawMisses:     r.Counter("noise.fixpoint.raw_memo_misses"),
		gridScreens:   r.Counter("noise.fixpoint.grid_screen_hits"),
		gridSkips:     r.Counter("noise.fixpoint.grid_eval_skips"),
		stops:         r.Counter("noise.fixpoint.stops"),
		panics:        r.Counter("noise.fixpoint.panics"),
		worklistDepth: r.Histogram("noise.fixpoint.worklist_depth"),
	}
}

// stopObserved classifies an early-stop error into the stop counters.
// No-op when disabled or when the run completed.
func (o *fixObs) stopObserved(err error) {
	if o == nil || err == nil {
		return
	}
	if budget.ReasonOf(err) == budget.WorkerPanic {
		o.panics.Inc()
		return
	}
	o.stops.Inc()
}

// evalCounts is the per-worker scratch half of the fixpoint
// instrumentation: plain (non-atomic) counters owned by exactly one
// sweep worker, summed serially after the iteration finishes. Keeping
// them local makes the hot path a few register increments and keeps
// published totals byte-identical for every worker count (the
// evaluation set and memo trajectories are deterministic; addition is
// commutative).
type evalCounts struct {
	evals                  int64
	envHits, envMisses     int64
	pulseHits, pulseMiss   int64
	rawHits, rawMisses     int64
	gridScreens, gridSkips int64
}

// flush publishes the summed per-worker counts. No-op when disabled.
func (o *fixObs) flush(scratch []evalScratch, iters int, converged bool) {
	if o == nil {
		return
	}
	var t evalCounts
	for i := range scratch {
		c := &scratch[i].counts
		t.evals += c.evals
		t.envHits += c.envHits
		t.envMisses += c.envMisses
		t.pulseHits += c.pulseHits
		t.pulseMiss += c.pulseMiss
		t.rawHits += c.rawHits
		t.rawMisses += c.rawMisses
		t.gridScreens += c.gridScreens
		t.gridSkips += c.gridSkips
		*c = evalCounts{}
	}
	o.runs.Inc()
	if converged {
		o.converged.Inc()
	}
	o.iterations.Add(int64(iters))
	o.evals.Add(t.evals)
	o.envHits.Add(t.envHits)
	o.envMisses.Add(t.envMisses)
	o.pulseHits.Add(t.pulseHits)
	o.pulseMiss.Add(t.pulseMiss)
	o.rawHits.Add(t.rawHits)
	o.rawMisses.Add(t.rawMisses)
	o.gridScreens.Add(t.gridScreens)
	o.gridSkips.Add(t.gridSkips)
}
