// Command loadgen drives a running topkd with a mixed query workload
// and reports throughput and latency percentiles. It is the client
// half of the serve saturation bench (cmd/benchjson -suite serve runs
// the same style of sweep in-process): point it at a server, let it
// upload its own generated circuit, and read QPS/p99 off the summary.
//
//	loadgen -addr localhost:8080 -duration 10s -concurrency 8
//	loadgen -addr localhost:8080 -mix add:4,elim:2,whatif:2,sweep:1 -o loadgen.json
//
// By default it generates a deterministic benchmark circuit
// (-gen gates=40,couplings=80,seed=7), uploads it under -model, and
// spreads queries over the circuit target and individual nets.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"topkagg/internal/circuit"
	"topkagg/internal/gen"
	"topkagg/internal/netlist"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// opNames orders the workload's operation kinds.
var opNames = []string{"add", "elim", "whatif", "sweep"}

// mix is the per-op weight table of the workload.
type mix map[string]int

// parseMix reads "add:4,elim:2,whatif:2,sweep:1"; omitted ops weigh 0.
func parseMix(s string) (mix, error) {
	m := mix{}
	total := 0
	for _, part := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("mix entry %q wants op:weight", part)
		}
		weight, err := strconv.Atoi(w)
		if err != nil || weight < 0 {
			return nil, fmt.Errorf("mix entry %q: weight must be a non-negative integer", part)
		}
		known := false
		for _, op := range opNames {
			if name == op {
				known = true
			}
		}
		if !known {
			return nil, fmt.Errorf("mix entry %q: unknown op (want add, elim, whatif or sweep)", part)
		}
		m[name] += weight
		total += weight
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q has zero total weight", s)
	}
	return m, nil
}

// pick draws one op from the mix with the worker's seeded generator.
func (m mix) pick(rng *rand.Rand) string {
	total := 0
	for _, op := range opNames {
		total += m[op]
	}
	n := rng.Intn(total)
	for _, op := range opNames {
		n -= m[op]
		if n < 0 {
			return op
		}
	}
	return opNames[0]
}

// parseSpec reads "gates=40,couplings=80,seed=7" into a gen.Spec.
func parseSpec(s string) (gen.Spec, error) {
	spec := gen.Spec{Name: "loadgen", Gates: 40, Couplings: 80, Seed: 7}
	if s == "" {
		return spec, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return spec, fmt.Errorf("spec entry %q wants key=value", part)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return spec, fmt.Errorf("spec entry %q: %v", part, err)
		}
		switch key {
		case "gates":
			spec.Gates = n
		case "couplings":
			spec.Couplings = n
		case "seed":
			spec.Seed = int64(n)
		default:
			return spec, fmt.Errorf("spec entry %q: unknown key (want gates, couplings or seed)", part)
		}
	}
	return spec, nil
}

// retryPolicy shapes the transient-failure retry loop: capped
// exponential backoff with full jitter, Retry-After honored when the
// server names a wait.
type retryPolicy struct {
	max  int           // retry attempts after the first try
	base time.Duration // first backoff ceiling
	cap  time.Duration // backoff ceiling
}

// transient reports whether an outcome is worth retrying: transport
// errors (connection refused/reset mid-restart) and the server's
// explicit pushback statuses (429 over-queue, 503 draining/unready).
func transient(resp *http.Response, err error) bool {
	if err != nil {
		return true
	}
	return resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable
}

// backoff returns the sleep before the n-th retry (1-based): a
// Retry-After hint wins (clamped to the cap), otherwise full jitter
// over an exponentially growing ceiling — the fleet decorrelates
// instead of hammering the server in lockstep.
func (p retryPolicy) backoff(n int, retryAfter time.Duration, rng *rand.Rand) time.Duration {
	if retryAfter > 0 {
		if retryAfter > p.cap {
			return p.cap
		}
		return retryAfter
	}
	d := p.base << uint(n-1)
	if d <= 0 || d > p.cap {
		d = p.cap
	}
	return time.Duration(rng.Int63n(int64(d) + 1))
}

// retryAfterOf parses a Retry-After seconds value (0 when absent or
// not in the delta-seconds form).
func retryAfterOf(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if sec, err := strconv.Atoi(s); err == nil && sec >= 0 {
			return time.Duration(sec) * time.Second
		}
	}
	return 0
}

// doRetry runs mk (which must build and issue a fresh request each
// call) until a non-transient outcome or the retry budget is spent.
// It returns the final response (nil on transport error), how many
// retries it spent, and whether it gave up on a still-transient
// failure.
func doRetry(mk func() (*http.Response, error), pol retryPolicy, rng *rand.Rand) (resp *http.Response, retries int, gaveUp bool) {
	for attempt := 0; ; attempt++ {
		r, err := mk()
		if !transient(r, err) {
			return r, attempt, false
		}
		if attempt == pol.max {
			return r, attempt, true
		}
		wait := pol.backoff(attempt+1, retryAfterOf(r), rng)
		if r != nil {
			// Drain so the connection is reusable across the retry.
			_, _ = io.Copy(io.Discard, r.Body)
			r.Body.Close()
		}
		time.Sleep(wait)
	}
}

// percentile returns the q-quantile (0..1) of sorted ns latencies.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// opStats aggregates one op kind's outcomes.
type opStats struct {
	Count int `json:"count"`
	// Errors counts non-transient failures (4xx other than 429, 5xx
	// other than 503, malformed requests).
	Errors int `json:"errors"`
	// Retries counts backoff-and-retry cycles that were eventually
	// absorbed; GiveUps counts requests abandoned still-transient after
	// the retry budget. Transient pushback is workload weather, not a
	// hard error — it gets its own columns.
	Retries int   `json:"retries"`
	GiveUps int   `json:"giveUps"`
	P50Ns   int64 `json:"p50Ns"`
	P99Ns   int64 `json:"p99Ns"`
}

// report is the machine-readable summary (-o).
type report struct {
	Date        string             `json:"date"`
	Addr        string             `json:"addr"`
	Model       string             `json:"model"`
	DurationSec float64            `json:"durationSec"`
	Concurrency int                `json:"concurrency"`
	Mix         string             `json:"mix"`
	Total       int                `json:"total"`
	Errors      int                `json:"errors"`
	Retries     int                `json:"retries"`
	GiveUps     int                `json:"giveUps"`
	QPS         float64            `json:"qps"`
	P50Ns       int64              `json:"p50Ns"`
	P90Ns       int64              `json:"p90Ns"`
	P99Ns       int64              `json:"p99Ns"`
	PerOp       map[string]opStats `json:"perOp"`
}

// sample is one request's outcome.
type sample struct {
	op      string
	ns      int64
	ok      bool
	retries int
	gaveUp  bool
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8080", "topkd address (host:port)")
	model := fs.String("model", "loadgen", "model name to upload and query")
	duration := fs.Duration("duration", 10*time.Second, "how long to apply load")
	concurrency := fs.Int("concurrency", runtime.GOMAXPROCS(0), "concurrent client workers")
	mixFlag := fs.String("mix", "add:4,elim:2,whatif:3,sweep:1", "workload mix as op:weight pairs")
	k := fs.Int("k", 4, "cardinality for top-k queries")
	genFlag := fs.String("gen", "gates=40,couplings=80,seed=7", "generated circuit spec to upload")
	noUpload := fs.Bool("no-upload", false, "skip the upload; the model must already exist")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request client timeout")
	out := fs.String("o", "", "write the JSON report here too")
	seed := fs.Int64("seed", 1, "workload randomization seed")
	retries := fs.Int("retries", 4, "retry budget per request for 429/503/transport failures (0 = no retries)")
	retryBase := fs.Duration("retry-base", 25*time.Millisecond, "first backoff ceiling (full jitter, doubles per retry)")
	retryCap := fs.Duration("retry-cap", 1*time.Second, "backoff ceiling")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *retries < 0 || *retryBase <= 0 || *retryCap < *retryBase {
		fmt.Fprintln(stderr, "loadgen: want -retries >= 0 and 0 < -retry-base <= -retry-cap")
		return 1
	}
	pol := retryPolicy{max: *retries, base: *retryBase, cap: *retryCap}
	if *concurrency < 1 || *duration <= 0 {
		fmt.Fprintln(stderr, "loadgen: -concurrency must be >= 1 and -duration > 0")
		return 1
	}
	m, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(stderr, "loadgen:", err)
		return 1
	}
	spec, err := parseSpec(*genFlag)
	if err != nil {
		fmt.Fprintln(stderr, "loadgen:", err)
		return 1
	}
	c, err := gen.Build(spec)
	if err != nil {
		fmt.Fprintln(stderr, "loadgen:", err)
		return 1
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: *timeout}
	if !*noUpload {
		if err := upload(client, base, *model, c, pol, rand.New(rand.NewSource(*seed))); err != nil {
			fmt.Fprintln(stderr, "loadgen: upload:", err)
			return 1
		}
	}

	// Target material: driven net names for per-net queries, coupling
	// count for what-if fix sets.
	var nets []string
	for id := 0; id < c.NumNets(); id++ {
		if c.Net(circuit.NetID(id)).Driver >= 0 {
			nets = append(nets, c.Net(circuit.NetID(id)).Name)
		}
	}

	var mu sync.Mutex
	var samples []sample
	var wg sync.WaitGroup
	stopAt := time.Now().Add(*duration)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			var local []sample
			for time.Now().Before(stopAt) {
				op := m.pick(rng)
				start := time.Now()
				s := fire(client, base, *model, op, *k, nets, c.NumCouplings(), rng, pol)
				s.op, s.ns = op, int64(time.Since(start))
				local = append(local, s)
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	rep := summarize(samples, *addr, *model, *duration, *concurrency, *mixFlag)
	fmt.Fprintf(stdout, "loadgen: %d requests in %s (%d workers): %.1f qps, p50 %s, p90 %s, p99 %s, %d errors, %d retries, %d giveups\n",
		rep.Total, duration.Round(time.Millisecond), *concurrency, rep.QPS,
		time.Duration(rep.P50Ns).Round(time.Microsecond),
		time.Duration(rep.P90Ns).Round(time.Microsecond),
		time.Duration(rep.P99Ns).Round(time.Microsecond), rep.Errors, rep.Retries, rep.GiveUps)
	for _, op := range opNames {
		if st, ok := rep.PerOp[op]; ok {
			fmt.Fprintf(stdout, "  %-6s %6d reqs  p50 %-12s p99 %-12s %d errors, %d retries, %d giveups\n", op, st.Count,
				time.Duration(st.P50Ns).Round(time.Microsecond),
				time.Duration(st.P99Ns).Round(time.Microsecond), st.Errors, st.Retries, st.GiveUps)
		}
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "loadgen:", err)
			return 1
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "loadgen:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}
	if rep.Total > 0 && rep.Errors+rep.GiveUps == rep.Total {
		fmt.Fprintln(stderr, "loadgen: every request failed")
		return 1
	}
	return 0
}

// summarize folds raw samples into the report.
func summarize(samples []sample, addr, model string, d time.Duration, concurrency int, mixStr string) report {
	rep := report{
		Date:        time.Now().UTC().Format(time.RFC3339),
		Addr:        addr,
		Model:       model,
		DurationSec: d.Seconds(),
		Concurrency: concurrency,
		Mix:         mixStr,
		Total:       len(samples),
		PerOp:       map[string]opStats{},
	}
	var all []int64
	perOp := map[string][]int64{}
	for _, s := range samples {
		all = append(all, s.ns)
		perOp[s.op] = append(perOp[s.op], s.ns)
		st := rep.PerOp[s.op]
		switch {
		case s.gaveUp:
			rep.GiveUps++
			st.GiveUps++
		case !s.ok:
			rep.Errors++
			st.Errors++
		}
		rep.Retries += s.retries
		st.Retries += s.retries
		rep.PerOp[s.op] = st
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.QPS = float64(len(all)) / d.Seconds()
	rep.P50Ns = percentile(all, 0.50)
	rep.P90Ns = percentile(all, 0.90)
	rep.P99Ns = percentile(all, 0.99)
	for op, lat := range perOp {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		st := rep.PerOp[op]
		st.Count = len(lat)
		st.P50Ns = percentile(lat, 0.50)
		st.P99Ns = percentile(lat, 0.99)
		rep.PerOp[op] = st
	}
	return rep
}

// upload registers the circuit under name as a raw netlist body,
// retrying through transient pushback (a restarting or draining server
// answers 503 until ready).
func upload(client *http.Client, base, name string, c *circuit.Circuit, pol retryPolicy, rng *rand.Rand) error {
	text := netlist.String(c)
	resp, _, gaveUp := doRetry(func() (*http.Response, error) {
		req, err := http.NewRequest(http.MethodPut, base+"/v1/models/"+name, strings.NewReader(text))
		if err != nil {
			return nil, err
		}
		return client.Do(req)
	}, pol, rng)
	if resp == nil {
		return fmt.Errorf("no response after retries")
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		if gaveUp {
			return fmt.Errorf("gave up after retries: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		}
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

// fire sends one request of the given op kind, retrying transient
// pushback per the policy, and reports the outcome (op and latency are
// filled by the caller).
func fire(client *http.Client, base, model, op string, k int, nets []string, numCouplings int, rng *rand.Rand, pol retryPolicy) sample {
	var path string
	body := map[string]any{}
	switch op {
	case "add", "elim":
		path = "/query"
		body["op"] = map[string]string{"add": "addition", "elim": "elimination"}[op]
		body["k"] = 1 + rng.Intn(k)
		if len(nets) > 0 && rng.Intn(2) == 0 {
			body["net"] = nets[rng.Intn(len(nets))]
		}
	case "whatif":
		path = "/query"
		body["op"] = "whatif"
		n := 1 + rng.Intn(3)
		fix := map[int]bool{}
		for len(fix) < n && len(fix) < numCouplings {
			fix[rng.Intn(numCouplings)] = true
		}
		ids := make([]int, 0, len(fix))
		for id := range fix {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		body["fix"] = ids
	case "sweep":
		path = "/sweep"
		body["op"] = "addition"
		body["k"] = 1 + rng.Intn(k)
		picks := map[string]bool{}
		for len(picks) < 3 && len(picks) < len(nets) {
			picks[nets[rng.Intn(len(nets))]] = true
		}
		var names []string
		for n := range picks {
			names = append(names, n)
		}
		sort.Strings(names)
		body["nets"] = names
	}
	data, err := json.Marshal(body)
	if err != nil {
		return sample{}
	}
	resp, retries, gaveUp := doRetry(func() (*http.Response, error) {
		return client.Post(base+"/v1/models/"+model+path, "application/json", bytes.NewReader(data))
	}, pol, rng)
	s := sample{retries: retries, gaveUp: gaveUp}
	if resp == nil {
		return s
	}
	defer resp.Body.Close()
	// Drain so the connection is reused; a sweep's records count as
	// payload to consume, not to parse.
	_, _ = io.Copy(io.Discard, resp.Body)
	s.ok = resp.StatusCode == http.StatusOK
	return s
}
