package circuit

import (
	"topkagg/internal/bitset"
)

// Columns is the read-only structure-of-arrays snapshot of a Circuit:
// every hot-loop quantity flattened into int32-indexed slices with
// CSR-style offsets, built once per circuit revision and shared by
// every analysis. The pointer model (Net/Gate/Coupling) stays the
// mutable source of truth and the parse-time API; the timing and
// noise engines walk these columns instead, so their inner loops are
// contiguous-memory reads with no map probes or pointer chases.
//
// All derived per-net scalars (PinLoad, LoadCap, DriverRes, CvBase)
// are computed with exactly the summation order of the corresponding
// Circuit methods, so analyses running on columns are bit-identical
// to analyses running on the pointer model.
//
// A Columns is immutable after construction; Circuit.Columns caches
// the snapshot against a mutation version counter.
type Columns struct {
	version uint64

	// Per-net topology. Driver is the driving gate or -1 (primary
	// input). LoadOff is a CSR index into LoadGates and Fanout:
	// LoadGates lists the gates with an input pin on the net, Fanout
	// (parallel to LoadGates) each such gate's output net — the
	// fanout-cone successor set the incremental engine pushes.
	Driver    []int32
	LoadOff   []int32
	LoadGates []int32
	Fanout    []int32

	// Per-net coupling adjacency. CoupOff is a CSR index into CoupIDs,
	// CoupOther and CoupDir. CoupOther is the far endpoint of each
	// incident coupling; CoupDir is the directed coupling index
	// 2*id + side (side 1 when this net is the coupling's B endpoint),
	// the key the noise engine's envelope memo uses.
	CoupOff   []int32
	CoupIDs   []int32
	CoupOther []int32
	CoupDir   []int32

	// Per-net derived electrical scalars, bit-identical to the
	// corresponding Circuit methods.
	PinLoad   []float64 // Σ load pins' Cin
	LoadCap   []float64 // Cgnd + PinLoad + CouplingCap
	CvBase    []float64 // Cgnd + PinLoad (victim lumped cap in noise)
	DriverRes []float64 // driver Thevenin resistance + Rwire

	// Per-gate columns: CSR input lists and the flattened linear cell
	// characterization (delay = D0 + KD·load + 0.25·slew, slew =
	// S0 + KS·load + 0.1·slew clamped at 1e-3).
	GateInOff []int32
	GateIn    []int32
	GateOut   []int32
	D0, KD    []float64
	S0, KS    []float64

	// Per-coupling endpoint columns.
	CoupA, CoupB []int32
	CoupCc       []float64

	// TopoNets is the net evaluation order of the full analysis
	// (primary inputs first, then gate outputs in gate topological
	// order); TopoPos is its inverse permutation.
	TopoNets []NetID
	TopoPos  []int32
}

// NumNets returns the net count of the snapshot.
func (k *Columns) NumNets() int { return len(k.Driver) }

// NumGates returns the gate count of the snapshot.
func (k *Columns) NumGates() int { return len(k.GateOut) }

// NumCouplings returns the coupling count of the snapshot.
func (k *Columns) NumCouplings() int { return len(k.CoupA) }

// Columns returns the columnar snapshot of the circuit, building it
// on first use and after any mutation. The snapshot is immutable and
// safe for concurrent readers; the builder itself does not mutate the
// circuit, so concurrent first calls are safe (they may build the
// snapshot twice, last store wins, both are identical).
//
// The circuit's own mutators invalidate the cache automatically.
// Code that writes Net/Gate fields directly through the returned
// pointers (parsers, sizing moves) must call InvalidateColumns before
// the next analysis.
func (c *Circuit) Columns() (*Columns, error) {
	v := c.version.Load()
	if k := c.cols.Load(); k != nil && k.version == v {
		return k, nil
	}
	k, err := c.buildColumns(v)
	if err != nil {
		return nil, err
	}
	c.cols.Store(k)
	return k, nil
}

// InvalidateColumns drops the cached columnar snapshot, forcing a
// rebuild on the next Columns call. Required after mutating nets or
// gates directly through their pointers.
func (c *Circuit) InvalidateColumns() { c.version.Add(1) }

func (c *Circuit) buildColumns(version uint64) (*Columns, error) {
	topo, err := c.TopoNets()
	if err != nil {
		return nil, err
	}
	nn, ng, nc := len(c.nets), len(c.gates), len(c.couplings)
	k := &Columns{
		version:   version,
		Driver:    make([]int32, nn),
		LoadOff:   make([]int32, nn+1),
		CoupOff:   make([]int32, nn+1),
		PinLoad:   make([]float64, nn),
		LoadCap:   make([]float64, nn),
		CvBase:    make([]float64, nn),
		DriverRes: make([]float64, nn),
		GateInOff: make([]int32, ng+1),
		GateOut:   make([]int32, ng),
		D0:        make([]float64, ng),
		KD:        make([]float64, ng),
		S0:        make([]float64, ng),
		KS:        make([]float64, ng),
		CoupA:     make([]int32, nc),
		CoupB:     make([]int32, nc),
		CoupCc:    make([]float64, nc),
		TopoNets:  topo,
		TopoPos:   make([]int32, nn),
	}
	loads := 0
	for _, n := range c.nets {
		loads += len(n.Loads)
	}
	k.LoadGates = make([]int32, 0, loads)
	k.Fanout = make([]int32, 0, loads)
	k.CoupIDs = make([]int32, 0, 2*nc)
	k.CoupOther = make([]int32, 0, 2*nc)
	k.CoupDir = make([]int32, 0, 2*nc)

	for i, g := range c.gates {
		k.GateInOff[i] = int32(len(k.GateIn))
		for _, in := range g.Inputs {
			k.GateIn = append(k.GateIn, int32(in))
		}
		k.GateOut[i] = int32(g.Output)
		k.D0[i], k.KD[i] = g.Cell.D0, g.Cell.KD
		k.S0[i], k.KS[i] = g.Cell.S0, g.Cell.KS
	}
	k.GateInOff[ng] = int32(len(k.GateIn))
	for i, cp := range c.couplings {
		k.CoupA[i], k.CoupB[i] = int32(cp.A), int32(cp.B)
		k.CoupCc[i] = cp.Cc
	}
	for i, n := range c.nets {
		k.Driver[i] = int32(n.Driver)
		k.LoadOff[i] = int32(len(k.LoadGates))
		for _, gid := range n.Loads {
			k.LoadGates = append(k.LoadGates, int32(gid))
			k.Fanout = append(k.Fanout, int32(c.gates[gid].Output))
		}
		k.CoupOff[i] = int32(len(k.CoupIDs))
		for _, cid := range c.coupleIdx[NetID(i)] {
			cp := c.couplings[cid]
			other, side := cp.B, int32(0)
			if cp.B == NetID(i) {
				other, side = cp.A, 1
			}
			k.CoupIDs = append(k.CoupIDs, int32(cid))
			k.CoupOther = append(k.CoupOther, int32(other))
			k.CoupDir = append(k.CoupDir, 2*int32(cid)+side)
		}
		// Derived scalars with the exact summation order of PinLoad,
		// CouplingCap, LoadCap and DriverRes.
		k.PinLoad[i] = c.PinLoad(NetID(i))
		k.LoadCap[i] = n.Cgnd + k.PinLoad[i] + c.CouplingCap(NetID(i))
		k.CvBase[i] = n.Cgnd + k.PinLoad[i]
		k.DriverRes[i] = c.DriverRes(NetID(i))
	}
	k.LoadOff[nn] = int32(len(k.LoadGates))
	k.CoupOff[nn] = int32(len(k.CoupIDs))
	for pos, nid := range topo {
		k.TopoPos[nid] = int32(pos)
	}
	return k, nil
}

// FaninConeBits sets, in d (resized to the net universe), the bits of
// every net in the transitive fanin of n, including n itself — the
// allocation-free form of FaninCone for cone bookkeeping on hot
// paths. scratch, if non-nil, is used as the DFS stack and returned
// grown.
func (c *Circuit) FaninConeBits(n NetID, d *bitset.Dense, scratch []NetID) []NetID {
	d.Reset(len(c.nets))
	stack := append(scratch[:0], n)
	d.Set(int(n))
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		drv := c.nets[cur].Driver
		if drv == NoGate {
			continue
		}
		for _, in := range c.gates[drv].Inputs {
			if !d.Get(int(in)) {
				d.Set(int(in))
				stack = append(stack, in)
			}
		}
	}
	return stack
}
