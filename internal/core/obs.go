package core

import (
	"topkagg/internal/obs"
)

// publishKStats mirrors one cardinality's enumeration counters into the
// model's metric registry (no-op without one). Publication happens
// serially at the end of each cardinality — the per-victim counts were
// already merged into KStats by the serial level merge in iterate — so
// the published totals are deterministic for any worker count.
//
// Metric names (see DESIGN.md §8):
//
//	core.topk.runs              enumerations started
//	core.topk.cardinalities     cardinalities completed
//	core.topk.candidates        candidate sets generated (all rules)
//	core.topk.duplicates        candidates removed by dedupe
//	core.topk.pruned_dominance  candidates dropped by Theorem 1 pruning
//	core.topk.pruned_beam       candidates dropped by the width cap
//	core.topk.verified          candidates re-measured by the reference engine
//	core.topk.rescore_runs      reference evaluations during rescoring
//	core.topk.digest_hits       dominance pairs settled by the digest prefilter
//	core.topk.digest_fallbacks  dominance pairs needing the exact PWL check
//	core.topk.envcache_hits     Rule-1 set-envelope cache hits
//	core.topk.envcache_misses   Rule-1 set-envelope cache misses
//	core.topk.ilist_width       histogram: widest I-list per cardinality
//	core.topk.lists             histogram: victims with non-empty lists per cardinality
//	core.topk.cardinality_ns    histogram: wall time per cardinality
//	core.topk.prune_ns          histogram: I-list prune latency per victim
func publishKStats(r *obs.Registry, ks *KStats) {
	if r == nil {
		return
	}
	r.Counter("core.topk.cardinalities").Inc()
	r.Counter("core.topk.candidates").Add(int64(ks.Candidates))
	r.Counter("core.topk.duplicates").Add(int64(ks.Duplicates))
	r.Counter("core.topk.pruned_dominance").Add(int64(ks.PrunedDominance))
	r.Counter("core.topk.pruned_beam").Add(int64(ks.PrunedBeam))
	r.Counter("core.topk.digest_hits").Add(int64(ks.DigestHits))
	r.Counter("core.topk.digest_fallbacks").Add(int64(ks.DigestFallbacks))
	r.Counter("core.topk.verified").Add(int64(ks.Verified))
	r.Histogram("core.topk.ilist_width").Observe(int64(ks.MaxIListWidth))
	r.Histogram("core.topk.lists").Observe(int64(ks.Lists))
	r.Histogram("core.topk.cardinality_ns").Observe(int64(ks.Elapsed))
}
