// Command benchjson measures the performance-critical kernels — the
// noise fixpoint and the Table-1/2 enumeration kernels — with
// testing.Benchmark and writes the results as machine-readable JSON
// (default BENCH_fixpoint.json). The JSON is the artifact the perf
// acceptance criteria are checked against and what EXPERIMENTS.md
// records as before/after evidence:
//
//	go run ./cmd/benchjson -o BENCH_fixpoint.json
//	go run ./cmd/benchjson -benchtime 200ms -quick
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"topkagg/internal/bruteforce"
	"topkagg/internal/core"
	"topkagg/internal/gen"
	"topkagg/internal/noise"
	"topkagg/internal/obs"
)

// result is one benchmark measurement in the output file.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
}

// report is the whole output file.
type report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"goVersion"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"numCPU"`
	Results    []result `json:"results"`
	// Metrics holds, per model, the observability snapshot of one
	// instrumented fixpoint run (sweep counts, worklist depths, memo
	// hit rates) — the enabled-path evidence the perf criteria ask for.
	// The timed benchmarks above run uninstrumented.
	Metrics map[string]*obs.Snapshot `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_fixpoint.json", "output JSON file")
	quick := flag.Bool("quick", false, "skip the slow brute-force and enumeration kernels")
	flag.Parse()
	if err := run(*out, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out string, quick bool) error {
	models := map[string]*noise.Model{}
	for _, name := range []string{"i1", "i3"} {
		c, err := gen.BuildPaper(name)
		if err != nil {
			return err
		}
		models[name] = noise.NewModel(c)
	}
	t1c, err := gen.Build(gen.Spec{Name: "t1", Gates: 30, Couplings: 60, Seed: 77})
	if err != nil {
		return err
	}
	t1 := noise.NewModel(t1c)

	type bench struct {
		name string
		slow bool
		fn   func(b *testing.B)
	}
	fixpoint := func(m *noise.Model) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	enumeration := func(m *noise.Model, elim bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			opt := core.Options{NoRescore: true}
			for i := 0; i < b.N; i++ {
				var err error
				if elim {
					_, err = core.TopKElimination(m, 10, opt)
				} else {
					_, err = core.TopKAddition(m, 10, opt)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	benches := []bench{
		{name: "noise_fixpoint/i1", fn: fixpoint(models["i1"])},
		{name: "noise_fixpoint/i3", fn: fixpoint(models["i3"])},
	}
	for _, w := range []int{1, 2, 4, 8} {
		benches = append(benches, bench{
			name: fmt.Sprintf("noise_fixpoint_workers/i3-w%d", w),
			fn:   fixpoint(models["i3"].WithWorkers(w)),
		})
	}
	benches = append(benches,
		bench{name: "table1_bruteforce/t1-k2", slow: true, fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bruteforce.Addition(t1, 2, 0); err != nil {
					b.Fatal(err)
				}
			}
		}},
		bench{name: "table1_proposed/t1-k2", slow: true, fn: func(b *testing.B) {
			b.ReportAllocs()
			opt := core.Options{SlackFrac: 1, NoRescore: true}
			for i := 0; i < b.N; i++ {
				if _, err := core.TopKAddition(t1, 2, opt); err != nil {
					b.Fatal(err)
				}
			}
		}},
		bench{name: "table2a_addition/i1-k10", slow: true, fn: enumeration(models["i1"], false)},
		bench{name: "table2a_addition/i3-k10", slow: true, fn: enumeration(models["i3"], false)},
		bench{name: "table2b_elimination/i1-k10", slow: true, fn: enumeration(models["i1"], true)},
	)

	rep := report{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, bm := range benches {
		if quick && bm.slow {
			continue
		}
		r := testing.Benchmark(bm.fn)
		res := result{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-34s %12.0f ns/op %10d B/op %8d allocs/op\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}

	rep.Metrics = map[string]*obs.Snapshot{}
	for _, name := range []string{"i1", "i3"} {
		reg := obs.New()
		if _, err := models[name].WithObs(reg).Run(nil); err != nil {
			return err
		}
		rep.Metrics[name] = reg.Snapshot()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", out, len(rep.Results))
	return nil
}
