module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  NAND2_X1 g10 (.A(N1), .B(N3), .Y(N10));
  NAND2_X1 g11 (.A(N3), .B(N6), .Y(N11));
  NAND2_X1 g16 (.A(N2), .B(N11), .Y(N16));
  NAND2_X1 g19 (.A(N11), .B(N7), .Y(N19));
  NAND2_X1 g22 (.A(N10), .B(N16), .Y(N22));
  NAND2_X1 g23 (.A(N16), .B(N19), .Y(N23));
endmodule
