package waveform

import (
	"fmt"
	"math"
)

// minWidth is the smallest edge width a shape constructor produces:
// well above Eps so breakpoint merging in New cannot collapse a
// degenerate (clamped) edge into a single point. 1e-6 ns = 1 fs.
const minWidth = 1e-6

// RisingRamp returns a saturated rising ramp from 0 to vdd whose 50%
// crossing is at t50 and whose 0-to-100% transition time is slew. A
// non-positive slew produces an (almost) ideal step at t50.
func RisingRamp(t50, slew, vdd float64) PWL {
	if slew < minWidth {
		slew = minWidth
	}
	return MustNew(
		Point{T: t50 - slew/2, V: 0},
		Point{T: t50 + slew/2, V: vdd},
	)
}

// FallingRamp returns a saturated falling ramp from vdd to 0 whose 50%
// crossing is at t50 and whose transition time is slew.
func FallingRamp(t50, slew, vdd float64) PWL {
	if slew < minWidth {
		slew = minWidth
	}
	return MustNew(
		Point{T: t50 - slew/2, V: vdd},
		Point{T: t50 + slew/2, V: 0},
	)
}

// TrianglePulse returns a triangular noise pulse that starts at t0,
// peaks at vp after rise, and decays back to zero after a further
// fall. rise and fall are clamped to a minimal positive width.
func TrianglePulse(t0, rise, fall, vp float64) PWL {
	if rise < minWidth {
		rise = minWidth
	}
	if fall < minWidth {
		fall = minWidth
	}
	return MustNew(
		Point{T: t0, V: 0},
		Point{T: t0 + rise, V: vp},
		Point{T: t0 + rise + fall, V: 0},
	)
}

// Trapezoid returns a trapezoidal envelope: zero before t0, rising to
// vp over rise, flat until tFlatEnd, decaying to zero over fall.
// tFlatEnd must not precede t0+rise; if it does, the flat top is
// collapsed to a triangle.
func Trapezoid(t0, rise, flatEnd, fall, vp float64) PWL {
	return PWL{pts: AppendTrapezoid(nil, t0, rise, flatEnd, fall, vp)}
}

// AppendTrapezoid appends Trapezoid's breakpoints to dst and returns
// the extended slice — the allocation-free form for hot paths that
// rebuild envelopes into reusable buffers (used with View). It
// reproduces New's breakpoint merging for this shape exactly: the
// edges are at least minWidth (≫ Eps) wide, so only a collapsed flat
// top can merge.
func AppendTrapezoid(dst []Point, t0, rise, flatEnd, fall, vp float64) []Point {
	if rise < minWidth {
		rise = minWidth
	}
	if fall < minWidth {
		fall = minWidth
	}
	peakStart := t0 + rise
	if flatEnd < peakStart {
		flatEnd = peakStart
	}
	dst = append(dst, Point{T: t0, V: 0}, Point{T: peakStart, V: vp})
	if flatEnd <= peakStart+Eps {
		dst[len(dst)-1] = Point{T: math.Max(peakStart, flatEnd), V: vp}
	} else {
		dst = append(dst, Point{T: flatEnd, V: vp})
	}
	return append(dst, Point{T: flatEnd + fall, V: 0})
}

// T50 returns the 50%-vdd crossing of a monotone transition waveform.
// dir selects which crossing is measured: +1 for a rising transition
// (last time at or below vdd/2), -1 for a falling transition (last
// time at or above vdd/2). It returns an error when the waveform never
// completes the transition.
func T50(w PWL, vdd float64, dir int) (float64, error) {
	switch dir {
	case +1:
		t, ok := w.LatestTimeAtOrBelow(vdd / 2)
		if !ok {
			return 0, fmt.Errorf("waveform: rising transition never settles above %g", vdd/2)
		}
		return t, nil
	case -1:
		t, ok := w.Neg().LatestTimeAtOrBelow(-vdd / 2)
		if !ok {
			return 0, fmt.Errorf("waveform: falling transition never settles below %g", vdd/2)
		}
		return t, nil
	default:
		return 0, fmt.Errorf("waveform: invalid transition direction %d", dir)
	}
}

// Width returns the length of the waveform's support span (time
// between first and last breakpoint).
func (w PWL) Width() float64 { return w.End() - w.Start() }

// Area returns the integral of the waveform over its breakpoint span
// (constant extensions excluded). Useful as a scalar summary of an
// envelope in tests and heuristics.
func (w PWL) Area() float64 {
	var area float64
	for i := 1; i < len(w.pts); i++ {
		a, b := w.pts[i-1], w.pts[i]
		area += (b.T - a.T) * (a.V + b.V) / 2
	}
	return area
}

// MaxAbs returns the largest absolute breakpoint value.
func (w PWL) MaxAbs() float64 {
	var m float64
	for _, p := range w.pts {
		m = math.Max(m, math.Abs(p.V))
	}
	return m
}
