// Package sizing implements crosstalk-driven driver upsizing — the
// classic alternative to shielding for fixing delay-noise violations.
// Upsizing a victim's driver lowers its holding resistance, which
// shrinks every noise pulse coupled onto the net (peak ∝ R·Cc) and
// speeds the gate up, at the cost of extra input capacitance loading
// the fanin.
//
// Optimize runs a greedy loop: rank the noisiest nets near the
// critical path, try upsizing each one's driver, keep the move that
// improves the measured noisy delay most, repeat until the budget is
// spent or no move helps. All trials are evaluated with the reference
// noise engine, so accepted moves are real improvements, not estimates.
package sizing

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"topkagg/internal/circuit"
	"topkagg/internal/noise"
)

// Options tune the optimizer.
type Options struct {
	// Candidates is how many of the noisiest nets are trialed per
	// round (0 = DefaultCandidates).
	Candidates int
	// MaxStrength caps the drive strength (0 = DefaultMaxStrength).
	MaxStrength int
}

// Defaults for the zero Options value.
const (
	DefaultCandidates  = 8
	DefaultMaxStrength = 4
)

func (o Options) candidates() int {
	if o.Candidates <= 0 {
		return DefaultCandidates
	}
	return o.Candidates
}

func (o Options) maxStrength() int {
	if o.MaxStrength <= 0 {
		return DefaultMaxStrength
	}
	return o.MaxStrength
}

// Move records one accepted upsizing.
type Move struct {
	Gate circuit.GateID
	From string // previous cell name
	To   string // new cell name
	// Delay is the measured noisy circuit delay after this move.
	Delay float64
}

// Result summarizes an optimization run.
type Result struct {
	Moves  []Move
	Before float64 // noisy delay before any move
	After  float64 // noisy delay after the accepted moves
	Trials int     // candidate evaluations performed
}

// Optimize greedily upsizes victim drivers until budget moves are
// spent or no candidate improves the noisy circuit delay. The circuit
// is modified in place (accepted moves persist; rejected trials are
// reverted).
func Optimize(m *noise.Model, budget int, opt Options) (*Result, error) {
	if budget < 1 {
		return nil, fmt.Errorf("sizing: budget must be >= 1, got %d", budget)
	}
	cur, err := m.Run(nil)
	if err != nil {
		return nil, err
	}
	res := &Result{Before: cur.CircuitDelay(), After: cur.CircuitDelay()}
	for len(res.Moves) < budget {
		cands := rankCandidates(m, cur, opt.candidates())
		var best *Move
		var bestGate *circuit.Gate
		for _, v := range cands {
			g := m.C.Gate(m.C.Net(v).Driver)
			next, ok := upsized(g.Cell.Name, opt.maxStrength())
			if !ok {
				continue
			}
			nc, err := m.C.Lib.Cell(next)
			if err != nil {
				continue // strength not in the library
			}
			prev := g.Cell
			g.Cell = nc
			m.C.InvalidateColumns()
			an, err := m.Run(nil)
			res.Trials++
			if err != nil {
				g.Cell = prev
				m.C.InvalidateColumns()
				return nil, err
			}
			if d := an.CircuitDelay(); d < res.After-1e-9 && (best == nil || d < best.Delay) {
				best = &Move{Gate: g.ID, From: prev.Name, To: next, Delay: d}
				bestGate = g
			}
			g.Cell = prev
			m.C.InvalidateColumns()
		}
		if best == nil {
			break // no improving move left
		}
		// Re-apply the winner.
		nc, err := m.C.Lib.Cell(best.To)
		if err != nil {
			return nil, fmt.Errorf("sizing: %w", err)
		}
		bestGate.Cell = nc
		m.C.InvalidateColumns()
		cur, err = m.Run(nil)
		if err != nil {
			return nil, err
		}
		res.After = cur.CircuitDelay()
		res.Moves = append(res.Moves, *best)
	}
	return res, nil
}

// rankCandidates returns the drivers worth trialing: nets with the
// largest own delay noise whose slack is small, driven by a gate.
func rankCandidates(m *noise.Model, an *noise.Analysis, limit int) []circuit.NetID {
	slacks := an.Timing.Slacks(0)
	type cand struct {
		id    circuit.NetID
		noise float64
	}
	var cands []cand
	for _, n := range m.C.Nets() {
		if n.Driver == circuit.NoGate {
			continue
		}
		if an.NetNoise[n.ID] <= 0 {
			continue
		}
		// Only nets near the critical path can move the delay.
		if slacks[n.ID] > 0.15*an.CircuitDelay() {
			continue
		}
		cands = append(cands, cand{n.ID, an.NetNoise[n.ID]})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].noise != cands[j].noise {
			return cands[i].noise > cands[j].noise
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > limit {
		cands = cands[:limit]
	}
	out := make([]circuit.NetID, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// upsized returns the next drive strength's cell name ("NAND2_X1" ->
// "NAND2_X2") up to the cap, and whether an upsize exists.
func upsized(name string, maxStrength int) (string, bool) {
	base, xs, ok := strings.Cut(name, "_X")
	if !ok {
		return "", false
	}
	x, err := strconv.Atoi(xs)
	if err != nil || 2*x > maxStrength {
		return "", false
	}
	return fmt.Sprintf("%s_X%d", base, 2*x), true
}
