package httpapi

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"topkagg/internal/core"
	"topkagg/internal/faultinject"
	"topkagg/internal/netlist"
	"topkagg/internal/noise"
	"topkagg/internal/serve"
	"topkagg/internal/snapshot"
)

// newPersistServer boots a Server attached to a state directory and
// returns it with its test listener and the boot-restore outcomes.
func newPersistServer(t *testing.T, dir string) (*Server, *httptest.Server, []ModelRestore) {
	t.Helper()
	srv := NewServer(Config{})
	outs, err := srv.OpenState(dir)
	if err != nil {
		t.Fatalf("OpenState(%s): %v", dir, err)
	}
	srv.SetReady(true)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, outs
}

// snapPath is the model's snapshot file inside the state directory.
func snapPath(dir, name string) string { return filepath.Join(dir, name+".snap") }

// assertServes runs every query against the server and requires status
// 200 with bytes identical to want — the zero-failed-requests half of
// the recovery contract.
func assertServes(t *testing.T, ts *httptest.Server, model string, qrs []QueryRequest, want [][]byte, label string) {
	t.Helper()
	for i, qr := range qrs {
		status, body := post(t, ts, "/v1/models/"+model+"/query", qr)
		if status != http.StatusOK {
			t.Fatalf("%s: query %d: status %d: %s", label, i, status, body)
		}
		if !bytes.Equal(body, want[i]) {
			t.Errorf("%s: query %d (%s): differs from cold reference\n got: %s\nwant: %s",
				label, i, qr.Op, body, want[i])
		}
	}
}

// TestPersistWarmRestart is the recovery happy path over the full HTTP
// surface: upload, warm the caches with queries, snapshot, boot a new
// server over the same state directory — the model is restored warm
// and every response is byte-identical to a cold in-process analyzer.
func TestPersistWarmRestart(t *testing.T) {
	dir := t.TempDir()
	c := testCircuit(t, 31)
	qrs := e2eQueries(c)
	ref := serve.NewAnalyzer(noise.NewModel(c), core.Options{})
	want := make([][]byte, len(qrs))
	for i, qr := range qrs {
		want[i] = wireBytes(t, c, ref.Do(toServeQuery(t, c, qr)))
	}

	srvA, tsA, outs := newPersistServer(t, dir)
	if len(outs) != 0 {
		t.Fatalf("fresh state dir restored %d models", len(outs))
	}
	uploadNetlist(t, tsA, "m", c)
	assertServes(t, tsA, "m", qrs, want, "first server")
	if err := srvA.SaveAll(); err != nil {
		t.Fatalf("SaveAll: %v", err)
	}
	if _, err := os.Stat(snapPath(dir, "m")); err != nil {
		t.Fatalf("snapshot file missing after SaveAll: %v", err)
	}

	_, tsB, outs := newPersistServer(t, dir)
	if len(outs) != 1 || !outs[0].Warm || outs[0].Err != nil {
		t.Fatalf("restart outcomes: %+v", outs)
	}
	assertServes(t, tsB, "m", qrs, want, "restored server")
}

// TestPersistCorruptTailRebuilds drives the quarantine-and-rebuild
// ladder: damage to the warm sections of a snapshot (tail bit flip,
// tail truncation) is detected by the CRCs, the file is quarantined,
// and the model is rebuilt cold from its persisted design source —
// with zero failed requests and responses byte-identical to cold.
func TestPersistCorruptTailRebuilds(t *testing.T) {
	c := testCircuit(t, 33)
	qrs := e2eQueries(c)
	ref := serve.NewAnalyzer(noise.NewModel(c), core.Options{})
	want := make([][]byte, len(qrs))
	for i, qr := range qrs {
		want[i] = wireBytes(t, c, ref.Do(toServeQuery(t, c, qr)))
	}

	damage := []struct {
		name string
		hurt func(t *testing.T, path string)
	}{
		{"tail bit flip", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-12] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"tail truncation", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)*3/4], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, dmg := range damage {
		t.Run(dmg.name, func(t *testing.T) {
			dir := t.TempDir()
			srvA, tsA, _ := newPersistServer(t, dir)
			uploadNetlist(t, tsA, "m", c)
			assertServes(t, tsA, "m", qrs, want, "warm server")
			if err := srvA.SaveAll(); err != nil {
				t.Fatal(err)
			}
			// The warm save must be strictly larger than the sources-only
			// upload save, so tail damage lands in the analyzer sections.
			dmg.hurt(t, snapPath(dir, "m"))

			_, tsB, outs := newPersistServer(t, dir)
			if len(outs) != 1 {
				t.Fatalf("outcomes: %+v", outs)
			}
			o := outs[0]
			if o.Warm || !o.Rebuilt || o.Quarantined == "" || o.Err == nil {
				t.Fatalf("outcome not rebuilt-from-source: %+v", o)
			}
			if !snapshot.IsCorrupt(o.Err) {
				t.Errorf("damage reported as %v, want typed corruption", o.Err)
			}
			if _, err := os.Stat(o.Quarantined); err != nil {
				t.Errorf("quarantined evidence missing: %v", err)
			}
			assertServes(t, tsB, "m", qrs, want, "rebuilt server")
			// The rebuild re-persisted the model: a second restart is warm
			// (sources intact, no warm analyzers yet — still a full decode).
			_, tsC, outs := newPersistServer(t, dir)
			if len(outs) != 1 || !outs[0].Warm {
				t.Fatalf("post-rebuild restart outcomes: %+v", outs)
			}
			assertServes(t, tsC, "m", qrs, want, "second restart")
		})
	}
}

// TestPersistCorruptHeadLosesModelNotServer: damage before the design
// source leaves nothing to rebuild from — the model is lost and says
// so, but the server boots, quarantines the file, and keeps serving
// everything else.
func TestPersistCorruptHeadLosesModelNotServer(t *testing.T) {
	dir := t.TempDir()
	c := testCircuit(t, 35)
	srvA, tsA, _ := newPersistServer(t, dir)
	uploadNetlist(t, tsA, "keep", c)
	uploadNetlist(t, tsA, "lost", c)
	if err := srvA.SaveAll(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(snapPath(dir, "lost"))
	if err != nil {
		t.Fatal(err)
	}
	data[len(snapshot.Magic)+4+3] ^= 0x01 // inside the meta section frame
	if err := os.WriteFile(snapPath(dir, "lost"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, tsB, outs := newPersistServer(t, dir)
	if len(outs) != 2 {
		t.Fatalf("outcomes: %+v", outs)
	}
	for _, o := range outs {
		switch o.Name {
		case "keep":
			if !o.Warm {
				t.Errorf("keep: %+v", o)
			}
		case "lost":
			if o.Warm || o.Rebuilt || o.Quarantined == "" || o.Err == nil {
				t.Errorf("lost: %+v", o)
			}
		}
	}
	status, _ := post(t, tsB, "/v1/models/keep/query", QueryRequest{Op: "addition", K: 1})
	if status != http.StatusOK {
		t.Errorf("surviving model: status %d", status)
	}
	resp, err := tsB.Client().Get(tsB.URL + "/v1/models/lost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("lost model still registered: status %d", resp.StatusCode)
	}
}

// TestPersistTruncationSweep boots a server over every coarse prefix of
// a warm snapshot file: no truncation point may panic the boot or
// leave a model serving from bad state — each boot yields warm,
// rebuilt-from-source, or cleanly lost, and a present model answers
// queries byte-identically to cold.
func TestPersistTruncationSweep(t *testing.T) {
	base := t.TempDir()
	c := testCircuit(t, 37)
	qr := QueryRequest{Op: "addition", K: 2}
	ref := serve.NewAnalyzer(noise.NewModel(c), core.Options{})
	want := wireBytes(t, c, ref.Do(toServeQuery(t, c, qr)))

	seedDir := filepath.Join(base, "seed")
	srvA := NewServer(Config{})
	if _, err := srvA.OpenState(seedDir); err != nil {
		t.Fatal(err)
	}
	srvA.SetReady(true)
	tsA := httptest.NewServer(srvA)
	uploadNetlist(t, tsA, "m", c)
	status, body := post(t, tsA, "/v1/models/m/query", qr)
	if status != http.StatusOK || !bytes.Equal(body, want) {
		t.Fatalf("warm server: status %d", status)
	}
	if err := srvA.SaveAll(); err != nil {
		t.Fatal(err)
	}
	tsA.Close()
	full, err := os.ReadFile(snapPath(seedDir, "m"))
	if err != nil {
		t.Fatal(err)
	}

	step := len(full)/24 + 1
	for n := 0; n <= len(full); n += step {
		dir := filepath.Join(base, fmt.Sprintf("cut%d", n))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(snapPath(dir, "m"), full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		_, ts, outs := newPersistServer(t, dir)
		if len(outs) != 1 {
			t.Fatalf("cut %d: outcomes %+v", n, outs)
		}
		o := outs[0]
		if o.Warm || o.Rebuilt {
			status, body := post(t, ts, "/v1/models/m/query", qr)
			if status != http.StatusOK {
				t.Fatalf("cut %d: query status %d: %s", n, status, body)
			}
			if !bytes.Equal(body, want) {
				t.Errorf("cut %d: response differs from cold", n)
			}
		} else if o.Err == nil {
			t.Errorf("cut %d: model lost without an error", n)
		}
	}
	// Sanity: the untruncated file restores warm.
	dir := filepath.Join(base, "whole")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath(dir, "m"), full, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, outs := newPersistServer(t, dir)
	if len(outs) != 1 || !outs[0].Warm {
		t.Fatalf("whole file outcomes: %+v", outs)
	}
}

// TestPersistInjectedWriteFault: an injected snapshot-write failure
// must not fail the upload (the model is live in memory), must count as
// a save error, and must leave the previously published snapshot
// intact — the atomic-rename protocol under an error mid-encode.
func TestPersistInjectedWriteFault(t *testing.T) {
	needProbes(t)
	dir := t.TempDir()
	c := testCircuit(t, 39)
	srv, ts, _ := newPersistServer(t, dir)
	uploadNetlist(t, ts, "m", c)
	if err := srv.SaveAll(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(snapPath(dir, "m"))
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.NewPlan(1).Add(faultinject.SiteSnapshotWrite,
		faultinject.Rule{Every: 1, Err: errors.New("disk on fire")}))
	t.Cleanup(faultinject.Disarm)
	uploadNetlist(t, ts, "m", c) // replace upload; persistence fails quietly
	if err := srv.SaveAll(); err == nil {
		t.Error("SaveAll under injected write fault reported success")
	}
	faultinject.Disarm()

	after, err := os.ReadFile(snapPath(dir, "m"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed save disturbed the previously published snapshot")
	}
	status, _ := post(t, ts, "/v1/models/m/query", QueryRequest{Op: "addition", K: 1})
	if status != http.StatusOK {
		t.Errorf("model unusable after failed save: status %d", status)
	}
}

// TestPersistDeleteAndPreload: deleting a model removes its snapshot
// (no resurrection on the next boot), and Preload models without
// upload material are skipped by persistence rather than breaking it.
func TestPersistDeleteAndPreload(t *testing.T) {
	dir := t.TempDir()
	c := testCircuit(t, 41)
	srv, ts, _ := newPersistServer(t, dir)
	uploadNetlist(t, ts, "gone", c)
	if err := srv.Preload("bare", "netlist", c); err != nil {
		t.Fatal(err)
	}
	if err := srv.PreloadUpload("boot", &UploadRequest{Netlist: netlist.String(c)}); err != nil {
		t.Fatal(err)
	}
	if err := srv.SaveAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snapPath(dir, "bare")); !os.IsNotExist(err) {
		t.Errorf("bare Preload model was persisted: %v", err)
	}
	if _, err := os.Stat(snapPath(dir, "boot")); err != nil {
		t.Errorf("PreloadUpload model not persisted: %v", err)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/gone", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if _, err := os.Stat(snapPath(dir, "gone")); !os.IsNotExist(err) {
		t.Errorf("snapshot survived model deletion: %v", err)
	}

	_, _, outs := newPersistServer(t, dir)
	names := map[string]bool{}
	for _, o := range outs {
		names[o.Name] = o.Warm
	}
	if names["gone"] {
		t.Error("deleted model resurrected on boot")
	}
	if !names["boot"] {
		t.Errorf("persisted preload missing on boot: %+v", outs)
	}
}

// TestReadyzLadder pins the readiness surface: 503 until SetReady,
// 200 while serving, 503 again from the moment draining starts —
// while /healthz stays 200 throughout (the process is always alive).
func TestReadyzLadder(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}

	if status, retry := get("/readyz"); status != http.StatusServiceUnavailable || retry == "" {
		t.Errorf("before SetReady: /readyz %d (Retry-After %q), want 503 with hint", status, retry)
	}
	if status, _ := get("/healthz"); status != http.StatusOK {
		t.Errorf("before SetReady: /healthz %d, want 200", status)
	}

	srv.SetReady(true)
	if status, _ := get("/readyz"); status != http.StatusOK {
		t.Errorf("after SetReady: /readyz %d, want 200", status)
	}

	srv.Drain()
	if status, _ := get("/readyz"); status != http.StatusServiceUnavailable {
		t.Errorf("draining: /readyz %d, want 503", status)
	}
	if status, _ := get("/healthz"); status != http.StatusOK {
		t.Errorf("draining: /healthz %d, want 200", status)
	}
}
