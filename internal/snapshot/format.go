// Package snapshot is the crash-safe warm-state persistence layer:
// a versioned, checksummed binary container format (section-framed
// payloads, CRC-32C per section), atomic file replacement (temp file +
// fsync + rename + directory fsync), quarantine of corrupt files, and
// a per-model store with a JSON manifest. The engine layers (core,
// serve, httpapi) encode their warm state through the Encoder/Decoder
// primitives defined here; this package knows nothing about what the
// payloads mean.
//
// Durability ladder (DESIGN.md §13): a snapshot file is either the
// complete previous version or the complete new version — never a torn
// mix — because writes go to a temp file that is fsynced before an
// atomic rename. Corruption that slips past the filesystem (bit rot,
// truncation, operator error) is detected by the per-section CRCs at
// restore; the decoder then fails with a typed *FormatError, the store
// quarantines the file, and the caller rebuilds from the design source
// (which is framed as the first section precisely so it survives
// tail truncation).
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Magic and version of the container format. Decoders refuse other
// magics and later versions with a typed error; version bumps are
// deliberate format changes, never silent.
const (
	Magic   = "tksnap\x00\x01"
	Version = 1
)

// Section size cap: no single section may claim more than 1 GiB. The
// cap bounds decoder allocations against adversarial or corrupt length
// fields long before any real payload gets near it (a 1M-net window
// section is ~24 MB).
const maxSectionBytes = 1 << 30

// castagnoli is the CRC-32C table used for every section checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// sectionSum is the frame checksum: CRC-32C over the kind byte
// followed by the payload.
func sectionSum(kind uint8, payload []byte) uint32 {
	sum := crc32.Checksum([]byte{kind}, castagnoli)
	return crc32.Update(sum, castagnoli, payload)
}

// FormatError is the typed error for every way a snapshot can fail to
// decode: bad magic, unsupported version, truncation, checksum
// mismatch, out-of-range values. Callers branch on it (errors.As) to
// distinguish "this file is corrupt — quarantine and rebuild" from
// I/O errors.
type FormatError struct {
	// Offset is the byte offset at which decoding failed, when known.
	Offset int64
	// Msg describes the failure.
	Msg string
}

func (e *FormatError) Error() string {
	if e.Offset > 0 {
		return fmt.Sprintf("snapshot: invalid format at byte %d: %s", e.Offset, e.Msg)
	}
	return "snapshot: invalid format: " + e.Msg
}

// ErrCorrupt is the sentinel every *FormatError matches via errors.Is,
// so callers can classify without caring about offsets or messages.
var ErrCorrupt = errors.New("snapshot: corrupt")

// Is makes errors.Is(err, ErrCorrupt) true for this type.
func (e *FormatError) Is(target error) bool { return target == ErrCorrupt }

// IsCorrupt reports whether err is a snapshot format error (as opposed
// to an I/O error or a semantic rebuild failure).
func IsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }

func formatErr(off int64, format string, args ...any) *FormatError {
	return &FormatError{Offset: off, Msg: fmt.Sprintf(format, args...)}
}

// Encoder writes the container: a header followed by framed sections.
// Section payloads are buffered in memory and flushed with a length
// and CRC-32C prefix, so a reader can verify integrity before
// interpreting a single payload byte. Encoders are not safe for
// concurrent use.
type Encoder struct {
	w   io.Writer
	buf []byte // current section payload
	n   int64  // bytes written to w
	err error
}

// NewEncoder writes the container header and returns the encoder.
func NewEncoder(w io.Writer) (*Encoder, error) {
	e := &Encoder{w: w}
	var hdr [len(Magic) + 4]byte
	copy(hdr[:], Magic)
	binary.LittleEndian.PutUint32(hdr[len(Magic):], Version)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: write header: %w", err)
	}
	e.n = int64(len(hdr))
	return e, nil
}

// Bytes written so far (header + flushed sections).
func (e *Encoder) Bytes() int64 { return e.n }

// Begin starts a new section; primitives append to it until Flush.
func (e *Encoder) Begin() { e.buf = e.buf[:0] }

// Flush frames the buffered section under the given kind tag:
// [kind u8][len u32][crc32c u32][payload]. The checksum covers the
// kind byte and the payload, so a bit flip anywhere in the frame —
// tag, length, or body — is detected (a flipped length misaligns the
// checksummed span, which fails the same way). The faultinject site
// SiteSnapshotWrite fires once per section so chaos tests can inject
// write errors and delays at every framing boundary.
func (e *Encoder) Flush(kind uint8) error {
	if e.err != nil {
		return e.err
	}
	if err := fireWriteProbe(); err != nil {
		e.err = err
		return err
	}
	if len(e.buf) > maxSectionBytes {
		e.err = fmt.Errorf("snapshot: section %d payload %d bytes exceeds cap", kind, len(e.buf))
		return e.err
	}
	var hdr [9]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(e.buf)))
	binary.LittleEndian.PutUint32(hdr[5:], sectionSum(kind, e.buf))
	if _, err := e.w.Write(hdr[:]); err != nil {
		e.err = fmt.Errorf("snapshot: write section: %w", err)
		return e.err
	}
	if _, err := e.w.Write(e.buf); err != nil {
		e.err = fmt.Errorf("snapshot: write section: %w", err)
		return e.err
	}
	e.n += int64(len(hdr) + len(e.buf))
	return nil
}

// Payload primitives. All integers are little-endian fixed width;
// floats are IEEE-754 bit patterns, so every value round-trips
// bit-exactly.

func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

func (e *Encoder) Int(v int) { e.I64(int64(v)) }

func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob embeds an opaque byte string — e.g. a nested container written
// by another layer's encoder — under a length prefix.
func (e *Encoder) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *Encoder) F64s(vs []float64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.F64(v)
	}
}

func (e *Encoder) Ints(vs []int) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.I64(int64(v))
	}
}

func (e *Encoder) Bools(vs []bool) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.Bool(v)
	}
}

// Decoder reads the container back. Every primitive returns typed
// *FormatError values on truncation or out-of-range content and the
// decoder goes sticky-failed, so callers may decode a whole section
// and check the error once at the end.
type Decoder struct {
	r   io.Reader
	off int64 // container offset of the current section's payload

	buf []byte // current verified section payload
	pos int    // read cursor within buf
	err error
}

// NewDecoder validates the header and returns the decoder.
func NewDecoder(r io.Reader) (*Decoder, error) {
	d := &Decoder{r: r}
	hdr := make([]byte, len(Magic)+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, formatErr(0, "short header: %v", err)
	}
	if string(hdr[:len(Magic)]) != Magic {
		return nil, formatErr(0, "bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[len(Magic):]); v != Version {
		return nil, formatErr(int64(len(Magic)), "unsupported version %d (want %d)", v, Version)
	}
	d.off = int64(len(hdr))
	return d, nil
}

// Next reads the next section frame, verifies its CRC and makes its
// payload current. io.EOF (untyped) marks a clean end of container;
// every other failure is a *FormatError. The faultinject site
// SiteSnapshotRestore fires once per section so chaos tests can
// inject read-side corruption at every framing boundary.
func (d *Decoder) Next() (kind uint8, err error) {
	if d.err != nil {
		return 0, d.err
	}
	if err := fireRestoreProbe(); err != nil {
		d.err = err
		return 0, err
	}
	var hdr [9]byte
	if _, err := io.ReadFull(d.r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, formatErr(d.off, "short section header: %v", err)
	}
	if _, err := io.ReadFull(d.r, hdr[1:]); err != nil {
		return 0, formatErr(d.off, "short section header: %v", err)
	}
	kind = hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:])
	sum := binary.LittleEndian.Uint32(hdr[5:])
	if n > maxSectionBytes {
		return 0, formatErr(d.off, "section %d claims %d bytes (cap %d)", kind, n, maxSectionBytes)
	}
	if cap(d.buf) < int(n) {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		return 0, formatErr(d.off, "truncated section %d (%d bytes claimed): %v", kind, n, err)
	}
	if got := sectionSum(kind, d.buf); got != sum {
		return 0, formatErr(d.off, "section %d checksum mismatch (got %08x want %08x)", kind, got, sum)
	}
	d.off += int64(len(hdr)) + int64(n)
	d.pos = 0
	return kind, nil
}

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the unread bytes of the current section.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// AtEnd reports whether the current section is fully consumed —
// decoders check it after reading a section to reject trailing junk.
func (d *Decoder) AtEnd() bool { return d.pos == len(d.buf) }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = formatErr(d.off, format, args...)
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n {
		d.fail("section underrun: need %d bytes, have %d", n, d.Remaining())
		return nil
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bool out of range")
		return false
	}
}

func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *Decoder) I64() int64 { return int64(d.U64()) }

func (d *Decoder) Int() int {
	v := d.I64()
	if int64(int(v)) != v {
		d.fail("integer %d overflows int", v)
		return 0
	}
	return int(v)
}

func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// FiniteF64 decodes a float and rejects NaN/±Inf: warm state written
// by the engine is finite by construction (sta and the waveform layer
// reject non-finite values), so a non-finite figure can only mean
// corruption that happened to keep the CRC valid — better refused than
// served.
func (d *Decoder) FiniteF64() float64 {
	v := d.F64()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		d.fail("non-finite float")
		return 0
	}
	return v
}

// len32 decodes a length prefix, bounds-checked against the bytes the
// section can still supply (elemSize is the minimum encoding size of
// one element), so corrupt lengths cannot drive huge allocations.
func (d *Decoder) len32(elemSize int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if elemSize > 0 && int(n) > d.Remaining()/elemSize {
		d.fail("length %d exceeds section capacity", n)
		return 0
	}
	return int(n)
}

func (d *Decoder) String() string {
	n := d.len32(1)
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Blob reads back an embedded byte string. The returned slice is a
// copy, valid after the decoder moves to the next section.
func (d *Decoder) Blob() []byte {
	n := d.len32(1)
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func (d *Decoder) F64s() []float64 {
	n := d.len32(8)
	if n == 0 || d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// FiniteF64s is F64s rejecting non-finite elements.
func (d *Decoder) FiniteF64s() []float64 {
	n := d.len32(8)
	if n == 0 || d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.FiniteF64()
	}
	return out
}

func (d *Decoder) Ints() []int {
	n := d.len32(8)
	if n == 0 || d.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	return out
}

func (d *Decoder) Bools() []bool {
	n := d.len32(1)
	if n == 0 || d.err != nil {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.Bool()
	}
	return out
}
