// Shieldplan: given a routed design with crosstalk, produce a shielding
// work order. A router can typically fix only a limited number of
// coupling situations (shield insertion, wire spacing); the top-k
// aggressors elimination set says exactly which k couplings to spend
// that budget on, and what delay each increment buys.
//
// This is the paper's motivating use case for the elimination set:
// "if a designer can eliminate only 10 coupling situations, the top-10
// aggressor elimination set exactly points to the set which must be
// fixed to obtain the maximum reduction in delay noise."
package main

import (
	"flag"
	"fmt"
	"log"

	"topkagg"
)

func main() {
	bench := flag.String("bench", "i1", "benchmark circuit to plan shields for")
	budget := flag.Int("budget", 10, "how many couplings the router may fix")
	flag.Parse()

	c, err := topkagg.GenerateBenchmark(*bench)
	if err != nil {
		log.Fatal(err)
	}
	m := topkagg.NewModel(c)

	res, err := topkagg.TopKElimination(m, *budget, topkagg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s: %d gates, %d coupling caps\n", c.Name, c.NumGates(), c.NumCouplings())
	fmt.Printf("delay with all crosstalk: %.4f ns; noiseless floor: %.4f ns\n\n",
		res.AllDelay, res.BaseDelay)

	if len(res.PerK) == 0 {
		fmt.Println("nothing to fix: no coupling affects the critical paths")
		return
	}

	fmt.Printf("shield plan (budget %d fixes):\n", *budget)
	prev := res.AllDelay
	top := res.Top()
	seen := map[topkagg.CouplingID]bool{}
	for i, s := range res.PerK {
		// Report the coupling this increment added and the measured
		// delay after fixing the whole set of size i+1.
		var added []topkagg.CouplingID
		for _, id := range s.IDs {
			if !seen[id] {
				added = append(added, id)
			}
		}
		for _, id := range s.IDs {
			seen[id] = true
		}
		gain := prev - s.Delay
		fmt.Printf("  fix %2d: delay %.4f ns (recovers %+.4f ns)", i+1, s.Delay, gain)
		for _, id := range added {
			fmt.Printf("  -> shield %s", topkagg.CouplingString(c, id))
		}
		fmt.Println()
		prev = s.Delay
	}
	recovered := res.AllDelay - top.Delay
	total := res.AllDelay - res.BaseDelay
	fmt.Printf("\nbudget of %d fixes recovers %.4f ns of the %.4f ns crosstalk penalty (%.0f%%)\n",
		*budget, recovered, total, 100*recovered/total)

	// Break the chosen set down: verified per-coupling effects.
	ex, err := topkagg.ExplainElimination(m, top.IDs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwhy these couplings (measured leave-one-out / solo effects):")
	for _, contrib := range ex.Contributions {
		fmt.Printf("  %-24s marginal %.4f ns, solo %.4f ns\n",
			topkagg.CouplingString(c, contrib.Coupling), contrib.Marginal, contrib.Solo)
	}
	fmt.Printf("  combination synergy: %+.4f ns\n", ex.Synergy)
}
