package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"

	"topkagg/internal/gen"
	"topkagg/internal/noise"
	"topkagg/internal/snapshot"
)

// snapPrepared builds a model + fixpoint analysis + prepared state for
// one mode over a small seeded circuit.
func snapPrepared(t *testing.T, elim bool, opt Options) (*noise.Model, *noise.Analysis, *Shared) {
	t.Helper()
	c, err := gen.Build(gen.Spec{Name: "snapio", Gates: 14, Couplings: 18, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	m := noise.NewModel(c)
	full, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var s *Shared
	if elim {
		s, err = PrepareEliminationFrom(m, full, WholeCircuit, opt)
	} else {
		s, err = PrepareAdditionFrom(m, full, WholeCircuit, opt)
	}
	if err != nil {
		t.Fatal(err)
	}
	return m, full, s
}

// frameShared serializes one preparation into a single framed section
// and returns the whole container bytes (magic header + section).
func frameShared(t *testing.T, s *Shared) []byte {
	t.Helper()
	var buf bytes.Buffer
	e, err := snapshot.NewEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e.Begin()
	s.EncodeShared(e)
	if err := e.Flush(1); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeShared reads the single framed preparation section back.
func decodeShared(data []byte, m *noise.Model, full *noise.Analysis, opt Options) (*Shared, error) {
	d, err := snapshot.NewDecoder(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if _, err := d.Next(); err != nil {
		return nil, err
	}
	return DecodeShared(d, m, full, opt)
}

// TestSharedSnapshotRoundTrip pins the in-package restore-equivalence
// contract for both modes: the decoded preparation carries bit-equal
// state and answers TopK identically to the original.
func TestSharedSnapshotRoundTrip(t *testing.T) {
	for _, elim := range []bool{false, true} {
		name := "addition"
		if elim {
			name = "elimination"
		}
		t.Run(name, func(t *testing.T) {
			m, full, s := snapPrepared(t, elim, Options{})
			got, err := decodeShared(frameShared(t, s), m, full, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got.Elimination() != elim {
				t.Fatalf("Elimination() = %v, want %v", got.Elimination(), elim)
			}

			p, q := s.p, got.p
			if !reflect.DeepEqual(p.victims, q.victims) || !reflect.DeepEqual(p.levels, q.levels) {
				t.Error("victims/levels differ after round trip")
			}
			if !reflect.DeepEqual(p.domLo, q.domLo) || !reflect.DeepEqual(p.domHi, q.domHi) {
				t.Error("dominance intervals differ after round trip")
			}
			for _, v := range p.victims {
				a, b := p.prim[v], q.prim[v]
				if len(a) != len(b) {
					t.Fatalf("victim %d: %d vs %d primaries", v, len(a), len(b))
				}
				for i := range a {
					if a[i].id != b[i].id || a[i].score != b[i].score ||
						!reflect.DeepEqual(a[i].env.Points(), b[i].env.Points()) {
						t.Fatalf("victim %d primary %d differs", v, i)
					}
				}
			}
			if elim {
				if !reflect.DeepEqual(p.propShift, q.propShift) || !reflect.DeepEqual(p.totalDN, q.totalDN) {
					t.Error("elimination totals differ after round trip")
				}
			}

			want, err := s.TopK(3)
			if err != nil {
				t.Fatal(err)
			}
			have, err := got.TopK(3)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.PerK, have.PerK) {
				t.Errorf("restored TopK PerK differs:\nwant %+v\nhave %+v", want.PerK, have.PerK)
			}
		})
	}
}

// TestOptionsRoundTrip covers every Options field including the
// active-coupling mask, plus the wrong-circuit mask rejection.
func TestOptionsRoundTrip(t *testing.T) {
	c, err := gen.Build(gen.Spec{Name: "snapio", Gates: 8, Couplings: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	active := make([]bool, c.NumCouplings())
	active[0], active[2] = true, true
	opts := []Options{
		{},
		{MaxListWidth: 7, MaxExtend: 2, MaxHigherOrder: 1, SlackFrac: 0.25,
			NoDominance: true, NoPseudo: true, ExactPrune: true, NoRescore: true,
			VerifyTop: 4, Active: active},
	}
	for i, opt := range opts {
		var buf bytes.Buffer
		e, err := snapshot.NewEncoder(&buf)
		if err != nil {
			t.Fatal(err)
		}
		e.Begin()
		EncodeOptions(e, opt)
		if err := e.Flush(1); err != nil {
			t.Fatal(err)
		}
		d, err := snapshot.NewDecoder(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Next(); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeOptions(d, c)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, opt) {
			t.Errorf("case %d: round trip %+v != %+v", i, got, opt)
		}
	}

	// The same encoded mask must be rejected against a circuit with a
	// different coupling count.
	var buf bytes.Buffer
	e, _ := snapshot.NewEncoder(&buf)
	e.Begin()
	EncodeOptions(e, opts[1])
	if err := e.Flush(1); err != nil {
		t.Fatal(err)
	}
	other, err := gen.Build(gen.Spec{Name: "snapio2", Gates: 12, Couplings: 14, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := snapshot.NewDecoder(bytes.NewReader(buf.Bytes()))
	if _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeOptions(d, other); err == nil {
		t.Error("mask for 6 couplings accepted against a 14-coupling circuit")
	}
}

// TestDecodeSharedRejectsWrongCircuit pins the shape check: a
// preparation snapshotted from one circuit must not restore against a
// model with different net/coupling counts.
func TestDecodeSharedRejectsWrongCircuit(t *testing.T) {
	_, _, s := snapPrepared(t, false, Options{})
	data := frameShared(t, s)

	c2, err := gen.Build(gen.Spec{Name: "other", Gates: 22, Couplings: 30, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	m2 := noise.NewModel(c2)
	full2, err := m2.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeShared(data, m2, full2, Options{}); err == nil {
		t.Fatal("preparation restored against the wrong circuit")
	}
}

// reframe rebuilds the single-section container with the payload
// truncated by cut bytes and a freshly computed (valid) CRC, so the
// truncation reaches DecodeShared instead of being caught by the
// section checksum.
func reframe(t *testing.T, data []byte, resize func([]byte) []byte) []byte {
	t.Helper()
	off := len(snapshot.Magic) + 4 // magic + version word
	kind := data[off]
	n := int(binary.LittleEndian.Uint32(data[off+1:]))
	payload := resize(data[off+9 : off+9+n])
	out := append([]byte(nil), data[:off]...)
	out = append(out, kind)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	sum := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	sum.Write([]byte{kind})
	sum.Write(payload)
	out = binary.LittleEndian.AppendUint32(out, sum.Sum32())
	return append(out, payload...)
}

// TestDecodeSharedTruncationSweep feeds DecodeShared every 16-byte
// truncation of a valid preparation payload (re-framed with a valid
// CRC so the decoder's semantic checks are what fires): each must
// return a typed error, never panic, never succeed.
func TestDecodeSharedTruncationSweep(t *testing.T) {
	for _, elim := range []bool{false, true} {
		m, full, s := snapPrepared(t, elim, Options{})
		data := frameShared(t, s)
		payloadLen := int(binary.LittleEndian.Uint32(data[len(snapshot.Magic)+5:]))
		for cut := 1; cut < payloadLen; cut += 16 {
			short := reframe(t, data, func(p []byte) []byte { return p[:len(p)-cut] })
			if _, err := decodeShared(short, m, full, Options{}); err == nil {
				t.Fatalf("elim=%v: payload truncated by %d bytes decoded cleanly", elim, cut)
			}
		}
		// Extra trailing bytes must be rejected too (AtEnd check).
		grown := reframe(t, data, func(p []byte) []byte {
			return append(append([]byte(nil), p...), 0, 0, 0, 0, 0, 0, 0, 0)
		})
		if _, err := decodeShared(grown, m, full, Options{}); err == nil {
			t.Fatalf("elim=%v: payload with trailing garbage decoded cleanly", elim)
		}
	}
}
