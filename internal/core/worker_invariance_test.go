package core

import (
	"reflect"
	"strings"
	"testing"

	"topkagg/internal/gen"
	"topkagg/internal/noise"
	"topkagg/internal/obs"
)

// stripTime returns a Stats copy with every wall-clock field zeroed,
// leaving only the deterministic enumeration counters.
func stripTime(st *Stats) *Stats {
	if st == nil {
		return nil
	}
	cp := *st
	cp.RescoreElapsed = 0
	cp.PerK = append([]KStats(nil), st.PerK...)
	for i := range cp.PerK {
		cp.PerK[i].Elapsed = 0
	}
	return &cp
}

// TestStatsWorkerInvariance is the regression test behind the KStats
// atomicity audit: the engine generates candidates level-parallel but
// merges every per-victim result serially after the workers join, so
// Stats, KStats, and every published metric counter must be identical
// for any worker count — not approximately, identically. The noise
// fixpoint counters ride on the same guarantee (per-worker scratch
// counters flushed serially after each run over a deterministic eval
// set). A mismatch here means a counter moved onto a shared path
// without synchronization, exactly the bug class the audit looked for.
// Run under -race to catch the unsynchronized write itself.
func TestStatsWorkerInvariance(t *testing.T) {
	c, err := gen.Build(gen.Spec{Name: "winv", Gates: 30, Couplings: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, elim := range []bool{false, true} {
		run := TopKAddition
		mode := "addition"
		if elim {
			run = TopKElimination
			mode = "elimination"
		}
		type outcome struct {
			res  *Result
			snap *obs.Snapshot
		}
		byWorkers := map[int]outcome{}
		for _, w := range []int{1, 8} {
			reg := obs.New()
			m := noise.NewModel(c).WithWorkers(w).WithObs(reg)
			res, err := run(m, 4, Options{SlackFrac: 1, VerifyTop: 4})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", mode, w, err)
			}
			byWorkers[w] = outcome{res: res, snap: reg.Snapshot()}
		}
		serial, parallel := byWorkers[1], byWorkers[8]

		if !reflect.DeepEqual(stripTime(serial.res.Stats), stripTime(parallel.res.Stats)) {
			t.Errorf("%s: Stats differ between workers=1 and workers=8:\n  w1: %+v\n  w8: %+v",
				mode, stripTime(serial.res.Stats), stripTime(parallel.res.Stats))
		}

		// Every metric counter — enumeration, fixpoint, memo, STA — must
		// match exactly. Counter names are identical by construction
		// (same code paths ran), so compare the full maps.
		if !reflect.DeepEqual(serial.snap.Counters, parallel.snap.Counters) {
			for name, v1 := range serial.snap.Counters {
				if v8 := parallel.snap.Counters[name]; v8 != v1 {
					t.Errorf("%s: counter %s: workers=1 -> %d, workers=8 -> %d", mode, name, v1, v8)
				}
			}
			for name := range parallel.snap.Counters {
				if _, ok := serial.snap.Counters[name]; !ok {
					t.Errorf("%s: counter %s exists only under workers=8", mode, name)
				}
			}
		}

		// Histograms of counts (not durations) must agree in shape:
		// same observation count, sum, and extremes.
		for name, h1 := range serial.snap.Histograms {
			if strings.HasPrefix(name, "span.") || strings.Contains(name, "_ns") {
				continue
			}
			h8, ok := parallel.snap.Histograms[name]
			if !ok {
				t.Errorf("%s: histogram %s missing under workers=8", mode, name)
				continue
			}
			if h1.Count != h8.Count || h1.Sum != h8.Sum || h1.Min != h8.Min || h1.Max != h8.Max {
				t.Errorf("%s: histogram %s differs: workers=1 count=%d sum=%d min=%d max=%d, workers=8 count=%d sum=%d min=%d max=%d",
					mode, name, h1.Count, h1.Sum, h1.Min, h1.Max, h8.Count, h8.Sum, h8.Min, h8.Max)
			}
		}
	}
}
