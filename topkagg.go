// Package topkagg is a library for identifying the top-k aggressor
// coupling sets in crosstalk delay-noise analysis, reproducing
// "Top-k Aggressors Sets in Delay Noise Analysis" (Gandikota, Chopra,
// Blaauw, Sylvester, Becer — DAC 2007).
//
// The library answers two dual questions about a gate-level design
// with coupling capacitors:
//
//   - Addition set: which k couplings, if their crosstalk is
//     considered on top of noiseless timing, increase circuit delay
//     the most?
//   - Elimination set: which k couplings, if fixed (shielded or
//     spaced), recover the most circuit delay from the fully noisy
//     design?
//
// Both are computed by the paper's implicit enumeration: candidate
// aggressor sets propagate through the circuit in topological order as
// pseudo aggressors, and dominance between noise envelopes prunes the
// search to irredundant lists.
//
// A minimal session:
//
//	c, err := topkagg.LoadNetlist("design.ckt")
//	m := topkagg.NewModel(c)
//	res, err := topkagg.TopKElimination(m, 10, topkagg.Options{})
//	for _, cpl := range res.Top().IDs {
//	    fmt.Println("shield:", topkagg.CouplingString(c, cpl))
//	}
//
// The underlying substrates (PWL waveform algebra, synthetic cell
// library, netlist format, static timing, linear noise analysis,
// brute-force baseline and benchmark generator) live in the internal
// packages and are re-exported here only to the extent a library user
// needs.
package topkagg

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"topkagg/internal/bruteforce"
	"topkagg/internal/budget"
	"topkagg/internal/cell"
	"topkagg/internal/circuit"
	"topkagg/internal/core"
	"topkagg/internal/filter"
	"topkagg/internal/gen"
	"topkagg/internal/kselect"
	"topkagg/internal/liberty"
	"topkagg/internal/mc"
	"topkagg/internal/netlist"
	"topkagg/internal/noise"
	"topkagg/internal/obs"
	"topkagg/internal/pathreport"
	"topkagg/internal/serve"
	"topkagg/internal/sizing"
	"topkagg/internal/spef"
	"topkagg/internal/sta"
	"topkagg/internal/verilog"
)

// Re-exported types. These aliases form the public API surface; see
// the internal packages for full documentation of each.
type (
	// Circuit is a gate-level netlist with coupled parasitics.
	Circuit = circuit.Circuit
	// CouplingID identifies one coupling capacitor in a Circuit.
	CouplingID = circuit.CouplingID
	// NetID identifies a net in a Circuit.
	NetID = circuit.NetID
	// Library is a standard-cell library.
	Library = cell.Library
	// Model binds the linear noise-analysis framework to a circuit.
	Model = noise.Model
	// Mask selects the active subset of coupling capacitors.
	Mask = noise.Mask
	// Analysis is the result of one iterative noise-aware timing run.
	Analysis = noise.Analysis
	// Window is a net's switching window (EAT/LAT/slew).
	Window = sta.Window
	// Options tune the top-k enumeration.
	Options = core.Options
	// Result is a top-k run's outcome with per-cardinality selections.
	Result = core.Result
	// Selected is the winning aggressor set at one cardinality.
	Selected = core.Selected
	// Spec describes a synthetic benchmark for Generate.
	Spec = gen.Spec
	// BruteForceResult is the outcome of an exhaustive baseline search.
	BruteForceResult = bruteforce.Result
	// DriverModel abstracts the victim holding-driver model for noise
	// pulses (paper future work: nonlinear driver models).
	DriverModel = noise.DriverModel
	// LinearThevenin is the paper's default linear holding driver.
	LinearThevenin = noise.LinearThevenin
	// SaturatingCSM is the first-order nonlinear (current-source-
	// model-flavored) holding driver.
	SaturatingCSM = noise.SaturatingCSM
	// KneeParams tune GoodK's convergence detection.
	KneeParams = kselect.Params
	// FilterOptions tune false-aggressor pruning.
	FilterOptions = filter.Options
	// FilterResult reports false-aggressor classification.
	FilterResult = filter.Result
	// IncrementalStats reports what an incremental noise run did.
	IncrementalStats = noise.IncrementalStats
	// SizingOptions tune the crosstalk-driven upsizing optimizer.
	SizingOptions = sizing.Options
	// SizingResult summarizes an upsizing run.
	SizingResult = sizing.Result
	// Explanation breaks a selected set into verified per-coupling
	// marginal and solo effects plus a synergy term.
	Explanation = core.Explanation
	// Contribution is one coupling's share of an Explanation.
	Contribution = core.Contribution
	// MCConfig controls a Monte-Carlo switching-scenario run.
	MCConfig = mc.Config
	// MCResult is a sampled crosstalk-delay distribution.
	MCResult = mc.Result
	// Analyzer answers batches of top-k and what-if queries over one
	// model, memoizing the expensive shared engine state across queries.
	Analyzer = serve.Analyzer
	// Query is one unit of work for an Analyzer batch.
	Query = serve.Query
	// QueryLimits bound one query's execution (timeout + work budget).
	QueryLimits = serve.Limits
	// Response is the outcome of one Query.
	Response = serve.Response
	// QueryOp selects what a Query computes.
	QueryOp = serve.Op
	// AnalyzerStats aggregates an Analyzer's cache counters.
	AnalyzerStats = serve.Stats
	// EngineStats instruments one top-k enumeration (see Result.Stats).
	EngineStats = core.Stats
	// KStats instruments one cardinality of an enumeration.
	KStats = core.KStats
	// Metrics is a registry of counters, histograms and spans the
	// analysis engines publish into when attached to a Model (see
	// NewMetrics and Model.WithObs). Nil-safe: a nil *Metrics disables
	// all instrumentation at near-zero cost.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time, JSON-serializable copy of
	// every metric in a Metrics registry.
	MetricsSnapshot = obs.Snapshot
	// DebugServer is a running metrics/expvar/pprof HTTP endpoint.
	DebugServer = obs.DebugServer
)

// Query operations and targets for the batch Analyzer.
const (
	// OpAddition asks for top-k aggressor addition sets.
	OpAddition = serve.Addition
	// OpElimination asks for top-k aggressor elimination sets.
	OpElimination = serve.Elimination
	// OpWhatIf evaluates one explicit fix scenario incrementally.
	OpWhatIf = serve.WhatIf
	// WholeCircuit targets the circuit outputs rather than one net.
	WholeCircuit = serve.WholeCircuit
)

// DefaultLibrary returns the synthetic 0.13µm-scale standard-cell
// library used by the netlist parser and the benchmark generator.
func DefaultLibrary() *Library { return cell.Default() }

// ParseNetlist reads a circuit in the text netlist format using the
// default cell library.
func ParseNetlist(r io.Reader) (*Circuit, error) {
	return netlist.Parse(r, cell.Default())
}

// ParseNetlistString parses an in-memory netlist.
func ParseNetlistString(s string) (*Circuit, error) {
	return netlist.ParseString(s, cell.Default())
}

// LoadNetlist reads a circuit from a netlist file.
func LoadNetlist(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topkagg: %w", err)
	}
	defer f.Close()
	c, err := netlist.Parse(f, cell.Default())
	if err != nil {
		return nil, fmt.Errorf("topkagg: %s: %w", path, err)
	}
	return c, nil
}

// WriteNetlist emits a circuit in canonical netlist form.
func WriteNetlist(w io.Writer, c *Circuit) error { return netlist.Write(w, c) }

// NetlistString renders a circuit in canonical netlist form.
func NetlistString(c *Circuit) string { return netlist.String(c) }

// Generate builds a synthetic coupled benchmark circuit from a spec.
func Generate(spec Spec) (*Circuit, error) { return gen.Build(spec) }

// GenerateBenchmark builds one of the paper's benchmarks (i1..i10).
func GenerateBenchmark(name string) (*Circuit, error) { return gen.BuildPaper(name) }

// Benchmarks returns the specs of the paper's ten benchmarks.
func Benchmarks() []Spec { return gen.Paper() }

// NewModel creates a noise model for a circuit with default iteration
// controls.
func NewModel(c *Circuit) *Model { return noise.NewModel(c) }

// NewMetrics creates an empty metric registry. Attach it with
// Model.WithObs (or by setting Model.Obs) to have the fixpoint, STA,
// enumeration and batch layers publish counters, histograms and spans
// into it; read them back with its Snapshot method, serve them over
// HTTP with ServeDebug, or render them with Snapshot.WriteTable.
func NewMetrics() *Metrics { return obs.New() }

// ServeDebug starts an HTTP debug endpoint for the registry on addr
// (e.g. "localhost:6060"), exposing /debug/metrics (JSON snapshot),
// /debug/vars (expvar) and /debug/pprof/. Close the returned server
// when done.
func ServeDebug(r *Metrics, addr string) (*DebugServer, error) { return r.ServeDebug(addr) }

// TopKAddition computes, for every cardinality 1..k, the coupling set
// whose activation adds the most circuit delay to noiseless timing.
func TopKAddition(m *Model, k int, opt Options) (*Result, error) {
	return core.TopKAddition(m, k, opt)
}

// TopKElimination computes, for every cardinality 1..k, the coupling
// set whose removal recovers the most circuit delay from the fully
// noisy design.
func TopKElimination(m *Model, k int, opt Options) (*Result, error) {
	return core.TopKElimination(m, k, opt)
}

// TopKAdditionAt computes top-k addition sets for one designated
// victim net ("which k couplings most delay THIS net?"); the net's
// full fanin cone is analyzed regardless of slack.
func TopKAdditionAt(m *Model, net NetID, k int, opt Options) (*Result, error) {
	return core.TopKAdditionAt(m, net, k, opt)
}

// TopKEliminationAt computes top-k elimination sets for one designated
// victim net ("which k couplings to fix to recover THIS net?").
func TopKEliminationAt(m *Model, net NetID, k int, opt Options) (*Result, error) {
	return core.TopKEliminationAt(m, net, k, opt)
}

// TopKAdditionCtx is TopKAddition honoring the context's cancellation
// and deadline: the engines poll it at bounded granularity, and an
// enumeration stopped mid-run returns a best-effort Result with
// Partial set, holding exactly the cardinalities that completed (each
// identical to an unbounded run's).
func TopKAdditionCtx(ctx context.Context, m *Model, k int, opt Options) (*Result, error) {
	return core.TopKAdditionCtx(ctx, m, k, opt)
}

// TopKEliminationCtx is TopKElimination honoring the context (see
// TopKAdditionCtx).
func TopKEliminationCtx(ctx context.Context, m *Model, k int, opt Options) (*Result, error) {
	return core.TopKEliminationCtx(ctx, m, k, opt)
}

// TopKAdditionAtCtx is TopKAdditionAt honoring the context (see
// TopKAdditionCtx).
func TopKAdditionAtCtx(ctx context.Context, m *Model, net NetID, k int, opt Options) (*Result, error) {
	return core.TopKAdditionAtCtx(ctx, m, net, k, opt)
}

// TopKEliminationAtCtx is TopKEliminationAt honoring the context (see
// TopKAdditionCtx).
func TopKEliminationAtCtx(ctx context.Context, m *Model, net NetID, k int, opt Options) (*Result, error) {
	return core.TopKEliminationAtCtx(ctx, m, net, k, opt)
}

// StopReason classifies an error returned anywhere in the stack as an
// early-stop condition: "canceled", "deadline", "work-budget" or
// "worker-panic" for stops, "" for ordinary errors (and nil). Use it
// to distinguish a timed-out run from a genuinely failed one.
func StopReason(err error) string {
	if r := budget.ReasonOf(err); r != budget.None {
		return r.String()
	}
	return ""
}

// ExactOptions returns enumeration options with every pruning cap
// lifted (the paper's exact lists) — intended for small circuits.
func ExactOptions() Options { return core.Exact() }

// NewAnalyzer creates a batch-query Analyzer over the model. Unlike
// the one-shot TopK* calls, an Analyzer performs the noise fixpoint at
// most once and memoizes per-target engine state, so k-sweeps and
// per-net scans amortize the preparation. All methods are safe for
// concurrent use, and batch results are identical regardless of the
// worker count.
func NewAnalyzer(m *Model, opt Options) *Analyzer { return serve.NewAnalyzer(m, opt) }

// KSweepQueries builds one top-k query per target net — the batch
// workload an Analyzer amortizes best.
func KSweepQueries(op QueryOp, nets []NetID, k int) []Query {
	return serve.KSweep(op, nets, k)
}

// BruteForceAddition exhaustively searches all C(r, k) coupling
// subsets for the worst addition set. budget bounds the wall-clock
// time (0 = unbounded).
func BruteForceAddition(m *Model, k int, budget time.Duration) (*BruteForceResult, error) {
	return bruteforce.Addition(m, k, budget)
}

// BruteForceElimination exhaustively searches all C(r, k) coupling
// subsets for the best elimination set.
func BruteForceElimination(m *Model, k int, budget time.Duration) (*BruteForceResult, error) {
	return bruteforce.Elimination(m, k, budget)
}

// BruteForceAdditionParallel is BruteForceAddition distributed over
// worker goroutines (workers <= 0 selects GOMAXPROCS); results are
// deterministic regardless of worker count.
func BruteForceAdditionParallel(m *Model, k int, budget time.Duration, workers int) (*BruteForceResult, error) {
	return bruteforce.AdditionParallel(m, k, budget, workers)
}

// BruteForceEliminationParallel is the parallel elimination baseline.
func BruteForceEliminationParallel(m *Model, k int, budget time.Duration, workers int) (*BruteForceResult, error) {
	return bruteforce.EliminationParallel(m, k, budget, workers)
}

// ParseNetlistWith parses the native netlist format against a custom
// cell library (e.g. one loaded with ParseLiberty).
func ParseNetlistWith(r io.Reader, lib *Library) (*Circuit, error) {
	return netlist.Parse(r, lib)
}

// ParseVerilog reads a gate-level structural Verilog netlist (one
// module, named pin connections) using the default cell library. Pair
// with ApplySPEF for parasitics.
func ParseVerilog(r io.Reader) (*Circuit, error) {
	return verilog.Parse(r, cell.Default())
}

// ParseVerilogWith parses Verilog against a custom cell library.
func ParseVerilogWith(r io.Reader, lib *Library) (*Circuit, error) {
	return verilog.Parse(r, lib)
}

// ParseLiberty reads a Liberty-subset (.lib) standard-cell library.
func ParseLiberty(r io.Reader) (*Library, error) { return liberty.Parse(r) }

// WriteLiberty emits a cell library in Liberty-subset form.
func WriteLiberty(w io.Writer, lib *Library) error { return liberty.Write(w, lib) }

// WriteVerilog emits the circuit as gate-level Verilog (topology
// only; parasitics go to WriteSPEF).
func WriteVerilog(w io.Writer, c *Circuit) error { return verilog.Write(w, c) }

// ApplySPEF reads a SPEF parasitics file and applies its ground
// capacitances, wire resistances and coupling capacitors to the
// circuit's nets.
func ApplySPEF(r io.Reader, c *Circuit) error { return spef.Apply(r, c) }

// WriteSPEF emits the circuit's parasitics in SPEF form.
func WriteSPEF(w io.Writer, c *Circuit) error { return spef.Write(w, c) }

// FalseAggressors classifies every coupling direction of the model's
// circuit, returning the couplings (and directions) that can never
// produce delay noise; feed Result.Active to Model.Run or drop the
// couplings before enumeration.
func FalseAggressors(m *Model, opt FilterOptions) (*FilterResult, error) {
	return filter.FalseAggressors(m, opt)
}

// CriticalReport renders a sign-off-style critical-path report with
// crosstalk annotations for a completed analysis.
func CriticalReport(an *Analysis) string {
	return pathreport.Critical(an, pathreport.Options{})
}

// NoisyNetsReport renders the nets with the largest delay noise.
func NoisyNetsReport(an *Analysis, top int) string {
	return pathreport.NoisyNets(an, top)
}

// NoisePlot renders an ASCII chart of one net's victim transition,
// combined aggressor envelope and resulting noisy transition — the
// picture behind the paper's Figures 2-5, from actual analysis data.
func NoisePlot(an *Analysis, m *Model, net NetID) string {
	return pathreport.NoisePlot(an, m, net, pathreport.PlotOptions{})
}

// MonteCarloDelay samples realistic switching scenarios (each
// coupling active with the configured activity factor) and returns
// the resulting circuit-delay distribution — the probabilistic
// counterpart to worst-case top-k analysis.
func MonteCarloDelay(m *Model, cfg MCConfig) (*MCResult, error) {
	return mc.Run(m, cfg)
}

// ExplainAddition measures each member's leave-one-out and solo
// effects within an addition set, plus the combination synergy.
func ExplainAddition(m *Model, ids []CouplingID) (*Explanation, error) {
	return core.ExplainAddition(m, ids)
}

// ExplainElimination is the dual breakdown for an elimination set.
func ExplainElimination(m *Model, ids []CouplingID) (*Explanation, error) {
	return core.ExplainElimination(m, ids)
}

// OptimizeSizing greedily upsizes the drivers of the noisiest
// near-critical nets until budget moves are spent or nothing improves
// the measured noisy delay — the gate-sizing alternative to fixing
// couplings via the elimination set. The circuit is modified in place.
func OptimizeSizing(m *Model, budget int, opt SizingOptions) (*SizingResult, error) {
	return sizing.Optimize(m, budget, opt)
}

// FixToTarget runs the elimination analysis and returns the smallest
// cardinality whose fix set brings the circuit delay down to target
// (and that selection). ok is false if even maxK fixes cannot reach
// the target; the best achieved selection is still returned.
func FixToTarget(m *Model, target float64, maxK int, opt Options) (sel Selected, k int, ok bool, err error) {
	res, err := TopKElimination(m, maxK, opt)
	if err != nil {
		return Selected{}, 0, false, err
	}
	for i, s := range res.PerK {
		if s.Delay <= target {
			return s, i + 1, true, nil
		}
	}
	if len(res.PerK) == 0 {
		return Selected{}, 0, res.AllDelay <= target, nil
	}
	last := res.PerK[len(res.PerK)-1]
	return last, len(res.PerK), false, nil
}

// GoodK implements the paper's future-work item of picking a "good"
// value of k: given a top-k Result it returns the smallest cardinality
// beyond which the per-cardinality delay curve stays flat (marginal
// change below the params' fraction of the noiseless-to-all-aggressor
// span for several consecutive cardinalities). settled is false when
// the curve is still moving at the largest computed cardinality.
func GoodK(res *Result, p KneeParams) (k int, settled bool, err error) {
	curve := make([]float64, len(res.PerK))
	for i, s := range res.PerK {
		curve[i] = s.Delay
	}
	return kselect.GoodK(curve, res.BaseDelay, res.AllDelay, p)
}

// CouplingString renders a coupling capacitor as "netA<->netB (x.x fF)".
func CouplingString(c *Circuit, id CouplingID) string {
	cp := c.Coupling(id)
	return fmt.Sprintf("%s<->%s (%.2f fF)", c.Net(cp.A).Name, c.Net(cp.B).Name, cp.Cc)
}
