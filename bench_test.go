// Benchmarks regenerating the paper's evaluation artifacts, one per
// table/figure, plus ablations of the design choices called out in
// DESIGN.md. Sizes are reduced relative to cmd/experiments -full so
// that `go test -bench=.` completes in minutes; the full paper layout
// is produced by `go run ./cmd/experiments`.
package topkagg

import (
	"fmt"
	"sync"
	"testing"

	"topkagg/internal/bruteforce"
	"topkagg/internal/circuit"
	"topkagg/internal/core"
	"topkagg/internal/exp"
	"topkagg/internal/filter"
	"topkagg/internal/gen"
	"topkagg/internal/noise"
	"topkagg/internal/serve"
)

var (
	benchOnce sync.Once
	benchCkts map[string]*noise.Model
)

// benchModel returns a cached noise model for a named circuit.
func benchModel(b *testing.B, name string) *noise.Model {
	b.Helper()
	benchOnce.Do(func() {
		benchCkts = map[string]*noise.Model{}
		specs := []gen.Spec{
			{Name: "t1", Gates: 30, Couplings: 60, Seed: 77}, // Table 1 scale
		}
		for _, s := range specs {
			c, err := gen.Build(s)
			if err != nil {
				panic(err)
			}
			benchCkts[s.Name] = noise.NewModel(c)
		}
		for _, n := range []string{"i1", "i2", "i3", "i5"} {
			c, err := gen.BuildPaper(n)
			if err != nil {
				panic(err)
			}
			benchCkts[n] = noise.NewModel(c)
		}
	})
	m, ok := benchCkts[name]
	if !ok {
		b.Fatalf("no bench circuit %q", name)
	}
	return m
}

// BenchmarkTable1BruteForce measures the brute-force baseline of
// Table 1 at k=2 (C(60,2) = 1770 full noise-analysis runs). Together
// with BenchmarkTable1Proposed it reproduces the table's
// orders-of-magnitude runtime gap.
func BenchmarkTable1BruteForce(b *testing.B) {
	m := benchModel(b, "t1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bruteforce.Addition(m, 2, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Proposed measures the proposed algorithm on the
// Table 1 circuit at the same k=2.
func BenchmarkTable1Proposed(b *testing.B) {
	m := benchModel(b, "t1")
	opt := core.Options{SlackFrac: 1, NoRescore: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopKAddition(m, 2, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAddition is the Table 2(a) kernel: one top-k addition
// enumeration at k=10.
func benchAddition(b *testing.B, ckt string) {
	m := benchModel(b, ckt)
	opt := core.Options{NoRescore: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopKAddition(m, 10, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// benchElimination is the Table 2(b) kernel: one top-k elimination
// enumeration at k=10.
func benchElimination(b *testing.B, ckt string) {
	m := benchModel(b, ckt)
	opt := core.Options{NoRescore: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopKElimination(m, 10, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2aAddition_i1(b *testing.B) { benchAddition(b, "i1") }
func BenchmarkTable2aAddition_i2(b *testing.B) { benchAddition(b, "i2") }
func BenchmarkTable2aAddition_i3(b *testing.B) { benchAddition(b, "i3") }

func BenchmarkTable2bElimination_i1(b *testing.B) { benchElimination(b, "i1") }
func BenchmarkTable2bElimination_i3(b *testing.B) { benchElimination(b, "i3") }

// BenchmarkTable2RuntimeGrowth_k sweeps k on i1, reproducing the
// runtime-vs-k growth of Table 2's right half.
func BenchmarkTable2RuntimeGrowth(b *testing.B) {
	for _, k := range []int{1, 5, 10, 20} {
		b.Run(map[int]string{1: "k1", 5: "k5", 10: "k10", 20: "k20"}[k], func(b *testing.B) {
			m := benchModel(b, "i1")
			opt := core.Options{NoRescore: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.TopKAddition(m, k, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10Sweep measures a reduced Figure-10 sweep (i1, both
// modes, k=12, rescored curves).
func BenchmarkFig10Sweep(b *testing.B) {
	cfg := exp.Quick()
	cfg.Fig10Circuits = []string{"i1"}
	cfg.Fig10K = 12
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig10(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNoiseFixpoint measures the reference iterative
// noise-analysis engine (the scenario evaluator everything else is
// built on).
func BenchmarkNoiseFixpoint(b *testing.B) {
	for _, ckt := range []string{"i1", "i3"} {
		b.Run(ckt, func(b *testing.B) {
			m := benchModel(b, ckt)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFixpointZeroNameLookups measures the fixpoint while
// asserting the engine addresses nets by NetID alone: the circuit's
// name-map counter must not move across the entire timed loop. Net
// names are interned at construction; any per-iteration map lookup
// creeping back into the hot path fails the benchmark rather than
// just slowing it down.
func BenchmarkFixpointZeroNameLookups(b *testing.B) {
	m := benchModel(b, "i3")
	if _, err := m.Run(nil); err != nil { // warm the engine pool
		b.Fatal(err)
	}
	before := m.C.NameLookups()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := m.C.NameLookups() - before; got != 0 {
		b.Fatalf("fixpoint performed %d net-name map lookups across %d runs, want 0", got, b.N)
	}
}

// BenchmarkNoiseFixpointWorkers sweeps the sweep-parallelism worker
// count on the larger paper circuit. The result is byte-identical at
// every setting (see TestFixpointWorkerCountInvariant); only the wall
// clock changes, and only on multi-core hardware.
func BenchmarkNoiseFixpointWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("i3-w%d", workers), func(b *testing.B) {
			m := benchModel(b, "i3").WithWorkers(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation benches for the design choices in DESIGN.md §6.

// BenchmarkAblationDominance compares dominance pruning on vs off
// (off relies purely on the score-sorted beam).
func BenchmarkAblationDominance(b *testing.B) {
	for _, tc := range []struct {
		name string
		opt  core.Options
	}{
		{"on", core.Options{NoRescore: true}},
		{"off", core.Options{NoRescore: true, NoDominance: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m := benchModel(b, "i1")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.TopKAddition(m, 10, tc.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPseudo compares pseudo-aggressor propagation on vs
// off (off restricts each victim to its own primaries).
func BenchmarkAblationPseudo(b *testing.B) {
	for _, tc := range []struct {
		name string
		opt  core.Options
	}{
		{"on", core.Options{NoRescore: true}},
		{"off", core.Options{NoRescore: true, NoPseudo: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m := benchModel(b, "i1")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.TopKAddition(m, 10, tc.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBruteForceParallel measures the parallel baseline against
// the serial one (same Table 1 kernel, k=2).
func BenchmarkBruteForceParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4"}[workers], func(b *testing.B) {
			m := benchModel(b, "t1")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bruteforce.AdditionParallel(m, 2, 0, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFalseAggressorFilter measures the preprocessing filter.
func BenchmarkFalseAggressorFilter(b *testing.B) {
	m := benchModel(b, "i1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := filter.FalseAggressors(m, filter.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalVsFull compares a one-coupling what-if
// re-analysis against a cold run on a sparse circuit.
func BenchmarkIncrementalVsFull(b *testing.B) {
	c, err := gen.Build(gen.Spec{Name: "inc", Gates: 400, Couplings: 160, Seed: 91})
	if err != nil {
		b.Fatal(err)
	}
	m := noise.NewModel(c)
	all := noise.AllMask(c)
	prev, err := m.Run(all)
	if err != nil {
		b.Fatal(err)
	}
	mask := all.Clone()
	mask[0] = false
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := m.RunIncremental(prev, all, mask); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.Run(mask); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationVerifyTop measures verified selection against
// estimate-only selection (elimination, i1, k=8).
func BenchmarkAblationVerifyTop(b *testing.B) {
	for _, tc := range []struct {
		name string
		opt  core.Options
	}{
		{"off", core.Options{NoRescore: true}},
		{"v4", core.Options{NoRescore: true, VerifyTop: 4}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			m := benchModel(b, "i1")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.TopKElimination(m, 8, tc.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBeamWidth sweeps the irredundant-list cap.
func BenchmarkAblationBeamWidth(b *testing.B) {
	for _, w := range []int{8, 24, 64} {
		b.Run(map[int]string{8: "w8", 24: "w24", 64: "w64"}[w], func(b *testing.B) {
			m := benchModel(b, "i1")
			opt := core.Options{NoRescore: true, MaxListWidth: w}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.TopKAddition(m, 10, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeAmortization measures the tentpole of the serve layer
// on the k-sweep workload: one top-k query per driven net, answered by
// (a) independent cold core.TopKAdditionAt calls, each repaying the
// full noise fixpoint and engine preparation, versus (b) one
// serve.Analyzer batch sharing the memoized fixpoint across all nets.
// The acceptance bar is cold/batch >= 2x; the win grows with coupling
// count (the fixpoint cost) and shrinks with k (the enumeration cost).
func BenchmarkServeAmortization(b *testing.B) {
	for _, tc := range []struct {
		ckt string
		k   int
	}{
		{"i2", 1}, // 222 gates, 706 couplings: screening sweep
		{"i5", 2}, // 204 gates, 1835 couplings: coupling-dense sweep
	} {
		m := benchModel(b, tc.ckt)
		opt := core.Options{NoRescore: true}
		var nets []circuit.NetID
		for id := 0; id < m.C.NumNets(); id++ {
			if m.C.Net(circuit.NetID(id)).Driver >= 0 {
				nets = append(nets, circuit.NetID(id))
			}
		}
		queries := serve.KSweep(serve.Addition, nets, tc.k)
		name := fmt.Sprintf("%s-k%d", tc.ckt, tc.k)
		b.Run(name+"/cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, n := range nets {
					if _, err := core.TopKAdditionAt(m, n, tc.k, opt); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/batch-w%d", name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					a := serve.NewAnalyzer(m, opt)
					for _, r := range a.RunBatch(queries, workers) {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
				}
			})
		}
	}
}
