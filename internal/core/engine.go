package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"topkagg/internal/bitset"
	"topkagg/internal/budget"
	"topkagg/internal/circuit"
	"topkagg/internal/faultinject"
	"topkagg/internal/noise"
	"topkagg/internal/obs"
	"topkagg/internal/sta"
	"topkagg/internal/waveform"
)

// mode distinguishes the two dual top-k problems.
type mode int

const (
	addition mode = iota
	elimination
)

// envTol is the simplification tolerance applied to combined
// envelopes; small compared to any meaningful noise voltage.
const envTol = 1e-9

// primAgg is one primary aggressor coupling of a victim, with its
// envelope expressed at that victim.
type primAgg struct {
	id    circuit.CouplingID
	env   waveform.PWL
	score float64
}

// prepared is the reusable, read-only state of one enumeration
// configuration (mode, target, options): noiseless timing, the
// all-aggressors fixpoint, victim selection, dominance intervals,
// primary-aggressor envelopes and the elimination scoring totals.
// Once built it is never mutated, so any number of engines — including
// engines running concurrently in different goroutines — can share
// one prepared instance.
type prepared struct {
	m    *noise.Model
	c    *circuit.Circuit
	opt  Options
	mode mode

	base *sta.Result     // noiseless timing
	full *noise.Analysis // all-aggressors fixpoint

	aggWin   []sta.Window  // windows used for primary envelopes
	target   circuit.NetID // optional single answer net (-1 = circuit outputs)
	victims  []circuit.NetID
	levels   [][]circuit.NetID // victims grouped by topological level
	isVictim []bool
	domLo    []float64
	domHi    []float64

	prim    map[circuit.NetID][]primAgg
	primIdx map[circuit.NetID]map[circuit.CouplingID]int
	// envc interns Rule-1 combined envelopes per (victim, parent set,
	// atom) so repeated derivations — elimination's second pass,
	// repeated queries and k-sweeps over one prepared state — reuse
	// the envelope and its score instead of re-summing and re-scoring.
	envc *envCache
	// Elimination scoring state, per victim: the total local
	// (primary-aggressor) envelope, the propagated-arrival shift of the
	// full noisy analysis, and the total arrival noise both together
	// produce.
	totalEnv  []waveform.PWL
	propShift []float64
	totalDN   []float64
}

// engine carries the mutable state of one top-k enumeration over a
// (possibly shared) prepared configuration.
type engine struct {
	*prepared

	bud *budget.B // cooperative stop; nil runs unbounded

	stats *Stats
	kstat *KStats // the cardinality currently being enumerated

	// atoms1 holds, per victim, the final cardinality-1 irredundant
	// list: the indivisible units ("aggressors" in the paper's sense —
	// primaries, pseudo singletons, single-coupling narrowings) used to
	// extend lower-cardinality sets.
	atoms1 map[circuit.NetID][]*aggSet

	prev map[circuit.NetID][]*aggSet // irredundant lists, cardinality i-1
	cur  map[circuit.NetID][]*aggSet // irredundant lists, cardinality i
	last map[circuit.NetID][]*aggSet // same-cardinality lists from the previous pass

	// Per-worker scratch, sized to nworkers once and recycled across
	// levels, passes and cardinalities: gens carries the waveform sum
	// buffer and envelope-cache tallies of the generation phase, prs
	// the digest slabs of the prune phase.
	nworkers  int
	gens      []genScratch
	prs       []pruner
	pruneHist *obs.Histogram // prune latency, resolved once (nil when disabled)
}

// genScratch is one generation worker's reusable state.
type genScratch struct {
	addBuf       []waveform.Point
	keyBuf       []byte          // rule-2 derivation-key assembly
	us           []circuit.NetID // rule-2 reached-input sort scratch
	hits, misses int             // envelope-cache lookups by this worker
}

// workers returns the enumeration worker count: Model.Workers when
// positive (the same knob the fixpoint sweeps honor, so WithWorkers
// pins the whole stack), else GOMAXPROCS.
func (p *prepared) workers() int {
	if p.m.Workers > 0 {
		return p.m.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// newPrepared runs the preparatory analyses: noiseless timing, the
// all-aggressor fixpoint, victim selection, dominance intervals and
// primary-aggressor envelopes. A non-nil full skips the fixpoint run
// and must be the result of m.Run(opt.Active) — the batch layer uses
// this to amortize the fixpoint across many preparations.
func newPrepared(m *noise.Model, opt Options, md mode, target circuit.NetID, full *noise.Analysis, bud *budget.B) (*prepared, error) {
	e := &prepared{m: m, c: m.C, opt: opt, mode: md, target: target, envc: newEnvCache()}
	if full == nil {
		var err error
		full, err = e.m.RunBudget(bud, e.opt.Active)
		if err != nil {
			return nil, err
		}
	}
	e.full = full
	e.base = full.Base
	if e.mode == addition {
		e.aggWin = e.base.Windows
	} else {
		e.aggWin = e.full.Timing.Windows
	}
	// The per-victim preparation loops (dominance bounds, primary
	// envelopes, elimination totals) are each linear passes; polling
	// the budget between them bounds a stopped preparation to one pass.
	e.selectVictims()
	if err := bud.Err(); err != nil {
		return nil, fmt.Errorf("core: prepare: %w", err)
	}
	e.prepareDominanceIntervals()
	if err := bud.Err(); err != nil {
		return nil, fmt.Errorf("core: prepare: %w", err)
	}
	e.preparePrimaries()
	if e.mode == elimination {
		if err := bud.Err(); err != nil {
			return nil, fmt.Errorf("core: prepare: %w", err)
		}
		e.prepareTotals()
	}
	return e, nil
}

// newEngine starts a fresh enumeration over the prepared state with
// the given budget (nil = unbounded). Each engine is single-use;
// concurrent runs each take their own.
func (p *prepared) newEngine(bud *budget.B) *engine {
	n := p.workers()
	e := &engine{
		prepared: p,
		bud:      bud,
		stats:    &Stats{},
		prev:     map[circuit.NetID][]*aggSet{},
		cur:      map[circuit.NetID][]*aggSet{},
		atoms1:   map[circuit.NetID][]*aggSet{},
		nworkers: n,
		gens:     make([]genScratch, n),
		prs:      make([]pruner, n),
	}
	for i := range e.prs {
		e.prs[i].exact = p.opt.ExactPrune
		e.prs[i].noDom = p.opt.NoDominance
		e.prs[i].width = p.opt.listWidth()
	}
	if reg := p.m.Obs; reg != nil {
		e.pruneHist = reg.Histogram("core.topk.prune_ns")
	}
	return e
}

// flushCacheStats merges the per-worker envelope-cache tallies into
// the run's Stats and the metric registry. Called once when the run
// ends (including early-stopped runs).
func (e *engine) flushCacheStats() {
	for i := range e.gens {
		e.stats.EnvCacheHits += e.gens[i].hits
		e.stats.EnvCacheMisses += e.gens[i].misses
		e.gens[i].hits, e.gens[i].misses = 0, 0
	}
	e.envc.hits.Add(int64(e.stats.EnvCacheHits))
	e.envc.misses.Add(int64(e.stats.EnvCacheMisses))
	if reg := e.m.Obs; reg != nil {
		reg.Counter("core.topk.envcache_hits").Add(int64(e.stats.EnvCacheHits))
		reg.Counter("core.topk.envcache_misses").Add(int64(e.stats.EnvCacheMisses))
	}
}

// vw returns the noiseless reference window of a victim: the
// transition the noise envelopes are superimposed on.
func (e *prepared) vw(v circuit.NetID) sta.Window { return e.base.Window(v) }

// selectVictims picks the nets on critical and near-critical paths:
// nets whose slack (required time minus latest arrival, measured on
// noiseless timing) is within SlackFrac of the circuit delay.
func (e *prepared) selectVictims() {
	margin := e.opt.slackFrac() * e.base.CircuitDelay()
	slacks := e.base.Slacks(0)
	var cone *bitset.Dense
	if e.target >= 0 {
		cone = bitset.Get(e.c.NumNets())
		defer bitset.Put(cone)
		e.c.FaninConeBits(e.target, cone, nil)
	}
	e.isVictim = make([]bool, e.c.NumNets())
	for _, v := range e.base.TopoOrder() {
		if e.opt.slackFrac() >= 1 || slacks[v] <= margin || (cone != nil && cone.Get(int(v))) {
			e.isVictim[v] = true
			e.victims = append(e.victims, v)
		}
	}
	// Group victims by topological level so each level's candidate
	// generation can run concurrently: a net's level is one past the
	// deepest of its driver's inputs, so all cross-level references
	// (fanin pseudo sets) resolve to already-completed levels.
	level := make([]int, e.c.NumNets())
	for _, n := range e.base.TopoOrder() {
		d := e.c.Net(n).Driver
		if d == circuit.NoGate {
			level[n] = 0
			continue
		}
		l := 0
		for _, in := range e.c.Gate(d).Inputs {
			if level[in] >= l {
				l = level[in] + 1
			}
		}
		level[n] = l
	}
	maxL := 0
	for _, v := range e.victims {
		if level[v] > maxL {
			maxL = level[v]
		}
	}
	e.levels = make([][]circuit.NetID, maxL+1)
	for _, v := range e.victims {
		e.levels[level[v]] = append(e.levels[level[v]], v)
	}
}

// prepareDominanceIntervals computes, per victim, the interval over
// which envelope encapsulation must hold for dominance: from the
// noiseless victim t50 to an upper bound obtained by assuming infinite
// aggressor timing windows (paper Section 3.2), padded by the
// propagated-noise headroom.
func (e *prepared) prepareDominanceIntervals() {
	n := e.c.NumNets()
	e.domLo = make([]float64, n)
	e.domHi = make([]float64, n)
	for _, v := range e.victims {
		w := e.vw(v)
		ub := e.m.DelayUpperBound(v, e.aggWin)
		prop := e.full.Timing.Window(v).LAT - e.base.Window(v).LAT
		e.domLo[v] = w.LAT
		e.domHi[v] = w.LAT + ub + prop + w.Slew + 0.1
	}
}

// preparePrimaries builds, per victim, the envelope of each incident
// coupling, sorted by the delay noise it alone would cause.
func (e *prepared) preparePrimaries() {
	e.prim = make(map[circuit.NetID][]primAgg, len(e.victims))
	e.primIdx = make(map[circuit.NetID]map[circuit.CouplingID]int, len(e.victims))
	for _, v := range e.victims {
		ids := e.c.CouplingsOf(v)
		if len(ids) == 0 {
			continue
		}
		list := make([]primAgg, 0, len(ids))
		for _, id := range ids {
			if !e.opt.Active.Active(id) {
				continue
			}
			cp := e.c.Coupling(id)
			env := e.m.Envelope(v, cp, e.aggWin[cp.Other(v)])
			list = append(list, primAgg{id: id, env: env, score: e.m.DelayNoise(e.vw(v), env)})
		}
		sort.SliceStable(list, func(i, j int) bool {
			if list[i].score != list[j].score {
				return list[i].score > list[j].score
			}
			return list[i].id < list[j].id
		})
		e.prim[v] = list
		idx := make(map[circuit.CouplingID]int, len(list))
		for i, pa := range list {
			idx[pa.id] = i
		}
		e.primIdx[v] = idx
	}
}

// primEnvOf returns the primary envelope of coupling id at victim v
// and whether id is a primary aggressor of v.
func (e *prepared) primEnvOf(v circuit.NetID, id circuit.CouplingID) (waveform.PWL, bool) {
	i, ok := e.primIdx[v][id]
	if !ok {
		return waveform.PWL{}, false
	}
	return e.prim[v][i].env, true
}

// prepareTotals builds, for the elimination problem, each victim's
// total local envelope (the sum of all primary envelopes with noisy
// windows), the arrival shift propagated from its fanin, and the
// total arrival noise both produce together. Candidate sets are scored
// by how much of this total their removal takes away.
func (e *prepared) prepareTotals() {
	n := e.c.NumNets()
	e.totalEnv = make([]waveform.PWL, n)
	e.propShift = make([]float64, n)
	e.totalDN = make([]float64, n)
	for _, v := range e.victims {
		env := waveform.Zero()
		for _, pa := range e.prim[v] {
			env = waveform.Add(env, pa.env)
		}
		e.totalEnv[v] = env.Simplify(envTol)
		e.propShift[v] = e.full.PropagatedShift(v)
		e.totalDN[v] = e.m.DelayNoise(e.vw(v), e.withProp(v, e.totalEnv[v], 0))
	}
}

// withProp combines a local envelope with the victim's propagated
// pseudo envelope after reducing the propagated shift by the
// candidate's inherited reduction. Shifts do not superpose linearly as
// envelopes, which is why they are applied here rather than
// subtracted pointwise.
func (e *prepared) withProp(v circuit.NetID, local waveform.PWL, shiftReduction float64) waveform.PWL {
	p := e.propShift[v] - shiftReduction
	if p <= waveform.Eps {
		return local
	}
	return waveform.Add(local, e.pseudoEnvelope(v, p))
}

// pseudoEnvelope models a shift of the victim's own transition by dt
// as a noise envelope: the difference between the noiseless transition
// and the same transition delayed by dt (paper Section 3.1).
func (e *prepared) pseudoEnvelope(v circuit.NetID, dt float64) waveform.PWL {
	r := e.m.VictimRamp(e.vw(v))
	return waveform.Sub(r, r.Shift(dt))
}

// scoreSet evaluates a candidate at victim v according to the mode:
// the delay noise its local envelope adds (addition), or the arrival
// reduction its removal recovers (elimination), combining the local
// envelope removal with the inherited propagated-shift reduction.
func (e *prepared) scoreSet(v circuit.NetID, env waveform.PWL, shift float64) float64 {
	if e.mode == addition {
		return e.m.DelayNoise(e.vw(v), env)
	}
	remaining := waveform.Sub(e.totalEnv[v], env).ClampMin(0)
	return e.totalDN[v] - e.m.DelayNoise(e.vw(v), e.withProp(v, remaining, shift))
}

// propagateShift converts a latest-arrival shift dt at input net u
// into the resulting output-arrival shift at net v, accounting for
// masking by the other inputs of the driving gate. win supplies the
// arrival times (noiseless for addition, noisy for elimination).
//
// For elimination, sibling inputs mask with their *noiseless* arrivals
// rather than their current noisy ones: a removal set typically fixes
// couplings across the whole fanin cone, so the reachable joint
// reduction is bounded by where the siblings would land once their own
// noise is also fixed. Masking against noisy siblings would freeze the
// enumeration at the first reconvergence.
func (e *prepared) propagateShift(u, v circuit.NetID, dt float64, win []sta.Window) float64 {
	g := e.c.Gate(e.c.Net(v).Driver)
	load := e.c.LoadCap(v)
	oldMax, newMax := math.Inf(-1), math.Inf(-1)
	for _, in := range g.Inputs {
		arr := win[in].LAT + g.Cell.Delay(load, win[in].Slew)
		if arr > oldMax {
			oldMax = arr
		}
		if in == u {
			if e.mode == addition {
				arr += dt
			} else {
				arr -= dt
			}
		}
		if arr > newMax {
			newMax = arr
		}
	}
	var shift float64
	if e.mode == addition {
		shift = newMax - oldMax
	} else {
		shift = oldMax - newMax
	}
	if shift < 0 {
		return 0
	}
	if e.mode == elimination && shift > dt {
		shift = dt
	}
	return shift
}

// propagateShiftMulti converts simultaneous latest-arrival reductions
// on several inputs of v's driver (red, by input net) into the joint
// output-arrival reduction. Inputs without a reduction mask with their
// noiseless arrivals, consistent with propagateShift's elimination
// convention.
func (e *prepared) propagateShiftMulti(v circuit.NetID, red map[circuit.NetID]float64, win []sta.Window) float64 {
	g := e.c.Gate(e.c.Net(v).Driver)
	load := e.c.LoadCap(v)
	oldMax, newMax := math.Inf(-1), math.Inf(-1)
	maxRed := 0.0
	for _, in := range g.Inputs {
		arr := win[in].LAT + g.Cell.Delay(load, win[in].Slew)
		if arr > oldMax {
			oldMax = arr
		}
		if r, ok := red[in]; ok {
			arr -= r
			if r > maxRed {
				maxRed = r
			}
		} else {
			arr = e.base.Window(in).LAT + g.Cell.Delay(load, e.base.Window(in).Slew)
		}
		if arr > newMax {
			newMax = arr
		}
	}
	shift := oldMax - newMax
	if shift < 0 {
		return 0
	}
	if shift > maxRed {
		shift = maxRed
	}
	return shift
}

// The cardinality-i candidate list for victim v is built by the
// paper's three rules: extension of lower-cardinality sets by primary
// aggressors (rule1Range, chunkable across workers), pseudo input
// aggressors propagated from the fanin, and higher-order aggressors
// (primaries with windows widened by their own aggressors) — the
// latter two in rules23. iterate concatenates the pieces in rule
// order, so the combined list is identical to one serial pass.

// rule1Count returns how many generation units rule 1 iterates for
// victim v at cardinality i: the primaries for i == 1, the
// previous-cardinality irredundant list otherwise. Chunking splits
// this range.
func (e *engine) rule1Count(v circuit.NetID, i int) int {
	if i == 1 {
		return len(e.prim[v])
	}
	return len(e.prev[v])
}

// rule1Range appends to dst the rule-1 candidates of generation units
// [lo, hi): singletons, or extensions of I-list_{i-1} by one more
// cardinality-1 aggressor unit (a primary, a pseudo singleton or — in
// elimination — a single-coupling narrowing; see atoms1). Extensions
// go through the prepared state's envelope intern table: a hit reuses
// the combined envelope and score outright; a miss sums parent and
// atom into the worker's scratch buffer, simplifies, and publishes the
// (immutable) result for every later derivation of the same extension.
func (e *engine) rule1Range(v circuit.NetID, i, lo, hi int, sc *genScratch, dst []*aggSet) []*aggSet {
	if i == 1 {
		for _, pa := range e.prim[v][lo:hi] {
			// pa.score is the raw delay noise of the primary alone;
			// the candidate score must be mode-aware (for elimination,
			// the *reduction* achieved by removing it).
			dst = append(dst, &aggSet{
				ids:   []circuit.CouplingID{pa.id},
				env:   pa.env,
				score: e.scoreSet(v, pa.env, 0),
			})
		}
		return dst
	}
	ext := e.atoms1[v]
	if n := e.opt.extend(); len(ext) > n {
		ext = ext[:n]
	}
	for _, s := range e.prev[v][lo:hi] {
		pkey := s.key() // memoized by the pass that built prev
		for _, a := range ext {
			id := a.ids[0]
			if s.contains(id) {
				continue
			}
			k := envKey{kind: 1, v: v, parent: pkey, atom: id}
			ent, ok := e.envc.get(k)
			if ok {
				sc.hits++
			} else {
				sc.misses++
				shift := s.shift + a.shift
				sum, buf := waveform.AddInto(s.env, a.env, sc.addBuf)
				sc.addBuf = buf
				env := sum.Simplify(envTol)
				if len(buf) <= 2 {
					// Simplify returns its input unchanged at two points
					// or fewer; the cache must own its envelope, not view
					// the scratch buffer.
					env = env.Clone()
				}
				ent = &aggSet{
					ids:   s.withID(id),
					env:   env,
					shift: shift,
					score: e.scoreSet(v, env, shift),
				}
				ent.key() // materialize before the set is shared
				e.envc.put(k, ent)
			}
			dst = append(dst, ent)
		}
	}
	return dst
}

// rules23 appends victim v's rule-2 and rule-3 candidates to dst.
func (e *engine) rules23(v circuit.NetID, i int, sc *genScratch, dst []*aggSet) []*aggSet {
	cands := dst

	// Rule 2: pseudo input aggressors of cardinality i, propagated
	// from the fanin nets (already processed this iteration because
	// victims run in topological order).
	if !e.opt.NoPseudo {
		if d := e.c.Net(v).Driver; d != circuit.NoGate {
			win := e.base.Windows
			if e.mode == elimination {
				win = e.full.Timing.Windows
			}
			// One set can reach v through several inputs at once (a
			// coupling attacking both sides of a reconvergence); in the
			// elimination problem its arrival reductions then combine
			// at the gate, so per-input reductions are gathered first
			// and propagated jointly.
			type reach struct {
				s   *aggSet
				red map[circuit.NetID]float64
			}
			byKey := map[string]*reach{}
			var order []string
			for _, u := range e.c.Gate(d).Inputs {
				if !e.isVictim[u] {
					continue
				}
				list := e.cur[u]
				if len(list) == 0 {
					list = e.last[u]
				}
				for _, s := range list {
					if s.score <= waveform.Eps {
						continue
					}
					k := s.key()
					r, ok := byKey[k]
					if !ok {
						r = &reach{s: s, red: map[circuit.NetID]float64{}}
						byKey[k] = r
						order = append(order, k)
					}
					if s.score > r.red[u] {
						r.red[u] = s.score
					}
				}
			}
			for _, k := range order {
				r := byKey[k]
				var shift float64
				if e.mode == addition || len(r.red) == 1 {
					// Single path (or additive noise, where the worst
					// single path dominates): classic propagation.
					for u, red := range r.red {
						if sh := e.propagateShift(u, v, red, win); sh > shift {
							shift = sh
						}
					}
				} else {
					shift = e.propagateShiftMulti(v, r.red, win)
				}
				if shift <= waveform.Eps {
					continue
				}
				s := r.s
				// The candidate is a pure function of the derivation:
				// upstream set, each reached input with its exact
				// reduction bits (they select the viaInput exclusions
				// below and produced the shift), and the shift itself —
				// so it interns like the other rules. The key serializes
				// the reductions in input order for determinism.
				buf := append(sc.keyBuf[:0], k...)
				us := sc.us[:0]
				for u := range r.red {
					us = append(us, u)
				}
				slices.Sort(us)
				for _, u := range us {
					buf = append(buf, '|')
					buf = strconv.AppendInt(buf, int64(u), 10)
					buf = append(buf, ':')
					buf = strconv.AppendUint(buf, math.Float64bits(r.red[u]), 16)
				}
				sc.keyBuf, sc.us = buf, us
				ck := envKey{kind: 2, v: v, parent: string(buf), aux: math.Float64bits(shift)}
				cand, ok := e.envc.get(ck)
				if ok {
					sc.hits++
				} else {
					sc.misses++
					// Members of the upstream set that also couple v
					// directly contribute their primary envelopes here as
					// well (unless the "aggressor" is a fanin net whose
					// effect the propagated shift already carries).
					env := waveform.Zero()
					for _, id := range s.ids {
						if pe, ok := e.primEnvOf(v, id); ok {
							if _, viaInput := r.red[e.c.Coupling(id).Other(v)]; !viaInput {
								env = waveform.Add(env, pe)
							}
						}
					}
					if e.mode == addition {
						// Additive noise propagates as a pseudo noise
						// envelope superimposed on the victim.
						env = waveform.Add(env, e.pseudoEnvelope(v, shift)).Simplify(envTol)
						cand = &aggSet{ids: copyIDs(s.ids), env: env, score: e.scoreSet(v, env, 0)}
					} else {
						// Arrival reductions are carried as an explicit
						// shift; only direct envelopes stay local.
						env = env.Simplify(envTol)
						cand = &aggSet{ids: copyIDs(s.ids), env: env, shift: shift,
							score: e.scoreSet(v, env, shift)}
					}
					cand.key() // materialize before the set is shared
					e.envc.put(ck, cand)
				}
				cands = append(cands, cand)
			}
		}
	}

	// Rule 3: higher-order aggressors.
	cands = append(cands, e.higherOrder(v, i, sc)...)
	return cands
}

// higherOrder produces cardinality-i sets in which a primary
// aggressor's timing window is modified by the aggressor net's own
// top sets: widened for addition (the indirect-aggressor effect of
// paper Fig. 1), narrowed for elimination (fixing an indirect
// aggressor shrinks the primary's envelope).
//
// Each derivation is a pure function of (victim, widening set T,
// primary, T's score) given the prepared model, so results are
// interned in the envelope cache alongside rule-1 extensions; the aux
// field carries T's score bits, which both disambiguates from rule-1
// entries at the same (parent, atom) and captures the score's effect
// on the window. Elimination derivations whose removable envelope
// vanishes intern a nil sentinel so the recompute is skipped too.
func (e *engine) higherOrder(v circuit.NetID, i int, sc *genScratch) []*aggSet {
	var out []*aggSet
	lim := e.opt.higherOrder()
	for _, pa := range e.prim[v] {
		g := e.c.Coupling(pa.id).Other(v)
		if !e.isVictim[g] {
			continue
		}
		switch e.mode {
		case addition:
			if i < 2 {
				continue
			}
			// {primary} ∪ T, |T| = i-1: T's noise on the aggressor net
			// widens the aggressor window and thus the envelope on v.
			lists := e.prev[g]
			taken := 0
			for _, t := range lists {
				if taken >= lim {
					break
				}
				if t.score <= waveform.Eps || t.contains(pa.id) {
					continue
				}
				k := envKey{kind: 3, v: v, parent: t.key(), atom: pa.id, aux: math.Float64bits(t.score)}
				ent, ok := e.envc.get(k)
				if ok {
					sc.hits++
				} else {
					sc.misses++
					wid := e.aggWin[g]
					wid.LAT += t.score
					env := e.m.Envelope(v, e.c.Coupling(pa.id), wid)
					// Members of T that also couple v directly add their
					// own primary envelopes at v.
					for _, id := range t.ids {
						if pe, ok := e.primEnvOf(v, id); ok {
							env = waveform.Add(env, pe)
						}
					}
					env = env.Simplify(envTol)
					ent = &aggSet{
						ids:   t.withID(pa.id),
						env:   env,
						score: e.scoreSet(v, env, 0),
					}
					ent.key() // materialize before the set is shared
					e.envc.put(k, ent)
				}
				out = append(out, ent)
				taken++
			}
		case elimination:
			// T alone, |T| = i: removing T narrows the aggressor's
			// noisy window; the removable part of the primary envelope
			// is the difference between wide and narrowed envelopes.
			lists := e.cur[g]
			if len(lists) == 0 {
				lists = e.last[g]
			}
			taken := 0
			for _, t := range lists {
				if taken >= lim {
					break
				}
				if t.score <= waveform.Eps || t.contains(pa.id) {
					continue
				}
				k := envKey{kind: 3, v: v, parent: t.key(), atom: pa.id, aux: math.Float64bits(t.score)}
				ent, ok := e.envc.get(k)
				if ok {
					sc.hits++
				} else {
					sc.misses++
					nar := e.aggWin[g]
					nar.LAT -= t.score
					if nar.LAT < nar.EAT {
						nar.LAT = nar.EAT
					}
					envNar := e.m.Envelope(v, e.c.Coupling(pa.id), nar)
					env := waveform.Sub(pa.env, envNar).ClampMin(0)
					// Members of T that couple v directly are themselves
					// removed, taking their whole primary envelope with
					// them.
					for _, id := range t.ids {
						if pe, ok := e.primEnvOf(v, id); ok {
							env = waveform.Add(env, pe)
						}
					}
					env = env.Simplify(envTol)
					if env.IsZero() {
						e.envc.put(k, nil) // remembered as "removes nothing"
					} else {
						ent = &aggSet{
							ids:   copyIDs(t.ids),
							env:   env,
							score: e.scoreSet(v, env, 0),
						}
						ent.key()
						e.envc.put(k, ent)
					}
				}
				if ent == nil {
					continue
				}
				out = append(out, ent)
				taken++
			}
		}
	}
	return out
}

// genJob is one unit of the generation phase: a rule-1 chunk of one
// victim's parent range, or the victim's rule-2/rule-3 job.
type genJob struct {
	vi      int // victim index within the level
	lo, hi  int // rule-1 generation-unit range
	rules23 bool
	out     []*aggSet
}

// iterate computes the cardinality-i irredundant list of every victim
// in one topological pass. Same-cardinality lookups that miss (the
// referenced net comes later in topological order) fall back to
// e.last, the previous pass of the same cardinality.
//
// Each level runs in two parallel phases over the engine's worker
// pool. Phase A generates candidates: every victim contributes one
// rule-2/3 job plus one or more rule-1 chunks — the parent range is
// split only when the level has fewer victims than workers, so a
// single deep victim (the per-net target cone) still feeds the whole
// pool. Phase B dedupes, sorts and prunes per victim. Both phases
// land results in order-indexed slots and merge serially, so lists
// and stats are byte-identical for any worker count or chunking.
//
// The pass stops early — returning a typed error and leaving e.cur
// unusable — when the budget trips (each victim's raw candidate count
// is charged as work; generation workers additionally poll
// cancellation between jobs) or a level worker panics; panics are
// recovered at the goroutine boundary so a crashed worker never takes
// down the process or other queries sharing the prepared state.
func (e *engine) iterate(i int) error {
	e.cur = make(map[circuit.NetID][]*aggSet, len(e.victims))
	if ks := e.kstat; ks != nil {
		// Each pass rebuilds every list, so the width figures describe
		// the pass that last completed; the drop counters accumulate.
		ks.Lists, ks.MaxIListWidth = 0, 0
	}
	workers := e.nworkers
	for _, lvl := range e.levels {
		if len(lvl) == 0 {
			continue
		}
		if err := e.bud.Err(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		// Same-level victims never read each other's current lists
		// (cross-references fall back to e.last), so their generation
		// and pruning can run concurrently.
		per := 1
		if len(lvl) < workers {
			per = (workers + len(lvl) - 1) / len(lvl)
			if per > 8 {
				per = 8
			}
		}
		jobs := make([]genJob, 0, len(lvl)*(per+1))
		firstJob := make([]int, len(lvl)+1)
		for j, v := range lvl {
			firstJob[j] = len(jobs)
			n := e.rule1Count(v, i)
			c := per
			if c > n {
				c = n
			}
			for q := 0; q < c; q++ {
				jobs = append(jobs, genJob{vi: j, lo: n * q / c, hi: n * (q + 1) / c})
			}
			jobs = append(jobs, genJob{vi: j, rules23: true})
		}
		firstJob[len(lvl)] = len(jobs)

		var panicked atomic.Pointer[budget.PanicError]
		trap := func(wg *sync.WaitGroup) func() {
			return func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, budget.NewPanicError("core.topk", r))
				}
				wg.Done()
			}
		}

		// Phase A: candidate generation.
		var wgA sync.WaitGroup
		var nextA atomic.Int64
		na := min(workers, len(jobs))
		for w := 0; w < na; w++ {
			wgA.Add(1)
			go func(sc *genScratch) {
				defer trap(&wgA)()
				for {
					jn := int(nextA.Add(1) - 1)
					if jn >= len(jobs) || panicked.Load() != nil {
						return
					}
					// Work is charged per victim in phase B; polling here
					// keeps cancellation latency bounded by one job.
					if e.bud.Err() != nil {
						return
					}
					jb := &jobs[jn]
					v := lvl[jb.vi]
					if jb.rules23 {
						jb.out = e.rules23(v, i, sc, nil)
					} else {
						jb.out = e.rule1Range(v, i, jb.lo, jb.hi, sc, nil)
					}
				}
			}(&e.gens[w])
		}
		wgA.Wait()
		if pe := panicked.Load(); pe != nil {
			return fmt.Errorf("core: %w", pe)
		}
		if err := e.bud.Err(); err != nil {
			return fmt.Errorf("core: %w", err)
		}

		// Phase B: per-victim dedupe, sort and digest-prefiltered prune.
		type out struct {
			atoms, kept []*aggSet
			cands, dups int
			pc          pruneCounts
		}
		outs := make([]out, len(lvl))
		var wgB sync.WaitGroup
		var nextB atomic.Int64
		nb := min(workers, len(lvl))
		for w := 0; w < nb; w++ {
			wgB.Add(1)
			go func(pr *pruner) {
				defer trap(&wgB)()
				for {
					j := int(nextB.Add(1) - 1)
					if j >= len(lvl) || panicked.Load() != nil {
						return
					}
					faultinject.Fire(faultinject.SiteCoreVictim)
					v := lvl[j]
					// The victim's raw candidates, jobs concatenated in
					// (victim, chunk) order — the serial generation order.
					raw := jobs[firstJob[j]].out
					if nj := firstJob[j+1] - firstJob[j]; nj > 1 {
						nraw := len(raw)
						for jn := firstJob[j] + 1; jn < firstJob[j+1]; jn++ {
							nraw += len(jobs[jn].out)
						}
						if nraw > len(raw) {
							raw = make([]*aggSet, 0, nraw)
							for jn := firstJob[j]; jn < firstJob[j+1]; jn++ {
								raw = append(raw, jobs[jn].out...)
							}
						}
					}
					// One unit of work per candidate set scored; the
					// charge also polls cancellation, so stopping
					// latency is bounded by one victim's candidates.
					if e.bud.Charge(int64(len(raw))) != nil {
						return
					}
					cands := dedupe(raw)
					outs[j].cands = len(raw)
					outs[j].dups = len(raw) - len(cands)
					// Drop candidates that did not reach the requested
					// cardinality (duplicate-extension artifacts).
					filtered := cands[:0]
					for _, c := range cands {
						if len(c.ids) == i {
							filtered = append(filtered, c)
						}
					}
					sortByScore(filtered)
					if i == 1 {
						// The cardinality-1 units are the extension
						// alphabet for rule 1 at higher cardinalities.
						// They are recorded before pruning: Theorem 1
						// justifies dropping a dominated set Q from the
						// I-list only for extensions by aggressors
						// outside the dominating set P, so Q must stay
						// available as an *extension* of sets containing
						// members of P.
						outs[j].atoms = filtered
					}
					pr.lo, pr.hi = e.domLo[v], e.domHi[v]
					var t0 time.Time
					if e.pruneHist != nil {
						t0 = time.Now()
					}
					outs[j].kept, outs[j].pc = pr.prune(filtered)
					if e.pruneHist != nil {
						e.pruneHist.Observe(int64(time.Since(t0)))
					}
				}
			}(&e.prs[w])
		}
		wgB.Wait()
		if pe := panicked.Load(); pe != nil {
			return fmt.Errorf("core: %w", pe)
		}
		if err := e.bud.Err(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		for j, v := range lvl {
			if i == 1 {
				e.atoms1[v] = outs[j].atoms
			}
			e.cur[v] = outs[j].kept
			if ks := e.kstat; ks != nil {
				ks.Candidates += outs[j].cands
				ks.Duplicates += outs[j].dups
				ks.PrunedDominance += outs[j].pc.dom
				ks.PrunedBeam += outs[j].pc.beam
				ks.DigestHits += outs[j].pc.digestHits
				ks.DigestFallbacks += outs[j].pc.digestFallbacks
				if w := len(outs[j].kept); w > 0 {
					ks.Lists++
					if w > ks.MaxIListWidth {
						ks.MaxIListWidth = w
					}
				}
			}
		}
	}
	return nil
}

// advance produces the final cardinality-i lists. Elimination runs two
// passes so that higher-order references to nets later in topological
// order resolve; addition's cross-references (prev-cardinality lists)
// are already complete after one pass.
func (e *engine) advance(i int) error {
	passes := 1
	if e.mode == elimination {
		passes = 2
	}
	e.last = nil
	for p := 0; p < passes; p++ {
		if err := e.iterate(i); err != nil {
			return err
		}
		e.last = e.cur
	}
	e.last = nil
	e.prev = e.cur
	return nil
}

// bestAt returns the best cardinality-i set over the primary outputs'
// current lists together with its estimated circuit delay. The
// estimate accounts for the other outputs: adding noise at one output
// cannot lower the circuit delay below the noiseless maximum, and
// removing noise at one output cannot lower it below the remaining
// outputs' noisy arrivals.
func (e *engine) bestAt(pos []circuit.NetID) (*aggSet, circuit.NetID, float64, bool) {
	var best *aggSet
	var bestPO circuit.NetID
	bestEst := 0.0
	bestRaw := 0.0
	for _, po := range pos {
		if !e.isVictim[po] {
			continue
		}
		for _, s := range e.cur[po] {
			est, raw := e.estimate(po, pos, s.score)
			better := false
			switch {
			case best == nil:
				better = true
			case e.mode == addition:
				better = est > bestEst+waveform.Eps ||
					(est > bestEst-waveform.Eps && raw > bestRaw+waveform.Eps)
			default:
				better = est < bestEst-waveform.Eps ||
					(est < bestEst+waveform.Eps && raw < bestRaw-waveform.Eps)
			}
			if better {
				best, bestPO, bestEst, bestRaw = s, po, est, raw
			}
		}
	}
	return best, bestPO, bestEst, best != nil
}

// estimate converts a set's score at output po into an estimated
// circuit delay (and the raw per-output figure used for tie-breaks).
func (e *prepared) estimate(po circuit.NetID, pos []circuit.NetID, score float64) (est, raw float64) {
	if e.mode == addition {
		raw = e.base.Window(po).LAT + score
		if e.target >= 0 {
			// Per-net analysis reports the net's own arrival, not the
			// circuit delay.
			return raw, raw
		}
		return math.Max(e.base.CircuitDelay(), raw), raw
	}
	raw = e.full.Timing.Window(po).LAT - score
	return math.Max(e.othersNoisyMax(po, pos), raw), raw
}

// extendChain grows the previous winning set by the strongest
// cardinality-1 unit at the same output that it does not already
// contain, yielding a valid candidate one cardinality up.
func (e *engine) extendChain(chain *aggSet, po circuit.NetID, pos []circuit.NetID) (*aggSet, circuit.NetID, float64, bool) {
	if chain == nil {
		return nil, 0, 0, false
	}
	for _, a := range e.atoms1[po] {
		id := a.ids[0]
		if chain.contains(id) {
			continue
		}
		env := waveform.Add(chain.env, a.env).Simplify(envTol)
		shift := chain.shift + a.shift
		s := &aggSet{ids: chain.withID(id), env: env, shift: shift,
			score: e.scoreSet(po, env, shift)}
		est, _ := e.estimate(po, pos, s.score)
		return s, po, est, true
	}
	// All local units are in the set already: pad with any other
	// coupling. A coupling with no effect at this output keeps the
	// score (and the estimate) exactly where it was, which is the best
	// a larger set can guarantee.
	for id := circuit.CouplingID(0); int(id) < e.c.NumCouplings(); id++ {
		if chain.contains(id) {
			continue
		}
		s := &aggSet{ids: chain.withID(id), env: chain.env, shift: chain.shift, score: chain.score}
		est, _ := e.estimate(po, pos, s.score)
		return s, po, est, true
	}
	return nil, 0, 0, false
}

// bestVerified gathers the strongest candidates at the targets (plus
// the chain extension), re-evaluates each with the incremental
// reference engine, and returns the one with the best *measured*
// circuit delay. Returns a nil set when no candidate exists.
func (e *engine) bestVerified(pos []circuit.NetID, chain *aggSet, chainPO circuit.NetID) (*aggSet, circuit.NetID, float64, error) {
	type cand struct {
		s   *aggSet
		po  circuit.NetID
		est float64
	}
	var cands []cand
	for _, po := range pos {
		if !e.isVictim[po] {
			continue
		}
		for _, s := range e.cur[po] {
			est, _ := e.estimate(po, pos, s.score)
			cands = append(cands, cand{s, po, est})
		}
	}
	// Several alternative chain extensions compete under verification:
	// the measured winner may extend by an atom the estimates rank low.
	if chain != nil {
		taken := 0
		for _, a := range e.atoms1[chainPO] {
			if taken >= e.opt.VerifyTop {
				break
			}
			if chain.contains(a.ids[0]) {
				continue
			}
			env := waveform.Add(chain.env, a.env).Simplify(envTol)
			shift := chain.shift + a.shift
			cs := &aggSet{ids: chain.withID(a.ids[0]), env: env, shift: shift,
				score: e.scoreSet(chainPO, env, shift)}
			est, _ := e.estimate(chainPO, pos, cs.score)
			cands = append(cands, cand{cs, chainPO, est})
			taken++
		}
	}
	if c, cpo, cest, cok := e.extendChain(chain, chainPO, pos); cok {
		cands = append(cands, cand{c, cpo, cest})
	}
	if len(cands) == 0 {
		return nil, 0, 0, nil
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if e.mode == addition {
			return cands[i].est > cands[j].est
		}
		return cands[i].est < cands[j].est
	})
	// Dedupe by set identity, then cap.
	seen := map[string]bool{}
	uniq := cands[:0]
	for _, c := range cands {
		k := c.s.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		uniq = append(uniq, c)
	}
	cands = uniq
	if len(cands) > 2*e.opt.VerifyTop {
		cands = cands[:2*e.opt.VerifyTop]
	}
	if e.kstat != nil {
		e.kstat.Verified += len(cands)
	}
	prevMask := e.opt.Active
	if prevMask == nil {
		prevMask = noise.AllMask(e.c)
	}
	var best *cand
	bestDelay := 0.0
	for i := range cands {
		c := &cands[i]
		// One unit of work per reference re-measurement; the budget
		// also threads into the measurement's own fixpoint, so a
		// deadline can stop a verification mid-run.
		if err := e.bud.Charge(1); err != nil {
			return nil, 0, 0, fmt.Errorf("core: verify: %w", err)
		}
		var mask noise.Mask
		if e.mode == addition {
			mask = noise.MaskOf(e.c, c.s.ids)
		} else {
			mask = prevMask.Clone()
			for _, id := range c.s.ids {
				mask[id] = false
			}
		}
		var (
			an  *noise.Analysis
			err error
		)
		if e.mode == elimination {
			an, _, err = e.m.RunIncrementalBudget(e.bud, e.full, prevMask, mask)
		} else {
			an, err = e.m.RunBudget(e.bud, mask)
		}
		if err != nil {
			return nil, 0, 0, err
		}
		d := an.CircuitDelay()
		if e.target >= 0 {
			d = an.Timing.Window(e.target).LAT
		}
		if best == nil || (e.mode == addition && d > bestDelay) || (e.mode == elimination && d < bestDelay) {
			best, bestDelay = c, d
		}
	}
	return best.s, best.po, bestDelay, nil
}

// othersNoisyMax returns the largest noisy arrival over the outputs
// other than po.
func (e *prepared) othersNoisyMax(po circuit.NetID, pos []circuit.NetID) float64 {
	m := math.Inf(-1)
	for _, other := range pos {
		if other == po {
			continue
		}
		if l := e.full.Timing.Window(other).LAT; l > m {
			m = l
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// run executes the full enumeration up to cardinality k and returns
// the per-cardinality selections.
func (e *engine) run(k int) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	reg := e.m.Obs
	defer reg.Span("core.topk").End()
	defer e.flushCacheStats()
	if reg != nil {
		reg.Counter("core.topk.runs").Inc()
	}
	start := time.Now()
	res := &Result{
		K:         k,
		Victims:   len(e.victims),
		BaseDelay: e.base.CircuitDelay(),
		AllDelay:  e.full.CircuitDelay(),
		Stats:     e.stats,
	}
	if e.target >= 0 {
		// Per-net analysis: endpoints are the target's own arrivals.
		res.BaseDelay = e.base.Window(e.target).LAT
		res.AllDelay = e.full.Timing.Window(e.target).LAT
	}
	targets := e.targets()
	// stop converts an early-stop error into the partial-result
	// contract: cancellation, deadline and work exhaustion degrade to
	// whatever cardinalities completed (Partial + Stopped set, nil
	// error), while a recovered worker panic stays a hard typed error —
	// a crashed enumeration proves nothing about any cardinality.
	stop := func(err error) (*Result, error) {
		if budget.ReasonOf(err) == budget.WorkerPanic || !budget.IsStop(err) {
			return nil, err
		}
		res.Partial = true
		res.Stopped = err
		if reg != nil {
			reg.Counter("core.topk.partials").Inc()
		}
		return res, nil
	}
	// chain carries the best selection forward: extending the previous
	// winner by one more unit is always a valid cardinality-i set, so
	// the reported per-cardinality estimates never regress even when
	// beam pruning loses the previous winner's supersets.
	var chain *aggSet
	var chainPO circuit.NetID
	for i := 1; i <= k; i++ {
		e.kstat = &KStats{K: i}
		kStart := time.Now()
		if err := e.advance(i); err != nil {
			// The in-flight cardinality is discarded whole: PerK keeps
			// exactly the fully-enumerated prefix, so completed entries
			// are identical to an unbounded run's.
			res.Elapsed = time.Since(start)
			return stop(err)
		}
		s, po, est, ok := e.bestAt(targets)
		if c, cpo, cest, cok := e.extendChain(chain, chainPO, targets); cok {
			if !ok || (e.mode == addition && cest > est) || (e.mode == elimination && cest < est) {
				s, po, est, ok = c, cpo, cest, true
			}
		}
		if !ok {
			break // cardinality exceeds what the coupling graph offers
		}
		verified := false
		if e.opt.VerifyTop > 0 {
			vs, vpo, vest, err := e.bestVerified(targets, chain, chainPO)
			if err != nil {
				res.Elapsed = time.Since(start)
				return stop(err)
			}
			if vs != nil {
				s, po, est = vs, vpo, vest
				verified = true
			}
		}
		chain, chainPO = s, po
		e.kstat.Elapsed = time.Since(kStart)
		publishKStats(reg, e.kstat)
		e.stats.PerK = append(e.stats.PerK, *e.kstat)
		res.PerK = append(res.PerK, Selected{IDs: copyIDs(s.ids), Estimate: est, Delay: est, Verified: verified})
		res.ElapsedPerK = append(res.ElapsedPerK, time.Since(start))
	}
	res.Elapsed = time.Since(start)
	if !e.opt.NoRescore {
		rStart := time.Now()
		if err := e.rescore(res); err != nil {
			e.stats.RescoreElapsed = time.Since(rStart)
			// A stopped rescore leaves the un-measured tail flagged
			// Verified=false (heuristic estimates); the measured prefix
			// stands.
			return stop(err)
		}
		e.stats.RescoreElapsed = time.Since(rStart)
	}
	if reg != nil {
		reg.Counter("core.topk.rescore_runs").Add(int64(e.stats.RescoreRuns))
	}
	return res, nil
}

// targets returns the nets whose lists the final answer is read from:
// every primary output, since for addition any output can become
// critical and for elimination removal sets discovered on any output
// cone remain valid (their true effect is settled by rescoring).
func (e *prepared) targets() []circuit.NetID {
	if e.target >= 0 {
		return []circuit.NetID{e.target}
	}
	return e.c.POs()
}

// rescore re-evaluates every selected set with the reference iterative
// noise engine, replacing the enumeration's estimates by measured
// circuit delays. The curve is kept monotone: if a larger set measures
// worse than a smaller one (the enumeration's estimate was optimistic
// for it), the smaller set padded with an arbitrary extra coupling is
// the better cardinality-k answer — the reference model is monotone in
// the active-coupling mask, so padding can only help.
func (e *engine) rescore(res *Result) error {
	eval := func(ids []circuit.CouplingID) (float64, error) {
		if err := e.bud.Charge(1); err != nil {
			return 0, fmt.Errorf("core: rescore: %w", err)
		}
		e.stats.RescoreRuns++
		var mask noise.Mask
		if e.mode == addition {
			mask = noise.MaskOf(e.c, ids)
		} else {
			mask = noise.WithoutMask(e.c, ids)
		}
		an, err := e.m.RunBudget(e.bud, mask)
		if err != nil {
			return 0, err
		}
		if e.target >= 0 {
			return an.Timing.Window(e.target).LAT, nil
		}
		return an.CircuitDelay(), nil
	}
	worse := func(d, prev float64) bool {
		if e.mode == addition {
			return d < prev
		}
		return d > prev
	}
	for i := range res.PerK {
		d, err := eval(res.PerK[i].IDs)
		if err != nil {
			return err
		}
		if i > 0 && worse(d, res.PerK[i-1].Delay) {
			padded := e.padIDs(res.PerK[i-1].IDs, len(res.PerK[i].IDs))
			pd, err := eval(padded)
			if err != nil {
				return err
			}
			if !worse(pd, d) {
				res.PerK[i].IDs = padded
				d = pd
			}
			// Guard against residual non-monotonicity from fixpoint
			// tolerance: never report a regression.
			if worse(d, res.PerK[i-1].Delay) {
				d = res.PerK[i-1].Delay
			}
		}
		res.PerK[i].Delay = d
		res.PerK[i].Verified = true
	}
	return nil
}

// padIDs extends ids to the requested cardinality with the
// lowest-numbered couplings not already present.
func (e *prepared) padIDs(ids []circuit.CouplingID, n int) []circuit.CouplingID {
	out := copyIDs(ids)
	present := make(map[circuit.CouplingID]bool, len(ids))
	for _, id := range ids {
		present[id] = true
	}
	for id := circuit.CouplingID(0); len(out) < n && int(id) < e.c.NumCouplings(); id++ {
		if !present[id] {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopKAdditionAt computes the top-k addition sets for one designated
// victim net instead of the circuit outputs: which k couplings most
// delay this net's latest arrival. The net's full fanin cone is
// enumerated regardless of slack.
func TopKAdditionAt(m *noise.Model, net circuit.NetID, k int, opt Options) (*Result, error) {
	if int(net) < 0 || int(net) >= m.C.NumNets() {
		return nil, fmt.Errorf("core: no net %d in circuit %s", net, m.C.Name)
	}
	s, err := PrepareAddition(m, net, opt)
	if err != nil {
		return nil, err
	}
	return s.TopK(k)
}

// TopKEliminationAt computes the top-k elimination sets for one
// designated victim net: which k couplings to fix for the largest
// recovery of this net's noisy arrival.
func TopKEliminationAt(m *noise.Model, net circuit.NetID, k int, opt Options) (*Result, error) {
	if int(net) < 0 || int(net) >= m.C.NumNets() {
		return nil, fmt.Errorf("core: no net %d in circuit %s", net, m.C.Name)
	}
	s, err := PrepareElimination(m, net, opt)
	if err != nil {
		return nil, err
	}
	return s.TopK(k)
}

// TopKAddition computes, for every cardinality 1..k, the set of
// coupling capacitors whose activation adds the most circuit delay to
// the noiseless design (the paper's top-k aggressors addition set).
func TopKAddition(m *noise.Model, k int, opt Options) (*Result, error) {
	s, err := PrepareAddition(m, WholeCircuit, opt)
	if err != nil {
		return nil, err
	}
	return s.TopK(k)
}

// TopKElimination computes, for every cardinality 1..k, the set of
// coupling capacitors whose removal (shielding/spacing) recovers the
// most circuit delay from the fully noisy design (the paper's top-k
// aggressors elimination set).
func TopKElimination(m *noise.Model, k int, opt Options) (*Result, error) {
	s, err := PrepareElimination(m, WholeCircuit, opt)
	if err != nil {
		return nil, err
	}
	return s.TopK(k)
}

// TopKAdditionCtx is TopKAddition honoring the context's cancellation
// and deadline through both the preparation (fixpoint, envelopes) and
// the enumeration. A preparation stopped early returns a typed error;
// an enumeration stopped early returns a Partial result (see
// Result.Partial).
func TopKAdditionCtx(ctx context.Context, m *noise.Model, k int, opt Options) (*Result, error) {
	b := budget.New(ctx)
	s, err := prepareSharedB(b, m, nil, addition, WholeCircuit, opt)
	if err != nil {
		return nil, err
	}
	return s.TopKBudget(b, k)
}

// TopKEliminationCtx is TopKElimination honoring the context (see
// TopKAdditionCtx).
func TopKEliminationCtx(ctx context.Context, m *noise.Model, k int, opt Options) (*Result, error) {
	b := budget.New(ctx)
	s, err := prepareSharedB(b, m, nil, elimination, WholeCircuit, opt)
	if err != nil {
		return nil, err
	}
	return s.TopKBudget(b, k)
}

// TopKAdditionAtCtx is TopKAdditionAt honoring the context (see
// TopKAdditionCtx).
func TopKAdditionAtCtx(ctx context.Context, m *noise.Model, net circuit.NetID, k int, opt Options) (*Result, error) {
	b := budget.New(ctx)
	s, err := prepareSharedB(b, m, nil, addition, net, opt)
	if err != nil {
		return nil, err
	}
	return s.TopKBudget(b, k)
}

// TopKEliminationAtCtx is TopKEliminationAt honoring the context (see
// TopKAdditionCtx).
func TopKEliminationAtCtx(ctx context.Context, m *noise.Model, net circuit.NetID, k int, opt Options) (*Result, error) {
	b := budget.New(ctx)
	s, err := prepareSharedB(b, m, nil, elimination, net, opt)
	if err != nil {
		return nil, err
	}
	return s.TopKBudget(b, k)
}
