// Package cell provides the synthetic standard-cell library used by
// the timing and noise engines.
//
// The DAC'07 flow used a commercial 0.13µm library; the top-k
// algorithms only consume per-cell delay, output-slew and
// driver-resistance numbers, so this package substitutes a compact
// linear characterization calibrated to 0.13µm-scale magnitudes:
//
//	delay(load)  = D0 + KD·load
//	slew(load)   = S0 + KS·load
//
// Units across the repository: time in nanoseconds (ns), capacitance
// in femtofarads (fF), resistance in kilo-ohms (kΩ). With those units
// an RC product is r·c/1000 ns (see RC).
package cell

import (
	"fmt"
	"sort"
)

// RC converts a resistance (kΩ) and capacitance (fF) product to a time
// constant in nanoseconds.
func RC(rKOhm, cFF float64) float64 { return rKOhm * cFF * 1e-3 }

// Kind identifies a logic function.
type Kind string

// Supported logic functions.
const (
	Inv   Kind = "INV"
	Buf   Kind = "BUF"
	Nand2 Kind = "NAND2"
	Nor2  Kind = "NOR2"
	And2  Kind = "AND2"
	Or2   Kind = "OR2"
	Xor2  Kind = "XOR2"
	Aoi21 Kind = "AOI21"
)

// Cell is one library cell (a logic function at a drive strength).
type Cell struct {
	Name      string  // e.g. "NAND2_X2"
	Kind      Kind    // logic function
	NumInputs int     // input pin count
	D0        float64 // intrinsic delay, ns
	KD        float64 // delay per unit load, ns/fF
	S0        float64 // intrinsic output slew, ns
	KS        float64 // output slew per unit load, ns/fF
	Rdrv      float64 // equivalent (Thevenin) driver resistance, kΩ
	Cin       float64 // input pin capacitance, fF
}

// First-order slew-degradation coefficients and the output slew
// floor of the linear characterization. Exported so flattened
// (columnar) evaluations of the same model reproduce Delay and
// OutputSlew bit for bit.
const (
	DelaySlewFrac = 0.25 // input-slew fraction added to delay
	SlewSlewFrac  = 0.1  // input-slew fraction added to output slew
	MinSlew       = 1e-3 // output slew floor, ns
)

// Delay returns the pin-to-output delay driving load fF. The input
// slew contributes a fixed fraction, the standard first-order
// slew-degradation term of linear gate models.
func (c *Cell) Delay(loadFF, inSlew float64) float64 {
	return c.D0 + c.KD*loadFF + DelaySlewFrac*inSlew
}

// OutputSlew returns the output transition time driving load fF.
func (c *Cell) OutputSlew(loadFF, inSlew float64) float64 {
	s := c.S0 + c.KS*loadFF + SlewSlewFrac*inSlew
	if s < MinSlew {
		s = MinSlew
	}
	return s
}

// Validate checks the characterization for physical plausibility.
func (c *Cell) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("cell: empty name")
	case c.NumInputs < 1 || c.NumInputs > 4:
		return fmt.Errorf("cell %s: implausible input count %d", c.Name, c.NumInputs)
	case c.D0 <= 0 || c.KD < 0:
		return fmt.Errorf("cell %s: non-positive delay model (D0=%g KD=%g)", c.Name, c.D0, c.KD)
	case c.S0 <= 0 || c.KS < 0:
		return fmt.Errorf("cell %s: non-positive slew model (S0=%g KS=%g)", c.Name, c.S0, c.KS)
	case c.Rdrv <= 0:
		return fmt.Errorf("cell %s: non-positive drive resistance %g", c.Name, c.Rdrv)
	case c.Cin <= 0:
		return fmt.Errorf("cell %s: non-positive input capacitance %g", c.Name, c.Cin)
	}
	return nil
}

// Library is a named collection of cells.
type Library struct {
	Name   string
	Vdd    float64 // supply voltage, V
	byName map[string]*Cell
}

// NewLibrary creates an empty library.
func NewLibrary(name string, vdd float64) *Library {
	return &Library{Name: name, Vdd: vdd, byName: make(map[string]*Cell)}
}

// Add registers a cell, validating it first. Re-registering a name is
// an error.
func (l *Library) Add(c *Cell) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if _, dup := l.byName[c.Name]; dup {
		return fmt.Errorf("cell: duplicate cell %q in library %q", c.Name, l.Name)
	}
	l.byName[c.Name] = c
	return nil
}

// Cell looks a cell up by name.
func (l *Library) Cell(name string) (*Cell, error) {
	c, ok := l.byName[name]
	if !ok {
		return nil, fmt.Errorf("cell: no cell %q in library %q", name, l.Name)
	}
	return c, nil
}

// Names returns all cell names in sorted order.
func (l *Library) Names() []string {
	out := make([]string, 0, len(l.byName))
	for n := range l.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of cells.
func (l *Library) Len() int { return len(l.byName) }

// kindSpec is the X1 characterization of each logic function; higher
// strengths scale resistance and delay-per-load down and input cap up.
type kindSpec struct {
	kind   Kind
	inputs int
	d0     float64
	kd     float64
	s0     float64
	ks     float64
	rdrv   float64
	cin    float64
}

var kindSpecs = []kindSpec{
	{Inv, 1, 0.018, 0.0035, 0.030, 0.0050, 6.0, 2.0},
	{Buf, 1, 0.034, 0.0030, 0.028, 0.0042, 5.0, 2.2},
	{Nand2, 2, 0.026, 0.0042, 0.038, 0.0058, 7.0, 2.4},
	{Nor2, 2, 0.030, 0.0048, 0.042, 0.0066, 8.0, 2.4},
	{And2, 2, 0.042, 0.0036, 0.036, 0.0050, 6.0, 2.4},
	{Or2, 2, 0.046, 0.0040, 0.040, 0.0056, 6.5, 2.4},
	{Xor2, 2, 0.058, 0.0052, 0.048, 0.0068, 7.5, 3.2},
	{Aoi21, 3, 0.040, 0.0050, 0.046, 0.0064, 8.5, 2.8},
}

// Strengths available in the default library.
var Strengths = []int{1, 2, 4}

// Default builds the synthetic 0.13µm-scale library: every logic
// function of kindSpecs at drive strengths X1, X2 and X4.
func Default() *Library {
	lib := NewLibrary("synth013", 1.2)
	for _, s := range kindSpecs {
		for _, x := range Strengths {
			f := float64(x)
			c := &Cell{
				Name:      fmt.Sprintf("%s_X%d", s.kind, x),
				Kind:      s.kind,
				NumInputs: s.inputs,
				D0:        s.d0,
				KD:        s.kd / f,
				S0:        s.s0,
				KS:        s.ks / f,
				Rdrv:      s.rdrv / f,
				Cin:       s.cin * f,
			}
			// The static table is validated by TestDefaultLibraryComplete; an
			// inconsistent entry is dropped rather than crashing every
			// caller that builds the default library.
			if err := lib.Add(c); err != nil {
				continue
			}
		}
	}
	return lib
}
