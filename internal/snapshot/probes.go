package snapshot

import "topkagg/internal/faultinject"

// fireWriteProbe fires the snapshot.write faultinject site once per
// framed section; an armed Err rule aborts the encode with that error,
// which the atomic-write protocol must absorb without disturbing the
// previously published file.
func fireWriteProbe() error { return faultinject.FireErr(faultinject.SiteSnapshotWrite) }

// fireRestoreProbe fires the snapshot.restore site once per section
// read; an armed Err rule makes the decode fail as if the payload had
// been corrupted, driving the quarantine-and-rebuild ladder.
func fireRestoreProbe() error { return faultinject.FireErr(faultinject.SiteSnapshotRestore) }
