// Package report renders the experiment harness's tables and series
// as aligned text (the paper's table layout) and as CSV for plotting.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; short rows are padded to the header width.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned monospaced text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (title omitted).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// SeriesTable renders a set of series sharing an x axis as a table:
// one x column followed by one column per series. Series are sampled
// at their own x values; missing points render empty.
func SeriesTable(title, xLabel string, series []Series) *Table {
	t := &Table{Title: title, Header: []string{xLabel}}
	xs := map[float64]bool{}
	for _, s := range series {
		t.Header = append(t.Header, s.Name)
		for _, x := range s.X {
			xs[x] = true
		}
	}
	var sorted []float64
	for x := range xs {
		sorted = append(sorted, x)
	}
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	for _, x := range sorted {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = fmt.Sprintf("%.4f", s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// F formats a float with 3 decimals, the paper's table precision.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// F2 formats a runtime in seconds with 2 decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }
