package core

import (
	"math"

	"topkagg/internal/waveform"
)

// digestGrid is the number of evenly spaced sample times each envelope
// digest takes over the victim's dominance interval. Small enough that
// a digest (plus its summaries) fits in two cache lines; large enough
// that most non-dominations show a separating sample.
const digestGrid = 24

// digestSlack is the comparison margin of the digest prefilter. The
// exact check accepts p over c at tolerance waveform.Eps, evaluating
// both waveforms at merged breakpoints with one linear interpolation
// each; the extra 1e-12 absorbs the rounding difference between the
// grid sampler's interpolation and the exact check's, so a digest
// rejection can never contradict an exact acceptance (DESIGN.md §10).
const digestSlack = waveform.Eps + 1e-12

// envDigest is the fixed-size conservative summary of one candidate
// envelope over the victim's dominance interval [lo, hi]: the global
// peak (memoizing the existing quick-reject), the grid samples, and
// their max and area. Dominance of p over c requires p(t) >= c(t)-Eps
// pointwise, so any sampled time — or the max/area aggregates over all
// of them — where c exceeds p by more than Eps+slack refutes dominance
// without touching the exact PWL check.
type envDigest struct {
	peak    float64
	smax    float64
	area    float64
	samples [digestGrid]float64
}

// fill computes the digest of env over [lo, hi]. sampled toggles the
// grid pass: the exact-prune escape hatch still memoizes peaks (they
// feed the pre-existing quick reject) but skips sampling entirely.
func (d *envDigest) fill(env waveform.PWL, lo, hi float64, sampled bool) {
	_, d.peak = env.Peak()
	if !sampled {
		return
	}
	env.SampleInto(lo, hi, d.samples[:])
	mx, area := math.Inf(-1), 0.0
	for _, s := range d.samples {
		if s > mx {
			mx = s
		}
		area += s
	}
	d.smax, d.area = mx, area
}

// refutes reports that candidate digest c provably exceeds kept digest
// p somewhere on the dominance interval, i.e. the exact encapsulation
// check would return false. Conservative: false means "maybe
// dominated", and the caller must fall back to the exact check.
func (p *envDigest) refutes(c *envDigest) bool {
	if c.smax > p.smax+digestSlack {
		// The sample attaining c's max already separates the curves.
		return true
	}
	if c.area > p.area+digestGrid*digestSlack {
		// If p(t_g) >= c(t_g)-slack held at every sample, the areas
		// could differ by at most grid*slack.
		return true
	}
	for g := range c.samples {
		if c.samples[g] > p.samples[g]+digestSlack {
			return true
		}
	}
	return false
}

// pruneCounts reports what one prune pass discarded and how often the
// digest prefilter settled a dominance pair without the exact check.
type pruneCounts struct {
	dom, beam                   int
	digestHits, digestFallbacks int
}

// pruner reduces one victim's candidate list to its irredundant list.
// It owns a digest-pointer scratch slab that callers reuse across
// victims and cardinalities (one pruner per level worker).
type pruner struct {
	lo, hi float64
	width  int
	noDom  bool
	exact  bool // escape hatch: skip the digest prefilter
	digs   []*envDigest
}

// digestOf returns the candidate's memoized digest, computing and
// publishing it on first use. Interned sets recur across passes and
// queries, so on warm runs this is a single atomic load.
func (pr *pruner) digestOf(c *aggSet) *envDigest {
	if d := c.dig.Load(); d != nil {
		return d
	}
	d := &envDigest{}
	d.fill(c.env, pr.lo, pr.hi, !pr.exact)
	c.dig.Store(d)
	return d
}

// prune removes dominated sets — whose envelope is encapsulated by a
// kept set's envelope over [lo, hi] and whose inherited shift does not
// exceed the kept set's — and beam-caps the survivors at width.
// Candidates must already be score-sorted descending; because
// domination implies a score at least as high, checking each candidate
// only against already-kept sets is sufficient. Every candidate is
// classified even after the beam fills, so the beam counter reports
// drops against the post-dominance list rather than lumping
// would-be-dominated stragglers in with it. The kept list is identical
// with the prefilter on or off: a digest can only refute dominance the
// exact check would also refute.
func (pr *pruner) prune(cands []*aggSet) ([]*aggSet, pruneCounts) {
	var pc pruneCounts
	kept := make([]*aggSet, 0, min(len(cands), pr.width))
	if pr.noDom {
		if len(cands) > pr.width {
			pc.beam = len(cands) - pr.width
			cands = cands[:pr.width]
		}
		return append(kept, cands...), pc
	}
	if cap(pr.digs) < len(cands) {
		pr.digs = make([]*envDigest, len(cands))
	}
	digs := pr.digs[:len(cands)]
	for n, c := range cands {
		digs[n] = pr.digestOf(c)
	}
	keptIdx := make([]int, 0, min(len(cands), pr.width))
	for n, c := range cands {
		dominated := false
		cd := digs[n]
		for _, kn := range keptIdx {
			p := cands[kn]
			if p.shift < c.shift-waveform.Eps {
				continue // smaller inherited shift cannot dominate
			}
			pd := digs[kn]
			if pd.peak < cd.peak-waveform.Eps {
				continue // quick reject: cannot encapsulate a higher peak
			}
			if !pr.exact {
				if pd.refutes(cd) {
					pc.digestHits++
					continue
				}
				pc.digestFallbacks++
			}
			if waveform.Encapsulates(p.env, c.env, pr.lo, pr.hi, waveform.Eps) {
				dominated = true
				break
			}
		}
		switch {
		case dominated:
			pc.dom++
		case len(kept) >= pr.width:
			pc.beam++
		default:
			kept = append(kept, c)
			keptIdx = append(keptIdx, n)
		}
	}
	return kept, pc
}
