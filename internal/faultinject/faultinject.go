// Package faultinject is the deterministic fault-injection harness
// behind the chaos tests: named probe points (Fire calls) are compiled
// into the engine worker loops, and a test arms a Plan mapping sites
// to injected faults — a panic, a delay, or an arbitrary callback
// (used to cancel a context mid-flight). Disarmed — the production
// state — a probe costs one atomic pointer load; building with the
// faultinject_off tag removes even that.
//
// Determinism: rules trigger on the site's hit counter (the Nth Fire
// at a site, or every Nth), not on wall time, so a given plan injects
// at the same logical point of the computation on every run.
// Probabilistic rules draw from the plan's seeded generator under a
// lock, so the accept/reject sequence is reproducible too.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Probe site names used across the repo. Tests arm plans against
// these; the engine code fires them.
const (
	// SiteNoiseEval fires once per victim evaluation in a fixpoint
	// sweep worker (internal/noise).
	SiteNoiseEval = "noise.fixpoint.eval"
	// SiteCoreVictim fires once per victim processed by a top-k
	// enumeration level worker (internal/core).
	SiteCoreVictim = "core.topk.victim"
	// SiteServeQuery fires once per query executed by an Analyzer
	// (internal/serve), before dispatch.
	SiteServeQuery = "serve.query"
	// SiteServePrep fires once per shared-state preparation build
	// (internal/serve).
	SiteServePrep = "serve.prep"
	// SiteBruteforceEval fires once per candidate set evaluated by a
	// brute-force search worker (internal/bruteforce).
	SiteBruteforceEval = "bruteforce.eval"
	// SiteSnapshotWrite fires once per section framed by a snapshot
	// encoder (internal/snapshot) — rules here model torn or failed
	// writes: an Err rule aborts the encode mid-file (the atomic-rename
	// protocol must then leave the previous snapshot intact), a Delay
	// rule widens the window for kill -9 crash tests.
	SiteSnapshotWrite = "snapshot.write"
	// SiteSnapshotRestore fires once per section read by a snapshot
	// decoder (internal/snapshot) — rules here model read-side
	// corruption and slow restores (Delay exposes the /readyz
	// not-ready window during boot).
	SiteSnapshotRestore = "snapshot.restore"
)

// Injected is the panic value (and error) of an injected panic, so
// recovery layers and tests can tell deliberate faults from real bugs.
type Injected struct {
	// Site is the probe that fired.
	Site string
	// Hit is the 1-based hit count at which the rule triggered.
	Hit int64
}

func (e *Injected) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s (hit %d)", e.Site, e.Hit)
}

// Rule describes one fault at one site. Trigger fields compose as
// AND: a rule with On=3 and Prob=0.5 fires at the third hit with
// probability one half. A rule with no trigger fields set fires on
// every hit.
type Rule struct {
	// On triggers at exactly the On-th hit of the site (1-based).
	On int64
	// Every triggers on every Every-th hit.
	Every int64
	// Prob gates the trigger with a draw from the plan's seeded
	// generator (0 = always).
	Prob float64

	// Panic injects a panic(*Injected) at the probe.
	Panic bool
	// Err injects an error return at probes that use FireErr (the
	// snapshot write/read sites). Fire ignores it — error injection is
	// only meaningful where the caller has an error path.
	Err error
	// Delay sleeps at the probe — for widening race windows and
	// forcing deadline expiry at a known point.
	Delay time.Duration
	// Call invokes an arbitrary callback at the probe (e.g. a context
	// cancel function). It runs before Panic would fire.
	Call func(site string, hit int64)
}

// Plan is an armed set of rules. Build with NewPlan + Add, then Arm.
type Plan struct {
	seed  int64
	rules map[string][]Rule
	hits  map[string]*atomic.Int64

	mu  sync.Mutex // guards rng
	rng *rand.Rand
}

// NewPlan creates an empty plan whose probabilistic draws are seeded
// deterministically.
func NewPlan(seed int64) *Plan {
	return &Plan{
		seed:  seed,
		rules: map[string][]Rule{},
		hits:  map[string]*atomic.Int64{},
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Add attaches a rule to a site and returns the plan for chaining.
// Add must not be called after Arm.
func (p *Plan) Add(site string, r Rule) *Plan {
	p.rules[site] = append(p.rules[site], r)
	if p.hits[site] == nil {
		p.hits[site] = &atomic.Int64{}
	}
	return p
}

// Hits returns how many times the site has fired under this plan.
func (p *Plan) Hits(site string) int64 {
	if h := p.hits[site]; h != nil {
		return h.Load()
	}
	return 0
}

// active is the armed plan; nil means every probe is a near-free
// no-op. A single global (rather than per-engine plumbing) keeps the
// production code paths free of harness state.
var active atomic.Pointer[Plan]

// Arm makes the plan live. Tests must pair it with a deferred Disarm
// and must not run in parallel with other armed tests.
func Arm(p *Plan) { active.Store(p) }

// Disarm returns every probe to the no-op state.
func Disarm() { active.Store(nil) }

// Armed reports whether a plan is live.
func Armed() bool { return enabled && active.Load() != nil }

// Enabled reports whether probes are compiled in at all (false under
// the faultinject_off build tag). Chaos tests skip when probes are
// out.
func Enabled() bool { return enabled }

// Fire is the probe the engine layers call at their injection sites.
// With no plan armed (or with the faultinject_off build tag) it does
// nothing; with a matching rule armed it sleeps, calls back, or
// panics with *Injected.
func Fire(site string) {
	if !enabled {
		return
	}
	p := active.Load()
	if p == nil {
		return
	}
	p.fire(site)
}

// FireErr is Fire for probe sites whose caller has an error path (the
// snapshot write/read sites): a triggered rule with Err set returns
// that error instead of panicking, modelling I/O failures (ENOSPC, a
// torn write, read-side corruption) that production code must handle
// gracefully. Rules without Err behave exactly as under Fire.
func FireErr(site string) error {
	if !enabled {
		return nil
	}
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.fireErr(site)
}

func (p *Plan) fire(site string) { _ = p.fireErr(site) }

func (p *Plan) fireErr(site string) error {
	rules := p.rules[site]
	if len(rules) == 0 {
		return nil
	}
	hit := p.hits[site].Add(1)
	for i := range rules {
		r := &rules[i]
		if r.On != 0 && hit != r.On {
			continue
		}
		if r.Every != 0 && hit%r.Every != 0 {
			continue
		}
		if r.Prob > 0 {
			p.mu.Lock()
			draw := p.rng.Float64()
			p.mu.Unlock()
			if draw >= r.Prob {
				continue
			}
		}
		if r.Delay > 0 {
			time.Sleep(r.Delay)
		}
		if r.Call != nil {
			r.Call(site, hit)
		}
		if r.Panic {
			panic(&Injected{Site: site, Hit: hit})
		}
		if r.Err != nil {
			return fmt.Errorf("%w (injected at %s hit %d)", r.Err, site, hit)
		}
	}
	return nil
}
