package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("same name must return the same counter")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter must read zero")
	}
	h := r.Histogram("y")
	h.Observe(7)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read zero")
	}
	sp := r.Span("z")
	sp.Child("c").End()
	sp.End()
	r.SetSpanSink(nil)
	r.PublishExpvar("nil-reg")
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestDisabledPathAllocFree is the benchmark guard's alloc half: with
// instrumentation off (nil metrics), recording must not allocate — it
// is what lets the fixpoint hot path keep its allocs/op with obs
// disabled.
func TestDisabledPathAllocFree(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	h := r.Histogram("y")
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(42)
		r.Span("s").End()
	}); n != 0 {
		t.Fatalf("disabled instrumentation allocates %.1f per op, want 0", n)
	}
}

// TestEnabledRecordAllocFree pins the enabled hot path: counter adds
// and histogram observations on resolved metrics never allocate.
func TestEnabledRecordAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("x")
	h := r.Histogram("y")
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(42)
	}); n != 0 {
		t.Fatalf("enabled recording allocates %.1f per op, want 0", n)
	}
}

func TestHistogramStats(t *testing.T) {
	r := New()
	h := r.Histogram("sizes")
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 5 || s.Sum != 1106 {
		t.Fatalf("count/sum = %d/%d, want 5/1106", s.Count, s.Sum)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Fatalf("min/max = %d/%d, want 1/1000", s.Min, s.Max)
	}
	if math.Abs(s.Mean-1106.0/5) > 1e-12 {
		t.Fatalf("mean = %g", s.Mean)
	}
	// Quantiles are bucket upper bounds: p50 covers the value 3
	// (bucket [2,4) -> 3), p99 covers 1000 (bucket [512,1024) ->
	// 1023, clamped to the exact max).
	if s.P50 != 3 {
		t.Fatalf("p50 = %d, want 3", s.P50)
	}
	if s.P99 != 1000 {
		t.Fatalf("p99 = %d, want 1000 (clamped to max)", s.P99)
	}
}

func TestHistogramNonPositive(t *testing.T) {
	r := New()
	h := r.Histogram("deltas")
	h.Observe(0)
	h.Observe(-5)
	s := h.snapshot()
	if s.Count != 2 || s.Min != -5 || s.Max != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	c := r.Counter("c")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(seed + int64(i))
				c.Inc()
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per || c.Value() != workers*per {
		t.Fatalf("count = %d / %d, want %d", h.Count(), c.Value(), workers*per)
	}
}

// captureSink records completed spans for assertions.
type captureSink struct {
	mu    sync.Mutex
	paths []string
}

func (cs *captureSink) SpanEnd(path string, _ time.Time, _ time.Duration) {
	cs.mu.Lock()
	cs.paths = append(cs.paths, path)
	cs.mu.Unlock()
}

func TestSpanHierarchyAndSink(t *testing.T) {
	r := New()
	cs := &captureSink{}
	r.SetSpanSink(cs)
	root := r.Span("run")
	child := root.Child("sweep")
	child.End()
	root.End()
	if want := []string{"run/sweep", "run"}; fmt.Sprint(cs.paths) != fmt.Sprint(want) {
		t.Fatalf("sink paths = %v, want %v", cs.paths, want)
	}
	s := r.Snapshot()
	if s.Histograms["span.run"].Count != 1 || s.Histograms["span.run/sweep"].Count != 1 {
		t.Fatalf("span histograms missing: %v", s.Histograms)
	}
}

func TestSnapshotTableAndJSON(t *testing.T) {
	r := New()
	r.Counter("noise.fixpoint.sweeps").Add(12)
	r.Histogram("serve.query_ns").Observe(int64(1500 * time.Microsecond))
	r.Histogram("noise.fixpoint.worklist_depth").Observe(40)

	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["noise.fixpoint.sweeps"] != 12 {
		t.Fatalf("JSON round trip lost counter: %s", data)
	}

	var sb strings.Builder
	if err := snap.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"noise.fixpoint.sweeps", "12", "serve.query_ns", "1.5ms", "worklist_depth"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestDebugHandler(t *testing.T) {
	r := New()
	r.Counter("demo.count").Add(3)
	srv := httptest.NewServer(r.DebugHandler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/debug/metrics"); code != http.StatusOK || !strings.Contains(body, "demo.count") {
		t.Fatalf("metrics endpoint: code %d body %s", code, body)
	}
	if code, _ := get("/debug/vars"); code != http.StatusOK {
		t.Fatalf("expvar endpoint: code %d", code)
	}
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: code %d", code)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path: code %d, want 404", code)
	}
	if code, body := get("/"); code != http.StatusOK || !strings.Contains(body, "debug/metrics") {
		t.Fatalf("index: code %d body %s", code, body)
	}
}

func TestServeDebug(t *testing.T) {
	r := New()
	r.Counter("c").Inc()
	d, err := r.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.Addr() + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
