package verilog

import (
	"os"
	"testing"

	"topkagg/internal/cell"
)

// FuzzParse checks the Verilog-subset parser never panics and accepts
// only inputs whose canonical rewrite it accepts again.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("module t (y); output y; INV_X1 g (.A(a), .Y(y)); endmodule")
	f.Add("module t (); endmodule")
	f.Add("/* unterminated")
	f.Add("// just a comment")
	f.Add("module t (y;\n")
	f.Add("module m (a); input a; wire w; endmodule junk")
	lib := cell.Default()
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src, lib)
		if err != nil {
			return
		}
		out := String(c)
		if _, err := ParseString(out, lib); err != nil {
			t.Fatalf("canonical Verilog rejected: %v\n%s", err, out)
		}
	})
}

// FuzzParseVerilog fuzzes the Verilog-subset parser seeded with the
// repo's sample netlist (testdata/sample.v, written by Write from the
// c17 benchmark) plus structural edge cases. The parser must either
// error or produce a circuit whose canonical rewrite parses to the
// same shape — it must never panic.
func FuzzParseVerilog(f *testing.F) {
	seed, err := os.ReadFile("../../testdata/sample.v")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	f.Add("module m (a, y); input a; output y; INV_X1 g (.Y(y), .A(a)); endmodule")
	f.Add("module m (y); output y; NOSUCHCELL g (.Y(y)); endmodule")
	f.Add("module m (y); output y; INV_X1 g (.A(y), .Y(y)); endmodule") // self-loop
	f.Add("module m (y); output y; INV_X1 g (.A(a), .Y(y)); INV_X1 g (.A(b), .Y(y)); endmodule")
	f.Add("module  (y); output y; endmodule")
	f.Add("module m (\x00); endmodule")
	lib := cell.Default()
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src, lib)
		if err != nil {
			return
		}
		out := String(c)
		c2, err := ParseString(out, lib)
		if err != nil {
			t.Fatalf("canonical Verilog rejected: %v\n%s", err, out)
		}
		if c2.NumGates() != c.NumGates() || c2.NumNets() != c.NumNets() {
			t.Fatalf("canonical roundtrip changed shape: %d/%d gates, %d/%d nets",
				c.NumGates(), c2.NumGates(), c.NumNets(), c2.NumNets())
		}
	})
}
